package simpleomission

import "faultcast/internal/sim"

// Lane kernel: Simple-Omission in the transposed layout. Deliver adopts
// the first NON-default payload and sticks with it, so per (vertex, lane)
// the state is the informed bit plus the adopted payload's symbol columns
// (bel[c]; bel[0] = "belief is M"). During phase i only v_i transmits: all
// lanes, with its belief where informed and the default elsewhere.
//
// The first-sender symbol the lane engine reports is faithful here because
// at most one vertex transmits per round, so there is never a competing
// second sender whose non-default payload the scalar node would prefer
// over a first sender's default.

// NewLaneKernel returns the transposed protocol instance for the given
// symbol-alphabet size.
func (p *Proto) NewLaneKernel(symbols int) sim.LaneKernel {
	n := p.tree.N()
	k := &laneKernel{
		proto: p,
		order: p.tree.Order(),
		has:   make([]uint64, n),
		bel:   make([][]uint64, symbols-1),
	}
	for c := range k.bel {
		k.bel[c] = make([]uint64, n)
	}
	return k
}

// LaneTargets returns the per-vertex send-target lists for the message
// passing model (tree children), or nil for radio (broadcast).
func (p *Proto) LaneTargets() [][]int {
	if p.model == sim.Radio {
		return nil
	}
	return p.tree.Children
}

type laneKernel struct {
	proto *Proto
	order []int
	has   []uint64
	bel   [][]uint64
}

func (k *laneKernel) Reset() {
	for v := range k.has {
		k.has[v] = 0
		for c := range k.bel {
			k.bel[c][v] = 0
		}
	}
	r := k.proto.tree.Root
	k.has[r] = ^uint64(0)
	k.bel[0][r] = ^uint64(0)
}

func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	phase := round / k.proto.m
	if phase >= len(k.order) {
		return // horizon overrides can run past the last phase
	}
	v := k.order[phase]
	if k.proto.model == sim.MessagePassing && len(k.proto.tree.Children[v]) == 0 {
		return // nothing to direct a send at
	}
	intent[v] = ^uint64(0)
	for c := range k.bel {
		pay[c][v] = k.bel[c][v]
	}
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	for v := range k.has {
		nonDef := uint64(0)
		for c := range k.bel {
			nonDef |= sym[c][v]
		}
		adopt := heard[v] & nonDef &^ k.has[v]
		for c := range k.bel {
			k.bel[c][v] |= adopt & sym[c][v]
		}
		k.has[v] |= adopt
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.bel[0] {
		and &= w
	}
	return and
}

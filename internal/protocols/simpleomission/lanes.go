package simpleomission

import "faultcast/internal/sim"

// Lane kernel: Simple-Omission in the transposed layout. A node's belief
// is nil or the source message (Deliver adopts only non-default payloads,
// and in the two-symbol universe non-default means the source message), so
// one word per vertex — has, the lanes where the node knows M — is the
// whole state. During phase i only v_i transmits: all lanes, with payload
// M where informed and the default elsewhere.

// NewLaneKernel returns the transposed protocol instance.
func (p *Proto) NewLaneKernel() sim.LaneKernel {
	return &laneKernel{proto: p, order: p.tree.Order(), has: make([]uint64, p.tree.N())}
}

// LaneTargets returns the per-vertex send-target lists for the message
// passing model (tree children), or nil for radio (broadcast).
func (p *Proto) LaneTargets() [][]int {
	if p.model == sim.Radio {
		return nil
	}
	return p.tree.Children
}

type laneKernel struct {
	proto *Proto
	order []int
	has   []uint64
}

func (k *laneKernel) Reset() {
	for v := range k.has {
		k.has[v] = 0
	}
	k.has[k.proto.tree.Root] = ^uint64(0)
}

func (k *laneKernel) Transmit(round int, intent, payM []uint64) {
	phase := round / k.proto.m
	if phase >= len(k.order) {
		return // horizon overrides can run past the last phase
	}
	v := k.order[phase]
	if k.proto.model == sim.MessagePassing && len(k.proto.tree.Children[v]) == 0 {
		return // nothing to direct a send at
	}
	intent[v] = ^uint64(0)
	payM[v] = k.has[v]
}

func (k *laneKernel) Absorb(round int, heard, heardM []uint64) {
	for v := range k.has {
		k.has[v] |= heard[v] & heardM[v]
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.has {
		and &= w
	}
	return and
}

// Package simpleomission implements Algorithm Simple-Omission (Section 2.1
// of the paper): broadcasting along a spanning tree where, for i = 1..n,
// phase i consists of m = ceil(c·log n) steps in which node v_i transmits
// the source message (or the default "0" if it has not received it) while
// all other nodes remain silent.
//
// Because only one node transmits per step, the same algorithm runs
// unchanged in the message passing and the radio model, establishing
// Theorem 2.1: almost-safe broadcasting is feasible for any p < 1 under
// node-omission failures in both models.
package simpleomission

import (
	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/sim"
)

// Proto holds the centrally precomputed structures shared by all node
// instances: the spanning tree, the level-respecting enumeration v_1..v_n,
// and the window length m. The paper allows this preprocessing ("construct
// and fix a spanning tree of the network rooted at the source... This can
// be done centrally").
type Proto struct {
	tree  *graph.Tree
	model sim.Model
	m     int
	pos   []int // pos[v] = 0-based index of v in the enumeration
}

// New prepares the protocol for the given graph, source, model, and window
// constant c (the paper's c, chosen so that p^(c·log n) < 1/n²).
func New(g *graph.Graph, source int, model sim.Model, c float64) *Proto {
	tree := graph.BFSTree(g, source)
	pos := make([]int, g.N())
	for i, v := range tree.Order() {
		pos[v] = i
	}
	return &Proto{
		tree:  tree,
		model: model,
		m:     protocol.WindowLen(c, g.N()),
		pos:   pos,
	}
}

// WindowLen returns the per-phase window length m.
func (p *Proto) WindowLen() int { return p.m }

// Rounds returns the total running time n·m of the algorithm.
func (p *Proto) Rounds() int { return p.tree.N() * p.m }

// NewNode returns the protocol instance for node id; pass this method as
// sim.Config.NewNode.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto *Proto
	env   *sim.Env
	msg   []byte // the source message once known, nil before
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

// Transmit implements the phase structure: node v_i transmits during phase
// i only. In the message passing model "transmit" means sending to each
// child in the tree; in the radio model it is a single broadcast.
func (n *node) Transmit(round int) []sim.Transmission {
	phase := round / n.proto.m
	if phase != n.proto.pos[n.env.ID] {
		return nil
	}
	payload := n.msg
	if payload == nil {
		payload = protocol.Default // "or 0 if it has not received Ms"
	}
	if n.proto.model == sim.Radio {
		return []sim.Transmission{{To: sim.Broadcast, Payload: payload}}
	}
	children := n.proto.tree.Children[n.env.ID]
	ts := make([]sim.Transmission, len(children))
	for i, c := range children {
		ts[i] = sim.Transmission{To: c, Payload: payload}
	}
	return ts
}

// Deliver adopts the first non-default message heard. Under node-omission
// failures every delivered message is a genuine belief of its sender, and
// beliefs are always either the true source message or the default, so
// adopting any non-default message is safe. (The default marker exists so
// an uninformed v_i can still "transmit 0" as the paper specifies without
// corrupting its children.)
func (n *node) Deliver(round, from int, payload []byte) {
	if n.msg == nil && !protocol.IsDefault(payload) {
		n.msg = append([]byte(nil), payload...)
	}
}

func (n *node) Output() []byte { return n.msg }

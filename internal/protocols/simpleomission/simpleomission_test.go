package simpleomission

import (
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func runOnce(t *testing.T, g *graph.Graph, model sim.Model, p float64, c float64, seed uint64) bool {
	t.Helper()
	proto := New(g, 0, model, c)
	cfg := &sim.Config{
		Graph: g, Model: model, Fault: sim.Omission, P: p,
		Source: 0, SourceMsg: []byte("MSG"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success
}

func TestFaultFreeAlwaysSucceeds(t *testing.T) {
	for _, model := range []sim.Model{sim.MessagePassing, sim.Radio} {
		for _, g := range []*graph.Graph{
			graph.Line(8), graph.Star(8), graph.KaryTree(15, 2), graph.Grid(3, 4),
		} {
			if !runOnce(t, g, model, 0, 1, 1) {
				t.Errorf("%v/%v: fault-free Simple-Omission failed", g, model)
			}
		}
	}
}

// TestAlmostSafeBothModels is the Theorem 2.1 check in miniature: at
// p = 0.5 with a sufficient window constant, the success rate exceeds
// 1 - 1/n in both communication models.
func TestAlmostSafeBothModels(t *testing.T) {
	g := graph.KaryTree(31, 2)
	n := float64(g.N())
	for _, model := range []sim.Model{sim.MessagePassing, sim.Radio} {
		proto := New(g, 0, model, 4) // c=4: p^m = 0.5^20 ≪ 1/n²
		est := stat.Estimate(300, 1000, func(seed uint64) bool {
			cfg := &sim.Config{
				Graph: g, Model: model, Fault: sim.Omission, P: 0.5,
				Source: 0, SourceMsg: []byte("MSG"),
				NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Error(err)
				return false
			}
			return res.Success
		})
		lo, _ := est.Wilson(1.96)
		if lo < 1-1/n {
			t.Errorf("%v: success %v, lower bound %.4f < 1-1/n = %.4f", model, est, lo, 1-1/n)
		}
	}
}

// TestHighFailureRateStillFeasible exercises the "any p < 1" part of
// Theorem 2.1 at p = 0.9 with a correspondingly larger window.
func TestHighFailureRateStillFeasible(t *testing.T) {
	g := graph.Line(16)
	// p^m < 1/n² needs m > 2·log2(16)/log2(1/0.9) ≈ 52.6; c = 14 gives m = 56.
	proto := New(g, 0, sim.MessagePassing, 14)
	est := stat.Estimate(200, 2000, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.9,
			Source: 0, SourceMsg: []byte("MSG"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
	if est.Rate() < 1-1.0/16 {
		t.Errorf("p=0.9: success %v below 1-1/n", est)
	}
}

// TestUndersizedWindowFails checks the converse scaling: with m far too
// small, broadcasts regularly fail, confirming the window is load-bearing.
func TestUndersizedWindowFails(t *testing.T) {
	g := graph.Line(32)
	proto := New(g, 0, sim.MessagePassing, 0.2) // m = 1
	est := stat.Estimate(200, 3000, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.7,
			Source: 0, SourceMsg: []byte("MSG"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
	if est.Rate() > 0.2 {
		t.Errorf("window m=1 at p=0.7 should almost always fail, got %v", est)
	}
}

// TestRadioNoCollisions verifies the schedule discipline: only one node
// transmits per step, so the radio run records zero collisions.
func TestRadioNoCollisions(t *testing.T) {
	g := graph.Grid(3, 3)
	proto := New(g, 0, sim.Radio, 2)
	cfg := &sim.Config{
		Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("MSG"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 7,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Collisions != 0 {
		t.Fatalf("Simple-Omission produced %d collisions; at most one node may transmit per step", res.Stats.Collisions)
	}
}

func TestWindowAndRounds(t *testing.T) {
	g := graph.Line(16)
	proto := New(g, 0, sim.MessagePassing, 2)
	if proto.WindowLen() != 8 {
		t.Fatalf("m = %d, want 8", proto.WindowLen())
	}
	if proto.Rounds() != 16*8 {
		t.Fatalf("rounds = %d, want %d", proto.Rounds(), 16*8)
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.Line(1)
	if !runOnce(t, g, sim.MessagePassing, 0.5, 1, 3) {
		t.Fatal("single-node broadcast should trivially succeed")
	}
}

// Package decay implements a randomized Decay-style broadcast baseline
// for the radio model, in the spirit of Bar-Yehuda, Goldreich & Itai
// (the paper's reference [7]). It is NOT one of the paper's algorithms —
// those are deterministic and rely on centrally precomputed schedules —
// but serves as the natural topology-oblivious comparison point for the
// Theorem 3.4 algorithms: it needs no spanning tree, no schedule, and no
// labels, paying instead with randomization and a log-factor of expected
// collisions.
//
// Time is divided into epochs of ⌈log2 n⌉ + 1 steps. In step j of every
// epoch (j = 0, 1, ...), each informed node transmits the message
// independently with probability 2^(−j). Whatever a node's neighborhood
// density, some step's transmission probability is within a factor 2 of
// 1/(#informed neighbors), giving each uninformed node a constant
// per-epoch chance to hear exactly one transmitter. Node-omission
// failures merely scale that chance by (1−p).
//
// Content is trustworthy under omission failures, so receivers adopt
// anything they hear. The protocol is unsuitable for malicious failures
// as implemented (no voting) and the constructor rejects them is left to
// callers — the experiment harness only runs it under omission.
package decay

import (
	"math"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
)

// Proto holds the epoch parameters.
type Proto struct {
	epochLen int
	n        int
}

// New prepares the protocol for an n-node graph.
func New(g *graph.Graph) *Proto {
	n := g.N()
	epochLen := 1
	if n > 1 {
		epochLen = int(math.Ceil(math.Log2(float64(n)))) + 1
	}
	return &Proto{epochLen: epochLen, n: n}
}

// EpochLen returns the epoch length ⌈log2 n⌉ + 1.
func (p *Proto) EpochLen() int { return p.epochLen }

// Rounds returns a horizon of `epochs` full epochs.
func (p *Proto) Rounds(epochs int) int {
	if epochs < 1 {
		panic("decay: need at least one epoch")
	}
	return epochs * p.epochLen
}

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto *Proto
	env   *sim.Env
	msg   []byte
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	if n.msg == nil {
		return nil
	}
	j := round % n.proto.epochLen
	if !n.env.Rand.Bernoulli(math.Pow(0.5, float64(j))) {
		return nil
	}
	return []sim.Transmission{{To: sim.Broadcast, Payload: n.msg}}
}

func (n *node) Deliver(round, from int, payload []byte) {
	if n.msg == nil {
		n.msg = append([]byte(nil), payload...)
	}
}

func (n *node) Output() []byte { return n.msg }

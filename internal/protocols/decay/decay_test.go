package decay

import (
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func estimate(t *testing.T, g *graph.Graph, p float64, epochs, trials int) stat.Proportion {
	t.Helper()
	proto := New(g)
	return stat.Estimate(trials, 77, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: p,
			Source: 0, SourceMsg: []byte("M"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(epochs), Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
}

func TestEpochLen(t *testing.T) {
	if got := New(graph.Line(16)).EpochLen(); got != 5 {
		t.Fatalf("epoch len = %d, want 5", got)
	}
	if got := New(graph.Line(1)).EpochLen(); got != 1 {
		t.Fatalf("single node epoch len = %d, want 1", got)
	}
}

func TestFaultFreeInformsEveryone(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(16), graph.Star(16), graph.Grid(4, 4), graph.Layered(4)} {
		est := estimate(t, g, 0, 8*g.Radius(0)+40, 100)
		if est.Rate() < 0.99 {
			t.Errorf("%v: fault-free decay success %v", g, est)
		}
	}
}

func TestUnderOmissionFaults(t *testing.T) {
	g := graph.Grid(4, 4)
	est := estimate(t, g, 0.5, 120, 200)
	if est.Rate() < 0.95 {
		t.Errorf("decay at p=0.5: %v", est)
	}
}

func TestRandomizationMatters(t *testing.T) {
	// Different seeds must produce different executions: on a grid many
	// informed nodes share uninformed neighbors, so the random
	// transmission pattern shows up directly in the collision counter.
	g := graph.Grid(5, 5)
	proto := New(g)
	counts := map[int]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.NoFaults,
			Source: 0, SourceMsg: []byte("M"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(10), Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Stats.Collisions] = true
	}
	if len(counts) < 3 {
		t.Fatalf("collision counts show no run-to-run variation: %v", counts)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := graph.Grid(3, 3)
	proto := New(g)
	run := func() *sim.Result {
		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
			Source: 0, SourceMsg: []byte("M"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(30), Seed: 5,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Success != b.Success || a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestEnginesAgreeOnRandomizedProtocol(t *testing.T) {
	// The per-node random streams are engine-independent, so even a
	// randomized protocol must produce identical results on both engines.
	g := graph.Grid(3, 3)
	proto := New(g)
	mk := func() *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
			Source: 0, SourceMsg: []byte("M"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(30), Seed: 11,
		}
	}
	a, err := sim.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunConcurrent(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Success != b.Success || a.Stats != b.Stats {
		t.Fatalf("engines diverged on randomized protocol: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestRoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds(0) did not panic")
		}
	}()
	New(graph.Line(4)).Rounds(0)
}

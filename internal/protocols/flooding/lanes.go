package flooding

import "faultcast/internal/sim"

// Lane kernel: the transposed form of the flooding node for the
// trial-parallel engine. Per (vertex, lane) the node state collapses to
// the informed bit plus the payload symbol columns of the adopted belief
// (bel[c]; all columns clear = the default symbol), because the node
// retransmits whatever it adopted verbatim. Deliver adopts the first
// payload of the round unconditionally — default included — which is
// exactly the first-sender symbol the lane engine's message-passing rule
// reports.

// NewLaneKernel returns the transposed protocol instance for the given
// symbol-alphabet size; pass it (with LaneTargets) into a sim.LaneSpec.
func (p *Proto) NewLaneKernel(symbols int) sim.LaneKernel {
	n := p.tree.N()
	k := &laneKernel{proto: p, has: make([]uint64, n), bel: make([][]uint64, symbols-1)}
	for c := range k.bel {
		k.bel[c] = make([]uint64, n)
	}
	return k
}

// LaneTargets returns the per-vertex send-target lists (the tree
// children — flooding traffic is tree-directed).
func (p *Proto) LaneTargets() [][]int { return p.tree.Children }

type laneKernel struct {
	proto *Proto
	has   []uint64
	bel   [][]uint64 // adopted payload symbol columns; bel[0] = "belief is M"
}

func (k *laneKernel) Reset() {
	for v := range k.has {
		k.has[v] = 0
		for c := range k.bel {
			k.bel[c][v] = 0
		}
	}
	r := k.proto.tree.Root
	k.has[r] = ^uint64(0)
	k.bel[0][r] = ^uint64(0)
}

func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	for v, children := range k.proto.tree.Children {
		if len(children) == 0 {
			continue // childless nodes have no one to send to
		}
		intent[v] = k.has[v]
		for c := range k.bel {
			pay[c][v] = k.bel[c][v]
		}
	}
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		for c := range k.bel {
			k.bel[c][v] |= adopt & sym[c][v]
		}
		k.has[v] |= adopt
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.bel[0] {
		and &= w
	}
	return and
}

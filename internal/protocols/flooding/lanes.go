package flooding

import "faultcast/internal/sim"

// Lane kernel: the transposed form of the flooding node for the
// trial-parallel engine. Per (vertex, lane) the node state collapses to
// two bits — has (informed) and isM (belief equals the source message) —
// because under the supported fault lowerings every payload is either the
// source message or a non-source value, and the node retransmits whatever
// it adopted verbatim. Deliver adopts the first payload of the round
// unconditionally, which is exactly the first-sender bit the lane engine's
// message-passing rule reports.

// NewLaneKernel returns the transposed protocol instance; pass it (with
// LaneTargets) into a sim.LaneSpec.
func (p *Proto) NewLaneKernel() sim.LaneKernel {
	n := p.tree.N()
	return &laneKernel{proto: p, has: make([]uint64, n), isM: make([]uint64, n)}
}

// LaneTargets returns the per-vertex send-target lists (the tree
// children — flooding traffic is tree-directed).
func (p *Proto) LaneTargets() [][]int { return p.tree.Children }

type laneKernel struct {
	proto    *Proto
	has, isM []uint64
}

func (k *laneKernel) Reset() {
	for v := range k.has {
		k.has[v], k.isM[v] = 0, 0
	}
	r := k.proto.tree.Root
	k.has[r] = ^uint64(0)
	k.isM[r] = ^uint64(0)
}

func (k *laneKernel) Transmit(round int, intent, payM []uint64) {
	for v, children := range k.proto.tree.Children {
		if len(children) == 0 {
			continue // childless nodes have no one to send to
		}
		intent[v] = k.has[v]
		payM[v] = k.isM[v]
	}
}

func (k *laneKernel) Absorb(round int, heard, heardM []uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		k.isM[v] |= adopt & heardM[v]
		k.has[v] |= adopt
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.isM {
		and &= w
	}
	return and
}

package flooding

import (
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func estimate(t *testing.T, g *graph.Graph, p, a float64, trials int) stat.Proportion {
	t.Helper()
	proto := New(g, 0)
	return stat.Estimate(trials, 300, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: p,
			Source: 0, SourceMsg: []byte("MSG"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(a), Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
}

func TestFaultFreeCompletesInRadius(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(12), graph.Grid(4, 5), graph.KaryTree(31, 2)} {
		proto := New(g, 0)
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.NoFaults,
			Source: 0, SourceMsg: []byte("MSG"),
			NewNode: proto.NewNode, Rounds: g.Radius(0), Seed: 1,
			TrackCompletion: true,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Errorf("%v: fault-free flood failed", g)
		}
		if res.CompletedRound != g.Radius(0)-1 {
			t.Errorf("%v: completed round %d, want %d", g, res.CompletedRound, g.Radius(0)-1)
		}
	}
}

// TestLemma31Line: on a line with omission failures, O(L) rounds of
// simultaneous transmission deliver the message to all with probability
// approaching 1 — the Diks–Pelc lemma the paper builds on.
func TestLemma31Line(t *testing.T) {
	g := graph.Line(32)
	est := estimate(t, g, 0.5, 4, 300)
	n := float64(g.N())
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("line flood: success %v, want >= %.4f", est, 1-1/n)
	}
}

// TestTheorem31Tree: general graph via BFS tree, p = 0.5, time
// a·(D + log n) — almost-safe.
func TestTheorem31Tree(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Grid(6, 6), graph.KaryTree(63, 2), graph.Caterpillar(12, 2)} {
		est := estimate(t, g, 0.5, 5, 300)
		n := float64(g.N())
		lo, _ := est.Wilson(1.96)
		if lo < 1-1/n {
			t.Errorf("%v: success %v, want >= %.4f", g, est, 1-1/n)
		}
	}
}

// TestTooFewRoundsFails: with a << 1 the flood cannot even cover the
// radius, so it must fail.
func TestTooFewRoundsFails(t *testing.T) {
	g := graph.Line(64)
	proto := New(g, 0)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
		Source: 0, SourceMsg: []byte("MSG"),
		NewNode: proto.NewNode, Rounds: 10, Seed: 9,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("10 rounds cannot flood line(64)")
	}
}

func TestRoundsFormula(t *testing.T) {
	g := graph.Line(16) // D = 15, log2 16 = 4
	proto := New(g, 0)
	if got := proto.Rounds(1); got != 19 {
		t.Fatalf("Rounds(1) = %d, want 19", got)
	}
	if got := proto.Rounds(2); got != 38 {
		t.Fatalf("Rounds(2) = %d, want 38", got)
	}
}

func TestRoundsPanicsOnBadMultiplier(t *testing.T) {
	proto := New(graph.Line(4), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds(0) did not panic")
		}
	}()
	proto.Rounds(0)
}

// TestCompletionTimeScalesLinearly fits measured completion time against
// D + log n across line lengths and checks the fit is strongly linear —
// the Θ(D + log n) shape of Theorem 3.1.
func TestCompletionTimeScalesLinearly(t *testing.T) {
	var xs, ys []float64
	for _, n := range []int{16, 32, 64, 128} {
		g := graph.Line(n)
		proto := New(g, 0)
		mean, _, failed := stat.MeanStd(60, 40, func(seed uint64) (float64, bool) {
			cfg := &sim.Config{
				Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
				Source: 0, SourceMsg: []byte("MSG"),
				NewNode: proto.NewNode, Rounds: proto.Rounds(6), Seed: seed,
				TrackCompletion: true,
			}
			res, err := sim.Run(cfg)
			if err != nil || !res.Success {
				return 0, false
			}
			return float64(res.CompletedRound + 1), true
		})
		if failed > 6 {
			t.Fatalf("line(%d): %d of 60 trials failed", n, failed)
		}
		xs = append(xs, float64(g.Radius(0)))
		ys = append(ys, mean)
	}
	slope, _, r2 := stat.LinearFit(xs, ys)
	if r2 < 0.99 {
		t.Errorf("completion time not linear in D: R² = %.4f (times %v)", r2, ys)
	}
	if slope < 1 || slope > 4 {
		t.Errorf("slope %.2f outside the expected constant range [1,4]", slope)
	}
}

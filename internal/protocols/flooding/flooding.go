// Package flooding implements the time-optimal almost-safe broadcasting
// algorithm for node-omission failures in the message passing model
// (Theorem 3.1), built on the Diks–Pelc line result the paper quotes as
// Lemma 3.1: on a line of length L with per-step omission probability
// p < 1, having every node transmit simultaneously for O(L) steps delivers
// the message to everyone with probability 1 − e^(−cL).
//
// The paper's generalization: take a breadth-first spanning tree T of the
// network (height D), set L = D + ceil(log n), and let all nodes of T
// transmit simultaneously for O(L) steps; each branch behaves like a line
// padded to length L, so all nodes are informed with probability at least
// 1 − 1/n in time O(D + log n) — which is optimal.
package flooding

import (
	"math"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
)

// Proto holds the precomputed BFS tree.
type Proto struct {
	tree *graph.Tree
}

// New prepares flooding over a BFS tree of g rooted at source.
func New(g *graph.Graph, source int) *Proto {
	return &Proto{tree: graph.BFSTree(g, source)}
}

// Rounds returns the running time a·(D + ceil(log2 n)): the paper's O(L)
// with the constant a exposed (Lemma 3.1 requires a large enough constant
// multiple of L to push the per-branch error below 1/n²).
func (p *Proto) Rounds(a float64) int {
	if a <= 0 {
		panic("flooding: round multiplier must be positive")
	}
	n := p.tree.N()
	lg := 1.0
	if n > 1 {
		lg = math.Log2(float64(n))
	}
	l := float64(p.tree.Height()) + math.Ceil(lg)
	r := int(math.Ceil(a * l))
	if r < 1 {
		r = 1
	}
	return r
}

// Tree exposes the underlying BFS tree (used by tests and the harness).
func (p *Proto) Tree() *graph.Tree { return p.tree }

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto *Proto
	env   *sim.Env
	msg   []byte
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

// Transmit: every informed node sends the message to all its tree children
// in every round ("all nodes of T transmit simultaneously").
func (n *node) Transmit(round int) []sim.Transmission {
	if n.msg == nil {
		return nil
	}
	children := n.proto.tree.Children[n.env.ID]
	if len(children) == 0 {
		return nil
	}
	ts := make([]sim.Transmission, len(children))
	for i, c := range children {
		ts[i] = sim.Transmission{To: c, Payload: n.msg}
	}
	return ts
}

// Deliver adopts the first message received; under omission failures
// content is always genuine.
func (n *node) Deliver(round, from int, payload []byte) {
	if n.msg == nil {
		n.msg = append([]byte(nil), payload...)
	}
}

func (n *node) Output() []byte { return n.msg }

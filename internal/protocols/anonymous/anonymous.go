// Package anonymous implements the label-scheduled radio variants of
// Simple-Omission sketched at the end of Section 2.1. The phase algorithm
// assumes each node knows its index in a global enumeration; the paper
// notes this can be replaced, in the radio model, by distinct labels from
// a range [0, K−1]:
//
//   - if K is known, a node with label i transmits only in time steps
//     ℓ·K + i for integers ℓ ≥ 0 (a TDMA cycle), so at most one node
//     transmits per step and no collisions occur;
//   - if K is unknown, label i transmits in steps p_i^k for k ≥ 1, where
//     p_i is the i-th prime — unique factorization keeps the slots
//     disjoint across labels without anyone knowing the label range.
//
// Unlike the phase algorithm, there is no enumeration: every informed
// node transmits the source message in all of its slots, and (omission
// failures only — content is trustworthy) receivers adopt anything they
// hear. With K ≥ n slots per cycle, the message advances one hop per
// cycle with probability ≥ 1−p, so O(K·(D + log n)) steps suffice; the
// prime schedule trades that for slot times that grow geometrically, the
// price of not knowing K (it exists to establish feasibility, as in the
// paper).
package anonymous

import (
	"fmt"
	"math"

	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/sim"
)

// ScheduleKind selects how labels map to transmission slots.
type ScheduleKind int

const (
	// ModuloK: label i transmits in steps ℓK + i (K known to all nodes).
	ModuloK ScheduleKind = iota
	// PrimePowers: label i transmits in steps p_i^k (K unknown).
	PrimePowers
)

func (k ScheduleKind) String() string {
	if k == ModuloK {
		return "modulo-K"
	}
	return "prime-powers"
}

// Proto holds the shared parameters. Nodes are anonymous in the sense of
// the paper: they know only their own label (their id), the range bound K
// (ModuloK only), n, and p — no global enumeration or topology knowledge.
type Proto struct {
	kind ScheduleKind
	k    int // label range bound (ModuloK)
	n    int
}

// New prepares the protocol for an n-node network. For ModuloK, k must be
// at least the number of labels in use (node ids are the labels).
func New(g *graph.Graph, kind ScheduleKind, k int) (*Proto, error) {
	switch kind {
	case ModuloK:
		if k < g.N() {
			return nil, fmt.Errorf("anonymous: label range K=%d below n=%d", k, g.N())
		}
	case PrimePowers:
		if g.N() > len(smallPrimes) {
			return nil, fmt.Errorf("anonymous: prime schedule supports up to %d labels", len(smallPrimes))
		}
	default:
		return nil, fmt.Errorf("anonymous: unknown schedule kind %d", int(kind))
	}
	return &Proto{kind: kind, k: k, n: g.N()}, nil
}

// Rounds returns a horizon for the ModuloK schedule: a·K·(D + ceil(log2 n))
// steps, the anonymous analogue of the flooding horizon (each hop needs an
// expected 1/(1−p) cycles of length K).
func (p *Proto) Rounds(d int, a float64) int {
	if a <= 0 {
		panic("anonymous: round multiplier must be positive")
	}
	lg := 1.0
	if p.n > 1 {
		lg = math.Ceil(math.Log2(float64(p.n)))
	}
	cycle := p.k
	if p.kind == PrimePowers {
		// The last label's first slot alone is p_n; the horizon must at
		// least reach its first few powers. Callers supply `a` to scale.
		cycle = int(smallPrimes[p.n-1])
	}
	r := int(a * float64(cycle) * (float64(d) + lg))
	if r < 1 {
		r = 1
	}
	return r
}

// NewNode returns the protocol instance for the node with label id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto *Proto
	env   *sim.Env
	msg   []byte
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

// slot reports whether this node's label owns the given time step.
func (n *node) slot(round int) bool {
	label := n.env.ID
	switch n.proto.kind {
	case ModuloK:
		return round%n.proto.k == label
	case PrimePowers:
		// Steps are 1-indexed in the paper (p_i^k, k >= 1).
		return isPowerOf(round+1, smallPrimes[label])
	default:
		return false
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	if n.msg == nil || !n.slot(round) {
		return nil
	}
	return []sim.Transmission{{To: sim.Broadcast, Payload: n.msg}}
}

// Deliver adopts any non-default message: under omission failures all
// content is genuine.
func (n *node) Deliver(round, from int, payload []byte) {
	if n.msg == nil && !protocol.IsDefault(payload) {
		n.msg = append([]byte(nil), payload...)
	}
}

func (n *node) Output() []byte { return n.msg }

// isPowerOf reports whether v = p^k for some k >= 1.
func isPowerOf(v int, p int64) bool {
	if v < int(p) {
		return false
	}
	x := int64(v)
	for x%p == 0 {
		x /= p
	}
	return x == 1
}

// smallPrimes are the first 64 primes — enough labels for every anonymous
// test and demo (the prime schedule is an existence construction; its
// slots grow geometrically, so large deployments use ModuloK).
var smallPrimes = []int64{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
	59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
	137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
	227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
}

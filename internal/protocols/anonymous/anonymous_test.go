package anonymous

import (
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

var msg = []byte("M")

func run(t *testing.T, g *graph.Graph, kind ScheduleKind, k int, p, a float64, seed uint64) (*sim.Result, *Proto) {
	t.Helper()
	proto, err := New(g, kind, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sim.Config{
		Graph: g, Model: sim.Radio, Fault: sim.Omission, P: p,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: proto.Rounds(g.Radius(0), a), Seed: seed,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, proto
}

func TestModuloFaultFree(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(8), graph.Star(6), graph.Grid(3, 3), graph.Ring(7)} {
		res, _ := run(t, g, ModuloK, g.N(), 0, 2, 1)
		if !res.Success {
			t.Errorf("%v: fault-free modulo-K failed at node %d", g, res.FirstFailed)
		}
		if res.Stats.Collisions != 0 {
			t.Errorf("%v: modulo-K produced %d collisions (labels are distinct mod K)", g, res.Stats.Collisions)
		}
	}
}

func TestModuloNoCollisionsEver(t *testing.T) {
	// Even with K > n and faults, slots are exclusive, so the collision
	// counter must stay zero.
	g := graph.Grid(3, 4)
	res, _ := run(t, g, ModuloK, 20, 0.4, 3, 7)
	if res.Stats.Collisions != 0 {
		t.Fatalf("collisions = %d", res.Stats.Collisions)
	}
}

// TestModuloAlmostSafe: the anonymous schedule keeps Theorem 2.1 alive at
// p = 0.5 with an O(K·(D+log n)) horizon.
func TestModuloAlmostSafe(t *testing.T) {
	g := graph.Line(16)
	n := float64(g.N())
	est := stat.Estimate(300, 50, func(seed uint64) bool {
		res, _ := run(t, g, ModuloK, 16, 0.5, 6, seed)
		return res.Success
	})
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("modulo-K p=0.5: %v, want >= %.4f", est, 1-1/n)
	}
}

func TestModuloRejectsSmallK(t *testing.T) {
	if _, err := New(graph.Line(8), ModuloK, 7); err == nil {
		t.Fatal("K < n accepted")
	}
}

func TestPrimeSlotsDisjoint(t *testing.T) {
	// No two labels may ever own the same step (unique factorization).
	owners := map[int]int{}
	for label := 0; label < 10; label++ {
		p := smallPrimes[label]
		for v := int64(1); v <= 10000; v++ {
			if isPowerOf(int(v), p) {
				if prev, taken := owners[int(v)]; taken {
					t.Fatalf("step %d owned by labels %d and %d", v, prev, label)
				}
				owners[int(v)] = label
			}
		}
	}
	if len(owners) == 0 {
		t.Fatal("no slots found")
	}
}

func TestIsPowerOf(t *testing.T) {
	cases := []struct {
		v    int
		p    int64
		want bool
	}{
		{2, 2, true}, {4, 2, true}, {1024, 2, true},
		{6, 2, false}, {1, 2, false}, {0, 2, false},
		{3, 3, true}, {27, 3, true}, {12, 3, false},
		{25, 5, true}, {50, 5, false},
	}
	for _, tc := range cases {
		if got := isPowerOf(tc.v, tc.p); got != tc.want {
			t.Errorf("isPowerOf(%d, %d) = %v, want %v", tc.v, tc.p, got, tc.want)
		}
	}
}

func TestPrimeFaultFreeSmallLine(t *testing.T) {
	// Line(4): labels 0..3 use primes 2,3,5,7. The message must traverse
	// 3 hops within the horizon; node i's slots are p_i^k, so the horizon
	// needs to reach ~7^2. Rounds(d=3, a) covers it with a modest a.
	g := graph.Line(4)
	proto, err := New(g, PrimePowers, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sim.Config{
		Graph: g, Model: sim.Radio, Fault: sim.NoFaults,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: 400, Seed: 1,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("prime schedule fault-free failed at node %d (outputs %q)", res.FirstFailed, res.Outputs)
	}
	if res.Stats.Collisions != 0 {
		t.Fatalf("prime schedule collided %d times", res.Stats.Collisions)
	}
}

func TestPrimeUnderFaults(t *testing.T) {
	g := graph.Line(3)
	proto, err := New(g, PrimePowers, 0)
	if err != nil {
		t.Fatal(err)
	}
	est := stat.Estimate(200, 90, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: 3000, Seed: seed,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
	if est.Rate() < 0.9 {
		t.Errorf("prime schedule at p=0.3: %v", est)
	}
}

func TestPrimeRejectsTooManyLabels(t *testing.T) {
	if _, err := New(graph.Line(100), PrimePowers, 0); err == nil {
		t.Fatal("100 labels accepted for the prime schedule")
	}
}

func TestScheduleKindString(t *testing.T) {
	if ModuloK.String() == "" || PrimePowers.String() == "" {
		t.Fatal("empty kind strings")
	}
}

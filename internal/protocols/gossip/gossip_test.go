package gossip

import (
	"bytes"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func config(g *graph.Graph, p, a float64, seed uint64) *sim.Config {
	proto := New(g, 0)
	return &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: p,
		Source: 0, SourceMsg: FullDigest(g.N()),
		NewNode: proto.NewNode, Rounds: proto.Rounds(a), Seed: seed,
	}
}

func TestFullDigestShape(t *testing.T) {
	d := FullDigest(3)
	if string(d) != "r0,r1,r2" {
		t.Fatalf("digest = %q", d)
	}
	if Rumor(7) != "r7" {
		t.Fatalf("rumor = %q", Rumor(7))
	}
}

func TestFaultFreeGossip(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(10), graph.Star(8), graph.Grid(4, 4), graph.Ring(9)} {
		res, err := sim.Run(config(g, 0, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Errorf("%v: fault-free gossip failed at node %d (output %q)",
				g, res.FirstFailed, res.Outputs[res.FirstFailed])
		}
	}
}

func TestFaultFreeCompletesIn2D(t *testing.T) {
	g := graph.Line(12)
	cfg := config(g, 0, 1, 1)
	cfg.TrackCompletion = true
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("gossip failed")
	}
	// Rumors from the two line endpoints must cross all 11 edges: the
	// last node learns the far rumor at round 10 (0-indexed).
	if res.CompletedRound+1 != g.Radius(0) {
		t.Fatalf("completed in %d rounds, want %d", res.CompletedRound+1, g.Radius(0))
	}
}

// TestAlmostSafeGossip is the [13]-shaped claim: gossip at p = 0.5 in
// O(D + log n) rounds succeeds with probability >= 1 - 1/n.
func TestAlmostSafeGossip(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(24), graph.Grid(5, 5)} {
		n := float64(g.N())
		est := stat.Estimate(200, 31, func(seed uint64) bool {
			res, err := sim.Run(config(g, 0.5, 5, seed))
			if err != nil {
				t.Error(err)
				return false
			}
			return res.Success
		})
		lo, _ := est.Wilson(1.96)
		if lo < 1-1/n {
			t.Errorf("%v: gossip at p=0.5: %v, want >= %.4f", g, est, 1-1/n)
		}
	}
}

func TestPartialKnowledgeIsVisible(t *testing.T) {
	// Stop long before completion: some node must still be ignorant.
	g := graph.Line(16)
	cfg := config(g, 0, 1, 1)
	cfg.Rounds = 3
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("3 rounds cannot gossip line(16)")
	}
	// Node 0 after 3 rounds knows exactly rumors of 0..3.
	if got := string(res.Outputs[0]); got != "r0,r1,r2,r3" {
		t.Fatalf("node 0 knows %q", got)
	}
}

func TestRumorSetsMonotone(t *testing.T) {
	// Under faults the output only grows; verify via successive horizons
	// on the same seed.
	g := graph.Grid(3, 3)
	prev := 0
	for _, rounds := range []int{1, 3, 6, 12} {
		cfg := config(g, 0.3, 1, 9)
		cfg.Rounds = rounds
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := len(bytes.Split(res.Outputs[4], []byte(",")))
		if cur < prev {
			t.Fatalf("rumor count shrank: %d -> %d at rounds=%d", prev, cur, rounds)
		}
		prev = cur
	}
}

func TestRoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds(0) did not panic")
		}
	}()
	New(graph.Line(3), 0).Rounds(0)
}

func TestSingleNodeGossip(t *testing.T) {
	g := graph.Line(1)
	res, err := sim.Run(config(g, 0.5, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("single node gossip should trivially succeed")
	}
}

// Package gossip extends the broadcasting library to almost-safe
// GOSSIPING — the all-to-all primitive of Diks & Pelc, "Almost safe
// gossiping in bounded degree networks" (the paper's reference [13] and
// the source of its Lemma 3.1). Every node starts with its own rumor and
// must learn everyone's.
//
// The algorithm is the natural extension of the Theorem 3.1 flood: on a
// BFS tree, every node transmits its entire known rumor set to its parent
// and all children in every round (the message passing model allows
// arbitrary messages). Known sets only grow, and under node-omission
// failures all content is genuine, so each tree edge forwards each rumor
// with success probability 1−p per round; rumors travel ≤ 2D tree hops
// (up to the root, back down), giving completion in O(D + log n) rounds
// with probability 1 − 1/n for suitable constants — the gossip analogue
// of Theorem 3.1.
//
// The engine's success criterion (every Output equals Config.SourceMsg)
// is reused by setting the source message to the digest of ALL rumors:
// a node's Output is the digest of its known set, which equals the full
// digest exactly when it has learned everything.
package gossip

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"faultcast/internal/graph"
	"faultcast/internal/sim"
)

// Rumor returns node id's initial rumor.
func Rumor(id int) string { return fmt.Sprintf("r%d", id) }

// FullDigest returns the digest of all n rumors — pass it as
// sim.Config.SourceMsg so the engine's success check means "everyone
// knows everything".
func FullDigest(n int) []byte {
	rumors := make([]string, n)
	for i := range rumors {
		rumors[i] = Rumor(i)
	}
	return digest(rumors)
}

// digest canonically encodes a rumor set (sorted, comma-joined).
func digest(rumors []string) []byte {
	sorted := append([]string(nil), rumors...)
	sort.Strings(sorted)
	return []byte(strings.Join(sorted, ","))
}

// Proto holds the precomputed BFS tree.
type Proto struct {
	tree *graph.Tree
}

// New prepares gossiping over a BFS tree of g rooted at root (any vertex;
// the root only shapes the tree).
func New(g *graph.Graph, root int) *Proto {
	return &Proto{tree: graph.BFSTree(g, root)}
}

// Rounds returns the horizon a·(2D + ceil(log2 n)): rumors cross at most
// 2D tree edges, each retried until a fault-free round.
func (p *Proto) Rounds(a float64) int {
	if a <= 0 {
		panic("gossip: round multiplier must be positive")
	}
	n := p.tree.N()
	lg := 1.0
	if n > 1 {
		lg = math.Ceil(math.Log2(float64(n)))
	}
	r := int(math.Ceil(a * (2*float64(p.tree.Height()) + lg)))
	if r < 1 {
		r = 1
	}
	return r
}

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p, known: make(map[string]bool)}
}

type node struct {
	proto *Proto
	env   *sim.Env
	known map[string]bool
	// cache invalidation: encoded is rebuilt only when the set grows.
	encoded []byte
	dirty   bool
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	n.known[Rumor(env.ID)] = true
	n.dirty = true
}

// payload returns the canonical encoding of the known set.
func (n *node) payload() []byte {
	if n.dirty {
		rumors := make([]string, 0, len(n.known))
		for r := range n.known {
			rumors = append(rumors, r)
		}
		n.encoded = digest(rumors)
		n.dirty = false
	}
	return n.encoded
}

// Transmit sends the full known set to the parent and every child, every
// round.
func (n *node) Transmit(round int) []sim.Transmission {
	payload := n.payload()
	var ts []sim.Transmission
	if parent := n.proto.tree.Parent[n.env.ID]; parent != -1 {
		ts = append(ts, sim.Transmission{To: parent, Payload: payload})
	}
	for _, c := range n.proto.tree.Children[n.env.ID] {
		ts = append(ts, sim.Transmission{To: c, Payload: payload})
	}
	return ts
}

// Deliver unions the received rumor set into the known set. Under
// omission failures all content is genuine.
func (n *node) Deliver(round, from int, payload []byte) {
	for _, r := range strings.Split(string(payload), ",") {
		if r != "" && !n.known[r] {
			n.known[r] = true
			n.dirty = true
		}
	}
}

// Output returns the digest of the known set; it equals FullDigest(n)
// exactly when this node has learned every rumor.
func (n *node) Output() []byte { return n.payload() }

package simplemalicious

import (
	"bytes"
	"testing"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

var msg = []byte("1")

func estimate(t *testing.T, g *graph.Graph, model sim.Model, adv sim.Adversary, p, c float64, trials int) stat.Proportion {
	t.Helper()
	proto := New(g, 0, model, c)
	return stat.Estimate(trials, 500, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: model, Fault: sim.Malicious, P: p,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adv,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
}

func TestFaultFree(t *testing.T) {
	for _, model := range []sim.Model{sim.MessagePassing, sim.Radio} {
		for _, g := range []*graph.Graph{graph.Line(8), graph.KaryTree(15, 2), graph.Star(6)} {
			proto := New(g, 0, model, 1)
			cfg := &sim.Config{
				Graph: g, Model: model, Fault: sim.NoFaults,
				Source: 0, SourceMsg: msg,
				NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 1,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Errorf("%v/%v fault-free Simple-Malicious failed at node %d", g, model, res.FirstFailed)
			}
		}
	}
}

// TestTheorem22BelowThreshold: message passing, p < 1/2, flipping
// adversary — success rate must clear 1 − 1/n.
func TestTheorem22BelowThreshold(t *testing.T) {
	g := graph.KaryTree(15, 2)
	n := float64(g.N())
	// c=12 gives m=48: per-node vote error P(Bin(48,0.3) >= 24) ~ 2e-3,
	// comfortably under the 1/n² the Chernoff argument needs.
	est := estimate(t, g, sim.MessagePassing, adversary.Flip{Wrong: []byte("0")}, 0.3, 12, 300)
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("p=0.3 below threshold: success %v, want >= %.4f", est, 1-1/n)
	}
}

// TestMessagePassingIgnoresNonParent: an out-of-turn adversary shouting on
// every faulty node must not poison votes, because MP receivers only count
// the parent link.
func TestMessagePassingIgnoresNonParent(t *testing.T) {
	g := graph.Complete(8) // every node hears every faulty node
	n := float64(g.N())
	est := estimate(t, g, sim.MessagePassing, adversary.OutOfTurn{Noise: []byte("0")}, 0.3, 8, 200)
	if est.Rate() < 1-1/n {
		t.Errorf("out-of-turn noise poisoned MP votes: %v", est)
	}
}

// TestTheorem24RadioBelowThreshold: radio, bounded degree, p below
// (1−p)^(Δ+1) fixed point — almost-safe.
func TestTheorem24RadioBelowThreshold(t *testing.T) {
	g := graph.Line(12) // Δ = 2, p* ≈ 0.276
	pStar := stat.RadioThreshold(g.MaxDegree())
	p := pStar * 0.5
	est := estimate(t, g, sim.Radio, adversary.Flip{Wrong: []byte("0")}, p, 10, 300)
	n := float64(g.N())
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("radio p=%.3f < p*=%.3f: success %v, want >= %.4f", p, pStar, est, 1-1/n)
	}
}

// TestRadioAboveThresholdDegrades: on a high-degree star above the
// threshold, the out-of-turn adversary jams and flips enough windows that
// almost-safety fails by a wide margin.
func TestRadioAboveThresholdDegrades(t *testing.T) {
	g := graph.Star(10) // Δ = 9, p* ≈ small
	pStar := stat.RadioThreshold(g.MaxDegree())
	p := 0.45 // far above p*
	if p <= pStar {
		t.Fatalf("test broken: p %v <= p* %v", p, pStar)
	}
	est := estimate(t, g, sim.Radio, adversary.OutOfTurn{Noise: []byte("0")}, p, 6, 200)
	n := float64(g.N())
	if est.Rate() >= 1-1/n {
		t.Errorf("radio far above threshold still almost-safe: %v", est)
	}
}

func TestOutputBeforeCommitIsBestBelief(t *testing.T) {
	// A run truncated before the node's listening window closes: Output
	// falls back to the current tally.
	g := graph.Line(3)
	proto := New(g, 0, sim.MessagePassing, 4)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.NoFaults,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode,
		Rounds:  proto.WindowLen(), // source phase only
		Seed:    1,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 listened through phase 0 and has votes; node 2 heard nothing.
	if !bytes.Equal(res.Outputs[1], msg) {
		t.Errorf("node 1 best belief = %q, want %q", res.Outputs[1], msg)
	}
	if res.Outputs[2] != nil {
		t.Errorf("node 2 output = %q, want nil", res.Outputs[2])
	}
}

func TestCrashAdversaryEquivalentToOmission(t *testing.T) {
	// With a crash adversary the protocol must do at least as well as
	// under omission: success at p=0.4, c=8 on a small tree.
	g := graph.KaryTree(7, 2)
	est := estimate(t, g, sim.MessagePassing, adversary.Crash{}, 0.4, 8, 200)
	if est.Rate() < 1-1.0/7 {
		t.Errorf("crash adversary: %v", est)
	}
}

package simplemalicious

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: Simple-Malicious in the transposed layout. A node's vote
// over its listening window becomes one bit-sliced counter per payload
// symbol — cntD (default), cntM (the source message), and, in the
// three-symbol universe the noise adversary induces, cnt2 (the third
// value) — and the plurality winner is computed word-parallel: for two
// symbols, winner M exactly where cntM > cntD; for three, the strict
// argmax of bitset.LanePlurality, whose ties resolve to the default just
// like protocol.Tally.Winner. That one formula covers every scalar Output
// path: the committed value is the winner of the full window (commitment
// happens only after the window closes and votes are frozen), the
// horizon-truncated fallback is the winner of the votes so far, and an
// empty tally gives all-zero counters, whose strict comparison fails just
// like the scalar nil message.

// NewLaneKernel returns the transposed protocol instance for the given
// symbol-alphabet size.
func (p *Proto) NewLaneKernel(symbols int) sim.LaneKernel {
	n := p.tree.N()
	order := p.tree.Order()
	listeners := make([][]int, len(order))
	for ph, v := range order {
		listeners[ph] = p.tree.Children[v]
	}
	width := bits.Len(uint(p.m)) // a window holds at most m votes
	k := &laneKernel{
		proto:     p,
		order:     order,
		listeners: listeners,
		cntM:      make([][]uint64, n),
		cntD:      make([][]uint64, n),
	}
	if symbols == 3 {
		k.cnt2 = make([][]uint64, n)
	}
	for v := 0; v < n; v++ {
		k.cntM[v] = make([]uint64, width)
		k.cntD[v] = make([]uint64, width)
		if k.cnt2 != nil {
			k.cnt2[v] = make([]uint64, width)
		}
	}
	return k
}

// LaneTargets returns the per-vertex send-target lists for the message
// passing model (tree children), or nil for radio (broadcast).
func (p *Proto) LaneTargets() [][]int {
	if p.model == sim.Radio {
		return nil
	}
	return p.tree.Children
}

type laneKernel struct {
	proto *Proto
	order []int
	// listeners[ph] is the set of nodes whose listening window is phase
	// ph — the children of order[ph]. In the radio model every node hears
	// the phase's lone transmitter, but only these nodes count votes
	// (everyone else's window is a different phase), so the two models
	// share the listener sets.
	listeners  [][]int
	cntM, cntD [][]uint64
	cnt2       [][]uint64 // nil in the two-symbol universe
}

// winner returns the lanes where v's plurality vote resolves to the
// source message (w1) and to the third symbol (w2; zero for two symbols).
func (k *laneKernel) winner(v int) (w1, w2 uint64) {
	if k.cnt2 == nil {
		return bitset.LaneGT(k.cntM[v], k.cntD[v]), 0
	}
	return bitset.LanePlurality(k.cntD[v], k.cntM[v], k.cnt2[v])
}

func (k *laneKernel) Reset() {
	for v := range k.cntM {
		for j := range k.cntM[v] {
			k.cntM[v][j], k.cntD[v][j] = 0, 0
			if k.cnt2 != nil {
				k.cnt2[v][j] = 0
			}
		}
	}
}

func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	phase := round / k.proto.m
	if phase >= len(k.order) {
		return
	}
	v := k.order[phase]
	if k.proto.model == sim.MessagePassing && len(k.proto.tree.Children[v]) == 0 {
		return
	}
	intent[v] = ^uint64(0)
	if v == k.proto.tree.Root {
		pay[0][v] = ^uint64(0)
		return
	}
	// By the level-respecting enumeration v's parent's phase — v's
	// listening window — is strictly earlier, so v's votes are frozen and
	// this is the committed M_v of the scalar protocol.
	w1, w2 := k.winner(v)
	pay[0][v] = w1
	if k.cnt2 != nil {
		pay[1][v] = w2
	}
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	phase := round / k.proto.m
	if phase >= len(k.listeners) {
		return
	}
	for _, v := range k.listeners[phase] {
		bitset.LaneAdd(k.cntM[v], heard[v]&sym[0][v])
		if k.cnt2 == nil {
			bitset.LaneAdd(k.cntD[v], heard[v]&^sym[0][v])
			continue
		}
		bitset.LaneAdd(k.cnt2[v], heard[v]&sym[1][v])
		bitset.LaneAdd(k.cntD[v], heard[v]&^sym[0][v]&^sym[1][v])
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for v := range k.cntM {
		if v == k.proto.tree.Root {
			continue // the source holds M by definition
		}
		w1, _ := k.winner(v)
		and &= w1
	}
	return and
}

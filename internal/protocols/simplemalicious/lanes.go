package simplemalicious

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: Simple-Malicious in the transposed layout. In the
// two-symbol payload universe {M, default} a node's vote over its
// listening window reduces to two bit-sliced counters per vertex — cntM
// (votes for the source message) and cntD (votes for anything else) — and
// the plurality winner is M exactly on the lanes where cntM > cntD. That
// one formula covers every scalar Output path: the committed value is the
// winner of the full window (commitment happens only after the window
// closes and votes are frozen), the horizon-truncated fallback is the
// winner of the votes so far, and an empty tally gives cntM = cntD = 0,
// whose strict comparison fails just like the scalar nil message.

// NewLaneKernel returns the transposed protocol instance.
func (p *Proto) NewLaneKernel() sim.LaneKernel {
	n := p.tree.N()
	order := p.tree.Order()
	listeners := make([][]int, len(order))
	for ph, v := range order {
		listeners[ph] = p.tree.Children[v]
	}
	width := bits.Len(uint(p.m)) // a window holds at most m votes
	k := &laneKernel{
		proto:     p,
		order:     order,
		listeners: listeners,
		cntM:      make([][]uint64, n),
		cntD:      make([][]uint64, n),
	}
	for v := 0; v < n; v++ {
		k.cntM[v] = make([]uint64, width)
		k.cntD[v] = make([]uint64, width)
	}
	return k
}

// LaneTargets returns the per-vertex send-target lists for the message
// passing model (tree children), or nil for radio (broadcast).
func (p *Proto) LaneTargets() [][]int {
	if p.model == sim.Radio {
		return nil
	}
	return p.tree.Children
}

type laneKernel struct {
	proto *Proto
	order []int
	// listeners[ph] is the set of nodes whose listening window is phase
	// ph — the children of order[ph]. In the radio model every node hears
	// the phase's lone transmitter, but only these nodes count votes
	// (everyone else's window is a different phase), so the two models
	// share the listener sets.
	listeners  [][]int
	cntM, cntD [][]uint64
}

func (k *laneKernel) Reset() {
	for v := range k.cntM {
		for j := range k.cntM[v] {
			k.cntM[v][j], k.cntD[v][j] = 0, 0
		}
	}
}

func (k *laneKernel) Transmit(round int, intent, payM []uint64) {
	phase := round / k.proto.m
	if phase >= len(k.order) {
		return
	}
	v := k.order[phase]
	if k.proto.model == sim.MessagePassing && len(k.proto.tree.Children[v]) == 0 {
		return
	}
	intent[v] = ^uint64(0)
	if v == k.proto.tree.Root {
		payM[v] = ^uint64(0)
		return
	}
	// By the level-respecting enumeration v's parent's phase — v's
	// listening window — is strictly earlier, so v's votes are frozen and
	// this is the committed M_v of the scalar protocol.
	payM[v] = bitset.LaneGT(k.cntM[v], k.cntD[v])
}

func (k *laneKernel) Absorb(round int, heard, heardM []uint64) {
	phase := round / k.proto.m
	if phase >= len(k.listeners) {
		return
	}
	for _, v := range k.listeners[phase] {
		bitset.LaneAdd(k.cntM[v], heard[v]&heardM[v])
		bitset.LaneAdd(k.cntD[v], heard[v]&^heardM[v])
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for v := range k.cntM {
		if v == k.proto.tree.Root {
			continue // the source holds M by definition
		}
		and &= bitset.LaneGT(k.cntM[v], k.cntD[v])
	}
	return and
}

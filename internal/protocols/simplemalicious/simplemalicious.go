// Package simplemalicious implements Algorithm Simple-Malicious (Section
// 2.2.1 of the paper): Simple-Omission augmented with a vote. The source
// v_1 transmits the source message for m steps; then for i = 2..n, node
// v_i computes M_i as the majority among the messages received from its
// parent during the parent's phase and transmits M_i for the m steps of
// its own phase (default "0" if there is no majority).
//
// The same algorithm establishes feasibility for p < 1/2 in the message
// passing model (Theorem 2.2) and for p < (1-p)^(Δ+1) in the radio model
// (Theorem 2.4). The analyses differ; so does one implementation detail:
// message passing links authenticate their sender, so a node votes only
// over messages arriving on the parent link, whereas a radio receiver
// cannot attribute transmissions and votes over everything it hears during
// its listening window (exactly the events E_rec/E_cor analyzed in Theorem
// 2.4).
package simplemalicious

import (
	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/sim"
)

// Proto holds the shared preprocessed structures (tree, enumeration,
// window length).
type Proto struct {
	tree  *graph.Tree
	model sim.Model
	m     int
	pos   []int
}

// New prepares the protocol; c is the window constant of m = ceil(c·log n).
func New(g *graph.Graph, source int, model sim.Model, c float64) *Proto {
	tree := graph.BFSTree(g, source)
	pos := make([]int, g.N())
	for i, v := range tree.Order() {
		pos[v] = i
	}
	return &Proto{tree: tree, model: model, m: protocol.WindowLen(c, g.N()), pos: pos}
}

// WindowLen returns m.
func (p *Proto) WindowLen() int { return p.m }

// Rounds returns the total running time n·m.
func (p *Proto) Rounds() int { return p.tree.N() * p.m }

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p, tally: protocol.NewTally()}
}

type node struct {
	proto     *Proto
	env       *sim.Env
	tally     *protocol.Tally
	msg       []byte
	committed bool
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
		n.committed = true
	}
}

// listenPhase returns the phase during which this node's parent transmits
// (i.e. this node's listening window), or -1 for the source.
func (n *node) listenPhase() int {
	parent := n.proto.tree.Parent[n.env.ID]
	if parent == -1 {
		return -1
	}
	return n.proto.pos[parent]
}

// commitIfDue finalizes M_i once the listening window has passed.
func (n *node) commitIfDue(round int) {
	if n.committed {
		return
	}
	lp := n.listenPhase()
	if lp >= 0 && round >= (lp+1)*n.proto.m {
		n.msg = n.tally.Winner()
		n.committed = true
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	n.commitIfDue(round)
	phase := round / n.proto.m
	if phase != n.proto.pos[n.env.ID] {
		return nil
	}
	payload := n.msg
	if payload == nil {
		payload = protocol.Default
	}
	if n.proto.model == sim.Radio {
		return []sim.Transmission{{To: sim.Broadcast, Payload: payload}}
	}
	children := n.proto.tree.Children[n.env.ID]
	ts := make([]sim.Transmission, len(children))
	for i, c := range children {
		ts[i] = sim.Transmission{To: c, Payload: payload}
	}
	return ts
}

// Deliver records a vote if the message falls inside this node's listening
// window. In the message passing model only messages on the parent link
// count; in the radio model every reception during the window counts,
// since radio receivers cannot attribute transmissions.
func (n *node) Deliver(round, from int, payload []byte) {
	if n.committed {
		return
	}
	lp := n.listenPhase()
	if lp < 0 || round/n.proto.m != lp {
		return
	}
	if n.proto.model == sim.MessagePassing && from != n.proto.tree.Parent[n.env.ID] {
		return
	}
	n.tally.Add(payload)
}

// Output returns M_i. If the horizon ends before this node's listening
// window closed (a misconfigured, too-short run) the vote is finalized on
// whatever was heard, which preserves the invariant that Output is this
// node's best current belief.
func (n *node) Output() []byte {
	if !n.committed && n.tally.Total() > 0 {
		return n.tally.Winner()
	}
	return n.msg
}

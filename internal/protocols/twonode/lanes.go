package twonode

import "faultcast/internal/sim"

// Lane kernel: the parity-timing protocol in the transposed layout. The
// protocol is content-free — the receiver's output depends only on WHICH
// rounds it received in, never on payload bytes — so the kernel transmits
// the default symbol, ignores the received symbol columns, and keeps just
// two words of receiver state: prev (lanes that received last round) and
// sawPair (lanes that have received in two consecutive rounds). The
// content-freeness is also what lets the public layer lower every
// payload-rewriting adversary for this protocol to the keep-the-targets
// corruption: rewriting bytes the receiver never reads is unobservable.

// NewLaneKernel returns a kernel constructor for the given source vertex
// and source bit (bit1 selects the even-steps-only timing pattern).
func (p *Proto) NewLaneKernel(source int, bit1 bool) func(symbols int) sim.LaneKernel {
	return func(symbols int) sim.LaneKernel {
		return &laneKernel{m: p.m, source: source, bit1: bit1}
	}
}

type laneKernel struct {
	m      int
	source int
	bit1   bool

	prev    uint64 // receiver heard last round
	sawPair uint64 // receiver heard in two consecutive rounds
}

func (k *laneKernel) Reset() { k.prev, k.sawPair = 0, 0 }

// Transmit implements the sender's timing pattern: bit 0 transmits on
// every 1-indexed step 1..2m, bit 1 only on the even steps. Payload
// columns stay clear — the receiver ignores content.
func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	if round >= 2*k.m {
		return
	}
	if k.bit1 && (round+1)%2 != 0 {
		return
	}
	intent[k.source] = ^uint64(0)
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	h := heard[1-k.source]
	k.sawPair |= h & k.prev
	k.prev = h
}

// Verdict: the sender always outputs its own bit; the receiver outputs 0
// iff it saw two consecutive receptions, so the broadcast succeeds on the
// sawPair lanes for bit 0 and on the complement for bit 1.
func (k *laneKernel) Verdict() uint64 {
	if k.bit1 {
		return ^k.sawPair
	}
	return k.sawPair
}

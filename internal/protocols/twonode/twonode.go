// Package twonode implements the parity-timing ("hello") protocol from the
// remark following Theorem 2.3: under the *limited* malicious model —
// where a failure can alter or suppress an intended transmission but
// cannot make a silent node speak — a sender can almost-safely broadcast
// one bit to a receiver over a single link for ANY p < 1, information
// being carried by the timing pattern rather than the content:
//
//   - bit 0: the sender transmits "hello" in every step 1..2m;
//   - bit 1: the sender transmits "hello" only in the even steps 2,4,..,2m;
//   - the receiver outputs 0 iff it received transmissions in two
//     consecutive steps.
//
// If the bit is 1 the receiver is ALWAYS correct (the sender never
// transmits twice in a row and the adversary cannot add transmissions).
// If the bit is 0 it errs only when no two consecutive steps are both
// fault-free, which by Chernoff happens with probability e^(−Θ(m)).
package twonode

import (
	"fmt"

	"faultcast/internal/sim"
)

// Bit0 and Bit1 are the two admissible source messages.
var (
	Bit0 = []byte{'0'}
	Bit1 = []byte{'1'}
)

// hello is the content transmitted; its value is irrelevant to the
// receiver (the adversary may corrupt it freely).
var hello = []byte("hello")

// Proto configures the protocol: m determines the 2m-step horizon.
type Proto struct {
	m int
}

// New returns the protocol with parameter m > 1.
func New(m int) *Proto {
	if m <= 1 {
		panic("twonode: m must be > 1")
	}
	return &Proto{m: m}
}

// Rounds returns the horizon 2m.
func (p *Proto) Rounds() int { return 2 * p.m }

// NewNode returns the instance for node id (0 = sender, 1 = receiver).
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto    *Proto
	env      *sim.Env
	bit      byte // sender only
	lastRecv int  // receiver: last round a transmission was received
	sawPair  bool // receiver: two consecutive receptions observed
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	n.lastRecv = -2
	if env.IsSource() {
		switch string(env.SourceMsg) {
		case string(Bit0):
			n.bit = '0'
		case string(Bit1):
			n.bit = '1'
		default:
			panic(fmt.Sprintf("twonode: source message %q is not a bit", env.SourceMsg))
		}
	}
}

// Transmit implements the sender's timing pattern. Using the paper's
// 1-indexed steps: step s = round+1; bit 0 transmits on every step
// 1..2m, bit 1 only on even steps.
func (n *node) Transmit(round int) []sim.Transmission {
	if !n.env.IsSource() || round >= 2*n.proto.m {
		return nil
	}
	step := round + 1
	if n.bit == '1' && step%2 != 0 {
		return nil
	}
	return []sim.Transmission{{To: sim.Broadcast, Payload: hello}}
}

// Deliver tracks reception timing; content is deliberately ignored, since
// a limited-malicious failure may corrupt it arbitrarily.
func (n *node) Deliver(round, from int, payload []byte) {
	if n.env.IsSource() {
		return
	}
	if round == n.lastRecv+1 {
		n.sawPair = true
	}
	n.lastRecv = round
}

func (n *node) Output() []byte {
	if n.env.IsSource() {
		return []byte{n.bit}
	}
	if n.sawPair {
		return append([]byte(nil), Bit0...)
	}
	return append([]byte(nil), Bit1...)
}

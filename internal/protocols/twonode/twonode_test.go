package twonode

import (
	"bytes"
	"testing"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// run executes the protocol against a dropping (crash) adversary — the
// worst case for this protocol: flipping content is harmless because only
// timing carries information, so the adversary's best move is to suppress
// transmissions, which can only push bit 0 towards a bit-1 reading.
func run(t *testing.T, bit []byte, m int, p float64, seed uint64) *sim.Result {
	t.Helper()
	proto := New(m)
	cfg := &sim.Config{
		Graph: graph.TwoNode(), Model: sim.MessagePassing,
		Fault: sim.LimitedMalicious, P: p,
		Source: 0, SourceMsg: bit,
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		Adversary: adversary.Crash{},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFaultFreeBothBits(t *testing.T) {
	for _, bit := range [][]byte{Bit0, Bit1} {
		proto := New(8)
		cfg := &sim.Config{
			Graph: graph.TwoNode(), Model: sim.MessagePassing, Fault: sim.NoFaults,
			Source: 0, SourceMsg: bit,
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 1,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Errorf("bit %q: fault-free run failed; receiver output %q", bit, res.Outputs[1])
		}
	}
}

// TestBit1NeverErrs: when the source bit is 1, the receiver is ALWAYS
// correct — the sender never transmits in consecutive rounds and a
// limited-malicious adversary cannot add transmissions.
func TestBit1NeverErrs(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		res := run(t, Bit1, 16, 0.8, seed)
		if !bytes.Equal(res.Outputs[1], Bit1) {
			t.Fatalf("seed %d: receiver decoded %q for bit 1", seed, res.Outputs[1])
		}
	}
}

// TestBit0AlmostSafeAtHighP: bit 0 fails only when no two consecutive
// rounds are fault-free, which is exponentially unlikely in m even at
// p = 0.8 — this is the "any p < 1" claim for the limited model.
func TestBit0AlmostSafeAtHighP(t *testing.T) {
	est := stat.Estimate(400, 100, func(seed uint64) bool {
		return run(t, Bit0, 64, 0.8, seed).Success
	})
	if est.Rate() < 0.95 {
		t.Errorf("bit 0 at p=0.8, m=64: success %v", est)
	}
}

// TestContentIgnored: a corrupting adversary that garbles every payload
// must not affect decoding, since only timing carries information.
func TestContentIgnored(t *testing.T) {
	proto := New(16)
	cfg := &sim.Config{
		Graph: graph.TwoNode(), Model: sim.MessagePassing,
		Fault: sim.LimitedMalicious, P: 0.0,
		Source: 0, SourceMsg: Bit0,
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 5,
		Adversary: adversary.Flip{Wrong: []byte("zzz")},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("fault-free run with corrupting adversary configured failed")
	}
}

// TestSmallWindowFailsSometimes: with m tiny and p large, bit 0 decoding
// should fail noticeably often — the error really is e^(−Θ(m)).
func TestSmallWindowFailsSometimes(t *testing.T) {
	est := stat.Estimate(500, 900, func(seed uint64) bool {
		return run(t, Bit0, 2, 0.85, seed).Success
	})
	if est.Rate() > 0.9 {
		t.Errorf("m=2 at p=0.85 should fail often for bit 0, got %v", est)
	}
}

func TestErrorScalesWithM(t *testing.T) {
	rate := func(m int) float64 {
		return stat.Estimate(300, 77, func(seed uint64) bool {
			return run(t, Bit0, m, 0.8, seed).Success
		}).Rate()
	}
	small, large := rate(4), rate(64)
	if large < small {
		t.Errorf("success did not improve with m: m=4 %.3f vs m=64 %.3f", small, large)
	}
}

func TestRejectsBadMessage(t *testing.T) {
	proto := New(4)
	cfg := &sim.Config{
		Graph: graph.TwoNode(), Model: sim.MessagePassing, Fault: sim.NoFaults,
		Source: 0, SourceMsg: []byte("2"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 1,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-bit source message did not panic")
		}
	}()
	_, _ = sim.Run(cfg)
}

func TestNewPanicsOnTinyM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

package radiorepeat

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: the Theorem 3.4 repeated-schedule radio algorithms in the
// transposed layout. Each schedule step i becomes a series of m rounds in
// which the step's transmitter set broadcasts; a node listening in series
// S_i either adopts any genuine reception (Omission-Radio — in the
// two-symbol universe "non-default" means the source message, so a single
// isM word per vertex suffices) or votes (Malicious-Radio — two
// bit-sliced counters per vertex, winner M on the lanes where
// cntM > cntD, the same reduction as simplemalicious: commitment freezes
// the window so committed and truncated outputs share the formula).

// NewLaneKernel returns the transposed protocol instance. RadioRepeat is
// radio-only, so there is no LaneTargets: the LaneSpec takes nil targets.
func (p *Proto) NewLaneKernel() sim.LaneKernel {
	n := len(p.recvStep)
	stepSets := make([][]int, p.steps)
	for v := 0; v < n; v++ { // iterate vertices, not the map, for determinism
		for _, t := range p.sched[v] {
			stepSets[t] = append(stepSets[t], v)
		}
	}
	recvSets := make([][]int, p.steps)
	for v, rs := range p.recvStep {
		if rs >= 0 {
			recvSets[rs] = append(recvSets[rs], v)
		}
	}
	k := &laneKernel{proto: p, stepSets: stepSets, recvSets: recvSets}
	if p.variant == MaliciousVariant {
		width := bits.Len(uint(p.m)) // a series holds at most m votes
		k.cntM = make([][]uint64, n)
		k.cntD = make([][]uint64, n)
		for v := 0; v < n; v++ {
			k.cntM[v] = make([]uint64, width)
			k.cntD[v] = make([]uint64, width)
		}
	} else {
		k.isM = make([]uint64, n)
	}
	return k
}

type laneKernel struct {
	proto    *Proto
	stepSets [][]int // series -> transmitting vertices
	recvSets [][]int // series -> vertices whose listening window it is

	isM        []uint64   // OmissionVariant belief state
	cntM, cntD [][]uint64 // MaliciousVariant vote counters
}

func (k *laneKernel) Reset() {
	if k.proto.variant == OmissionVariant {
		for v := range k.isM {
			k.isM[v] = 0
			if k.proto.recvStep[v] < 0 { // the source
				k.isM[v] = ^uint64(0)
			}
		}
		return
	}
	for v := range k.cntM {
		for j := range k.cntM[v] {
			k.cntM[v][j], k.cntD[v][j] = 0, 0
		}
	}
}

func (k *laneKernel) Transmit(round int, intent, payM []uint64) {
	series := round / k.proto.m
	if series >= len(k.stepSets) {
		return
	}
	for _, v := range k.stepSets[series] {
		intent[v] = ^uint64(0)
		rs := k.proto.recvStep[v]
		switch {
		case rs < 0: // the source always transmits M
			payM[v] = ^uint64(0)
		case k.proto.variant == OmissionVariant:
			payM[v] = k.isM[v]
		case round >= (rs+1)*k.proto.m:
			// The listening series is over and the vote committed; the
			// counters are frozen, so recomputing the winner each round
			// reproduces the scalar M_v exactly.
			payM[v] = bitset.LaneGT(k.cntM[v], k.cntD[v])
		default:
			payM[v] = 0 // not yet committed: "transmit 0"
		}
	}
}

func (k *laneKernel) Absorb(round int, heard, heardM []uint64) {
	series := round / k.proto.m
	if series >= len(k.recvSets) {
		return
	}
	for _, v := range k.recvSets[series] {
		if k.proto.variant == OmissionVariant {
			k.isM[v] |= heard[v] & heardM[v]
			continue
		}
		bitset.LaneAdd(k.cntM[v], heard[v]&heardM[v])
		bitset.LaneAdd(k.cntD[v], heard[v]&^heardM[v])
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	if k.proto.variant == OmissionVariant {
		for _, w := range k.isM {
			and &= w
		}
		return and
	}
	for v := range k.cntM {
		if k.proto.recvStep[v] < 0 {
			continue // the source holds M by definition
		}
		and &= bitset.LaneGT(k.cntM[v], k.cntD[v])
	}
	return and
}

package radiorepeat

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: the Theorem 3.4 repeated-schedule radio algorithms in the
// transposed layout. Each schedule step i becomes a series of m rounds in
// which the step's transmitter set broadcasts; a node listening in series
// S_i either adopts the first NON-default reception and sticks with it
// (Omission-Radio — an informed bit plus the adopted payload's symbol
// columns per vertex) or votes (Malicious-Radio — one bit-sliced counter
// per payload symbol, winner by word-parallel plurality, the same
// reduction as simplemalicious: commitment freezes the window so
// committed and truncated outputs share the formula).

// NewLaneKernel returns the transposed protocol instance for the given
// symbol-alphabet size. RadioRepeat is radio-only, so there is no
// LaneTargets: the LaneSpec takes nil targets.
func (p *Proto) NewLaneKernel(symbols int) sim.LaneKernel {
	n := len(p.recvStep)
	stepSets := make([][]int, p.steps)
	for v := 0; v < n; v++ { // iterate vertices, not the map, for determinism
		for _, t := range p.sched[v] {
			stepSets[t] = append(stepSets[t], v)
		}
	}
	recvSets := make([][]int, p.steps)
	for v, rs := range p.recvStep {
		if rs >= 0 {
			recvSets[rs] = append(recvSets[rs], v)
		}
	}
	k := &laneKernel{proto: p, stepSets: stepSets, recvSets: recvSets}
	if p.variant == MaliciousVariant {
		width := bits.Len(uint(p.m)) // a series holds at most m votes
		k.cntM = make([][]uint64, n)
		k.cntD = make([][]uint64, n)
		if symbols == 3 {
			k.cnt2 = make([][]uint64, n)
		}
		for v := 0; v < n; v++ {
			k.cntM[v] = make([]uint64, width)
			k.cntD[v] = make([]uint64, width)
			if k.cnt2 != nil {
				k.cnt2[v] = make([]uint64, width)
			}
		}
	} else {
		k.has = make([]uint64, n)
		k.bel = make([][]uint64, symbols-1)
		for c := range k.bel {
			k.bel[c] = make([]uint64, n)
		}
	}
	return k
}

type laneKernel struct {
	proto    *Proto
	stepSets [][]int // series -> transmitting vertices
	recvSets [][]int // series -> vertices whose listening window it is

	// OmissionVariant: sticky first-non-default adoption state.
	has []uint64
	bel [][]uint64 // adopted payload symbol columns; bel[0] = "belief is M"

	// MaliciousVariant: per-symbol vote counters (cnt2 nil for 2 symbols).
	cntM, cntD, cnt2 [][]uint64
}

// winner returns the lanes where v's plurality vote resolves to the
// source message (w1) and to the third symbol (w2; zero for two symbols).
func (k *laneKernel) winner(v int) (w1, w2 uint64) {
	if k.cnt2 == nil {
		return bitset.LaneGT(k.cntM[v], k.cntD[v]), 0
	}
	return bitset.LanePlurality(k.cntD[v], k.cntM[v], k.cnt2[v])
}

func (k *laneKernel) Reset() {
	if k.proto.variant == OmissionVariant {
		for v := range k.has {
			k.has[v] = 0
			for c := range k.bel {
				k.bel[c][v] = 0
			}
			if k.proto.recvStep[v] < 0 { // the source
				k.has[v] = ^uint64(0)
				k.bel[0][v] = ^uint64(0)
			}
		}
		return
	}
	for v := range k.cntM {
		for j := range k.cntM[v] {
			k.cntM[v][j], k.cntD[v][j] = 0, 0
			if k.cnt2 != nil {
				k.cnt2[v][j] = 0
			}
		}
	}
}

func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	series := round / k.proto.m
	if series >= len(k.stepSets) {
		return
	}
	for _, v := range k.stepSets[series] {
		intent[v] = ^uint64(0)
		rs := k.proto.recvStep[v]
		switch {
		case rs < 0: // the source always transmits M
			pay[0][v] = ^uint64(0)
		case k.proto.variant == OmissionVariant:
			for c := range k.bel {
				pay[c][v] = k.bel[c][v]
			}
		case round >= (rs+1)*k.proto.m:
			// The listening series is over and the vote committed; the
			// counters are frozen, so recomputing the winner each round
			// reproduces the scalar M_v exactly.
			w1, w2 := k.winner(v)
			pay[0][v] = w1
			if k.cnt2 != nil {
				pay[1][v] = w2
			}
		default:
			// not yet committed: "transmit 0" (columns stay clear)
		}
	}
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	series := round / k.proto.m
	if series >= len(k.recvSets) {
		return
	}
	for _, v := range k.recvSets[series] {
		if k.proto.variant == OmissionVariant {
			nonDef := uint64(0)
			for c := range k.bel {
				nonDef |= sym[c][v]
			}
			adopt := heard[v] & nonDef &^ k.has[v]
			for c := range k.bel {
				k.bel[c][v] |= adopt & sym[c][v]
			}
			k.has[v] |= adopt
			continue
		}
		bitset.LaneAdd(k.cntM[v], heard[v]&sym[0][v])
		if k.cnt2 == nil {
			bitset.LaneAdd(k.cntD[v], heard[v]&^sym[0][v])
			continue
		}
		bitset.LaneAdd(k.cnt2[v], heard[v]&sym[1][v])
		bitset.LaneAdd(k.cntD[v], heard[v]&^sym[0][v]&^sym[1][v])
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	if k.proto.variant == OmissionVariant {
		for _, w := range k.bel[0] {
			and &= w
		}
		return and
	}
	for v := range k.cntM {
		if k.proto.recvStep[v] < 0 {
			continue // the source holds M by definition
		}
		w1, _ := k.winner(v)
		and &= w1
	}
	return and
}

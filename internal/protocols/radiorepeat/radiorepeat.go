// Package radiorepeat implements the O(opt·log n) almost-safe radio
// broadcasting algorithms of Theorem 3.4. Given an optimal (or
// near-optimal) fault-free broadcast schedule A for the graph, every step
// i of A is repeated as a series S_i of m = ceil(c·log n) consecutive
// steps:
//
//   - Algorithm Omission-Radio: a node v that receives the message from
//     p(v) in step i of A sets M_v to any message received during series
//     S_i (under omission failures any reception is genuine);
//   - Algorithm Malicious-Radio: v sets M_v to the majority of the
//     messages received during series S_i (default "0" on ties).
//
// In later series where A instructs v to transmit, v transmits M_v. Total
// time is |A|·m = O(opt·log n).
package radiorepeat

import (
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
)

// Variant selects the reception rule.
type Variant int

const (
	// OmissionVariant adopts any genuine (non-default) reception.
	OmissionVariant Variant = iota
	// MaliciousVariant takes the majority over the listening series.
	MaliciousVariant
)

func (v Variant) String() string {
	if v == OmissionVariant {
		return "omission-radio"
	}
	return "malicious-radio"
}

// Proto holds the precomputed schedule roles.
type Proto struct {
	variant  Variant
	m        int
	steps    int
	recvStep []int          // listening series per node (-1 = source/never)
	sched    map[int][]int  // node -> series indices in which it transmits
	outcome  *radio.Outcome // kept for tests/diagnostics
}

// New prepares the protocol for graph g, source, and fault-free schedule
// s; c is the window constant of m = ceil(c·log n). It fails if the
// schedule does not inform every node fault-free (it would not be a
// broadcast algorithm).
func New(g *graph.Graph, source int, s *radio.Schedule, variant Variant, c float64) (*Proto, error) {
	out, err := radio.Simulate(g, source, s)
	if err != nil {
		return nil, err
	}
	for v, inf := range out.Informed {
		if !inf {
			return nil, fmt.Errorf("radiorepeat: schedule does not inform node %d", v)
		}
	}
	p := &Proto{
		variant:  variant,
		m:        protocol.WindowLen(c, g.N()),
		steps:    s.Len(),
		recvStep: out.RecvStep,
		sched:    make(map[int][]int),
		outcome:  out,
	}
	for t, set := range s.Steps {
		for _, v := range set {
			p.sched[v] = append(p.sched[v], t)
		}
	}
	return p, nil
}

// WindowLen returns m.
func (p *Proto) WindowLen() int { return p.m }

// Rounds returns the total running time |A|·m.
func (p *Proto) Rounds() int { return p.steps * p.m }

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p, tally: protocol.NewTally()}
}

type node struct {
	proto     *Proto
	env       *sim.Env
	tally     *protocol.Tally
	msg       []byte
	committed bool
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	if env.IsSource() {
		n.msg = env.SourceMsg
		n.committed = true
	}
}

func (n *node) commitIfDue(round int) {
	if n.committed || n.proto.variant != MaliciousVariant {
		return
	}
	rs := n.proto.recvStep[n.env.ID]
	if rs >= 0 && round >= (rs+1)*n.proto.m {
		n.msg = n.tally.Winner()
		n.committed = true
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	n.commitIfDue(round)
	series := round / n.proto.m
	scheduled := false
	for _, t := range n.proto.sched[n.env.ID] {
		if t == series {
			scheduled = true
			break
		}
	}
	if !scheduled {
		return nil
	}
	payload := n.msg
	if payload == nil {
		payload = protocol.Default
	}
	return []sim.Transmission{{To: sim.Broadcast, Payload: payload}}
}

func (n *node) Deliver(round, from int, payload []byte) {
	if n.committed {
		return
	}
	series := round / n.proto.m
	if series != n.proto.recvStep[n.env.ID] {
		return
	}
	switch n.proto.variant {
	case OmissionVariant:
		// Under omission failures every heard message is a sender's
		// genuine belief, which is always the true message or the default;
		// adopt the first non-default one.
		if !protocol.IsDefault(payload) {
			n.msg = append([]byte(nil), payload...)
			n.committed = true
		}
	case MaliciousVariant:
		n.tally.Add(payload)
	}
}

func (n *node) Output() []byte {
	if !n.committed && n.proto.variant == MaliciousVariant && n.tally.Total() > 0 {
		return n.tally.Winner()
	}
	return n.msg
}

package radiorepeat

import (
	"testing"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

var msg = []byte("1")

func mkProto(t *testing.T, g *graph.Graph, s *radio.Schedule, v Variant, c float64) *Proto {
	t.Helper()
	p, err := New(g, 0, s, v, c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func estimate(t *testing.T, g *graph.Graph, s *radio.Schedule, v Variant, fault sim.FaultType, adv sim.Adversary, p, c float64, trials int) stat.Proportion {
	t.Helper()
	proto := mkProto(t, g, s, v, c)
	return stat.Estimate(trials, 700, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.Radio, Fault: fault, P: p,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adv,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
}

func TestFaultFreeBothVariants(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		s *radio.Schedule
	}{
		{graph.Line(10), radio.LineSchedule(10)},
		{graph.Layered(4), radio.LayeredSchedule(4)},
		{graph.Grid(4, 4), radio.Greedy(graph.Grid(4, 4), 0)},
	}
	for _, tc := range cases {
		for _, v := range []Variant{OmissionVariant, MaliciousVariant} {
			proto := mkProto(t, tc.g, tc.s, v, 2)
			cfg := &sim.Config{
				Graph: tc.g, Model: sim.Radio, Fault: sim.NoFaults,
				Source: 0, SourceMsg: msg,
				NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 1,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Errorf("%v/%v fault-free failed at node %d", tc.g, v, res.FirstFailed)
			}
		}
	}
}

// TestOmissionRadioAlmostSafe is Theorem 3.4 part 1: Omission-Radio is
// almost-safe for any p < 1, in time |A|·m.
func TestOmissionRadioAlmostSafe(t *testing.T) {
	g := graph.Layered(4) // n = 20
	s := radio.LayeredSchedule(4)
	n := float64(g.N())
	est := estimate(t, g, s, OmissionVariant, sim.Omission, nil, 0.6, 6, 300)
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("omission-radio p=0.6: %v, want >= %.4f", est, 1-1/n)
	}
}

// TestMaliciousRadioAlmostSafeBelowThreshold is Theorem 3.4 part 2 on a
// bounded-degree graph with p below the (1−p)^(Δ+1) fixed point.
func TestMaliciousRadioAlmostSafeBelowThreshold(t *testing.T) {
	g := graph.Line(12) // Δ=2, p* ≈ 0.276
	s := radio.LineSchedule(12)
	p := stat.RadioThreshold(g.MaxDegree()) * 0.45
	n := float64(g.N())
	est := estimate(t, g, s, MaliciousVariant, sim.Malicious,
		adversary.Flip{Wrong: []byte("0")}, p, 10, 300)
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("malicious-radio p=%.3f: %v, want >= %.4f", p, est, 1-1/n)
	}
}

// TestOmissionVariantSmallWindowFails: with m=1 and large p the repetition
// buys nothing and the broadcast usually dies.
func TestOmissionVariantSmallWindowFails(t *testing.T) {
	g := graph.Line(16)
	s := radio.LineSchedule(16)
	est := estimate(t, g, s, OmissionVariant, sim.Omission, nil, 0.7, 0.25, 200)
	if est.Rate() > 0.3 {
		t.Errorf("m=1 at p=0.7 should usually fail, got %v", est)
	}
}

func TestRejectsIncompleteSchedule(t *testing.T) {
	g := graph.Line(5)
	if _, err := New(g, 0, &radio.Schedule{Steps: [][]int{{0}}}, OmissionVariant, 2); err == nil {
		t.Fatal("incomplete schedule accepted")
	}
}

func TestRoundsFormula(t *testing.T) {
	g := graph.Line(8)
	s := radio.LineSchedule(8)
	proto := mkProto(t, g, s, OmissionVariant, 2)
	if proto.WindowLen() != 6 { // ceil(2·log2 8)
		t.Fatalf("m = %d, want 6", proto.WindowLen())
	}
	if proto.Rounds() != 7*6 {
		t.Fatalf("rounds = %d, want 42", proto.Rounds())
	}
}

// TestGreedyScheduleUnderFaults: the full pipeline (greedy scheduler →
// malicious-radio) on a small bounded-degree graph below threshold.
func TestGreedyScheduleUnderFaults(t *testing.T) {
	g := graph.Grid(3, 3) // Δ = 4
	s := radio.Greedy(g, 0)
	p := stat.RadioThreshold(g.MaxDegree()) * 0.4
	n := float64(g.N())
	est := estimate(t, g, s, MaliciousVariant, sim.Malicious,
		adversary.Flip{Wrong: []byte("0")}, p, 10, 300)
	if est.Rate() < 1-1/n {
		t.Errorf("grid malicious-radio p=%.4f: %v", p, est)
	}
}

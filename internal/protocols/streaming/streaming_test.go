package streaming

import (
	"testing"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

var msg = []byte("1")

func estimate(t *testing.T, g *graph.Graph, fault sim.FaultType, adv sim.Adversary, p, c, a float64, trials int) stat.Proportion {
	t.Helper()
	proto := New(g, 0, c)
	return stat.Estimate(trials, 4200, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: fault, P: p,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(a), Seed: seed,
			Adversary: adv,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
}

func TestFaultFree(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(10), graph.KaryTree(15, 2), graph.Star(8)} {
		proto := New(g, 0, 4)
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.NoFaults,
			Source: 0, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(3), Seed: 1,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Errorf("%v: fault-free streaming failed at node %d", g, res.FirstFailed)
		}
	}
}

// TestAlmostSafeBelowHalf: the unsynchronized variant retains the p < 1/2
// guarantee against a flipping adversary.
func TestAlmostSafeBelowHalf(t *testing.T) {
	g := graph.KaryTree(15, 2)
	n := float64(g.N())
	est := estimate(t, g, sim.Malicious, adversary.Flip{Wrong: []byte("0")}, 0.3, 12, 4, 300)
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("streaming p=0.3: %v, want >= %.4f", est, 1-1/n)
	}
}

// TestFalseAcceptanceRare: even when every faulty transmission carries the
// same wrong message, a node should essentially never accept it — the
// wrong message must fill half a window, which at p = 0.3 has probability
// e^(-Θ(m)).
func TestFalseAcceptanceRare(t *testing.T) {
	g := graph.Line(6)
	est := estimate(t, g, sim.Malicious, adversary.Flip{Wrong: []byte("0")}, 0.3, 16, 4, 300)
	if est.Rate() < 0.98 {
		t.Errorf("false acceptances too common: %v", est)
	}
}

// TestFasterThanPhasesOnDeepTrees: the pipelined variant finishes in
// O(D·m), far below the phase algorithm's n·m on a deep line.
func TestFasterThanPhasesOnDeepTrees(t *testing.T) {
	g := graph.Line(32)
	proto := New(g, 0, 8)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.2,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: proto.Rounds(3), Seed: 5,
		Adversary:       adversary.Flip{Wrong: []byte("0")},
		TrackCompletion: true,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("streaming run failed")
	}
	phaseRounds := 32 * proto.WindowLen() // what Simple-Malicious would need
	if res.CompletedRound+1 >= phaseRounds {
		t.Errorf("completed in %d rounds, not faster than the %d-round phase algorithm",
			res.CompletedRound+1, phaseRounds)
	}
}

// TestAboveHalfFails: above the 1/2 threshold the flipping adversary owns
// windows and the protocol cannot be almost-safe (consistent with Thm 2.3).
func TestAboveHalfFails(t *testing.T) {
	g := graph.Line(8)
	est := estimate(t, g, sim.Malicious, adversary.Flip{Wrong: []byte("0")}, 0.6, 8, 4, 200)
	if est.Rate() > 0.9 {
		t.Errorf("streaming at p=0.6 should not be almost-safe: %v", est)
	}
}

func TestRoundsPanicsOnBadMultiplier(t *testing.T) {
	proto := New(graph.Line(4), 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Rounds(0) did not panic")
		}
	}()
	proto.Rounds(0)
}

func TestSingleNode(t *testing.T) {
	g := graph.Line(1)
	proto := New(g, 0, 2)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.5,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: proto.Rounds(2), Seed: 1,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("single node should trivially succeed")
	}
}

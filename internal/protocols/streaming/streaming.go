// Package streaming implements the unsynchronized variant of
// Simple-Malicious described after Theorem 2.2: it removes the two
// assumptions of the phase-based algorithm — that nodes know their index
// in the enumeration and that all nodes wake up simultaneously.
//
// In this variant there are no global phases. Every node listens on all
// incident links all the time. On each round t and for each link, a node
// examines the messages heard on that link in the window of the last m
// rounds; once at least m/2 identical copies of the same message have
// arrived on some link, it accepts that message as genuine and starts its
// own transmission window, sending the accepted message to all tree
// children in every subsequent round. By Chernoff's bound, a false
// message accumulates m/2 copies within a window only with exponentially
// small probability when p < 1/2, while a transmitting healthy parent
// fills the window in roughly m/(2(1−p)) rounds.
//
// The cost relative to the phase algorithm is pipelining granularity: a
// node relays only after its own acceptance, so end-to-end time is
// O(D·m) = O(D·log n) rather than O(n·m) — much faster on deep trees,
// and with no shared clock.
package streaming

import (
	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/sim"
)

// Proto holds the preprocessed tree and window parameters.
type Proto struct {
	tree *graph.Tree
	m    int
}

// New prepares the protocol; c is the window constant of m = ceil(c·log n).
func New(g *graph.Graph, source int, c float64) *Proto {
	return &Proto{
		tree: graph.BFSTree(g, source),
		m:    protocol.WindowLen(c, g.N()),
	}
}

// WindowLen returns m.
func (p *Proto) WindowLen() int { return p.m }

// Rounds returns a horizon sufficient for almost-safe completion: each
// hop accepts within ~m rounds of its parent starting to transmit (the
// window needs m/2 hits at rate ≥ 1−p ≥ 1/2), so a·D·m rounds with a
// small constant a suffice.
func (p *Proto) Rounds(a float64) int {
	if a <= 0 {
		panic("streaming: round multiplier must be positive")
	}
	d := p.tree.Height()
	if d == 0 {
		return 1
	}
	r := int(a * float64(d) * float64(p.m))
	if r < 1 {
		r = 1
	}
	return r
}

// NewNode returns the protocol instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto  *Proto
	env    *sim.Env
	window *protocol.MajorityBuffer
	// heardThisRound buffers the parent-link observation for the current
	// round (nil = silence), folded into the window when the round ends.
	heardThisRound []byte
	lastSeenRound  int
	msg            []byte
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	n.window = protocol.NewMajorityBuffer(n.proto.m)
	n.lastSeenRound = -1
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

// rollWindow folds the pending observation of every completed round into
// the sliding window. Rounds with no Deliver call count as silence.
func (n *node) rollWindow(nowRound int) {
	if n.msg != nil {
		return // already accepted; the window is no longer consulted
	}
	for n.lastSeenRound < nowRound-1 {
		n.lastSeenRound++
		n.window.Observe(n.heardThisRound)
		n.heardThisRound = nil
		if accepted := n.window.Accepted(); accepted != nil {
			n.msg = accepted
			return
		}
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	n.rollWindow(round)
	if n.msg == nil {
		return nil
	}
	children := n.proto.tree.Children[n.env.ID]
	if len(children) == 0 {
		return nil
	}
	ts := make([]sim.Transmission, len(children))
	for i, c := range children {
		ts[i] = sim.Transmission{To: c, Payload: n.msg}
	}
	return ts
}

func (n *node) Deliver(round, from int, payload []byte) {
	if n.msg != nil || from != n.proto.tree.Parent[n.env.ID] {
		return
	}
	n.heardThisRound = append([]byte(nil), payload...)
	n.lastSeenRound = round - 1 // ensure rollWindow folds exactly this round next
}

func (n *node) Output() []byte { return n.msg }

package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"faultcast"
	"faultcast/internal/exec"
	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/rng"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// Options tunes a harness run.
type Options struct {
	// Trials is the Monte-Carlo sample size per table cell (default 200).
	Trials int
	// Seed is the base seed; every cell derives its own stream from it.
	Seed uint64
	// Quick shrinks graphs and trial counts so the whole suite runs in
	// seconds (used by tests); full-size runs feed EXPERIMENTS.md.
	Quick bool
	// FullTrials disables early stopping: every cell runs all of its
	// trials even after its interval is already decided against the
	// cell's target. Early stopping halts on a band strictly wider than
	// the one the verdict reads, so a stopped cell's displayed verdict is
	// always decided in the stopping direction; for a frontier cell whose
	// true rate sits at the target, the repeated per-batch looks still
	// make a momentarily-decided stop more likely than a single look at
	// the full sample would be, so its verdict can differ from a -full
	// run's. That caveat includes the pinned cells of E3/E5, whose
	// two-sided verdict locks in "not pinned" on a stop (for a truly
	// pinned cell a spurious stop needs a >4-sigma excursion, so they run
	// their full sample in practice). Cells with no pass/fail target —
	// A1's constant sweep, A2's adversary comparison, E6's
	// predicted-value check, and the completion-time tables — never stop
	// early.
	FullTrials bool
	// Progress, if non-nil, receives one line per experiment stage.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 200
		if o.Quick {
			o.Trials = 60
		}
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Experiment is one reproducible unit: a theorem/lemma of the paper mapped
// to a table generator.
type Experiment struct {
	ID    string
	Claim string // the paper statement being exercised
	Run   func(o Options) []*Table
}

// Registry returns all experiments in display order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "E1", Claim: "Thm 2.1: omission failures, any p<1: Simple-Omission is almost-safe in both models", Run: RunE1},
		{ID: "E2", Claim: "Thm 2.2: malicious MP, p<1/2: Simple-Malicious is almost-safe", Run: RunE2},
		{ID: "E3", Claim: "Thm 2.3: malicious MP, p>=1/2: infeasible (equivocator pins error at 1/2)", Run: RunE3},
		{ID: "E4", Claim: "Thm 2.4(<=): malicious radio, p<(1-p)^(Δ+1): Simple-Malicious is almost-safe", Run: RunE4},
		{ID: "E5", Claim: "Thm 2.4(=>): malicious radio, p>=(1-p)^(Δ+1): infeasible (star adversary)", Run: RunE5},
		{ID: "E6", Claim: "§2.2.2 remark: limited malicious on K2: timing protocol works for any p<1", Run: RunE6},
		{ID: "E7", Claim: "Thm 3.1: omission MP: flooding runs in optimal Θ(D+log n)", Run: RunE7},
		{ID: "E8", Claim: "Thm 3.2/Lem 3.2: limited-malicious MP in O(D+log^α n) via CO1/CO2 composition", Run: RunE8},
		{ID: "E9", Claim: "Lem 3.3: layered graph G_m has fault-free radio opt exactly m+1", Run: RunE9},
		{ID: "E10", Claim: "Lem 3.4/Thm 3.3: almost-safe radio on G_m needs ω(opt+log n) steps", Run: RunE10},
		{ID: "E11", Claim: "Thm 3.4: radio, both fault types: almost-safe in O(opt·log n)", Run: RunE11},
		{ID: "A1", Claim: "Ablation: window constant c in m=⌈c·log n⌉ trades time for safety", Run: RunA1},
		{ID: "A2", Claim: "Ablation: adversary strength (crash < noise < flip < equivocator)", Run: RunA2},
		{ID: "A3", Claim: "Ablation: sequential vs goroutine-per-node engine equivalence", Run: RunA3},
		{ID: "A4", Claim: "Ablation: synchronized phases vs the unsynchronized sliding-window variant", Run: RunA4},
		{ID: "A5", Claim: "Ablation: anonymous radio schedules (modulo-K / prime powers, §2.1)", Run: RunA5},
		{ID: "A6", Claim: "Ablation: Kučera serial fan-out ρ — time constant vs error exponent", Run: RunA6},
		{ID: "B1", Claim: "Baseline: Thm 3.4 Omission-Radio vs randomized Decay broadcast", Run: RunB1},
		{ID: "F1", Claim: "Figure: informing curves (fraction informed vs round) for flooding and Decay", Run: RunF1},
		{ID: "OP1", Claim: "Open problem 1 probe: MP malicious time — known techniques pay D·log n, not D+log n", Run: RunOP1},
		{ID: "OP2", Claim: "Open problem 2 probe: the radio repetition window cannot shrink below Θ(log n)", Run: RunOP2},
		{ID: "G1", Claim: "Extension (ref [13]): almost-safe gossiping in O(D + log n) under omission faults", Run: RunG1},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and renders results to w.
func RunAll(o Options, w io.Writer) {
	for _, e := range Registry() {
		fmt.Fprintf(w, "== %s: %s ==\n\n", e.ID, e.Claim)
		for _, t := range e.Run(o) {
			t.Render(w)
			fmt.Fprintln(w)
		}
	}
}

// --- shared helpers -------------------------------------------------------

// msg1 is the canonical experiment payload.
var msg1 = []byte("1")

// newRunner compiles the cell configuration into a reusable engine runner;
// harness configurations are static, so construction errors are bugs.
func newRunner(cfg *sim.Config) *sim.Runner {
	r, err := sim.NewRunner(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return r
}

// stopRule returns the cell's early-stopping rule: decided against target
// on a Wilson band 30% wider than the verdict's z, so that whenever the
// stream stops, the verdict band (a subset of the stopping band) is
// decided the same way on the executed sample. target < 0, or
// Options.FullTrials, disables stopping.
func (o Options) stopRule(target, z float64) stat.StopRule {
	if o.FullTrials || target < 0 {
		return stat.StopRule{}
	}
	return stat.StopRule{Target: target, UseTarget: true, Z: z * 1.3}
}

// cellSeed derives the trial-stream base seed for a named cell from the
// harness master seed — rng.Derive of (seed, key), the sweep layer's
// scheme, replacing the old o.Seed^cellConst XOR (which correlated cell
// streams with the master and let distinct cells collide).
func (o Options) cellSeed(key string) uint64 {
	return rng.Derive(o.Seed, key)
}

// successRate estimates the success rate of one cell. cfg is compiled
// once (its Seed field is ignored) and every worker streams trials
// through its own reusable runner; the trial stream's base seed derives
// from (o.Seed, cellKey). target >= 0 stops the stream early once the
// interval is decided against it (on a band wider than the 95% verdict
// band; see stopRule).
//
// Experiments expressible through the public API run whole grids at once
// via runSweep instead; this is the path for cells whose protocols or
// scoring the public Config cannot name (custom radio schedules, the
// bit-alternating impossibility trials).
func successRate(o Options, cellKey string, target float64, cfg *sim.Config) stat.Proportion {
	return successRateN(o.Trials, o.cellSeed(cellKey), o.stopRule(target, 1.96), cfg)
}

// successRateN is successRate with an explicit trial count and stop rule.
func successRateN(trials int, baseSeed uint64, rule stat.StopRule, cfg *sim.Config) stat.Proportion {
	return estimateCell(trials, baseSeed, rule, func() stat.Trial {
		r := newRunner(cfg)
		return func(seed uint64) bool {
			res, err := r.Run(seed)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			return res.Success
		}
	})
}

// estimateCell schedules one estimation cell on the shared scheduler —
// every harness estimate now rides internal/exec, the same machinery as
// Plan.Estimate and SweepPlan.Run.
func estimateCell(trials int, baseSeed uint64, rule stat.StopRule, mk stat.TrialMaker) stat.Proportion {
	return exec.EstimateCell(0, exec.Cell{
		MaxTrials: trials, BaseSeed: baseSeed, Rule: rule, NewTrial: mk,
	})
}

// runSweep compiles and runs a declarative grid on one shared worker
// pool, returning estimates in cell (cross-product) order. Harness grids
// are static, so compile errors are bugs.
func runSweep(spec faultcast.SweepSpec) []faultcast.CellResult {
	sp, err := faultcast.CompileSweep(spec)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	res, err := sp.Collect(context.Background())
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return res
}

// sweepBudget is the per-cell budget matching this Options: o.Trials
// trials, stopped early against the almost-safe bound (on the
// verdict-band × 1.3 stopping band stopRule uses) unless almostSafe is
// false or FullTrials disables stopping.
func (o Options) sweepBudget(almostSafe bool) faultcast.CellBudget {
	b := faultcast.CellBudget{Trials: o.Trials}
	if almostSafe && !o.FullTrials {
		b.AlmostSafe = true
		b.Z = 1.96 * 1.3
	}
	return b
}

// bitTrial returns a per-worker trial stream for the impossibility cells,
// whose trials alternate the broadcast bit by seed parity. mk compiles one
// configuration per bit (called twice, up front); mapSeed maps the trial
// seed to the run seed; won scores a run given the bit that was sent.
func bitTrial(mk func(msg []byte) *sim.Config, mapSeed func(uint64) uint64, won func(res *sim.Result, msg []byte) bool) stat.TrialMaker {
	cfg0, cfg1 := mk([]byte("0")), mk([]byte("1"))
	return func() stat.Trial {
		r0, r1 := newRunner(cfg0), newRunner(cfg1)
		return func(seed uint64) bool {
			r, msg := r0, cfg0.SourceMsg
			if seed&1 == 1 {
				r, msg = r1, cfg1.SourceMsg
			}
			res, err := r.Run(mapSeed(seed))
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			return won(res, msg)
		}
	}
}

// completionMeasure adapts one cell to stat.MeanStdWith: each worker owns a
// reusable runner; a trial yields its completion time (rounds) on success.
func completionMeasure(cfg *sim.Config) func() stat.Measure {
	return func() stat.Measure {
		r := newRunner(cfg)
		return func(seed uint64) (float64, bool) {
			res, err := r.Run(seed)
			if err != nil {
				panic(fmt.Sprintf("harness: %v", err))
			}
			if !res.Success {
				return 0, false
			}
			return float64(res.CompletedRound + 1), true
		}
	}
}

// almostSafe is the paper's target success probability for an n-node graph.
func almostSafe(n int) float64 { return 1 - 1/float64(n) }

// omissionWindowC and maliciousWindowC alias the shared window-constant
// derivations in internal/protocol (see WindowCOmission/WindowCMalicious).
func omissionWindowC(p float64) float64  { return protocol.WindowCOmission(p) }
func maliciousWindowC(q float64) float64 { return protocol.WindowCMalicious(q) }

// graphSet returns the standard experiment graphs, scaled down in Quick
// mode. Each entry carries its broadcast source.
type namedGraph struct {
	g   *graph.Graph
	src int
}

// sweepGraphs lifts the harness graph set onto the sweep API's graph axis.
func sweepGraphs(ngs []namedGraph) []faultcast.SweepGraph {
	out := make([]faultcast.SweepGraph, len(ngs))
	for i, ng := range ngs {
		out[i] = faultcast.SweepGraph{Graph: ng.g, Source: ng.src}
	}
	return out
}

func standardGraphs(o Options) []namedGraph {
	if o.Quick {
		return []namedGraph{
			{graph.Line(16), 0},
			{graph.KaryTree(15, 2), 0},
			{graph.Grid(4, 4), 0},
		}
	}
	return []namedGraph{
		{graph.Line(64), 0},
		{graph.KaryTree(63, 2), 0},
		{graph.Grid(8, 8), 0},
		{graph.Star(32), 1},
	}
}

func pow(x float64, y int) float64 { return math.Pow(x, float64(y)) }

func ln(x float64) float64 { return math.Log(x) }

// sortedKeys returns map keys in sorted order (determinism for tables).
func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

package harness

import (
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/kucera"
	"faultcast/internal/protocols/decay"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunB1 compares the paper's schedule-repetition algorithm (Theorem 3.4,
// Omission-Radio) with a randomized topology-oblivious Decay baseline:
// the paper's algorithm buys determinism and collision-freedom with
// central preprocessing; Decay needs nothing but n and pays a log-factor
// of collisions. Both must be almost-safe under omission failures; the
// table reports their time-to-completion side by side.
func RunB1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "B1 — Thm 3.4 Omission-Radio vs randomized Decay baseline (radio, omission p = 0.5)",
		Note:    "both almost-safe; Omission-Radio is deterministic and collision-free, Decay is topology-oblivious but collides",
		Headers: []string{"graph", "algorithm", "horizon", "mean completion", "success", "95% CI", "target", "verdict"},
	}
	type cse struct {
		ng    namedGraph
		sched *radio.Schedule
	}
	cases := []cse{
		{namedGraph{graph.Layered(4), 0}, radio.LayeredSchedule(4)},
		{namedGraph{graph.Grid(5, 5), 0}, radio.Greedy(graph.Grid(5, 5), 0)},
	}
	if o.Quick {
		cases = cases[:1]
	}
	const p = 0.5
	for _, tc := range cases {
		n := tc.ng.g.N()
		target := almostSafe(n)

		repeatProto, err := radiorepeat.New(tc.ng.g, tc.ng.src, tc.sched, radiorepeat.OmissionVariant, omissionWindowC(p))
		if err != nil {
			panic(err)
		}
		decayProto := decay.New(tc.ng.g)
		variants := []struct {
			name    string
			newNode func(int) sim.Node
			rounds  int
		}{
			{"omission-radio (Thm 3.4)", repeatProto.NewNode, repeatProto.Rounds()},
			{"decay (randomized baseline)", decayProto.NewNode, decayProto.Rounds(40 + 8*tc.ng.g.Radius(tc.ng.src))},
		}
		for _, v := range variants {
			mean, _, failed := stat.MeanStdWith(o.Trials, o.cellSeed(fmt.Sprintf("B1|%s|%s", tc.ng.g.Name(), v.name)), completionMeasure(&sim.Config{
				Graph: tc.ng.g, Model: sim.Radio, Fault: sim.Omission, P: p,
				Source: tc.ng.src, SourceMsg: msg1,
				NewNode: v.newNode, Rounds: v.rounds,
				TrackCompletion: true,
			}))
			est := stat.Proportion{Successes: o.Trials - failed, Trials: o.Trials}
			lo, hi := est.Wilson(1.96)
			t.AddRow(tc.ng.g.Name(), v.name, v.rounds, fmt.Sprintf("%.0f", mean),
				est.Rate(), fmt.Sprintf("[%.3f,%.3f]", lo, hi), target, verdict(hi >= target))
			o.logf("B1 %s/%s: %v", tc.ng.g.Name(), v.name, est)
		}
	}
	return []*Table{t}
}

// RunA6 sweeps the Kučera serial fan-out ρ: larger ρ drives the time
// constant towards the O(L) ideal but weakens the error exponent
// c = log_ρ 2 of e^(−Ω(L^c)) — the trade hidden in Lemma 3.2's "for any
// constant c < 1".
func RunA6(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A6 — Kučera composition: serial fan-out ρ vs time constant and error exponent (L = 256, p = 0.2)",
		Note:    "τ/L falls towards 1·κ0 as ρ grows; the error exponent c = log_ρ(2) falls with it",
		Headers: []string{"ρ", "plan", "time τ", "τ/L", "predicted err Q", "exponent c=log_ρ(2)"},
	}
	l := 256
	if o.Quick {
		l = 64
	}
	for _, rho := range []int{2, 4, 8, 16} {
		plan, err := kucera.BuildPlan(l, 0.2, kucera.Options{Rho: rho})
		if err != nil {
			panic(err)
		}
		c := logB(2, float64(rho))
		t.AddRow(rho, plan.String(), plan.G.Time,
			float64(plan.G.Time)/float64(plan.G.Length), plan.G.Err, c)
	}
	return []*Table{t}
}

func logB(x, base float64) float64 {
	return ln(x) / ln(base)
}

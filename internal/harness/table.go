// Package harness defines and runs the experiments E1–E11 and the
// ablations A1–A3 cataloged in DESIGN.md — one per theorem/lemma of the
// paper — and renders their results as fixed-width tables (the repository
// equivalent of the paper's "tables and figures").
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string // one-line interpretation (the "shape" being checked)
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(b.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderCSV writes the table as CSV (quoting cells containing commas).
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				io.WriteString(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			io.WriteString(w, c)
		}
		io.WriteString(w, "\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// verdict formats a pass/fail cell.
func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

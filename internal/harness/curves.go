package harness

import (
	"fmt"
	"sort"
	"sync"

	"faultcast/internal/graph"
	"faultcast/internal/protocols/decay"
	"faultcast/internal/protocols/flooding"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunF1 produces the repository's "figure": informing-curve quartiles —
// the round by which 25% / 50% / 75% / 100% of the nodes hold the
// message — for flooding at several failure rates, and for the Decay
// baseline. The p-dependence of the curve is the visual content of
// Theorem 3.1: the whole curve scales by ~1/(1−p), staying linear in
// distance.
func RunF1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "F1 — informing curves: round by which a fraction of nodes holds the message (line graph, omission)",
		Note:    "flooding curves scale by ~1/(1-p) and stay linear in distance; Decay (radio) pays its log-factor",
		Headers: []string{"algorithm", "n", "p", "q25", "q50", "q75", "q100 (completion)", "failed runs"},
	}
	n := 128
	if o.Quick {
		n = 32
	}
	g := graph.Line(n)
	for _, p := range []float64{0, 0.3, 0.5, 0.7} {
		proto := flooding.New(g, 0)
		q := quartiles(o, fmt.Sprintf("F1|flooding|p=%v", p), o.Trials/2, &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: p,
			Source: 0, SourceMsg: msg1,
			NewNode: proto.NewNode, Rounds: proto.Rounds(8),
			TrackCompletion: true,
		})
		t.AddRow("flooding (Thm 3.1)", n, p, q.q25, q.q50, q.q75, q.q100, q.failed)
		o.logf("F1 flooding p=%.1f done", p)
	}
	// Decay on the same line in the radio model for contrast.
	dec := decay.New(g)
	for _, p := range []float64{0, 0.5} {
		q := quartiles(o, fmt.Sprintf("F1|decay|p=%v", p), o.Trials/2, &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Omission, P: p,
			Source: 0, SourceMsg: msg1,
			NewNode: dec.NewNode, Rounds: dec.Rounds(12*n + 60),
			TrackCompletion: true,
		})
		t.AddRow("decay (radio baseline)", n, p, q.q25, q.q50, q.q75, q.q100, q.failed)
		o.logf("F1 decay p=%.1f done", p)
	}
	return []*Table{t}
}

type curveQuartiles struct {
	q25, q50, q75, q100 string
	failed              int
}

// quartiles averages, across trials, the first round by which each
// quarter of the nodes was informed. cfg is compiled once and the trial
// stream runs as one cell on the shared scheduler (per-worker reusable
// runners, derived base seed); the trial closure records each successful
// run's quartile quad as a side effect of the success bit.
func quartiles(o Options, cellKey string, trials int, cfg *sim.Config) curveQuartiles {
	if trials < 10 {
		trials = 10
	}
	type quad [4]float64
	var mu sync.Mutex
	var samples []quad
	prop := estimateCell(trials, o.cellSeed(cellKey), stat.StopRule{}, func() stat.Trial {
		r := newRunner(cfg)
		return func(seed uint64) bool {
			res, err := r.Run(seed)
			if err != nil {
				panic(err)
			}
			if !res.Success {
				return false
			}
			// The Result is trial-local (Runner.Run copies it out of
			// the reused state), so sorting in place is safe.
			rounds := res.InformedRound
			sort.Ints(rounds)
			n := len(rounds)
			var q quad
			for k, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
				idx := int(frac*float64(n)) - 1
				if idx < 0 {
					idx = 0
				}
				q[k] = float64(rounds[idx] + 1)
			}
			mu.Lock()
			samples = append(samples, q)
			mu.Unlock()
			return true
		}
	})
	out := curveQuartiles{failed: prop.Trials - prop.Successes, q25: "-", q50: "-", q75: "-", q100: "-"}
	if len(samples) == 0 {
		return out
	}
	var sums quad
	for _, s := range samples {
		for k := range sums {
			sums[k] += s[k]
		}
	}
	fmtMean := func(k int) string {
		return fmt.Sprintf("%.0f", sums[k]/float64(len(samples)))
	}
	out.q25, out.q50, out.q75, out.q100 = fmtMean(0), fmtMean(1), fmtMean(2), fmtMean(3)
	return out
}

package harness

import (
	"bytes"
	"fmt"

	"faultcast"
	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/protocols/twonode"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunE1 exercises Theorem 2.1: Simple-Omission is almost-safe for any
// p < 1 in both the message passing and the radio model. The whole grid
// is one declarative sweep — graphs × models × ps, every cell scheduled
// on one shared worker pool.
func RunE1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E1 (Thm 2.1) — Simple-Omission under node-omission failures",
		Note:    "PASS = measured success rate >= 1 - 1/n (window m = ceil(c·log n), c from p)",
		Headers: []string{"graph", "model", "p", "m", "rounds", "success", "95% CI", "target", "verdict"},
	}
	ps := []float64{0.3, 0.5, 0.7}
	if !o.Quick {
		ps = append(ps, 0.9)
	}
	graphs := standardGraphs(o)
	results := runSweep(faultcast.SweepSpec{
		Graphs:     sweepGraphs(graphs),
		Models:     []faultcast.Model{faultcast.MessagePassing, faultcast.Radio},
		Faults:     []faultcast.Fault{faultcast.Omission},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		Ps:         ps,
		Seed:       o.Seed,
		Budget:     o.sweepBudget(true),
	})
	i := 0
	for _, ng := range graphs {
		for _, model := range []sim.Model{sim.MessagePassing, sim.Radio} {
			for _, p := range ps {
				res := results[i]
				i++
				proto := simpleomission.New(ng.g, ng.src, model, omissionWindowC(p))
				target := almostSafe(ng.g.N())
				est := res.Estimate
				t.AddRow(ng.g.Name(), model.String(), p, proto.WindowLen(), res.Cell.Rounds(),
					est.Rate, fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi), target, verdict(est.Hi >= target))
				o.logf("E1 %s/%s p=%.2f: %v", ng.g.Name(), model, p, est)
			}
		}
	}
	return []*Table{t}
}

// RunE2 exercises Theorem 2.2: Simple-Malicious in the message passing
// model is almost-safe for p < 1/2 and collapses above — a one-graph
// sweep along the p axis across the threshold.
func RunE2(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E2 (Thm 2.2) — Simple-Malicious, message passing, flipping adversary",
		Note:    "feasible iff p < 1/2: below-threshold rows must PASS, above-threshold rows must FAIL",
		Headers: []string{"graph", "p", "m", "success", "95% CI", "target", "below 1/2", "verdict"},
	}
	g := graph.KaryTree(31, 2)
	if o.Quick {
		g = graph.KaryTree(15, 2)
	}
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.6}
	results := runSweep(faultcast.SweepSpec{
		Graphs:      []faultcast.SweepGraph{{Graph: g}},
		Models:      []faultcast.Model{faultcast.MessagePassing},
		Faults:      []faultcast.Fault{faultcast.Malicious},
		Adversaries: []faultcast.AdversaryKind{faultcast.FlipAdv},
		Algorithms:  []faultcast.Algorithm{faultcast.SimpleMalicious},
		Ps:          ps,
		Seed:        o.Seed,
		Budget:      o.sweepBudget(true),
	})
	for i, p := range ps {
		proto := simplemalicious.New(g, 0, sim.MessagePassing, maliciousWindowC(p))
		target := almostSafe(g.N())
		est := results[i].Estimate
		below := p < 0.5
		pass := est.Hi >= target
		if !below {
			pass = est.Low < target // above threshold the algorithm must NOT be almost-safe
		}
		t.AddRow(g.Name(), p, proto.WindowLen(), est.Rate,
			fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi), target, below, verdict(pass))
		o.logf("E2 p=%.2f: %v", p, est)
	}
	return []*Table{t}
}

// RunE3 exercises Theorem 2.3: at and above p = 1/2 the equivocating
// adversary pins the receiver's success probability at 1/2 regardless of
// the running time.
func RunE3(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E3 (Thm 2.3) — equivocator on K2, message passing, p >= 1/2",
		Note:    "success must hover at 0.5 for every p >= 1/2 and EVERY window length (longer runs don't help)",
		Headers: []string{"p", "c", "rounds", "success", "95% CI", "pinned at 1/2", "verdict"},
	}
	g := graph.TwoNode()
	// Odd window lengths (on K2, m = ceil(c)) eliminate vote ties, whose
	// default-"0" resolution would otherwise bias measured success above
	// 1/2 without conveying any information about the source message.
	cs := []float64{5, 17, 65}
	if o.Quick {
		cs = []float64{5, 17}
	}
	for _, p := range []float64{0.5, 0.6, 0.75, 0.9} {
		for _, c := range cs {
			proto := simplemalicious.New(g, 0, sim.MessagePassing, c)
			// Stop early only once a band wider than the 99.9% pinned-
			// verdict band is decided against 1/2, so a truly pinned cell
			// still runs its full sample.
			est := estimateCell(o.Trials*4, o.cellSeed(fmt.Sprintf("E3|p=%v|c=%v", p, c)), o.stopRule(0.5, 3.29),
				bitTrial(func(msg []byte) *sim.Config {
					return &sim.Config{
						Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: p,
						Source: 0, SourceMsg: msg,
						NewNode: proto.NewNode, Rounds: proto.Rounds(),
						Adversary: adversary.Equivocator{M0: []byte("0"), M1: []byte("1"), SourceOnly: true},
					}
				}, func(seed uint64) uint64 { return seed * 2654435761 },
					func(res *sim.Result, _ []byte) bool { return res.Success }))
			lo, hi := est.Wilson(1.96)
			// The pinned check spans 12 cells; use a 99.9% band so the
			// family-wise false-alarm rate stays small.
			wlo, whi := est.Wilson(3.29)
			pinned := wlo <= 0.5 && 0.5 <= whi
			t.AddRow(p, c, proto.Rounds(), est.Rate(),
				fmt.Sprintf("[%.3f,%.3f]", lo, hi), pinned, verdict(pinned))
			o.logf("E3 p=%.2f c=%v: %v", p, c, est)
		}
	}
	return []*Table{t}
}

// starTrials compiles the Theorem 2.4 star scenario (source at a leaf)
// once per cell and scores each trial on whether the ROOT decoded the
// message — the node the impossibility argument is about.
func starTrials(delta int, p, c float64, mkAdv func() sim.Adversary) stat.TrialMaker {
	g := graph.Star(delta + 1)
	const source = 1
	proto := simplemalicious.New(g, source, sim.Radio, c)
	return bitTrial(func(msg []byte) *sim.Config {
		return &sim.Config{
			Graph: g, Model: sim.Radio, Fault: sim.Malicious, P: p,
			Source: source, SourceMsg: msg,
			NewNode: proto.NewNode, Rounds: proto.Rounds(),
			Adversary: mkAdv(),
		}
	}, func(seed uint64) uint64 { return seed*2654435761 + 99 },
		func(res *sim.Result, msg []byte) bool { return bytes.Equal(res.Outputs[0], msg) })
}

// RunE4 exercises the feasibility direction of Theorem 2.4: malicious
// radio broadcasting succeeds for p < p* = fix(p = (1-p)^(Δ+1)). Each
// graph's p and window constant co-vary with its degree, so the sweep
// uses explicit cells rather than a cross product.
func RunE4(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E4 (Thm 2.4 feasibility) — Simple-Malicious, radio, p below (1-p)^(Δ+1)",
		Note:    "whole-graph success >= 1 - 1/n below the threshold p*(Δ)",
		Headers: []string{"graph", "Δ", "p*", "p", "m", "success", "95% CI", "target", "verdict"},
	}
	graphs := []namedGraph{{graph.Line(16), 0}, {graph.Star(5), 1}, {graph.KaryTree(13, 3), 0}}
	if o.Quick {
		graphs = graphs[:2]
	}
	cells := make([]faultcast.Config, len(graphs))
	for i, ng := range graphs {
		delta := ng.g.MaxDegree()
		pStar := stat.RadioThreshold(delta)
		p := pStar * 0.5
		q := pow(1-p, delta+1)
		cells[i] = faultcast.Config{
			Graph: ng.g, Source: ng.src, Message: []byte("1"),
			Model: faultcast.Radio, Fault: faultcast.Malicious, P: p,
			Algorithm: faultcast.SimpleMalicious, Adversary: faultcast.FlipAdv,
			WindowC: maliciousWindowC(p/(p+q)) * (2 / q),
		}
	}
	results := runSweep(faultcast.SweepSpec{
		Cells:  cells,
		Seed:   o.Seed,
		Budget: o.sweepBudget(true),
	})
	for i, ng := range graphs {
		delta := ng.g.MaxDegree()
		pStar := stat.RadioThreshold(delta)
		proto := simplemalicious.New(ng.g, ng.src, sim.Radio, cells[i].WindowC)
		target := almostSafe(ng.g.N())
		est := results[i].Estimate
		t.AddRow(ng.g.Name(), delta, pStar, cells[i].P, proto.WindowLen(), est.Rate,
			fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi), target, verdict(est.Hi >= target))
		o.logf("E4 %s: %v", ng.g.Name(), est)
	}
	return []*Table{t}
}

// RunE5 exercises the impossibility direction of Theorem 2.4: at and above
// p*, the star adversary pins the root's decode probability at 1/2.
func RunE5(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E5 (Thm 2.4 impossibility) — star adversary, radio, p >= (1-p)^(Δ+1)",
		Note:    "root decode probability must hover at 0.5 at and above p*(Δ); well below p* it must recover",
		Headers: []string{"Δ", "p*", "p", "regime", "root correct", "95% CI", "verdict"},
	}
	deltas := []int{2, 4}
	if !o.Quick {
		deltas = append(deltas, 8)
	}
	adv := func() sim.Adversary {
		return adversary.Star{M0: []byte("0"), M1: []byte("1")}
	}
	for _, delta := range deltas {
		pStar := stat.RadioThreshold(delta)
		cases := []struct {
			p      float64
			regime string
		}{
			{pStar * 0.4, "below"},
			{pStar, "at"},
			{minF(pStar*1.5, 0.9), "above"},
		}
		for _, tc := range cases {
			c := 8.0
			rule := o.stopRule(0.5, 3.29) // pinned rows read the 99.9% band
			if tc.regime == "below" {
				q := pow(1-tc.p, delta+1)
				c = maliciousWindowC(tc.p/(tc.p+q)) * (2 / q)
				rule = o.stopRule(0.9, 1.96) // recovery rows read lo > 0.9
			}
			est := estimateCell(o.Trials*4, o.cellSeed(fmt.Sprintf("E5|delta=%d|p=%v", delta, tc.p)), rule,
				starTrials(delta, tc.p, c, adv))
			lo, hi := est.Wilson(1.96)
			wlo, whi := est.Wilson(3.29) // family-wise band, as in E3
			var pass bool
			if tc.regime == "below" {
				pass = lo > 0.9
			} else {
				pass = wlo <= 0.5 && 0.5 <= whi
			}
			t.AddRow(delta, pStar, tc.p, tc.regime, est.Rate(),
				fmt.Sprintf("[%.3f,%.3f]", lo, hi), verdict(pass))
			o.logf("E5 Δ=%d %s: %v", delta, tc.regime, est)
		}
	}
	return []*Table{t}
}

// RunE6 exercises the two-node timing protocol: almost-safe for ANY p < 1
// under limited malicious failures, with error e^(-Θ(m)) for bit 0 and
// zero error for bit 1. The grid is a three-axis sweep — message bit ×
// window length (as WindowC: TimingBit reads m from it) × p — with no
// early stopping, since the verdict is two-sided.
func RunE6(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E6 (§2.2.2) — 'hello' timing protocol on K2, limited malicious, dropping adversary",
		Note:    "bit 1 never errs; bit 0 success must match the exact closed form P[two consecutive healthy steps in 2m] — decaying error for any p < 1",
		Headers: []string{"p", "m", "bit", "success", "95% CI", "predicted", "verdict"},
	}
	ms := []int{16, 64, 256}
	if o.Quick {
		ms = []int{16, 64}
	}
	ps := []float64{0.3, 0.5, 0.7, 0.85}
	bits := []string{string(twonode.Bit0), string(twonode.Bit1)}
	cs := make([]float64, len(ms))
	for i, m := range ms {
		cs[i] = float64(m)
	}
	results := runSweep(faultcast.SweepSpec{
		Graphs:      []faultcast.SweepGraph{{Graph: graph.TwoNode()}},
		Models:      []faultcast.Model{faultcast.MessagePassing},
		Faults:      []faultcast.Fault{faultcast.LimitedMalicious},
		Adversaries: []faultcast.AdversaryKind{faultcast.CrashAdv},
		Algorithms:  []faultcast.Algorithm{faultcast.TimingBit},
		Messages:    bits,
		WindowCs:    cs,
		Ps:          ps,
		Seed:        o.Seed,
		Budget:      o.sweepBudget(false),
	})
	for pi, p := range ps {
		for mi, m := range ms {
			for bi, bit := range bits {
				// Expansion order: Messages × WindowCs × Ps (ps innermost).
				est := results[(bi*len(ms)+mi)*len(ps)+pi].Estimate
				// Bit 1 is deterministic; bit 0 succeeds iff the execution
				// contains two consecutive healthy steps among 2m.
				predicted := 1.0
				if bit == "0" {
					predicted = probConsecutivePair(2*m, 1-p)
				}
				pass := est.Low <= predicted && predicted <= est.Hi
				if bit == "1" {
					pass = est.Rate == 1
				}
				t.AddRow(p, m, bit, est.Rate,
					fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi), predicted, verdict(pass))
			}
		}
		o.logf("E6 p=%.2f done", p)
	}
	return []*Table{t}
}

// probConsecutivePair returns the probability that a sequence of `rounds`
// independent Bernoulli(q) trials contains at least two consecutive
// successes — the exact bit-0 success probability of the timing protocol
// against a dropping adversary. Computed by the standard linear DP over
// (no-pair-yet, last-trial-outcome) states.
func probConsecutivePair(rounds int, q float64) float64 {
	if rounds < 2 {
		return 0
	}
	// noPairEnd0/noPairEnd1: probability of no pair so far with the last
	// trial failed/succeeded.
	noPairEnd0, noPairEnd1 := 1-q, q
	for i := 1; i < rounds; i++ {
		noPairEnd0, noPairEnd1 = (noPairEnd0+noPairEnd1)*(1-q), noPairEnd0*q
	}
	return 1 - (noPairEnd0 + noPairEnd1)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

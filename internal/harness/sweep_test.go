package harness

import (
	"fmt"
	"testing"

	"faultcast"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// TestSweepMatchesHandRolledLoop is the port's value-identity proof: the
// E1-shaped grid run through runSweep must produce, cell for cell, the
// exact estimates of the pre-refactor hand-rolled loop — a fresh
// sim.Config + protocol per cell, its own stat.EstimateStream pool, the
// same stopping rule — when that loop is given the same derived base
// seeds. Holding seeds fixed isolates the refactor: any divergence would
// be a scheduling or batching change, not a seeding one.
func TestSweepMatchesHandRolledLoop(t *testing.T) {
	o := Options{Quick: true, Trials: 60, Seed: 0x5eed}.withDefaults()
	graphs := standardGraphs(o)
	ps := []float64{0.3, 0.5, 0.7}
	sp, err := faultcast.CompileSweep(faultcast.SweepSpec{
		Graphs:     sweepGraphs(graphs),
		Models:     []faultcast.Model{faultcast.MessagePassing, faultcast.Radio},
		Faults:     []faultcast.Fault{faultcast.Omission},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		Ps:         ps,
		Seed:       o.Seed,
		Budget:     o.sweepBudget(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	results := runSweep(faultcast.SweepSpec{
		Graphs:     sweepGraphs(graphs),
		Models:     []faultcast.Model{faultcast.MessagePassing, faultcast.Radio},
		Faults:     []faultcast.Fault{faultcast.Omission},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		Ps:         ps,
		Seed:       o.Seed,
		Budget:     o.sweepBudget(true),
	})
	i := 0
	for _, ng := range graphs {
		for _, model := range []sim.Model{sim.MessagePassing, sim.Radio} {
			for _, p := range ps {
				// The old loop, verbatim: per-cell protocol construction,
				// per-cell estimation pool, stop on the 1.3×-widened band.
				proto := simpleomission.New(ng.g, ng.src, model, omissionWindowC(p))
				target := almostSafe(ng.g.N())
				want := stat.EstimateStream(o.Trials, sp.Cells()[i].Config.Seed, 0,
					stat.StopRule{Target: target, UseTarget: true, Z: 1.96 * 1.3},
					func() stat.Trial {
						r := newRunner(&sim.Config{
							Graph: ng.g, Model: model, Fault: sim.Omission, P: p,
							Source: ng.src, SourceMsg: msg1,
							NewNode: proto.NewNode, Rounds: proto.Rounds(),
						})
						return func(seed uint64) bool {
							res, err := r.Run(seed)
							if err != nil {
								t.Error(err)
								return false
							}
							return res.Success
						}
					})
				got := results[i].Estimate
				if got.Trials != want.Trials || got.Succeeds != want.Successes {
					t.Fatalf("cell %d (%s/%v/p=%v): sweep %d/%d != hand-rolled %d/%d",
						i, ng.g.Name(), model, p,
						got.Succeeds, got.Trials, want.Successes, want.Trials)
				}
				i++
			}
		}
	}
}

// TestSweepGoldenDeterminism pins the exact per-cell outcomes of a small
// sweep under the splitmix seed-derivation scheme. Any change to seed
// derivation, batch semantics, stopping bands, or the engine's trial
// streams shows up here as a concrete diff. Regenerate the table below by
// running the test with -update-golden reasoning: copy the logged actual
// values (they are deterministic on every machine and worker count).
func TestSweepGoldenDeterminism(t *testing.T) {
	o := Options{Quick: true, Trials: 48, Seed: 0x5eed}.withDefaults()
	results := runSweep(faultcast.SweepSpec{
		Graphs:     []faultcast.SweepGraph{{Graph: graph.Line(8)}, {Graph: graph.Star(6), Source: 1}},
		Models:     []faultcast.Model{faultcast.MessagePassing},
		Faults:     []faultcast.Fault{faultcast.Omission},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		Ps:         []float64{0.2, 0.5, 0.8},
		Seed:       o.Seed,
		Budget:     o.sweepBudget(true),
	})
	golden := []struct{ succ, trials int }{
		{48, 48}, {48, 48}, {47, 48},
		{47, 48}, {47, 48}, {48, 48},
	}
	if len(results) != len(golden) {
		t.Fatalf("got %d cells, want %d", len(results), len(golden))
	}
	for i, want := range golden {
		got := results[i].Estimate
		if got.Succeeds != want.succ || got.Trials != want.trials {
			t.Errorf("cell %d: got %d/%d, golden %d/%d (p=%v graph=%s)",
				i, got.Succeeds, got.Trials, want.succ, want.trials,
				results[i].Cell.Config.P, results[i].Cell.Config.Graph.Name())
		}
	}
}

// TestCellSeedDerivation: harness cell seeds must be rng.Derive of
// (master, key) — distinct per key, stable per master, and no longer the
// master-correlated XOR scheme.
func TestCellSeedDerivation(t *testing.T) {
	o := Options{Seed: 0x5eed}
	a := o.cellSeed("E3|p=0.5|c=5")
	b := o.cellSeed("E3|p=0.5|c=17")
	if a == b {
		t.Fatal("distinct cell keys derived equal seeds")
	}
	if a != o.cellSeed("E3|p=0.5|c=5") {
		t.Fatal("cell seed derivation unstable")
	}
	if a == o.Seed^5 || a == o.Seed {
		t.Fatal("cell seed suspiciously equal to the old XOR scheme")
	}
	keys := map[string]uint64{}
	for _, id := range []string{"E1", "E3", "E5", "A2", "F1"} {
		for p := 0; p < 10; p++ {
			k := fmt.Sprintf("%s|p=%d", id, p)
			keys[k] = o.cellSeed(k)
		}
	}
	seen := map[uint64]bool{}
	for _, s := range keys {
		if seen[s] {
			t.Fatal("cell seed collision across experiments")
		}
		seen[s] = true
	}
}

package harness

import (
	"fmt"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/protocols/streaming"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunOP1 probes the paper's first open problem: "Is there an almost-safe
// broadcasting algorithm for an arbitrary graph, working in time
// O(D + log n) in the message passing model with malicious transmission
// failures, when p < 1/2?"
//
// The best algorithm in this repository for that scenario is the
// unsynchronized sliding-window relay, whose per-hop acceptance costs a
// window of Θ(log n), giving O(D·log n) total. The experiment measures
// its completion time across depths at fixed n and fits it against both
// candidate laws; the multiplicative fit winning is evidence of the gap
// the open problem asks about (it does NOT settle the problem — a cleverer
// algorithm could exist — it quantifies where the known techniques stop).
func RunOP1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "OP1 (open problem 1) — time of the best known MP malicious algorithm vs D (p = 0.25, n fixed per row-family)",
		Note:    "streaming relay completion time; if O(D+log n) were achievable the D·log n fit would lose",
		Headers: []string{"graph", "n", "D", "m", "mean completion", "per-hop cost", "success"},
	}
	const p = 0.25
	// Caterpillars with constant n but varying spine depth isolate the D
	// dependence.
	type shape struct{ spine, legs int }
	shapes := []shape{{4, 7}, {8, 3}, {16, 1}, {32, 0}}
	if o.Quick {
		shapes = []shape{{4, 3}, {8, 1}, {16, 0}}
	}
	var ds, times []float64
	for _, sh := range shapes {
		g := graph.Caterpillar(sh.spine, sh.legs)
		proto := streaming.New(g, 0, protocol.WindowCMalicious(p))
		rounds := proto.Rounds(6)
		mean, _, failed := stat.MeanStdWith(o.Trials, o.cellSeed("OP1|"+g.Name()), completionMeasure(&sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: p,
			Source: 0, SourceMsg: msg1,
			NewNode: proto.NewNode, Rounds: rounds,
			Adversary:       adversary.Flip{Wrong: []byte("0")},
			TrackCompletion: true,
		}))
		d := float64(g.Radius(0))
		ds = append(ds, d)
		times = append(times, mean)
		t.AddRow(g.Name(), g.N(), int(d), proto.WindowLen(),
			fmt.Sprintf("%.0f", mean), fmt.Sprintf("%.1f", mean/d),
			fmt.Sprintf("%d/%d", o.Trials-failed, o.Trials))
		o.logf("OP1 %s done", g.Name())
	}
	slope, intercept, r2 := stat.LinearFit(ds, times)
	t.AddRow("FIT: time ≈ a·D + b", "", "", "",
		fmt.Sprintf("a=%.1f b=%.0f", slope, intercept), fmt.Sprintf("R²=%.4f", r2),
		verdict(r2 > 0.98))
	t.Note += fmt.Sprintf(" — measured slope ≈ %.1f rounds/hop ≈ m/2 (multiplicative in the window, i.e. D·log n)", slope)
	return []*Table{t}
}

// RunOP2 probes the second open problem: "What is the optimal almost-safe
// broadcasting time for an n-node graph with optimal fault-free
// broadcasting time opt in the radio model? In particular, is it
// Θ(opt·log n)?"
//
// The experiment shrinks the per-step repetition window m of
// Omission-Radio on the layered graph and locates the smallest horizon
// multiplier at which almost-safety still holds. Theorem 3.3 says the
// answer is ω(opt + log n); this measures how far above that the
// repetition technique actually needs to sit.
func RunOP2(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "OP2 (open problem 2) — how small can the Omission-Radio window go? (layered G_m, omission p = 0.5)",
		Note:    "success vs window length m; the almost-safe frontier sits at m ≈ c·log n, so total time Θ(opt·log n) for this technique",
		Headers: []string{"m (graph)", "n", "opt", "window m", "rounds", "success", "95% CI", "target", "almost-safe"},
	}
	ms := []int{4, 6}
	if o.Quick {
		ms = []int{4}
	}
	for _, gm := range ms {
		g := graph.Layered(gm)
		sched := radio.LayeredSchedule(gm)
		n := g.N()
		target := almostSafe(n)
		for _, window := range []int{1, 2, 4, 8, 16, 32} {
			proto, err := radiorepeat.New(g, 0, sched, radiorepeat.OmissionVariant,
				float64(window)/log2f(n))
			if err != nil {
				panic(err)
			}
			est := successRate(o, fmt.Sprintf("OP2|G_%d|window=%d", gm, window), target, &sim.Config{
				Graph: g, Model: sim.Radio, Fault: sim.Omission, P: 0.5,
				Source: 0, SourceMsg: msg1,
				NewNode: proto.NewNode, Rounds: proto.Rounds(),
			})
			lo, hi := est.Wilson(1.96)
			t.AddRow(gm, n, sched.Len(), proto.WindowLen(), proto.Rounds(),
				est.Rate(), fmt.Sprintf("[%.3f,%.3f]", lo, hi), target, hi >= target)
		}
		o.logf("OP2 G_%d done", gm)
	}
	return []*Table{t}
}

func log2f(n int) float64 {
	if n <= 1 {
		return 1
	}
	return ln(float64(n)) / ln(2)
}

package harness

import (
	"fmt"
	"sync/atomic"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/anonymous"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/streaming"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunA4 compares the synchronized phase algorithm (Simple-Malicious) with
// the paper's unsynchronized sliding-window variant (§2.2.2 discussion):
// same p < 1/2 guarantee, but the streaming variant needs no global clock
// or enumeration and pipelines hops in O(D·m) instead of n·m.
func RunA4(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A4 — synchronized phases vs unsynchronized sliding window (malicious MP, p = 0.25)",
		Note:    "both must be almost-safe; the streaming variant's time scales with D·m, the phase algorithm's with n·m",
		Headers: []string{"graph", "variant", "rounds", "mean completion", "success", "95% CI", "target", "verdict"},
	}
	graphs := []namedGraph{{graph.Line(24), 0}, {graph.KaryTree(31, 2), 0}}
	if o.Quick {
		graphs = []namedGraph{{graph.Line(12), 0}}
	}
	const p = 0.25
	for _, ng := range graphs {
		n := ng.g.N()
		target := almostSafe(n)
		type variant struct {
			name    string
			newNode func(int) sim.Node
			rounds  int
		}
		phase := simplemalicious.New(ng.g, ng.src, sim.MessagePassing, maliciousWindowC(p))
		stream := streaming.New(ng.g, ng.src, maliciousWindowC(p))
		variants := []variant{
			{"phases (Simple-Malicious)", phase.NewNode, phase.Rounds()},
			{"sliding window (streaming)", stream.NewNode, stream.Rounds(4)},
		}
		for _, v := range variants {
			succ := 0
			meanDone, _, failed := stat.MeanStdWith(o.Trials, o.cellSeed(fmt.Sprintf("A4|%s|%s", ng.g.Name(), v.name)), completionMeasure(&sim.Config{
				Graph: ng.g, Model: sim.MessagePassing, Fault: sim.Malicious, P: p,
				Source: ng.src, SourceMsg: msg1,
				NewNode: v.newNode, Rounds: v.rounds,
				Adversary:       adversary.Flip{Wrong: []byte("0")},
				TrackCompletion: true,
			}))
			succ = o.Trials - failed
			est := stat.Proportion{Successes: succ, Trials: o.Trials}
			lo, hi := est.Wilson(1.96)
			t.AddRow(ng.g.Name(), v.name, v.rounds, fmt.Sprintf("%.0f", meanDone),
				est.Rate(), fmt.Sprintf("[%.3f,%.3f]", lo, hi), target, verdict(hi >= target))
			o.logf("A4 %s/%s: %v", ng.g.Name(), v.name, est)
		}
	}
	return []*Table{t}
}

// RunA5 exercises the §2.1 anonymous radio schedules: distinct labels plus
// a modulo-K (or prime-power) slot discipline replace the global
// enumeration of Simple-Omission, at a cost of a factor ~K in time.
func RunA5(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A5 — anonymous radio schedules (§2.1): modulo-K and prime-power slots, omission p = 0.5",
		Note:    "no enumeration or shared phase structure, zero collisions by construction; time pays a ~K factor",
		Headers: []string{"graph", "schedule", "rounds", "collisions", "success", "95% CI", "target", "verdict"},
	}
	// The modulo-K discipline works on any graph; the prime-power
	// schedule's slots thin out geometrically (node i transmits at
	// p_i^k), so informing a depth-D path takes a horizon multiplicative
	// in the primes along it — it is the paper's existence construction
	// for unknown K, demonstrated here on shallow graphs only.
	type cse struct {
		ng   namedGraph
		kind anonymous.ScheduleKind
		a    float64
		p    float64
	}
	cases := []cse{
		{namedGraph{graph.Line(16), 0}, anonymous.ModuloK, 6, 0.5},
		{namedGraph{graph.Grid(4, 4), 0}, anonymous.ModuloK, 6, 0.5},
		{namedGraph{graph.Star(9), 1}, anonymous.PrimePowers, 60, 0.3},
		{namedGraph{graph.KaryTree(7, 2), 0}, anonymous.PrimePowers, 60, 0.3},
	}
	if o.Quick {
		cases = []cse{
			{namedGraph{graph.Line(8), 0}, anonymous.ModuloK, 6, 0.5},
			{namedGraph{graph.Star(5), 1}, anonymous.PrimePowers, 60, 0.3},
		}
	}
	for _, tc := range cases {
		ng := tc.ng
		n := ng.g.N()
		target := almostSafe(n)
		proto, err := anonymous.New(ng.g, tc.kind, n)
		if err != nil {
			panic(err)
		}
		rounds := proto.Rounds(ng.g.Radius(ng.src), tc.a)
		var collisions atomic.Int64
		cfg := &sim.Config{
			Graph: ng.g, Model: sim.Radio, Fault: sim.Omission, P: tc.p,
			Source: ng.src, SourceMsg: msg1,
			NewNode: proto.NewNode, Rounds: rounds,
		}
		// Full sample: the collision tally spans every trial, so the
		// zero-collision verdict reads the whole stream.
		est := estimateCell(o.Trials, o.cellSeed(fmt.Sprintf("A5|%s|%v", ng.g.Name(), tc.kind)), stat.StopRule{}, func() stat.Trial {
			r := newRunner(cfg)
			return func(seed uint64) bool {
				res, err := r.Run(seed)
				if err != nil {
					panic(err)
				}
				collisions.Add(int64(res.Stats.Collisions))
				return res.Success
			}
		})
		lo, hi := est.Wilson(1.96)
		t.AddRow(ng.g.Name(), tc.kind.String(), rounds, collisions.Load(), est.Rate(),
			fmt.Sprintf("[%.3f,%.3f]", lo, hi), target, verdict(hi >= target && collisions.Load() == 0))
		o.logf("A5 %s/%v: %v", ng.g.Name(), tc.kind, est)
	}
	return []*Table{t}
}

package harness

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Trials: 40, Seed: 1}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"a", "bb"},
	}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", "y")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "a note", "longer", "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `q"z`)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""z"`) {
		t.Fatalf("CSV escaping broken:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "A1", "A2", "A3", "A4", "A5", "A6", "B1", "F1", "OP1", "OP2", "G1"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

// Each experiment must run in Quick mode and produce non-empty tables with
// consistent row widths. These are smoke tests; the PASS/FAIL verdicts of
// full-size runs are recorded in EXPERIMENTS.md.
func checkTables(t *testing.T, tables []*Table) {
	t.Helper()
	if len(tables) == 0 {
		t.Fatal("no tables produced")
	}
	for _, tb := range tables {
		if tb.Title == "" || len(tb.Headers) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Headers) {
				t.Fatalf("table %q: row width %d != header width %d", tb.Title, len(row), len(tb.Headers))
			}
		}
	}
}

func TestRunE1Quick(t *testing.T)  { checkTables(t, RunE1(quickOpts())) }
func TestRunE2Quick(t *testing.T)  { checkTables(t, RunE2(quickOpts())) }
func TestRunE3Quick(t *testing.T)  { checkTables(t, RunE3(quickOpts())) }
func TestRunE4Quick(t *testing.T)  { checkTables(t, RunE4(quickOpts())) }
func TestRunE5Quick(t *testing.T)  { checkTables(t, RunE5(quickOpts())) }
func TestRunE6Quick(t *testing.T)  { checkTables(t, RunE6(quickOpts())) }
func TestRunE7Quick(t *testing.T)  { checkTables(t, RunE7(quickOpts())) }
func TestRunE8Quick(t *testing.T)  { checkTables(t, RunE8(quickOpts())) }
func TestRunE9Quick(t *testing.T)  { checkTables(t, RunE9(quickOpts())) }
func TestRunE10Quick(t *testing.T) { checkTables(t, RunE10(quickOpts())) }
func TestRunE11Quick(t *testing.T) { checkTables(t, RunE11(quickOpts())) }
func TestRunA1Quick(t *testing.T)  { checkTables(t, RunA1(quickOpts())) }
func TestRunA2Quick(t *testing.T)  { checkTables(t, RunA2(quickOpts())) }
func TestRunA3Quick(t *testing.T)  { checkTables(t, RunA3(quickOpts())) }
func TestRunA4Quick(t *testing.T)  { checkTables(t, RunA4(quickOpts())) }
func TestRunA5Quick(t *testing.T)  { checkTables(t, RunA5(quickOpts())) }
func TestRunA6Quick(t *testing.T)  { checkTables(t, RunA6(quickOpts())) }
func TestRunB1Quick(t *testing.T)  { checkTables(t, RunB1(quickOpts())) }
func TestRunF1Quick(t *testing.T)  { checkTables(t, RunF1(quickOpts())) }
func TestRunOP1Quick(t *testing.T) { checkTables(t, RunOP1(quickOpts())) }
func TestRunOP2Quick(t *testing.T) { checkTables(t, RunOP2(quickOpts())) }
func TestRunG1Quick(t *testing.T)  { checkTables(t, RunG1(quickOpts())) }

// TestQuickVerdictsMostlyPass: in Quick mode the feasibility experiments
// should still produce PASS rows where the theory predicts success (the
// trial counts are small, so allow some slack, but a wholesale failure
// indicates a broken experiment).
func TestQuickVerdictsMostlyPass(t *testing.T) {
	tables := RunE1(quickOpts())
	pass, total := 0, 0
	for _, row := range tables[0].Rows {
		total++
		if row[len(row)-1] == "PASS" {
			pass++
		}
	}
	if pass*4 < total*3 {
		t.Fatalf("E1 quick: only %d/%d rows pass", pass, total)
	}
}

func TestRunAllWritesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var sb strings.Builder
	RunAll(Options{Quick: true, Trials: 20, Seed: 2}, &sb)
	out := sb.String()
	for _, id := range []string{"E1", "E5", "E10", "A3"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}

func TestVerdict(t *testing.T) {
	if verdict(true) != "PASS" || verdict(false) != "FAIL" {
		t.Fatal("verdict strings changed")
	}
}

func TestWindowHelpers(t *testing.T) {
	if c := omissionWindowC(0.5); c < 2 || c > 3 {
		t.Fatalf("omissionWindowC(0.5) = %v", c)
	}
	if c := maliciousWindowC(0.3); c <= 0 {
		t.Fatalf("maliciousWindowC(0.3) = %v", c)
	}
	if c := maliciousWindowC(0.6); c != 64 {
		t.Fatalf("maliciousWindowC above 1/2 should cap, got %v", c)
	}
}

package harness

import (
	"fmt"
	"math"

	"faultcast"
	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/kucera"
	"faultcast/internal/lowerbound"
	"faultcast/internal/protocols/flooding"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/radio"
	"faultcast/internal/rng"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunE7 exercises Theorem 3.1: flooding over a BFS tree achieves the
// optimal Θ(D + log n) time under omission failures — and beats
// Simple-Omission's Θ(n·log n) by an ever-growing factor.
func RunE7(o Options) []*Table {
	o = o.withDefaults()
	timing := &Table{
		Title:   "E7a (Thm 3.1) — flooding completion time vs D + log n (omission, p = 0.5)",
		Note:    "mean completion time must grow linearly in D + log2 n; final row reports the least-squares fit",
		Headers: []string{"graph", "n", "D", "D+log2(n)", "mean time", "std", "success"},
	}
	sizes := []int{32, 64, 128, 256}
	if o.Quick {
		sizes = []int{16, 32, 64}
	}
	var xs, ys []float64
	const p = 0.5
	for _, n := range sizes {
		g := graph.Line(n)
		proto := flooding.New(g, 0)
		rounds := proto.Rounds(6)
		var failures int
		mean, std, failed := stat.MeanStdWith(o.Trials, o.cellSeed(fmt.Sprintf("E7|n=%d", n)), completionMeasure(&sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: p,
			Source: 0, SourceMsg: msg1,
			NewNode: proto.NewNode, Rounds: rounds,
			TrackCompletion: true,
		}))
		failures = failed
		d := float64(g.Radius(0))
		x := d + math.Log2(float64(n))
		xs = append(xs, x)
		ys = append(ys, mean)
		timing.AddRow(g.Name(), n, int(d), x, mean, std,
			fmt.Sprintf("%d/%d", o.Trials-failures, o.Trials))
		o.logf("E7 line(%d): mean=%.1f", n, mean)
	}
	slope, intercept, r2 := stat.LinearFit(xs, ys)
	timing.AddRow("FIT: time ≈ a(D+log n)+b", "", "", "",
		fmt.Sprintf("a=%.2f b=%.1f", slope, intercept),
		fmt.Sprintf("R²=%.4f", r2), verdict(r2 > 0.99))

	cross := &Table{
		Title:   "E7b — flooding (Θ(D+log n)) vs Simple-Omission (Θ(n·log n)) running time",
		Note:    "both almost-safe at p=0.5; the speedup factor must grow roughly linearly in n/D·... (who wins and by how much)",
		Headers: []string{"n", "flood rounds", "simple rounds", "speedup"},
	}
	for _, n := range sizes {
		g := graph.Line(n)
		fl := flooding.New(g, 0).Rounds(6)
		so := simpleomission.New(g, 0, sim.MessagePassing, omissionWindowC(p)).Rounds()
		cross.AddRow(n, fl, so, fmt.Sprintf("%.1fx", float64(so)/float64(fl)))
	}
	return []*Table{timing, cross}
}

// RunE8 exercises Theorem 3.2 / Lemma 3.2: the composed Kučera-style
// algorithm broadcasts on lines and trees under limited malicious
// failures, with time O(L) per branch and error e^(-Ω(L^c)).
func RunE8(o Options) []*Table {
	o = o.withDefaults()
	const p = 0.2
	algebra := &Table{
		Title:   "E8a (Lem 3.2) — CO1/CO2 composition plans at p = 0.2",
		Note:    "time/L must stay bounded (O(L)); predicted error shrinks superpolynomially",
		Headers: []string{"L", "plan", "time τ", "τ/L", "delay δ", "predicted err Q"},
	}
	lengths := []int{8, 16, 64, 256}
	if o.Quick {
		lengths = []int{8, 16, 64}
	}
	for _, l := range lengths {
		plan, err := kucera.BuildPlan(l, p, kucera.Options{})
		if err != nil {
			panic(err)
		}
		algebra.AddRow(l, plan.String(), plan.G.Time,
			float64(plan.G.Time)/float64(plan.G.Length), plan.G.Delay, plan.G.Err)
	}

	runs := &Table{
		Title:   "E8b (Thm 3.2) — composed algorithm, limited malicious, flipping adversary, p = 0.2",
		Note:    "success >= 1 - 1/n on lines and trees; time O(D + log^α n)",
		Headers: []string{"graph", "n", "D", "rounds", "success", "95% CI", "target", "verdict"},
	}
	cases := []namedGraph{{graph.Line(17), 0}, {graph.Line(33), 0}, {graph.KaryTree(31, 2), 0}}
	if o.Quick {
		cases = cases[:2]
	}
	// The composed algorithm is fully expressible through the public API
	// (Composed + Alpha), so E8b is a declarative sweep over the graph
	// axis; plan compilation — the Kučera composition plan per graph —
	// happens once inside CompileSweep.
	results := runSweep(faultcast.SweepSpec{
		Graphs:      sweepGraphs(cases),
		Models:      []faultcast.Model{faultcast.MessagePassing},
		Faults:      []faultcast.Fault{faultcast.LimitedMalicious},
		Adversaries: []faultcast.AdversaryKind{faultcast.FlipAdv},
		Algorithms:  []faultcast.Algorithm{faultcast.Composed},
		Alpha:       1.5,
		Ps:          []float64{p},
		Seed:        o.Seed,
		Budget:      o.sweepBudget(true),
	})
	for i, ng := range cases {
		target := almostSafe(ng.g.N())
		est := results[i].Estimate
		runs.AddRow(ng.g.Name(), ng.g.N(), ng.g.Radius(ng.src), results[i].Cell.Rounds(),
			est.Rate, fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi), target, verdict(est.Hi >= target))
		o.logf("E8 %s: %v", ng.g.Name(), est)
	}
	return []*Table{algebra, runs}
}

// RunE9 exercises Lemma 3.3: on the layered graph G_m, fault-free radio
// broadcast takes exactly m+1 steps (schedule construction + exhaustive
// lower bound for small m).
func RunE9(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E9 (Lem 3.3) — fault-free radio opt on the layered graph G_m",
		Note:    "the (m+1)-step schedule completes; exhaustive search confirms opt = m+1 where tractable",
		Headers: []string{"m", "n", "schedule len", "completes", "exhaustive opt", "verdict"},
	}
	ms := []int{1, 2, 3, 4, 6, 8, 10}
	if o.Quick {
		ms = []int{1, 2, 3, 5}
	}
	for _, m := range ms {
		g := graph.Layered(m)
		s := radio.LayeredSchedule(m)
		ok, err := radio.Complete(g, 0, s)
		if err != nil {
			panic(err)
		}
		optCell := "-"
		pass := ok && s.Len() == m+1
		if g.N() <= radio.MaxExhaustiveN {
			opt, err := radio.OptimalLength(g, 0)
			if err != nil {
				panic(err)
			}
			optCell = fmt.Sprint(opt)
			pass = pass && opt == m+1
		}
		t.AddRow(m, g.N(), s.Len(), ok, optCell, verdict(pass))
		o.logf("E9 m=%d done", m)
	}
	return []*Table{t}
}

// RunE10 exercises Lemma 3.4 / Theorem 3.3: on G_m, every candidate
// schedule family needs far more than opt + O(log n) steps before each
// layer-3 node accumulates the c·log n hits almost-safety requires.
func RunE10(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E10 (Lem 3.4/Thm 3.3) — steps needed for min-hit coverage on G_m at p = 0.5",
		Note:    "every family needs >> opt + need steps: O(opt + log n) almost-safe broadcast is impossible",
		Headers: []string{"m", "n", "opt", "need (c·log n)", "opt+need", "family", "steps to cover", "ratio"},
	}
	ms := []int{6, 8, 10}
	if o.Quick {
		ms = []int{5, 7}
	}
	const p = 0.5
	for _, m := range ms {
		g := graph.Layered(m)
		need, _ := lowerbound.RequiredLength(m, p)
		opt := m + 1
		budget := opt + need
		families := []struct {
			name string
			gen  func(steps int) *lowerbound.Schedule
		}{
			{"singles (round robin)", func(k int) *lowerbound.Schedule {
				return lowerbound.RoundRobinSingles(m, k)
			}},
			{"random sets |A|=m/2", func(k int) *lowerbound.Schedule {
				return lowerbound.RandomSets(m, k, m/2, rng.New(o.Seed))
			}},
			{"geometric sweep", func(k int) *lowerbound.Schedule {
				return lowerbound.GeometricSweep(m, k, rng.New(o.Seed))
			}},
		}
		for _, fam := range families {
			steps := lowerbound.StepsToCover(need, 1<<18, fam.gen)
			ratio := float64(steps) / float64(budget)
			t.AddRow(m, g.N(), opt, need, budget, fam.name, steps, fmt.Sprintf("%.1fx", ratio))
		}
		o.logf("E10 m=%d done", m)
	}

	sim10 := &Table{
		Title:   "E10b — simulated: (opt + need)-step singles schedule fails on G_m under omission",
		Note:    "running the best fault-free-style schedule for opt+c·log n steps leaves nodes uninformed w.p. >> 1/n",
		Headers: []string{"m", "steps", "expected uninformed", "P[some node uninformed] >= ", "1/n"},
	}
	for _, m := range ms {
		g := graph.Layered(m)
		need, _ := lowerbound.RequiredLength(m, p)
		steps := m + 1 + need
		s := lowerbound.RoundRobinSingles(m, steps)
		exp := s.ExpectedUninformed(p)
		worst := s.FailureProbability(p)
		sim10.AddRow(m, steps, exp, worst, 1/float64(g.N()))
	}
	return []*Table{t, sim10}
}

// RunE11 exercises Theorem 3.4: Omission-Radio and Malicious-Radio are
// almost-safe in time opt·ceil(c·log n) on arbitrary graphs.
func RunE11(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "E11 (Thm 3.4) — O(opt·log n) radio algorithms (schedule step -> m-step series)",
		Note:    "success >= 1 - 1/n for omission at p=0.6 and malicious at p = 0.5·p*(Δ)",
		Headers: []string{"graph", "variant", "p", "opt |A|", "m", "rounds", "success", "95% CI", "target", "verdict"},
	}
	type cse struct {
		ng    namedGraph
		sched *radio.Schedule
	}
	cases := []cse{
		{namedGraph{graph.Line(24), 0}, radio.LineSchedule(24)},
		{namedGraph{graph.Layered(4), 0}, radio.LayeredSchedule(4)},
		{namedGraph{graph.Grid(5, 5), 0}, radio.Greedy(graph.Grid(5, 5), 0)},
	}
	if o.Quick {
		cases = cases[:2]
	}
	for _, tc := range cases {
		delta := tc.ng.g.MaxDegree()
		pStar := stat.RadioThreshold(delta)
		variants := []struct {
			v     radiorepeat.Variant
			fault sim.FaultType
			p     float64
			c     float64
			adv   sim.Adversary
		}{
			{radiorepeat.OmissionVariant, sim.Omission, 0.6, omissionWindowC(0.6), nil},
			{radiorepeat.MaliciousVariant, sim.Malicious, pStar * 0.5,
				maliciousWindowC(pStar*0.5/(pStar*0.5+pow(1-pStar*0.5, delta+1))) * (2 / pow(1-pStar*0.5, delta+1)),
				adversary.Flip{Wrong: []byte("0")}},
		}
		for _, va := range variants {
			proto, err := radiorepeat.New(tc.ng.g, tc.ng.src, tc.sched, va.v, va.c)
			if err != nil {
				panic(err)
			}
			target := almostSafe(tc.ng.g.N())
			est := successRate(o, fmt.Sprintf("E11|%s|%v", tc.ng.g.Name(), va.v), target, &sim.Config{
				Graph: tc.ng.g, Model: sim.Radio, Fault: va.fault, P: va.p,
				Source: tc.ng.src, SourceMsg: msg1,
				NewNode: proto.NewNode, Rounds: proto.Rounds(),
				Adversary: va.adv,
			})
			lo, hi := est.Wilson(1.96)
			t.AddRow(tc.ng.g.Name(), va.v.String(), va.p, tc.sched.Len(), proto.WindowLen(),
				proto.Rounds(), est.Rate(), fmt.Sprintf("[%.3f,%.3f]", lo, hi), target,
				verdict(hi >= target))
			o.logf("E11 %s/%v: %v", tc.ng.g.Name(), va.v, est)
		}
	}
	return []*Table{t}
}

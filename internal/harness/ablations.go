package harness

import (
	"fmt"
	"time"

	"faultcast"
	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunA1 sweeps the window constant c: the knob every Section-2 algorithm
// turns. Success must rise monotonically (in expectation) with c, and the
// running time grows linearly in it — the time/safety trade the paper's
// "suitable constant c" hides. The grid is a declarative sweep along the
// WindowCs axis with no early stopping (the curve itself is the content).
func RunA1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A1 — window constant sweep: Simple-Omission on line(32), p = 0.5",
		Note:    "m = ceil(c·log n): success rises with c, time rises linearly; c ≈ 2/log2(1/p) is the paper's break-even",
		Headers: []string{"c", "m", "rounds", "success", "95% CI"},
	}
	g := graph.Line(32)
	if o.Quick {
		g = graph.Line(16)
	}
	cs := []float64{0.25, 0.5, 1, 2, 4, 8}
	results := runSweep(faultcast.SweepSpec{
		Graphs:     []faultcast.SweepGraph{{Graph: g}},
		Algorithms: []faultcast.Algorithm{faultcast.SimpleOmission},
		WindowCs:   cs,
		Ps:         []float64{0.5},
		Seed:       o.Seed,
		Budget:     o.sweepBudget(false),
	})
	for i, c := range cs {
		proto := simpleomission.New(g, 0, sim.MessagePassing, c)
		est := results[i].Estimate
		t.AddRow(c, proto.WindowLen(), results[i].Cell.Rounds(), est.Rate,
			fmt.Sprintf("[%.3f,%.3f]", est.Low, est.Hi))
		o.logf("A1 c=%v: %v", c, est)
	}
	return []*Table{t}
}

// RunA2 compares adversary strategies at the p = 1/2 threshold on K2: the
// proof-strategy equivocator is the unique strategy that pins the receiver
// at a coin flip; weaker strategies leave majority voting a way to win.
func RunA2(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A2 — adversary strength at p = 0.5 on K2 (Simple-Malicious, c = 16)",
		Note:    "only the equivocator realizes the Theorem 2.3 bound; crash/noise/flip leave exploitable signal",
		Headers: []string{"adversary", "success", "95% CI"},
	}
	g := graph.TwoNode()
	proto := simplemalicious.New(g, 0, sim.MessagePassing, 16)
	advs := []struct {
		name string
		mk   func() sim.Adversary
	}{
		{"crash (silence)", func() sim.Adversary { return adversary.Crash{} }},
		{"random noise", func() sim.Adversary { return adversary.RandomNoise{Alphabet: [][]byte{{'0'}, {'1'}}} }},
		{"flip to wrong", func() sim.Adversary { return adversary.Flip{Wrong: []byte("0")} }},
		{"equivocator", func() sim.Adversary {
			return adversary.Equivocator{M0: []byte("0"), M1: []byte("1"), SourceOnly: true}
		}},
	}
	for _, a := range advs {
		// Comparison rates are the content — run the full sample.
		est := estimateCell(o.Trials*4, o.cellSeed("A2|"+a.name), stat.StopRule{},
			bitTrial(func(msg []byte) *sim.Config {
				return &sim.Config{
					Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.5,
					Source: 0, SourceMsg: msg,
					NewNode: proto.NewNode, Rounds: proto.Rounds(),
					Adversary: a.mk(),
				}
			}, func(seed uint64) uint64 { return seed * 2654435761 },
				func(res *sim.Result, _ []byte) bool { return res.Success }))
		lo, hi := est.Wilson(1.96)
		t.AddRow(a.name, est.Rate(), fmt.Sprintf("[%.3f,%.3f]", lo, hi))
		o.logf("A2 %s: %v", a.name, est)
	}
	return []*Table{t}
}

// RunA3 checks engine equivalence and relative cost: the sequential engine
// and the goroutine-per-node engine must agree on every outcome bit, and
// the table reports their wall-clock ratio.
func RunA3(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "A3 — sequential vs goroutine-per-node engine",
		Note:    "outcomes must be bit-identical (same seeds); ratio = reference engine (per-trial state, barriers) vs the production path (reused runner)",
		Headers: []string{"graph", "trials", "identical", "seq time", "conc time", "ratio", "verdict"},
	}
	graphs := []namedGraph{{graph.Grid(6, 6), 0}, {graph.Line(48), 0}}
	if o.Quick {
		graphs = []namedGraph{{graph.Grid(4, 4), 0}}
	}
	trials := o.Trials / 4
	if trials < 10 {
		trials = 10
	}
	for _, ng := range graphs {
		proto := simpleomission.New(ng.g, ng.src, sim.MessagePassing, 2)
		cfg := &sim.Config{
			Graph: ng.g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.4,
			Source: ng.src, SourceMsg: msg1,
			NewNode: proto.NewNode, Rounds: proto.Rounds(),
		}
		identical := true
		seqStart := time.Now()
		runner := newRunner(cfg) // one reused state for the whole stream
		seqResults := make([]*sim.Result, trials)
		for i := 0; i < trials; i++ {
			res, err := runner.Run(o.Seed + uint64(i))
			if err != nil {
				panic(err)
			}
			seqResults[i] = res
		}
		seqDur := time.Since(seqStart)
		concStart := time.Now()
		for i := 0; i < trials; i++ {
			c := *cfg
			c.Seed = o.Seed + uint64(i)
			res, err := sim.RunConcurrent(&c)
			if err != nil {
				panic(err)
			}
			if res.Success != seqResults[i].Success || res.Stats != seqResults[i].Stats {
				identical = false
			}
		}
		concDur := time.Since(concStart)
		ratio := float64(concDur) / float64(seqDur)
		t.AddRow(ng.g.Name(), trials, identical,
			seqDur.Round(time.Millisecond).String(), concDur.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", ratio), verdict(identical))
		o.logf("A3 %s: identical=%v ratio=%.1f", ng.g.Name(), identical, ratio)
	}
	return []*Table{t}
}

package harness

import (
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/protocols/gossip"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// RunG1 exercises the gossiping extension (the all-to-all primitive of
// the paper's reference [13], the source of Lemma 3.1): tree-flooding of
// rumor sets completes all-to-all dissemination in O(D + log n) rounds
// with probability 1 − 1/n under omission failures, for any p < 1.
func RunG1(o Options) []*Table {
	o = o.withDefaults()
	t := &Table{
		Title:   "G1 (extension, ref [13]) — almost-safe gossiping via rumor-set flooding (MP, omission)",
		Note:    "all n rumors reach all n nodes; time stays O(D + log n) and scales by ~1/(1-p)",
		Headers: []string{"graph", "n", "D", "p", "rounds", "mean completion", "success", "95% CI", "target", "verdict"},
	}
	graphs := []namedGraph{{graph.Line(32), 0}, {graph.Grid(6, 6), 0}, {graph.KaryTree(31, 2), 0}}
	if o.Quick {
		graphs = graphs[:2]
	}
	for _, ng := range graphs {
		n := ng.g.N()
		target := almostSafe(n)
		for _, p := range []float64{0.3, 0.5, 0.7} {
			proto := gossip.New(ng.g, ng.src)
			a := 3 / (1 - p) // horizon multiplier grows with the retry factor
			rounds := proto.Rounds(a)
			full := gossip.FullDigest(n)
			succ := 0
			mean, _, failed := stat.MeanStdWith(o.Trials, o.cellSeed(fmt.Sprintf("G1|%s|p=%v", ng.g.Name(), p)), completionMeasure(&sim.Config{
				Graph: ng.g, Model: sim.MessagePassing, Fault: sim.Omission, P: p,
				Source: ng.src, SourceMsg: full,
				NewNode: proto.NewNode, Rounds: rounds,
				TrackCompletion: true,
			}))
			succ = o.Trials - failed
			est := stat.Proportion{Successes: succ, Trials: o.Trials}
			lo, hi := est.Wilson(1.96)
			t.AddRow(ng.g.Name(), n, ng.g.Radius(ng.src), p, rounds,
				fmt.Sprintf("%.0f", mean), est.Rate(),
				fmt.Sprintf("[%.3f,%.3f]", lo, hi), target, verdict(hi >= target))
			o.logf("G1 %s p=%.1f: %v", ng.g.Name(), p, est)
		}
	}
	return []*Table{t}
}

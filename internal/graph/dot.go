package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection and
// documentation. Vertices listed in highlight are drawn filled (the CLI
// uses this to mark the source).
func (g *Graph) WriteDOT(w io.Writer, highlight ...int) error {
	hi := make(map[int]bool, len(highlight))
	for _, v := range highlight {
		hi[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.name)
	for v := 0; v < g.N(); v++ {
		if hi[v] {
			fmt.Fprintf(&b, "  %d [style=filled];\n", v)
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, w32 := range g.neighbors32(v) {
			if int(w32) > v {
				fmt.Fprintf(&b, "  %d -- %d;\n", v, w32)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTreeDOT renders a rooted tree in DOT format (directed, parent to
// child).
func WriteTreeDOT(w io.Writer, t *Tree) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph tree {\n  %d [style=filled];\n", t.Root)
	for v := range t.Children {
		for _, c := range t.Children[v] {
			fmt.Fprintf(&b, "  %d -> %d;\n", v, c)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"faultcast/internal/rng"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(1, 3)
	g := b.Build("test")
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 3}, {1, 3}} {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.HasEdge(2, 3) {
		t.Fatal("phantom edge (2,3)")
	}
}

func TestBuilderDuplicateEdgeIdempotent(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build("dup")
	if g.M() != 1 {
		t.Fatalf("duplicate edge counted: M = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("duplicate edge inflated degree")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestLine(t *testing.T) {
	g := Line(5)
	if g.M() != 4 || g.MaxDegree() != 2 {
		t.Fatalf("line(5): m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g.Radius(0) != 4 {
		t.Fatalf("line(5) radius from 0 = %d, want 4", g.Radius(0))
	}
	if g.Radius(2) != 2 {
		t.Fatalf("line(5) radius from middle = %d, want 2", g.Radius(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleVertexLine(t *testing.T) {
	g := Line(1)
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("line(1): n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("single vertex should be connected")
	}
	if g.Radius(0) != 0 {
		t.Fatal("single vertex radius should be 0")
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.M() != 6 || g.MaxDegree() != 2 || g.Radius(0) != 3 {
		t.Fatalf("ring(6): m=%d Δ=%d D=%d", g.M(), g.MaxDegree(), g.Radius(0))
	}
}

func TestStar(t *testing.T) {
	g := Star(8)
	if g.MaxDegree() != 7 {
		t.Fatalf("star(8) Δ = %d, want 7", g.MaxDegree())
	}
	if g.Radius(0) != 1 {
		t.Fatalf("star radius from center = %d, want 1", g.Radius(0))
	}
	if g.Radius(3) != 2 {
		t.Fatalf("star radius from leaf = %d, want 2", g.Radius(3))
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 || g.Diameter() != 1 {
		t.Fatalf("K6: m=%d diam=%d", g.M(), g.Diameter())
	}
}

func TestKaryTree(t *testing.T) {
	g := KaryTree(15, 2)
	if g.M() != 14 {
		t.Fatalf("binary tree m=%d, want 14", g.M())
	}
	if g.Radius(0) != 3 {
		t.Fatalf("complete binary tree of 15 has height 3, got %d", g.Radius(0))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("Δ=%d, want 3", g.MaxDegree())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid(3,4): n=%d m=%d", g.N(), g.M())
	}
	if g.Radius(0) != 5 {
		t.Fatalf("grid corner radius = %d, want 5", g.Radius(0))
	}
}

func TestTorus(t *testing.T) {
	g := Torus(3, 3)
	if g.N() != 9 || g.M() != 18 {
		t.Fatalf("torus(3,3): n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if g.Radius(0) != 4 || g.MaxDegree() != 4 {
		t.Fatalf("Q4: D=%d Δ=%d", g.Radius(0), g.MaxDegree())
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(100)
		g := RandomTree(n, r)
		if g.M() != n-1 {
			t.Fatalf("random tree m=%d, want %d", g.M(), n-1)
		}
		if !g.Connected() {
			t.Fatal("random tree disconnected")
		}
	}
}

func TestGNPConnected(t *testing.T) {
	r := rng.New(2)
	for _, p := range []float64{0, 0.05, 0.5} {
		g := GNP(50, p, r)
		if !g.Connected() {
			t.Fatalf("GNP(50,%v) disconnected", p)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("caterpillar disconnected")
	}
	if g.MaxDegree() != 5 { // interior spine: 2 spine + 3 legs
		t.Fatalf("caterpillar Δ=%d, want 5", g.MaxDegree())
	}
}

func TestTwoNode(t *testing.T) {
	g := TwoNode()
	if g.N() != 2 || g.M() != 1 || !g.HasEdge(0, 1) {
		t.Fatalf("K2 malformed: %v", g)
	}
}

// TestLayeredStructure verifies the Lemma 3.3 construction: n = 2^m + m,
// root adjacent to exactly the m layer-2 vertices, and b_i adjacent to
// layer-3 label v iff bit i of v is set.
func TestLayeredStructure(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 6} {
		g := Layered(m)
		bigN := 1 << m
		if g.N() != bigN+m {
			t.Fatalf("m=%d: n=%d, want %d", m, g.N(), bigN+m)
		}
		if g.Degree(0) != m {
			t.Fatalf("m=%d: root degree %d, want %d", m, g.Degree(0), m)
		}
		for v := 1; v < bigN; v++ {
			idx := LayeredLabel(m, v)
			for i := 1; i <= m; i++ {
				want := v&(1<<(i-1)) != 0
				if got := g.HasEdge(i, idx); got != want {
					t.Fatalf("m=%d: edge (b_%d, label %d) = %v, want %v", m, i, v, got, want)
				}
			}
			if g.HasEdge(0, idx) {
				t.Fatalf("m=%d: root adjacent to layer-3 label %d", m, v)
			}
		}
		if g.Radius(0) != 2 {
			t.Fatalf("m=%d: radius %d, want 2", m, g.Radius(0))
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLayeredMaxDegree(t *testing.T) {
	// b_m (highest bit) is adjacent to s plus the 2^(m-1) labels with top
	// bit set; every b_i has the same layer-3 degree 2^(m-1), except label 0
	// doesn't exist so b_i loses label 2^(i-1)? No: label v ranges over
	// 1..2^m-1, and exactly 2^(m-1) of them have bit i set. So deg(b_i) =
	// 2^(m-1) + 1.
	m := 5
	g := Layered(m)
	for i := 1; i <= m; i++ {
		if d := g.Degree(i); d != (1<<(m-1))+1 {
			t.Fatalf("deg(b_%d) = %d, want %d", i, d, (1<<(m-1))+1)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Grid(4, 4)
	dist := g.BFS(0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if dist[r*4+c] != r+c {
				t.Fatalf("grid BFS dist(%d,%d) = %d, want %d", r, c, dist[r*4+c], r+c)
			}
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewBuilder(3)
	g.AddEdge(0, 1)
	dist := g.Build("disc").BFS(0)
	if dist[2] != -1 {
		t.Fatalf("unreachable vertex distance = %d, want -1", dist[2])
	}
}

func TestRadiusPanicsOnDisconnected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build("disc")
	defer func() {
		if recover() == nil {
			t.Fatal("Radius on disconnected graph did not panic")
		}
	}()
	g.Radius(0)
}

// Property: on any random connected graph, BFS distances obey the edge
// relaxation |d(u)-d(v)| <= 1 for every edge.
func TestBFSTriangleProperty(t *testing.T) {
	r := rng.New(7)
	check := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		n := 2 + rr.Intn(60)
		g := GNP(n, 0.1, rr)
		src := r.Intn(n)
		dist := g.BFS(src)
		ok := true
		for v := 0; v < n && ok; v++ {
			g.ForNeighbors(v, func(w int) {
				d := dist[v] - dist[w]
				if d < -1 || d > 1 {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	r := rng.New(9)
	g := GNP(40, 0.2, r)
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v, nil)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("neighbors of %d not sorted: %v", v, nb)
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := Line(3).WriteDOT(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"0 -- 1", "1 -- 2", "0 [style=filled]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestAdjacencyRowMatchesNeighbors: the cached bitset rows must agree with
// the CSR neighbor lists on every vertex, for families spanning word
// boundaries, and repeated calls must return the same shared row.
func TestAdjacencyRowMatchesNeighbors(t *testing.T) {
	r := rng.New(21)
	for _, g := range []*Graph{
		Line(1), Line(63), Line(64), Line(65), Star(70),
		Grid(9, 9), Hypercube(5), Complete(40), GNP(130, 0.1, r), Layered(4),
	} {
		if g.RowWords() != (g.N()+63)/64 {
			t.Fatalf("%v: RowWords=%d", g, g.RowWords())
		}
		for v := 0; v < g.N(); v++ {
			row := g.AdjacencyRow(v)
			got := row.AppendIDs(nil)
			want := g.Neighbors(v, nil)
			if len(got) != len(want) {
				t.Fatalf("%v: vertex %d: row %v != neighbors %v", g, v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: vertex %d: row %v != neighbors %v", g, v, got, want)
				}
			}
			if row.Contains(v) {
				t.Fatalf("%v: vertex %d is in its own row", g, v)
			}
		}
	}
}

// TestAdjacencyRowConcurrent: lazy row construction must be safe under
// concurrent first use (the race detector is the assertion here).
func TestAdjacencyRowConcurrent(t *testing.T) {
	g := Grid(8, 8)
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() {
			total := 0
			for v := 0; v < g.N(); v++ {
				total += g.AdjacencyRow(v).Count()
			}
			done <- total
		}()
	}
	want := 2 * g.M()
	for w := 0; w < 8; w++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent row degree sum %d, want %d", got, want)
		}
	}
}

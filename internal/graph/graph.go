// Package graph implements the undirected-graph substrate the simulator
// runs on: a compact adjacency representation, the graph families used in
// the paper's constructions and experiments, breadth-first search, spanning
// trees, and the distance/degree statistics (radius w.r.t. a source, max
// degree Δ) that parameterize the paper's bounds.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"faultcast/internal/bitset"
)

// Graph is a simple undirected graph on vertices 0..N-1. The zero value is
// an empty graph; use New or a builder from builders.go.
//
// Internally adjacency is stored CSR-style (one shared edge array indexed
// by per-vertex offsets) so that Neighbors returns a shared sub-slice with
// no per-call allocation. Callers must not mutate returned slices.
//
// For the simulator's word-parallel core the graph additionally caches one
// adjacency bitset row per vertex (AdjacencyRow), built lazily on first
// use and safe for concurrent access.
type Graph struct {
	name    string
	offsets []int32 // len N+1
	adj     []int32 // concatenated sorted neighbor lists

	rowsOnce sync.Once
	rowBits  []uint64 // N rows of rowWords words each, lazily built
	rowWords int

	fpOnce sync.Once
	fp     [32]byte // lazily computed structural digest (Fingerprint)
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[[2]int32]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[[2]int32]struct{})}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected because neither is meaningful for the broadcast
// models (a node never "hears itself", and multi-edges would distort the
// radio collision rule).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int32{int32(u), int32(v)}] = struct{}{}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[[2]int32{int32(u), int32(v)}]
	return ok
}

// Build finalizes the graph. The Builder may be reused afterwards.
func (b *Builder) Build(name string) *Graph {
	deg := make([]int32, b.n)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for e := range b.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{name: name, offsets: offsets, adj: adj}
	for v := 0; v < b.n; v++ {
		nb := g.neighbors32(v)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Name returns the label given at construction (e.g. "line(64)").
func (g *Graph) Name() string { return g.name }

func (g *Graph) neighbors32(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns Δ, the maximum degree. The radio feasibility threshold
// of Theorem 2.4 is p < (1-p)^(Δ+1).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Neighbors appends the neighbors of v (in increasing order) to dst and
// returns the extended slice. Passing dst[:0] avoids allocation.
func (g *Graph) Neighbors(v int, dst []int) []int {
	for _, w := range g.neighbors32(v) {
		dst = append(dst, int(w))
	}
	return dst
}

// ForNeighbors calls fn for each neighbor of v in increasing order.
func (g *Graph) ForNeighbors(v int, fn func(w int)) {
	for _, w := range g.neighbors32(v) {
		fn(int(w))
	}
}

// AdjacencyRow returns the neighbors of v as a bitset over vertex ids —
// the word-parallel counterpart of Neighbors. Rows for all vertices are
// built once on first call and shared; callers must not mutate the
// returned set. Safe for concurrent use.
func (g *Graph) AdjacencyRow(v int) bitset.Set {
	g.rowsOnce.Do(g.buildRows)
	return bitset.Set(g.rowBits[v*g.rowWords : (v+1)*g.rowWords])
}

// RowWords returns the number of 64-bit words per adjacency row (the word
// length every per-run bitset over this graph's vertices must have).
func (g *Graph) RowWords() int {
	g.rowsOnce.Do(g.buildRows)
	return g.rowWords
}

func (g *Graph) buildRows() {
	n := g.N()
	g.rowWords = bitset.Words(n)
	g.rowBits = make([]uint64, n*g.rowWords)
	for v := 0; v < n; v++ {
		row := g.rowBits[v*g.rowWords : (v+1)*g.rowWords]
		for _, w := range g.neighbors32(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.neighbors32(u)
	t := int32(v)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= t })
	return i < len(nb) && nb[i] == t
}

// BFS returns the distance (in hops) from src to every vertex; unreachable
// vertices get -1.
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := int(queue[0])
		queue = queue[1:]
		for _, w := range g.neighbors32(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for N <= 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Radius returns the eccentricity of src: the largest distance from src to
// any vertex. This is the paper's D. It panics if some vertex is
// unreachable, since broadcast is undefined on disconnected graphs.
func (g *Graph) Radius(src int) int {
	max := 0
	for v, d := range g.BFS(src) {
		if d == -1 {
			panic(fmt.Sprintf("graph: vertex %d unreachable from %d", v, src))
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all vertices. O(N·(N+M)).
func (g *Graph) Diameter() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if r := g.Radius(v); r > max {
			max = r
		}
	}
	return max
}

// Validate checks internal consistency (sorted neighbor lists, symmetry,
// no loops). It is used by property tests and returns a descriptive error.
func (g *Graph) Validate() error {
	n := g.N()
	for v := 0; v < n; v++ {
		nb := g.neighbors32(v)
		for i, w := range nb {
			if int(w) == v {
				return fmt.Errorf("self-loop at %d", v)
			}
			if w < 0 || int(w) >= n {
				return fmt.Errorf("neighbor %d of %d out of range", w, v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("neighbors of %d not strictly increasing", v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d}", g.name, g.N(), g.M())
}

package graph

import (
	"fmt"

	"faultcast/internal/rng"
)

// Line returns the path graph 0-1-...-n-1. With the source at endpoint 0
// this is the setting of Lemma 3.1 (Diks–Pelc) and Lemma 3.2 (Kučera).
func Line(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build(fmt.Sprintf("line(%d)", n))
}

// Ring returns the cycle graph on n >= 3 vertices.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build(fmt.Sprintf("ring(%d)", n))
}

// Star returns a star with center 0 and leaves 1..n-1. Its max degree is
// n-1, making it the extremal case for the radio threshold p < (1-p)^(Δ+1)
// of Theorem 2.4 (the impossibility proof uses a (Δ+1)-node star with the
// source at a leaf).
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build(fmt.Sprintf("star(%d)", n))
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build(fmt.Sprintf("K(%d)", n))
}

// KaryTree returns the complete k-ary tree with n vertices rooted at 0
// (vertex i's children are k*i+1 .. k*i+k, heap layout).
func KaryTree(n, k int) *Graph {
	if k < 1 {
		panic("graph: k-ary tree needs k >= 1")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/k)
	}
	return b.Build(fmt.Sprintf("tree(%d,k=%d)", n, k))
}

// Grid returns the rows x cols grid graph; vertex (r,c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build(fmt.Sprintf("grid(%dx%d)", rows, cols))
}

// Torus returns the rows x cols torus (grid with wraparound); needs both
// dimensions >= 3 to avoid multi-edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs rows, cols >= 3")
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build(fmt.Sprintf("torus(%dx%d)", rows, cols))
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	if d < 0 || d > 30 {
		panic("graph: hypercube dimension out of range")
	}
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Build(fmt.Sprintf("hypercube(%d)", d))
}

// RandomTree returns a uniformly random labeled tree on n vertices (via a
// random Prüfer-like attachment: vertex i attaches to a uniform earlier
// vertex), rooted at 0. The result is always connected.
func RandomTree(n int, r *rng.Source) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i))
	}
	return b.Build(fmt.Sprintf("randtree(%d)", n))
}

// GNP returns an Erdős–Rényi G(n, p) random graph augmented with a random
// spanning tree so it is always connected (broadcast is undefined
// otherwise). The augmentation only adds edges, so edge probability is
// at least p.
func GNP(n int, p float64, r *rng.Source) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i)) // connectivity backbone
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !b.HasEdge(i, j) && r.Bernoulli(p) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(fmt.Sprintf("gnp(%d,%.3g)", n, p))
}

// Caterpillar returns a caterpillar: a spine path of length spine with legs
// leaves attached to every spine vertex. Useful as a bounded-degree family
// with large D.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, spine+i*legs+l)
		}
	}
	return b.Build(fmt.Sprintf("caterpillar(%d,%d)", spine, legs))
}

// Layered returns the three-layer radio lower-bound graph G of Section 3
// (Lemma 3.3/3.4), parameterized by m (so N = 2^m):
//
//   - layer 1: the root s (vertex 0);
//   - layer 2: vertices b_1..b_m (indices 1..m), all adjacent to s;
//   - layer 3: vertices labeled 1..N-1 (indices m+1..m+N-1; layer-3 label v
//     has index m+v), with b_i adjacent to label v iff bit i of v is 1
//     (bit 1 = least significant).
//
// Altogether n = N + log N = 2^m + m vertices. Fault-free radio broadcast
// from s takes exactly m+1 steps on this graph (Lemma 3.3), yet almost-safe
// broadcast needs Ω(log n·log log n/log log log n) steps (Lemma 3.4).
func Layered(m int) *Graph {
	if m < 1 || m > 24 {
		panic("graph: layered graph needs 1 <= m <= 24")
	}
	bigN := 1 << m
	n := bigN + m
	b := NewBuilder(n)
	for i := 1; i <= m; i++ {
		b.AddEdge(0, i)
	}
	for v := 1; v < bigN; v++ {
		for i := 1; i <= m; i++ {
			if v&(1<<(i-1)) != 0 {
				b.AddEdge(i, m+v)
			}
		}
	}
	return b.Build(fmt.Sprintf("layered(m=%d)", m))
}

// LayeredSource returns the source vertex of the Layered graph (the root).
func LayeredSource() int { return 0 }

// LayeredLabel returns the index of the layer-3 vertex with binary label v
// (1 <= v <= 2^m - 1) in Layered(m).
func LayeredLabel(m, v int) int {
	if v < 1 || v >= 1<<m {
		panic("graph: layered label out of range")
	}
	return m + v
}

// TwoNode returns K2, the two-node graph of the Theorem 2.3 impossibility
// argument and of the "hello" parity protocol.
func TwoNode() *Graph {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	return b.Build("K2")
}

package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList serializes the graph in a simple line format:
//
//	# optional comments
//	n <vertex-count>
//	<u> <v>        one edge per line
//
// ReadEdgeList parses the same format, so graphs round-trip.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", g.name)
	fmt.Fprintf(bw, "n %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		for _, w32 := range g.neighbors32(v) {
			if int(w32) > v {
				fmt.Fprintf(bw, "%d %d\n", v, w32)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored; the "n <count>" header must precede the
// first edge.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate vertex-count header", lineNo)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || len(fields) != 2 || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad header %q", lineNo, line)
			}
			b = NewBuilder(n)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graph: line %d: edge before the \"n <count>\" header", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", lineNo, line)
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 || u >= bN(b) || v >= bN(b) || u == v {
			return nil, fmt.Errorf("graph: line %d: invalid edge (%d,%d)", lineNo, u, v)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing \"n <count>\" header")
	}
	return b.Build(name), nil
}

func bN(b *Builder) int { return b.n }

// Fingerprint returns a SHA-256 digest of the graph's structure: the
// vertex count followed by every edge {u, v} with u < v, in the canonical
// order induced by the sorted adjacency lists. Two graphs carry the same
// fingerprint iff they have identical vertex counts and edge sets,
// regardless of name or construction order, so semantically identical
// topologies hash equal. The digest is computed once on first call,
// cached, and safe for concurrent use (graphs are immutable after Build).
func (g *Graph) Fingerprint() [32]byte {
	g.fpOnce.Do(func() {
		h := sha256.New()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
		h.Write(buf[:])
		for v := 0; v < g.N(); v++ {
			for _, w := range g.neighbors32(v) {
				if int(w) > v {
					binary.LittleEndian.PutUint32(buf[:4], uint32(v))
					binary.LittleEndian.PutUint32(buf[4:], uint32(w))
					h.Write(buf[:])
				}
			}
		}
		h.Sum(g.fp[:0])
	})
	return g.fp
}

package graph

import "fmt"

// Tree is a rooted spanning tree of a Graph, the structure every algorithm
// in Section 2 broadcasts along. Vertices are indexed as in the parent
// graph; Parent[root] == -1.
type Tree struct {
	Root     int
	Parent   []int   // Parent[v] = parent of v in the tree, -1 for the root
	Children [][]int // Children[v] = children of v, in increasing order
	Depth    []int   // Depth[v] = distance from the root along the tree
	order    []int   // vertices sorted by nondecreasing depth (BFS order)
}

// BFSTree builds a breadth-first spanning tree of g rooted at src. Because
// it is breadth-first, Depth[v] equals the graph distance from src, so the
// tree height equals the radius D — the property Theorems 3.1/3.2 rely on.
// It panics if g is disconnected.
func BFSTree(g *Graph, src int) *Tree {
	n := g.N()
	t := &Tree{
		Root:     src,
		Parent:   make([]int, n),
		Children: make([][]int, n),
		Depth:    make([]int, n),
		order:    make([]int, 0, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Depth[i] = -1
	}
	t.Depth[src] = 0
	t.order = append(t.order, src)
	for head := 0; head < len(t.order); head++ {
		v := t.order[head]
		g.ForNeighbors(v, func(w int) {
			if t.Depth[w] == -1 {
				t.Depth[w] = t.Depth[v] + 1
				t.Parent[w] = v
				t.Children[v] = append(t.Children[v], w)
				t.order = append(t.order, w)
			}
		})
	}
	if len(t.order) != n {
		panic(fmt.Sprintf("graph: BFSTree on disconnected graph (%d of %d reached)", len(t.order), n))
	}
	return t
}

// Order returns all vertices ordered by nondecreasing distance from the
// root — the enumeration v_1..v_n used by Simple-Omission/Simple-Malicious
// ("ordered by nondecreasing distance from s in T"). Callers must not
// mutate the returned slice.
func (t *Tree) Order() []int { return t.order }

// Height returns the maximum depth (the tree's height; equals the radius D
// for BFS trees).
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.Parent) }

// Branch returns the root-to-v path (inclusive). Each branch of the BFS
// tree is the "line" to which Lemma 3.1/3.2 are applied.
func (t *Tree) Branch(v int) []int {
	var rev []int
	for u := v; u != -1; u = t.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Leaves returns all vertices with no children.
func (t *Tree) Leaves() []int {
	var ls []int
	for v := range t.Children {
		if len(t.Children[v]) == 0 {
			ls = append(ls, v)
		}
	}
	return ls
}

// Validate checks tree invariants: exactly one root, parent/child
// consistency, depths increment along edges, and all vertices reachable.
func (t *Tree) Validate() error {
	n := t.N()
	roots := 0
	for v := 0; v < n; v++ {
		if t.Parent[v] == -1 {
			roots++
			if v != t.Root {
				return fmt.Errorf("vertex %d has no parent but is not the root", v)
			}
			if t.Depth[v] != 0 {
				return fmt.Errorf("root depth %d != 0", t.Depth[v])
			}
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return fmt.Errorf("parent of %d out of range: %d", v, p)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("depth of %d (%d) != depth of parent %d (%d)+1", v, t.Depth[v], p, t.Depth[p])
		}
		found := false
		for _, c := range t.Children[p] {
			if c == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("vertex %d missing from children of its parent %d", v, p)
		}
	}
	if roots != 1 {
		return fmt.Errorf("expected 1 root, found %d", roots)
	}
	if len(t.order) != n {
		return fmt.Errorf("order covers %d of %d vertices", len(t.order), n)
	}
	for i := 1; i < len(t.order); i++ {
		if t.Depth[t.order[i]] < t.Depth[t.order[i-1]] {
			return fmt.Errorf("order not sorted by depth at position %d", i)
		}
	}
	return nil
}

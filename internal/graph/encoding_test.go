package graph

import (
	"strings"
	"testing"

	"faultcast/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(17)
	for _, g := range []*Graph{Line(7), Star(5), Grid(3, 3), GNP(20, 0.15, r), Layered(3)} {
		var sb strings.Builder
		if err := g.WriteEdgeList(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(strings.NewReader(sb.String()), "roundtrip")
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("%v: round-trip n=%d m=%d", g, back.N(), back.M())
		}
		for v := 0; v < g.N(); v++ {
			g.ForNeighbors(v, func(w int) {
				if !back.HasEdge(v, w) {
					t.Fatalf("%v: lost edge (%d,%d)", g, v, w)
				}
			})
		}
		if err := back.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no header", "0 1\n"},
		{"bad header", "n x\n"},
		{"duplicate header", "n 3\nn 3\n"},
		{"bad edge line", "n 3\n0 1 2\n"},
		{"out of range", "n 3\n0 5\n"},
		{"self loop", "n 3\n1 1\n"},
		{"empty", ""},
		{"garbage edge", "n 3\na b\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.in), "bad"); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n# another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), "commented")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListIsolatedVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("n 4\n0 1\n"), "sparse")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.Degree(3) != 0 {
		t.Fatalf("isolated vertices lost: n=%d", g.N())
	}
}

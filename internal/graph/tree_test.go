package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"faultcast/internal/rng"
)

func TestBFSTreeLine(t *testing.T) {
	g := Line(5)
	tr := BFSTree(g, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != v-1 {
			t.Fatalf("parent of %d = %d, want %d", v, tr.Parent[v], v-1)
		}
	}
	if tr.Height() != 4 {
		t.Fatalf("height = %d, want 4", tr.Height())
	}
}

func TestBFSTreeDepthEqualsDistance(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 10; trial++ {
		g := GNP(60, 0.08, r)
		src := r.Intn(g.N())
		tr := BFSTree(g, src)
		dist := g.BFS(src)
		for v := 0; v < g.N(); v++ {
			if tr.Depth[v] != dist[v] {
				t.Fatalf("depth[%d]=%d != dist %d", v, tr.Depth[v], dist[v])
			}
		}
		if tr.Height() != g.Radius(src) {
			t.Fatalf("height %d != radius %d", tr.Height(), g.Radius(src))
		}
	}
}

func TestBFSTreePanicsOnDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build("disc")
	defer func() {
		if recover() == nil {
			t.Fatal("BFSTree on disconnected graph did not panic")
		}
	}()
	BFSTree(g, 0)
}

func TestOrderRespectsLevels(t *testing.T) {
	g := KaryTree(31, 2)
	tr := BFSTree(g, 0)
	ord := tr.Order()
	if len(ord) != 31 || ord[0] != 0 {
		t.Fatalf("order malformed: %v", ord[:3])
	}
	for i := 1; i < len(ord); i++ {
		if tr.Depth[ord[i]] < tr.Depth[ord[i-1]] {
			t.Fatal("order does not respect levels")
		}
	}
}

func TestBranch(t *testing.T) {
	g := KaryTree(7, 2)
	tr := BFSTree(g, 0)
	br := tr.Branch(6) // 6's parent is 2, 2's parent is 0
	want := []int{0, 2, 6}
	if len(br) != 3 {
		t.Fatalf("branch = %v, want %v", br, want)
	}
	for i := range want {
		if br[i] != want[i] {
			t.Fatalf("branch = %v, want %v", br, want)
		}
	}
	root := tr.Branch(0)
	if len(root) != 1 || root[0] != 0 {
		t.Fatalf("branch(root) = %v", root)
	}
}

func TestLeaves(t *testing.T) {
	g := Star(5)
	tr := BFSTree(g, 0)
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("star(5) leaves = %d, want 4", got)
	}
	// From a leaf, the BFS tree of a star has center as the only internal
	// non-root vertex: leaves are the other 3 leaves.
	tr2 := BFSTree(g, 1)
	if got := len(tr2.Leaves()); got != 3 {
		t.Fatalf("star from leaf: leaves = %d, want 3", got)
	}
}

// Property: a BFS tree of any connected random graph passes Validate and
// has exactly n-1 parent links.
func TestBFSTreePropertyValid(t *testing.T) {
	check := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(80)
		g := GNP(n, 0.1, r)
		tr := BFSTree(g, r.Intn(n))
		if tr.Validate() != nil {
			return false
		}
		links := 0
		for _, p := range tr.Parent {
			if p != -1 {
				links++
			}
		}
		return links == n-1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTreeDOT(t *testing.T) {
	tr := BFSTree(Line(3), 0)
	var sb strings.Builder
	if err := WriteTreeDOT(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 -> 1") || !strings.Contains(sb.String(), "1 -> 2") {
		t.Fatalf("tree DOT missing edges:\n%s", sb.String())
	}
}

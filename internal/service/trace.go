package service

import (
	"net/http"
	"sync/atomic"
	"time"

	"faultcast/internal/exec"
	"faultcast/internal/telemetry"
)

// batchAgg folds exec.BatchStat probe callbacks into per-request totals:
// how many stop-rule batches ran, how much of their wall time was spent
// inside the simulation engine vs scheduler overhead (claiming, folding,
// waiting). Atomic because sweep cells decide batches concurrently.
type batchAgg struct {
	batches  atomic.Int64
	trials   atomic.Int64
	engineNs atomic.Int64
	wallNs   atomic.Int64
}

func (a *batchAgg) observe(bs exec.BatchStat) {
	a.batches.Add(1)
	a.trials.Add(int64(bs.Trials))
	a.engineNs.Add(bs.Engine.Nanoseconds())
	a.wallNs.Add(bs.Wall.Nanoseconds())
}

// annotate writes the totals onto the execution span. engine_time summed
// over workers can exceed the batch wall total on multi-core runs;
// sched_overhead is only reported when wall exceeds engine (the
// single-worker reading of "time not spent simulating").
func (a *batchAgg) annotate(sp *telemetry.Span) {
	n := a.batches.Load()
	if n == 0 {
		return
	}
	sp.SetAttr("batches", n)
	sp.SetAttr("batch_trials", a.trials.Load())
	eng, wall := a.engineNs.Load(), a.wallNs.Load()
	sp.SetAttr("engine_time", time.Duration(eng))
	if over := wall - eng; over > 0 {
		sp.SetAttr("sched_overhead", time.Duration(over))
	}
}

func (s *Server) handleTraceIndex(w http.ResponseWriter, _ *http.Request) {
	if s.tel == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: "tracing is disabled on this server (trace ring size < 0)",
			Code:  "tracing-disabled",
		})
		return
	}
	writeJSON(w, http.StatusOK, s.tel.Index())
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: "tracing is disabled on this server (trace ring size < 0)",
			Code:  "tracing-disabled",
		})
		return
	}
	id := r.PathValue("id")
	t, ok := s.tel.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: "no retained trace " + id + " (evicted, unfinished, or never started)",
			Code:  "trace-not-found",
		})
		return
	}
	writeJSON(w, http.StatusOK, t.Export())
}

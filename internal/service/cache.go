package service

import (
	"container/list"
	"time"

	"faultcast"
)

// lru is a plain least-recently-used map with a fixed capacity. It is not
// safe for concurrent use; the Server guards both of its instances with
// one mutex (operations are O(1) pointer shuffles, never simulations).
type lru[V any] struct {
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
}

type lruItem[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{capacity: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the value for key and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruItem[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or replaces key, evicting the least recently used entry
// beyond capacity.
func (c *lru[V]) put(key string, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem[V]{key: key, val: val})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem[V]).key)
	}
}

// remove deletes key if present.
func (c *lru[V]) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *lru[V]) len() int { return c.order.Len() }

// resultEntry is one cached estimate with the plan's round horizon and
// the estimation core that computed it (so a cache hit can answer without
// touching the plan) and its expiry instant.
type resultEntry struct {
	est     faultcast.Estimate
	rounds  int
	core    string
	expires time.Time
}

// satisfies reports whether the cached estimate already answers a request
// with the given requirement: either the cached 95% interval is at least
// as tight as a requested positive halfWidth, or the cached trial count
// reaches the request's budget — a refinement capped at `trials` could
// not add a single trial, so re-executing would be a no-op that burns an
// admission slot (the cached answer is the request's best effort).
func (e resultEntry) satisfies(trials int, halfWidth float64) bool {
	if e.est.Trials >= trials {
		return true
	}
	return halfWidth > 0 && (e.est.Hi-e.est.Low)/2 <= halfWidth
}

package service

import (
	"net/http"
	"runtime"

	"faultcast/internal/hist"
	"faultcast/internal/telemetry"
)

// buildMetrics assembles the GET /metrics registry. It re-expresses the
// exact counters /v1/stats reads — same atomics, no second bookkeeping —
// in Prometheus text format under the stable names documented in
// DESIGN.md's metric ledger (pinned byte-for-byte by metrics_names.txt
// and the CI metrics-smoke job).
//
// Every family is ALWAYS registered: store- and cluster-backed ones emit
// no samples when the subsystem is off, but their HELP/TYPE headers still
// appear, so the name ledger is identical whatever flags the daemon runs
// with.
func (s *Server) buildMetrics() *telemetry.Registry {
	r := telemetry.NewRegistry()
	counter := func(name, help string, v func() float64) {
		r.Counter(name, help, func(emit func([]telemetry.Label, float64)) { emit(nil, v()) })
	}
	gauge := func(name, help string, v func() float64) {
		r.Gauge(name, help, func(emit func([]telemetry.Label, float64)) { emit(nil, v()) })
	}
	endpoint := func(v string) []telemetry.Label { return []telemetry.Label{{Name: "endpoint", Value: v}} }

	r.Gauge("faultcast_build_info",
		"Build metadata as labels; the value is always 1.",
		func(emit func([]telemetry.Label, float64)) {
			emit([]telemetry.Label{{Name: "go_version", Value: runtime.Version()}}, 1)
		})
	gauge("faultcast_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return s.opts.Now().Sub(s.start).Seconds() })
	counter("faultcast_http_requests_total",
		"HTTP requests received, any endpoint or method.",
		func() float64 { return float64(s.c.requests.Load()) })
	r.Counter("faultcast_api_requests_total",
		"Requests to the three execution endpoints.",
		func(emit func([]telemetry.Label, float64)) {
			emit(endpoint("estimate"), float64(s.c.estimateCalls.Load()))
			emit(endpoint("shard"), float64(s.c.shardCalls.Load()))
			emit(endpoint("sweep"), float64(s.c.sweepCalls.Load()))
		})
	counter("faultcast_bad_requests_total",
		"Requests rejected by validation or compile (4xx).",
		func() float64 { return float64(s.c.badRequests.Load()) })
	counter("faultcast_admission_rejected_total",
		"Requests answered 429: inflight and queue both full.",
		func() float64 { return float64(s.c.rejected.Load()) })
	counter("faultcast_admission_canceled_total",
		"Requests whose client hung up while queued for a slot (499).",
		func() float64 { return float64(s.c.canceled.Load()) })
	gauge("faultcast_admission_inflight",
		"Executions currently holding an admission slot.",
		func() float64 { return float64(len(s.slots)) })
	gauge("faultcast_admission_waiting",
		"Callers currently queued for an admission slot.",
		func() float64 { return float64(s.waiting.Load()) })
	counter("faultcast_cache_hits_total",
		"Estimates answered from the result cache or the store's replay with zero simulation.",
		func() float64 { return float64(s.c.cacheHits.Load()) })
	r.Counter("faultcast_coalesced_total",
		"Requests that rode an identical in-flight execution, by whether the leader succeeded.",
		func(emit func([]telemetry.Label, float64)) {
			emit([]telemetry.Label{{Name: "outcome", Value: "error"}}, float64(s.c.coalescedErrors.Load()))
			emit([]telemetry.Label{{Name: "outcome", Value: "shared"}}, float64(s.c.coalesced.Load()))
		})
	counter("faultcast_executions_total",
		"Estimate executions that reached the engine (fresh or refining).",
		func() float64 { return float64(s.c.executions.Load()) })
	r.Counter("faultcast_executions_by_core_total",
		"Simulating executions (estimates, sweep cells, shards) by estimation engine.",
		func(emit func([]telemetry.Label, float64)) {
			emit([]telemetry.Label{{Name: "core", Value: "bitset"}}, float64(s.c.coreBitset.Load()))
			emit([]telemetry.Label{{Name: "core", Value: "concurrent"}}, float64(s.c.coreConcurrent.Load()))
			emit([]telemetry.Label{{Name: "core", Value: "lanes"}}, float64(s.c.coreLanes.Load()))
			emit([]telemetry.Label{{Name: "core", Value: "scalar"}}, float64(s.c.coreScalar.Load()))
		})
	counter("faultcast_refines_total",
		"Answers produced by topping up a cached or stored estimate.",
		func() float64 { return float64(s.c.refines.Load()) })
	counter("faultcast_trials_simulated_total",
		"Monte-Carlo trials actually executed by this process.",
		func() float64 { return float64(s.c.trialsSimulated.Load()) })
	counter("faultcast_plan_compiles_total",
		"Scenario compilations (sweeps count once per distinct cell plan).",
		func() float64 { return float64(s.c.planCompiles.Load()) })
	counter("faultcast_plan_cache_hits_total",
		"Plan lookups served from the compiled-plan LRU.",
		func() float64 { return float64(s.c.planCacheHits.Load()) })
	gauge("faultcast_plan_cache_entries",
		"Compiled plans currently in the LRU.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.plans.len()) })
	gauge("faultcast_result_cache_entries",
		"Estimates currently in the TTL result cache.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.results.len()) })
	counter("faultcast_sweep_cells_total",
		"Sweep cells decided.",
		func() float64 { return float64(s.c.sweepCells.Load()) })
	counter("faultcast_sweep_cell_cache_hits_total",
		"Sweep cells answered with zero simulation.",
		func() float64 { return float64(s.c.sweepCellCacheHits.Load()) })
	counter("faultcast_shards_executed_total",
		"Coordinator shards executed by this worker's /v1/shard.",
		func() float64 { return float64(s.c.shardsExecuted.Load()) })
	counter("faultcast_shard_trials_total",
		"Trials executed on behalf of coordinators.",
		func() float64 { return float64(s.c.shardTrials.Load()) })
	counter("faultcast_shards_drained_total",
		"Shards refused with 503 because this worker was draining.",
		func() float64 { return float64(s.c.shardsDrained.Load()) })
	gauge("faultcast_shard_inflight",
		"Shard executions currently running.",
		func() float64 { return float64(s.shardInflight.Load()) })
	gauge("faultcast_draining",
		"1 once BeginDrain has been called (the process is shutting down).",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	// Durable-store families: zero (or sample-less) without -store.
	counter("faultcast_store_hits_total",
		"Requests and sweep cells fully answered by the durable store's replay.",
		func() float64 { return float64(s.c.storeHits.Load()) })
	counter("faultcast_store_refines_total",
		"Requests and sweep cells that resumed a stored prefix and simulated only the marginal batches.",
		func() float64 { return float64(s.c.storeRefines.Load()) })
	storeCounter := func(name, help string, v func(st *storeStatsView) float64) {
		r.Counter(name, help, func(emit func([]telemetry.Label, float64)) {
			if s.opts.Store == nil {
				return
			}
			st := s.opts.Store.Stats()
			emit(nil, v(&storeStatsView{
				loads:        st.Loads,
				trialsLoaded: st.TrialsLoaded,
				appends:      st.Appends,
				appendErrors: st.AppendErrors,
				corrupt:      st.CorruptRecordsSkipped,
			}))
		})
	}
	storeCounter("faultcast_store_loads_total",
		"Tally-store load calls (replays of a persisted prefix).",
		func(st *storeStatsView) float64 { return float64(st.loads) })
	storeCounter("faultcast_store_trials_loaded_total",
		"Stored trials returned by loads — simulation work warm answers avoided.",
		func(st *storeStatsView) float64 { return float64(st.trialsLoaded) })
	storeCounter("faultcast_store_appends_total",
		"Tally records persisted.",
		func(st *storeStatsView) float64 { return float64(st.appends) })
	storeCounter("faultcast_store_append_errors_total",
		"Rejected or failed persists (the answer was still served).",
		func(st *storeStatsView) float64 { return float64(st.appendErrors) })
	storeCounter("faultcast_store_corrupt_records_total",
		"Corrupt store frames skipped during replay (never fatal).",
		func(st *storeStatsView) float64 { return float64(st.corrupt) })

	// Cluster-coordinator families: sample-less without -workers.
	r.Counter("faultcast_cluster_cells_total",
		"Estimation cells routed by the coordinator, by whether they were sharded across the fleet or ran wholly in process.",
		func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			st := s.opts.Cluster.Status()
			emit([]telemetry.Label{{Name: "mode", Value: "local"}}, float64(st.LocalCells))
			emit([]telemetry.Label{{Name: "mode", Value: "remote"}}, float64(st.CellsDistributed))
		})
	clusterCounter := func(name, help string, v func(st *clusterStatsView) float64) {
		r.Counter(name, help, func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			st := s.opts.Cluster.Status()
			emit(nil, v(&clusterStatsView{
				dispatched: st.ShardsDispatched,
				retries:    st.ShardRetries,
				failovers:  st.LocalFailovers,
			}))
		})
	}
	clusterCounter("faultcast_cluster_shards_dispatched_total",
		"Remote shard dispatch attempts.",
		func(st *clusterStatsView) float64 { return float64(st.dispatched) })
	clusterCounter("faultcast_cluster_shard_retries_total",
		"Shards re-routed to another worker after a dispatch failure.",
		func(st *clusterStatsView) float64 { return float64(st.retries) })
	clusterCounter("faultcast_cluster_local_failovers_total",
		"Shards that ran out of workers and executed in process.",
		func(st *clusterStatsView) float64 { return float64(st.failovers) })
	worker := func(url string) []telemetry.Label { return []telemetry.Label{{Name: "worker", Value: url}} }
	r.Gauge("faultcast_cluster_worker_up",
		"1 while the worker is considered healthy, 0 during its down cooldown.",
		func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			for _, w := range s.opts.Cluster.Status().Workers {
				up := 0.0
				if w.Healthy {
					up = 1
				}
				emit(worker(w.URL), up)
			}
		})
	r.Gauge("faultcast_cluster_worker_inflight",
		"Shards currently dispatched to the worker.",
		func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			for _, w := range s.opts.Cluster.Status().Workers {
				emit(worker(w.URL), float64(w.Inflight))
			}
		})
	r.Counter("faultcast_cluster_worker_shards_total",
		"Completed shard dispatches per worker, by outcome.",
		func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			for _, w := range s.opts.Cluster.Status().Workers {
				emit([]telemetry.Label{{Name: "outcome", Value: "failed"}, {Name: "worker", Value: w.URL}}, float64(w.ShardsFailed))
				emit([]telemetry.Label{{Name: "outcome", Value: "ok"}, {Name: "worker", Value: w.URL}}, float64(w.ShardsOK))
			}
		})
	r.Counter("faultcast_cluster_worker_trials_total",
		"Trials of successfully returned shards per worker.",
		func(emit func([]telemetry.Label, float64)) {
			if s.opts.Cluster == nil {
				return
			}
			for _, w := range s.opts.Cluster.Status().Workers {
				emit(worker(w.URL), float64(w.TrialsExecuted))
			}
		})

	counter("faultcast_traces_total",
		"Request traces started (0 when tracing is disabled).",
		func() float64 { return float64(s.tel.Started()) })
	r.Histogram("faultcast_request_duration_seconds",
		"Server-observed request latency by endpoint: handler entry to response written, all statuses.",
		func(emit func([]telemetry.Label, hist.Snapshot)) {
			emit(endpoint("estimate"), s.lat.estimate.Snapshot())
			emit(endpoint("shard"), s.lat.shard.Snapshot())
			emit(endpoint("sweep"), s.lat.sweep.Snapshot())
		})

	// Go runtime families, for the profiling story: correlate a latency
	// regression in the histograms above with GC pressure here, then dig
	// in via the -debug-addr pprof endpoints.
	gauge("go_goroutines",
		"Current goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	mem := func() *runtime.MemStats {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return &ms
	}
	gauge("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(mem().HeapAlloc) })
	gauge("go_heap_objects",
		"Number of allocated heap objects.",
		func() float64 { return float64(mem().HeapObjects) })
	counter("go_alloc_bytes_total",
		"Cumulative bytes allocated for heap objects.",
		func() float64 { return float64(mem().TotalAlloc) })
	counter("go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(mem().NumGC) })
	counter("go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(mem().PauseTotalNs) / 1e9 })
	return r
}

// storeStatsView and clusterStatsView keep the metric closures above
// decoupled from the snapshot structs' field sets — adding a field to
// store.Stats or cluster.Status cannot silently change a metric.
type storeStatsView struct {
	loads, trialsLoaded, appends, appendErrors, corrupt uint64
}

type clusterStatsView struct {
	dispatched, retries, failovers uint64
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postSweep(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeSweep splits an NDJSON sweep response into cell lines and the
// final summary line.
func decodeSweep(t *testing.T, body *bytes.Buffer) ([]SweepCellResponse, SweepSummary) {
	t.Helper()
	var cells []SweepCellResponse
	var summary SweepSummary
	sawSummary := false
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", line)
		}
		if strings.Contains(line, `"done"`) {
			if err := json.Unmarshal([]byte(line), &summary); err != nil {
				t.Fatalf("bad summary line %q: %v", line, err)
			}
			sawSummary = true
			continue
		}
		var c SweepCellResponse
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("bad cell line %q: %v", line, err)
		}
		cells = append(cells, c)
	}
	if !sawSummary {
		t.Fatalf("no summary line in response:\n%s", body.String())
	}
	return cells, summary
}

// TestSweepStreamsCells: a 2×2 grid must stream four cell lines (every
// index exactly once) plus a done summary, all simulated on first
// contact.
func TestSweepStreamsCells(t *testing.T) {
	s := New(Options{})
	w := postSweep(t, s.Handler(), `{
		"graphs": ["line:8", "star:6"],
		"ps": [0.2, 0.5],
		"trials": 80,
		"seed": 7
	}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	cells, summary := decodeSweep(t, w.Body)
	if len(cells) != 4 || !summary.Done || summary.Cells != 4 {
		t.Fatalf("got %d cells, summary %+v", len(cells), summary)
	}
	seen := map[int]bool{}
	for _, c := range cells {
		if seen[c.Index] {
			t.Fatalf("index %d emitted twice", c.Index)
		}
		seen[c.Index] = true
		if c.Served != "simulated" || c.TrialsSimulated != c.Trials || c.Trials != 80 {
			t.Fatalf("first-contact cell not simulated in full: %+v", c)
		}
		if c.Key == "" || c.Graph == "" || c.Rounds <= 0 || c.N <= 0 {
			t.Fatalf("cell metadata incomplete: %+v", c)
		}
	}
	if summary.TrialsSimulated != 4*80 || summary.CacheHits != 0 {
		t.Fatalf("summary tallies off: %+v", summary)
	}
}

// TestSweepCellCacheReuse: repeating a sweep must answer every cell from
// the result cache with zero simulation, and a single-cell /v1/estimate
// for one of the swept scenarios must also hit the shared cache when it
// names the cell's derived seed.
func TestSweepCellCacheReuse(t *testing.T) {
	s := New(Options{})
	body := `{"graphs": ["line:8"], "ps": [0.2, 0.5], "trials": 60, "seed": 7}`
	first := postSweep(t, s.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("first sweep: %d", first.Code)
	}
	firstCells, _ := decodeSweep(t, first.Body)

	second := postSweep(t, s.Handler(), body)
	cells, summary := decodeSweep(t, second.Body)
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Served != "cache" || c.TrialsSimulated != 0 {
			t.Fatalf("repeat sweep cell not served from cache: %+v", c)
		}
	}
	if summary.CacheHits != 2 || summary.TrialsSimulated != 0 {
		t.Fatalf("repeat summary %+v", summary)
	}
	for i, c := range cells {
		var match *SweepCellResponse
		for j := range firstCells {
			if firstCells[j].Index == c.Index {
				match = &firstCells[j]
			}
		}
		if match == nil || match.Rate != c.Rate || match.Trials != c.Trials {
			t.Fatalf("cell %d: cached answer differs from original: %+v vs %+v", i, c, match)
		}
	}

	// A larger budget tops cells up instead of recomputing them.
	third := postSweep(t, s.Handler(), `{"graphs": ["line:8"], "ps": [0.2, 0.5], "trials": 100, "seed": 7}`)
	cells, summary = decodeSweep(t, third.Body)
	for _, c := range cells {
		if c.Served != "refined" || c.TrialsSimulated != 40 || c.Trials != 100 {
			t.Fatalf("top-up cell not refined by the marginal trials: %+v", c)
		}
	}
	if summary.Refined != 2 || summary.TrialsSimulated != 80 {
		t.Fatalf("top-up summary %+v", summary)
	}

	// The compiled sweep itself is cached by grid identity: the repeat of
	// the first body hit the sweep-plan LRU instead of recompiling, and
	// sweep compiles tick the plan counters like estimate traffic does.
	st := s.Stats()
	if st.PlanCacheHits < 1 {
		t.Fatalf("repeat sweep recompiled its grid: %+v", st)
	}
	if st.PlanCompiles < 2 {
		t.Fatalf("sweep compiles not counted: %+v", st)
	}
}

// TestSweepValidation: structural errors must come back as structured
// 400s before any simulation.
func TestSweepValidation(t *testing.T) {
	s := New(Options{MaxSweepCells: 8})
	cases := []struct {
		body string
		code string
	}{
		{`{`, "bad-json"},
		{`{"ps": [0.5]}`, "bad-request"},                                 // no graphs
		{`{"graphs": ["line:8"]}`, "bad-request"},                        // no ps
		{`{"graphs": ["nope:8"], "ps": [0.5]}`, "bad-request"},           // bad spec
		{`{"graphs": ["file:/etc/passwd"], "ps": [0.5]}`, "bad-request"}, // file spec
		{`{"graphs": ["line:8"], "ps": [1.5]}`, "bad-request"},           // p range
		{`{"graphs": ["line:8"], "ps": [0.5], "models": ["carrier"]}`, "bad-request"},
		{`{"graphs": ["line:8"], "ps": [0.5], "source": 12}`, "bad-request"},
		{`{"graphs": ["line:9000"], "ps": [0.5]}`, "graph-too-large"},
		{`{"graphs": ["line:8"], "ps": [0.1, 0.2, 0.3], "models": ["mp", "radio"],
		   "faults": ["omission", "malicious"]}`, "sweep-too-large"}, // 12 > 8 cells
		{`{"graphs": ["line:8"], "ps": [0.5], "models": ["radio"],
		   "algorithms": ["flooding"]}`, "bad-request"}, // compile-time mismatch
	}
	for i, tc := range cases {
		w := postSweep(t, s.Handler(), tc.body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d body %s", i, w.Code, w.Body.String())
		}
		var er ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if er.Code != tc.code {
			t.Fatalf("case %d: code %q, want %q (%s)", i, er.Code, tc.code, er.Error)
		}
	}
	if got := s.Stats().BadRequests; got != uint64(len(cases)) {
		t.Fatalf("bad request counter %d, want %d", got, len(cases))
	}
}

// TestSweepStatsAndScenarios: the new counters and limits must surface.
func TestSweepStatsAndScenarios(t *testing.T) {
	s := New(Options{})
	postSweep(t, s.Handler(), `{"graphs": ["line:8"], "ps": [0.3], "trials": 40}`)
	st := s.Stats()
	if st.SweepRequests != 1 || st.SweepCells != 1 {
		t.Fatalf("sweep counters missing: %+v", st)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/scenarios", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var info ScenarioInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Limits.MaxSweepCells != 1024 {
		t.Fatalf("scenarios limits missing sweep cap: %+v", info.Limits)
	}
}

package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"faultcast"
	"faultcast/internal/cluster"
)

func postShard(t *testing.T, url string, req cluster.ShardRequest) (int, cluster.ShardResponse, ErrorResponse) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/shard", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr cluster.ShardResponse
	var er ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&er)
	}
	return resp.StatusCode, sr, er
}

func shardRequest(t *testing.T, cfg faultcast.Config, baseSeed uint64, trials, batch int) cluster.ShardRequest {
	t.Helper()
	req, err := cluster.NewShardRequest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req.BaseSeed = baseSeed
	req.Trials = trials
	req.Batch = batch
	return req
}

var shardCfg = faultcast.Config{Graph: faultcast.Grid(5, 5), Message: []byte("1"), P: 0.5}

// TestShardEndpointTally: the endpoint must return exactly the tally the
// plan computes locally, and repeated shards of one scenario must hit the
// worker's plan cache after the first.
func TestShardEndpointTally(t *testing.T) {
	s, ts := testServer(t, Options{})
	plan, err := faultcast.Compile(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.TallyShard(1000, 96, 32, 0)

	status, sr, _ := postShard(t, ts.URL, shardRequest(t, shardCfg, 1000, 96, 32))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sr.Trials != 96 || sr.Batch != 32 || len(sr.Successes) != 3 {
		t.Fatalf("tally shape %+v", sr)
	}
	for i := range want.Successes {
		if sr.Successes[i] != want.Successes[i] {
			t.Fatalf("bucket %d = %d, want %d", i, sr.Successes[i], want.Successes[i])
		}
	}
	if sr.PlanSource != "compiled" {
		t.Fatalf("first shard plan source %q", sr.PlanSource)
	}
	// Second shard of the same scenario: plan cache hit.
	status, sr, _ = postShard(t, ts.URL, shardRequest(t, shardCfg, 1096, 96, 32))
	if status != http.StatusOK || sr.PlanSource != "cache" {
		t.Fatalf("second shard: status %d, plan source %q", status, sr.PlanSource)
	}
	st := s.Stats()
	if st.ShardRequests != 2 || st.ShardsExecuted != 2 || st.ShardTrials != 192 {
		t.Fatalf("shard counters: %+v", st)
	}
}

func TestShardEndpointValidation(t *testing.T) {
	_, ts := testServer(t, Options{MaxNodes: 16, MaxTrials: 1000})

	// Tampered scenario: plan-key mismatch is a 409.
	req := shardRequest(t, shardCfg, 1, 32, 32)
	req.P = 0.6
	if status, _, er := postShard(t, ts.URL, req); status != http.StatusConflict || er.Code != "plan-key-mismatch" {
		t.Fatalf("tampered shard: status %d, code %q", status, er.Code)
	}
	// Oversized graph for this worker.
	if status, _, er := postShard(t, ts.URL, shardRequest(t, shardCfg, 1, 32, 32)); status != http.StatusBadRequest || er.Code != "graph-too-large" {
		t.Fatalf("oversized graph: status %d, code %q", status, er.Code)
	}
	small := faultcast.Config{Graph: faultcast.Line(8), Message: []byte("1"), P: 0.5}
	// Over-budget shard.
	if status, _, er := postShard(t, ts.URL, shardRequest(t, small, 1, 5000, 32)); status != http.StatusBadRequest || er.Code != "bad-request" {
		t.Fatalf("oversized shard: status %d, code %q", status, er.Code)
	}
	// Batch larger than the shard.
	if status, _, _ := postShard(t, ts.URL, shardRequest(t, small, 1, 10, 32)); status != http.StatusBadRequest {
		t.Fatalf("bad batch accepted: status %d", status)
	}
	// Scenario the compiler rejects: flooding under the radio model.
	bad := faultcast.Config{Graph: faultcast.Line(8), Message: []byte("1"), P: 0.5, Model: faultcast.Radio, Algorithm: faultcast.Flooding}
	if status, _, _ := postShard(t, ts.URL, shardRequest(t, bad, 1, 32, 32)); status != http.StatusBadRequest {
		t.Fatalf("uncompilable shard accepted: status %d", status)
	}
}

// TestShardDrain pins the graceful-drain satellite: before BeginDrain
// shards execute; after it they are refused with 503/"draining" (and a
// Retry-After header) while an already-admitted shard runs to completion.
func TestShardDrain(t *testing.T) {
	s, ts := testServer(t, Options{MaxTrials: 1 << 20})
	if s.Draining() {
		t.Fatal("fresh server draining")
	}

	// A long shard admitted before the drain: it must complete with 200
	// even though the drain begins while it runs. (If the machine is fast
	// enough that it finishes first, the assertion still holds — the test
	// then only proves the post-drain 503.)
	done := make(chan int, 1)
	go func() {
		status, _, _ := postShard(t, ts.URL, shardRequest(t, shardCfg, 1, 5000, 5000))
		done <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.ShardInflight() == 0 && time.Now().Before(deadline) {
		select {
		case status := <-done:
			// Finished before we saw it in flight; fall through to drain.
			if status != http.StatusOK {
				t.Fatalf("pre-drain shard: status %d", status)
			}
			done <- status
		default:
			time.Sleep(time.Millisecond)
		}
		if len(done) > 0 {
			break
		}
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("BeginDrain did not stick")
	}
	status, _, er := postShard(t, ts.URL, shardRequest(t, shardCfg, 1, 32, 32))
	if status != http.StatusServiceUnavailable || er.Code != "draining" {
		t.Fatalf("post-drain shard: status %d, code %q", status, er.Code)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("in-flight shard was not allowed to finish: status %d", status)
	}
	if s.ShardInflight() != 0 {
		t.Fatalf("shard inflight %d after quiesce", s.ShardInflight())
	}
	st := s.Stats()
	if !st.Draining || st.ShardsDrained == 0 {
		t.Fatalf("drain not surfaced in stats: %+v", st)
	}

	// Estimates and sweeps keep working during a drain — only new shard
	// work is refused.
	er2 := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 50})
	if er2.Trials != 50 {
		t.Fatalf("estimate during drain: %+v", er2)
	}

	// /healthz reports the drain (still 200 — the process is healthy).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "draining" {
		t.Fatalf("healthz during drain: %d %q", resp.StatusCode, hz.Status)
	}
}

// TestCoordinatorModeServesClusterStats: a server wired to a coordinator
// surfaces the fleet in /v1/stats, and its estimates go through the
// cluster with answers identical to a plain server's.
func TestCoordinatorModeServesClusterStats(t *testing.T) {
	_, workerTS := testServer(t, Options{})
	coord := cluster.New([]string{workerTS.URL}, cluster.Options{ShardTrials: 64})
	_, coordTS := testServer(t, Options{Cluster: coord})
	_, plainTS := testServer(t, Options{})

	req := EstimateRequest{Graph: "grid:5x5", P: 0.5, Trials: 400}
	viaCluster := postEstimate(t, coordTS.URL, req)
	viaLocal := postEstimate(t, plainTS.URL, req)
	if viaCluster.Rate != viaLocal.Rate || viaCluster.Trials != viaLocal.Trials || viaCluster.Successes != viaLocal.Successes {
		t.Fatalf("coordinator-mode estimate %+v != plain %+v", viaCluster, viaLocal)
	}

	resp, err := http.Get(coordTS.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || len(st.Cluster.Workers) != 1 {
		t.Fatalf("cluster status missing from coordinator stats: %+v", st)
	}
	if st.Cluster.Workers[0].ShardsOK == 0 {
		t.Fatalf("worker executed no shards: %+v", st.Cluster)
	}
}

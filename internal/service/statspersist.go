package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"faultcast/internal/hist"
)

// Stats-snapshot persistence: the /v1/stats latency histograms live only
// in memory, so before this seam a warm restart silently zeroed them —
// and a bench window spanning the restart computed its "before" deltas
// against a fresh ledger, under-reporting everything the previous
// process had observed. With -store, faultcastd saves the histograms on
// drain and merges them back at startup, so server-observed latency
// counts are continuous across a warm restart exactly like the tally
// data is. Counters (requests, cache hits, ...) intentionally stay
// per-process: they describe this process's serving work, and the warm
// -restart CI job asserts trials_simulated == 0 on the NEW process —
// carrying the old count forward would hide exactly the regression that
// check exists to catch.

// statsSnapshotVersion guards the file schema; hist's own layout tag
// guards the bucket geometry inside it.
const statsSnapshotVersion = 1

// statsSnapshotFile is the on-disk form of the persisted histograms.
type statsSnapshotFile struct {
	Version int                      `json:"version"`
	Latency map[string]hist.Snapshot `json:"latency"`
}

// SaveStatsSnapshot writes the server's latency histograms to path,
// atomically (temp file + rename), for LoadStatsSnapshot to restore.
func (s *Server) SaveStatsSnapshot(path string) error {
	snap := statsSnapshotFile{
		Version: statsSnapshotVersion,
		Latency: map[string]hist.Snapshot{
			"estimate": s.lat.estimate.Snapshot(),
			"sweep":    s.lat.sweep.Snapshot(),
			"shard":    s.lat.shard.Snapshot(),
		},
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".stats-*.json")
	if err != nil {
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	return nil
}

// LoadStatsSnapshot merges a saved snapshot into the server's latency
// histograms. A missing file is a cold start, not an error; a corrupt or
// layout-mismatched one errors and restores nothing (all-or-nothing, so
// a half-restored ledger can't mislead a bench). Call before serving —
// it folds counts into live histograms without locking them against
// writers, which is safe but would interleave confusingly mid-traffic.
func (s *Server) LoadStatsSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	var snap statsSnapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("service: stats snapshot: %w", err)
	}
	if snap.Version != statsSnapshotVersion {
		return fmt.Errorf("service: stats snapshot version %d, want %d", snap.Version, statsSnapshotVersion)
	}
	for name, hs := range snap.Latency {
		switch name {
		case "estimate":
			s.lat.estimate.Merge(hs)
		case "sweep":
			s.lat.sweep.Merge(hs)
		case "shard":
			s.lat.shard.Merge(hs)
		}
	}
	return nil
}

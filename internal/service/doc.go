// Package service implements faultcastd's HTTP serving layer: a
// long-running JSON API that answers success-probability estimation
// queries over the compile-once plan pipeline (faultcast.Compile →
// Plan.Estimate) while amortizing its cost across many callers.
//
// Endpoints:
//
//	POST /v1/estimate   estimate the success probability of a scenario
//	POST /v1/sweep      run a declarative parameter grid; streams one
//	                    NDJSON line per cell in completion order, then a
//	                    summary line
//	POST /v1/shard      execute one shard of a cluster coordinator's trial
//	                    stream and return its per-batch success tally
//	GET  /v1/scenarios  the request vocabulary (graph grammar, models,
//	                    faults, algorithms, adversaries) and server limits
//	GET  /v1/stats      request/cache/admission counters, per-endpoint
//	                    latency histograms (plus the fleet snapshot in
//	                    coordinator mode)
//	GET  /healthz       liveness (reports "draining" during shutdown)
//
// Four mechanisms stand between a request and the engine, in order:
//
//  1. Canonical keying. Every request is lowered to a faultcast.Config and
//     keyed by Config.Fingerprint — a SHA-256 over the deterministic
//     serialization of its simulation semantics (graph structure, not
//     graph name; IEEE-754 bits, not decimal renderings; engine selectors
//     excluded because they are proven bit-identical). Semantically
//     identical requests therefore hash equal and share everything below.
//
//  2. Result cache with confidence-aware reuse. Estimates are cached per
//     key with a TTL. A cached estimate SATISFIES a request if its 95%
//     half-width is at most the requested one (or, with no half-width
//     requested, if it ran at least the requested trials); satisfied
//     requests are answered with zero simulation trials. A fresh-but-loose
//     entry is REFINED via Plan.EstimateFrom — topped up to the tighter
//     band for the marginal trials only — never recomputed from scratch.
//
//  3. Plan LRU + singleflight coalescing. Compiled plans are kept in an
//     LRU keyed by the same fingerprint, and concurrent identical requests
//     collapse onto one in-flight execution: N callers, one plan run, all
//     N get the answer. TestCoalescing drives 64 concurrent identical
//     requests through the race detector and asserts exactly one
//     execution.
//
//  4. Bounded admission. At most MaxInflight estimations run at once and
//     at most MaxQueue callers wait for a slot; beyond that the server
//     answers 429 with a Retry-After header instead of letting load grow
//     the engine's footprint without bound. A caller that disconnects
//     while waiting for a slot is not shed load: that path answers 499
//     without Retry-After and bumps its own counter.
//
// Counter semantics (the /v1/stats ledger; each outcome increments
// exactly one of the serving-path counters, so operators can alert on
// them without double counting):
//
//   - cache_hits: answers satisfied from the result cache, zero trials.
//   - coalesced: followers that shared a leader's SUCCESSFUL answer.
//   - coalesced_errors: followers that inherited a leader's error
//     instead — counted separately so coalesced remains a pure
//     amortization metric.
//   - executions / refines: leader runs, from scratch vs topped up.
//   - rejected: exactly the number of 429 responses sent — leaders
//     refused admission AND followers that shared a leader's 429.
//   - canceled: requests whose own client disconnected while queued
//     (the 499 path); never counted as rejected.
//
// The latency map carries one log-spaced histogram per endpoint
// (estimate/sweep/shard, internal/hist) summarized as count, mean, and
// p50/p90/p95/p99/max — measured handler-entry to handler-exit, the
// server-side clock faultcastctl bench cross-checks its client-side
// percentiles against.
//
// Sweeps compose with the same machinery at cell granularity: a sweep
// occupies one admission slot (its cells share one worker pool via the
// sweep scheduler), every cell is keyed individually in the result
// cache, cached cells answer with zero simulation, stale-but-close
// cells are topped up by the marginal trials, and each decided cell is
// written and flushed immediately so clients watch the grid fill in.
//
// The cluster layer rides the same plan cache: every server is a worker
// (POST /v1/shard rebuilds a wire scenario, verifies the coordinator's
// plan key, and tallies one seed range with no stopping rule — shards of
// one scenario compile at most once per worker), and a server built with
// Options.Cluster is a coordinator whose estimates and sweeps dispatch
// through the fleet with bit-identical results. BeginDrain supports
// graceful shutdown: new shard work is refused with 503/"draining" while
// in-flight work completes — see internal/cluster for the protocol.
//
// Invariants (enforced by the package tests): a cache hit or coalesced
// follower never runs a trial; an answer produced by refinement keeps the
// cached trials and executes only a continuation of the same seed
// sequence — for budget-only requests it is bit-identical to a
// from-scratch run of the combined budget; compiled plans are shared
// across seeds of a scenario (the seed keys results, not plans);
// requests are validated before any work is admitted
// (malformed specs and oversized graphs are rejected with structured
// errors, never compiled); and the handlers are safe under `go test
// -race` with arbitrary interleavings.
package service

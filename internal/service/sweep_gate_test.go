package service

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSweepOversizedRejectsFast: a grid over the cell cap must be
// rejected by arithmetic alone — before compiling 1198 plans.
func TestSweepOversizedRejectsFast(t *testing.T) {
	s := New(Options{})
	var ps []string
	for i := 1; i < 600; i++ {
		ps = append(ps, fmt.Sprintf("%.4f", float64(i)*0.001))
	}
	body := `{"graphs":["line:8"],"ps":[` + strings.Join(ps, ",") + `],"models":["mp","radio"],"trials":100}`
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body))
	w := httptest.NewRecorder()
	t0 := time.Now()
	s.Handler().ServeHTTP(w, req)
	if w.Code != 400 || !strings.Contains(w.Body.String(), "sweep-too-large") {
		t.Fatalf("status %d body %s", w.Code, w.Body.String())
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("oversized rejection took %v — compiled before gating?", d)
	}
}

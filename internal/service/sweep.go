package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"faultcast"
	"faultcast/internal/telemetry"
)

// sweepKey serializes a validated spec's identity for the compiled-sweep
// LRU: graph structural fingerprints plus sources, every axis value
// (floats by their IEEE-754 bits), the shared cell parameters, the
// master seed, and the full budget. Two requests with equal keys expand
// to identical cell grids with identical derived seeds, so their
// compiled SweepPlans — immutable and safe for concurrent use — are
// interchangeable.
func sweepKey(spec faultcast.SweepSpec) string {
	var b strings.Builder
	b.WriteString("sweep/v1")
	for _, g := range spec.Graphs {
		fp := g.Graph.Fingerprint()
		fmt.Fprintf(&b, "|g:%x:%d", fp[:], g.Source)
	}
	for _, m := range spec.Models {
		fmt.Fprintf(&b, "|m:%d", int(m))
	}
	for _, f := range spec.Faults {
		fmt.Fprintf(&b, "|f:%d", int(f))
	}
	for _, a := range spec.Adversaries {
		fmt.Fprintf(&b, "|a:%d", int(a))
	}
	for _, a := range spec.Algorithms {
		fmt.Fprintf(&b, "|al:%d", int(a))
	}
	for _, m := range spec.Messages {
		fmt.Fprintf(&b, "|msg:%q", m)
	}
	for _, wc := range spec.WindowCs {
		fmt.Fprintf(&b, "|wc:%016x", math.Float64bits(wc))
	}
	for _, p := range spec.Ps {
		fmt.Fprintf(&b, "|p:%016x", math.Float64bits(p))
	}
	fmt.Fprintf(&b, "|alpha:%016x|rounds:%d|seed:%d|budget:%d:%016x:%016x:%v:%v:%016x",
		math.Float64bits(spec.Alpha), spec.Rounds, spec.Seed,
		spec.Budget.Trials, math.Float64bits(spec.Budget.HalfWidth),
		math.Float64bits(spec.Budget.Target), spec.Budget.UseTarget,
		spec.Budget.AlmostSafe, math.Float64bits(spec.Budget.Z))
	return b.String()
}

// sweepPlan returns the compiled sweep for the spec, reusing a recent
// identical compilation — the plan-LRU sharing /v1/estimate enjoys, at
// sweep granularity. Hits and compiles tick the same plan-cache
// counters (a sweep compile counts once per distinct cell plan).
// psp is the caller's "plan" span (nil-safe), tagged and timed exactly
// like the estimate path's.
func (s *Server) sweepPlan(psp *telemetry.Span, spec faultcast.SweepSpec) (*faultcast.SweepPlan, error) {
	key := sweepKey(spec)
	s.mu.Lock()
	if sp, ok := s.sweeps.get(key); ok {
		s.mu.Unlock()
		s.c.planCacheHits.Add(1)
		psp.SetAttr("source", "cache")
		return sp, nil
	}
	s.mu.Unlock()
	csp := psp.StartChild("compile")
	sp, err := faultcast.CompileSweep(spec)
	csp.End()
	if err != nil {
		return nil, err
	}
	s.c.planCompiles.Add(uint64(sp.PlanCount()))
	psp.SetAttr("source", "compiled")
	psp.SetAttr("distinct_plans", sp.PlanCount())
	s.mu.Lock()
	s.sweeps.put(key, sp)
	s.mu.Unlock()
	return sp, nil
}

// SweepRequest is the body of POST /v1/sweep: the declarative axes of a
// faultcast.SweepSpec plus the per-cell budget. Graphs and Ps are
// required; every other axis defaults to a single element exactly as in
// the library (mp, omission, worst, auto, message "1", derived window).
// The response is NDJSON: one SweepCellResponse line per cell, streamed
// in completion order as the shared worker pool decides each cell, then
// one SweepSummary line.
type SweepRequest struct {
	// Graphs lists graph specs in faultcast.ParseGraph grammar; file:
	// specs are rejected. Source applies to every graph (default 0).
	Graphs []string `json:"graphs"`
	Source int      `json:"source,omitempty"`
	// Ps is the failure-probability axis, each value in [0, 1).
	Ps []float64 `json:"ps"`
	// Axis vocabularies match the /v1/estimate fields of the same names.
	Models      []string `json:"models,omitempty"`
	Faults      []string `json:"faults,omitempty"`
	Adversaries []string `json:"adversaries,omitempty"`
	Algorithms  []string `json:"algorithms,omitempty"`
	// WindowCs is the window-constant axis (0 = derive from p).
	WindowCs []float64 `json:"window_cs,omitempty"`
	// Messages is the source-message axis (default ["1"]).
	Messages []string `json:"messages,omitempty"`
	// Alpha and Rounds apply to every cell, as in /v1/estimate.
	Alpha  float64 `json:"alpha,omitempty"`
	Rounds int     `json:"rounds,omitempty"`
	// Seed is the sweep master seed (default 1); every cell derives its
	// own trial-stream seed from it, so the whole grid is reproducible
	// and each cell is individually cacheable.
	Seed uint64 `json:"seed,omitempty"`
	// Trials is the per-cell budget (default Options.DefaultTrials,
	// capped at Options.MaxTrials); HalfWidth the per-cell precision stop.
	Trials    int     `json:"trials,omitempty"`
	HalfWidth float64 `json:"half_width,omitempty"`
	// AlmostSafeStop stops each cell early once its interval is decided
	// against the cell's almost-safety bound 1 − 1/n — the feasibility-
	// sweep mode, where off-frontier cells cost a few batches each.
	AlmostSafeStop bool `json:"almost_safe_stop,omitempty"`
	// Target, when non-null, stops against this explicit success target
	// instead (AlmostSafeStop wins if both are set).
	Target *float64 `json:"target,omitempty"`
}

// SweepCellResponse is one NDJSON line of a sweep response.
type SweepCellResponse struct {
	// Index is the cell's position in axis cross-product order (graphs
	// outermost, then models, faults, adversaries, algorithms, messages,
	// window_cs, ps innermost); lines stream in completion order, so use
	// Index to reassemble the grid.
	Index int `json:"index"`
	// Key is the cell's canonical cache key (Config.Fingerprint).
	Key string `json:"key"`
	// The cell's axis coordinates.
	Graph     string  `json:"graph"`
	Source    int     `json:"source"`
	Model     string  `json:"model"`
	Fault     string  `json:"fault"`
	Adversary string  `json:"adversary,omitempty"`
	Algorithm string  `json:"algorithm"`
	Message   string  `json:"message"`
	WindowC   float64 `json:"window_c,omitempty"`
	P         float64 `json:"p"`
	// The estimate, as in EstimateResponse.
	Rate             float64 `json:"rate"`
	Low              float64 `json:"low"`
	High             float64 `json:"high"`
	Trials           int     `json:"trials"`
	Successes        int     `json:"successes"`
	AlmostSafeTarget float64 `json:"almost_safe_target"`
	AlmostSafe       bool    `json:"almost_safe"`
	Rounds           int     `json:"rounds"`
	N                int     `json:"n"`
	// Served: "simulated" (fresh), "refined" (cached estimate topped up
	// by the marginal trials), or "cache" (cached estimate already
	// satisfied the budget — zero trials simulated).
	Served          string `json:"served"`
	TrialsSimulated int    `json:"trials_simulated"`
}

// SweepSummary is the final NDJSON line of a sweep response.
type SweepSummary struct {
	Done            bool   `json:"done"`
	Cells           int    `json:"cells"`
	DistinctPlans   int    `json:"distinct_plans"`
	TrialsSimulated int    `json:"trials_simulated"`
	CacheHits       int    `json:"cache_hits"`
	Refined         int    `json:"refined"`
	Error           string `json:"error,omitempty"`
	// TraceID names the sweep's trace (GET /v1/trace/{id}); omitted when
	// tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// spec validates the request against the server limits and lowers it to a
// SweepSpec. Axis parsing reuses the estimate vocabulary; structural
// errors (unknown enum, oversized graph, out-of-range p) are reported
// before any cell compiles.
func (req *SweepRequest) spec(opts Options) (faultcast.SweepSpec, error) {
	if len(req.Graphs) == 0 {
		return faultcast.SweepSpec{}, badField("graphs", "at least one graph spec is required")
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	spec := faultcast.SweepSpec{
		Alpha:  req.Alpha,
		Rounds: req.Rounds,
		Seed:   seed,
	}
	for _, gs := range req.Graphs {
		if len(gs) > 256 {
			return faultcast.SweepSpec{}, badField("graphs", "graph spec longer than 256 bytes")
		}
		if hasFilePrefix(gs) {
			return faultcast.SweepSpec{}, badField("graphs", "file: graph specs are not served")
		}
		g, err := faultcast.ParseGraph(gs, seed)
		if err != nil {
			return faultcast.SweepSpec{}, badField("graphs", "%v", err)
		}
		if g.N() > opts.MaxNodes {
			return faultcast.SweepSpec{}, &requestError{
				code: "graph-too-large", field: "graphs",
				msg: fmt.Sprintf("graph %q has %d vertices; this server serves at most %d", gs, g.N(), opts.MaxNodes),
			}
		}
		if req.Source < 0 || req.Source >= g.N() {
			return faultcast.SweepSpec{}, badField("source", "source %d out of range [0, %d) on %q", req.Source, g.N(), gs)
		}
		spec.Graphs = append(spec.Graphs, faultcast.SweepGraph{Spec: gs, Graph: g, Source: req.Source})
	}
	if len(req.Ps) == 0 {
		return faultcast.SweepSpec{}, badField("ps", "at least one p is required")
	}
	for _, p := range req.Ps {
		if p < 0 || p >= 1 {
			return faultcast.SweepSpec{}, badField("ps", "p=%v outside [0, 1)", p)
		}
	}
	spec.Ps = req.Ps
	for _, s := range req.Models {
		m, err := faultcast.ParseModel(s)
		if err != nil {
			return faultcast.SweepSpec{}, badField("models", "%v", err)
		}
		spec.Models = append(spec.Models, m)
	}
	for _, s := range req.Faults {
		f, err := faultcast.ParseFault(s)
		if err != nil {
			return faultcast.SweepSpec{}, badField("faults", "%v", err)
		}
		spec.Faults = append(spec.Faults, f)
	}
	for _, s := range req.Adversaries {
		a, err := faultcast.ParseAdversary(s)
		if err != nil {
			return faultcast.SweepSpec{}, badField("adversaries", "%v", err)
		}
		spec.Adversaries = append(spec.Adversaries, a)
	}
	for _, s := range req.Algorithms {
		a, err := faultcast.ParseAlgorithm(s)
		if err != nil {
			return faultcast.SweepSpec{}, badField("algorithms", "%v", err)
		}
		spec.Algorithms = append(spec.Algorithms, a)
	}
	for _, wc := range req.WindowCs {
		if wc < 0 {
			return faultcast.SweepSpec{}, badField("window_cs", "negative window constant %v", wc)
		}
	}
	spec.WindowCs = req.WindowCs
	for _, m := range req.Messages {
		if m == "" {
			return faultcast.SweepSpec{}, badField("messages", "empty message")
		}
	}
	spec.Messages = req.Messages
	if req.Trials < 0 {
		return faultcast.SweepSpec{}, badField("trials", "negative trial count %d", req.Trials)
	}
	if req.HalfWidth < 0 || req.HalfWidth > 0.5 {
		return faultcast.SweepSpec{}, badField("half_width", "half_width=%v outside [0, 0.5]", req.HalfWidth)
	}
	if req.Rounds < 0 {
		return faultcast.SweepSpec{}, badField("rounds", "negative round override %d", req.Rounds)
	}
	trials := req.Trials
	if trials == 0 {
		trials = opts.DefaultTrials
	}
	if trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	spec.Budget = faultcast.CellBudget{
		Trials:     trials,
		HalfWidth:  req.HalfWidth,
		AlmostSafe: req.AlmostSafeStop,
	}
	if req.Target != nil && !req.AlmostSafeStop {
		if *req.Target < 0 || *req.Target > 1 {
			return faultcast.SweepSpec{}, badField("target", "target=%v outside [0, 1]", *req.Target)
		}
		spec.Budget.Target = *req.Target
		spec.Budget.UseTarget = true
	}
	return spec, nil
}

// handleSweep streams a sweep as NDJSON. The whole sweep occupies one
// admission slot (it is one schedule on one worker pool, however many
// cells it has); each cell reuses the server's result cache by its own
// key — cached cells answer with zero simulation, stale-but-close ones
// are topped up — and every decided cell is written and flushed
// immediately, so clients see the grid fill in as it computes.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.c.sweepCalls.Add(1)
	start := time.Now()
	defer func() { s.lat.sweep.Observe(time.Since(start)) }()
	tr := s.tel.StartTrace("sweep")
	defer tr.Finish()
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-json", TraceID: tr.ID()})
		return
	}
	spec, err := req.spec(s.opts)
	if err != nil {
		s.c.badRequests.Add(1)
		re := err.(*requestError)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: re.msg, Code: re.code, Field: re.field, TraceID: tr.ID()})
		return
	}
	// The size gate is arithmetic (axis-length product), so an oversized
	// grid is rejected before any cell compiles; compilation itself then
	// happens inside the admission slot, bounded like any execution.
	if n := spec.CellCount(); n > s.opts.MaxSweepCells {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:   fmt.Sprintf("sweep expands to %d cells; this server serves at most %d", n, s.opts.MaxSweepCells),
			Code:    "sweep-too-large",
			TraceID: tr.ID(),
		})
		return
	}
	adm := tr.StartSpan("admission")
	verdict := s.acquire(r.Context())
	adm.End()
	switch verdict {
	case admitted:
		adm.SetAttr("outcome", "admitted")
	case admitFull:
		adm.SetAttr("outcome", "rejected")
		s.c.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:             "estimation capacity exhausted; retry shortly",
			Code:              "overloaded",
			RetryAfterSeconds: 1,
			TraceID:           tr.ID(),
		})
		return
	case admitCanceled:
		// The client hung up while queued. Not overload: no rejected
		// bump, no Retry-After — nobody is listening for one anyway.
		adm.SetAttr("outcome", "canceled")
		s.c.canceled.Add(1)
		writeJSON(w, statusClientClosedRequest, ErrorResponse{
			Error:   "request canceled by the client while queued",
			Code:    "canceled",
			TraceID: tr.ID(),
		})
		return
	}
	defer s.release()

	psp := tr.StartSpan("plan")
	sp, err := s.sweepPlan(psp, spec)
	psp.End()
	if err != nil {
		// Compile rejects scenario mismatches validation cannot see
		// (e.g. flooding requested under the radio model).
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-request", TraceID: tr.ID()})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	summary := SweepSummary{Cells: len(sp.Cells()), DistinctPlans: sp.PlanCount(), TraceID: tr.ID()}

	var opts []faultcast.SweepOption
	xsp := tr.StartSpan("execute")
	var agg batchAgg
	if xsp != nil {
		// The span hangs store-replay and per-shard children under the
		// sweep's execution; the probe attributes engine time vs scheduler
		// overhead per decided batch. Both purely observational.
		opts = append(opts, faultcast.WithSweepSpan(xsp), faultcast.WithSweepProbe(agg.observe))
	}
	if s.opts.Store != nil {
		// Store mode: every cell resumes from the durable store's replay
		// instead of the in-memory cache, so a restarted daemon re-runs
		// the sweep bit-identically with zero trials — and repeat sweeps
		// answer budget-exact rather than echoing whatever larger
		// estimate the cache happens to hold.
		opts = append(opts, faultcast.WithSweepTallyStore(s.opts.Store))
	} else {
		opts = append(opts, faultcast.WithCellPrev(func(c *faultcast.SweepCell) (faultcast.Estimate, bool) {
			return s.cachedAny(c.Key)
		}))
	}
	if s.opts.Workers > 0 {
		opts = append(opts, faultcast.WithSweepWorkers(s.opts.Workers))
	}
	if s.opts.Cluster != nil {
		opts = append(opts, faultcast.WithSweepDispatcher(s.opts.Cluster))
	}
	// Emit calls are serialized by the sweep runner, so the encoder and
	// summary tallies need no extra locking.
	runErr := sp.Run(r.Context(), func(res faultcast.CellResult) {
		simulated := res.Estimate.Trials - res.Resumed
		served := "simulated"
		switch {
		case simulated == 0:
			served = "cache"
			s.c.sweepCellCacheHits.Add(1)
			summary.CacheHits++
		case res.Resumed > 0:
			served = "refined"
			s.c.refines.Add(1)
			summary.Refined++
		}
		if s.opts.Store != nil && res.Resumed > 0 {
			if simulated == 0 {
				s.c.storeHits.Add(1)
			} else {
				s.c.storeRefines.Add(1)
			}
		}
		if simulated > 0 {
			s.c.trialsSimulated.Add(uint64(simulated))
			summary.TrialsSimulated += simulated
			s.c.countCore(res.Cell.Plan().EstimationCore())
		}
		s.c.sweepCells.Add(1)
		s.storeResult(res.Cell.Key, res.Estimate, res.Cell.Rounds(), res.Cell.Plan().EstimationCore())
		cfg := res.Cell.Config
		n := cfg.Graph.N()
		_ = enc.Encode(SweepCellResponse{
			Index:            res.Index,
			Key:              res.Cell.Key,
			Graph:            res.Cell.Graph.Spec,
			Source:           cfg.Source,
			Model:            cfg.Model.String(),
			Fault:            cfg.Fault.String(),
			Adversary:        cfg.Adversary.String(),
			Algorithm:        cfg.Algorithm.String(),
			Message:          string(cfg.Message),
			WindowC:          cfg.WindowC,
			P:                cfg.P,
			Rate:             res.Estimate.Rate,
			Low:              res.Estimate.Low,
			High:             res.Estimate.Hi,
			Trials:           res.Estimate.Trials,
			Successes:        res.Estimate.Succeeds,
			AlmostSafeTarget: 1 - 1/float64(n),
			AlmostSafe:       res.Estimate.AlmostSafe(n),
			Rounds:           res.Cell.Rounds(),
			N:                n,
			Served:           served,
			TrialsSimulated:  simulated,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}, opts...)
	agg.annotate(xsp)
	xsp.End()
	tr.Root().SetAttr("cells", len(sp.Cells()))
	tr.Root().SetAttr("trials_simulated", summary.TrialsSimulated)
	tr.Root().SetAttr("cache_hits", summary.CacheHits)
	summary.Done = runErr == nil
	if runErr != nil {
		summary.Error = runErr.Error()
	}
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

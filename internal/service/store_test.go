package service

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"faultcast"
	"faultcast/internal/store"
)

// sameBits strips the serving annotations and compares everything that
// must be bit-identical across cold, warm, refined, and coalesced
// answers: the estimate itself and the plan metadata.
func sameBits(t *testing.T, label string, got, want EstimateResponse) {
	t.Helper()
	got.Served, want.Served = "", ""
	got.TrialsSimulated, want.TrialsSimulated = 0, 0
	got.TraceID, want.TraceID = "", ""
	if got != want {
		t.Fatalf("%s: answers differ:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestWarmRestartServesFromStore is the tentpole contract at the service
// layer: a fresh process over the same store directory must answer a
// previously-served estimate with zero trials, bit-identical — the
// restart is invisible except to the latency of the disk read.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	req := EstimateRequest{Graph: "grid:5x5", P: 0.4, Trials: 256, Seed: 11}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := testServer(t, Options{Store: st1})
	cold := postEstimate(t, ts1.URL, req)
	if cold.Served != "simulated" || cold.TrialsSimulated != cold.Trials {
		t.Fatalf("cold serve: %+v", cold)
	}
	// Same process, same request again: the result cache answers.
	repeat := postEstimate(t, ts1.URL, req)
	if repeat.Served != "cache" || repeat.TrialsSimulated != 0 {
		t.Fatalf("in-process repeat: %+v", repeat)
	}
	sameBits(t, "in-process repeat", repeat, cold)
	if stats := s1.Stats(); stats.Store == nil || stats.Store.Appends == 0 {
		t.Fatalf("store not written through: %+v", stats.Store)
	}

	// The "restart": a new Server over a new Store handle on the same
	// directory, with stone-cold in-memory caches.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := testServer(t, Options{Store: st2})
	warm := postEstimate(t, ts2.URL, req)
	if warm.Served != "cache" || warm.TrialsSimulated != 0 {
		t.Fatalf("warm restart simulated trials: %+v", warm)
	}
	sameBits(t, "warm restart", warm, cold)
	stats := s2.Stats()
	if stats.StoreHits != 1 || stats.TrialsSimulated != 0 {
		t.Fatalf("warm stats: store_hits=%d trials_simulated=%d", stats.StoreHits, stats.TrialsSimulated)
	}

	// A bigger budget against the restarted server refines: it resumes
	// all stored trials and simulates only the margin.
	bigger := req
	bigger.Trials = 512
	refined := postEstimate(t, ts2.URL, bigger)
	if refined.Served != "refined" {
		t.Fatalf("refinement served as %q: %+v", refined.Served, refined)
	}
	if refined.TrialsSimulated != refined.Trials-cold.Trials {
		t.Fatalf("refinement simulated %d, want %d", refined.TrialsSimulated, refined.Trials-cold.Trials)
	}
	if s2.Stats().StoreRefines != 1 {
		t.Fatalf("store_refines = %d, want 1", s2.Stats().StoreRefines)
	}
	// And the refined answer must be what a cold server computes for the
	// bigger budget outright.
	st3, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts3 := testServer(t, Options{Store: st3})
	coldBig := postEstimate(t, ts3.URL, bigger)
	sameBits(t, "refined vs cold", refined, coldBig)
}

// TestStoreRefinementCoalesces pins the concurrency contract of the
// store path (run under -race): two identical requests refining the same
// stored prefix trigger exactly one execution — one leader resumes the
// store and simulates the margin, the rider coalesces onto its answer.
// Deterministic in the style of the admission tests: the single
// execution slot is held until both requests are parked.
func TestStoreRefinementCoalesces(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Options{Store: st, MaxInflight: 1, MaxQueue: 2})

	prime := EstimateRequest{Graph: "line:12", P: 0.3, Trials: 64, Seed: 5}
	cold := postEstimate(t, ts.URL, prime)
	if cold.Served != "simulated" {
		t.Fatalf("prime: %+v", cold)
	}

	s.slots <- struct{}{} // hold the only execution slot
	refine := prime
	refine.Trials = 192
	cfg, trials, err := refine.config(s.opts)
	if err != nil {
		t.Fatal(err)
	}
	fk := estimateFlightKey(cfg.Fingerprint(), trials, refine.HalfWidth)
	responses := make(chan EstimateResponse, 2)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		responses <- postEstimate(t, ts.URL, refine)
	}
	// The leader registers the flight, then queues for the slot; only
	// once it is confirmed queued does the twin start, and only once the
	// riders gauge confirms the twin is parked on the flight is the slot
	// released — the twin can neither miss the flight window nor find
	// the leader's answer already cached.
	wg.Add(1)
	go post()
	waitFor(t, "leader parked in the queue", func() bool { return s.waiting.Load() == 1 })
	wg.Add(1)
	go post()
	waitFor(t, "twin riding the flight", func() bool {
		n, ok := s.flight.ridersOf(fk)
		return ok && n == 1
	})
	<-s.slots
	wg.Wait()
	close(responses)

	var got []EstimateResponse
	byServed := map[string]int{}
	for r := range responses {
		got = append(got, r)
		byServed[r.Served]++
	}
	if byServed["refined"] != 1 || byServed["coalesced"] != 1 {
		t.Fatalf("served split %v, want one refined + one coalesced", byServed)
	}
	sameBits(t, "coalesced vs leader", got[0], got[1])
	stats := s.Stats()
	if stats.Executions != 2 {
		t.Fatalf("executions = %d, want 2 (prime + one leader)", stats.Executions)
	}
	if stats.StoreRefines != 1 || stats.Coalesced != 1 {
		t.Fatalf("store_refines=%d coalesced=%d, want 1 and 1", stats.StoreRefines, stats.Coalesced)
	}
	for _, r := range got {
		if r.Served == "refined" && r.TrialsSimulated != r.Trials-cold.Trials {
			t.Fatalf("leader simulated %d, want %d", r.TrialsSimulated, r.Trials-cold.Trials)
		}
	}
}

// TestStatsSnapshotRoundTrip is the regression test for the warm-restart
// stats hole: latency histograms lived only in memory, so a restart
// zeroed them and polluted any bench window spanning it. Saved snapshots
// must restore counts and quantiles into a fresh server exactly.
func TestStatsSnapshotRoundTrip(t *testing.T) {
	s1, ts1 := testServer(t, Options{})
	for i := 0; i < 5; i++ {
		postEstimate(t, ts1.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64, Seed: uint64(i)})
	}
	before := s1.Stats().Latency["estimate"]
	if before.Count != 5 {
		t.Fatalf("observed %d estimate latencies, want 5", before.Count)
	}

	path := filepath.Join(t.TempDir(), "stats.json")
	if err := s1.SaveStatsSnapshot(path); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := testServer(t, Options{})
	if err := s2.LoadStatsSnapshot(path); err != nil {
		t.Fatal(err)
	}
	after := s2.Stats().Latency["estimate"]
	if after != before {
		t.Fatalf("restored summary %+v != saved %+v", after, before)
	}

	// The restored ledger keeps counting: one more request, count 6.
	postEstimate(t, ts2.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64, Seed: 99})
	if c := s2.Stats().Latency["estimate"].Count; c != 6 {
		t.Fatalf("count after restore+serve = %d, want 6", c)
	}

	// Missing file: a cold start, not an error. Corrupt file: an error,
	// and nothing restored.
	s3, _ := testServer(t, Options{})
	if err := s3.LoadStatsSnapshot(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing snapshot errored: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s3.LoadStatsSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot loaded silently")
	}
	if c := s3.Stats().Latency["estimate"].Count; c != 0 {
		t.Fatalf("corrupt snapshot half-restored: count %d", c)
	}
}

// TestStoreModeSkipsMemoryPrev: in store mode the refinement prev must
// come from the store replay, never from the in-memory result cache —
// otherwise a restarted process could not reproduce this one's answers.
// Pinned by poisoning the result cache under the request's key: the
// store-backed execution must ignore the poisoned estimate and land on
// the cold bits anyway.
func TestStoreModeSkipsMemoryPrev(t *testing.T) {
	req := EstimateRequest{Graph: "line:10", P: 0.25, Trials: 96, Seed: 3}

	// The cold answer, from a throwaway store-backed server.
	st0, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts0 := testServer(t, Options{Store: st0})
	cold := postEstimate(t, ts0.URL, req)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Options{Store: st})
	cfg, _, err := req.config(s.opts)
	if err != nil {
		t.Fatal(err)
	}
	// A poisoned 64-trial estimate under the real key: too small for the
	// cachedSatisfying fast path, so only a regression to cachedAny
	// resume could pick it up — and its absurd success count would show.
	s.storeResult(cfg.Fingerprint(), faultcast.Estimate{Rate: 1, Low: 1, Hi: 1, Trials: 64, Succeeds: 64}, 1, "bitset")
	got := postEstimate(t, ts.URL, req)
	if got.Served != "simulated" || got.TrialsSimulated != got.Trials {
		t.Fatalf("store-mode execution resumed the in-memory cache: %+v", got)
	}
	sameBits(t, "poisoned-cache", got, cold)
}

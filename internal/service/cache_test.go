package service

import (
	"fmt"
	"testing"
	"time"

	"faultcast"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived past capacity")
	}
	if v, ok := c.get("b"); !ok || v != 2 {
		t.Fatalf("b = %d,%v", v, ok)
	}
	// b is now most recently used; inserting d evicts c, not b.
	c.put("d", 4)
	if _, ok := c.get("c"); ok {
		t.Fatal("c survived although b was touched more recently")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b evicted out of LRU order")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	// Replacement updates in place without growing.
	c.put("b", 20)
	if v, _ := c.get("b"); v != 20 || c.len() != 2 {
		t.Fatalf("replace: b=%d len=%d", v, c.len())
	}
	c.remove("b")
	if _, ok := c.get("b"); ok || c.len() != 1 {
		t.Fatal("remove failed")
	}
}

// TestPlanCacheEviction: the server's plan LRU must stay bounded and
// recompile evicted plans on demand.
func TestPlanCacheEviction(t *testing.T) {
	s, ts := testServer(t, Options{PlanCacheSize: 2})
	for i := 0; i < 4; i++ {
		postEstimate(t, ts.URL, EstimateRequest{Graph: fmt.Sprintf("line:%d", 8+i), P: 0.2, Trials: 64})
	}
	st := s.Stats()
	if st.PlanCacheEntries != 2 {
		t.Fatalf("plan cache holds %d entries, want 2", st.PlanCacheEntries)
	}
	if st.PlanCompiles != 4 {
		t.Fatalf("compiled %d plans, want 4", st.PlanCompiles)
	}
	// line:8 was evicted; result cache still answers it with zero work,
	// so tighten the requirement to force a plan lookup and recompile.
	postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 128})
	st = s.Stats()
	if st.PlanCompiles != 5 {
		t.Fatalf("evicted plan not recompiled: %+v", st)
	}
}

// TestPlanSharedAcrossSeeds: the plan cache must not split on the seed —
// a seed ensemble over one scenario compiles exactly once, while the
// result cache keeps the per-seed answers distinct.
func TestPlanSharedAcrossSeeds(t *testing.T) {
	s, ts := testServer(t, Options{})
	for seed := uint64(1); seed <= 4; seed++ {
		er := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:12", P: 0.3, Trials: 128, Seed: seed})
		if er.Served != "simulated" {
			t.Fatalf("seed %d not simulated: %+v", seed, er)
		}
	}
	st := s.Stats()
	if st.PlanCompiles != 1 {
		t.Fatalf("%d plan compiles for a 4-seed ensemble, want 1", st.PlanCompiles)
	}
	if st.Executions != 4 || st.CacheHits != 0 {
		t.Fatalf("per-seed results not kept distinct: %+v", st)
	}
}

// TestStoreResultKeepsLargerEstimate: a concurrent small-budget leader
// must not clobber a larger already-cached estimate for the same key —
// results are prefixes of one seed sequence, the bigger one subsumes.
func TestStoreResultKeepsLargerEstimate(t *testing.T) {
	s := New(Options{})
	big := faultcast.Estimate{Rate: 1, Low: 0.99, Hi: 1, Trials: 10000, Succeeds: 10000}
	small := faultcast.Estimate{Rate: 1, Low: 0.9, Hi: 1, Trials: 100, Succeeds: 100}
	s.storeResult("k", big, 7, "bitset")
	s.storeResult("k", small, 7, "bitset")
	if got, ok := s.cachedAny("k"); !ok || got.Trials != big.Trials {
		t.Fatalf("large estimate clobbered: %+v ok=%v", got, ok)
	}
	// The other direction must still upgrade.
	s.storeResult("k2", small, 7, "bitset")
	s.storeResult("k2", big, 7, "bitset")
	if got, ok := s.cachedAny("k2"); !ok || got.Trials != big.Trials {
		t.Fatalf("upgrade lost: %+v ok=%v", got, ok)
	}
}

func TestResultEntrySatisfies(t *testing.T) {
	e := resultEntry{est: faultcast.Estimate{Rate: 0.9, Low: 0.85, Hi: 0.95, Trials: 500, Succeeds: 450}, expires: time.Now()}
	if !e.satisfies(500, 0) || !e.satisfies(200, 0) {
		t.Fatal("trial-count requirement not satisfied by equal/larger cached run")
	}
	if e.satisfies(501, 0) {
		t.Fatal("trial-count requirement satisfied by smaller cached run")
	}
	if !e.satisfies(10_000, 0.05) {
		t.Fatal("half-width 0.05 not satisfied by cached half-width 0.05")
	}
	if e.satisfies(10_000, 0.04) {
		t.Fatal("half-width 0.04 satisfied by looser cached interval")
	}
	// An exhausted budget satisfies even when the half-width is missed:
	// a re-execution capped at 400 trials could not improve the answer.
	if !e.satisfies(400, 0.04) {
		t.Fatal("exhausted budget with missed half-width should be served from cache")
	}
}

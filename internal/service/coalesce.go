package service

import (
	"sync"
	"sync/atomic"
)

// outcome is the shared result of one coalesced estimate execution: either
// a success response or a structured error with its HTTP status. traceID
// names the LEADER's trace, so riders can point their own (empty) traces
// at the one that did the work.
type outcome struct {
	resp    EstimateResponse
	status  int
	errResp ErrorResponse
	traceID string
}

// flightGroup is a minimal singleflight: concurrent do calls with the same
// key share one execution of fn. The key is the canonical config
// fingerprint plus the confidence requirement, so "identical request"
// means identical computation, not just identical scenario.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	// riders counts followers currently parked on done — observability
	// for the deterministic admission tests, which must know the whole
	// barrage has coalesced before releasing the leader.
	riders atomic.Int64
	out    outcome
}

// do runs fn under key, or waits for the in-flight run of fn under the
// same key and returns its outcome. shared reports whether this caller
// rode another's execution. Followers wait for the leader unconditionally:
// the leader's execution is already admission-bounded, so there is nothing
// to cancel that would save work.
func (g *flightGroup) do(key string, fn func() outcome) (out outcome, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.riders.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.out, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// Cleanup must run even if fn panics (net/http recovers handler
	// panics and keeps serving): otherwise the key would be wedged and
	// every future caller would block on done forever. A panicking
	// leader leaves a zero outcome; turn it into a structured 500 for
	// the followers before releasing them, then let the panic propagate.
	defer func() {
		if c.out.status == 0 {
			c.out = outcome{status: 500, errResp: ErrorResponse{
				Error: "internal error during estimation", Code: "internal",
			}}
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.out = fn()
	return c.out, false
}

// riders reports how many followers are parked on the in-flight call for
// key (0, false when nothing is in flight). Test observability only.
func (g *flightGroup) ridersOf(key string) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.m[key]
	if !ok {
		return 0, false
	}
	return c.riders.Load(), true
}

package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"strings"
	"testing"

	"faultcast/internal/cluster"
	"faultcast/internal/store"
	"faultcast/internal/telemetry"
)

var updateMetricsGolden = flag.Bool("update-metrics", false, "rewrite the metrics_names.txt family ledger")

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Error bodies are structured too (ErrorResponse) — decode whatever
	// came back and let the caller assert on it.
	_ = json.NewDecoder(resp.Body).Decode(into)
	return resp.StatusCode
}

func spanByName(sp *telemetry.Span, name string) *telemetry.Span {
	if sp == nil {
		return nil
	}
	for _, c := range sp.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func attrValue(sp *telemetry.Span, key string) (string, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TestEstimateTraceTree pins the span lifecycle of one estimate:
// admission → plan (with compile child on a miss) → execute, with the
// serving attributes the operator reads off a slow trace, and the
// trace_id echoed on the response resolving to that tree.
func TestEstimateTraceTree(t *testing.T) {
	s, ts := testServer(t, Options{})
	resp := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.3, Trials: 128, Seed: 4})
	if resp.TraceID == "" {
		t.Fatal("no trace_id on response")
	}
	tr, ok := s.Traces().Get(resp.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", resp.TraceID)
	}
	root := tr.Root()
	if root.Name != "estimate" {
		t.Fatalf("root span %q", root.Name)
	}
	if v, ok := attrValue(root, "served"); !ok || v != "simulated" {
		t.Fatalf("served attr: %q %v (attrs %+v)", v, ok, root.Attrs)
	}
	adm := spanByName(root, "admission")
	if adm == nil {
		t.Fatalf("no admission span: %+v", root.Children)
	}
	if v, _ := attrValue(adm, "outcome"); v != "admitted" {
		t.Fatalf("admission outcome %q", v)
	}
	plan := spanByName(root, "plan")
	if plan == nil || spanByName(plan, "compile") == nil {
		t.Fatalf("cold request missing plan/compile spans: %+v", root.Children)
	}
	if v, _ := attrValue(plan, "source"); v != "compiled" {
		t.Fatalf("plan source %q", v)
	}
	ex := spanByName(root, "execute")
	if ex == nil {
		t.Fatal("no execute span")
	}
	if v, ok := attrValue(ex, "batches"); !ok || v == "0" {
		t.Fatalf("execute batches attr: %q %v (attrs %+v)", v, ok, ex.Attrs)
	}
	if _, ok := attrValue(ex, "engine_time"); !ok {
		t.Fatalf("execute missing engine-time attribution: %+v", ex.Attrs)
	}

	// A repeat is served from cache: no execute span, served=cache, and a
	// distinct trace of its own.
	repeat := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.3, Trials: 128, Seed: 4})
	if repeat.TraceID == "" || repeat.TraceID == resp.TraceID {
		t.Fatalf("repeat trace_id %q (first %q)", repeat.TraceID, resp.TraceID)
	}
	tr2, ok := s.Traces().Get(repeat.TraceID)
	if !ok {
		t.Fatal("repeat trace not retained")
	}
	if v, _ := attrValue(tr2.Root(), "served"); v != "cache" {
		t.Fatalf("repeat served attr %q", v)
	}
	if spanByName(tr2.Root(), "execute") != nil {
		t.Fatal("cache hit has an execute span")
	}
}

// TestTraceEndpoints drives GET /v1/trace and /v1/trace/{id} over HTTP:
// index counts, retrievable trees, 404 on unknown IDs, and the
// tracing-disabled surface when -trace-ring is negative.
func TestTraceEndpoints(t *testing.T) {
	_, ts := testServer(t, Options{TraceRing: 4, TraceSlowest: 2})
	resp := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64})

	var idx telemetry.Index
	if code := getJSON(t, ts.URL+"/v1/trace", &idx); code != http.StatusOK {
		t.Fatalf("trace index: %d", code)
	}
	if idx.Started != 1 || idx.Finished != 1 || idx.Capacity != 4 || len(idx.Recent) != 1 {
		t.Fatalf("index: %+v", idx)
	}
	if idx.Recent[0].ID != resp.TraceID {
		t.Fatalf("index trace %s, response trace %s", idx.Recent[0].ID, resp.TraceID)
	}

	var tj telemetry.TraceJSON
	if code := getJSON(t, ts.URL+"/v1/trace/"+resp.TraceID, &tj); code != http.StatusOK {
		t.Fatalf("trace get: %d", code)
	}
	if tj.ID != resp.TraceID || tj.Root == nil || spanByName(tj.Root, "execute") == nil {
		t.Fatalf("trace body: %+v", tj)
	}

	var er ErrorResponse
	if code := getJSON(t, ts.URL+"/v1/trace/no-such-trace", &er); code != http.StatusNotFound || er.Code != "trace-not-found" {
		t.Fatalf("unknown trace: %d %q", code, er.Code)
	}

	// Tracing disabled: responses carry no trace_id, the endpoints 404.
	_, off := testServer(t, Options{TraceRing: -1})
	if resp := postEstimate(t, off.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64}); resp.TraceID != "" {
		t.Fatalf("disabled tracing still issued trace_id %q", resp.TraceID)
	}
	if code := getJSON(t, off.URL+"/v1/trace", &er); code != http.StatusNotFound {
		t.Fatalf("disabled trace index: %d", code)
	}
}

// TestErrorResponsesCarryTraceID: failures are the traces someone will
// actually want — the trace_id must ride error bodies too.
func TestErrorResponsesCarryTraceID(t *testing.T) {
	s, ts := testServer(t, Options{MaxNodes: 16})
	status, _, raw := postJSON(t, ts.URL, `{"graph":"line:100","p":0.5}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d", status)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID == "" {
		t.Fatalf("error response without trace_id: %s", raw)
	}
	if _, ok := s.Traces().Get(er.TraceID); !ok {
		t.Fatalf("error trace %s not retained", er.TraceID)
	}
}

// TestDistributedSweepTraceTree is the acceptance scenario: a
// coordinator over two workers serves one estimate, and the coordinator
// retains a single coherent tree — execute fanning out into shard spans,
// each naming the worker that answered and carrying the worker's own
// grafted span subtree with its per-shard timings.
func TestDistributedSweepTraceTree(t *testing.T) {
	w1, wts1 := testServer(t, Options{})
	w2, wts2 := testServer(t, Options{})
	coordCluster := cluster.New([]string{wts1.URL, wts2.URL}, cluster.Options{ShardTrials: 64})
	s, ts := testServer(t, Options{Cluster: coordCluster})

	resp := postEstimate(t, ts.URL, EstimateRequest{Graph: "grid:5x5", P: 0.5, Trials: 512})
	tr, ok := s.Traces().Get(resp.TraceID)
	if !ok {
		t.Fatalf("coordinator trace %s not retained", resp.TraceID)
	}
	ex := spanByName(tr.Root(), "execute")
	if ex == nil {
		t.Fatal("no execute span on coordinator trace")
	}
	var shards []*telemetry.Span
	for _, c := range ex.Children {
		if c.Name == "shard" {
			shards = append(shards, c)
		}
	}
	if len(shards) != 512/64 {
		t.Fatalf("execute has %d shard spans, want %d", len(shards), 512/64)
	}
	workersSeen := map[string]int{}
	for _, sh := range shards {
		worker, ok := attrValue(sh, "worker")
		if !ok {
			t.Fatalf("shard span without worker attr: %+v", sh.Attrs)
		}
		workersSeen[worker]++
		// The worker's own subtree is grafted in, with the worker-side
		// execute span carrying its timings.
		grafted := spanByName(sh, "shard")
		if grafted == nil {
			t.Fatalf("shard span for %s has no grafted worker tree: %+v", worker, sh.Children)
		}
		wex := spanByName(grafted, "execute")
		if wex == nil {
			t.Fatalf("worker subtree missing execute span: %+v", grafted.Children)
		}
		if _, ok := attrValue(wex, "trials"); !ok {
			t.Fatalf("worker execute span missing trials attr: %+v", wex.Attrs)
		}
		if grafted.DurNs <= 0 {
			t.Fatalf("worker subtree has no duration: %+v", grafted)
		}
	}
	if len(workersSeen) != 2 {
		t.Fatalf("shards went to %d workers, want both: %v", len(workersSeen), workersSeen)
	}

	// Worker-side rings tie back: each worker retained shard traces whose
	// coordinator_trace attr names the coordinator's trace.
	for i, w := range []*Server{w1, w2} {
		idx := w.Traces().Index()
		if len(idx.Recent) == 0 {
			t.Fatalf("worker %d retained no shard traces", i+1)
		}
		wt, ok := w.Traces().Get(idx.Recent[0].ID)
		if !ok {
			t.Fatal("worker trace vanished")
		}
		if v, _ := attrValue(wt.Root(), "coordinator_trace"); v != resp.TraceID {
			t.Fatalf("worker %d shard trace points at %q, want %q", i+1, v, resp.TraceID)
		}
	}
}

// TestTracedServingBitIdentical: the same request served by a tracing
// server and a tracing-disabled server must produce identical estimates
// — the service-layer face of the observation-changes-nothing contract.
func TestTracedServingBitIdentical(t *testing.T) {
	_, on := testServer(t, Options{})
	_, off := testServer(t, Options{TraceRing: -1})
	for _, req := range []EstimateRequest{
		{Graph: "grid:4x4", P: 0.35, Trials: 256, Seed: 9},
		{Graph: "line:12", P: 0.2, Trials: 128, Seed: 1, HalfWidth: 0.05},
	} {
		a := postEstimate(t, on.URL, req)
		b := postEstimate(t, off.URL, req)
		sameBits(t, "traced vs untraced", a, b)
	}
}

// TestMetricsEndpoint scrapes /metrics and cross-checks it against
// /v1/stats: both surfaces read the same atomics, so the counters must
// agree exactly.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := testServer(t, Options{})
	postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.3, Trials: 128, Seed: 2})
	postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.3, Trials: 128, Seed: 2}) // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	m, err := telemetry.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, buf.String())
	}

	st := s.Stats()
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"faultcast_api_requests_total", map[string]string{"endpoint": "estimate"}, float64(st.EstimateRequests)},
		{"faultcast_cache_hits_total", nil, float64(st.CacheHits)},
		{"faultcast_executions_total", nil, float64(st.Executions)},
		{"faultcast_trials_simulated_total", nil, float64(st.TrialsSimulated)},
		{"faultcast_plan_compiles_total", nil, float64(st.PlanCompiles)},
		{"faultcast_request_duration_seconds_count", map[string]string{"endpoint": "estimate"}, float64(st.Latency["estimate"].Count)},
	}
	for _, c := range checks {
		if v, ok := m.Value(c.name, c.labels); !ok || v != c.want {
			t.Errorf("%s%v = %v (present %v), stats say %v", c.name, c.labels, v, ok, c.want)
		}
	}
	// Store and cluster families stay declared with no samples when those
	// subsystems are off — the ledger must not depend on daemon flags.
	if m.Types["faultcast_store_appends_total"] != "counter" {
		t.Fatal("store family undeclared on a storeless server")
	}
	if m.Sum("faultcast_store_appends_total") != 0 {
		t.Fatal("storeless server emitted store samples")
	}
	if m.Types["faultcast_cluster_shards_dispatched_total"] != "counter" {
		t.Fatal("cluster family undeclared on a clusterless server")
	}
}

// TestMetricsNamesGolden pins the metric-name stability ledger: the full
// family set of a scrape must match the committed metrics_names.txt
// byte-for-byte. Names are API — update the golden (and the DESIGN.md
// ledger) deliberately with -update-metrics.
func TestMetricsNamesGolden(t *testing.T) {
	s, _ := testServer(t, Options{})
	ledger := strings.Join(s.Metrics().Names(), "\n") + "\n"
	const golden = "../../metrics_names.txt"
	if *updateMetricsGolden {
		if err := os.WriteFile(golden, []byte(ledger), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-metrics to create): %v", err)
	}
	if string(want) != ledger {
		t.Fatalf("metric families drifted from metrics_names.txt — names are a compatibility surface; if intentional, regenerate with -update-metrics and update DESIGN.md\ngolden:\n%s\ngot:\n%s", want, ledger)
	}

	// Every configuration of the server registers the same families:
	// flags must never change the ledger.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{TraceRing: -1},
		{Store: st},
		{Cluster: cluster.New([]string{"http://127.0.0.1:1"}, cluster.Options{})},
	}
	for i, o := range variants {
		v, _ := testServer(t, o)
		if got := strings.Join(v.Metrics().Names(), "\n") + "\n"; got != ledger {
			t.Fatalf("variant %d registers a different family set", i)
		}
	}
}

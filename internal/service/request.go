package service

import (
	"fmt"
	"strings"

	"faultcast"
)

// EstimateRequest is the body of POST /v1/estimate. Graph and P are
// required; everything else has the CLI's defaults. The pair
// (Trials, HalfWidth) states the caller's confidence requirement: run at
// most Trials trials, and stop early once the 95% Wilson half-width
// shrinks to HalfWidth (0 = no precision target, run exactly Trials).
type EstimateRequest struct {
	// Graph is a graph spec in faultcast.ParseGraph grammar, e.g.
	// "grid:8x8", "line:64", "layered:6". file: specs are rejected — the
	// service never touches the local filesystem on behalf of a request.
	Graph string `json:"graph"`
	// Source is the broadcasting node (default 0).
	Source int `json:"source,omitempty"`
	// Message is the source message (default "1").
	Message string `json:"message,omitempty"`
	// Model is "mp" (default) or "radio".
	Model string `json:"model,omitempty"`
	// Fault is "omission" (default), "malicious", or "limited".
	Fault string `json:"fault,omitempty"`
	// P is the per-step transmitter failure probability in [0, 1).
	P float64 `json:"p"`
	// Algorithm is "auto" (default) or a concrete algorithm name.
	Algorithm string `json:"algorithm,omitempty"`
	// Adversary is "worst" (default), "crash", "flip", or "noise".
	Adversary string `json:"adversary,omitempty"`
	// WindowC overrides the window constant (0 = derive from P).
	WindowC float64 `json:"window_c,omitempty"`
	// Alpha is the Theorem 3.2 exponent for the composed algorithm.
	Alpha float64 `json:"alpha,omitempty"`
	// Seed is the base seed of the trial stream (default 1). The seed is
	// part of the cache key: distinct seeds are distinct computations.
	Seed uint64 `json:"seed,omitempty"`
	// Rounds overrides the round horizon (0 = the algorithm's own).
	Rounds int `json:"rounds,omitempty"`
	// Trials is the trial budget (default Options.DefaultTrials). A
	// budget above Options.MaxTrials is clamped to it, never rejected —
	// and the clamp is echoed, not silent: the response then carries
	// clamped=true and trials_requested alongside the effective budget
	// in its trials field.
	Trials int `json:"trials,omitempty"`
	// HalfWidth, when positive, stops the stream once the 95% interval
	// half-width reaches it — and lets the server reuse any cached
	// estimate already at least that precise without simulating.
	HalfWidth float64 `json:"half_width,omitempty"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
type EstimateResponse struct {
	// Key is the canonical cache key (Config.Fingerprint) of the request.
	Key string `json:"key"`
	// Rate, Low, High: the point estimate and its 95% Wilson interval.
	Rate float64 `json:"rate"`
	Low  float64 `json:"low"`
	High float64 `json:"high"`
	// HalfWidth is (High-Low)/2, the achieved precision.
	HalfWidth float64 `json:"half_width"`
	// Trials and Successes are the totals behind the estimate (including
	// cached trials the request did not pay for).
	Trials    int `json:"trials"`
	Successes int `json:"successes"`
	// AlmostSafeTarget is 1 − 1/n for the request's graph; AlmostSafe
	// reports whether the interval reaches it.
	AlmostSafeTarget float64 `json:"almost_safe_target"`
	Almostsafe       bool    `json:"almost_safe"`
	// Rounds is the compiled round horizon; N the vertex count.
	Rounds int `json:"rounds"`
	N      int `json:"n"`
	// Core names the estimation engine the plan selects for this scenario
	// ("lanes", "bitset", "scalar", or "concurrent"). Cached and coalesced
	// answers echo the core that originally computed the estimate.
	Core string `json:"core"`
	// Served says how the answer was produced: "simulated" (fresh run),
	// "refined" (cached estimate topped up), "cache" (cached estimate
	// already satisfied the request — zero trials simulated), or
	// "coalesced" (this request rode an identical in-flight one).
	Served string `json:"served"`
	// TrialsSimulated is the number of trials executed to serve THIS
	// request: 0 for "cache" and "coalesced" answers, the marginal top-up
	// for "refined" ones.
	TrialsSimulated int `json:"trials_simulated"`
	// Clamped reports that the requested trial budget exceeded the
	// server's MaxTrials and was reduced; TrialsRequested then echoes the
	// budget the caller asked for (the effective budget is in Trials /
	// the /v1/scenarios limits). Both are omitted when no clamp happened.
	Clamped         bool `json:"clamped,omitempty"`
	TrialsRequested int  `json:"trials_requested,omitempty"`
	// TraceID names this request's trace, retrievable at
	// GET /v1/trace/{id} while the server still retains it. Omitted when
	// tracing is disabled (faultcastd -trace-ring=-1).
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is a human-readable message; Code a stable machine-readable
	// slug ("bad-json", "bad-request", "graph-too-large", "overloaded",
	// "not-found", "method-not-allowed").
	Error string `json:"error"`
	Code  string `json:"code"`
	// Field names the offending request field, when one is identifiable.
	Field string `json:"field,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 answers.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// TraceID names the failing request's trace, when tracing is enabled
	// and the failure happened late enough to have one.
	TraceID string `json:"trace_id,omitempty"`
}

// requestError carries a structured validation failure to the handler.
type requestError struct {
	code  string
	field string
	msg   string
}

func (e *requestError) Error() string { return e.msg }

func badField(field, format string, args ...any) *requestError {
	return &requestError{code: "bad-request", field: field, msg: fmt.Sprintf(format, args...)}
}

// config validates the request against the server limits and lowers it to
// a faultcast.Config plus the effective trial budget.
func (req *EstimateRequest) config(opts Options) (faultcast.Config, int, error) {
	if req.Graph == "" {
		return faultcast.Config{}, 0, badField("graph", "graph spec is required")
	}
	if len(req.Graph) > 256 {
		return faultcast.Config{}, 0, badField("graph", "graph spec longer than 256 bytes")
	}
	if hasFilePrefix(req.Graph) {
		return faultcast.Config{}, 0, badField("graph", "file: graph specs are not served")
	}
	// Resolve the seed default before parsing: random graph families
	// (gnp, randtree) are deterministic in the seed, so "no seed" and
	// "seed 1" must name the same topology.
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	g, err := faultcast.ParseGraph(req.Graph, seed)
	if err != nil {
		return faultcast.Config{}, 0, badField("graph", "%v", err)
	}
	if g.N() > opts.MaxNodes {
		return faultcast.Config{}, 0, &requestError{
			code: "graph-too-large", field: "graph",
			msg: fmt.Sprintf("graph has %d vertices; this server serves at most %d", g.N(), opts.MaxNodes),
		}
	}
	if req.P < 0 || req.P >= 1 {
		return faultcast.Config{}, 0, badField("p", "p=%v outside [0, 1)", req.P)
	}
	if req.HalfWidth < 0 || req.HalfWidth > 0.5 {
		return faultcast.Config{}, 0, badField("half_width", "half_width=%v outside [0, 0.5]", req.HalfWidth)
	}
	if req.Trials < 0 {
		return faultcast.Config{}, 0, badField("trials", "negative trial count %d", req.Trials)
	}
	trials := req.Trials
	if trials == 0 {
		trials = opts.DefaultTrials
	}
	if trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	cfg := faultcast.Config{
		Graph:   g,
		Source:  req.Source,
		Message: []byte(req.Message),
		P:       req.P,
		WindowC: req.WindowC,
		Alpha:   req.Alpha,
		Seed:    seed,
		Rounds:  req.Rounds,
	}
	if req.Message == "" {
		cfg.Message = []byte("1")
	}
	if cfg.Model, err = faultcast.ParseModel(req.Model); err != nil {
		return faultcast.Config{}, 0, badField("model", "%v", err)
	}
	if cfg.Fault, err = faultcast.ParseFault(req.Fault); err != nil {
		return faultcast.Config{}, 0, badField("fault", "%v", err)
	}
	if cfg.Algorithm, err = faultcast.ParseAlgorithm(req.Algorithm); err != nil {
		return faultcast.Config{}, 0, badField("algorithm", "%v", err)
	}
	if cfg.Adversary, err = faultcast.ParseAdversary(req.Adversary); err != nil {
		return faultcast.Config{}, 0, badField("adversary", "%v", err)
	}
	if cfg.Source < 0 || cfg.Source >= g.N() {
		return faultcast.Config{}, 0, badField("source", "source %d out of range [0, %d)", cfg.Source, g.N())
	}
	if req.Rounds < 0 {
		return faultcast.Config{}, 0, badField("rounds", "negative round override %d", req.Rounds)
	}
	return cfg, trials, nil
}

// hasFilePrefix matches the same leniency ParseGraph applies (trimmed,
// case-insensitive) so a file: spec can't sneak past the gate.
func hasFilePrefix(spec string) bool {
	return strings.HasPrefix(strings.ToLower(strings.TrimSpace(spec)), "file:")
}

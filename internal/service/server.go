package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"faultcast"
	"faultcast/internal/cluster"
	"faultcast/internal/hist"
	"faultcast/internal/store"
	"faultcast/internal/telemetry"
)

// Options tunes a Server. The zero value gets sensible defaults (see
// withDefaults); fields are only ever lowered by validation, never raised.
type Options struct {
	// MaxNodes rejects requests whose graph has more vertices (default
	// 4096). The graph-spec parser's own 65536 cap bounds parsing; this
	// bounds simulation work per admitted request.
	MaxNodes int
	// MaxTrials caps the per-request trial budget (default 200000);
	// DefaultTrials is used when a request names none (default 1000).
	MaxTrials     int
	DefaultTrials int
	// MaxSweepCells rejects sweep requests whose axis cross product
	// expands to more cells (default 1024). A sweep occupies one
	// admission slot regardless of cell count — the cells share one
	// worker pool — so this bounds the work a single slot can hold.
	MaxSweepCells int
	// PlanCacheSize bounds the compiled-plan LRU (default 256 plans);
	// ResultCacheSize bounds the estimate LRU (default 4096 entries);
	// ResultTTL is the lifetime of a cached estimate (default 5m).
	PlanCacheSize   int
	ResultCacheSize int
	ResultTTL       time.Duration
	// MaxInflight bounds concurrently executing estimations (default
	// GOMAXPROCS); MaxQueue bounds callers waiting for a slot (default
	// 64; negative = no waiting). Beyond both, requests get 429.
	MaxInflight int
	MaxQueue    int
	// Workers is the worker count per estimation (default 0 =
	// GOMAXPROCS). With MaxInflight > 1, lowering it keeps one request
	// from monopolizing the cores.
	Workers int
	// Cluster, when non-nil, puts the server in coordinator mode: every
	// estimate and sweep dispatches its trial stream through the cluster
	// coordinator (shards fanned out to remote workers, transparent local
	// failover) instead of the in-process pool, with bit-identical
	// results. The coordinator's per-worker health and shard counters are
	// surfaced in /v1/stats.
	Cluster *cluster.Coordinator
	// TraceRing bounds the retained finished request traces (default 256;
	// negative disables tracing entirely — span calls become nil no-ops).
	// TraceSlowest keeps the N slowest traces beyond ring eviction
	// (default 16). Retained traces are listed at GET /v1/trace and
	// fetched at GET /v1/trace/{id}.
	TraceRing    int
	TraceSlowest int
	// Store, when non-nil, is the durable tally store (faultcastd
	// -store=DIR). Every estimate and sweep cell then resumes from the
	// store's persisted trial prefix and appends its marginal batches
	// back, so a restarted daemon answers previously-served requests
	// with zero trials, bit-identical — the TTL result cache becomes a
	// write-through view over it (in-memory hits still short-circuit,
	// but refinement always resumes from the store's replay, never from
	// a cache entry the store has not seen). Store counters surface in
	// /v1/stats under "store".
	Store *store.Store
	// Now is the clock, overridable by TTL tests (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4096
	}
	if o.MaxTrials <= 0 {
		o.MaxTrials = 200000
	}
	if o.DefaultTrials <= 0 {
		o.DefaultTrials = 1000
	}
	if o.DefaultTrials > o.MaxTrials {
		o.DefaultTrials = o.MaxTrials
	}
	if o.MaxSweepCells <= 0 {
		o.MaxSweepCells = 1024
	}
	if o.PlanCacheSize <= 0 {
		o.PlanCacheSize = 256
	}
	if o.ResultCacheSize <= 0 {
		o.ResultCacheSize = 4096
	}
	if o.ResultTTL <= 0 {
		o.ResultTTL = 5 * time.Minute
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.MaxQueue == 0:
		o.MaxQueue = 64
	case o.MaxQueue < 0:
		o.MaxQueue = 0
	}
	if o.TraceRing == 0 {
		o.TraceRing = 256
	}
	if o.TraceSlowest <= 0 {
		o.TraceSlowest = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Server is the faultcastd request handler: plan/result caches,
// singleflight coalescing, bounded admission, and the HTTP surface over
// them. Create with New; all methods are safe for concurrent use.
type Server struct {
	opts  Options
	start time.Time

	mu      sync.Mutex
	plans   *lru[*faultcast.Plan]
	results *lru[resultEntry]
	// sweeps caches whole compiled SweepPlans by grid identity, so a
	// polling client re-sweeping the same grid skips all compilation
	// (its cells then hit the result cache too). Deliberately small: one
	// entry can hold up to MaxSweepCells compiled plans.
	sweeps *lru[*faultcast.SweepPlan]

	flight  flightGroup
	slots   chan struct{}
	waiting atomic.Int64

	// draining gates /v1/shard: once set, new shard work is refused with
	// 503 while everything already admitted runs to completion — the
	// graceful-drain half of a worker's SIGTERM handling.
	draining      atomic.Bool
	shardInflight atomic.Int64

	c counters

	// tel retains finished request traces (nil when Options.TraceRing is
	// negative — every span call then no-ops); reg is the /metrics
	// registry, re-expressing the same counters /v1/stats reads.
	tel *telemetry.Collector
	reg *telemetry.Registry

	// lat records server-observed request latency per endpoint (handler
	// entry to response written, all statuses), surfaced in /v1/stats so
	// a load harness can cross-check its client-side percentiles against
	// what the server itself saw.
	lat struct {
		estimate hist.Histogram
		sweep    hist.Histogram
		shard    hist.Histogram
	}
}

type counters struct {
	requests           atomic.Uint64
	estimateCalls      atomic.Uint64
	sweepCalls         atomic.Uint64
	sweepCells         atomic.Uint64
	sweepCellCacheHits atomic.Uint64
	badRequests        atomic.Uint64
	cacheHits          atomic.Uint64
	coalesced          atomic.Uint64
	coalescedErrors    atomic.Uint64
	executions         atomic.Uint64
	refines            atomic.Uint64
	rejected           atomic.Uint64
	canceled           atomic.Uint64
	trialsSimulated    atomic.Uint64
	planCompiles       atomic.Uint64
	planCacheHits      atomic.Uint64
	shardCalls         atomic.Uint64
	shardsExecuted     atomic.Uint64
	shardTrials        atomic.Uint64
	shardsDrained      atomic.Uint64
	storeHits          atomic.Uint64
	storeRefines       atomic.Uint64

	// Per-core execution counters: which engine (Plan.EstimationCore)
	// actually simulated, across estimates, sweep cells, and shards.
	coreLanes      atomic.Uint64
	coreBitset     atomic.Uint64
	coreScalar     atomic.Uint64
	coreConcurrent atomic.Uint64
}

// countCore bumps the execution counter of the named estimation core.
func (c *counters) countCore(core string) {
	switch core {
	case "lanes":
		c.coreLanes.Add(1)
	case "scalar":
		c.coreScalar.Add(1)
	case "concurrent":
		c.coreConcurrent.Add(1)
	default:
		c.coreBitset.Add(1)
	}
}

// New returns a Server with the given options (zero fields defaulted).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		start:   opts.Now(),
		plans:   newLRU[*faultcast.Plan](opts.PlanCacheSize),
		results: newLRU[resultEntry](opts.ResultCacheSize),
		sweeps:  newLRU[*faultcast.SweepPlan](16),
		slots:   make(chan struct{}, opts.MaxInflight),
	}
	if opts.TraceRing > 0 {
		s.tel = telemetry.NewCollector(opts.TraceRing, opts.TraceSlowest)
	}
	s.reg = s.buildMetrics()
	return s
}

// Metrics exposes the server's registry (for golden-name tests and the
// faultcastctl metrics subcommand's offline mode).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Traces exposes the trace collector (nil when tracing is disabled).
func (s *Server) Traces() *telemetry.Collector { return s.tel }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/trace", s.handleTraceIndex)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The catch-all matches before the mux's automatic 405, so method
	// mismatches on known paths are distinguished from unknown paths here.
	methods := map[string]string{"/v1/estimate": http.MethodPost, "/v1/sweep": http.MethodPost, "/v1/shard": http.MethodPost, "/v1/scenarios": http.MethodGet, "/v1/stats": http.MethodGet, "/v1/trace": http.MethodGet, "/metrics": http.MethodGet, "/healthz": http.MethodGet}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if want, ok := methods[r.URL.Path]; ok {
			w.Header().Set("Allow", want)
			writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{
				Error: fmt.Sprintf("%s requires %s, got %s", r.URL.Path, want, r.Method),
				Code:  "method-not-allowed",
			})
			return
		}
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("no such endpoint %s %s", r.Method, r.URL.Path),
			Code:  "not-found",
		})
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.c.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.c.estimateCalls.Add(1)
	start := time.Now()
	defer func() { s.lat.estimate.Observe(time.Since(start)) }()
	tr := s.tel.StartTrace("estimate")
	defer tr.Finish()
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req EstimateRequest
	if err := dec.Decode(&req); err != nil {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-json", TraceID: tr.ID()})
		return
	}
	cfg, trials, err := req.config(s.opts)
	if err != nil {
		s.c.badRequests.Add(1)
		re := err.(*requestError)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: re.msg, Code: re.code, Field: re.field, TraceID: tr.ID()})
		return
	}
	key := cfg.Fingerprint()
	// clamped: the server reduced the requested budget to MaxTrials.
	// (trials only ever shrinks below req.Trials by that clamp; the
	// req.Trials == 0 default path grows it.) Echoed on every successful
	// answer so callers can see the budget they actually got.
	clamped := req.Trials > 0 && trials < req.Trials
	annotate := func(resp *EstimateResponse) {
		if clamped {
			resp.TrialsRequested = req.Trials
			resp.Clamped = true
		}
	}

	tr.Root().SetAttr("key", key)

	// Fast path: a fresh cached estimate that already satisfies the
	// confidence requirement answers with zero simulation and no slot.
	if e, ok := s.cachedSatisfying(key, trials, req.HalfWidth); ok {
		s.c.cacheHits.Add(1)
		tr.Root().SetAttr("served", "cache")
		resp := s.response(cfg, key, e.est, e.rounds, e.core, "cache", 0)
		annotate(&resp)
		resp.TraceID = tr.ID()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Coalesce on (semantics, requirement): N concurrent identical
	// requests trigger one execution and all ride its outcome.
	out, shared := s.flight.do(estimateFlightKey(key, trials, req.HalfWidth), func() outcome {
		// The execution belongs to the coalesced group, not to whoever
		// happened to arrive first: detach the leader's cancellation so
		// one disconnecting client can't turn everyone's answer into a
		// 429 while it waits for a slot. The wait stays bounded —
		// estimates always terminate and MaxQueue caps the queue.
		o := s.execute(context.WithoutCancel(r.Context()), tr, cfg, key, trials, req.HalfWidth)
		o.traceID = tr.ID()
		return o
	})
	if shared {
		// Riders have an empty trace of their own; record which trace did
		// the work so /v1/trace navigates from the rider to the leader.
		tr.Root().SetAttr("served", "coalesced")
		tr.Root().SetAttr("coalesced_with", out.traceID)
		// Only a shared SUCCESS is a coalesce — simulation the rider did
		// not pay for. Riding a failed leader saved nothing; count it
		// separately, and count every 429 actually returned as rejected
		// (the leader's own 429 was already counted where it failed), so
		// rejected in /v1/stats equals the 429s a load harness observes.
		switch {
		case out.status == http.StatusOK:
			s.c.coalesced.Add(1)
			out.resp.Served = "coalesced"
			out.resp.TrialsSimulated = 0
		case out.status == http.StatusTooManyRequests:
			s.c.coalescedErrors.Add(1)
			s.c.rejected.Add(1)
		default:
			s.c.coalescedErrors.Add(1)
		}
	}
	if out.status != http.StatusOK {
		if out.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(out.errResp.RetryAfterSeconds))
		}
		out.errResp.TraceID = tr.ID()
		writeJSON(w, out.status, out.errResp)
		return
	}
	annotate(&out.resp)
	// Every response echoes ITS request's trace, not the leader's: a
	// rider's trace is where its coalesced_with pointer lives.
	out.resp.TraceID = tr.ID()
	writeJSON(w, http.StatusOK, out.resp)
}

// estimateFlightKey names one coalescable computation: the canonical
// config fingerprint plus the effective confidence requirement.
func estimateFlightKey(key string, trials int, halfWidth float64) string {
	return fmt.Sprintf("%s|t:%d|hw:%016x", key, trials, math.Float64bits(halfWidth))
}

// execute is the singleflight leader's path: admission, plan lookup or
// compile, and a fresh or topped-up estimate. The trace gains one span
// per stage (admission wait, plan lookup/compile, execution) — purely
// observational, and nil-safe when tracing is disabled.
func (s *Server) execute(ctx context.Context, tr *telemetry.Trace, cfg faultcast.Config, key string, trials int, halfWidth float64) outcome {
	// The result cache may have been filled while this call waited for
	// an earlier leader on the same key to finish.
	if e, ok := s.cachedSatisfying(key, trials, halfWidth); ok {
		s.c.cacheHits.Add(1)
		tr.Root().SetAttr("served", "cache")
		return outcome{status: http.StatusOK, resp: s.response(cfg, key, e.est, e.rounds, e.core, "cache", 0)}
	}
	adm := tr.StartSpan("admission")
	verdict := s.acquire(ctx)
	adm.End()
	switch verdict {
	case admitted:
		adm.SetAttr("outcome", "admitted")
	case admitFull:
		adm.SetAttr("outcome", "rejected")
		s.c.rejected.Add(1)
		return outcome{status: http.StatusTooManyRequests, errResp: ErrorResponse{
			Error:             "estimation capacity exhausted; retry shortly",
			Code:              "overloaded",
			RetryAfterSeconds: 1,
		}}
	case admitCanceled:
		// Unreachable in practice — handleEstimate detaches the leader's
		// cancellation — but a canceled caller is not capacity exhaustion:
		// no rejected bump, no Retry-After.
		adm.SetAttr("outcome", "canceled")
		s.c.canceled.Add(1)
		return outcome{status: statusClientClosedRequest, errResp: ErrorResponse{
			Error: "request canceled by the client while queued",
			Code:  "canceled",
		}}
	}
	defer s.release()

	// The plan cache is keyed seed-less: the compiled plan is identical
	// for every seed of a scenario (the seed only defaults the base of
	// the trial stream, which WithBaseSeed pins below), so a seed sweep
	// over one scenario compiles once and occupies one slot. The result
	// cache stays on the seed-inclusive key — results DO depend on it.
	seedless := cfg
	seedless.Seed = 0
	psp := tr.StartSpan("plan")
	plan, _, err := s.plan(psp, seedless.Fingerprint(), seedless)
	psp.End()
	if err != nil {
		// Compile rejects scenario mismatches request validation cannot
		// see (e.g. flooding requested under the radio model).
		s.c.badRequests.Add(1)
		return outcome{status: http.StatusBadRequest, errResp: ErrorResponse{Error: err.Error(), Code: "bad-request"}}
	}
	var prev faultcast.Estimate
	var refining bool
	resumed := 0
	opts := []faultcast.EstimateOption{faultcast.WithBaseSeed(cfg.Seed)}
	if s.opts.Store != nil {
		// Store mode: refinement ALWAYS resumes from the store's replay,
		// never from an in-memory estimate the store has not persisted —
		// otherwise a warm restart could not reproduce the answers this
		// process served. The result cache stays a write-through view:
		// cachedSatisfying above still answers repeats without disk.
		opts = append(opts,
			faultcast.WithTallyStore(s.opts.Store),
			faultcast.WithResumeReport(func(n int) { resumed = n }))
	} else {
		prev, refining = s.cachedAny(key)
	}
	if s.opts.Workers > 0 {
		opts = append(opts, faultcast.WithWorkers(s.opts.Workers))
	}
	if s.opts.Cluster != nil {
		opts = append(opts, faultcast.WithDispatcher(s.opts.Cluster))
	}
	if halfWidth > 0 {
		opts = append(opts, faultcast.WithHalfWidth(halfWidth))
	}
	xsp := tr.StartSpan("execute")
	var agg batchAgg
	if xsp != nil {
		// Only attach observation hooks when someone is listening — the
		// probe costs two clock reads per batch in the scheduler.
		opts = append(opts, faultcast.WithSpan(xsp), faultcast.WithBatchProbe(agg.observe))
	}
	est, err := plan.EstimateFrom(prev, trials, opts...)
	if err != nil {
		xsp.End()
		return outcome{status: http.StatusInternalServerError, errResp: ErrorResponse{Error: err.Error(), Code: "internal"}}
	}
	core := plan.EstimationCore()
	xsp.SetAttr("core", core)
	agg.annotate(xsp)
	xsp.End()
	s.c.executions.Add(1)
	s.c.countCore(core)
	if s.opts.Store == nil {
		resumed = prev.Trials
	}
	simulated := est.Trials - resumed
	s.c.trialsSimulated.Add(uint64(simulated))
	served := "simulated"
	switch {
	case s.opts.Store != nil && simulated == 0:
		// The stored prefix already satisfied the request: a cache hit
		// that happens to live on disk (e.g. the first ask after a warm
		// restart, before the result cache refills).
		served = "cache"
		s.c.cacheHits.Add(1)
		s.c.storeHits.Add(1)
	case s.opts.Store != nil && resumed > 0:
		served = "refined"
		s.c.refines.Add(1)
		s.c.storeRefines.Add(1)
	case refining:
		served = "refined"
		s.c.refines.Add(1)
	}
	tr.Root().SetAttr("served", served)
	tr.Root().SetAttr("trials_simulated", simulated)
	if resumed > 0 {
		tr.Root().SetAttr("resumed_trials", resumed)
	}
	s.storeResult(key, est, plan.Rounds(), core)
	return outcome{status: http.StatusOK, resp: s.response(cfg, key, est, plan.Rounds(), core, served, simulated)}
}

// admission is the outcome of acquire: a slot was taken, capacity is
// exhausted (reject with backpressure), or the caller's own context was
// cancelled while queued. The last two are deliberately distinct — a
// client hanging up is not server overload, and conflating them (as an
// early version did) pollutes the rejected counter and hands impatient
// clients a Retry-After they will never read.
type admission int

const (
	admitted admission = iota
	admitFull
	admitCanceled
)

// statusClientClosedRequest is the nginx-convention status for "the
// client went away before we could answer"; the body is unreadable by
// definition, the code only feeds access logs and tests.
const statusClientClosedRequest = 499

// acquire takes an execution slot, waiting while the queue has room.
// It returns admitFull once MaxInflight executions are running AND
// MaxQueue callers are already waiting, and admitCanceled if the caller's
// request is cancelled while queued.
func (s *Server) acquire(ctx context.Context) admission {
	select {
	case s.slots <- struct{}{}:
		return admitted
	default:
	}
	if s.waiting.Add(1) > int64(s.opts.MaxQueue) {
		s.waiting.Add(-1)
		return admitFull
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return admitted
	case <-ctx.Done():
		return admitCanceled
	}
}

func (s *Server) release() { <-s.slots }

// plan returns the cached compiled plan for key, compiling (outside the
// cache lock — compiles can be slow) on a miss; cached reports which of
// the two happened (the shard endpoint surfaces it to its coordinator).
// sp is the caller's "plan" span (nil-safe): a hit tags it
// source=cache, a miss hangs the compile time under it as a child.
func (s *Server) plan(sp *telemetry.Span, key string, cfg faultcast.Config) (plan *faultcast.Plan, cached bool, err error) {
	s.mu.Lock()
	if p, ok := s.plans.get(key); ok {
		s.mu.Unlock()
		s.c.planCacheHits.Add(1)
		sp.SetAttr("source", "cache")
		return p, true, nil
	}
	s.mu.Unlock()
	csp := sp.StartChild("compile")
	plan, err = faultcast.Compile(cfg)
	csp.End()
	if err != nil {
		return nil, false, err
	}
	s.c.planCompiles.Add(1)
	sp.SetAttr("source", "compiled")
	s.mu.Lock()
	s.plans.put(key, plan)
	s.mu.Unlock()
	return plan, false, nil
}

// cachedSatisfying returns the cached entry for key iff it is fresh and
// already answers a (trials, halfWidth) requirement; expired entries are
// dropped on the way.
func (s *Server) cachedSatisfying(key string, trials int, halfWidth float64) (resultEntry, bool) {
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.results.get(key)
	if !ok {
		return resultEntry{}, false
	}
	if now.After(e.expires) {
		s.results.remove(key)
		return resultEntry{}, false
	}
	if !e.satisfies(trials, halfWidth) {
		return resultEntry{}, false
	}
	return e, true
}

// cachedAny returns any fresh cached estimate for key — the refinement
// base: EstimateFrom continues its seed sequence instead of restarting.
func (s *Server) cachedAny(key string) (faultcast.Estimate, bool) {
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.results.get(key)
	if !ok || now.After(e.expires) {
		return faultcast.Estimate{}, false
	}
	return e.est, true
}

func (s *Server) storeResult(key string, est faultcast.Estimate, rounds int, core string) {
	expires := s.opts.Now().Add(s.opts.ResultTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Concurrent leaders with different budgets share this key. Results
	// are deterministic prefixes of one seed sequence, so the entry with
	// more trials subsumes any smaller one — never let a small estimate
	// overwrite a larger already-paid-for one; just refresh its TTL.
	if old, ok := s.results.get(key); ok && old.est.Trials > est.Trials {
		old.expires = expires
		s.results.put(key, old)
		return
	}
	s.results.put(key, resultEntry{est: est, rounds: rounds, core: core, expires: expires})
}

func (s *Server) response(cfg faultcast.Config, key string, est faultcast.Estimate, rounds int, core, served string, simulated int) EstimateResponse {
	n := cfg.Graph.N()
	target := 1 - 1/float64(n)
	return EstimateResponse{
		Key:              key,
		Rate:             est.Rate,
		Low:              est.Low,
		High:             est.Hi,
		HalfWidth:        (est.Hi - est.Low) / 2,
		Trials:           est.Trials,
		Successes:        est.Succeeds,
		AlmostSafeTarget: target,
		Almostsafe:       est.AlmostSafe(n),
		Rounds:           rounds,
		N:                n,
		Core:             core,
		Served:           served,
		TrialsSimulated:  simulated,
	}
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Requests           uint64  `json:"requests"`
	EstimateRequests   uint64  `json:"estimate_requests"`
	SweepRequests      uint64  `json:"sweep_requests"`
	SweepCells         uint64  `json:"sweep_cells"`
	SweepCellCacheHits uint64  `json:"sweep_cell_cache_hits"`
	BadRequests        uint64  `json:"bad_requests"`
	CacheHits          uint64  `json:"cache_hits"`
	// Coalesced counts requests that rode another's SUCCESSFUL in-flight
	// execution; CoalescedErrors counts riders of a failed one (no work
	// was saved — the follower just shared the leader's error).
	Coalesced       uint64 `json:"coalesced"`
	CoalescedErrors uint64 `json:"coalesced_errors"`
	Executions      uint64 `json:"executions"`
	Refines         uint64 `json:"refines"`
	// Rejected counts every 429 actually returned (leaders and riders
	// alike), so it matches the reject rate a load harness observes.
	// Canceled counts callers whose own request died while queued for a
	// slot — client impatience, deliberately NOT part of Rejected.
	Rejected           uint64 `json:"rejected"`
	Canceled           uint64 `json:"canceled"`
	TrialsSimulated    uint64 `json:"trials_simulated"`
	PlanCompiles       uint64 `json:"plan_compiles"`
	PlanCacheHits      uint64 `json:"plan_cache_hits"`
	InFlight           int    `json:"in_flight"`
	Waiting            int64  `json:"waiting"`
	PlanCacheEntries   int    `json:"plan_cache_entries"`
	ResultCacheEntries int    `json:"result_cache_entries"`
	// Worker-side shard counters (the /v1/shard endpoint).
	ShardRequests  uint64 `json:"shard_requests"`
	ShardsExecuted uint64 `json:"shards_executed"`
	ShardTrials    uint64 `json:"shard_trials"`
	ShardsDrained  uint64 `json:"shards_drained"`
	ShardInflight  int64  `json:"shard_inflight"`
	Draining       bool   `json:"draining"`
	// StoreHits counts requests (and sweep cells) fully answered by the
	// durable store's replay — zero trials simulated; StoreRefines
	// counts those that resumed a stored prefix and simulated only the
	// marginal batches. Both zero unless the daemon runs with -store.
	StoreHits    uint64 `json:"store_hits"`
	StoreRefines uint64 `json:"store_refines"`
	// ExecutionsByCore splits simulating work (estimates, sweep cells,
	// shards) by the estimation engine that ran it.
	ExecutionsByCore map[string]uint64 `json:"executions_by_core"`
	// Store is the durable tally store's own ledger — loads, appends,
	// rewinds, corrupt-records-skipped. Present only with -store.
	Store *store.Stats `json:"store,omitempty"`
	// Cluster is the coordinator's fleet snapshot — per-worker health,
	// shard counters, and plan-cache hit rates. Present only in
	// coordinator mode (faultcastd -workers).
	Cluster *cluster.Status `json:"cluster,omitempty"`
	// Latency holds server-observed per-endpoint latency summaries
	// (keys "estimate", "sweep", "shard"; handler entry to response
	// written, all statuses, since process start). A load harness
	// cross-checks its client-side percentiles against these.
	Latency map[string]hist.Summary `json:"latency"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	planLen, resultLen := s.plans.len(), s.results.len()
	s.mu.Unlock()
	st := Stats{
		UptimeSeconds:      s.opts.Now().Sub(s.start).Seconds(),
		Requests:           s.c.requests.Load(),
		EstimateRequests:   s.c.estimateCalls.Load(),
		SweepRequests:      s.c.sweepCalls.Load(),
		SweepCells:         s.c.sweepCells.Load(),
		SweepCellCacheHits: s.c.sweepCellCacheHits.Load(),
		BadRequests:        s.c.badRequests.Load(),
		CacheHits:          s.c.cacheHits.Load(),
		Coalesced:          s.c.coalesced.Load(),
		CoalescedErrors:    s.c.coalescedErrors.Load(),
		Executions:         s.c.executions.Load(),
		Refines:            s.c.refines.Load(),
		Rejected:           s.c.rejected.Load(),
		Canceled:           s.c.canceled.Load(),
		TrialsSimulated:    s.c.trialsSimulated.Load(),
		PlanCompiles:       s.c.planCompiles.Load(),
		PlanCacheHits:      s.c.planCacheHits.Load(),
		InFlight:           len(s.slots),
		Waiting:            s.waiting.Load(),
		PlanCacheEntries:   planLen,
		ResultCacheEntries: resultLen,
		ShardRequests:      s.c.shardCalls.Load(),
		ShardsExecuted:     s.c.shardsExecuted.Load(),
		ShardTrials:        s.c.shardTrials.Load(),
		ShardsDrained:      s.c.shardsDrained.Load(),
		ShardInflight:      s.shardInflight.Load(),
		Draining:           s.draining.Load(),
		StoreHits:          s.c.storeHits.Load(),
		StoreRefines:       s.c.storeRefines.Load(),
		ExecutionsByCore: map[string]uint64{
			"lanes":      s.c.coreLanes.Load(),
			"bitset":     s.c.coreBitset.Load(),
			"scalar":     s.c.coreScalar.Load(),
			"concurrent": s.c.coreConcurrent.Load(),
		},
		Latency: map[string]hist.Summary{
			"estimate": s.lat.estimate.Snapshot().Summarize(),
			"sweep":    s.lat.sweep.Snapshot().Summarize(),
			"shard":    s.lat.shard.Snapshot().Summarize(),
		},
	}
	if s.opts.Store != nil {
		ss := s.opts.Store.Stats()
		st.Store = &ss
	}
	if s.opts.Cluster != nil {
		cs := s.opts.Cluster.Status()
		st.Cluster = &cs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		// Still 200 — the process is healthy — but load balancers and
		// coordinators can see the drain and steer work elsewhere.
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": s.opts.Now().Sub(s.start).Seconds(),
	})
}

// ScenarioInfo is the body of GET /v1/scenarios: the request vocabulary
// and this server's limits.
type ScenarioInfo struct {
	GraphFamilies []GraphFamily  `json:"graph_families"`
	Models        []string       `json:"models"`
	Faults        []string       `json:"faults"`
	Algorithms    []string       `json:"algorithms"`
	Adversaries   []string       `json:"adversaries"`
	Limits        ScenarioLimits `json:"limits"`
}

// GraphFamily documents one graph-spec form.
type GraphFamily struct {
	Spec        string `json:"spec"`
	Example     string `json:"example"`
	Description string `json:"description"`
}

// ScenarioLimits echoes the admission/validation limits of this server.
type ScenarioLimits struct {
	MaxNodes      int     `json:"max_nodes"`
	MaxTrials     int     `json:"max_trials"`
	DefaultTrials int     `json:"default_trials"`
	MaxSweepCells int     `json:"max_sweep_cells"`
	MaxInflight   int     `json:"max_inflight"`
	MaxQueue      int     `json:"max_queue"`
	ResultTTLSecs float64 `json:"result_ttl_seconds"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ScenarioInfo{
		GraphFamilies: []GraphFamily{
			{"line:N", "line:64", "path graph"},
			{"ring:N", "ring:32", "cycle graph (N >= 3)"},
			{"star:N", "star:10", "star with center 0"},
			{"complete:N", "complete:16", "K_N (N <= 1024)"},
			{"k2", "k2", "the two-node graph K2"},
			{"tree:N:K", "tree:31:2", "complete K-ary tree in heap layout"},
			{"grid:RxC", "grid:8x8", "R-by-C grid"},
			{"torus:RxC", "torus:6x6", "R-by-C torus (both >= 3)"},
			{"hypercube:D", "hypercube:6", "D-dimensional hypercube (D <= 16)"},
			{"layered:M", "layered:6", "the Section 3 radio lower-bound graph G_M"},
			{"caterpillar:S:L", "caterpillar:16:3", "spine path with L legs per vertex"},
			{"gnp:N:P", "gnp:128:0.05", "connected Erdős–Rényi graph (N <= 1024; deterministic in seed)"},
			{"randtree:N", "randtree:100", "random labeled tree (deterministic in seed)"},
		},
		Models:      []string{"mp", "radio"},
		Faults:      []string{"omission", "malicious", "limited"},
		Algorithms:  []string{"auto", "simple-omission", "simple-malicious", "flooding", "composed", "radio-repeat", "timing-bit"},
		Adversaries: []string{"worst", "crash", "flip", "noise"},
		Limits: ScenarioLimits{
			MaxNodes:      s.opts.MaxNodes,
			MaxTrials:     s.opts.MaxTrials,
			DefaultTrials: s.opts.DefaultTrials,
			MaxSweepCells: s.opts.MaxSweepCells,
			MaxInflight:   s.opts.MaxInflight,
			MaxQueue:      s.opts.MaxQueue,
			ResultTTLSecs: s.opts.ResultTTL.Seconds(),
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"faultcast/internal/cluster"
	"faultcast/internal/telemetry"
)

// BeginDrain puts the server into drain mode: new /v1/shard work is
// refused with 503/"draining" — coordinators treat that as a dispatch
// failure and re-route the shard to another worker or run it locally —
// while estimates, sweeps, and shards already admitted run to
// completion. faultcastd calls this on SIGTERM before http.Server.
// Shutdown, so by the time the listener closes every in-flight shard has
// been answered, not dropped. Draining is irreversible for the process
// (it only ever precedes shutdown) and is surfaced in /healthz and
// /v1/stats.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ShardInflight reports the number of /v1/shard executions currently
// running — zero once a drain has quiesced.
func (s *Server) ShardInflight() int { return int(s.shardInflight.Load()) }

// handleShard executes one shard of a remote coordinator's trial stream:
// rebuild the scenario from the wire (verifying the coordinator's plan
// key), reuse or compile the plan through the same seed-less plan cache
// every other endpoint shares — so all shards of a scenario compile at
// most once per worker — run the shard's exact seed range with no
// stopping rule, and return the per-batch success tally. Shards occupy
// an admission slot like any other execution, so a worker under
// coordinator load still backpressures with 429 rather than oversubscribe
// its cores.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	s.c.shardCalls.Add(1)
	start := time.Now()
	defer func() { s.lat.shard.Observe(time.Since(start)) }()
	if s.draining.Load() {
		s.c.shardsDrained.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error:             "worker is draining; re-dispatch the shard elsewhere",
			Code:              "draining",
			RetryAfterSeconds: 1,
		})
		return
	}
	// The inflight count covers validation through execution: a drain
	// beginning after this point lets the shard finish.
	s.shardInflight.Add(1)
	defer s.shardInflight.Add(-1)

	r.Body = http.MaxBytesReader(w, r.Body, 16<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req cluster.ShardRequest
	if err := dec.Decode(&req); err != nil {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-json"})
		return
	}
	cfg, err := req.Config()
	if err != nil {
		s.c.badRequests.Add(1)
		if errors.Is(err, cluster.ErrPlanKeyMismatch) {
			// 409, not 400: the request was well-formed, but the two sides
			// disagree on what scenario it names — version drift the
			// coordinator must surface, not retry around.
			writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error(), Code: "plan-key-mismatch"})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-request"})
		return
	}
	if n := cfg.Graph.N(); n > s.opts.MaxNodes {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "shard graph exceeds this worker's max_nodes",
			Code:  "graph-too-large", Field: "graph",
		})
		return
	}
	if err := req.CheckShard(s.opts.MaxTrials); err != nil {
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-request"})
		return
	}

	// When the coordinator propagated a trace ID, record this shard's
	// execution as a worker-local trace: it is filed in THIS worker's ring
	// (tagged with the coordinator's ID for cross-referencing), and its
	// finished span tree rides back on the response for the coordinator to
	// graft under its dispatch span.
	var tr *telemetry.Trace
	if coordID := r.Header.Get(telemetry.TraceHeader); coordID != "" {
		tr = s.tel.StartTrace("shard")
		tr.Root().SetAttr("coordinator_trace", coordID)
		tr.Root().SetAttr("index", req.Index)
		defer tr.Finish()
	}

	adm := tr.StartSpan("admission")
	verdict := s.acquire(r.Context())
	adm.End()
	switch verdict {
	case admitted:
		adm.SetAttr("outcome", "admitted")
	case admitFull:
		adm.SetAttr("outcome", "rejected")
		s.c.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:             "shard capacity exhausted; re-dispatch elsewhere or retry shortly",
			Code:              "overloaded",
			RetryAfterSeconds: 1,
			TraceID:           tr.ID(),
		})
		return
	case admitCanceled:
		// The coordinator abandoned the shard while it was queued (its
		// own deadline or caller hung up); this worker was not overloaded.
		adm.SetAttr("outcome", "canceled")
		s.c.canceled.Add(1)
		writeJSON(w, statusClientClosedRequest, ErrorResponse{
			Error:   "shard canceled by the coordinator while queued",
			Code:    "canceled",
			TraceID: tr.ID(),
		})
		return
	}
	defer s.release()

	key := cfg.Fingerprint() // cfg is seed-less by wire construction
	psp := tr.StartSpan("plan")
	plan, cached, err := s.plan(psp, key, cfg)
	psp.End()
	if err != nil {
		// Compile rejects scenario mismatches validation cannot see
		// (e.g. flooding requested under the radio model).
		s.c.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: "bad-request", TraceID: tr.ID()})
		return
	}
	xsp := tr.StartSpan("execute")
	tally := plan.TallyShard(req.BaseSeed, req.Trials, req.Batch, s.opts.Workers)
	xsp.SetAttr("core", plan.EstimationCore())
	xsp.SetAttr("trials", tally.Trials)
	xsp.End()
	s.c.shardsExecuted.Add(1)
	s.c.countCore(plan.EstimationCore())
	s.c.shardTrials.Add(uint64(tally.Trials))
	s.c.trialsSimulated.Add(uint64(tally.Trials))
	source := "compiled"
	if cached {
		source = "cache"
	}
	// Seal the trace BEFORE marshaling so the root span's duration is on
	// the wire; the deferred Finish above then no-ops.
	tr.Finish()
	writeJSON(w, http.StatusOK, cluster.ShardResponse{
		Key:        key,
		Index:      req.Index,
		Trials:     tally.Trials,
		Batch:      tally.Batch,
		Successes:  tally.Successes,
		PlanSource: source,
		Trace:      tr.Root(),
	})
}

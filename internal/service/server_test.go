package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"faultcast"
)

func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

func postEstimate(t *testing.T, url string, req EstimateRequest) EstimateResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	status, _, raw := postJSON(t, url, string(body))
	if status != http.StatusOK {
		t.Fatalf("estimate returned %d: %s", status, raw)
	}
	var er EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("bad estimate body: %v: %s", err, raw)
	}
	return er
}

// TestEstimateHandlerTable: every malformed request must be rejected with
// a 400 and a structured error naming the failure — before any simulation
// or compilation work is admitted.
func TestEstimateHandlerTable(t *testing.T) {
	_, ts := testServer(t, Options{MaxNodes: 64})
	cases := []struct {
		name      string
		body      string
		wantCode  string
		wantField string
	}{
		{"empty body", ``, "bad-json", ""},
		{"broken json", `{"graph":`, "bad-json", ""},
		{"unknown field", `{"graph":"line:8","p":0.1,"bogus":1}`, "bad-json", ""},
		{"missing graph", `{"p":0.5}`, "bad-request", "graph"},
		{"bad graph spec", `{"graph":"dodecahedron:12","p":0.5}`, "bad-request", "graph"},
		{"undersized ring", `{"graph":"ring:2","p":0.5}`, "bad-request", "graph"},
		{"file spec refused", `{"graph":"file:/etc/passwd","p":0.5}`, "bad-request", "graph"},
		{"oversized graph", `{"graph":"line:100","p":0.5}`, "graph-too-large", "graph"},
		{"p too big", `{"graph":"line:8","p":1.0}`, "bad-request", "p"},
		{"p negative", `{"graph":"line:8","p":-0.25}`, "bad-request", "p"},
		{"bad model", `{"graph":"line:8","p":0.5,"model":"smoke-signals"}`, "bad-request", "model"},
		{"bad fault", `{"graph":"line:8","p":0.5,"fault":"byzantine"}`, "bad-request", "fault"},
		{"bad algorithm", `{"graph":"line:8","p":0.5,"algorithm":"quantum"}`, "bad-request", "algorithm"},
		{"bad adversary", `{"graph":"line:8","p":0.5,"adversary":"friendly"}`, "bad-request", "adversary"},
		{"source out of range", `{"graph":"line:8","p":0.5,"source":8}`, "bad-request", "source"},
		{"negative trials", `{"graph":"line:8","p":0.5,"trials":-5}`, "bad-request", "trials"},
		{"half_width too wide", `{"graph":"line:8","p":0.5,"half_width":0.6}`, "bad-request", "half_width"},
		{"negative rounds", `{"graph":"line:8","p":0.5,"rounds":-1}`, "bad-request", "rounds"},
		// Model/algorithm mismatches surface from Compile, still as 400.
		{"flooding on radio", `{"graph":"line:8","p":0.2,"model":"radio","algorithm":"flooding"}`, "bad-request", ""},
		{"timing-bit off K2", `{"graph":"line:8","p":0.2,"fault":"limited","algorithm":"timing-bit"}`, "bad-request", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postJSON(t, ts.URL, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("unstructured error body: %v: %s", err, raw)
			}
			if er.Code != tc.wantCode {
				t.Errorf("code %q, want %q (%s)", er.Code, tc.wantCode, er.Error)
			}
			if tc.wantField != "" && er.Field != tc.wantField {
				t.Errorf("field %q, want %q (%s)", er.Field, tc.wantField, er.Error)
			}
			if er.Error == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestEstimateHappyPath(t *testing.T) {
	s, ts := testServer(t, Options{})
	er := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 400})
	if er.Served != "simulated" || er.TrialsSimulated != 400 || er.Trials != 400 {
		t.Fatalf("unexpected serving: %+v", er)
	}
	if er.Rate < 0 || er.Rate > 1 || er.Low > er.Rate || er.High < er.Rate {
		t.Fatalf("malformed interval: %+v", er)
	}
	if er.N != 16 || er.Rounds <= 0 || er.Key == "" {
		t.Fatalf("missing plan metadata: %+v", er)
	}
	st := s.Stats()
	if st.Executions != 1 || st.PlanCompiles != 1 || st.TrialsSimulated != 400 {
		t.Fatalf("stats after one run: %+v", st)
	}
}

// TestEstimateCoreField pins the execution-core surface: responses carry
// the engine that computed them (echoed on cache hits), and /v1/stats
// splits executions per core.
func TestEstimateCoreField(t *testing.T) {
	s, ts := testServer(t, Options{})

	// Default line:16 omission flooding has a lane lowering.
	er := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 400})
	if er.Core != "lanes" {
		t.Fatalf("lane-supported scenario reported core %q, want lanes", er.Core)
	}
	// A repeat is a cache hit and must echo the computing core.
	er = postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 400})
	if er.Served != "cache" || er.Core != "lanes" {
		t.Fatalf("cache hit lost the core: %+v", er)
	}
	// A gated scenario (default message "0") falls back to the bitset core.
	er = postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 400, Message: "0"})
	if er.Core != "bitset" {
		t.Fatalf("gated scenario reported core %q, want bitset", er.Core)
	}

	st := s.Stats()
	if st.ExecutionsByCore["lanes"] != 1 || st.ExecutionsByCore["bitset"] != 1 {
		t.Fatalf("per-core execution counters: %+v", st.ExecutionsByCore)
	}
	if st.ExecutionsByCore["scalar"] != 0 || st.ExecutionsByCore["concurrent"] != 0 {
		t.Fatalf("unexpected scalar/concurrent executions: %+v", st.ExecutionsByCore)
	}
}

// TestCoalescing is the acceptance-criteria test: 64 concurrent identical
// requests must trigger exactly one underlying plan execution, with every
// caller receiving the same answer. Run under -race in CI.
func TestCoalescing(t *testing.T) {
	s, ts := testServer(t, Options{MaxInflight: 2})
	req := EstimateRequest{Graph: "grid:6x6", P: 0.5, Trials: 2000}

	const callers = 64
	start := make(chan struct{})
	responses := make([]EstimateResponse, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i] = postEstimate(t, ts.URL, req)
		}(i)
	}
	close(start)
	wg.Wait()

	st := s.Stats()
	if st.Executions != 1 {
		t.Fatalf("64 identical requests caused %d plan executions, want exactly 1", st.Executions)
	}
	if st.PlanCompiles != 1 {
		t.Fatalf("plan compiled %d times, want 1", st.PlanCompiles)
	}
	if st.Coalesced+st.CacheHits != callers-1 {
		t.Fatalf("coalesced %d + cache hits %d != %d followers", st.Coalesced, st.CacheHits, callers-1)
	}
	for i, r := range responses {
		if r.Rate != responses[0].Rate || r.Trials != responses[0].Trials || r.Successes != responses[0].Successes {
			t.Fatalf("caller %d got a different answer: %+v vs %+v", i, r, responses[0])
		}
		if r.Served != "simulated" && r.TrialsSimulated != 0 {
			t.Fatalf("follower %d paid %d trials (served=%s)", i, r.TrialsSimulated, r.Served)
		}
	}
}

// TestCachedEstimateZeroTrials: a repeat request within TTL whose
// requested half-width is already met by the cached estimate must perform
// zero simulation trials.
func TestCachedEstimateZeroTrials(t *testing.T) {
	s, ts := testServer(t, Options{})
	req := EstimateRequest{Graph: "line:16", P: 0.3, Trials: 2000, HalfWidth: 0.08}

	first := postEstimate(t, ts.URL, req)
	if first.Served != "simulated" || first.TrialsSimulated == 0 {
		t.Fatalf("first request should simulate: %+v", first)
	}
	if first.HalfWidth > 0.08 {
		t.Fatalf("first request missed its precision target: %+v", first)
	}
	before := s.Stats().TrialsSimulated

	second := postEstimate(t, ts.URL, req)
	if second.Served != "cache" || second.TrialsSimulated != 0 {
		t.Fatalf("repeat request not served from cache: %+v", second)
	}
	// A looser request is satisfied by the same entry.
	looser := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 2000, HalfWidth: 0.2})
	if looser.Served != "cache" || looser.TrialsSimulated != 0 {
		t.Fatalf("looser request not served from cache: %+v", looser)
	}
	if after := s.Stats().TrialsSimulated; after != before {
		t.Fatalf("cache hits simulated %d trials", after-before)
	}
	if st := s.Stats(); st.CacheHits != 2 || st.Executions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRefinement: a tighter follow-up request must top the cached estimate
// up (continuing its seed sequence) rather than restart, and the combined
// estimate must be bit-identical to a from-scratch run of the full budget.
func TestRefinement(t *testing.T) {
	s, ts := testServer(t, Options{})
	first := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 256})
	if first.Served != "simulated" || first.Trials != 256 {
		t.Fatalf("first: %+v", first)
	}
	second := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:16", P: 0.3, Trials: 1024})
	if second.Served != "refined" {
		t.Fatalf("second request not refined: %+v", second)
	}
	if second.Trials != 1024 || second.TrialsSimulated != 1024-256 {
		t.Fatalf("refinement ran wrong trial counts: %+v", second)
	}
	if s.Stats().Refines != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}

	// Ground truth: the refined estimate equals one full-budget run.
	g, err := faultcast.ParseGraph("line:16", 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultcast.Compile(faultcast.Config{
		Graph: g, Source: 0, Message: []byte("1"),
		Model: faultcast.MessagePassing, Fault: faultcast.Omission, P: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Estimate(1024)
	if err != nil {
		t.Fatal(err)
	}
	if second.Successes != want.Succeeds || second.Trials != want.Trials {
		t.Fatalf("refined %d/%d != ground truth %d/%d",
			second.Successes, second.Trials, want.Succeeds, want.Trials)
	}
}

// TestBackpressure: with all slots taken and no queue, an estimate request
// must be bounced with 429 and a Retry-After header, and admitted again
// once capacity frees up.
func TestBackpressure(t *testing.T) {
	s, ts := testServer(t, Options{MaxInflight: 1, MaxQueue: -1})
	s.slots <- struct{}{} // occupy the only execution slot

	body, _ := json.Marshal(EstimateRequest{Graph: "line:8", P: 0.2, Trials: 100})
	status, header, raw := postJSON(t, ts.URL, string(body))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", status, raw)
	}
	if header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Code != "overloaded" {
		t.Fatalf("unstructured 429 body: %s", raw)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}

	<-s.slots // free the slot
	er2 := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 100})
	if er2.Served != "simulated" {
		t.Fatalf("post-release request not served: %+v", er2)
	}
}

// TestResultTTL: cached estimates must expire on the injected clock, after
// which the same request simulates afresh.
func TestResultTTL(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_750_000_000, 0)}
	s, ts := testServer(t, Options{ResultTTL: time.Minute, Now: clock.now})
	req := EstimateRequest{Graph: "line:16", P: 0.3, Trials: 200}

	if er := postEstimate(t, ts.URL, req); er.Served != "simulated" {
		t.Fatalf("first: %+v", er)
	}
	if er := postEstimate(t, ts.URL, req); er.Served != "cache" {
		t.Fatalf("within TTL: %+v", er)
	}
	clock.advance(2 * time.Minute)
	if er := postEstimate(t, ts.URL, req); er.Served != "simulated" {
		t.Fatalf("after TTL: %+v", er)
	}
	if st := s.Stats(); st.Executions != 2 {
		t.Fatalf("stats after expiry: %+v", st)
	}
}

func TestAuxiliaryEndpoints(t *testing.T) {
	_, ts := testServer(t, Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scenarios: %v %v", err, resp)
	}
	var sc ScenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sc.GraphFamilies) == 0 || len(sc.Algorithms) == 0 || sc.Limits.MaxNodes == 0 {
		t.Fatalf("thin scenario info: %+v", sc)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wrong method and unknown path answer structurally too.
	resp, err = http.Get(ts.URL + "/v1/estimate")
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET estimate: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/nonsense")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %v %v", err, resp)
	}
	var nf ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&nf); err != nil || nf.Code != "not-found" {
		t.Fatalf("unstructured 404: %v %+v", err, nf)
	}
	resp.Body.Close()
}

// fakeClock is a mutex-guarded test clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

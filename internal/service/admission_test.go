package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes. The admission
// tests use it only to wait for a goroutine to reach a parked state the
// test itself controls the release of — the pinned counter values never
// depend on timing, only the test's progress does.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionCountersDeterministic drives a known barrage through a
// deliberately blocked server and pins EXACT counter values: with the one
// execution slot held by the test and the queue holding Q waiters, D
// further distinct requests must each be rejected — no more, no fewer —
// and releasing the slot must drain the queue into exactly Q executions.
func TestAdmissionCountersDeterministic(t *testing.T) {
	const Q, D = 2, 3
	s, ts := testServer(t, Options{MaxInflight: 1, MaxQueue: Q})
	s.slots <- struct{}{} // hold the only execution slot

	// Q distinct-scenario leaders queue up behind the held slot. Distinct
	// seeds give distinct fingerprints, so nothing coalesces.
	type result struct {
		er  EstimateResponse
		err error
	}
	queued := make(chan result, Q)
	for i := 0; i < Q; i++ {
		req := EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64, Seed: uint64(10 + i)}
		go func() {
			body, _ := json.Marshal(req)
			status, _, raw := postJSON(t, ts.URL, string(body))
			if status != http.StatusOK {
				queued <- result{err: fmt.Errorf("queued request got %d: %s", status, raw)}
				return
			}
			var er EstimateResponse
			queued <- result{er: er, err: json.Unmarshal(raw, &er)}
		}()
	}
	waitFor(t, "Q leaders parked in the queue", func() bool { return s.waiting.Load() == Q })
	if st := s.Stats(); st.Waiting != Q {
		t.Fatalf("stats report %d waiting, want exactly %d", st.Waiting, Q)
	}

	// D more distinct requests now find the slot held AND the queue full:
	// every one must bounce with 429 + Retry-After, synchronously.
	for i := 0; i < D; i++ {
		body, _ := json.Marshal(EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64, Seed: uint64(100 + i)})
		status, header, raw := postJSON(t, ts.URL, string(body))
		if status != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d got %d, want 429: %s", i, status, raw)
		}
		if header.Get("Retry-After") == "" {
			t.Fatalf("overflow request %d: 429 without Retry-After", i)
		}
	}
	if st := s.Stats(); st.Rejected != D {
		t.Fatalf("rejected = %d after %d overflow requests, want exactly %d", st.Rejected, D, D)
	}

	<-s.slots // release the held slot; the queue drains one at a time
	for i := 0; i < Q; i++ {
		if r := <-queued; r.err != nil {
			t.Fatal(r.err)
		}
	}
	st := s.Stats()
	if st.Executions != Q || st.Rejected != D || st.Waiting != 0 ||
		st.Coalesced != 0 || st.CoalescedErrors != 0 || st.Canceled != 0 {
		t.Fatalf("final counters: executions=%d rejected=%d waiting=%d coalesced=%d coalesced_errors=%d canceled=%d; want %d/%d/0/0/0/0",
			st.Executions, st.Rejected, st.Waiting, st.Coalesced, st.CoalescedErrors, st.Canceled, Q, D)
	}
}

// TestCoalescedSuccessExact pins the success side of coalescing exactly:
// a leader parked in the admission queue, F followers confirmed riding its
// flight, one release — exactly 1 execution, exactly F coalesced.
func TestCoalescedSuccessExact(t *testing.T) {
	const F = 5
	s, ts := testServer(t, Options{MaxInflight: 1, MaxQueue: 1})
	s.slots <- struct{}{} // park the leader in the queue

	req := EstimateRequest{Graph: "line:12", P: 0.2, Trials: 64}
	cfg, trials, err := req.config(s.opts)
	if err != nil {
		t.Fatal(err)
	}
	fk := estimateFlightKey(cfg.Fingerprint(), trials, req.HalfWidth)

	results := make(chan EstimateResponse, 1+F)
	post := func() {
		results <- postEstimate(t, ts.URL, req)
	}
	go post() // the leader: registers the flight, then queues for the slot
	waitFor(t, "leader queued", func() bool { return s.waiting.Load() == 1 })
	for i := 0; i < F; i++ {
		go post()
	}
	// The riders gauge makes the barrage deterministic: only once all F
	// followers are confirmed parked on the leader's flight is the slot
	// released — no follower can miss the flight window and execute.
	waitFor(t, "followers riding the flight", func() bool {
		n, ok := s.flight.ridersOf(fk)
		return ok && n == F
	})
	<-s.slots
	var coalesced int
	for i := 0; i < 1+F; i++ {
		if r := <-results; r.Served == "coalesced" {
			coalesced++
		}
	}
	st := s.Stats()
	if st.Executions != 1 || st.Coalesced != F || coalesced != F ||
		st.CoalescedErrors != 0 || st.Rejected != 0 || st.CacheHits != 0 {
		t.Fatalf("executions=%d coalesced=%d (responses %d) coalesced_errors=%d rejected=%d cache_hits=%d; want 1/%d/%d/0/0/0",
			st.Executions, st.Coalesced, coalesced, st.CoalescedErrors, st.Rejected, st.CacheHits, F, F)
	}
}

// TestCoalescedErrorAccounting pins the bugfix for riders of a FAILED
// leader: they used to count as coalesced (reporting N spurious coalesces
// per overloaded leader) while rejected counted only the leader's 429.
// Error-sharing saves no work — it must count as coalesced_errors, and
// rejected must reflect every 429 actually returned. A held synthetic
// leader makes the barrage fully deterministic.
func TestCoalescedErrorAccounting(t *testing.T) {
	const F = 4
	s, ts := testServer(t, Options{MaxInflight: 1, MaxQueue: -1})

	req := EstimateRequest{Graph: "line:12", P: 0.2, Trials: 64}
	cfg, trials, err := req.config(s.opts)
	if err != nil {
		t.Fatal(err)
	}
	fk := estimateFlightKey(cfg.Fingerprint(), trials, req.HalfWidth)

	// Install a leader whose outcome is a 429, held open until the whole
	// barrage has coalesced onto it — the exact shape of one overloaded
	// leader with N riders.
	hold := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		s.flight.do(fk, func() outcome {
			<-hold
			return outcome{status: http.StatusTooManyRequests, errResp: ErrorResponse{
				Error: "estimation capacity exhausted; retry shortly", Code: "overloaded", RetryAfterSeconds: 1,
			}}
		})
	}()
	waitFor(t, "synthetic leader in flight", func() bool {
		_, ok := s.flight.ridersOf(fk)
		return ok
	})

	body, _ := json.Marshal(req)
	statuses := make(chan int, F)
	for i := 0; i < F; i++ {
		go func() {
			status, header, _ := postJSON(t, ts.URL, string(body))
			if status == http.StatusTooManyRequests && header.Get("Retry-After") == "" {
				status = -1 // fold the header check into the status
			}
			statuses <- status
		}()
	}
	waitFor(t, "followers riding the doomed flight", func() bool {
		n, ok := s.flight.ridersOf(fk)
		return ok && n == F
	})
	close(hold)
	for i := 0; i < F; i++ {
		if status := <-statuses; status != http.StatusTooManyRequests {
			t.Fatalf("follower got status %d, want 429 with Retry-After", status)
		}
	}
	<-leaderDone

	st := s.Stats()
	if st.Coalesced != 0 {
		t.Errorf("coalesced = %d for %d error-sharing riders, want 0 (they saved no work)", st.Coalesced, F)
	}
	if st.CoalescedErrors != F {
		t.Errorf("coalesced_errors = %d, want exactly %d", st.CoalescedErrors, F)
	}
	if st.Rejected != F {
		t.Errorf("rejected = %d, want %d — one per 429 actually returned", st.Rejected, F)
	}
	if st.Executions != 0 {
		t.Errorf("executions = %d, want 0", st.Executions)
	}
}

// TestCanceledWhileQueuedNotRejected pins the bugfix for client
// disconnects: a caller whose request dies while queued for a slot used to
// be converted into a 429 + rejected increment, polluting overload metrics
// with client impatience. It must count as canceled instead — rejected
// untouched, no Retry-After owed to a client that already hung up.
func TestCanceledWhileQueuedNotRejected(t *testing.T) {
	s, ts := testServer(t, Options{MaxInflight: 1, MaxQueue: 4})
	s.slots <- struct{}{} // hold the only slot so the sweep queues

	// Estimates detach the leader's cancellation (the flight outlives any
	// one caller), so the queued-cancellation path belongs to sweeps.
	body, _ := json.Marshal(SweepRequest{Graphs: []string{"line:8"}, Ps: []float64{0.2}, Trials: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "sweep parked in the queue", func() bool { return s.waiting.Load() == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request unexpectedly completed")
	}
	waitFor(t, "server to account the cancellation", func() bool { return s.Stats().Canceled == 1 })

	st := s.Stats()
	if st.Rejected != 0 {
		t.Errorf("rejected = %d after a client disconnect, want 0 — a hang-up is not capacity exhaustion", st.Rejected)
	}
	if st.Waiting != 0 {
		t.Errorf("waiting = %d after the canceled caller left, want 0", st.Waiting)
	}
	<-s.slots // release; the server must still be fully serviceable
	if er := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64}); er.Served != "simulated" {
		t.Fatalf("post-cancel request not served: %+v", er)
	}
}

// TestTrialsClampEchoed pins the bugfix for silent budget clamping: a
// request asking for more than MaxTrials must learn its budget was
// reduced — clamped=true and the original ask echoed — on fresh, cached,
// and unclamped answers alike.
func TestTrialsClampEchoed(t *testing.T) {
	_, ts := testServer(t, Options{MaxTrials: 500, DefaultTrials: 100})

	over := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 1000})
	if over.Trials != 500 {
		t.Fatalf("effective budget %d, want the 500 clamp", over.Trials)
	}
	if !over.Clamped || over.TrialsRequested != 1000 {
		t.Fatalf("clamp not echoed: clamped=%v trials_requested=%d, want true/1000", over.Clamped, over.TrialsRequested)
	}
	// The echo is per-request metadata, not part of the cached result: a
	// cache-served repeat must still carry it.
	cached := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 1000})
	if cached.Served != "cache" || !cached.Clamped || cached.TrialsRequested != 1000 {
		t.Fatalf("cached answer lost the clamp echo: %+v", cached)
	}
	// An in-bounds request carries neither field.
	within := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 200, Seed: 7})
	if within.Clamped || within.TrialsRequested != 0 {
		t.Fatalf("unclamped answer grew clamp fields: %+v", within)
	}
	// The server-default budget is not a clamp either.
	defaulted := postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Seed: 8})
	if defaulted.Clamped || defaulted.TrialsRequested != 0 || defaulted.Trials != 100 {
		t.Fatalf("defaulted answer mislabeled: %+v", defaulted)
	}
}

// TestStatsLatencyHistograms: every endpoint call — success or error —
// must land in its per-endpoint server-side histogram.
func TestStatsLatencyHistograms(t *testing.T) {
	s, ts := testServer(t, Options{})
	postEstimate(t, ts.URL, EstimateRequest{Graph: "line:8", P: 0.2, Trials: 64})
	postJSON(t, ts.URL, `{"graph":`) // a bad request is still a served request

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		bytes.NewReader([]byte(`{"graphs":["line:8"],"ps":[0.2],"trials":64}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st := s.Stats()
	if got := st.Latency["estimate"].Count; got != 2 {
		t.Errorf("estimate latency count %d, want 2 (one success, one 400)", got)
	}
	if got := st.Latency["sweep"].Count; got != 1 {
		t.Errorf("sweep latency count %d, want 1", got)
	}
	if got := st.Latency["shard"].Count; got != 0 {
		t.Errorf("shard latency count %d, want 0", got)
	}
	if st.Latency["estimate"].MaxMs < st.Latency["estimate"].P50Ms {
		t.Errorf("estimate latency summary inconsistent: %+v", st.Latency["estimate"])
	}
}

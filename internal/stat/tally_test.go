package stat

import "testing"

// hashTrial is a deterministic synthetic trial: success iff a splitmix-style
// hash of the seed lands below the threshold. It stands in for a simulation
// so the replay equivalence below is a pure property of the statistics.
func hashTrial(threshold uint64) Trial {
	return func(seed uint64) bool {
		z := seed + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z^(z>>31) < threshold
	}
}

// shardTallies executes the full trial range [start, maxTrials) with no
// stopping rule, sliced into shards of shardTrials bucketed at batch —
// what a fleet of workers would return for the stream.
func shardTallies(trial Trial, baseSeed uint64, start, maxTrials, shardTrials, batch int) []Tally {
	var out []Tally
	for first := start; first < maxTrials; first += shardTrials {
		n := shardTrials
		if rest := maxTrials - first; n > rest {
			n = rest
		}
		t := Tally{Trials: n, Batch: batch, Successes: make([]int, (n+batch-1)/batch)}
		for i := 0; i < n; i++ {
			if trial(baseSeed + uint64(first+i)) {
				t.Successes[i/batch]++
			}
		}
		out = append(out, t)
	}
	return out
}

// TestReplayMatchesStream pins the cluster determinism contract at the
// statistics level: replaying per-batch shard tallies reproduces the exact
// Proportion (successes AND executed trials) of the sequential stream, for
// stopping rules of every kind, shard sizes that do and do not divide the
// budget, and resumed starts.
func TestReplayMatchesStream(t *testing.T) {
	rules := map[string]StopRule{
		"none":      {},
		"target":    {UseTarget: true, Target: 0.65, Z: 2.576},
		"halfwidth": {HalfWidth: 0.05},
		"both":      {UseTarget: true, Target: 0.65, Z: 2.576, HalfWidth: 0.04},
		"batch8":    {UseTarget: true, Target: 0.65, Z: 2.576, Batch: 8},
	}
	for name, rule := range rules {
		for _, shardBatches := range []int{1, 3, 7} {
			for _, start := range []Proportion{{}, {Successes: 37, Trials: 50}} {
				batch := rule.Batch
				if batch <= 0 {
					batch = 32
				}
				const maxTrials = 1000
				trial := hashTrial(3 << 61) // ≈ 0.75 success rate, near the target
				maker := func() Trial { return trial }
				want := EstimateStreamFrom(start, maxTrials, 99, 4, rule, maker)

				shardTr := shardBatches * batch
				if !rule.Enabled() {
					// Without a rule there are no intra-shard decisions;
					// bucket at shard size, as the coordinator does.
					batch = shardTr
				}
				tallies := shardTallies(trial, 99, start.Trials, maxTrials, shardTr, batch)
				got, done := Replay(start, maxTrials, rule, tallies)
				if !done {
					t.Errorf("%s/shard=%d/start=%v: replay of the full budget not done", name, shardTr, start)
				}
				if got != want {
					t.Errorf("%s/shard=%d/start=%v: replay %+v, stream %+v", name, shardTr, start, got, want)
				}
			}
		}
	}
}

func TestReplayStartAlreadyDecided(t *testing.T) {
	start := Proportion{Successes: 90, Trials: 100}
	p, done := Replay(start, 100, StopRule{}, nil)
	if !done || p != start {
		t.Fatalf("exhausted start: got %+v done=%v", p, done)
	}
	p, done = Replay(start, 1000, StopRule{UseTarget: true, Target: 0.2}, nil)
	if !done || p != start {
		t.Fatalf("decided start: got %+v done=%v", p, done)
	}
}

// TestReplayDiscardsSpeculation: tallies past the deciding boundary must
// not leak into the estimate.
func TestReplayDiscardsSpeculation(t *testing.T) {
	rule := StopRule{HalfWidth: 0.5} // decided after the very first batch
	tallies := []Tally{
		{Trials: 64, Batch: 32, Successes: []int{30, 1}},
		{Trials: 64, Batch: 32, Successes: []int{0, 0}},
	}
	p, done := Replay(Proportion{}, 1000, rule, tallies)
	if !done {
		t.Fatal("not done")
	}
	if p.Trials != 32 || p.Successes != 30 {
		t.Fatalf("speculative buckets leaked: %+v", p)
	}
}

func TestTallyCheck(t *testing.T) {
	ok := Tally{Trials: 70, Batch: 32, Successes: []int{10, 32, 6}}
	if err := ok.Check(); err != nil {
		t.Fatalf("valid tally rejected: %v", err)
	}
	if err := (Tally{}).Check(); err != nil {
		t.Fatalf("empty tally rejected: %v", err)
	}
	bad := []Tally{
		{Trials: -1},
		{Trials: 10, Batch: 0, Successes: []int{1}},
		{Trials: 70, Batch: 32, Successes: []int{10, 32}},       // missing bucket
		{Trials: 70, Batch: 32, Successes: []int{10, 32, 7}},    // ragged bucket overflow
		{Trials: 70, Batch: 32, Successes: []int{10, -1, 6}},    // negative
		{Trials: 0, Batch: 32, Successes: []int{0}},             // buckets without trials
		{Trials: 64, Batch: 32, Successes: []int{33, 0}},        // full bucket overflow
		{Trials: 64, Batch: 32, Successes: []int{10, 20, 0, 0}}, // too many buckets
	}
	for i, tl := range bad {
		if err := tl.Check(); err == nil {
			t.Errorf("bad tally %d accepted: %+v", i, tl)
		}
	}
	if got := ok.Total(); got != 48 {
		t.Fatalf("Total = %d, want 48", got)
	}
}

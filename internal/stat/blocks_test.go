package stat

import "testing"

// verdict is the shared deterministic per-seed oracle the block and
// per-trial fakes both compute, so any disagreement between the two
// estimator families is a harness bug, not a trial bug.
func verdict(seed uint64) bool {
	x := seed * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x%5 < 2
}

func fakeTrial() Trial {
	return func(seed uint64) bool { return verdict(seed) }
}

func fakeBlock() TrialBlock {
	return func(baseSeed uint64, count int) uint64 {
		var word uint64
		for i := 0; i < count; i++ {
			if verdict(baseSeed + uint64(i)) {
				word |= 1 << uint(i)
			}
		}
		return word
	}
}

func TestEstimateWithBlocksMatchesPerTrial(t *testing.T) {
	// Trial counts straddling block boundaries: sub-block, exact multiples,
	// and ragged tails.
	for _, trials := range []int{1, 7, 63, 64, 65, 128, 130, 1000} {
		want := EstimateWith(trials, 42, 4, fakeTrial)
		got := EstimateWithBlocks(trials, 42, 4, fakeBlock)
		if got != want {
			t.Fatalf("trials=%d: blocks %+v, per-trial %+v", trials, got, want)
		}
	}
}

func TestEstimateStreamFromBlocksMatchesPerTrial(t *testing.T) {
	rules := []StopRule{
		{}, // disabled: straight run
		{Target: 0.4, UseTarget: true, Batch: 10},        // batches smaller than a block
		{Target: 0.4, UseTarget: true, Batch: 100},       // batches straddling blocks
		{HalfWidth: 0.001, Batch: 64},                    // unreachable: runs to maxTrials
		{Target: 0.4, UseTarget: true, Z: 30, Batch: 48}, // wide band: never decided
	}
	starts := []Proportion{{}, {Trials: 37, Successes: 11}}
	for _, rule := range rules {
		for _, start := range starts {
			want := EstimateStreamFrom(start, 500, 7, 3, rule, fakeTrial)
			got := EstimateStreamFromBlocks(start, 500, 7, 3, rule, fakeBlock)
			if got != want {
				t.Fatalf("rule=%+v start=%+v: blocks %+v, per-trial %+v", rule, start, got, want)
			}
		}
	}
}

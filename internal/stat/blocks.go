package stat

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// BlockWidth is the number of trials a TrialBlock can run per call — one
// bit lane per trial in a machine word.
const BlockWidth = 64

// TrialBlock runs up to BlockWidth consecutive trials — seeds baseSeed+0
// .. baseSeed+count-1 — and returns their success verdicts as a bit mask
// (bit i = trial baseSeed+i succeeded; bits >= count are zero). Each
// trial's verdict must be the pure function of its own seed that the
// equivalent Trial computes: callers claim blocks from arbitrary (not
// necessarily aligned) offsets of a seed sequence and mix block and
// per-trial execution freely, relying on bit-identical verdicts.
//
// Like Trial, a TrialBlock may hold reusable per-worker state and is only
// ever called from the single worker that owns it.
type TrialBlock func(baseSeed uint64, count int) uint64

// TrialBlockMaker builds the TrialBlock for one worker goroutine.
type TrialBlockMaker func() TrialBlock

// EstimateWithBlocks is EstimateWith for block trials: it runs `trials`
// independent trials with seeds baseSeed+0, baseSeed+1, ... claimed in
// BlockWidth-sized chunks, and returns the estimated success proportion.
// The estimate depends only on (trials, baseSeed) — identical to the
// per-trial estimators over the same seeds.
func EstimateWithBlocks(trials int, baseSeed uint64, workers int, newBlock TrialBlockMaker) Proportion {
	if trials <= 0 {
		return Proportion{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (trials + BlockWidth - 1) / BlockWidth; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	var succ atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			block := newBlock()
			for {
				i := next.Add(BlockWidth) - BlockWidth
				if i >= int64(trials) {
					return
				}
				k := trials - int(i)
				if k > BlockWidth {
					k = BlockWidth
				}
				succ.Add(int64(bits.OnesCount64(block(baseSeed+uint64(i), k))))
			}
		}()
	}
	wg.Wait()
	return Proportion{Successes: int(succ.Load()), Trials: trials}
}

// EstimateStreamBlocks is EstimateStream for block trials.
func EstimateStreamBlocks(maxTrials int, baseSeed uint64, workers int, rule StopRule, newBlock TrialBlockMaker) Proportion {
	return EstimateStreamFromBlocks(Proportion{}, maxTrials, baseSeed, workers, rule, newBlock)
}

// EstimateStreamFromBlocks is EstimateStreamFrom for block trials: the
// same resumable stream with the same stopping semantics — batches of
// Rule.Batch trials, the interval consulted only at batch boundaries —
// but with each batch's trials claimed in BlockWidth-sized chunks and
// their verdicts popcounted. Because every block verdict is bit-identical
// to the corresponding per-trial verdicts, the returned Proportion (and
// every stop decision along the way) equals EstimateStreamFrom's over the
// same seeds; batches are not block-aligned and blocks clip to batch
// boundaries, so the batch totals match exactly.
func EstimateStreamFromBlocks(start Proportion, maxTrials int, baseSeed uint64, workers int, rule StopRule, newBlock TrialBlockMaker) Proportion {
	p := start
	if p.Trials >= maxTrials || (rule.Enabled() && rule.Done(p)) {
		return p
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !rule.Enabled() {
		rest := EstimateWithBlocks(maxTrials-p.Trials, baseSeed+uint64(p.Trials), workers, newBlock)
		p.Trials += rest.Trials
		p.Successes += rest.Successes
		return p
	}
	batch := rule.Batch
	if batch <= 0 {
		batch = 32
	}
	if max := (batch + BlockWidth - 1) / BlockWidth; workers > max {
		workers = max // a batch can't occupy more workers than blocks
	}
	if workers < 1 {
		workers = 1
	}
	blocks := make([]TrialBlock, workers)
	for w := range blocks {
		blocks[w] = newBlock()
	}
	for {
		b := batch
		if rest := maxTrials - p.Trials; b > rest {
			b = rest
		}
		end := int64(p.Trials + b)
		var next, succ atomic.Int64
		next.Store(int64(p.Trials))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(block TrialBlock) {
				defer wg.Done()
				for {
					i := next.Add(BlockWidth) - BlockWidth
					if i >= end {
						return
					}
					k := int(end - i)
					if k > BlockWidth {
						k = BlockWidth
					}
					succ.Add(int64(bits.OnesCount64(block(baseSeed+uint64(i), k))))
				}
			}(blocks[w])
		}
		wg.Wait()
		p.Trials += b
		p.Successes += int(succ.Load())
		if p.Trials >= maxTrials || rule.Done(p) {
			return p
		}
	}
}

package stat

import (
	"sync/atomic"
	"testing"
)

// coinTrial succeeds when a cheap hash of the seed lands below p·2^64 —
// a deterministic stand-in for a Bernoulli(p) simulation.
func coinTrial(p float64) Trial {
	threshold := uint64(p * (1 << 63) * 2)
	return func(seed uint64) bool {
		x := seed * 0x9e3779b97f4a7c15
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		return x < threshold
	}
}

func TestEstimateStreamNoRuleMatchesEstimate(t *testing.T) {
	trial := coinTrial(0.7)
	want := EstimateParallel(500, 99, 4, trial)
	got := EstimateStream(500, 99, 4, StopRule{}, func() Trial { return trial })
	if got != want {
		t.Fatalf("stream %+v != plain %+v", got, want)
	}
}

// TestEstimateStreamStopsPrefix: with a target rule the stream must stop
// early, on a deterministic prefix of the seed sequence, and report
// exactly the successes of that prefix.
func TestEstimateStreamStopsPrefix(t *testing.T) {
	trial := coinTrial(0.99)
	rule := StopRule{Target: 0.5, UseTarget: true, Batch: 64}
	const max = 100000
	got := EstimateStream(max, 7, 3, rule, func() Trial { return trial })
	if got.Trials >= max {
		t.Fatalf("never stopped: %+v", got)
	}
	if got.Trials%64 != 0 {
		t.Fatalf("stopped mid-batch: %+v", got)
	}
	succ := 0
	for i := uint64(0); i < uint64(got.Trials); i++ {
		if trial(7 + i) {
			succ++
		}
	}
	if succ != got.Successes {
		t.Fatalf("prefix successes %d != reported %d", succ, got.Successes)
	}
	// Worker count must not change the outcome.
	again := EstimateStream(max, 7, 11, rule, func() Trial { return trial })
	if again != got {
		t.Fatalf("worker count changed outcome: %+v vs %+v", again, got)
	}
}

func TestEstimateStreamHalfWidth(t *testing.T) {
	trial := coinTrial(0.5)
	rule := StopRule{HalfWidth: 0.1, Batch: 32}
	got := EstimateStream(100000, 3, 2, rule, func() Trial { return trial })
	lo, hi := got.Wilson(1.96)
	if got.Trials >= 100000 {
		t.Fatalf("half-width rule never stopped: %+v", got)
	}
	if (hi-lo)/2 > 0.1 {
		t.Fatalf("stopped at half-width %v", (hi-lo)/2)
	}
}

// TestEstimateStreamUndecidedRunsAll: an estimate pinned exactly at the
// target can never decide and must exhaust the budget.
func TestEstimateStreamUndecidedRunsAll(t *testing.T) {
	trial := coinTrial(0.5)
	rule := StopRule{Target: 0.5, UseTarget: true, Batch: 50}
	got := EstimateStream(400, 1, 2, rule, func() Trial { return trial })
	if got.Trials != 400 {
		t.Fatalf("pinned stream stopped early: %+v", got)
	}
}

// TestEstimateWithPerWorkerState: each worker must get its own Trial, and
// every requested trial must run exactly once.
func TestEstimateWithPerWorkerState(t *testing.T) {
	var makers atomic.Int64
	var runs atomic.Int64
	p := EstimateWith(200, 0, 4, func() Trial {
		makers.Add(1)
		return func(seed uint64) bool {
			runs.Add(1)
			return seed%2 == 0
		}
	})
	if makers.Load() != 4 {
		t.Fatalf("newTrial called %d times, want 4", makers.Load())
	}
	if runs.Load() != 200 || p.Trials != 200 {
		t.Fatalf("ran %d trials, proportion %+v", runs.Load(), p)
	}
	if p.Successes != 100 {
		t.Fatalf("even-seed successes = %d, want 100", p.Successes)
	}
}

// TestEstimateStreamFromResume: resuming a stream must visit exactly the
// seed suffix a one-shot run of the full budget would, with or without a
// stopping rule, and a start that already satisfies the rule (or the
// budget) must return unchanged without constructing a single trial.
func TestEstimateStreamFromResume(t *testing.T) {
	trial := coinTrial(0.7)
	mk := func() Trial { return trial }

	full := EstimateStream(1000, 42, 4, StopRule{}, mk)
	part := EstimateStream(300, 42, 4, StopRule{}, mk)
	resumed := EstimateStreamFrom(part, 1000, 42, 4, StopRule{}, mk)
	if resumed != full {
		t.Fatalf("resumed %+v != one-shot %+v", resumed, full)
	}

	rule := StopRule{HalfWidth: 0.08, Batch: 32}
	ruleFull := EstimateStream(100000, 42, 4, rule, mk)
	rulePart := EstimateStream(96, 42, 4, StopRule{}, mk) // 96 = 3 batches
	ruleResumed := EstimateStreamFrom(rulePart, 100000, 42, 4, rule, mk)
	if ruleResumed != ruleFull {
		t.Fatalf("rule-resumed %+v != rule one-shot %+v", ruleResumed, ruleFull)
	}

	var makers atomic.Int64
	counting := func() Trial { makers.Add(1); return trial }
	if got := EstimateStreamFrom(ruleFull, 100000, 42, 4, rule, counting); got != ruleFull {
		t.Fatalf("satisfied start changed: %+v != %+v", got, ruleFull)
	}
	if got := EstimateStreamFrom(full, 1000, 42, 4, StopRule{}, counting); got != full {
		t.Fatalf("exhausted budget changed: %+v != %+v", got, full)
	}
	if makers.Load() != 0 {
		t.Fatalf("satisfied resumes constructed %d trials, want 0", makers.Load())
	}
}

func TestStopRuleDone(t *testing.T) {
	rule := StopRule{Target: 0.9, UseTarget: true}
	if rule.Done(Proportion{}) {
		t.Fatal("empty proportion cannot be decided")
	}
	if !rule.Done(Proportion{Successes: 500, Trials: 500}) {
		t.Fatal("500/500 should be decided above 0.9")
	}
	if !rule.Done(Proportion{Successes: 0, Trials: 100}) {
		t.Fatal("0/100 should be decided below 0.9")
	}
	if rule.Done(Proportion{Successes: 9, Trials: 10}) {
		t.Fatal("9/10 should still straddle 0.9")
	}
}

package stat

import (
	"fmt"
	"math"
)

// RadioThreshold returns the unique p* in (0, 1) solving
// p = (1−p)^(Δ+1). By Theorem 2.4, almost-safe broadcasting in the radio
// model with malicious failures on graphs of maximum degree Δ is feasible
// iff p < p*. The left side is increasing and the right side decreasing in
// p, so bisection converges to the unique crossing.
func RadioThreshold(delta int) float64 {
	if delta < 0 {
		panic("stat: negative degree")
	}
	f := func(p float64) float64 {
		return p - math.Pow(1-p, float64(delta+1))
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BinomTail returns P(Bin(n, q) >= k), the upper tail of the binomial
// distribution — the exact form of the paper's composition rule [CO2]
// error: Q' = Σ_{j >= κ/2} C(κ, j) Q^j (1−Q)^{κ−j}.
func BinomTail(n, k int, q float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	// Sum exactly in log space per term to stay stable for small q.
	total := 0.0
	for j := k; j <= n; j++ {
		total += math.Exp(logChoose(n, j) + float64(j)*math.Log(q) + float64(n-j)*math.Log1p(-q))
	}
	if total > 1 {
		total = 1
	}
	return total
}

// MajorityErr returns the probability that a κ-fold majority vote over
// independent trials each wrong with probability q yields the wrong
// answer, counting ties as wrong (the conservative reading of [CO2]):
// P(Bin(κ, q) >= κ/2).
func MajorityErr(kappa int, q float64) float64 {
	return BinomTail(kappa, (kappa+1)/2, q)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// Choose returns C(n, k) as a float64 (exact for moderate n).
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Round(math.Exp(logChoose(n, k)))
}

// ChernoffBelowHalf bounds the probability that a Bin(n, q) variable with
// q < 1/2 reaches n/2: exp(−2n(1/2−q)²) (Hoeffding form). The paper's
// Theorem 2.2 analysis uses exactly this bound shape.
func ChernoffBelowHalf(n int, q float64) float64 {
	if q >= 0.5 {
		return 1
	}
	d := 0.5 - q
	return math.Exp(-2 * float64(n) * d * d)
}

// Proportion is an estimated success probability with its sampling
// uncertainty.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the point estimate.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return math.NaN()
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at the given z (e.g. 1.96 for
// 95%). It behaves sensibly at the extremes 0 and 1, unlike the normal
// approximation.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	ph := p.Rate()
	z2 := z * z
	den := 1 + z2/n
	center := (ph + z2/(2*n)) / den
	half := z / den * math.Sqrt(ph*(1-ph)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the estimate with its 95% interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", p.Rate(), lo, hi, p.Successes, p.Trials)
}

// LinearFit returns the least-squares slope and intercept of y against x,
// plus the coefficient of determination R². Scaling experiments use it to
// check, e.g., that measured broadcast time grows linearly in D + log n.
func LinearFit(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stat: LinearFit needs two same-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stat: LinearFit with constant x")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2
}

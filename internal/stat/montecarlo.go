package stat

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Trial is one Monte-Carlo trial: it runs an experiment with the given
// seed and reports success. Trials must be independent and safe to run
// concurrently (each trial derives all randomness from its seed).
type Trial func(seed uint64) bool

// TrialMaker builds the Trial for one worker goroutine. Per-worker mutable
// state — typically a reusable simulation runner whose buffers persist
// across the worker's whole trial stream — lives in the returned closure,
// which is only ever called from that single worker.
type TrialMaker func() Trial

// Estimate runs `trials` independent trials with seeds baseSeed+0,
// baseSeed+1, ... spread across GOMAXPROCS workers, and returns the
// estimated success proportion. Seed assignment is deterministic, so the
// estimate is reproducible regardless of parallelism.
func Estimate(trials int, baseSeed uint64, trial Trial) Proportion {
	return EstimateParallel(trials, baseSeed, runtime.GOMAXPROCS(0), trial)
}

// EstimateParallel is Estimate with an explicit worker count (used by
// tests and by benchmarks that manage parallelism themselves). The trial
// function is shared by all workers and must be concurrency-safe; use
// EstimateWith when workers need private state.
func EstimateParallel(trials int, baseSeed uint64, workers int, trial Trial) Proportion {
	return EstimateWith(trials, baseSeed, workers, func() Trial { return trial })
}

// EstimateWith is EstimateParallel with per-worker trial state: newTrial is
// called once per worker, and the resulting Trial is used by that worker
// alone. workers <= 0 selects GOMAXPROCS. The estimate depends only on
// (trials, baseSeed), not on the worker count.
func EstimateWith(trials int, baseSeed uint64, workers int, newTrial TrialMaker) Proportion {
	if trials <= 0 {
		return Proportion{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var successes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trial := newTrial()
			for {
				i := next.Add(1) - 1
				if i >= int64(trials) {
					return
				}
				if trial(baseSeed + uint64(i)) {
					successes.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return Proportion{Successes: int(successes.Load()), Trials: trials}
}

// Measure is one numeric Monte-Carlo trial (e.g. broadcast completion
// time); ok=false excludes the trial from the aggregate.
type Measure func(seed uint64) (value float64, ok bool)

// MeanStd runs trials that produce a numeric measurement (e.g. broadcast
// completion time) and returns the sample mean and standard deviation.
// Trials returning ok=false (e.g. failed broadcasts with no completion
// time) are excluded from the aggregate but counted in failed. The measure
// function is shared by all workers and must be concurrency-safe; use
// MeanStdWith when workers need private state.
func MeanStd(trials int, baseSeed uint64, measure Measure) (mean, std float64, failed int) {
	return MeanStdWith(trials, baseSeed, func() Measure { return measure })
}

// MeanStdWith is MeanStd with per-worker measurement state: newMeasure is
// called once per worker, and the resulting Measure is used by that worker
// alone (so it may hold a reusable simulation runner).
func MeanStdWith(trials int, baseSeed uint64, newMeasure func() Measure) (mean, std float64, failed int) {
	var mu sync.Mutex
	var values []float64
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			measure := newMeasure()
			for {
				i := next.Add(1) - 1
				if i >= int64(trials) {
					return
				}
				if v, ok := measure(baseSeed + uint64(i)); ok {
					mu.Lock()
					values = append(values, v)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	failed = trials - len(values)
	if len(values) == 0 {
		return 0, 0, failed
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		ss += (v - mean) * (v - mean)
	}
	if len(values) > 1 {
		std = math.Sqrt(ss / float64(len(values)-1))
	}
	return mean, std, failed
}

// Package stat provides the statistical machinery of the experiment
// harness and the serving layer: Monte-Carlo success-rate estimation with
// Wilson confidence intervals, binomial/Chernoff tail helpers (also used
// by the Kučera composition calculus), the radio feasibility threshold
// solver, least-squares fits for scaling experiments, and the streaming
// estimator (EstimateStream / EstimateStreamFrom) with deterministic
// early stopping and resumption.
//
// # Invariants
//
//   - Estimates are a deterministic function of (maxTrials, baseSeed,
//     rule) — never of the worker count or scheduling: trials are
//     assigned seeds baseSeed+i and stopping is checked only at fixed
//     batch boundaries (TestEstimateStreamStopsPrefix verifies the
//     executed prefix and its worker-count independence).
//   - Resuming a stream from a prior Proportion visits exactly the seed
//     suffix a one-shot run of the combined budget would, and a start
//     that already satisfies the rule runs zero trials
//     (TestEstimateStreamFromResume) — the contract faultcastd's
//     confidence-aware cache reuse and refinement are built on.
//   - Stopping on a target is a sequential test on a band strictly wider
//     than the reported 95% interval, so an early-stopped estimate is
//     always decided the same way as its reported interval (see
//     StopRule).
package stat

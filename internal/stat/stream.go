package stat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// StopRule configures optional early stopping for a streaming estimate.
// The zero value never stops early (all requested trials run).
//
// Stopping decisions are made on the Wilson interval at Z after every
// batch, so the executed trial count is always a deterministic function of
// (rule, baseSeed, maxTrials) — never of scheduling or worker count.
type StopRule struct {
	// Target, active when UseTarget is set, stops the stream once the
	// interval is decided against it: entirely above (the scenario is
	// almost-safe with confidence) or entirely below (it is not). Threshold
	// sweeps use the paper's almost-safety bound 1 − 1/n here, so points
	// far from the p* frontier stop after a handful of batches.
	Target    float64
	UseTarget bool
	// HalfWidth, when positive, stops the stream once the 95% (z = 1.96)
	// interval half-width shrinks to it — "estimate until this precise".
	// It always reads the 95% band, independent of Z, since it bounds the
	// precision of the reported interval rather than deciding a test.
	HalfWidth float64
	// Z is the interval width used by the target check (default 1.96,
	// i.e. 95%). Stopping is a sequential test: the band is consulted
	// after every batch, so the chance that SOME look is momentarily
	// decided exceeds the band's nominal level. Callers whose downstream
	// verdict reads a z-band should stop on a strictly wider one.
	Z float64
	// Batch is the number of trials between stopping checks (default 32 —
	// a fixed constant, so the executed trial count does not depend on
	// the machine's core count).
	Batch int
}

// Enabled reports whether the rule can ever stop a stream early.
func (r StopRule) Enabled() bool { return r.UseTarget || r.HalfWidth > 0 }

// Done reports whether the estimate so far satisfies the rule.
func (r StopRule) Done(p Proportion) bool {
	if p.Trials == 0 {
		return false
	}
	if r.UseTarget {
		z := r.Z
		if z == 0 {
			z = 1.96
		}
		lo, hi := p.Wilson(z)
		if lo > r.Target || hi < r.Target {
			return true
		}
	}
	if r.HalfWidth > 0 {
		lo, hi := p.Wilson(1.96)
		if (hi-lo)/2 <= r.HalfWidth {
			return true
		}
	}
	return false
}

// EstimateStream runs up to maxTrials independent trials with seeds
// baseSeed+0, baseSeed+1, ... and stops early once rule is satisfied. The
// trials that execute are always the prefix of the seed sequence whose
// length is a multiple of the batch size (or maxTrials), so the returned
// Proportion is reproducible regardless of parallelism.
//
// newTrial is called once per worker; per-worker state persists across all
// batches of the stream. workers <= 0 selects GOMAXPROCS.
func EstimateStream(maxTrials int, baseSeed uint64, workers int, rule StopRule, newTrial TrialMaker) Proportion {
	return EstimateStreamFrom(Proportion{}, maxTrials, baseSeed, workers, rule, newTrial)
}

// EstimateStreamFrom resumes a stream from an earlier estimate: start is
// taken to be the outcome of trials with seeds baseSeed+0 ..
// baseSeed+start.Trials-1, new trials continue the seed sequence at
// baseSeed+start.Trials, and the combined Proportion is returned once it
// satisfies rule or reaches maxTrials total trials. If start already
// satisfies the rule (or start.Trials >= maxTrials), it is returned
// unchanged and no trials run — the "cached estimate already good enough"
// fast path of the serving layer. Resuming is how a cached estimate is
// topped up to a tighter band for only the marginal trial cost.
//
// Resumption preserves the determinism contract: the executed trials are
// always a prefix of the seed sequence, and topping up in several steps
// visits the same seeds as one large run (stopping decisions are made at
// the resumption points in addition to batch boundaries, so a resumed
// stream may stop at start.Trials + k·batch rather than a global batch
// multiple).
func EstimateStreamFrom(start Proportion, maxTrials int, baseSeed uint64, workers int, rule StopRule, newTrial TrialMaker) Proportion {
	p := start
	if p.Trials >= maxTrials || (rule.Enabled() && rule.Done(p)) {
		return p
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxTrials-p.Trials {
		workers = maxTrials - p.Trials
	}
	if workers < 1 {
		workers = 1
	}
	if !rule.Enabled() {
		rest := EstimateWith(maxTrials-p.Trials, baseSeed+uint64(p.Trials), workers, newTrial)
		p.Trials += rest.Trials
		p.Successes += rest.Successes
		return p
	}
	batch := rule.Batch
	if batch <= 0 {
		batch = 32
	}
	if workers > batch {
		workers = batch // a batch can't occupy more workers than trials
	}
	trials := make([]Trial, workers)
	for w := range trials {
		trials[w] = newTrial()
	}
	for {
		b := batch
		if rest := maxTrials - p.Trials; b > rest {
			b = rest
		}
		end := int64(p.Trials + b)
		var next, succ atomic.Int64
		next.Store(int64(p.Trials))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(trial Trial) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= end {
						return
					}
					if trial(baseSeed + uint64(i)) {
						succ.Add(1)
					}
				}
			}(trials[w])
		}
		wg.Wait()
		p.Trials += b
		p.Successes += int(succ.Load())
		if p.Trials >= maxTrials || rule.Done(p) {
			return p
		}
	}
}

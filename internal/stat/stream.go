package stat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// StopRule configures optional early stopping for a streaming estimate.
// The zero value never stops early (all requested trials run).
//
// Stopping decisions are made on the Wilson interval at Z after every
// batch, so the executed trial count is always a deterministic function of
// (rule, baseSeed, maxTrials) — never of scheduling or worker count.
type StopRule struct {
	// Target, active when UseTarget is set, stops the stream once the
	// interval is decided against it: entirely above (the scenario is
	// almost-safe with confidence) or entirely below (it is not). Threshold
	// sweeps use the paper's almost-safety bound 1 − 1/n here, so points
	// far from the p* frontier stop after a handful of batches.
	Target    float64
	UseTarget bool
	// HalfWidth, when positive, stops the stream once the 95% (z = 1.96)
	// interval half-width shrinks to it — "estimate until this precise".
	// It always reads the 95% band, independent of Z, since it bounds the
	// precision of the reported interval rather than deciding a test.
	HalfWidth float64
	// Z is the interval width used by the target check (default 1.96,
	// i.e. 95%). Stopping is a sequential test: the band is consulted
	// after every batch, so the chance that SOME look is momentarily
	// decided exceeds the band's nominal level. Callers whose downstream
	// verdict reads a z-band should stop on a strictly wider one.
	Z float64
	// Batch is the number of trials between stopping checks (default 32 —
	// a fixed constant, so the executed trial count does not depend on
	// the machine's core count).
	Batch int
}

// Enabled reports whether the rule can ever stop a stream early.
func (r StopRule) Enabled() bool { return r.UseTarget || r.HalfWidth > 0 }

// Done reports whether the estimate so far satisfies the rule.
func (r StopRule) Done(p Proportion) bool {
	if p.Trials == 0 {
		return false
	}
	if r.UseTarget {
		z := r.Z
		if z == 0 {
			z = 1.96
		}
		lo, hi := p.Wilson(z)
		if lo > r.Target || hi < r.Target {
			return true
		}
	}
	if r.HalfWidth > 0 {
		lo, hi := p.Wilson(1.96)
		if (hi-lo)/2 <= r.HalfWidth {
			return true
		}
	}
	return false
}

// EstimateStream runs up to maxTrials independent trials with seeds
// baseSeed+0, baseSeed+1, ... and stops early once rule is satisfied. The
// trials that execute are always the prefix of the seed sequence whose
// length is a multiple of the batch size (or maxTrials), so the returned
// Proportion is reproducible regardless of parallelism.
//
// newTrial is called once per worker; per-worker state persists across all
// batches of the stream. workers <= 0 selects GOMAXPROCS.
func EstimateStream(maxTrials int, baseSeed uint64, workers int, rule StopRule, newTrial TrialMaker) Proportion {
	if maxTrials <= 0 {
		return Proportion{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxTrials {
		workers = maxTrials
	}
	if workers < 1 {
		workers = 1
	}
	if !rule.Enabled() {
		return EstimateWith(maxTrials, baseSeed, workers, newTrial)
	}
	batch := rule.Batch
	if batch <= 0 {
		batch = 32
	}
	if workers > batch {
		workers = batch // a batch can't occupy more workers than trials
	}
	trials := make([]Trial, workers)
	for w := range trials {
		trials[w] = newTrial()
	}
	var p Proportion
	for {
		b := batch
		if rest := maxTrials - p.Trials; b > rest {
			b = rest
		}
		end := int64(p.Trials + b)
		var next, succ atomic.Int64
		next.Store(int64(p.Trials))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(trial Trial) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= end {
						return
					}
					if trial(baseSeed + uint64(i)) {
						succ.Add(1)
					}
				}
			}(trials[w])
		}
		wg.Wait()
		p.Trials += b
		p.Successes += int(succ.Load())
		if p.Trials >= maxTrials || rule.Done(p) {
			return p
		}
	}
}

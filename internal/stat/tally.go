package stat

import "fmt"

// Tally is the mergeable raw outcome of one shard of a trial stream:
// success counts bucketed by the stop-rule batch, in trial order. It is
// the unit of result the cluster layer moves between machines — a worker
// executes a shard's full trial range with no stopping rule of its own
// (it cannot know the merged prefix) and returns the per-batch counts;
// the coordinator concatenates tallies in shard order and replays the
// stopping rule over the merged prefixes with Replay.
//
// Bucketing at batch granularity, rather than one count per shard, is
// what preserves the single-process determinism contract: the
// concatenated bucket sequence of a sharded run is exactly the batch
// sequence a local EstimateStreamFrom would have produced, so the
// replayed stop decisions — and therefore the executed trial count and
// the final Proportion — are bit-identical, no matter how many machines
// ran the shards or in what order they finished.
type Tally struct {
	// Trials is the number of trials the shard executed.
	Trials int
	// Batch is the bucket granularity: Successes[i] counts the successes
	// among trials [i*Batch, min((i+1)*Batch, Trials)) of the shard.
	Batch int
	// Successes has ceil(Trials/Batch) entries.
	Successes []int
}

// Total returns the shard's summed success count.
func (t Tally) Total() int {
	sum := 0
	for _, s := range t.Successes {
		sum += s
	}
	return sum
}

// Check validates internal consistency — bucket count and per-bucket
// bounds. The coordinator runs it on every tally a remote worker returns,
// so a malformed or corrupted response is treated as a worker failure
// rather than silently folded into an estimate.
func (t Tally) Check() error {
	if t.Trials < 0 {
		return fmt.Errorf("stat: tally with %d trials", t.Trials)
	}
	if t.Trials == 0 {
		if len(t.Successes) != 0 {
			return fmt.Errorf("stat: empty tally with %d buckets", len(t.Successes))
		}
		return nil
	}
	if t.Batch <= 0 {
		return fmt.Errorf("stat: tally with batch %d", t.Batch)
	}
	want := (t.Trials + t.Batch - 1) / t.Batch
	if len(t.Successes) != want {
		return fmt.Errorf("stat: tally with %d buckets, want %d (%d trials / batch %d)",
			len(t.Successes), want, t.Trials, t.Batch)
	}
	for i, s := range t.Successes {
		size := t.Batch
		if last := t.Trials - i*t.Batch; last < size {
			size = last
		}
		if s < 0 || s > size {
			return fmt.Errorf("stat: tally bucket %d has %d successes of %d trials", i, s, size)
		}
	}
	return nil
}

// Replay folds shard tallies, in shard order, into the running estimate,
// re-applying rule at every bucket boundary exactly as the single-process
// stream does, and returns the resulting Proportion plus whether the
// stream is decided (rule satisfied or maxTrials reached). Buckets beyond
// the deciding boundary are discarded — they are speculative work a
// coordinator dispatched before the decision was known, and counting them
// would make the estimate depend on how much speculation happened.
//
// For the replayed decisions to be bit-identical to a local run resumed
// at start, the tallies must partition the local batch sequence: every
// shard but the last must hold a multiple of the rule's batch size, each
// bucketed at exactly that size (the coordinator enforces both).
func Replay(start Proportion, maxTrials int, rule StopRule, tallies []Tally) (Proportion, bool) {
	p := start
	if p.Trials >= maxTrials || (rule.Enabled() && rule.Done(p)) {
		return p, true
	}
	for _, t := range tallies {
		for i, s := range t.Successes {
			size := t.Batch
			if last := t.Trials - i*t.Batch; last < size {
				size = last
			}
			p.Trials += size
			p.Successes += s
			if p.Trials >= maxTrials || (rule.Enabled() && rule.Done(p)) {
				return p, true
			}
		}
	}
	return p, false
}

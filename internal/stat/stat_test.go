package stat

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRadioThresholdSolvesEquation(t *testing.T) {
	for delta := 0; delta <= 40; delta++ {
		p := RadioThreshold(delta)
		if p <= 0 || p >= 1 {
			t.Fatalf("Δ=%d: p* = %v out of (0,1)", delta, p)
		}
		lhs, rhs := p, math.Pow(1-p, float64(delta+1))
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Fatalf("Δ=%d: p=%v vs (1-p)^(Δ+1)=%v", delta, lhs, rhs)
		}
	}
}

func TestRadioThresholdKnownValues(t *testing.T) {
	// Δ=0: p = 1-p -> 1/2. Δ=1: p = (1-p)² -> p = (3-√5)/2 ≈ 0.381966.
	if p := RadioThreshold(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("Δ=0: %v", p)
	}
	want := (3 - math.Sqrt(5)) / 2
	if p := RadioThreshold(1); math.Abs(p-want) > 1e-12 {
		t.Fatalf("Δ=1: %v, want %v", p, want)
	}
}

func TestRadioThresholdMonotone(t *testing.T) {
	prev := 1.0
	for delta := 0; delta < 30; delta++ {
		p := RadioThreshold(delta)
		if p >= prev {
			t.Fatalf("threshold not strictly decreasing at Δ=%d: %v >= %v", delta, p, prev)
		}
		prev = p
	}
}

func TestBinomTailExactSmall(t *testing.T) {
	// Bin(2, 0.5): P(X>=1) = 0.75, P(X>=2) = 0.25.
	if got := BinomTail(2, 1, 0.5); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("P(Bin(2,.5)>=1) = %v", got)
	}
	if got := BinomTail(2, 2, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P(Bin(2,.5)>=2) = %v", got)
	}
	if got := BinomTail(5, 0, 0.3); got != 1 {
		t.Fatalf("P(X>=0) = %v", got)
	}
	if got := BinomTail(5, 6, 0.3); got != 0 {
		t.Fatalf("P(X>=6) = %v", got)
	}
}

// Property: BinomTail is decreasing in k and increasing in q.
func TestBinomTailMonotone(t *testing.T) {
	check := func(nRaw, kRaw uint8, qRaw uint16) bool {
		n := 1 + int(nRaw%30)
		k := int(kRaw) % (n + 1)
		q := float64(qRaw%999+1) / 1000
		tail := BinomTail(n, k, q)
		if k+1 <= n && BinomTail(n, k+1, q) > tail+1e-12 {
			return false
		}
		if q+0.05 < 1 && BinomTail(n, k, q+0.05) < tail-1e-12 {
			return false
		}
		return tail >= 0 && tail <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityErrShrinksWithKappa(t *testing.T) {
	q := 0.3
	prev := 1.0
	for _, kappa := range []int{1, 3, 5, 9, 15, 25, 45} {
		e := MajorityErr(kappa, q)
		if e > prev {
			t.Fatalf("majority error grew at κ=%d: %v > %v", kappa, e, prev)
		}
		prev = e
	}
	if prev > 0.005 {
		t.Fatalf("κ=45 at q=0.3 should be far below 0.5%%: %v", prev)
	}
}

func TestMajorityErrAboveHalfUseless(t *testing.T) {
	// For q > 1/2, repetition cannot help: error stays >= ~1/2.
	if e := MajorityErr(101, 0.6); e < 0.5 {
		t.Fatalf("majority with q=0.6 improved: %v", e)
	}
}

func TestChoose(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {10, 11, 0}, {4, -1, 0},
	}
	for _, tc := range cases {
		if got := Choose(tc.n, tc.k); got != float64(tc.want) {
			t.Errorf("C(%d,%d) = %v, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestChernoffBelowHalf(t *testing.T) {
	if b := ChernoffBelowHalf(100, 0.3); b >= BinomTail(100, 50, 0.3)*1e6 && b > 1e-3 {
		t.Fatalf("Chernoff bound implausible: %v", b)
	}
	// The bound must actually bound the exact tail.
	for _, q := range []float64{0.1, 0.25, 0.4} {
		for _, n := range []int{10, 50, 200} {
			exact := BinomTail(n, (n+1)/2, q)
			bound := ChernoffBelowHalf(n, q)
			if exact > bound+1e-12 {
				t.Fatalf("Chernoff violated: n=%d q=%v exact=%v bound=%v", n, q, exact, bound)
			}
		}
	}
	if ChernoffBelowHalf(10, 0.6) != 1 {
		t.Fatal("q>=0.5 should return the trivial bound 1")
	}
}

func TestProportionRateAndWilson(t *testing.T) {
	p := Proportion{Successes: 90, Trials: 100}
	if p.Rate() != 0.9 {
		t.Fatalf("rate = %v", p.Rate())
	}
	lo, hi := p.Wilson(1.96)
	if !(lo < 0.9 && 0.9 < hi) {
		t.Fatalf("interval [%v,%v] excludes the point estimate", lo, hi)
	}
	if lo < 0.8 || hi > 0.96 {
		t.Fatalf("interval [%v,%v] implausibly wide", lo, hi)
	}
	// Extremes stay in [0,1].
	lo, hi = Proportion{Successes: 0, Trials: 50}.Wilson(1.96)
	if lo != 0 || hi <= 0 || hi > 0.2 {
		t.Fatalf("all-fail interval [%v,%v]", lo, hi)
	}
	lo, hi = Proportion{Successes: 50, Trials: 50}.Wilson(1.96)
	if hi != 1 || lo < 0.8 {
		t.Fatalf("all-pass interval [%v,%v]", lo, hi)
	}
}

func TestProportionEmpty(t *testing.T) {
	p := Proportion{}
	if !math.IsNaN(p.Rate()) {
		t.Fatal("empty proportion should have NaN rate")
	}
	lo, hi := p.Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval [%v,%v]", lo, hi)
	}
}

func TestEstimateDeterministicAcrossParallelism(t *testing.T) {
	trial := func(seed uint64) bool { return seed%3 == 0 }
	a := EstimateParallel(1000, 5, 1, trial)
	b := EstimateParallel(1000, 5, 8, trial)
	if a != b {
		t.Fatalf("parallelism changed the estimate: %v vs %v", a, b)
	}
	// seeds 5..1004: multiples of 3 in that range.
	want := 0
	for s := uint64(5); s < 1005; s++ {
		if s%3 == 0 {
			want++
		}
	}
	if a.Successes != want {
		t.Fatalf("successes = %d, want %d", a.Successes, want)
	}
}

func TestEstimateRunsAllTrials(t *testing.T) {
	var calls atomic.Int64
	Estimate(257, 0, func(seed uint64) bool {
		calls.Add(1)
		return true
	})
	if calls.Load() != 257 {
		t.Fatalf("ran %d trials, want 257", calls.Load())
	}
}

func TestEstimateZeroTrials(t *testing.T) {
	p := Estimate(0, 0, func(uint64) bool { return true })
	if p.Trials != 0 {
		t.Fatalf("zero trials: %v", p)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std, failed := MeanStd(100, 0, func(seed uint64) (float64, bool) {
		if seed%10 == 9 {
			return 0, false
		}
		return float64(seed % 3), true // values 0,1,2 roughly uniform
	})
	if failed != 10 {
		t.Fatalf("failed = %d, want 10", failed)
	}
	if mean < 0.7 || mean > 1.3 {
		t.Fatalf("mean = %v", mean)
	}
	if std < 0.5 || std > 1.1 {
		t.Fatalf("std = %v", std)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2 := LinearFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || r2 < 1-1e-12 {
		t.Fatalf("fit: slope=%v intercept=%v r2=%v", slope, intercept, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("constant x did not panic")
		}
	}()
	LinearFit([]float64{1, 1}, []float64{2, 3})
}

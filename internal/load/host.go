package load

import (
	"os"
	"strings"
)

// CPUModel reads the processor model from /proc/cpuinfo for bench-file
// headers. Best effort: on platforms without it (or with an unexpected
// layout) the header just omits the field rather than failing the run.
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

package load

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"faultcast/internal/service"
)

// TestScheduleDeterministic: the whole point of the seeded schedule —
// equal specs expand to element-for-element identical request sequences,
// and a different seed to a different one.
func TestScheduleDeterministic(t *testing.T) {
	spec := Spec{
		Rate: 200, Arrival: "poisson",
		Duration: 2 * time.Second, Warmup: 500 * time.Millisecond,
		Seed: 42, SweepFraction: 0.1, HotFraction: 0.6, KeyUniverse: 32,
		Trials: 500, HalfWidth: 0.05, HalfWidthFraction: 0.3,
	}
	a, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same spec produced different schedules")
	}
	// The mix must actually be mixed: all three classes, both warm and
	// measured arrivals, hot and cold seeds, some precision requests.
	seen := map[string]int{}
	var warm, hotSeeds, coldSeeds, precision int
	for i, rq := range a {
		seen[rq.Class]++
		if rq.Warm {
			warm++
		}
		if i > 0 && rq.At < a[i-1].At {
			t.Fatalf("arrival %d at %v before %d at %v", i, rq.At, i-1, a[i-1].At)
		}
		if rq.Estimate != nil {
			if rq.Estimate.Seed == 1 {
				hotSeeds++
			} else {
				coldSeeds++
				if rq.Estimate.Seed < 2 || rq.Estimate.Seed > 33 {
					t.Fatalf("cold seed %d outside the 32-key universe", rq.Estimate.Seed)
				}
			}
			if rq.Estimate.HalfWidth > 0 {
				precision++
			}
		}
	}
	if seen[ClassEstimateHot] == 0 || seen[ClassEstimateCold] == 0 || seen[ClassSweep] == 0 {
		t.Fatalf("classes missing from the mix: %v", seen)
	}
	if warm == 0 || warm == len(a) {
		t.Fatalf("warmup split degenerate: %d of %d warm", warm, len(a))
	}
	if hotSeeds == 0 || coldSeeds == 0 || precision == 0 {
		t.Fatalf("degenerate draws: hot=%d cold=%d precision=%d", hotSeeds, coldSeeds, precision)
	}

	diff := spec
	diff.Seed = 43
	c, err := diff.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(cj) == string(aj) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleConstantArrivals: constant arrivals are evenly spaced at
// 1/rate and independent of the seed.
func TestScheduleConstantArrivals(t *testing.T) {
	spec := Spec{Rate: 100, Duration: time.Second}
	sched, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 100 {
		t.Fatalf("%d arrivals for 100/s over 1s, want 100", len(sched))
	}
	for i, rq := range sched {
		want := time.Duration(i) * 10 * time.Millisecond
		if rq.At != want {
			t.Fatalf("arrival %d at %v, want %v", i, rq.At, want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Rate: 0, Duration: time.Second},
		{Rate: 10, Duration: 0},
		{Rate: 10, Duration: time.Second, Arrival: "uniform"},
		{Rate: 10, Duration: time.Second, SweepFraction: 1.5},
		{Rate: 10, Duration: time.Second, HalfWidthFraction: 0.5}, // no half_width
	}
	for i, spec := range bad {
		if _, err := spec.Schedule(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// TestRunSmoke drives a short real schedule against an httptest
// faultcastd and checks the report is coherent: every measured arrival is
// accounted for exactly once, latency percentiles exist and are ordered,
// and the server's own counters line up with the client's 429 count.
func TestRunSmoke(t *testing.T) {
	srv := service.New(service.Options{MaxInflight: 2, DefaultTrials: 200})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := Spec{
		Rate: 150, Arrival: "poisson",
		Duration: 800 * time.Millisecond, Warmup: 200 * time.Millisecond,
		Seed: 7, SweepFraction: 0.05, HotFraction: 0.7, KeyUniverse: 16,
		Trials: 300, MaxInflight: 64,
	}
	warmupDone := 0
	rep, err := Run(context.Background(), ts.URL, spec, Options{
		OnWarmupDone: func() { warmupDone++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmupDone != 1 {
		t.Fatalf("OnWarmupDone fired %d times, want once", warmupDone)
	}
	if rep.Scheduled == 0 || rep.Warmup == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if rep.Issued+rep.Dropped != rep.Scheduled {
		t.Fatalf("issued %d + dropped %d != scheduled %d", rep.Issued, rep.Dropped, rep.Scheduled)
	}
	var count, ok, rejected, errors, dropped int
	for _, c := range rep.Classes {
		count += c.Count
		ok += c.OK
		rejected += c.Rejected
		errors += c.Errors
		dropped += c.Dropped
		if c.OK != int(c.Latency.Count) {
			t.Errorf("class %s: %d OK but %d latency samples", c.Class, c.OK, c.Latency.Count)
		}
		if c.Latency.P50Ms > c.Latency.P95Ms || c.Latency.P95Ms > c.Latency.MaxMs {
			t.Errorf("class %s: disordered percentiles %+v", c.Class, c.Latency)
		}
	}
	if count != rep.Issued || dropped != rep.Dropped {
		t.Fatalf("class totals (count %d, dropped %d) disagree with report (issued %d, dropped %d)",
			count, dropped, rep.Issued, rep.Dropped)
	}
	if ok+rejected+errors != count {
		t.Fatalf("ok %d + rejected %d + errors %d != completed %d", ok, rejected, errors, count)
	}
	if errors != 0 {
		t.Fatalf("%d transport/status errors against a healthy test server", errors)
	}
	if ok == 0 {
		t.Fatal("no successful responses at all")
	}
	// Cross-check against the server's own accounting: it saw at least
	// every measured estimate (warmup adds more), and its rejected
	// counter now counts every 429 the client observed (the PR's
	// counter-semantics fix — the harness relies on it).
	st := srv.Stats()
	if uint64(rejected) > st.Rejected {
		t.Fatalf("client saw %d 429s, server counted only %d rejected", rejected, st.Rejected)
	}
	if st.Latency["estimate"].Count == 0 {
		t.Fatal("server-side estimate latency histogram is empty")
	}
}

// Package load is faultcastd's open-loop service load harness: it
// compiles a declarative workload mix into a deterministic, seeded
// request schedule, fires it at a server at the offered rate regardless
// of how fast the server answers (open loop — a slow server faces a
// growing backlog, exactly like production traffic), and reports
// per-class latency histograms, achieved vs offered throughput, and
// error/429/cancel rates. faultcastctl bench drives it and joins the
// client-side picture with the server's /v1/stats deltas into
// BENCH_service.json.
//
// Determinism: the schedule — arrival times, class choices, scenario
// picks, hot/cold key draws, budget-vs-precision draws — is a pure
// function of the Spec (including its Seed). Two runs of the same spec
// issue byte-identical request sequences at the same offsets; only the
// measured latencies differ. That makes A/B runs attributable: change
// one server option and every response delta is the server's.
//
// Open vs closed loop: a closed-loop driver (fixed worker count, next
// request after the previous answer) lets a slow server throttle its own
// load, hiding queueing delay exactly when it matters. The open-loop
// schedule keeps offering work at the configured rate; client-side
// backlog shows up as latency and, past MaxInflight, as dropped
// requests — both reported, never silently absorbed.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"faultcast/internal/hist"
	"faultcast/internal/rng"
	"faultcast/internal/service"
)

// Request classes. Hot estimates reuse a scenario's base key (cache and
// coalescing territory); cold estimates draw a seed from the bounded key
// universe (mostly-miss territory); sweeps occupy one admission slot for
// a whole grid.
const (
	ClassEstimateHot  = "estimate-hot"
	ClassEstimateCold = "estimate-cold"
	ClassSweep        = "sweep"
)

// Scenario is one weighted entry of the workload's scenario list.
type Scenario struct {
	Graph  string  `json:"graph"`
	P      float64 `json:"p"`
	Weight float64 `json:"weight"` // relative draw weight; <= 0 means 1
}

// Spec is the declarative workload. Rate and Duration are required;
// everything else defaults via withDefaults.
type Spec struct {
	// Rate is the offered arrival rate in requests/second; Arrival is
	// "constant" (evenly spaced, default) or "poisson" (exponential
	// inter-arrivals — bursty, the service-capacity stress shape).
	Rate    float64 `json:"rate"`
	Arrival string  `json:"arrival"`
	// Duration is the measured window; Warmup precedes it (warmup
	// requests are issued — filling caches and JITting the server — but
	// excluded from every reported number).
	Duration time.Duration `json:"-"`
	Warmup   time.Duration `json:"-"`
	// DurationSeconds/WarmupSeconds are the JSON renderings of the above.
	DurationSeconds float64 `json:"duration_s"`
	WarmupSeconds   float64 `json:"warmup_s"`
	// MaxInflight caps concurrent in-flight requests on the CLIENT; an
	// arrival finding the cap exhausted is dropped and counted (the
	// open-loop backlog made visible), never queued (default 512).
	MaxInflight int `json:"max_inflight"`
	// Seed makes the schedule reproducible (default 1).
	Seed uint64 `json:"seed"`
	// Scenarios is the weighted scenario list (default: a small built-in
	// spread over grid/line/ring topologies).
	Scenarios []Scenario `json:"scenarios"`
	// SweepFraction of arrivals are sweep requests; the rest are
	// estimates. HotFraction of the estimates (and sweeps) reuse their
	// scenario's base seed — the hot key — while the rest draw one of
	// KeyUniverse cold seeds, so the hot/cold cache ratio is a dial.
	SweepFraction float64 `json:"sweep_fraction"`
	HotFraction   float64 `json:"hot_fraction"`
	KeyUniverse   int     `json:"key_universe"`
	// Trials is the fixed per-request budget (0 = server default).
	// HalfWidthFraction of estimate requests additionally state HalfWidth
	// as a precision target instead of relying on the raw budget — the
	// confidence-aware-reuse path.
	Trials            int     `json:"trials"`
	HalfWidth         float64 `json:"half_width,omitempty"`
	HalfWidthFraction float64 `json:"half_width_fraction,omitempty"`
	// SweepPs is the p-axis of generated sweep requests (default
	// 0.2/0.5/0.8 over the drawn scenario's graph).
	SweepPs []float64 `json:"sweep_ps,omitempty"`
}

// Normalized returns the spec with every default resolved and the JSON
// duration renderings filled in — the form worth persisting in a bench
// artifact, since it names the workload completely.
func (s Spec) Normalized() Spec { return s.withDefaults() }

func (s Spec) withDefaults() Spec {
	if s.Arrival == "" {
		s.Arrival = "constant"
	}
	if s.MaxInflight <= 0 {
		s.MaxInflight = 512
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = []Scenario{
			{Graph: "grid:6x6", P: 0.5, Weight: 3},
			{Graph: "line:32", P: 0.3, Weight: 2},
			{Graph: "ring:24", P: 0.4, Weight: 1},
		}
	}
	if s.KeyUniverse <= 0 {
		s.KeyUniverse = 1024
	}
	if len(s.SweepPs) == 0 {
		s.SweepPs = []float64{0.2, 0.5, 0.8}
	}
	s.DurationSeconds = s.Duration.Seconds()
	s.WarmupSeconds = s.Warmup.Seconds()
	return s
}

func (s Spec) validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("load: rate %v must be positive", s.Rate)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("load: duration %v must be positive", s.Duration)
	}
	if s.Arrival != "constant" && s.Arrival != "poisson" {
		return fmt.Errorf("load: arrival %q is neither constant nor poisson", s.Arrival)
	}
	if s.SweepFraction < 0 || s.SweepFraction > 1 {
		return fmt.Errorf("load: sweep_fraction %v outside [0, 1]", s.SweepFraction)
	}
	if s.HotFraction < 0 || s.HotFraction > 1 {
		return fmt.Errorf("load: hot_fraction %v outside [0, 1]", s.HotFraction)
	}
	if s.HalfWidthFraction < 0 || s.HalfWidthFraction > 1 {
		return fmt.Errorf("load: half_width_fraction %v outside [0, 1]", s.HalfWidthFraction)
	}
	if s.HalfWidthFraction > 0 && s.HalfWidth <= 0 {
		return fmt.Errorf("load: half_width_fraction set without a half_width")
	}
	return nil
}

// Request is one scheduled arrival: an offset from run start, a class
// label, the warmup flag, and exactly one of the two request bodies.
type Request struct {
	At       time.Duration
	Class    string
	Warm     bool // inside the warmup window: issued but not recorded
	Estimate *service.EstimateRequest
	Sweep    *service.SweepRequest
}

// Schedule expands the spec into its full, deterministic arrival
// sequence. All randomness comes from one splitmix stream seeded by
// Spec.Seed, drawn in a fixed per-request order — equal specs produce
// equal schedules, element for element.
func (s Spec) Schedule() ([]Request, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	var totalWeight float64
	weights := make([]float64, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		w := sc.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		totalWeight += w
	}
	r := rng.New(s.Seed)
	horizon := s.Warmup + s.Duration
	var sched []Request
	var at time.Duration
	for i := 0; ; i++ {
		switch s.Arrival {
		case "constant":
			at = time.Duration(float64(i) / s.Rate * float64(time.Second))
		case "poisson":
			if i > 0 {
				// Exponential inter-arrival: -ln(1-U)/rate. 1-U keeps the
				// argument away from log(0).
				at += time.Duration(-math.Log(1-r.Float64()) / s.Rate * float64(time.Second))
			}
		}
		if at >= horizon {
			break
		}
		// Fixed draw order per arrival — class, scenario, hot/cold,
		// cold key, precision — so the sequence is stable even though
		// some draws go unused on some paths.
		classDraw := r.Float64()
		scenario := s.Scenarios[weightedIndex(weights, totalWeight, r.Float64())]
		hot := r.Float64() < s.HotFraction
		coldKey := 2 + uint64(r.Intn(s.KeyUniverse)) // 1 is the hot seed
		precision := r.Float64() < s.HalfWidthFraction
		seed := uint64(1)
		if !hot {
			seed = coldKey
		}
		rq := Request{At: at, Warm: at < s.Warmup}
		if classDraw < s.SweepFraction {
			rq.Class = ClassSweep
			rq.Sweep = &service.SweepRequest{
				Graphs: []string{scenario.Graph},
				Ps:     s.SweepPs,
				Trials: s.Trials,
				Seed:   seed,
			}
		} else {
			er := &service.EstimateRequest{
				Graph:  scenario.Graph,
				P:      scenario.P,
				Trials: s.Trials,
				Seed:   seed,
			}
			if precision {
				er.HalfWidth = s.HalfWidth
			}
			rq.Class = ClassEstimateCold
			if hot {
				rq.Class = ClassEstimateHot
			}
			rq.Estimate = er
		}
		sched = append(sched, rq)
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("load: rate %v over %v schedules no arrivals", s.Rate, horizon)
	}
	return sched, nil
}

// weightedIndex maps a uniform draw u in [0,1) to a scenario index by
// cumulative weight.
func weightedIndex(weights []float64, total, u float64) int {
	target := u * total
	var cum float64
	for i, w := range weights {
		cum += w
		if target < cum {
			return i
		}
	}
	return len(weights) - 1
}

// ClassReport aggregates one request class over the measured window.
type ClassReport struct {
	Class string `json:"class"`
	// Count = OK + Rejected + Errors (completed requests); Dropped
	// arrivals never left the client (inflight cap) and are counted
	// separately.
	Count    int `json:"count"`
	OK       int `json:"ok"`
	Rejected int `json:"rejected"` // HTTP 429
	Errors   int `json:"errors"`   // transport errors and non-200/429 statuses
	Dropped  int `json:"dropped"`
	// Latency summarizes successful responses only — a 429 answers in
	// microseconds and would flatter every percentile.
	Latency hist.Summary `json:"latency"`
}

// Report is the client-side outcome of one Run.
type Report struct {
	// Scheduled counts measured-window arrivals; Issued those that got an
	// inflight slot; Warmup the arrivals before the window.
	Scheduled int `json:"scheduled"`
	Issued    int `json:"issued"`
	Dropped   int `json:"dropped"`
	Warmup    int `json:"warmup_requests"`
	// OfferedRate is Scheduled over the configured duration; AchievedRate
	// counts OK responses over the measured wall time (window start to
	// last response).
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	ElapsedS     float64 `json:"elapsed_s"`
	// RejectRate is 429s over completed requests; ErrorRate likewise.
	RejectRate float64       `json:"reject_rate"`
	ErrorRate  float64       `json:"error_rate"`
	Classes    []ClassReport `json:"classes"`
}

// Class returns the report for one class (zero value when absent).
func (r *Report) Class(name string) ClassReport {
	for _, c := range r.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassReport{Class: name}
}

// Options tunes a Run.
type Options struct {
	// Client is the HTTP client (default: 2-minute timeout).
	Client *http.Client
	// OnWarmupDone fires once, after the last warmup arrival is issued
	// and before the first measured one — the moment to snapshot
	// /v1/stats so deltas cover exactly the measured window.
	OnWarmupDone func()
}

type classAgg struct {
	count, ok, rejected, errors, dropped int
	hist                                 hist.Histogram
}

// Run executes the spec's schedule against the server at base URL. It
// returns once every issued request has been answered; ctx cancellation
// aborts the remaining schedule (already-issued requests still drain).
func Run(ctx context.Context, baseURL string, spec Spec, opts Options) (*Report, error) {
	spec = spec.withDefaults()
	sched, err := spec.Schedule()
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	var mu sync.Mutex // guards aggs + the issue/drop tallies
	aggs := map[string]*classAgg{}
	aggOf := func(class string) *classAgg {
		a, ok := aggs[class]
		if !ok {
			a = &classAgg{}
			aggs[class] = a
		}
		return a
	}

	rep := &Report{}
	sem := make(chan struct{}, spec.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	warmupDone := false
	var windowStart time.Time
	var lastResponse time.Time

	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
schedule:
	for _, rq := range sched {
		timer.Reset(time.Until(start.Add(rq.At)))
		select {
		case <-timer.C:
		case <-ctx.Done():
			break schedule
		}
		if !rq.Warm && !warmupDone {
			// The measured window opens at the first measured arrival —
			// AFTER its scheduled time has passed, so the stats snapshot
			// taken in OnWarmupDone sits between the warmup arrivals and
			// every measured one.
			warmupDone = true
			if opts.OnWarmupDone != nil {
				opts.OnWarmupDone()
			}
			windowStart = time.Now()
		}
		if !rq.Warm {
			rep.Scheduled++
		}
		select {
		case sem <- struct{}{}:
		default:
			// Open loop: the arrival happened whether or not the client
			// can carry it. Past the inflight cap it is dropped and
			// counted, not queued (queueing would close the loop).
			if !rq.Warm {
				mu.Lock()
				rep.Dropped++
				aggOf(rq.Class).dropped++
				mu.Unlock()
			}
			continue
		}
		if !rq.Warm {
			rep.Issued++
		} else {
			rep.Warmup++
		}
		wg.Add(1)
		go func(rq Request) {
			defer wg.Done()
			defer func() { <-sem }()
			status, latency, err := issue(ctx, client, baseURL, rq)
			if rq.Warm {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if t := time.Now(); t.After(lastResponse) {
				lastResponse = t
			}
			a := aggOf(rq.Class)
			a.count++
			switch {
			case err != nil:
				a.errors++
			case status == http.StatusOK:
				a.ok++
				a.hist.Observe(latency)
			case status == http.StatusTooManyRequests:
				a.rejected++
			default:
				a.errors++
			}
		}(rq)
	}
	wg.Wait()

	if windowStart.IsZero() { // ctx canceled inside the warmup
		windowStart = start
	}
	if lastResponse.IsZero() {
		lastResponse = windowStart
	}
	rep.ElapsedS = lastResponse.Sub(windowStart).Seconds()
	rep.OfferedRate = float64(rep.Scheduled) / spec.Duration.Seconds()
	var totalOK, totalRejected, totalErrors, totalCount int
	for class, a := range aggs {
		totalOK += a.ok
		totalRejected += a.rejected
		totalErrors += a.errors
		totalCount += a.count
		rep.Classes = append(rep.Classes, ClassReport{
			Class:    class,
			Count:    a.count,
			OK:       a.ok,
			Rejected: a.rejected,
			Errors:   a.errors,
			Dropped:  a.dropped,
			Latency:  a.hist.Snapshot().Summarize(),
		})
	}
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Class < rep.Classes[j].Class })
	if rep.ElapsedS > 0 {
		rep.AchievedRate = float64(totalOK) / rep.ElapsedS
	}
	if totalCount > 0 {
		rep.RejectRate = float64(totalRejected) / float64(totalCount)
		rep.ErrorRate = float64(totalErrors) / float64(totalCount)
	}
	return rep, nil
}

// issue posts one scheduled request and reports its status and latency.
// Sweep responses stream NDJSON; the latency covers the full body — a
// sweep is not "answered" until its summary line lands.
func issue(ctx context.Context, client *http.Client, baseURL string, rq Request) (status int, latency time.Duration, err error) {
	var path string
	var payload any
	switch {
	case rq.Estimate != nil:
		path, payload = "/v1/estimate", rq.Estimate
	case rq.Sweep != nil:
		path, payload = "/v1/sweep", rq.Sweep
	default:
		return 0, 0, fmt.Errorf("load: request with no body")
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, time.Since(t0), err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, time.Since(t0), err
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilSafety pins the disabled-tracing contract: every method on a nil
// Collector, Trace, and Span must no-op, so call sites thread
// possibly-nil values unconditionally and a disabled server pays only
// nil checks.
func TestNilSafety(t *testing.T) {
	var c *Collector
	tr := c.StartTrace("estimate")
	if tr != nil {
		t.Fatalf("nil collector started a trace: %+v", tr)
	}
	if id := tr.ID(); id != "" {
		t.Fatalf("nil trace ID = %q", id)
	}
	if tr.Root() != nil {
		t.Fatal("nil trace has a root")
	}
	sp := tr.StartSpan("plan")
	if sp != nil {
		t.Fatalf("nil trace started a span: %+v", sp)
	}
	// The full span surface on nil:
	child := sp.StartChild("compile")
	if child != nil {
		t.Fatal("nil span started a child")
	}
	sp.SetAttr("k", "v")
	sp.End()
	sp.Graft(&Span{Name: "worker"})
	if sp.TraceID() != "" {
		t.Fatalf("nil span trace ID = %q", sp.TraceID())
	}
	tr.Finish()
	if _, ok := c.Get("anything"); ok {
		t.Fatal("nil collector resolved a trace")
	}
	if c.Started() != 0 {
		t.Fatal("nil collector counted starts")
	}
	if idx := c.Index(); idx.Capacity != 0 || len(idx.Recent) != 0 {
		t.Fatalf("nil collector index: %+v", idx)
	}

	// Detached spans (wire-decoded, no owning trace) are equally inert.
	detached := &Span{Name: "shard"}
	detached.SetAttr("k", "v")
	detached.End()
	if detached.StartChild("x") != nil || detached.TraceID() != "" {
		t.Fatalf("detached span is live: %+v", detached)
	}
	if len(detached.Attrs) != 0 {
		t.Fatalf("detached SetAttr recorded: %+v", detached.Attrs)
	}
}

func TestTraceTreeAndAttrs(t *testing.T) {
	c := NewCollector(8, 4)
	tr := c.StartTrace("estimate")
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	adm := tr.StartSpan("admission")
	adm.SetAttr("outcome", "admitted")
	adm.End()
	ex := tr.StartSpan("execute")
	shard := ex.StartChild("shard")
	shard.SetAttr("index", 3)
	shard.SetAttr("trials", int64(512))
	shard.SetAttr("rate", 0.25)
	shard.SetAttr("wait", 2*time.Millisecond)
	shard.SetAttr("retried", false)
	shard.End()
	ex.End()
	tr.Finish()

	root := tr.Root()
	if len(root.Children) != 2 || root.Children[0].Name != "admission" || root.Children[1].Name != "execute" {
		t.Fatalf("root children: %+v", root.Children)
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Name != "shard" {
		t.Fatalf("execute children: %+v", root.Children[1].Children)
	}
	want := []Attr{
		{"index", "3"}, {"trials", "512"}, {"rate", "0.25"},
		{"wait", "2ms"}, {"retried", "false"},
	}
	got := root.Children[1].Children[0].Attrs
	if len(got) != len(want) {
		t.Fatalf("shard attrs: %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attr %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if root.DurNs <= 0 {
		t.Fatalf("unfinalized root duration: %d", root.DurNs)
	}

	// The export marshals without error and carries the tree.
	data, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tr.ID() || back.Root == nil || len(back.Root.Children) != 2 {
		t.Fatalf("export round-trip: %+v", back)
	}
}

// TestFinishIdempotent: handlers Finish explicitly before marshaling a
// span tree to the wire and keep a deferred Finish as the error-path
// backstop — the second call must not file the trace twice.
func TestFinishIdempotent(t *testing.T) {
	c := NewCollector(8, 4)
	tr := c.StartTrace("shard")
	tr.Finish()
	first := tr.Root().DurNs
	tr.Finish()
	idx := c.Index()
	if idx.Finished != 1 || len(idx.Recent) != 1 {
		t.Fatalf("double Finish filed twice: %+v", idx)
	}
	if tr.Root().DurNs != first {
		t.Fatalf("second Finish reset duration: %d -> %d", first, tr.Root().DurNs)
	}
}

func TestSpanEndKeepsFirstDuration(t *testing.T) {
	c := NewCollector(8, 4)
	tr := c.StartTrace("estimate")
	sp := tr.StartSpan("plan")
	sp.End()
	d := sp.DurNs
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.DurNs != d {
		t.Fatalf("second End overwrote duration: %d -> %d", d, sp.DurNs)
	}
}

// TestRingEvictionAndSlowest: the ring drops oldest-first, but traces in
// the slowest index stay retrievable past eviction — that one
// pathological sweep from an hour ago must still resolve by ID.
func TestRingEvictionAndSlowest(t *testing.T) {
	c := NewCollector(4, 2)
	finish := func(name string, dur time.Duration) string {
		tr := c.StartTrace(name)
		tr.Root().DurNs = dur.Nanoseconds() // pin the duration deterministically
		tr.Finish()
		return tr.ID()
	}
	slow := finish("slow", time.Hour)
	var fastIDs []string
	for i := 0; i < 10; i++ {
		fastIDs = append(fastIDs, finish(fmt.Sprintf("fast-%d", i), time.Duration(i+1)*time.Microsecond))
	}

	idx := c.Index()
	if idx.Started != 11 || idx.Finished != 11 || idx.Capacity != 4 {
		t.Fatalf("index counts: %+v", idx)
	}
	if len(idx.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(idx.Recent))
	}
	// Recent is newest-first: the last four fast traces.
	if idx.Recent[0].ID != fastIDs[9] || idx.Recent[3].ID != fastIDs[6] {
		t.Fatalf("recent order: %+v", idx.Recent)
	}
	// Slowest is longest-first and survives ring eviction.
	if len(idx.Slowest) != 2 || idx.Slowest[0].ID != slow {
		t.Fatalf("slowest: %+v", idx.Slowest)
	}
	if _, ok := c.Get(slow); !ok {
		t.Fatal("slow trace evicted despite slowest index")
	}
	// An evicted fast trace not in the slowest index is gone.
	if _, ok := c.Get(fastIDs[0]); ok {
		t.Fatal("evicted trace still resolvable")
	}
	// Everything still in the ring resolves.
	for _, id := range fastIDs[6:] {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("ring trace %s not resolvable", id)
		}
	}
}

func TestTraceIDsUnique(t *testing.T) {
	c := NewCollector(0, 0) // defaults: 256 / 16
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		id := c.StartTrace("t").ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
	if c.Started() != 500 {
		t.Fatalf("started = %d", c.Started())
	}
}

// TestGraftRebasesOffsets: a worker subtree grafts under the dispatch
// span with its offsets rebased by the dispatch span's own offset, so
// the worker's work appears to start when the dispatch began.
func TestGraftRebasesOffsets(t *testing.T) {
	c := NewCollector(8, 4)
	tr := c.StartTrace("sweep")
	ex := tr.StartSpan("execute")
	sh := ex.StartChild("shard")
	sh.StartNs = 5_000_000 // pin for determinism

	worker := &Span{
		Name: "shard", StartNs: 0, DurNs: 3_000_000,
		Children: []*Span{{Name: "execute", StartNs: 1_000_000, DurNs: 2_000_000}},
	}
	sh.Graft(worker)
	sh.End()
	ex.End()
	tr.Finish()

	if len(sh.Children) != 1 {
		t.Fatalf("graft did not attach: %+v", sh.Children)
	}
	g := sh.Children[0]
	if g.StartNs != 5_000_000 || g.Children[0].StartNs != 6_000_000 {
		t.Fatalf("graft offsets not rebased: root %d, child %d", g.StartNs, g.Children[0].StartNs)
	}
	if g.DurNs != 3_000_000 || g.Children[0].DurNs != 2_000_000 {
		t.Fatalf("graft durations changed: %d, %d", g.DurNs, g.Children[0].DurNs)
	}
}

// TestConcurrentSpans: spans of one trace are built from many goroutines
// (the shard fan-out path); run under -race this pins the locking.
func TestConcurrentSpans(t *testing.T) {
	c := NewCollector(8, 4)
	tr := c.StartTrace("estimate")
	ex := tr.StartSpan("execute")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := ex.StartChild("shard")
			sp.SetAttr("index", i)
			sp.Graft(&Span{Name: "worker"})
			sp.End()
		}(i)
	}
	wg.Wait()
	ex.End()
	tr.Finish()
	if len(ex.Children) != 32 {
		t.Fatalf("lost spans under concurrency: %d", len(ex.Children))
	}
}

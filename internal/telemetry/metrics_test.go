package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"

	"faultcast/internal/hist"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.", func(emit func([]Label, float64)) {
		emit([]Label{{"endpoint", "estimate"}}, 40)
		emit([]Label{{"endpoint", "sweep"}}, 2)
	})
	r.Gauge("test_inflight", "Currently executing.", func(emit func([]Label, float64)) {
		emit(nil, 3)
	})
	r.Counter("test_empty_total", "Always registered, no samples when the subsystem is off.", func(emit func([]Label, float64)) {})
	return r
}

// TestWriteTextParseRoundTrip is the load-bearing property of the whole
// metrics surface: whatever WriteText emits, ParseText must accept, and
// the values must survive — the same pair backs /metrics, faultcastctl,
// and the CI metrics-smoke gate.
func TestWriteTextParseRoundTrip(t *testing.T) {
	r := testRegistry()
	var h hist.Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	r.Histogram("test_duration_seconds", "Request latency.", func(emit func([]Label, hist.Snapshot)) {
		emit([]Label{{"endpoint", "estimate"}}, h.Snapshot())
	})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	m, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("WriteText output does not parse: %v\n%s", err, text)
	}

	if v, ok := m.Value("test_requests_total", map[string]string{"endpoint": "estimate"}); !ok || v != 40 {
		t.Fatalf("estimate counter = %v, %v", v, ok)
	}
	if got := m.Sum("test_requests_total"); got != 42 {
		t.Fatalf("Sum = %v, want 42", got)
	}
	if v, ok := m.Value("test_inflight", nil); !ok || v != 3 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	// Histogram components: +Inf bucket and _count equal the observation
	// count; _sum is the total in seconds.
	if v, ok := m.Value("test_duration_seconds_bucket", map[string]string{"endpoint": "estimate", "le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
	if v, ok := m.Value("test_duration_seconds_count", map[string]string{"endpoint": "estimate"}); !ok || v != 3 {
		t.Fatalf("_count = %v, %v", v, ok)
	}
	sum, ok := m.Value("test_duration_seconds_sum", map[string]string{"endpoint": "estimate"})
	if !ok || math.Abs(sum-0.0431) > 1e-6 {
		t.Fatalf("_sum = %v s", sum)
	}

	// An empty-but-registered family still declares HELP/TYPE — the
	// ledger must not depend on which subsystems are live.
	if m.Types["test_empty_total"] != "counter" {
		t.Fatalf("empty family undeclared: %v", m.Types)
	}
	wantLedger := []string{
		"test_duration_seconds histogram",
		"test_empty_total counter",
		"test_inflight gauge",
		"test_requests_total counter",
	}
	reg, scrape := r.Names(), m.Families()
	for i := range wantLedger {
		if reg[i] != wantLedger[i] || scrape[i] != wantLedger[i] {
			t.Fatalf("ledger drift:\nregistry %v\nscrape   %v\nwant     %v", reg, scrape, wantLedger)
		}
	}

	// Two scrapes of the same state are byte-identical (determinism of
	// the renderer; the goldens depend on it).
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Fatal("WriteText is not deterministic for identical state")
	}
}

func TestRegistryRejectsBadRegistration(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("ok_total", "", func(emit func([]Label, float64)) {})
	mustPanic("duplicate", func() {
		r.Counter("ok_total", "", func(emit func([]Label, float64)) {})
	})
	mustPanic("bad name", func() {
		r.Counter("7starts_with_digit", "", func(emit func([]Label, float64)) {})
	})
	mustPanic("bad chars", func() {
		r.Gauge("has-dash", "", func(emit func([]Label, float64)) {})
	})
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ and\nnewline", func(emit func([]Label, float64)) {
		emit([]Label{{"worker", `http://h:1/"q"` + "\n\\"}}, 1)
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, sb.String())
	}
	if v, ok := m.Value("esc_total", map[string]string{"worker": `http://h:1/"q"` + "\n\\"}); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %v %v\n%s", v, ok, sb.String())
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "orphan_total 3\n",
		"bad value":        "# TYPE x counter\nx pancake\n",
		"duplicate series": "# TYPE x counter\nx 1\nx 2\n",
		"bad label block":  "# TYPE x counter\nx{oops 1\n",
		"bad type":         "# TYPE x sandwich\nx 1\n",
		"duplicate TYPE":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
	// Standard variations WriteText never emits must still parse: bare
	// comments, timestamps, Inf/NaN values.
	ok := "# just a comment\n# TYPE x counter\nx{a=\"b\"} 4 1700000000000\n# TYPE y gauge\ny +Inf\n"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Fatalf("standard variation rejected: %v", err)
	}
}

func TestDelta(t *testing.T) {
	parse := func(s string) *Metrics {
		m, err := ParseText(strings.NewReader(s))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	before := parse("# TYPE a counter\na{e=\"x\"} 10\n# TYPE g gauge\ng 5\n")
	after := parse("# TYPE a counter\na{e=\"x\"} 15\na{e=\"y\"} 3\n# TYPE g gauge\ng 9\n")
	d := Delta(before, after)
	if d[`a{e="x"}`] != 5 || d[`a{e="y"}`] != 3 {
		t.Fatalf("delta: %v", d)
	}
	// Gauges are skipped; unchanged counters are omitted.
	if _, ok := d["g"]; ok {
		t.Fatalf("gauge leaked into delta: %v", d)
	}
	if len(d) != 2 {
		t.Fatalf("extra deltas: %v", d)
	}
	// nil before counts from zero.
	d0 := Delta(nil, after)
	if d0[`a{e="x"}`] != 15 {
		t.Fatalf("nil-before delta: %v", d0)
	}
}

// TestHistogramQuantileWindow: quantiles over a scrape window come from
// bucket deltas — observations before the window must not drag the
// estimate down.
func TestHistogramQuantileWindow(t *testing.T) {
	render := func(h *hist.Histogram) *Metrics {
		r := NewRegistry()
		r.Histogram("lat_seconds", "", func(emit func([]Label, hist.Snapshot)) {
			emit([]Label{{"endpoint", "estimate"}}, h.Snapshot())
		})
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		m, err := ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	var h hist.Histogram
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond) // fast era
	}
	before := render(&h)
	for i := 0; i < 100; i++ {
		h.Observe(50 * time.Millisecond) // slow era
	}
	after := render(&h)

	sel := map[string]string{"endpoint": "estimate"}
	// All-time p50 sits between the eras; the windowed p50 must be slow.
	windowed, ok := HistogramQuantile(before, after, "lat_seconds", sel, 0.5)
	if !ok || windowed < 0.03 {
		t.Fatalf("windowed p50 = %v s, %v — window ignored the era split", windowed, ok)
	}
	alltime, ok := HistogramQuantile(nil, after, "lat_seconds", sel, 0.5)
	if !ok || alltime >= windowed {
		t.Fatalf("all-time p50 %v should sit below windowed %v", alltime, windowed)
	}
	// An empty window reports no observations.
	if _, ok := HistogramQuantile(after, after, "lat_seconds", sel, 0.95); ok {
		t.Fatal("empty window produced a quantile")
	}
	// Selecting a missing series reports no observations.
	if _, ok := HistogramQuantile(before, after, "lat_seconds", map[string]string{"endpoint": "nope"}, 0.5); ok {
		t.Fatal("missing series produced a quantile")
	}
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"faultcast/internal/hist"
)

// Label is one Prometheus label pair. Emitters pass labels in a fixed
// order; the renderer preserves it (per-family orders are already
// consistent at every call site, and Prometheus treats label order as
// insignificant).
type Label struct {
	Name  string
	Value string
}

// family is one registered metric family. Exactly one of collect /
// collectHist is set, matching kind.
type family struct {
	name        string
	help        string
	kind        string // "counter", "gauge", or "histogram"
	collect     func(emit func(labels []Label, v float64))
	collectHist func(emit func(labels []Label, s hist.Snapshot))
}

// Registry renders registered metric families in Prometheus text
// exposition format. Families are registered once at server construction
// with read callbacks over live counters, so a scrape always reflects
// the same atomics /v1/stats reads — the registry holds no state of its
// own and WriteText is just "call every callback, print sorted".
//
// Metric names are API: the committed metrics_names.txt ledger pins the
// full family set, and CI fails if a scrape's families drift from it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers a cumulative metric family. collect is invoked on
// every scrape and must emit each labeled series exactly once. Panics on
// a duplicate or invalid name (registration is programmer-controlled).
func (r *Registry) Counter(name, help string, collect func(emit func(labels []Label, v float64))) {
	r.register(&family{name: name, help: help, kind: "counter", collect: collect})
}

// Gauge registers an instantaneous-value family.
func (r *Registry) Gauge(name, help string, collect func(emit func(labels []Label, v float64))) {
	r.register(&family{name: name, help: help, kind: "gauge", collect: collect})
}

// Histogram registers a latency family rendered from hist snapshots:
// cumulative one-per-octave buckets in seconds plus _sum and _count.
func (r *Registry) Histogram(name, help string, collect func(emit func(labels []Label, s hist.Snapshot))) {
	r.register(&family{name: name, help: help, kind: "histogram", collectHist: collect})
}

func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric family %q", f.name))
	}
	r.families[f.name] = f
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Names returns the stability ledger: one "name kind" line per family,
// sorted — the exact content of metrics_names.txt.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name+" "+f.kind)
	}
	sort.Strings(out)
	return out
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4), families sorted by name, series sorted by label
// string — a byte-deterministic function of the collected values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.kind == "histogram" {
			writeHistFamily(&b, f)
			continue
		}
		var lines []string
		f.collect(func(labels []Label, v float64) {
			lines = append(lines, f.name+renderLabels(labels)+" "+formatValue(v))
		})
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistFamily(b *strings.Builder, f *family) {
	bounds := hist.OctaveBounds()
	type series struct {
		key  string
		text string
	}
	var all []series
	f.collectHist(func(labels []Label, s hist.Snapshot) {
		var sb strings.Builder
		cum := s.CumulativeOctaves()
		for i, edge := range bounds {
			le := append(append([]Label{}, labels...), Label{"le", formatValue(edge)})
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, renderLabels(le), cum[i])
		}
		inf := append(append([]Label{}, labels...), Label{"le", "+Inf"})
		fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, renderLabels(inf), s.Count)
		fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, renderLabels(labels), formatValue(s.Sum.Seconds()))
		fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, renderLabels(labels), s.Count)
		all = append(all, series{key: renderLabels(labels), text: sb.String()})
	})
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	for _, s := range all {
		b.WriteString(s.text)
	}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

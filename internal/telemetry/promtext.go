package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the metrics surface: a minimal
// Prometheus text-format (0.0.4) parser used by `faultcastctl metrics`
// and `stats -watch`, by `bench` to record /metrics deltas into
// BENCH_service.json, and by the CI metrics-smoke assertion that a
// scrape actually parses. It accepts the subset WriteText emits plus
// standard variations (bare comments, optional timestamps), and rejects
// structural errors: bad names, unparseable values, duplicate series,
// samples with no TYPE declaration.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is one parsed scrape.
type Metrics struct {
	Help    map[string]string
	Types   map[string]string // family name -> counter|gauge|histogram|summary|untyped
	Samples []Sample
	index   map[string]int // canonical series key -> Samples index
}

// ParseText parses a Prometheus text-format scrape.
func ParseText(r io.Reader) (*Metrics, error) {
	m := &Metrics{
		Help:  make(map[string]string),
		Types: make(map[string]string),
		index: make(map[string]int),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := m.parseSample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Metrics) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q in %s", name, fields[1])
	}
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			m.Help[name] = fields[3]
		} else {
			m.Help[name] = ""
		}
		return nil
	}
	if len(fields) != 4 {
		return fmt.Errorf("TYPE line for %q missing type", name)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown metric type %q for %q", fields[3], name)
	}
	if _, dup := m.Types[name]; dup {
		return fmt.Errorf("duplicate TYPE for %q", name)
	}
	m.Types[name] = fields[3]
	return nil
}

func (m *Metrics) parseSample(line string) error {
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	name := line[:i]
	if name == "" {
		return fmt.Errorf("sample line does not start with a metric name: %q", line)
	}
	labels := map[string]string{}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, labels)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return fmt.Errorf("%s: expected value after series, got %q", name, rest)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return fmt.Errorf("%s: bad value %q", name, fields[0])
	}
	if _, ok := m.Types[familyOf(m.Types, name)]; !ok {
		return fmt.Errorf("sample %q has no preceding TYPE declaration", name)
	}
	key := seriesKey(name, labels)
	if _, dup := m.index[key]; dup {
		return fmt.Errorf("duplicate series %s", key)
	}
	m.index[key] = len(m.Samples)
	m.Samples = append(m.Samples, Sample{Name: name, Labels: labels, Value: v})
	return nil
}

func isNameChar(c byte, pos int) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(pos > 0 && c >= '0' && c <= '9')
}

// parseLabels parses a {k="v",...} block at the start of s into out and
// returns the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i-start) {
			i++
		}
		key := s[start:i]
		if key == "" || i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("malformed label block %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		out[key] = val.String()
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf maps a sample name to its declaring family: histogram
// component samples (_bucket/_sum/_count) belong to the base name when
// that base is a declared histogram.
func familyOf(types map[string]string, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t, declared := types[base]; declared && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Families returns the sorted "name kind" ledger lines of the scrape —
// directly comparable with Registry.Names and metrics_names.txt.
func (m *Metrics) Families() []string {
	out := make([]string, 0, len(m.Types))
	for name, kind := range m.Types {
		out = append(out, name+" "+kind)
	}
	sort.Strings(out)
	return out
}

// Value looks up one series by exact name and label set.
func (m *Metrics) Value(name string, labels map[string]string) (float64, bool) {
	i, ok := m.index[seriesKey(name, labels)]
	if !ok {
		return 0, false
	}
	return m.Samples[i].Value, true
}

// Sum adds every sample with exactly the given name (all label sets) —
// e.g. Sum("faultcast_api_requests_total") across endpoints.
func (m *Metrics) Sum(name string) float64 {
	var total float64
	for _, s := range m.Samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// Delta returns after-minus-before for every cumulative series (samples
// of counter and histogram families), keyed by canonical series string,
// omitting zero deltas. Series absent from before count from zero;
// gauges are skipped (an instantaneous value has no meaningful delta).
func Delta(before, after *Metrics) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range after.Samples {
		fam := familyOf(after.Types, s.Name)
		switch after.Types[fam] {
		case "counter", "histogram":
		default:
			continue
		}
		key := seriesKey(s.Name, s.Labels)
		var prev float64
		if before != nil {
			if i, ok := before.index[key]; ok {
				prev = before.Samples[i].Value
			}
		}
		if d := s.Value - prev; d != 0 {
			out[key] = d
		}
	}
	return out
}

// HistogramQuantile estimates the q-th quantile in seconds over the
// scrape window [before, after] for the histogram family fam, selecting
// the series whose non-le labels equal sel exactly. Pass before == nil
// for an all-time quantile. Returns ok=false when the window holds no
// observations.
func HistogramQuantile(before, after *Metrics, fam string, sel map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range after.Samples {
		if s.Name != fam+"_bucket" || !labelsMatch(s.Labels, sel) {
			continue
		}
		le, err := parseFloat(s.Labels["le"])
		if err != nil {
			continue
		}
		cum := s.Value
		if before != nil {
			if i, ok := before.index[seriesKey(s.Name, s.Labels)]; ok {
				cum -= before.Samples[i].Value
			}
		}
		buckets = append(buckets, bucket{le: le, cum: cum})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevLe, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				// No finite upper edge: report the last finite bound.
				return prevLe, true
			}
			frac := 0.0
			if b.cum > prevCum {
				frac = (rank - prevCum) / (b.cum - prevCum)
			}
			return prevLe + frac*(b.le-prevLe), true
		}
		if !math.IsInf(b.le, 1) {
			prevLe = b.le
		}
		prevCum = b.cum
	}
	return prevLe, true
}

// labelsMatch reports whether the sample's labels minus "le" equal sel
// exactly (nil sel matches only an unlabeled series).
func labelsMatch(labels, sel map[string]string) bool {
	n := 0
	for k, v := range labels {
		if k == "le" {
			continue
		}
		if sel[k] != v {
			return false
		}
		n++
	}
	return n == len(sel)
}

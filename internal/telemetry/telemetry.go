// Package telemetry provides the observability spine shared by every
// layer of faultcast: lightweight request tracing (Span trees collected
// into a bounded ring, propagated to cluster workers over the
// X-Faultcast-Trace header) and a dependency-free Prometheus-text-format
// metrics registry that re-expresses the service's counters and
// internal/hist latency histograms under stable names.
//
// Tracing is ~zero-cost when disabled: every method on Span and Trace is
// nil-safe, so call sites thread a possibly-nil *Span unconditionally and
// a disabled server pays one nil check per would-be span. Observation is
// strictly passive — spans record wall-clock timing and annotations, and
// never feed back into seeds, stop decisions, or tallies, so a traced
// execution is bit-identical to an untraced one.
package telemetry

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// TraceHeader carries a trace ID across the HTTP boundary: a coordinator
// dispatching shards sets it on POST /v1/shard, and the worker answers
// with its own span subtree (ShardResponse.Trace) for the coordinator to
// graft under the dispatch span — one coherent tree per distributed
// sweep.
const TraceHeader = "X-Faultcast-Trace"

// Attr is one key/value annotation on a span. Values are pre-rendered to
// strings so span trees marshal deterministically and survive the wire
// round-trip to workers untyped.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of a trace. StartNs is the offset from the
// owning trace's start (not wall clock), DurNs the region's duration;
// both are nanoseconds. Spans decoded from the wire are detached (no
// owning trace) and serve as plain data for Graft.
//
// All methods are nil-safe no-ops on a nil receiver, so disabled tracing
// costs only the nil checks.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	tr    *Trace    // owning trace; nil when detached (wire-decoded)
	began time.Time // wall-clock start, for End
}

// StartChild opens a child span under s. The child must be closed with
// End. Safe for concurrent use with other spans of the same trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	return s.tr.newSpan(s, name)
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	d := time.Since(s.began).Nanoseconds()
	s.tr.mu.Lock()
	if s.DurNs == 0 {
		s.DurNs = d
	}
	s.tr.mu.Unlock()
}

// SetAttr annotates the span. Values render to strings: durations via
// Duration.String, numbers in decimal, everything else via fmt.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.tr == nil {
		return
	}
	a := Attr{Key: key, Value: formatAttr(value)}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, a)
	s.tr.mu.Unlock()
}

// TraceID returns the owning trace's ID, or "" for nil/detached spans.
// Dispatchers use this to decide whether to propagate TraceHeader.
func (s *Span) TraceID() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.id
}

// Graft attaches a detached span subtree (typically decoded from a
// worker's ShardResponse) as a child of s, rebasing the subtree's
// offsets so the worker's work appears to start when the dispatch span
// started. Cross-host clock skew is not corrected — worker-side
// durations are authoritative, offsets are best-effort alignment.
func (s *Span) Graft(child *Span) {
	if s == nil || s.tr == nil || child == nil {
		return
	}
	s.tr.mu.Lock()
	rebase(child, s.StartNs)
	s.Children = append(s.Children, child)
	s.tr.mu.Unlock()
}

func rebase(sp *Span, off int64) {
	sp.StartNs += off
	for _, c := range sp.Children {
		rebase(c, off)
	}
}

func formatAttr(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case time.Duration:
		return x.String()
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(v)
	}
}

// Trace is one request's span tree. Created by Collector.StartTrace,
// sealed by Finish (which files it into the collector's ring). Nil-safe
// like Span, for the disabled-tracing path.
type Trace struct {
	id    string
	name  string
	start time.Time
	root  *Span
	c     *Collector

	// mu guards every span of this trace (tree shape, attrs, durations):
	// span creation is rare relative to the work being traced, so one
	// trace-wide lock beats per-span locks.
	mu       sync.Mutex
	finished bool
}

// ID returns the trace's collector-unique ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a new top-level child of the root. Equivalent to
// t.Root().StartChild(name), kept for call-site brevity.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(t.root, name)
}

func (t *Trace) newSpan(parent *Span, name string) *Span {
	now := time.Now()
	sp := &Span{
		Name:    name,
		StartNs: now.Sub(t.start).Nanoseconds(),
		tr:      t,
		began:   now,
	}
	t.mu.Lock()
	parent.Children = append(parent.Children, sp)
	t.mu.Unlock()
	return sp
}

// Finish seals the trace (root duration = time since start) and files it
// into the collector's ring and slowest index. Finishing twice is safe —
// the second call is a no-op — so handlers can Finish explicitly before
// marshaling a span tree to the wire and still keep a deferred Finish as
// the error-path backstop.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	d := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	if t.root.DurNs == 0 {
		t.root.DurNs = d
	}
	t.mu.Unlock()
	if t.c != nil {
		t.c.add(t)
	}
}

// Export renders the trace for GET /v1/trace/{id}.
func (t *Trace) Export() TraceJSON {
	return TraceJSON{
		ID:         t.id,
		Name:       t.name,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMs: float64(t.root.DurNs) / 1e6,
		Root:       t.root,
	}
}

// TraceJSON is the wire rendering of one finished trace.
type TraceJSON struct {
	ID         string  `json:"trace_id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"duration_ms"`
	Root       *Span   `json:"root"`
}

// Summary is one line of the trace index.
type Summary struct {
	ID         string  `json:"trace_id"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"duration_ms"`
}

// Index is the GET /v1/trace listing: the most recent traces (newest
// first) and the slowest ones retained beyond ring eviction.
type Index struct {
	Started  uint64    `json:"traces_started"`
	Finished uint64    `json:"traces_finished"`
	Capacity int       `json:"ring_capacity"`
	Recent   []Summary `json:"recent"`
	Slowest  []Summary `json:"slowest"`
}

// Collector retains finished traces in a bounded FIFO ring plus a
// slowest-N index that survives ring eviction — so the one pathological
// sweep from an hour ago is still retrievable after thousands of fast
// estimates have rotated through. A nil *Collector disables tracing:
// StartTrace returns a nil *Trace and every downstream span call no-ops.
type Collector struct {
	mu       sync.Mutex
	cap      int
	slowCap  int
	seq      uint64
	prefix   string
	started  uint64
	finished uint64
	ring     []*Trace // oldest first
	slowest  []*Trace // longest first
	byID     map[string]*Trace
}

// NewCollector builds a collector retaining ringSize recent traces
// (default 256 when <= 0) and slowSize slowest traces (default 16).
func NewCollector(ringSize, slowSize int) *Collector {
	if ringSize <= 0 {
		ringSize = 256
	}
	if slowSize <= 0 {
		slowSize = 16
	}
	return &Collector{
		cap:     ringSize,
		slowCap: slowSize,
		// The prefix distinguishes restarts, so a stale trace_id from a
		// previous process can never resolve to the wrong trace.
		prefix: strconv.FormatInt(time.Now().UnixMilli(), 36),
		byID:   make(map[string]*Trace),
	}
}

// StartTrace opens a new trace. IDs come from a process-local counter
// (no randomness: trace allocation must never touch any entropy source a
// simulation seed could observe). Returns nil on a nil collector.
func (c *Collector) StartTrace(name string) *Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.seq++
	c.started++
	id := fmt.Sprintf("%s-%06d", c.prefix, c.seq)
	c.mu.Unlock()
	now := time.Now()
	t := &Trace{id: id, name: name, start: now, c: c}
	t.root = &Span{Name: name, tr: t, began: now}
	return t
}

func (c *Collector) add(t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finished++
	c.byID[t.id] = t

	c.ring = append(c.ring, t)
	if len(c.ring) > c.cap {
		evicted := c.ring[0]
		copy(c.ring, c.ring[1:])
		c.ring = c.ring[:len(c.ring)-1]
		if !contains(c.slowest, evicted) {
			delete(c.byID, evicted.id)
		}
	}

	// Insert into the slowest index (longest first, stable for ties so
	// the earlier trace wins), dropping the fastest over capacity.
	pos := len(c.slowest)
	for pos > 0 && c.slowest[pos-1].root.DurNs < t.root.DurNs {
		pos--
	}
	c.slowest = append(c.slowest, nil)
	copy(c.slowest[pos+1:], c.slowest[pos:])
	c.slowest[pos] = t
	if len(c.slowest) > c.slowCap {
		dropped := c.slowest[len(c.slowest)-1]
		c.slowest = c.slowest[:len(c.slowest)-1]
		if dropped != t && !contains(c.ring, dropped) {
			delete(c.byID, dropped.id)
		}
	}
}

func contains(list []*Trace, t *Trace) bool {
	for _, x := range list {
		if x == t {
			return true
		}
	}
	return false
}

// Get returns the finished trace with the given ID, if still retained.
func (c *Collector) Get(id string) (*Trace, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byID[id]
	return t, ok
}

// Started reports how many traces have been opened — the
// faultcast_traces_total counter.
func (c *Collector) Started() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// Index lists retained traces: Recent newest-first, Slowest
// longest-first.
func (c *Collector) Index() Index {
	if c == nil {
		return Index{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := Index{
		Started:  c.started,
		Finished: c.finished,
		Capacity: c.cap,
		Recent:   make([]Summary, 0, len(c.ring)),
		Slowest:  make([]Summary, 0, len(c.slowest)),
	}
	for i := len(c.ring) - 1; i >= 0; i-- {
		idx.Recent = append(idx.Recent, summarize(c.ring[i]))
	}
	for _, t := range c.slowest {
		idx.Slowest = append(idx.Slowest, summarize(t))
	}
	return idx
}

func summarize(t *Trace) Summary {
	return Summary{
		ID:         t.id,
		Name:       t.name,
		Start:      t.start.UTC().Format(time.RFC3339Nano),
		DurationMs: float64(t.root.DurNs) / 1e6,
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faultcast"
	"faultcast/internal/exec"
	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
)

// Options tunes a Coordinator. The zero value gets sensible defaults.
type Options struct {
	// ShardTrials is the trial count per dispatched shard (default 512).
	// For each cell it is rounded up to a multiple of the cell's stop-rule
	// batch so shard boundaries coincide with batch boundaries — the
	// alignment the determinism replay requires. Smaller shards spread
	// load finer and waste less speculative work past an early stop;
	// larger shards amortize per-request overhead.
	ShardTrials int
	// WorkerInflight bounds concurrently dispatched shards per worker
	// (default 2: one executing, one queued behind it).
	WorkerInflight int
	// CellConcurrency bounds cells dispatched at once (default
	// workers × WorkerInflight, min 1) so one sweep's early cells fill the
	// fleet without flooding it with every cell's first shard.
	CellConcurrency int
	// FailAfter is the consecutive-failure count that marks a worker down
	// (default 3); DownFor is how long a down worker is skipped before
	// being probed again (default 15s). Every failure already re-routes
	// the failed shard immediately — health only steers future picks.
	FailAfter int
	DownFor   time.Duration
	// LocalWorkers is the goroutine count for shards that fail over to
	// local execution (default GOMAXPROCS).
	LocalWorkers int
	// HTTPClient overrides the shard transport (default: 2min timeout).
	HTTPClient *http.Client
	// Now is the clock, overridable by health tests (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ShardTrials <= 0 {
		o.ShardTrials = 512
	}
	if o.WorkerInflight <= 0 {
		o.WorkerInflight = 2
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.DownFor <= 0 {
		o.DownFor = 15 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Coordinator fans estimation cells out across remote faultcastd workers
// as fixed-size shards, merges their per-batch tallies, and replays each
// cell's stopping rule over the merged prefixes. It implements
// exec.Dispatcher, so Plan.Estimate and SweepPlan.Run accept it wherever
// they accept the in-process pool — with bit-identical results, because
// stop decisions are a pure replay of the same batch sequence.
//
// Failure handling is transparent: a failed shard is retried on each
// remaining eligible worker once, then executed locally (the coordinator
// holds the compiled plan, so failover needs no wire); workers that fail
// repeatedly are marked down and probed again after a cooldown. Create
// with New; all methods are safe for concurrent use.
type Coordinator struct {
	opts    Options
	mu      sync.Mutex
	cond    *sync.Cond
	workers []*worker
	rr      int // round-robin pick offset

	cells      atomic.Uint64
	dispatched atomic.Uint64
	retried    atomic.Uint64
	failovers  atomic.Uint64
	localCells atomic.Uint64
}

// worker is the coordinator-private state of one remote; all fields are
// guarded by Coordinator.mu.
type worker struct {
	url           string
	inflight      int
	consecFails   int
	downUntil     time.Time
	shardsOK      uint64
	shardsFailed  uint64
	trials        uint64
	planCacheHits uint64
	planCompiles  uint64
	lastErr       string
}

// New returns a Coordinator over the given worker base URLs (e.g.
// "http://10.0.0.7:8347"). URLs are used as-is apart from a trailing
// slash trim; an empty list is legal — every shard then fails over to
// local execution, which keeps a coordinator correct (if pointless) with
// a fully lost fleet.
func New(urls []string, opts Options) *Coordinator {
	c := &Coordinator{opts: opts.withDefaults()}
	c.cond = sync.NewCond(&c.mu)
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		c.workers = append(c.workers, &worker{url: u})
	}
	return c
}

// Run implements exec.Dispatcher with exec.Run's exact semantics: onDone
// once per completed cell, serialized, in completion order; on ctx
// cancellation undecided cells are abandoned unreported and ctx.Err() is
// returned. The workers argument (the in-process pool size) only affects
// cells and shards that execute locally — remote capacity is bounded by
// WorkerInflight per worker instead.
func (c *Coordinator) Run(ctx context.Context, workers int, cells []exec.Cell, onDone func(i int, p stat.Proportion)) error {
	if len(cells) == 0 {
		return ctx.Err()
	}
	// Wake slot waiters when the caller cancels (broadcast under mu, so no
	// waiter can slip into Wait between the cancel and the broadcast).
	if ctx.Done() != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-stopWatch:
			}
		}()
	}
	concurrency := c.opts.CellConcurrency
	if concurrency <= 0 {
		concurrency = len(c.workers) * c.opts.WorkerInflight
	}
	if concurrency < 1 {
		concurrency = 1
	}
	sem := make(chan struct{}, concurrency)
	var emitMu sync.Mutex
	var abandoned atomic.Int64
	var wg sync.WaitGroup
	for i := range cells {
		cell := &cells[i]
		start := stat.Proportion{Successes: cell.Start.Successes, Trials: cell.Start.Trials}
		if start.Trials >= cell.MaxTrials || (cell.Rule.Enabled() && cell.Rule.Done(start)) {
			emitMu.Lock()
			onDone(i, start)
			emitMu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, cell *exec.Cell) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				abandoned.Add(1)
				return
			}
			defer func() { <-sem }()
			p, ok := c.runCell(ctx, workers, cell)
			if !ok {
				abandoned.Add(1)
				return
			}
			emitMu.Lock()
			onDone(i, p)
			emitMu.Unlock()
		}(i, cell)
	}
	wg.Wait()
	if abandoned.Load() > 0 {
		return ctx.Err()
	}
	return nil
}

// shardRes carries one shard's outcome back to the cell's merge loop; err
// is only ever a context error (remote failures are handled inside the
// dispatch by retry and local failover, which cannot fail).
type shardRes struct {
	index int
	tally stat.Tally
	err   error
}

// runCell drives one cell: split into shards, dispatch with a bounded
// speculation window, replay the stopping rule over the contiguous merged
// prefix, cancel the rest once decided. Returns ok=false only when ctx
// was cancelled before the cell decided.
func (c *Coordinator) runCell(ctx context.Context, poolWorkers int, cell *exec.Cell) (stat.Proportion, bool) {
	cfg, haveWire := cell.Scenario.(faultcast.Config)
	var template ShardRequest
	if haveWire {
		var err error
		if template, err = NewShardRequest(cfg); err != nil {
			haveWire = false
		}
	}
	if !haveWire || len(c.workers) == 0 {
		// No wire form (or no fleet): the whole cell runs in process, on
		// the same scheduler a Local dispatcher would use — bit-identical
		// by the exec determinism contract.
		c.localCells.Add(1)
		var p stat.Proportion
		decided := false
		err := exec.Run(ctx, poolWorkers, []exec.Cell{*cell}, func(_ int, got stat.Proportion) { p = got; decided = true })
		return p, err == nil && decided
	}
	c.cells.Add(1)

	rule := cell.Rule
	batch := 0
	if rule.Enabled() {
		batch = rule.Batch
		if batch <= 0 {
			batch = 32
		}
	} else if cell.Bucket > 0 {
		// Un-ruled but observed (a tally store is recording): bucket at
		// the requested granularity so the persisted decomposition
		// matches a local run's, at a modest wire cost.
		batch = cell.Bucket
	}
	shardTrials := c.opts.ShardTrials
	if batch > 0 {
		if rem := shardTrials % batch; rem != 0 {
			shardTrials += batch - rem
		}
	} else {
		// No stopping rule: no intra-shard decisions to replay, so one
		// bucket per shard keeps the wire minimal.
		batch = shardTrials
	}
	start := stat.Proportion{Successes: cell.Start.Successes, Trials: cell.Start.Trials}
	total := cell.MaxTrials - start.Trials
	nShards := (total + shardTrials - 1) / shardTrials

	// Cancel outstanding dispatches the moment the replay decides; the
	// broadcast releases any dispatcher waiting for a worker slot.
	cctx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	window := len(c.workers)*c.opts.WorkerInflight + 1 // +1 keeps a shard ready when a slot frees
	resCh := make(chan shardRes, nShards)
	tallies := make([]*stat.Tally, nShards)
	run := start
	next, contig, inflight := 0, 0, 0
	for contig < nShards {
		for inflight < window && next < nShards {
			first := start.Trials + next*shardTrials
			n := min(shardTrials, cell.MaxTrials-first)
			req := template
			req.Index = next
			req.BaseSeed = cell.BaseSeed + uint64(first)
			req.Trials = n
			req.Batch = min(batch, n)
			go c.dispatchShard(cctx, req, cell.Trace, cell.NewTrial, resCh)
			next++
			inflight++
		}
		r := <-resCh
		inflight--
		if r.err != nil {
			return stat.Proportion{}, false
		}
		tallies[r.index] = &r.tally
		for contig < nShards && tallies[contig] != nil {
			// Inlined stat.Replay, bucket by bucket, so OnBatch observes
			// exactly the consumed buckets — the deciding one included,
			// the discarded speculation past it excluded — in the same
			// trial order a local fold would report them.
			t := tallies[contig]
			for i, succ := range t.Successes {
				size := t.Batch
				if last := t.Trials - i*t.Batch; last < size {
					size = last
				}
				run.Trials += size
				run.Successes += succ
				if cell.OnBatch != nil {
					cell.OnBatch(size, succ)
				}
				if run.Trials >= cell.MaxTrials || (rule.Enabled() && rule.Done(run)) {
					return run, true
				}
			}
			contig++
		}
	}
	// Unreachable in practice: consuming every shard reaches MaxTrials,
	// which Replay reports as done. Kept as a safe landing for a zero-total
	// cell slipping through.
	return run, true
}

// dispatchShard executes one shard somewhere: each eligible worker is
// tried at most once, failures re-route immediately, and when no worker
// remains (all tried, down, or the fleet is empty) the shard runs locally
// on the cell's own trial maker — bit-identical, since a tally is a pure
// function of the shard spec.
//
// When the cell carries a trace span, the shard gets one "shard" child
// recording its trial range, the worker that finally answered (or
// "local"), the retry count, and — grafted in — the worker's own span
// tree from the ShardResponse.
func (c *Coordinator) dispatchShard(ctx context.Context, req ShardRequest, parent *telemetry.Span, newTrial stat.TrialMaker, resCh chan<- shardRes) {
	sp := parent.StartChild("shard")
	sp.SetAttr("index", req.Index)
	sp.SetAttr("trials", req.Trials)
	defer sp.End()
	retries := 0
	tried := make(map[*worker]bool)
	for {
		if ctx.Err() != nil {
			resCh <- shardRes{index: req.Index, err: ctx.Err()}
			return
		}
		w := c.acquire(ctx, tried)
		if w == nil {
			break // no eligible worker — fall over to local execution
		}
		c.dispatched.Add(1)
		resp, err := c.post(ctx, w, req, sp.TraceID())
		// A post that died because the cell was decided (or the caller
		// cancelled) says nothing about the worker's health — don't let
		// early-stop cancellations bench a healthy fleet.
		cancelled := err != nil && ctx.Err() != nil
		c.settle(w, req, resp, err, cancelled)
		if err == nil {
			sp.SetAttr("worker", w.url)
			if retries > 0 {
				sp.SetAttr("retries", retries)
			}
			sp.Graft(resp.Trace)
			resCh <- shardRes{index: req.Index, tally: resp.Tally()}
			return
		}
		tried[w] = true
		if ctx.Err() == nil {
			c.retried.Add(1)
			retries++
		}
	}
	if ctx.Err() != nil {
		resCh <- shardRes{index: req.Index, err: ctx.Err()}
		return
	}
	c.failovers.Add(1)
	sp.SetAttr("worker", "local")
	if retries > 0 {
		sp.SetAttr("retries", retries)
	}
	resCh <- shardRes{index: req.Index, tally: exec.RunShard(c.opts.LocalWorkers, req.BaseSeed, req.Trials, req.Batch, newTrial)}
}

// acquire picks an eligible worker — not yet tried for this shard, not
// marked down, with a free inflight slot — preferring the least loaded
// from a rotating offset. It blocks while eligible workers exist but are
// all at capacity, and returns nil when none remains (or ctx ends).
func (c *Coordinator) acquire(ctx context.Context, tried map[*worker]bool) *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil
		}
		now := c.opts.Now()
		eligible := false
		var pick *worker
		n := len(c.workers)
		for k := 0; k < n; k++ {
			w := c.workers[(c.rr+k)%n]
			if tried[w] || now.Before(w.downUntil) {
				continue
			}
			eligible = true
			if w.inflight < c.opts.WorkerInflight && (pick == nil || w.inflight < pick.inflight) {
				pick = w
			}
		}
		if pick != nil {
			pick.inflight++
			c.rr++
			return pick
		}
		if !eligible {
			return nil
		}
		c.cond.Wait()
	}
}

// settle releases the worker's slot and folds the shard outcome into its
// health and counters. A cancelled post only releases the slot — it is
// the dispatcher's doing, not the worker's.
func (c *Coordinator) settle(w *worker, req ShardRequest, resp *ShardResponse, err error, cancelled bool) {
	c.mu.Lock()
	defer func() {
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	w.inflight--
	if cancelled {
		return
	}
	if err != nil {
		w.shardsFailed++
		w.consecFails++
		w.lastErr = err.Error()
		if w.consecFails >= c.opts.FailAfter {
			w.downUntil = c.opts.Now().Add(c.opts.DownFor)
		}
		return
	}
	w.shardsOK++
	w.consecFails = 0
	w.downUntil = time.Time{}
	w.trials += uint64(req.Trials)
	if resp.PlanSource == "cache" {
		w.planCacheHits++
	} else {
		w.planCompiles++
	}
}

// post ships one shard to one worker and validates the answer. Any
// transport error, non-200 status (including 429 backpressure and 503
// drain), or malformed tally is a dispatch failure — the caller re-routes
// the shard, so a lying worker can degrade throughput but never an
// estimate.
func (c *Coordinator) post(ctx context.Context, w *worker, req ShardRequest, traceID string) (*ShardResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/shard", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		// Ask the worker to trace the shard and return its span tree; the
		// header value ties the worker's own trace ring entry back to this
		// coordinator trace.
		hreq.Header.Set(telemetry.TraceHeader, traceID)
	}
	hresp, err := c.opts.HTTPClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: worker %s: %s: %s", w.url, hresp.Status, truncate(body, 200))
	}
	var resp ShardResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: bad shard response: %w", w.url, err)
	}
	if resp.Trials != req.Trials || resp.Batch != req.Batch {
		return nil, fmt.Errorf("cluster: worker %s returned a %d/%d-trial tally for a %d/%d-trial shard",
			w.url, resp.Trials, resp.Batch, req.Trials, req.Batch)
	}
	if req.PlanKey != "" && resp.Key != req.PlanKey {
		return nil, fmt.Errorf("cluster: worker %s computed plan key %s, want %s", w.url, resp.Key, req.PlanKey)
	}
	if err := resp.Tally().Check(); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", w.url, err)
	}
	return &resp, nil
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		s = s[:n] + "..."
	}
	return s
}

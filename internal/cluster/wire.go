// Package cluster is the coordinator/worker layer that lets one faultcast
// process fan Monte-Carlo work out across many: a Coordinator implements
// exec.Dispatcher by splitting each estimation cell's trial budget into
// fixed-size shards, dispatching them to remote faultcastd workers over
// POST /v1/shard, and replaying the stopping rule over the merged
// per-batch tallies — so a distributed estimate is bit-identical to the
// single-process run, whatever machines executed the shards, however they
// raced, and whichever of them failed along the way.
//
// # Shard lifecycle and determinism
//
// A shard is (canonical scenario, shard index, trial range): shard k of a
// cell resumed at trial T0 covers trials [T0+k·S, T0+(k+1)·S) of the
// cell's seed sequence, so its base seed is derived from the cell seed
// and shard index as cellSeed + (T0 + k·S) — the continuation of the very
// stream the local run would execute, which is what makes the merged
// result the same prefix. S is the coordinator's ShardTrials rounded up
// to a multiple of the cell's stop-rule batch, and workers return success
// counts bucketed at exactly that batch, so the concatenated buckets of a
// sharded run are the local run's batch sequence and stat.Replay
// reproduces its stop decisions bit-for-bit. Workers never apply a
// stopping rule themselves — they cannot know the merged prefix a shard
// lands in — which also makes shards idempotent: a dropped shard is
// re-dispatched to another worker (or run locally) and whichever copy
// returns is the same pure function of the shard spec.
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"

	"faultcast"
	"faultcast/internal/graph"
	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
)

// ErrPlanKeyMismatch reports that a worker's rebuilt scenario hashed to a
// different seed-less fingerprint than the coordinator's — codec or
// version drift that must fail the shard loudly rather than fold wrong
// trials into an estimate.
var ErrPlanKeyMismatch = errors.New("cluster: rebuilt scenario does not match the coordinator's plan key")

// ShardRequest is the body of POST /v1/shard: a self-contained scenario
// (the graph shipped structurally, so the worker needs no spec grammar,
// file access, or seed-dependent regeneration) plus one shard of its
// trial stream. Engine selectors and traces are deliberately absent —
// they are proven not to change results, so the worker always runs its
// fastest engine.
type ShardRequest struct {
	// Graph is the topology in graph.WriteEdgeList text form ("n <count>"
	// header, one "u v" pair per line).
	Graph string `json:"graph"`
	// Scenario fields, in the /v1/estimate vocabulary.
	Source    int     `json:"source"`
	Message   string  `json:"message"`
	Model     string  `json:"model"`
	Fault     string  `json:"fault"`
	Adversary string  `json:"adversary"`
	Algorithm string  `json:"algorithm"`
	P         float64 `json:"p"`
	WindowC   float64 `json:"window_c,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	// PlanKey is the coordinator's seed-less Config.Fingerprint. The
	// worker recomputes it from the rebuilt scenario and refuses the shard
	// on mismatch, so the two sides can never silently diverge on what
	// computation the tallies belong to. It is also the worker's plan
	// cache key: every shard of a scenario compiles at most once there.
	PlanKey string `json:"plan_key"`

	// Index is the shard's position within its cell (diagnostic only —
	// the trial range below is authoritative).
	Index int `json:"index"`
	// BaseSeed is the seed of the shard's first trial; trial i of the
	// shard runs with BaseSeed+i.
	BaseSeed uint64 `json:"base_seed"`
	// Trials is the shard's trial count; Batch the tally bucket size.
	Trials int `json:"trials"`
	Batch  int `json:"batch"`
}

// ShardResponse is the body of a successful POST /v1/shard.
type ShardResponse struct {
	// Key echoes the worker's recomputed seed-less plan key.
	Key string `json:"key"`
	// Index echoes the request's shard index.
	Index int `json:"index"`
	// Trials, Batch, and Successes are the shard's tally: Successes[i]
	// counts successes among shard trials [i*Batch, min((i+1)*Batch, Trials)).
	Trials    int   `json:"trials"`
	Batch     int   `json:"batch"`
	Successes []int `json:"successes"`
	// PlanSource says whether the worker served the shard from its plan
	// cache ("cache") or compiled the scenario for it ("compiled") — the
	// coordinator aggregates these into per-worker cache hit rates.
	PlanSource string `json:"plan_source"`
	// Trace, present only when the request carried an X-Faultcast-Trace
	// header, is the worker-side span tree of this shard's execution —
	// detached telemetry data the coordinator grafts under its dispatch
	// span, so a distributed sweep renders as one tree with per-shard
	// worker timings. Strictly observational: it never participates in
	// tally validation.
	Trace *telemetry.Span `json:"trace,omitempty"`
}

// Tally converts the response into the coordinator's merge format.
func (r *ShardResponse) Tally() stat.Tally {
	return stat.Tally{Trials: r.Trials, Batch: r.Batch, Successes: r.Successes}
}

// NewShardRequest lowers a scenario to the wire, leaving the shard fields
// (Index, BaseSeed, Trials, Batch) for the dispatch loop to fill. It
// fails on scenarios the wire cannot carry faithfully (nil graph,
// non-UTF-8 message) — the coordinator then falls back to local
// execution, which needs no wire at all.
func NewShardRequest(cfg faultcast.Config) (ShardRequest, error) {
	if cfg.Graph == nil {
		return ShardRequest{}, errors.New("cluster: scenario without a graph")
	}
	if !utf8.Valid(cfg.Message) {
		return ShardRequest{}, errors.New("cluster: non-UTF-8 message cannot ship as JSON")
	}
	var edges strings.Builder
	if err := cfg.Graph.WriteEdgeList(&edges); err != nil {
		return ShardRequest{}, err
	}
	seedless := cfg
	seedless.Seed = 0
	seedless.Trace = nil
	return ShardRequest{
		Graph:     edges.String(),
		Source:    cfg.Source,
		Message:   string(cfg.Message),
		Model:     cfg.Model.String(),
		Fault:     cfg.Fault.String(),
		Adversary: cfg.Adversary.String(),
		Algorithm: cfg.Algorithm.String(),
		P:         cfg.P,
		WindowC:   cfg.WindowC,
		Alpha:     cfg.Alpha,
		Rounds:    cfg.Rounds,
		PlanKey:   seedless.Fingerprint(),
	}, nil
}

// Config rebuilds the seed-less scenario on the worker side, validating
// every field (the request came over the network and is never trusted)
// and verifying the plan-key integrity check. The enum fields round-trip
// through the Parse*(String()) identities the parse round-trip tests pin.
func (r *ShardRequest) Config() (faultcast.Config, error) {
	if len(r.Graph) == 0 {
		return faultcast.Config{}, errors.New("cluster: shard without a graph")
	}
	g, err := graph.ReadEdgeList(strings.NewReader(r.Graph), "shard")
	if err != nil {
		return faultcast.Config{}, err
	}
	if err := g.Validate(); err != nil {
		return faultcast.Config{}, fmt.Errorf("cluster: shard graph: %w", err)
	}
	if r.Source < 0 || r.Source >= g.N() {
		return faultcast.Config{}, fmt.Errorf("cluster: shard source %d out of range [0, %d)", r.Source, g.N())
	}
	if r.Message == "" {
		return faultcast.Config{}, errors.New("cluster: shard with an empty message")
	}
	if r.P < 0 || r.P >= 1 {
		return faultcast.Config{}, fmt.Errorf("cluster: shard p=%v outside [0, 1)", r.P)
	}
	if r.WindowC < 0 || r.Alpha < 0 || r.Rounds < 0 {
		return faultcast.Config{}, errors.New("cluster: shard with negative window constant, alpha, or rounds")
	}
	cfg := faultcast.Config{
		Graph:   g,
		Source:  r.Source,
		Message: []byte(r.Message),
		P:       r.P,
		WindowC: r.WindowC,
		Alpha:   r.Alpha,
		Rounds:  r.Rounds,
	}
	if cfg.Model, err = faultcast.ParseModel(r.Model); err != nil {
		return faultcast.Config{}, err
	}
	if cfg.Fault, err = faultcast.ParseFault(r.Fault); err != nil {
		return faultcast.Config{}, err
	}
	if cfg.Adversary, err = faultcast.ParseAdversary(r.Adversary); err != nil {
		return faultcast.Config{}, err
	}
	if cfg.Algorithm, err = faultcast.ParseAlgorithm(r.Algorithm); err != nil {
		return faultcast.Config{}, err
	}
	if r.PlanKey != "" && cfg.Fingerprint() != r.PlanKey {
		return faultcast.Config{}, ErrPlanKeyMismatch
	}
	return cfg, nil
}

// CheckShard validates the shard-range fields against a worker's trial
// cap. Separate from Config so the scenario and the range fail with
// distinct messages.
func (r *ShardRequest) CheckShard(maxTrials int) error {
	if r.Trials < 1 {
		return fmt.Errorf("cluster: shard with %d trials", r.Trials)
	}
	if r.Trials > maxTrials {
		return fmt.Errorf("cluster: shard of %d trials exceeds this worker's cap of %d", r.Trials, maxTrials)
	}
	if r.Batch < 1 || r.Batch > r.Trials {
		return fmt.Errorf("cluster: shard batch %d outside [1, %d]", r.Batch, r.Trials)
	}
	return nil
}

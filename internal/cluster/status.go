package cluster

// WorkerStatus is one worker's health and shard counters as the
// coordinator sees them — surfaced in the coordinator's /v1/stats and
// rendered by `faultcastctl workers`.
type WorkerStatus struct {
	URL string `json:"url"`
	// Healthy is false while the worker is in its down cooldown.
	Healthy bool `json:"healthy"`
	// DownForSeconds is the cooldown remaining before the next probe
	// (0 when healthy).
	DownForSeconds float64 `json:"down_for_seconds,omitempty"`
	// Inflight is the number of shards currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// ShardsOK / ShardsFailed count completed and failed dispatches;
	// ConsecutiveFailures is the current failure streak.
	ShardsOK            uint64 `json:"shards_ok"`
	ShardsFailed        uint64 `json:"shards_failed"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	// TrialsExecuted totals the trials of successfully returned shards.
	TrialsExecuted uint64 `json:"trials_executed"`
	// PlanCacheHits / PlanCompiles split successful shards by whether the
	// worker served them from its plan cache — the cache hit rate the
	// shard protocol is designed to maximize (every shard of a scenario
	// after the first should be a hit).
	PlanCacheHits uint64 `json:"plan_cache_hits"`
	PlanCompiles  uint64 `json:"plan_compiles"`
	// LastError is the most recent dispatch failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// Status is the coordinator's aggregate snapshot.
type Status struct {
	Workers []WorkerStatus `json:"workers"`
	// ShardTrials is the configured (pre-rounding) shard size.
	ShardTrials int `json:"shard_trials"`
	// CellsDistributed counts cells sharded across the fleet; LocalCells
	// counts cells that ran wholly in process (no wire form or no fleet).
	CellsDistributed uint64 `json:"cells_distributed"`
	LocalCells       uint64 `json:"local_cells"`
	// ShardsDispatched counts remote dispatch attempts, ShardRetries the
	// re-routes after a failure, and LocalFailovers the shards that ran
	// out of workers and executed in process.
	ShardsDispatched uint64 `json:"shards_dispatched"`
	ShardRetries     uint64 `json:"shard_retries"`
	LocalFailovers   uint64 `json:"local_failovers"`
}

// Status snapshots the coordinator's workers and counters.
func (c *Coordinator) Status() Status {
	st := Status{
		ShardTrials:      c.opts.ShardTrials,
		CellsDistributed: c.cells.Load(),
		LocalCells:       c.localCells.Load(),
		ShardsDispatched: c.dispatched.Load(),
		ShardRetries:     c.retried.Load(),
		LocalFailovers:   c.failovers.Load(),
	}
	now := c.opts.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		ws := WorkerStatus{
			URL:                 w.url,
			Healthy:             !now.Before(w.downUntil),
			Inflight:            w.inflight,
			ShardsOK:            w.shardsOK,
			ShardsFailed:        w.shardsFailed,
			ConsecutiveFailures: w.consecFails,
			TrialsExecuted:      w.trials,
			PlanCacheHits:       w.planCacheHits,
			PlanCompiles:        w.planCompiles,
			LastError:           w.lastErr,
		}
		if !ws.Healthy {
			ws.DownForSeconds = w.downUntil.Sub(now).Seconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

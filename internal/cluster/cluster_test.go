// Package cluster_test exercises the coordinator against real in-process
// workers: httptest servers running the actual faultcastd service
// handler, so every byte crosses the same wire a deployment would use.
// The central pins are the ISSUE's acceptance criteria: a distributed
// estimate and a distributed sweep are bit-identical to the local
// single-process results under fixed seeds — including under simulated
// worker failure mid-sweep.
package cluster_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"faultcast"
	"faultcast/internal/cluster"
	"faultcast/internal/service"
)

// newWorker spins up one in-process faultcastd worker.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newCoordinator(t *testing.T, opts cluster.Options, urls ...string) *cluster.Coordinator {
	t.Helper()
	if opts.ShardTrials == 0 {
		opts.ShardTrials = 96 // 3 stop-rule batches: small enough to force many shards
	}
	return cluster.New(urls, opts)
}

func mustCompile(t *testing.T, cfg faultcast.Config) *faultcast.Plan {
	t.Helper()
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestDistributedEstimateBitIdentical: the same plan estimated locally
// and through a coordinator with two workers must agree on every field —
// successes AND executed trials — for no rule, a target rule, and a
// half-width rule.
func TestDistributedEstimateBitIdentical(t *testing.T) {
	coord := newCoordinator(t, cluster.Options{}, newWorker(t).URL, newWorker(t).URL)
	plan := mustCompile(t, faultcast.Config{
		Graph: faultcast.Grid(6, 6), Message: []byte("1"), P: 0.5, Seed: 7,
	})
	cases := []struct {
		name string
		opts []faultcast.EstimateOption
	}{
		{"full-budget", nil},
		{"almost-safe-target", []faultcast.EstimateOption{faultcast.WithAlmostSafeTarget()}},
		{"half-width", []faultcast.EstimateOption{faultcast.WithHalfWidth(0.04)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local, err := plan.Estimate(1500, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := plan.Estimate(1500, append(tc.opts, faultcast.WithDispatcher(coord))...)
			if err != nil {
				t.Fatal(err)
			}
			if dist != local {
				t.Fatalf("distributed %+v != local %+v", dist, local)
			}
		})
	}
	st := coord.Status()
	if st.ShardsDispatched == 0 {
		t.Fatalf("no shards went remote: %+v", st)
	}
	if st.LocalFailovers != 0 || st.ShardRetries != 0 {
		t.Fatalf("healthy fleet saw failovers/retries: %+v", st)
	}
	for _, w := range st.Workers {
		if w.ShardsOK == 0 {
			t.Fatalf("worker %s executed no shards (fan-out did not spread): %+v", w.URL, st)
		}
	}
}

// TestDistributedEstimateResumes: EstimateFrom through the cluster must
// continue a cached prefix exactly like the local path (the serving
// layer's refinement flow in coordinator mode).
func TestDistributedEstimateResumes(t *testing.T) {
	coord := newCoordinator(t, cluster.Options{}, newWorker(t).URL)
	plan := mustCompile(t, faultcast.Config{
		Graph: faultcast.Line(24), Message: []byte("1"), P: 0.3, Seed: 11,
	})
	prefix, err := plan.Estimate(500)
	if err != nil {
		t.Fatal(err)
	}
	local, err := plan.EstimateFrom(prefix, 1300)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := plan.EstimateFrom(prefix, 1300, faultcast.WithDispatcher(coord))
	if err != nil {
		t.Fatal(err)
	}
	if dist != local {
		t.Fatalf("resumed distributed %+v != local %+v", dist, local)
	}
}

func testSweep(seed uint64) faultcast.SweepSpec {
	return faultcast.SweepSpec{
		Graphs: []faultcast.SweepGraph{{Spec: "grid:5x5", Graph: faultcast.Grid(5, 5)}, {Spec: "line:20", Graph: faultcast.Line(20)}},
		Ps:     []float64{0.2, 0.5, 0.8},
		Seed:   seed,
		Budget: faultcast.CellBudget{Trials: 800, AlmostSafe: true},
	}
}

func collect(t *testing.T, sp *faultcast.SweepPlan, opts ...faultcast.SweepOption) []faultcast.CellResult {
	t.Helper()
	out, err := sp.Collect(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameResults(t *testing.T, dist, local []faultcast.CellResult) {
	t.Helper()
	if len(dist) != len(local) {
		t.Fatalf("%d cells vs %d", len(dist), len(local))
	}
	for i := range local {
		if dist[i].Estimate != local[i].Estimate {
			t.Errorf("cell %d (%s p=%v): distributed %+v != local %+v",
				i, local[i].Cell.Graph.Spec, local[i].Cell.Config.P, dist[i].Estimate, local[i].Estimate)
		}
	}
}

// TestDistributedSweepBitIdentical: a full sweep (two graphs × three ps,
// almost-safe early stopping) through a two-worker cluster matches the
// local run cell for cell.
func TestDistributedSweepBitIdentical(t *testing.T) {
	coord := newCoordinator(t, cluster.Options{}, newWorker(t).URL, newWorker(t).URL)
	sp, err := faultcast.CompileSweep(testSweep(42))
	if err != nil {
		t.Fatal(err)
	}
	local := collect(t, sp)
	dist := collect(t, sp, faultcast.WithSweepDispatcher(coord))
	assertSameResults(t, dist, local)
	if st := coord.Status(); st.CellsDistributed == 0 || st.ShardsDispatched == 0 {
		t.Fatalf("sweep did not distribute: %+v", st)
	}
}

// faultyWorker wraps a real worker with an injected /v1/shard failure
// policy: shard calls numbered by `fails` (1-based) answer 500 instead of
// executing — every third call for an intermittent worker, everything
// past a cutoff for one that dies mid-sweep.
func faultyWorker(t *testing.T, fails func(call uint64) bool) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	inner := service.New(service.Options{}).Handler()
	var calls, failed atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/shard" && fails(calls.Add(1)) {
			failed.Add(1)
			http.Error(w, "injected shard drop", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &failed
}

// TestFailoverMidSweep is the acceptance pin for failure handling: one
// worker drops every third shard, another serves a few shards and then
// dies outright mid-sweep. Dropped shards re-run elsewhere, the dead
// worker is benched after FailAfter consecutive failures, and both the
// sweep and a standalone estimate remain bit-identical to the local
// results.
func TestFailoverMidSweep(t *testing.T) {
	flaky, flakyFails := faultyWorker(t, func(call uint64) bool { return call%3 == 0 })
	dying, _ := faultyWorker(t, func(call uint64) bool { return call > 8 })
	good := newWorker(t)
	coord := newCoordinator(t, cluster.Options{FailAfter: 2, DownFor: time.Hour}, flaky.URL, dying.URL, good.URL)

	sp, err := faultcast.CompileSweep(testSweep(42))
	if err != nil {
		t.Fatal(err)
	}
	local := collect(t, sp)
	dist := collect(t, sp, faultcast.WithSweepDispatcher(coord))
	assertSameResults(t, dist, local)

	plan := mustCompile(t, faultcast.Config{
		Graph: faultcast.Grid(6, 6), Message: []byte("1"), P: 0.5, Seed: 7,
	})
	localEst, err := plan.Estimate(1500)
	if err != nil {
		t.Fatal(err)
	}
	distEst, err := plan.Estimate(1500, faultcast.WithDispatcher(coord))
	if err != nil {
		t.Fatal(err)
	}
	if distEst != localEst {
		t.Fatalf("estimate under failure %+v != local %+v", distEst, localEst)
	}

	if flakyFails.Load() == 0 {
		t.Fatal("the flaky worker never dropped a shard — the test exercised nothing")
	}
	st := coord.Status()
	if st.ShardRetries == 0 {
		t.Fatalf("dropped shards were not re-dispatched: %+v", st)
	}
	for _, w := range st.Workers {
		switch w.URL {
		case flaky.URL:
			if w.ShardsFailed == 0 {
				t.Errorf("flaky worker's failures not tracked: %+v", w)
			}
			if w.LastError == "" {
				t.Errorf("flaky worker has no recorded error: %+v", w)
			}
		case dying.URL:
			if w.Healthy {
				t.Errorf("dead worker never benched despite FailAfter=2: %+v", w)
			}
		case good.URL:
			// Early-stop cancellations must not smear the healthy worker.
			if w.ShardsFailed > 0 {
				t.Errorf("healthy worker blamed for failures: %+v", w)
			}
		}
	}
}

// TestAllWorkersLost: with every worker unreachable, the coordinator must
// fail over each shard to local execution and still produce the exact
// local results — a cluster degrades to a single node, never to wrong
// answers.
func TestAllWorkersLost(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here anymore
	coord := newCoordinator(t, cluster.Options{FailAfter: 1, DownFor: time.Hour}, dead.URL)

	plan := mustCompile(t, faultcast.Config{
		Graph: faultcast.Line(16), Message: []byte("1"), P: 0.4, Seed: 3,
	})
	local, err := plan.Estimate(700, faultcast.WithHalfWidth(0.05))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := plan.Estimate(700, faultcast.WithHalfWidth(0.05), faultcast.WithDispatcher(coord))
	if err != nil {
		t.Fatal(err)
	}
	if dist != local {
		t.Fatalf("lost-fleet estimate %+v != local %+v", dist, local)
	}
	st := coord.Status()
	if st.LocalFailovers == 0 {
		t.Fatalf("no local failovers recorded: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Healthy {
		t.Fatalf("dead worker still marked healthy: %+v", st)
	}
}

// TestCoordinatorCancellation: mid-run cancellation must surface
// ctx.Err() and abandon undecided cells unreported, mirroring exec.Run.
func TestCoordinatorCancellation(t *testing.T) {
	coord := newCoordinator(t, cluster.Options{}, newWorker(t).URL)
	sp, err := faultcast.CompileSweep(testSweep(42))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = sp.Run(ctx, func(faultcast.CellResult) {
		t.Error("cancelled run emitted a cell")
	}, faultcast.WithSweepDispatcher(coord))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWireRoundTrip: for a spread of scenarios, the wire encoding must
// rebuild a config whose seed-less fingerprint matches the coordinator's
// plan key — the integrity check every shard rides on.
func TestWireRoundTrip(t *testing.T) {
	cfgs := []faultcast.Config{
		{Graph: faultcast.Grid(4, 4), Message: []byte("1"), P: 0.5, Seed: 99},
		{Graph: faultcast.Star(8), Message: []byte("1"), P: 0.17, Model: faultcast.Radio, Fault: faultcast.Malicious, Adversary: faultcast.WorstCase},
		{Graph: faultcast.Line(10), Message: []byte("hello"), P: 0.25, Fault: faultcast.LimitedMalicious, Algorithm: faultcast.Composed, Alpha: 1.5, Rounds: 64},
		{Graph: faultcast.Ring(12), Message: []byte("0"), P: 0.9, WindowC: 3.5, Adversary: faultcast.NoiseAdv},
	}
	for i, cfg := range cfgs {
		req, err := cluster.NewShardRequest(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		got, err := req.Config()
		if err != nil {
			t.Fatalf("cfg %d: rebuild: %v", i, err)
		}
		seedless := cfg
		seedless.Seed = 0
		if got.Fingerprint() != seedless.Fingerprint() {
			t.Errorf("cfg %d: rebuilt fingerprint %s != %s", i, got.Fingerprint(), seedless.Fingerprint())
		}
	}
	if _, err := cluster.NewShardRequest(faultcast.Config{Message: []byte("1")}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := cluster.NewShardRequest(faultcast.Config{Graph: faultcast.Line(4), Message: []byte{0xff, 0xfe}}); err == nil {
		t.Error("non-UTF-8 message accepted")
	}
}

// TestWireRejectsTampering: a shard whose scenario was altered in flight
// fails the plan-key check.
func TestWireRejectsTampering(t *testing.T) {
	req, err := cluster.NewShardRequest(faultcast.Config{Graph: faultcast.Grid(4, 4), Message: []byte("1"), P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	req.P = 0.6 // tamper
	if _, err := req.Config(); err != cluster.ErrPlanKeyMismatch {
		t.Fatalf("tampered shard: err = %v, want ErrPlanKeyMismatch", err)
	}
}

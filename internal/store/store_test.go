package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"faultcast"
)

func tb(pairs ...int) []faultcast.TallyBucket {
	if len(pairs)%2 != 0 {
		panic("tb wants trials,successes pairs")
	}
	out := make([]faultcast.TallyBucket, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, faultcast.TallyBucket{Trials: pairs[i], Successes: pairs[i+1]})
	}
	return out
}

const testPlanKey = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := tb(32, 10, 32, 15, 20, 3)
	if err := s.AppendTally(testPlanKey, 7, 32, 0, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadTally(testPlanKey, 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("same-process load: got %v want %v", got, want)
	}

	// A fresh Store over the same directory must decode the identical
	// bucket sequence from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s2.LoadTally(testPlanKey, 7, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened load: got %v want %v", got, want)
	}
	// Other keys stay empty: seed and batch are part of the identity.
	for _, k := range []Key{
		{testPlanKey, 8, 32},
		{testPlanKey, 7, 64},
		{"deadbeef", 7, 32},
	} {
		got, err := s2.LoadTally(k.PlanKey, k.BaseSeed, k.Batch)
		if err != nil || len(got) != 0 {
			t.Fatalf("key %v: got %v, %v; want empty", k, got, err)
		}
	}
}

func TestStoreAppendExtends(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.AppendTally(testPlanKey, 1, 32, 0, tb(32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 32, tb(32, 6, 16, 2)); err != nil {
		t.Fatal(err)
	}
	got, _ := s.LoadTally(testPlanKey, 1, 32)
	if want := tb(32, 4, 32, 6, 16, 2); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestStoreRewindSupersedesTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	// A short budget leaves a tail bucket of 20; a later, larger run
	// re-simulates from trial 64 at full batch granularity and must win.
	if err := s.AppendTally(testPlanKey, 1, 32, 0, tb(32, 4, 32, 6, 20, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 64, tb(32, 5, 32, 7)); err != nil {
		t.Fatal(err)
	}
	want := tb(32, 4, 32, 6, 32, 5, 32, 7)
	got, _ := s.LoadTally(testPlanKey, 1, 32)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("in-memory rewind: got %v want %v", got, want)
	}
	// The log itself stays append-only; the rewind must replay on reload.
	s2, _ := Open(dir)
	got, _ = s2.LoadTally(testPlanKey, 1, 32)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded rewind: got %v want %v", got, want)
	}
	if st := s2.Stats(); st.Rewinds != 1 || st.CorruptRecordsSkipped != 0 {
		t.Fatalf("stats after reload: %+v", st)
	}
}

func TestStoreRejectsGapAndMisalignedStart(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.AppendTally(testPlanKey, 1, 32, 0, tb(32, 4, 32, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 96, tb(32, 4)); err == nil {
		t.Fatal("gap append accepted")
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 10, tb(32, 4)); err == nil {
		t.Fatal("mid-bucket append accepted")
	}
	if err := s.AppendTally(testPlanKey, 1, 32, -1, tb(32, 4)); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 64, tb(32, 40)); err == nil {
		t.Fatal("successes > trials accepted")
	}
	if err := s.AppendTally(testPlanKey, 1, 32, 64, tb(0, 0)); err == nil {
		t.Fatal("empty bucket accepted")
	}
	if st := s.Stats(); st.AppendErrors != 5 {
		t.Fatalf("append_errors = %d, want 5", st.AppendErrors)
	}
	// The rejected appends must not have disturbed the stored state.
	got, _ := s.LoadTally(testPlanKey, 1, 32)
	if want := tb(32, 4, 32, 6); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestStoreCrashTruncation is the crash-recovery battery: a segment cut
// off at EVERY byte offset of its final frame (and a few before it) must
// reopen to an intact prefix — never an error, never a wrong tally — and
// appending the missing suffix must reconstruct a byte-identical state
// to the uninterrupted run.
func TestStoreCrashTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	first := tb(32, 4, 32, 6)
	second := tb(32, 5, 32, 7)
	if err := s.AppendTally(testPlanKey, 9, 32, 0, first); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Key{testPlanKey, 9, 32}.filename())
	cut, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prefixLen := len(cut) // bytes through the end of the first record
	if err := s.AppendTally(testPlanKey, 9, 32, 64, second); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= prefixLen {
		t.Fatalf("second append added no bytes (%d -> %d)", prefixLen, len(full))
	}
	want := append(append([]faultcast.TallyBucket{}, first...), second...)

	for n := 0; n <= len(full); n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, _ := Open(dir)
		got, err := s2.LoadTally(testPlanKey, 9, 32)
		if err != nil {
			t.Fatalf("truncate at %d: load error %v", n, err)
		}
		switch {
		case n == len(full):
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("truncate at %d (complete): got %v want %v", n, got, want)
			}
			continue
		case n >= prefixLen:
			// The last frame is torn: the first record must survive whole.
			if !reflect.DeepEqual(got, first) {
				t.Fatalf("truncate at %d: got %v want first record %v", n, got, first)
			}
		default:
			// Torn inside the header or first record: empty is the only
			// correct answer (never a partial bucket).
			if len(got) != 0 {
				t.Fatalf("truncate at %d: got %v want empty", n, got)
			}
		}
		// Refinement after the crash: re-append what the load lost plus
		// the suffix. The final state must be identical to a run that was
		// never interrupted.
		start := 0
		for _, b := range got {
			start += b.Trials
		}
		covered := 0
		var missing []faultcast.TallyBucket
		for _, b := range want {
			if covered >= start {
				missing = append(missing, b)
			}
			covered += b.Trials
		}
		if err := s2.AppendTally(testPlanKey, 9, 32, start, missing); err != nil {
			t.Fatalf("truncate at %d: refine append: %v", n, err)
		}
		s3, _ := Open(dir)
		got, _ = s3.LoadTally(testPlanKey, 9, 32)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("truncate at %d: refined state %v, want %v", n, got, want)
		}
		if st := s3.Stats(); st.CorruptRecordsSkipped != 0 {
			t.Fatalf("truncate at %d: refined file still corrupt: %+v", n, st)
		}
	}
}

func TestStoreBitFlipSkipsSuffixNeverFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	first := tb(32, 4)
	if err := s.AppendTally(testPlanKey, 3, 32, 0, first); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Key{testPlanKey, 3, 32}.filename())
	prefix, _ := os.ReadFile(path)
	if err := s.AppendTally(testPlanKey, 3, 32, 32, tb(32, 6)); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)

	// Flip one bit in every byte of the second record's frame: the CRC
	// must catch each one, the first record must always survive.
	for i := len(prefix); i < len(full); i++ {
		mut := append([]byte{}, full...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, _ := Open(dir)
		got, err := s2.LoadTally(testPlanKey, 3, 32)
		if err != nil {
			t.Fatalf("flip at %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("flip at %d: got %v want %v", i, got, first)
		}
		if st := s2.Stats(); st.CorruptRecordsSkipped != 1 {
			t.Fatalf("flip at %d: corrupt_records_skipped = %d, want 1", i, st.CorruptRecordsSkipped)
		}
	}

	// Garbage prepended where the magic should be: whole file skipped,
	// counted, and the next append starts the segment over.
	if err := os.WriteFile(path, []byte("not a tally segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, _ := Open(dir)
	got, err := s3.LoadTally(testPlanKey, 3, 32)
	if err != nil || len(got) != 0 {
		t.Fatalf("garbage file: got %v, %v", got, err)
	}
	if err := s3.AppendTally(testPlanKey, 3, 32, 0, first); err != nil {
		t.Fatal(err)
	}
	s4, _ := Open(dir)
	got, _ = s4.LoadTally(testPlanKey, 3, 32)
	if !reflect.DeepEqual(got, first) {
		t.Fatalf("after restart-over: got %v want %v", got, first)
	}
}

func TestStoreHeaderMismatchInvalidatesFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.AppendTally(testPlanKey, 5, 32, 0, tb(32, 4)); err != nil {
		t.Fatal(err)
	}
	// Rename the segment so its filename claims a different key; the
	// embedded header must win and the file must load as empty for the
	// claimed key.
	oldPath := filepath.Join(dir, Key{testPlanKey, 5, 32}.filename())
	newKey := Key{"deadbeef", 5, 32}
	if err := os.Rename(oldPath, filepath.Join(dir, newKey.filename())); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir)
	got, err := s2.LoadTally(newKey.PlanKey, newKey.BaseSeed, newKey.Batch)
	if err != nil || len(got) != 0 {
		t.Fatalf("mismatched header: got %v, %v; want empty", got, err)
	}
	if st := s2.Stats(); st.CorruptRecordsSkipped != 1 {
		t.Fatalf("corrupt_records_skipped = %d, want 1", st.CorruptRecordsSkipped)
	}
}

func TestStoreFilenameSafety(t *testing.T) {
	for _, k := range []Key{
		{"../../etc/passwd", 1, 32},
		{"", 1, 32},
		{"UPPER", 1, 32},
		{"abc/def", 1, 32},
		{testPlanKey + testPlanKey + testPlanKey, 1, 32},
	} {
		name := k.filename()
		if filepath.Base(name) != name || filepath.IsAbs(name) {
			t.Fatalf("key %q escapes the directory: %q", k.PlanKey, name)
		}
		for _, r := range name {
			ok := r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r == '-' || r == '.'
			if !ok {
				t.Fatalf("key %q: unsafe rune %q in filename %q", k.PlanKey, r, name)
			}
		}
	}
	// Distinct hostile keys must not collide.
	a := Key{"../a", 1, 32}.filename()
	b := Key{"../b", 1, 32}.filename()
	if a == b {
		t.Fatalf("hostile keys collide on %q", a)
	}
	// Round-trip: a hostile key's file still loads under its own key,
	// because identity lives in the header, not the filename.
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.AppendTally("../a", 1, 32, 0, tb(32, 4)); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir)
	got, _ := s2.LoadTally("../a", 1, 32)
	if !reflect.DeepEqual(got, tb(32, 4)) {
		t.Fatalf("hostile key round-trip: got %v", got)
	}
}

func TestScanAndGC(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.AppendTally("aa11", 1, 32, 0, tb(32, 4, 32, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTally("bb22", 2, 64, 0, tb(64, 10)); err != nil {
		t.Fatal(err)
	}
	infos, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("Scan: %d segments, want 2", len(infos))
	}
	byKey := map[string]SegmentInfo{}
	for _, si := range infos {
		if !si.Clean() {
			t.Fatalf("segment %s not clean: %+v", si.Path, si)
		}
		byKey[si.PlanKey] = si
	}
	if si := byKey["aa11"]; si.BaseSeed != 1 || si.Batch != 32 || si.Buckets != 2 || si.Trials != 64 {
		t.Fatalf("aa11 info: %+v", si)
	}
	if si := byKey["bb22"]; si.BaseSeed != 2 || si.Batch != 64 || si.Buckets != 1 || si.Trials != 64 {
		t.Fatalf("bb22 info: %+v", si)
	}

	// Verify notices a torn tail.
	if err := os.WriteFile(byKey["aa11"].Path+".tmp", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(byKey["aa11"].Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	infos, _ = Scan(dir)
	var dirty int
	for _, si := range infos {
		if !si.Clean() {
			dirty++
			if si.TailBytes == 0 && si.CorruptFrames == 0 {
				t.Fatalf("dirty segment reports clean fields: %+v", si)
			}
		}
	}
	if dirty != 1 {
		t.Fatalf("dirty = %d, want 1", dirty)
	}

	// Age GC: make aa11 old, keep bb22 fresh.
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(byKey["aa11"].Path, old, old); err != nil {
		t.Fatal(err)
	}
	removed, err := GC(dir, 24*time.Hour, 0, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].PlanKey != "aa11" {
		t.Fatalf("age GC removed %+v", removed)
	}
	// Size GC: a 1-byte cap must remove the remaining segment.
	removed, err = GC(dir, 0, 1, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].PlanKey != "bb22" {
		t.Fatalf("size GC removed %+v", removed)
	}
	infos, _ = Scan(dir)
	if len(infos) != 0 {
		t.Fatalf("segments after GC: %d", len(infos))
	}
}

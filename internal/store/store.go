// Package store is the durable, content-addressed tally store: an
// append-only, disk-backed log of per-batch trial tallies keyed by the
// seed-less plan fingerprint + base seed + batch size — the exact triple
// that makes a trial stream bit-reproducible. Any stored prefix can seed
// the stopping-rule replay machinery (stat.Replay / faultcast's
// WithTallyStore), so a restarted daemon answers previously-served
// estimates with zero trials and a refinement simulates only the
// marginal batches, bit-identical to an uninterrupted run.
//
// On-disk layout: one segment file per key, named
// "<planKey>-<baseSeed>-<batch>.tally", holding an 8-byte magic followed
// by CRC-framed records (see codec.go). The file is only ever appended
// to (plus a truncate-to-valid-prefix before an append when a previous
// crash left a torn frame), so a reader can always recover the longest
// intact prefix: loading stops at the first truncated, bit-flipped, or
// inconsistent frame, counts it, and keeps everything before it.
//
// Rewind semantics make the log self-healing: a record whose start lies
// at an existing bucket boundary BEFORE the current end supersedes the
// buckets from that boundary on (the writer re-simulated a suffix at a
// different batch decomposition, e.g. after a short tail bucket from a
// smaller budget). A record starting anywhere else — inside a bucket, or
// past the end — breaks the contiguity contract and is treated exactly
// like corruption: skipped, counted, and the load stops there.
//
// A Store assumes single-process ownership of its directory (faultcastd
// takes one via -store=DIR); within the process every method is safe for
// concurrent use, with one mutex per segment so independent keys never
// serialize against each other.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faultcast"
)

// segmentExt is the filename suffix of every segment file.
const segmentExt = ".tally"

// Store is the open tally store. Create with Open.
type Store struct {
	dir string

	mu       sync.Mutex
	segments map[string]*segment

	loads          atomic.Uint64
	trialsLoaded   atomic.Uint64
	appends        atomic.Uint64
	bucketsOut     atomic.Uint64
	trialsOut      atomic.Uint64
	appendErrors   atomic.Uint64
	rewinds        atomic.Uint64
	corruptRecords atomic.Uint64
}

// segment is the in-memory state of one key's log: the decoded bucket
// sequence and the byte length of the valid on-disk prefix. mu serializes
// load and append per key.
type segment struct {
	mu      sync.Mutex
	path    string
	key     Key
	loaded  bool
	buckets []faultcast.TallyBucket
	end     int   // total trials covered by buckets
	valid   int64 // byte length of the intact on-disk prefix
}

// Key identifies one segment: the seed-less plan fingerprint, the trial
// stream's base seed, and the batch (bucket) granularity.
type Key struct {
	PlanKey  string
	BaseSeed uint64
	Batch    int
}

func (k Key) String() string {
	return fmt.Sprintf("%s-%d-%d", k.PlanKey, k.BaseSeed, k.Batch)
}

// filename returns the segment file name for the key. Plan keys are
// 64-hex fingerprints in practice; anything else is defensively reduced
// to a safe charset so a hostile key can never escape the directory.
func (k Key) filename() string {
	name := k.PlanKey
	for _, r := range name {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			name = fmt.Sprintf("x%x", name)
			break
		}
	}
	if name == "" || len(name) > 128 {
		name = fmt.Sprintf("x%x", hashString(k.PlanKey))
	}
	return fmt.Sprintf("%s-%d-%d%s", name, k.BaseSeed, k.Batch, segmentExt)
}

// Open opens (creating if needed) a tally store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, segments: make(map[string]*segment)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// seg returns (creating if needed) the segment state for key.
func (s *Store) seg(key Key) *segment {
	name := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sg, ok := s.segments[name]; ok {
		return sg
	}
	sg := &segment{path: filepath.Join(s.dir, key.filename()), key: key}
	s.segments[name] = sg
	return sg
}

// ensureLoaded decodes the segment's on-disk prefix into memory. Never
// fails: a missing file is an empty segment, and any corruption is
// counted and truncated away at the next append. Called with sg.mu held.
func (s *Store) ensureLoaded(sg *segment) {
	if sg.loaded {
		return
	}
	res := loadSegment(sg.path, sg.key)
	sg.buckets = res.buckets
	sg.end = res.end
	sg.valid = res.valid
	sg.loaded = true
	if res.corrupt > 0 {
		s.corruptRecords.Add(uint64(res.corrupt))
	}
	s.rewinds.Add(uint64(res.rewinds))
}

// LoadTally returns the stored bucket sequence for the key — the longest
// intact, contiguous prefix of the key's trial stream, in trial order.
// The returned slice is the caller's to keep. A key with nothing stored
// returns an empty slice and no error; corruption is never an error
// either (the intact prefix is still good), only counted.
func (s *Store) LoadTally(planKey string, baseSeed uint64, batch int) ([]faultcast.TallyBucket, error) {
	sg := s.seg(Key{PlanKey: planKey, BaseSeed: baseSeed, Batch: batch})
	sg.mu.Lock()
	defer sg.mu.Unlock()
	s.ensureLoaded(sg)
	s.loads.Add(1)
	s.trialsLoaded.Add(uint64(sg.end))
	out := make([]faultcast.TallyBucket, len(sg.buckets))
	copy(out, sg.buckets)
	return out, nil
}

// AppendTally appends one record: buckets covering trials
// [start, start+Σtrials) of the key's stream, in trial order. start must
// be the segment's current end, or an existing bucket boundary before it
// (a rewind: the buckets from that boundary on are superseded — the
// append wins, because the writer just re-simulated that suffix). Any
// other start breaks contiguity and is rejected.
func (s *Store) AppendTally(planKey string, baseSeed uint64, batch int, start int, buckets []faultcast.TallyBucket) error {
	if len(buckets) == 0 {
		return nil
	}
	if err := checkBuckets(start, buckets); err != nil {
		s.appendErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	sg := s.seg(Key{PlanKey: planKey, BaseSeed: baseSeed, Batch: batch})
	sg.mu.Lock()
	defer sg.mu.Unlock()
	s.ensureLoaded(sg)

	keep := len(sg.buckets)
	if start != sg.end {
		if start > sg.end {
			s.appendErrors.Add(1)
			return fmt.Errorf("store: append at trial %d leaves a gap (segment %s ends at %d)", start, sg.key, sg.end)
		}
		// Rewind: start must land exactly on a stored bucket boundary.
		pos := 0
		keep = -1
		for i := range sg.buckets {
			if pos == start {
				keep = i
				break
			}
			pos += sg.buckets[i].Trials
		}
		if keep < 0 {
			s.appendErrors.Add(1)
			return fmt.Errorf("store: append at trial %d is inside a stored bucket of segment %s", start, sg.key)
		}
	}

	if err := s.writeRecord(sg, start, buckets); err != nil {
		s.appendErrors.Add(1)
		return err
	}
	if keep < len(sg.buckets) {
		sg.buckets = sg.buckets[:keep:keep]
		s.rewinds.Add(1)
	}
	sg.buckets = append(sg.buckets, buckets...)
	sg.end = start
	for _, b := range buckets {
		sg.end += b.Trials
	}
	s.appends.Add(1)
	s.bucketsOut.Add(uint64(len(buckets)))
	s.trialsOut.Add(uint64(sg.end - start))
	return nil
}

// writeRecord persists one record frame at the end of the valid prefix,
// truncating any torn tail a crash left behind first (and rewriting the
// magic when the whole file was unusable). Called with sg.mu held.
func (s *Store) writeRecord(sg *segment, start int, buckets []faultcast.TallyBucket) error {
	f, err := os.OpenFile(sg.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err != nil {
		return fmt.Errorf("store: %w", err)
	} else if fi.Size() != sg.valid {
		if err := f.Truncate(sg.valid); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	var out []byte
	if sg.valid == 0 {
		out = append(out, magic...)
		out = appendFrame(out, encodeHeader(sg.key))
	}
	out = appendFrame(out, encodeRecord(start, buckets))
	if _, err := f.WriteAt(out, sg.valid); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sg.valid += int64(len(out))
	return nil
}

// checkBuckets validates a record before it is written: positive bucket
// sizes, successes within them, a non-negative start.
func checkBuckets(start int, buckets []faultcast.TallyBucket) error {
	if start < 0 {
		return fmt.Errorf("record starts at trial %d", start)
	}
	for i, b := range buckets {
		if b.Trials <= 0 || b.Successes < 0 || b.Successes > b.Trials {
			return fmt.Errorf("bucket %d has %d successes of %d trials", i, b.Successes, b.Trials)
		}
	}
	return nil
}

// Stats is the store's counter snapshot, surfaced under "store" in
// /v1/stats.
type Stats struct {
	Dir string `json:"dir"`
	// Segments is the number of keys touched since Open (loaded or
	// appended), not the on-disk file count — Scan gives that.
	Segments int `json:"segments"`
	// Loads counts LoadTally calls; TrialsLoaded sums the stored trials
	// they returned (the simulation work warm answers avoided re-running).
	Loads        uint64 `json:"loads"`
	TrialsLoaded uint64 `json:"trials_loaded"`
	// Appends counts persisted records; BucketsAppended / TrialsAppended
	// their contents. AppendErrors counts rejected or failed appends
	// (misaligned start, I/O failure) — the estimate that produced them
	// was still served, only its persistence was lost.
	Appends         uint64 `json:"appends"`
	BucketsAppended uint64 `json:"buckets_appended"`
	TrialsAppended  uint64 `json:"trials_appended"`
	AppendErrors    uint64 `json:"append_errors"`
	// Rewinds counts boundary-aligned supersedes (in memory or replayed
	// from disk); CorruptRecordsSkipped counts frames dropped as
	// truncated, bit-flipped, or contiguity-breaking — never fatal, the
	// intact prefix stays served.
	Rewinds               uint64 `json:"rewinds"`
	CorruptRecordsSkipped uint64 `json:"corrupt_records_skipped"`
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.segments)
	s.mu.Unlock()
	return Stats{
		Dir:                   s.dir,
		Segments:              n,
		Loads:                 s.loads.Load(),
		TrialsLoaded:          s.trialsLoaded.Load(),
		Appends:               s.appends.Load(),
		BucketsAppended:       s.bucketsOut.Load(),
		TrialsAppended:        s.trialsOut.Load(),
		AppendErrors:          s.appendErrors.Load(),
		Rewinds:               s.rewinds.Load(),
		CorruptRecordsSkipped: s.corruptRecords.Load(),
	}
}

// SegmentInfo describes one on-disk segment, as reported by Scan —
// the shared engine of `faultcastctl store ls` and `... store verify`.
type SegmentInfo struct {
	Path     string    `json:"path"`
	PlanKey  string    `json:"plan_key"`
	BaseSeed uint64    `json:"base_seed"`
	Batch    int       `json:"batch"`
	Buckets  int       `json:"buckets"`
	Trials   int       `json:"trials"`
	Bytes    int64     `json:"bytes"`
	ModTime  time.Time `json:"mod_time"`
	// CorruptFrames counts frames the loader rejected; TailBytes is the
	// unusable byte count past the valid prefix (0 on a clean segment).
	CorruptFrames int   `json:"corrupt_frames,omitempty"`
	TailBytes     int64 `json:"tail_bytes,omitempty"`
}

// Clean reports whether every byte of the segment decoded.
func (si SegmentInfo) Clean() bool { return si.CorruptFrames == 0 && si.TailBytes == 0 }

// Scan reads every segment under dir and reports its decoded state. It
// works offline on the directory — no Store needed — so the CLI can
// inspect a daemon's store without the daemon.
func Scan(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []SegmentInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), segmentExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		fi, err := e.Info()
		if err != nil {
			continue
		}
		res := loadSegment(path, Key{})
		info := SegmentInfo{
			Path:          path,
			PlanKey:       res.key.PlanKey,
			BaseSeed:      res.key.BaseSeed,
			Batch:         res.key.Batch,
			Buckets:       len(res.buckets),
			Trials:        res.end,
			Bytes:         fi.Size(),
			ModTime:       fi.ModTime(),
			CorruptFrames: res.corrupt,
			TailBytes:     fi.Size() - res.valid,
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// GC removes segments older than maxAge (by mtime; 0 = no age limit),
// then — oldest first — until the directory's segment bytes fit in
// maxBytes (0 = no size limit). It returns what it removed. Like Scan it
// works offline; running it against a live daemon's directory is safe in
// the crash sense (the daemon re-simulates and re-appends) but forfeits
// the removed prefixes, so prefer draining first.
func GC(dir string, maxAge time.Duration, maxBytes int64, now time.Time) ([]SegmentInfo, error) {
	infos, err := Scan(dir)
	if err != nil {
		return nil, err
	}
	var removed []SegmentInfo
	var total int64
	var live []SegmentInfo
	for _, si := range infos {
		if maxAge > 0 && now.Sub(si.ModTime) > maxAge {
			if err := os.Remove(si.Path); err != nil {
				return removed, fmt.Errorf("store: %w", err)
			}
			removed = append(removed, si)
			continue
		}
		total += si.Bytes
		live = append(live, si)
	}
	if maxBytes > 0 && total > maxBytes {
		sort.Slice(live, func(i, j int) bool { return live[i].ModTime.Before(live[j].ModTime) })
		for _, si := range live {
			if total <= maxBytes {
				break
			}
			if err := os.Remove(si.Path); err != nil {
				return removed, fmt.Errorf("store: %w", err)
			}
			total -= si.Bytes
			removed = append(removed, si)
		}
	}
	return removed, nil
}

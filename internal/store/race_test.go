package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"faultcast"
)

// TestStoreConcurrentReadersAndAppenders hammers the store the way a
// loaded daemon does: per key, many concurrent LoadTally readers racing
// one appender extending the segment batch by batch; across keys,
// everything fully parallel. Run under -race. The invariants: every
// load observes a consistent prefix of the final stream (tally values
// match, bucket count only grows), and the final on-disk state reloads
// bit-identically in a fresh Store.
func TestStoreConcurrentReadersAndAppenders(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		keys    = 4
		rounds  = 50
		readers = 4
	)
	// Deterministic per-key stream: bucket i of key k holds (k+i)%33
	// successes of 32 trials, so a reader can verify any prefix.
	bucket := func(k, i int) faultcast.TallyBucket {
		return faultcast.TallyBucket{Trials: 32, Successes: (k + i) % 33}
	}
	planKey := func(k int) string { return fmt.Sprintf("ab%02d", k) }

	var wg sync.WaitGroup
	errc := make(chan error, keys*(readers+1))
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.AppendTally(planKey(k), uint64(k), 32, i*32, []faultcast.TallyBucket{bucket(k, i)}); err != nil {
					errc <- fmt.Errorf("key %d append %d: %w", k, i, err)
					return
				}
			}
		}(k)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				seen := 0
				for j := 0; j < rounds; j++ {
					got, err := s.LoadTally(planKey(k), uint64(k), 32)
					if err != nil {
						errc <- fmt.Errorf("key %d load: %w", k, err)
						return
					}
					if len(got) < seen {
						errc <- fmt.Errorf("key %d: prefix shrank %d -> %d", k, seen, len(got))
						return
					}
					seen = len(got)
					for i, b := range got {
						if b != bucket(k, i) {
							errc <- fmt.Errorf("key %d bucket %d: got %+v want %+v", k, i, b, bucket(k, i))
							return
						}
					}
				}
			}(k)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Everything the appenders wrote must reload bit-identically.
	s2, _ := Open(dir)
	for k := 0; k < keys; k++ {
		want := make([]faultcast.TallyBucket, rounds)
		for i := range want {
			want[i] = bucket(k, i)
		}
		got, err := s2.LoadTally(planKey(k), uint64(k), 32)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d reload: got %d buckets, mismatch", k, len(got))
		}
	}
	if st := s2.Stats(); st.CorruptRecordsSkipped != 0 || st.AppendErrors != 0 {
		t.Fatalf("stats after race run: %+v", st)
	}
}

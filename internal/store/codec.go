package store

import (
	"crypto/sha256"
	"encoding/binary"
	"hash/crc32"
	"os"

	"faultcast"
)

// The on-disk grammar of a segment file:
//
//	file   := magic frame(header) frame(record)*
//	frame  := len:u32le crc:u32le payload         (crc = CRC-32C of payload)
//	header := 'H' version:u32le batch:u32le baseSeed:u64le keyLen:u32le key
//	record := 'R' start:u64le count:u32le (trials:u32le successes:u32le)^count
//
// Every payload is independently checksummed, so a torn write, a
// bit-flip, or trailing garbage is detected at the frame where it
// happens and everything before it remains loadable. Records carry their
// absolute start trial: replay on load re-derives contiguity (and rewind
// supersedes) from the starts alone, so the log itself never needs an
// index or a compaction pass to stay correct.

const (
	magic         = "FCTALLY1"
	headerVersion = 1
	kindHeader    = 'H'
	kindRecord    = 'R'
	// maxFramePayload bounds a frame before allocation: a record of 2^20
	// buckets is far beyond any real estimate, and garbage lengths must
	// not drive giant allocations.
	maxFramePayload = 1 << 24
	// maxStart bounds a record's start trial to something addressable as
	// an int on every platform.
	maxStart = 1 << 50
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one CRC frame holding payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// readFrame decodes the frame at the head of b, returning its payload and
// total encoded size. ok=false on truncation, an insane length, or a CRC
// mismatch — the caller treats all three identically (stop, count).
func readFrame(b []byte) (payload []byte, size int, ok bool) {
	if len(b) < 8 {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxFramePayload || int(n) > len(b)-8 {
		return nil, 0, false
	}
	payload = b[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, false
	}
	return payload, 8 + int(n), true
}

// encodeHeader serializes the segment's identity.
func encodeHeader(k Key) []byte {
	out := []byte{kindHeader}
	out = binary.LittleEndian.AppendUint32(out, headerVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(k.Batch))
	out = binary.LittleEndian.AppendUint64(out, k.BaseSeed)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(k.PlanKey)))
	return append(out, k.PlanKey...)
}

// decodeHeader parses a header payload.
func decodeHeader(p []byte) (Key, bool) {
	if len(p) < 21 || p[0] != kindHeader {
		return Key{}, false
	}
	if binary.LittleEndian.Uint32(p[1:]) != headerVersion {
		return Key{}, false
	}
	batch := binary.LittleEndian.Uint32(p[5:])
	seed := binary.LittleEndian.Uint64(p[9:])
	keyLen := binary.LittleEndian.Uint32(p[17:])
	if int(keyLen) != len(p)-21 {
		return Key{}, false
	}
	return Key{PlanKey: string(p[21:]), BaseSeed: seed, Batch: int(batch)}, true
}

// encodeRecord serializes one record: buckets covering trials
// [start, start+Σtrials).
func encodeRecord(start int, buckets []faultcast.TallyBucket) []byte {
	out := make([]byte, 0, 13+8*len(buckets))
	out = append(out, kindRecord)
	out = binary.LittleEndian.AppendUint64(out, uint64(start))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(buckets)))
	for _, b := range buckets {
		out = binary.LittleEndian.AppendUint32(out, uint32(b.Trials))
		out = binary.LittleEndian.AppendUint32(out, uint32(b.Successes))
	}
	return out
}

// decodeRecord parses and validates a record payload: exact length for
// its bucket count, a sane start, positive bucket sizes, successes
// within them. Any violation is corruption — a decoded record is always
// a tally some writer could legitimately have produced.
func decodeRecord(p []byte) (start int, buckets []faultcast.TallyBucket, ok bool) {
	if len(p) < 13 || p[0] != kindRecord {
		return 0, nil, false
	}
	s := binary.LittleEndian.Uint64(p[1:])
	count := binary.LittleEndian.Uint32(p[9:])
	if s > maxStart || count == 0 || len(p)-13 != 8*int(count) {
		return 0, nil, false
	}
	buckets = make([]faultcast.TallyBucket, count)
	off := 13
	for i := range buckets {
		trials := binary.LittleEndian.Uint32(p[off:])
		succ := binary.LittleEndian.Uint32(p[off+4:])
		if trials == 0 || succ > trials {
			return 0, nil, false
		}
		buckets[i] = faultcast.TallyBucket{Trials: int(trials), Successes: int(succ)}
		off += 8
	}
	return int(s), buckets, true
}

// loadResult is loadSegment's outcome: the decoded bucket state, the
// intact byte prefix, and what was lost getting there.
type loadResult struct {
	key     Key
	buckets []faultcast.TallyBucket
	end     int
	valid   int64
	corrupt int
	rewinds int
}

// loadSegment decodes the longest intact prefix of the segment at path.
// It never fails: a missing file is an empty segment, and the first bad
// frame (torn, bit-flipped, contiguity-breaking) stops the load with
// everything before it kept. When want is non-zero the header must match
// it exactly — a mismatch invalidates the whole file (valid=0), so the
// next append starts it over rather than mixing streams.
func loadSegment(path string, want Key) loadResult {
	res := loadResult{key: want}
	data, err := os.ReadFile(path)
	if err != nil {
		return res
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		if len(data) > 0 {
			res.corrupt++
		}
		return res
	}
	off := int64(len(magic))
	payload, n, ok := readFrame(data[off:])
	if !ok {
		res.corrupt++
		return res
	}
	hk, ok := decodeHeader(payload)
	if !ok || (want != Key{} && hk != want) {
		res.corrupt++
		return res
	}
	res.key = hk
	off += int64(n)
	res.valid = off
	for off < int64(len(data)) {
		payload, n, ok := readFrame(data[off:])
		if !ok {
			res.corrupt++
			return res
		}
		start, buckets, ok := decodeRecord(payload)
		if !ok {
			res.corrupt++
			return res
		}
		switch {
		case start == res.end:
		case start < res.end:
			// Rewind: legal only at an existing bucket boundary.
			pos, keep := 0, -1
			for i := range res.buckets {
				if pos == start {
					keep = i
					break
				}
				pos += res.buckets[i].Trials
			}
			if keep < 0 {
				res.corrupt++
				return res
			}
			res.buckets = res.buckets[:keep:keep]
			res.end = start
			res.rewinds++
		default: // a gap: trials [res.end, start) were never stored
			res.corrupt++
			return res
		}
		res.buckets = append(res.buckets, buckets...)
		for _, b := range buckets {
			res.end += b.Trials
		}
		off += int64(n)
		res.valid = off
	}
	return res
}

// hashString reduces an arbitrary plan key to a fixed filename-safe form.
func hashString(s string) [32]byte { return sha256.Sum256([]byte(s)) }

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"faultcast"
)

// FuzzStoreRecord drives arbitrary bytes through the record codec and
// the segment loader. The invariants are the store's whole safety
// story: decoding never panics, anything decodeRecord accepts is a
// record some writer could legitimately have produced (positive bucket
// sizes, successes within them), a genuine record round-trips
// bit-identically, and loadSegment's output is always internally
// consistent — end equals the bucket sum — no matter what the file
// holds. Mirrors graphspec_fuzz_test.go at the root: parse-don't-trust,
// with the corpus seeded from real encodings and their mutations.
func FuzzStoreRecord(f *testing.F) {
	// Real encodings...
	f.Add(encodeRecord(0, []faultcast.TallyBucket{{Trials: 32, Successes: 10}}))
	f.Add(encodeRecord(64, []faultcast.TallyBucket{{Trials: 32, Successes: 0}, {Trials: 7, Successes: 7}}))
	f.Add(encodeHeader(Key{PlanKey: "ab12", BaseSeed: 3, Batch: 32}))
	// ...and shapes that must be rejected: truncations, a zero bucket,
	// successes past trials, an absurd count, raw garbage.
	r := encodeRecord(32, []faultcast.TallyBucket{{Trials: 32, Successes: 5}})
	f.Add(r[:len(r)-1])
	f.Add(r[:13])
	f.Add(encodeRecord(0, []faultcast.TallyBucket{{Trials: 0, Successes: 0}}))
	f.Add(encodeRecord(0, []faultcast.TallyBucket{{Trials: 3, Successes: 9}}))
	f.Add([]byte{kindRecord, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte("FCTALLY1 but not really"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		start, buckets, ok := decodeRecord(payload)
		if ok {
			// Accepted: must be a legitimate record, and re-encoding must
			// reproduce the accepted bytes exactly (the codec is canonical).
			if err := checkBuckets(start, buckets); err != nil {
				t.Fatalf("decodeRecord accepted an invalid record: %v", err)
			}
			if len(buckets) == 0 {
				t.Fatal("decodeRecord accepted an empty record")
			}
			if re := encodeRecord(start, buckets); !bytes.Equal(re, payload) {
				t.Fatalf("round-trip mismatch: %x -> %x", payload, re)
			}
		}

		// The same bytes as a frame payload inside a file: the loader
		// must never panic and never produce inconsistent state, whether
		// the frame is intact, torn, or garbage.
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.tally")
		var file []byte
		file = append(file, magic...)
		file = appendFrame(file, encodeHeader(Key{PlanKey: "ab12", BaseSeed: 3, Batch: 32}))
		file = appendFrame(file, encodeRecord(0, []faultcast.TallyBucket{{Trials: 32, Successes: 9}}))
		framed := appendFrame(append([]byte{}, file...), payload)
		for _, data := range [][]byte{
			framed,                     // payload as a properly CRC'd frame
			append(file, payload...),   // payload as raw tail garbage
			payload,                    // payload as the whole file
			framed[:len(framed)*3/4+1], // torn mid-frame
		} {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			res := loadSegment(path, Key{})
			sum := 0
			for _, b := range res.buckets {
				if b.Trials <= 0 || b.Successes < 0 || b.Successes > b.Trials {
					t.Fatalf("loadSegment produced invalid bucket %+v from %x", b, data)
				}
				sum += b.Trials
			}
			if sum != res.end {
				t.Fatalf("loadSegment inconsistent: end=%d sum=%d from %x", res.end, sum, data)
			}
			if res.valid > int64(len(data)) {
				t.Fatalf("valid prefix %d exceeds file size %d", res.valid, len(data))
			}
			// And the full Store path on top of it: load, then append —
			// never a panic, and the appended state must round-trip.
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := s.LoadTally("ab12", 3, 32)
			if err != nil {
				t.Fatalf("LoadTally errored on corrupt input: %v", err)
			}
			startAt := 0
			for _, b := range prev {
				startAt += b.Trials
			}
			next := []faultcast.TallyBucket{{Trials: 32, Successes: 1}}
			if err := s.AppendTally("ab12", 3, 32, startAt, next); err != nil {
				t.Fatalf("append after corrupt load: %v", err)
			}
			got, _ := s.LoadTally("ab12", 3, 32)
			if want := append(append([]faultcast.TallyBucket{}, prev...), next...); !reflect.DeepEqual(got, want) {
				t.Fatalf("append after corrupt load: got %v want %v", got, want)
			}
		}
	})
}

package protocol

import (
	"math"
	"testing"
)

func TestWindowCOmission(t *testing.T) {
	// At p = 0.5: c = 2.5/log2(2) = 2.5, so p^(c·log2 n) = n^(-2.5) < 1/n².
	if c := WindowCOmission(0.5); math.Abs(c-2.5) > 1e-12 {
		t.Fatalf("c(0.5) = %v, want 2.5", c)
	}
	// The defining inequality p^(c·log2 n) <= 1/n² for a range of p, n.
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		c := WindowCOmission(p)
		for _, n := range []float64{4, 64, 1024} {
			lhs := math.Pow(p, c*math.Log2(n))
			if lhs > 1/(n*n)+1e-12 {
				t.Fatalf("p=%v n=%v: p^(c log n) = %v > 1/n²", p, n, lhs)
			}
		}
	}
	if c := WindowCOmission(0); c != 1 {
		t.Fatalf("c(0) = %v, want 1", c)
	}
}

func TestWindowCOmissionPanicsAtOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 did not panic")
		}
	}()
	WindowCOmission(1)
}

func TestWindowCMalicious(t *testing.T) {
	// The Hoeffding bound with m = c·log2 n must push the vote error
	// below 1/n².
	for _, q := range []float64{0.1, 0.3, 0.45} {
		c := WindowCMalicious(q)
		for _, n := range []float64{8, 256} {
			m := c * math.Log2(n)
			bound := math.Exp(-2 * m * (0.5 - q) * (0.5 - q))
			if bound > 1/(n*n)+1e-9 {
				t.Fatalf("q=%v n=%v: bound %v > 1/n²", q, n, bound)
			}
		}
	}
	if WindowCMalicious(0.5) != 64 || WindowCMalicious(0.7) != 64 {
		t.Fatal("q >= 1/2 should cap at 64")
	}
	// Monotone: harder q -> bigger window.
	if WindowCMalicious(0.4) <= WindowCMalicious(0.2) {
		t.Fatal("window constant not monotone in q")
	}
}

func TestWindowCRadioMalicious(t *testing.T) {
	// Below the radio threshold the constant is finite and grows with
	// both p and Δ.
	c1 := WindowCRadioMalicious(0.05, 2)
	c2 := WindowCRadioMalicious(0.1, 2)
	c3 := WindowCRadioMalicious(0.05, 8)
	if c1 <= 0 || c2 <= c1 || c3 <= c1 {
		t.Fatalf("radio window constants not monotone: %v %v %v", c1, c2, c3)
	}
	// p -> 1 degenerates to the cap path (qGood -> 0 handled).
	if c := WindowCRadioMalicious(1, 4); c != 64 {
		t.Fatalf("p=1 radio window = %v, want 64 (cap)", c)
	}
}

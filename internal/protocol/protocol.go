// Package protocol provides the shared building blocks of the paper's
// broadcasting algorithms: majority voting over received messages, the
// window arithmetic m = ceil(c·log n) that all Section-2 algorithms use,
// and the default message ("0" in the paper) adopted when no majority
// exists.
package protocol

import (
	"math"
	"sort"
)

// Default is the paper's default message "0": the value a node adopts when
// it has received nothing or when a vote ties.
var Default = []byte{'0'}

// IsDefault reports whether payload equals the default message.
func IsDefault(payload []byte) bool {
	return len(payload) == 1 && payload[0] == Default[0]
}

// WindowLen returns m = ceil(c * log2(n)), the per-phase window length used
// by Simple-Omission, Simple-Malicious, and the Theorem 3.4 radio
// algorithms. For n <= 1 it returns max(1, ceil(c)) so degenerate graphs
// still get a positive window.
func WindowLen(c float64, n int) int {
	if c <= 0 {
		panic("protocol: window constant must be positive")
	}
	lg := 1.0
	if n > 1 {
		lg = math.Log2(float64(n))
	}
	m := int(math.Ceil(c * lg))
	if m < 1 {
		m = 1
	}
	return m
}

// Tally counts votes over message payloads and reports the plurality
// winner. Ties (including an empty tally) resolve to Default, matching the
// paper's "or 0 if there is no majority".
type Tally struct {
	counts map[string]int
	total  int
}

// NewTally returns an empty Tally.
func NewTally() *Tally {
	return &Tally{counts: make(map[string]int)}
}

// Add records one vote for payload.
func (t *Tally) Add(payload []byte) {
	t.counts[string(payload)]++
	t.total++
}

// Total returns the number of votes recorded.
func (t *Tally) Total() int { return t.total }

// Count returns the number of votes for payload.
func (t *Tally) Count(payload []byte) int { return t.counts[string(payload)] }

// Winner returns the payload with strictly the most votes, or Default when
// the tally is empty or the top count is shared by two or more payloads.
func (t *Tally) Winner() []byte {
	best, bestCount, tie := "", -1, false
	// Iterate in sorted key order so behaviour is deterministic even in
	// the tie-inspection path.
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := t.counts[k]
		switch {
		case c > bestCount:
			best, bestCount, tie = k, c, false
		case c == bestCount:
			tie = true
		}
	}
	if bestCount <= 0 || tie {
		return append([]byte(nil), Default...)
	}
	return []byte(best)
}

// Reset clears the tally for reuse.
func (t *Tally) Reset() {
	t.counts = make(map[string]int)
	t.total = 0
}

// MajorityBuffer is a sliding-window vote used by the unsynchronized
// variant of Simple-Malicious described after Theorem 2.2: a node accepts
// a message as genuine once at least half of the last m observations on a
// link carry identical content.
type MajorityBuffer struct {
	window int
	buf    [][]byte
	next   int
	filled int
}

// NewMajorityBuffer returns a buffer over windows of the given length.
func NewMajorityBuffer(window int) *MajorityBuffer {
	if window < 1 {
		panic("protocol: window must be >= 1")
	}
	return &MajorityBuffer{window: window, buf: make([][]byte, window)}
}

// Observe records one observation (nil = silence) for the current round.
func (b *MajorityBuffer) Observe(payload []byte) {
	var cp []byte
	if payload != nil {
		cp = append([]byte(nil), payload...)
	}
	b.buf[b.next] = cp
	b.next = (b.next + 1) % b.window
	if b.filled < b.window {
		b.filled++
	}
}

// Accepted returns the payload occupying at least half the window, or nil
// if none does (silence never qualifies).
func (b *MajorityBuffer) Accepted() []byte {
	if b.filled == 0 {
		return nil
	}
	counts := make(map[string]int)
	for i := 0; i < b.filled; i++ {
		if b.buf[i] != nil {
			counts[string(b.buf[i])]++
		}
	}
	need := (b.window + 1) / 2
	for k, c := range counts {
		if c >= need {
			return []byte(k)
		}
	}
	return nil
}

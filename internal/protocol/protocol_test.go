package protocol

import (
	"bytes"
	"testing"
	"testing/quick"

	"faultcast/internal/rng"
)

func TestWindowLen(t *testing.T) {
	cases := []struct {
		c    float64
		n    int
		want int
	}{
		{1, 2, 1},
		{1, 1024, 10},
		{2, 1024, 20},
		{3.5, 8, 11}, // ceil(3.5*3)
		{1, 1, 1},
		{0.1, 4, 1},
	}
	for _, tc := range cases {
		if got := WindowLen(tc.c, tc.n); got != tc.want {
			t.Errorf("WindowLen(%v, %d) = %d, want %d", tc.c, tc.n, got, tc.want)
		}
	}
}

func TestWindowLenPanicsOnBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WindowLen(0, n) did not panic")
		}
	}()
	WindowLen(0, 10)
}

func TestTallyWinner(t *testing.T) {
	tl := NewTally()
	tl.Add([]byte("a"))
	tl.Add([]byte("b"))
	tl.Add([]byte("a"))
	if got := tl.Winner(); string(got) != "a" {
		t.Fatalf("winner = %q, want a", got)
	}
	if tl.Total() != 3 || tl.Count([]byte("a")) != 2 {
		t.Fatalf("total=%d count(a)=%d", tl.Total(), tl.Count([]byte("a")))
	}
}

func TestTallyTieGivesDefault(t *testing.T) {
	tl := NewTally()
	tl.Add([]byte("a"))
	tl.Add([]byte("b"))
	if got := tl.Winner(); !IsDefault(got) {
		t.Fatalf("tie winner = %q, want default", got)
	}
}

func TestTallyEmptyGivesDefault(t *testing.T) {
	if got := NewTally().Winner(); !IsDefault(got) {
		t.Fatalf("empty winner = %q, want default", got)
	}
}

func TestTallyReset(t *testing.T) {
	tl := NewTally()
	tl.Add([]byte("a"))
	tl.Reset()
	if tl.Total() != 0 || !IsDefault(tl.Winner()) {
		t.Fatal("reset did not clear tally")
	}
}

// Property: the winner is permutation-invariant and, when some payload has
// a strict plurality, equals that payload.
func TestTallyPluralityProperty(t *testing.T) {
	r := rng.New(5)
	check := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		votes := make([][]byte, 0, 30)
		n := 1 + rr.Intn(30)
		for i := 0; i < n; i++ {
			votes = append(votes, []byte{byte('a' + rr.Intn(3))})
		}
		tl := NewTally()
		for _, v := range votes {
			tl.Add(v)
		}
		w1 := tl.Winner()
		// Shuffle and re-tally.
		r.Shuffle(len(votes), func(i, j int) { votes[i], votes[j] = votes[j], votes[i] })
		t2 := NewTally()
		for _, v := range votes {
			t2.Add(v)
		}
		return bytes.Equal(w1, t2.Winner())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTallyStrictPlurality(t *testing.T) {
	tl := NewTally()
	for i := 0; i < 5; i++ {
		tl.Add([]byte("x"))
	}
	for i := 0; i < 4; i++ {
		tl.Add([]byte("y"))
	}
	tl.Add([]byte("z"))
	if got := tl.Winner(); string(got) != "x" {
		t.Fatalf("winner = %q, want x", got)
	}
}

func TestMajorityBufferAccepts(t *testing.T) {
	b := NewMajorityBuffer(4)
	b.Observe([]byte("m"))
	if b.Accepted() != nil {
		t.Fatal("accepted with only 1 of 4 observations")
	}
	b.Observe([]byte("m"))
	if got := b.Accepted(); string(got) != "m" {
		t.Fatalf("2 of window 4 should accept, got %q", got)
	}
}

func TestMajorityBufferSilenceNeverAccepted(t *testing.T) {
	b := NewMajorityBuffer(3)
	b.Observe(nil)
	b.Observe(nil)
	b.Observe(nil)
	if b.Accepted() != nil {
		t.Fatal("silence was accepted as a message")
	}
}

func TestMajorityBufferSlides(t *testing.T) {
	b := NewMajorityBuffer(4)
	for i := 0; i < 4; i++ {
		b.Observe([]byte("old"))
	}
	if got := b.Accepted(); string(got) != "old" {
		t.Fatalf("got %q", got)
	}
	for i := 0; i < 4; i++ {
		b.Observe([]byte("new"))
	}
	if got := b.Accepted(); string(got) != "new" {
		t.Fatalf("window did not slide: got %q", got)
	}
}

func TestMajorityBufferEmpty(t *testing.T) {
	if NewMajorityBuffer(3).Accepted() != nil {
		t.Fatal("empty buffer accepted something")
	}
}

func TestMajorityBufferPanicsOnZeroWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMajorityBuffer(0) did not panic")
		}
	}()
	NewMajorityBuffer(0)
}

func TestIsDefault(t *testing.T) {
	if !IsDefault(Default) {
		t.Fatal("Default not recognized")
	}
	if IsDefault([]byte("00")) || IsDefault(nil) || IsDefault([]byte("1")) {
		t.Fatal("false positive in IsDefault")
	}
}

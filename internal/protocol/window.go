package protocol

import "math"

// WindowCOmission returns a window constant c making p^(c·log2 n) ≤ 1/n²
// with a 25% margin — the paper's "let c be such that p^(c·log n) < 1/n²"
// for Algorithm Simple-Omission: c = 2.5 / log2(1/p).
func WindowCOmission(p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		panic("protocol: omission window undefined for p >= 1")
	}
	return 2.5 / math.Log2(1/p)
}

// WindowCMalicious returns a window constant for the Chernoff argument of
// Theorems 2.2/2.4: the per-window majority vote over observations that
// are wrong with probability q < 1/2 must err with probability ≤ 1/n².
// Hoeffding gives error ≤ exp(−2m(1/2−q)²); with m = c·log2 n the n's
// cancel into c = 2·ln2/(1/2−q)² (already including a 2x margin). For
// q ≥ 1/2 the vote cannot work; the constant is capped so callers can
// still build (deliberately failing) configurations.
func WindowCMalicious(q float64) float64 {
	if q >= 0.5 {
		return 64
	}
	d := 0.5 - q
	return 2 * math.Ln2 / (d * d)
}

// WindowCRadioMalicious adapts WindowCMalicious to the radio analysis of
// Theorem 2.4: with per-step failure probability p on a node of degree
// ≤ delta, a listener receives something with probability ≥ q_good =
// (1−p)^(delta+1) and a received message is wrong with probability
// ≤ p/(p+q_good); the window must be inflated by 2/q_good so that enough
// receptions arrive (the event E_rec of the proof).
func WindowCRadioMalicious(p float64, delta int) float64 {
	qGood := math.Pow(1-p, float64(delta+1))
	if qGood <= 0 {
		return 64
	}
	condWrong := p / (p + qGood)
	return WindowCMalicious(condWrong) * (2 / qGood)
}

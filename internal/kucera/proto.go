package kucera

import (
	"fmt"
	"math"

	"faultcast/internal/graph"
	"faultcast/internal/protocol"
	"faultcast/internal/sim"
)

// Proto is the runtime for a compiled program over the branches of a BFS
// tree (Theorem 3.2): each node plays the line position equal to its
// depth, receives from its parent, and sends to all of its children.
type Proto struct {
	prog *Program
	tree *graph.Tree
}

// New compiles a plan for the BFS tree of g rooted at source. The plan
// must cover the tree height; use PlanForGraph for the Theorem 3.2
// parameter choice.
func New(g *graph.Graph, source int, plan *Plan) (*Proto, error) {
	tree := graph.BFSTree(g, source)
	if plan.G.Length < tree.Height() {
		return nil, fmt.Errorf("kucera: plan covers length %d < tree height %d", plan.G.Length, tree.Height())
	}
	prog, err := Compile(plan)
	if err != nil {
		return nil, err
	}
	return &Proto{prog: prog, tree: tree}, nil
}

// PlanForGraph builds the Theorem 3.2 plan for g: a line plan of length
// at least L = D + d·log^α(n), where the paper takes any α > 1 and a
// constant d making the per-branch error below 1/n².
func PlanForGraph(g *graph.Graph, source int, p, alpha, d float64, opts Options) (*Plan, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("kucera: alpha must exceed 1, got %v", alpha)
	}
	tree := graph.BFSTree(g, source)
	length := tree.Height() + padLength(g.N(), alpha, d)
	if length < 1 {
		length = 1
	}
	return BuildPlan(length, p, opts)
}

// padLength returns ceil(d·log2(n)^alpha).
func padLength(n int, alpha, d float64) int {
	if n <= 1 {
		return 1
	}
	lg := log2(float64(n))
	v := d * pow(lg, alpha)
	return int(v) + 1
}

// Rounds returns the running time: the compiled horizon plus one
// quiescent round in which the last receives and the root combine
// resolve (no transmissions occur in it).
func (p *Proto) Rounds() int { return p.prog.Rounds + 1 }

// Program exposes the compiled program (tests, diagnostics).
func (p *Proto) Program() *Program { return p.prog }

// NewNode returns the runtime instance for node id.
func (p *Proto) NewNode(id int) sim.Node {
	return &node{proto: p}
}

type node struct {
	proto *Proto
	env   *sim.Env
	pos   *posProgram
	depth int

	regs map[int][]byte
	// pendingRecv is the index into pos.Recvs of the next unresolved
	// receive; recvGot holds the payload delivered for the receive round
	// currently in flight (nil = silence so far).
	nextRecv    int
	nextCombine int
	nextSend    int
	recvGot     []byte
	recvRound   int
}

func (n *node) Init(env *sim.Env) {
	n.env = env
	n.depth = n.proto.tree.Depth[env.ID]
	n.pos = &n.proto.prog.Positions[n.depth]
	n.regs = make(map[int][]byte)
	n.recvRound = -1
	if env.IsSource() {
		// Position 0's input register (the block input) is the source
		// message itself.
		n.regs[n.pos.FinalReg] = env.SourceMsg
	}
}

// resolve advances receives and combines that are due before the sends of
// the given round: receives of rounds < round, then combines of rounds
// <= round (combines execute at the start of their round).
func (n *node) resolve(round int) {
	for n.nextRecv < len(n.pos.Recvs) && n.pos.Recvs[n.nextRecv].Round < round {
		r := n.pos.Recvs[n.nextRecv]
		payload := protocol.Default
		if n.recvRound == r.Round && n.recvGot != nil {
			payload = n.recvGot
		}
		n.regs[r.Reg] = payload
		n.recvGot = nil
		n.nextRecv++
	}
	for n.nextCombine < len(n.pos.Combines) && n.pos.Combines[n.nextCombine].Round <= round {
		c := n.pos.Combines[n.nextCombine]
		tally := protocol.NewTally()
		for _, src := range c.Srcs {
			v, ok := n.regs[src]
			if !ok {
				v = protocol.Default
			}
			tally.Add(v)
		}
		n.regs[c.Dst] = tally.Winner()
		n.nextCombine++
	}
}

func (n *node) Transmit(round int) []sim.Transmission {
	n.resolve(round)
	if n.nextSend >= len(n.pos.Sends) || n.pos.Sends[n.nextSend].Round != round {
		return nil
	}
	s := n.pos.Sends[n.nextSend]
	n.nextSend++
	payload, ok := n.regs[s.Reg]
	if !ok {
		payload = protocol.Default
	}
	children := n.proto.tree.Children[n.env.ID]
	if len(children) == 0 {
		return nil
	}
	ts := make([]sim.Transmission, len(children))
	for i, c := range children {
		ts[i] = sim.Transmission{To: c, Payload: payload}
	}
	return ts
}

func (n *node) Deliver(round, from int, payload []byte) {
	if from != n.proto.tree.Parent[n.env.ID] {
		return // only the parent link carries protocol traffic
	}
	// Record the payload for the receive scheduled this round, if any.
	if n.nextRecv < len(n.pos.Recvs) && n.pos.Recvs[n.nextRecv].Round == round {
		n.recvRound = round
		n.recvGot = append([]byte(nil), payload...)
	}
}

// Output returns the node's final committed value: the output register of
// the longest block ending at its position. It never mutates state — the
// engine may poll it between rounds — so pending work resolves only in
// Transmit; the extra quiescent round in Proto.Rounds guarantees
// everything has resolved by the horizon.
func (n *node) Output() []byte {
	return n.regs[n.pos.FinalReg]
}

func log2(x float64) float64   { return math.Log2(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }

package kucera

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: the compiled CO1/CO2 program in the transposed layout.
// Registers are single-assignment cells whose values, in the small payload
// universe of the supported fault lowerings, are fully described by the
// payload symbol columns — one uint64 per register per column (lane L's
// bit of column 0 = "this register holds M in trial L"; all columns clear
// = the default). The majority combine over K source registers becomes a
// word-parallel vote: over two symbols a bit-sliced popcount against the
// strict-majority threshold K/2+1 (plurality over two symbols is exactly
// strict majority: cntM > K − cntM), over three symbols one counter per
// symbol and bitset.LanePlurality — every source register always votes
// (a never-written register holds the default, like the scalar node's
// missing-register read), so the default counter is fed by the lanes in
// neither non-default column.
//
// Every vertex at the same tree depth runs the same position program, so
// the instruction cursors are shared per depth and each instruction is
// applied to all of the depth's vertices at once.

// NewLaneKernel returns the transposed protocol instance for the given
// symbol-alphabet size.
func (p *Proto) NewLaneKernel(symbols int) sim.LaneKernel {
	n := p.tree.N()
	cols := symbols - 1
	maxDepth := 0
	for _, d := range p.tree.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	byDepth := make([][]int, maxDepth+1)
	for v, d := range p.tree.Depth {
		byDepth[d] = append(byDepth[d], v)
	}
	progs := make([]*laneDepthProg, maxDepth+1)
	maxW := 1
	for d := range progs {
		progs[d] = newLaneDepthProg(&p.prog.Positions[d])
		for _, c := range progs[d].combines {
			if c.width > maxW {
				maxW = c.width
			}
		}
	}
	k := &laneKernel{
		proto:   p,
		byDepth: byDepth,
		progs:   progs,
		reg:     make([][][]uint64, cols),
		pending: make([][]uint64, cols),
	}
	for c := 0; c < cols; c++ {
		k.reg[c] = make([][]uint64, n)
		for v := 0; v < n; v++ {
			k.reg[c][v] = make([]uint64, progs[p.tree.Depth[v]].nregs)
		}
		k.pending[c] = make([]uint64, n)
	}
	for i := range k.scratch {
		k.scratch[i] = make([]uint64, maxW)
	}
	return k
}

// LaneTargets returns the per-vertex send-target lists (the tree children
// — the compiled program is message passing only).
func (p *Proto) LaneTargets() [][]int { return p.tree.Children }

type laneInstr struct {
	round int
	reg   int // dense register index
}

type laneCombine struct {
	round int
	dst   int
	srcs  []int
	width int    // counter planes: bits.Len(len(srcs))
	need  uint64 // strict-majority threshold len(srcs)/2+1
}

// laneDepthProg is one position's instruction table with register ids
// remapped to a dense 0..nregs-1 space (the runtime materializes only the
// registers its own position touches, like the scalar node's lazy map).
type laneDepthProg struct {
	nregs    int
	final    int // dense index of FinalReg
	recvs    []laneInstr
	sends    []laneInstr
	combines []laneCombine

	// Cursors, reset per trial; instructions are consumed in the scalar
	// node's order (receives of rounds < r, combines of rounds <= r,
	// then the send of round r).
	nextRecv, nextCombine, nextSend int
}

func newLaneDepthProg(pos *posProgram) *laneDepthProg {
	dp := &laneDepthProg{}
	idx := make(map[int]int)
	dense := func(reg int) int {
		i, ok := idx[reg]
		if !ok {
			i = dp.nregs
			idx[reg] = i
			dp.nregs++
		}
		return i
	}
	dp.final = dense(pos.FinalReg)
	for _, r := range pos.Recvs {
		dp.recvs = append(dp.recvs, laneInstr{round: r.Round, reg: dense(r.Reg)})
	}
	for _, s := range pos.Sends {
		dp.sends = append(dp.sends, laneInstr{round: s.Round, reg: dense(s.Reg)})
	}
	for _, c := range pos.Combines {
		srcs := make([]int, len(c.Srcs))
		for i, s := range c.Srcs {
			srcs[i] = dense(s)
		}
		dp.combines = append(dp.combines, laneCombine{
			round: c.Round,
			dst:   dense(c.Dst),
			srcs:  srcs,
			width: bits.Len(uint(len(srcs))),
			need:  uint64(len(srcs)/2 + 1),
		})
	}
	return dp
}

type laneKernel struct {
	proto   *Proto
	byDepth [][]int
	progs   []*laneDepthProg

	// reg[c][vertex][dense register] is symbol column c of the register's
	// value; pending[c][vertex] the in-flight receive's columns (all clear
	// on silence or a default payload).
	reg     [][][]uint64
	pending [][]uint64
	scratch [3][]uint64 // per-symbol combine counters
}

func (k *laneKernel) Reset() {
	for c := range k.reg {
		for v := range k.reg[c] {
			for j := range k.reg[c][v] {
				k.reg[c][v][j] = 0
			}
			k.pending[c][v] = 0
		}
	}
	for _, dp := range k.progs {
		dp.nextRecv, dp.nextCombine, dp.nextSend = 0, 0, 0
	}
	// Position 0's input register is the source message itself.
	k.reg[0][k.proto.tree.Root][k.progs[0].final] = ^uint64(0)
}

// combine runs one combine instruction for vertex v.
func (k *laneKernel) combine(c *laneCombine, v int) {
	if len(k.reg) == 1 {
		counter := k.scratch[0][:c.width]
		for i := range counter {
			counter[i] = 0
		}
		regs := k.reg[0][v]
		for _, s := range c.srcs {
			bitset.LaneAdd(counter, regs[s])
		}
		regs[c.dst] = bitset.LaneGEConst(counter, c.need)
		return
	}
	c0 := k.scratch[0][:c.width]
	c1 := k.scratch[1][:c.width]
	c2 := k.scratch[2][:c.width]
	for i := 0; i < c.width; i++ {
		c0[i], c1[i], c2[i] = 0, 0, 0
	}
	r0, r1 := k.reg[0][v], k.reg[1][v]
	for _, s := range c.srcs {
		bitset.LaneAdd(c1, r0[s])
		bitset.LaneAdd(c2, r1[s])
		bitset.LaneAdd(c0, ^(r0[s] | r1[s]))
	}
	w1, w2 := bitset.LanePlurality(c0, c1, c2)
	r0[c.dst] = w1
	r1[c.dst] = w2
}

func (k *laneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	for d, dp := range k.progs {
		vs := k.byDepth[d]
		for dp.nextRecv < len(dp.recvs) && dp.recvs[dp.nextRecv].round < round {
			reg := dp.recvs[dp.nextRecv].reg
			for c := range k.reg {
				for _, v := range vs {
					k.reg[c][v][reg] = k.pending[c][v]
					k.pending[c][v] = 0
				}
			}
			dp.nextRecv++
		}
		for dp.nextCombine < len(dp.combines) && dp.combines[dp.nextCombine].round <= round {
			c := &dp.combines[dp.nextCombine]
			for _, v := range vs {
				k.combine(c, v)
			}
			dp.nextCombine++
		}
		if dp.nextSend < len(dp.sends) && dp.sends[dp.nextSend].round == round {
			reg := dp.sends[dp.nextSend].reg
			dp.nextSend++
			for _, v := range vs {
				if len(k.proto.tree.Children[v]) == 0 {
					continue
				}
				intent[v] = ^uint64(0)
				for c := range k.reg {
					pay[c][v] = k.reg[c][v][reg]
				}
			}
		}
	}
}

func (k *laneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	for d, dp := range k.progs {
		// Record the payload for the receive scheduled this round, if any
		// (cursors already consumed everything earlier, so a match can
		// only sit at the front).
		if dp.nextRecv < len(dp.recvs) && dp.recvs[dp.nextRecv].round == round {
			for _, v := range k.byDepth[d] {
				for c := range k.pending {
					k.pending[c][v] = heard[v] & sym[c][v]
				}
			}
		}
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for d, dp := range k.progs {
		for _, v := range k.byDepth[d] {
			and &= k.reg[0][v][dp.final]
		}
	}
	return and
}

package kucera

import (
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/sim"
)

// Lane kernel: the compiled CO1/CO2 program in the transposed layout.
// Registers are single-assignment cells whose values, in the two-symbol
// payload universe {M, default}, are fully described by one bit — so a
// position's register file becomes one uint64 per register (lane L's bit =
// "this register holds M in trial L"), and the majority combine over K
// source registers becomes a bit-sliced popcount compared against the
// strict-majority threshold K/2+1 (over two symbols, plurality is exactly
// strict majority: cntM > K − cntM).
//
// Every vertex at the same tree depth runs the same position program, so
// the instruction cursors are shared per depth and each instruction is
// applied to all of the depth's vertices at once.

// NewLaneKernel returns the transposed protocol instance.
func (p *Proto) NewLaneKernel() sim.LaneKernel {
	n := p.tree.N()
	maxDepth := 0
	for _, d := range p.tree.Depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	byDepth := make([][]int, maxDepth+1)
	for v, d := range p.tree.Depth {
		byDepth[d] = append(byDepth[d], v)
	}
	progs := make([]*laneDepthProg, maxDepth+1)
	maxW := 1
	for d := range progs {
		progs[d] = newLaneDepthProg(&p.prog.Positions[d])
		for _, c := range progs[d].combines {
			if c.width > maxW {
				maxW = c.width
			}
		}
	}
	regM := make([][]uint64, n)
	for v := 0; v < n; v++ {
		regM[v] = make([]uint64, progs[p.tree.Depth[v]].nregs)
	}
	return &laneKernel{
		proto:    p,
		byDepth:  byDepth,
		progs:    progs,
		regM:     regM,
		pendingM: make([]uint64, n),
		scratch:  make([]uint64, maxW),
	}
}

// LaneTargets returns the per-vertex send-target lists (the tree children
// — the compiled program is message passing only).
func (p *Proto) LaneTargets() [][]int { return p.tree.Children }

type laneInstr struct {
	round int
	reg   int // dense register index
}

type laneCombine struct {
	round int
	dst   int
	srcs  []int
	width int    // counter planes: bits.Len(len(srcs))
	need  uint64 // strict-majority threshold len(srcs)/2+1
}

// laneDepthProg is one position's instruction table with register ids
// remapped to a dense 0..nregs-1 space (the runtime materializes only the
// registers its own position touches, like the scalar node's lazy map).
type laneDepthProg struct {
	nregs    int
	final    int // dense index of FinalReg
	recvs    []laneInstr
	sends    []laneInstr
	combines []laneCombine

	// Cursors, reset per trial; instructions are consumed in the scalar
	// node's order (receives of rounds < r, combines of rounds <= r,
	// then the send of round r).
	nextRecv, nextCombine, nextSend int
}

func newLaneDepthProg(pos *posProgram) *laneDepthProg {
	dp := &laneDepthProg{}
	idx := make(map[int]int)
	dense := func(reg int) int {
		i, ok := idx[reg]
		if !ok {
			i = dp.nregs
			idx[reg] = i
			dp.nregs++
		}
		return i
	}
	dp.final = dense(pos.FinalReg)
	for _, r := range pos.Recvs {
		dp.recvs = append(dp.recvs, laneInstr{round: r.Round, reg: dense(r.Reg)})
	}
	for _, s := range pos.Sends {
		dp.sends = append(dp.sends, laneInstr{round: s.Round, reg: dense(s.Reg)})
	}
	for _, c := range pos.Combines {
		srcs := make([]int, len(c.Srcs))
		for i, s := range c.Srcs {
			srcs[i] = dense(s)
		}
		dp.combines = append(dp.combines, laneCombine{
			round: c.Round,
			dst:   dense(c.Dst),
			srcs:  srcs,
			width: bits.Len(uint(len(srcs))),
			need:  uint64(len(srcs)/2 + 1),
		})
	}
	return dp
}

type laneKernel struct {
	proto   *Proto
	byDepth [][]int
	progs   []*laneDepthProg

	regM     [][]uint64 // [vertex][dense register]: register holds M
	pendingM []uint64   // in-flight receive: payload == M (0 on silence/default)
	scratch  []uint64
}

func (k *laneKernel) Reset() {
	for v := range k.regM {
		for j := range k.regM[v] {
			k.regM[v][j] = 0
		}
		k.pendingM[v] = 0
	}
	for _, dp := range k.progs {
		dp.nextRecv, dp.nextCombine, dp.nextSend = 0, 0, 0
	}
	// Position 0's input register is the source message itself.
	k.regM[k.proto.tree.Root][k.progs[0].final] = ^uint64(0)
}

func (k *laneKernel) Transmit(round int, intent, payM []uint64) {
	for d, dp := range k.progs {
		vs := k.byDepth[d]
		for dp.nextRecv < len(dp.recvs) && dp.recvs[dp.nextRecv].round < round {
			reg := dp.recvs[dp.nextRecv].reg
			for _, v := range vs {
				k.regM[v][reg] = k.pendingM[v]
				k.pendingM[v] = 0
			}
			dp.nextRecv++
		}
		for dp.nextCombine < len(dp.combines) && dp.combines[dp.nextCombine].round <= round {
			c := &dp.combines[dp.nextCombine]
			counter := k.scratch[:c.width]
			for _, v := range vs {
				for i := range counter {
					counter[i] = 0
				}
				for _, s := range c.srcs {
					bitset.LaneAdd(counter, k.regM[v][s])
				}
				k.regM[v][c.dst] = bitset.LaneGEConst(counter, c.need)
			}
			dp.nextCombine++
		}
		if dp.nextSend < len(dp.sends) && dp.sends[dp.nextSend].round == round {
			reg := dp.sends[dp.nextSend].reg
			dp.nextSend++
			for _, v := range vs {
				if len(k.proto.tree.Children[v]) == 0 {
					continue
				}
				intent[v] = ^uint64(0)
				payM[v] = k.regM[v][reg]
			}
		}
	}
}

func (k *laneKernel) Absorb(round int, heard, heardM []uint64) {
	for d, dp := range k.progs {
		// Record the payload for the receive scheduled this round, if any
		// (cursors already consumed everything earlier, so a match can
		// only sit at the front).
		if dp.nextRecv < len(dp.recvs) && dp.recvs[dp.nextRecv].round == round {
			for _, v := range k.byDepth[d] {
				k.pendingM[v] = heard[v] & heardM[v]
			}
		}
	}
}

func (k *laneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for d, dp := range k.progs {
		for _, v := range k.byDepth[d] {
			and &= k.regM[v][dp.final]
		}
	}
	return and
}

package kucera

import (
	"fmt"
	"strings"

	"faultcast/internal/stat"
)

// PlanKind discriminates plan tree nodes.
type PlanKind int

const (
	// KindBase is the one-edge, one-step transfer.
	KindBase PlanKind = iota
	// KindSerial chains Count copies of Sub ([CO1]).
	KindSerial
	// KindRepeat runs Sub Count times and takes a majority ([CO2]).
	KindRepeat
)

// Plan is an expression tree over the composition rules. G caches the
// guarantee of the subtree.
type Plan struct {
	Kind  PlanKind
	Sub   *Plan
	Count int
	G     Guarantee
}

// base returns the Base plan leaf.
func basePlan(p float64) *Plan {
	return &Plan{Kind: KindBase, G: Base(p)}
}

// serialPlan wraps sub in a [CO1] chain.
func serialPlan(sub *Plan, rho int) *Plan {
	return &Plan{Kind: KindSerial, Sub: sub, Count: rho, G: Serial(sub.G, rho)}
}

// repeatPlan wraps sub in a [CO2] repetition.
func repeatPlan(sub *Plan, kappa int) *Plan {
	return &Plan{Kind: KindRepeat, Sub: sub, Count: kappa, G: Repeat(sub.G, kappa)}
}

// Options tunes BuildPlan. The zero value selects the defaults.
type Options struct {
	// Rho is the serial fan-out per level (default 8). Larger ρ improves
	// the time constant towards O(L) but weakens the error exponent
	// c = log_ρ 2 of e^(−Ω(L^c)).
	Rho int
	// Kappa is the per-level repetition (default 3; must be odd and >= 3).
	Kappa int
	// BootErr is the reliability the bootstrap repetition must reach
	// before leveling starts (default 1/(6·ρ²·2), giving the Q → 3(ρQ)²
	// recursion a 1/2 contraction factor per level).
	BootErr float64
}

func (o *Options) defaults() {
	if o.Rho == 0 {
		o.Rho = 8
	}
	if o.Kappa == 0 {
		o.Kappa = 3
	}
	if o.BootErr == 0 {
		o.BootErr = 1 / (12 * float64(o.Rho) * float64(o.Rho))
	}
}

// BuildPlan constructs a plan covering a line of at least length edges
// (the compiled protocol may legally run on any shorter line — trailing
// positions simply do not exist). It returns an error if p >= 1/2, where
// Lemma 3.2 does not apply and no repetition count can bootstrap.
func BuildPlan(length int, p float64, opts Options) (*Plan, error) {
	if length < 1 {
		return nil, fmt.Errorf("kucera: length %d < 1", length)
	}
	if p < 0 || p >= 0.5 {
		return nil, fmt.Errorf("kucera: failure probability %v outside [0, 1/2)", p)
	}
	opts.defaults()
	if opts.Kappa < 3 || opts.Kappa%2 == 0 {
		return nil, fmt.Errorf("kucera: kappa must be odd and >= 3, got %d", opts.Kappa)
	}
	if opts.Rho < 2 {
		return nil, fmt.Errorf("kucera: rho must be >= 2, got %d", opts.Rho)
	}

	// Bootstrap: repeat the one-step edge protocol until the majority
	// error drops below BootErr. The count is a constant depending only on
	// p (and the options), so the bootstrap adds O(1) time per level-0
	// segment.
	kappa0, err := bootKappa(p, opts.BootErr)
	if err != nil {
		return nil, err
	}
	plan := repeatPlan(basePlan(p), kappa0)

	// Leveling: alternate Serial(ρ) and Repeat(κ) until the plan covers
	// the requested length. Each level multiplies length by ρ, time by
	// ~ρ(1+κ/ρ), and squares the (scaled) error:
	// Q_{i+1} ≈ κ(ρ·Q_i)² < Q_i/2 once Q_i < BootErr.
	for plan.G.Length < length {
		rho := opts.Rho
		if need := (length + plan.G.Length - 1) / plan.G.Length; need < rho {
			rho = need // final level: don't overshoot more than necessary
		}
		plan = serialPlan(plan, rho)
		plan = repeatPlan(plan, opts.Kappa)
	}
	return plan, nil
}

// bootKappa returns the smallest odd κ with MajorityErr(κ, p) <= target.
// A linear scan suffices: for the failure rates Lemma 3.2 admits (p
// bounded away from 1/2 in practice) κ is a small constant, and each
// MajorityErr evaluation is O(κ).
func bootKappa(p, target float64) (int, error) {
	if p == 0 {
		return 1, nil
	}
	const maxKappa = 100001
	for kappa := 1; kappa <= maxKappa; kappa += 2 {
		if stat.MajorityErr(kappa, p) <= target {
			return kappa, nil
		}
	}
	return 0, fmt.Errorf("kucera: cannot bootstrap below error %v at p=%v within κ=%d", target, p, maxKappa)
}

// String renders the plan structure, e.g. "R3(S8(R21(base)))".
func (pl *Plan) String() string {
	var b strings.Builder
	pl.render(&b)
	return b.String()
}

func (pl *Plan) render(b *strings.Builder) {
	switch pl.Kind {
	case KindBase:
		b.WriteString("base")
	case KindSerial:
		fmt.Fprintf(b, "S%d(", pl.Count)
		pl.Sub.render(b)
		b.WriteByte(')')
	case KindRepeat:
		fmt.Fprintf(b, "R%d(", pl.Count)
		pl.Sub.render(b)
		b.WriteByte(')')
	}
}

// Package kucera implements broadcasting over a line (and, via the
// Theorem 3.2 extension, over the branches of a BFS tree) under limited
// malicious transmission failures with p < 1/2, following the composition
// framework of Kučera's algorithm as quoted in Section 3 of the paper.
//
// The paper's statement A_p(n, τ, δ, Q) — "for the line L_n with failure
// probability p there is a broadcast algorithm of time τ, delay δ, and
// failure probability at most Q" — is modeled by Guarantee. Two
// composition rules transform guarantees:
//
//	[CO1] Serial:  A_p(n, τ, δ, Q)  ⇒  A_p(ρn, ρτ, δ, 1−(1−Q)^ρ)
//	[CO2] Repeat:  A_p(n, τ, δ, Q)  ⇒  A_p(n, τ+(κ−1)δ, κδ, Σ_{j≥κ/2} C(κ,j)Q^j(1−Q)^(κ−j))
//
// A Plan is an expression tree over these rules; Compile lowers a plan to
// per-position instruction tables executed by the runtime protocol in
// proto.go. The planner (BuildPlan) bootstraps reliability with one large
// repetition, then alternates Serial(ρ) and Repeat(3); the resulting time
// is O(L) and the error e^(−Ω(L^c)) for c = log_ρ 2 < 1, exactly the shape
// of Lemma 3.2.
package kucera

import (
	"fmt"
	"math"

	"faultcast/internal/stat"
)

// Guarantee is the paper's A_p(n, τ, δ, Q): an algorithm for the line of
// Length edges, running in Time rounds, with per-node activity window
// (delay) Delay, and failure probability at most Err.
type Guarantee struct {
	Length int
	Time   int
	Delay  int
	Err    float64
}

// Base returns the guarantee of the trivial one-edge, one-step protocol:
// A_p(1, 1, 1, p).
func Base(p float64) Guarantee {
	return Guarantee{Length: 1, Time: 1, Delay: 1, Err: p}
}

// Serial applies composition rule [CO1]: chain ρ copies of the protocol,
// starting copy j at time j·τ. Length and time multiply by ρ; delay is
// unchanged; the chain fails if any segment fails.
func Serial(g Guarantee, rho int) Guarantee {
	if rho < 1 {
		panic("kucera: serial composition needs rho >= 1")
	}
	return Guarantee{
		Length: g.Length * rho,
		Time:   g.Time * rho,
		Delay:  g.Delay,
		Err:    1 - math.Pow(1-g.Err, float64(rho)),
	}
}

// Repeat applies composition rule [CO2]: run the protocol κ times with
// delay δ between successive executions and take the majority at the far
// end. Time becomes τ+(κ−1)δ, delay κδ, and the error the binomial
// majority tail (ties counted as errors).
func Repeat(g Guarantee, kappa int) Guarantee {
	if kappa < 1 {
		panic("kucera: repetition needs kappa >= 1")
	}
	return Guarantee{
		Length: g.Length,
		Time:   g.Time + (kappa-1)*g.Delay,
		Delay:  kappa * g.Delay,
		Err:    stat.MajorityErr(kappa, g.Err),
	}
}

// String renders the guarantee compactly.
func (g Guarantee) String() string {
	return fmt.Sprintf("A(n=%d, τ=%d, δ=%d, Q=%.3g)", g.Length, g.Time, g.Delay, g.Err)
}

package kucera

import (
	"math"
	"testing"
	"testing/quick"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

func TestGuaranteeBase(t *testing.T) {
	g := Base(0.3)
	if g.Length != 1 || g.Time != 1 || g.Delay != 1 || g.Err != 0.3 {
		t.Fatalf("base = %v", g)
	}
}

// TestCO1Algebra checks composition rule [CO1] exactly:
// A(n,τ,δ,Q) => A(ρn, ρτ, δ, 1-(1-Q)^ρ).
func TestCO1Algebra(t *testing.T) {
	g := Guarantee{Length: 3, Time: 7, Delay: 2, Err: 0.1}
	s := Serial(g, 4)
	if s.Length != 12 || s.Time != 28 || s.Delay != 2 {
		t.Fatalf("serial = %v", s)
	}
	want := 1 - math.Pow(0.9, 4)
	if math.Abs(s.Err-want) > 1e-12 {
		t.Fatalf("serial err = %v, want %v", s.Err, want)
	}
}

// TestCO2Algebra checks composition rule [CO2] exactly:
// A(n,τ,δ,Q) => A(n, τ+(κ-1)δ, κδ, Σ_{j>=κ/2} C(κ,j) Q^j (1-Q)^{κ-j}).
func TestCO2Algebra(t *testing.T) {
	g := Guarantee{Length: 3, Time: 7, Delay: 2, Err: 0.1}
	r := Repeat(g, 5)
	if r.Length != 3 || r.Time != 7+4*2 || r.Delay != 10 {
		t.Fatalf("repeat = %v", r)
	}
	// Σ_{j>=3} C(5,j) 0.1^j 0.9^(5-j)
	want := 10*math.Pow(0.1, 3)*math.Pow(0.9, 2) + 5*math.Pow(0.1, 4)*0.9 + math.Pow(0.1, 5)
	if math.Abs(r.Err-want) > 1e-12 {
		t.Fatalf("repeat err = %v, want %v", r.Err, want)
	}
}

func TestBuildPlanRejectsBadInput(t *testing.T) {
	if _, err := BuildPlan(10, 0.5, Options{}); err == nil {
		t.Fatal("p=0.5 accepted")
	}
	if _, err := BuildPlan(0, 0.1, Options{}); err == nil {
		t.Fatal("length 0 accepted")
	}
	if _, err := BuildPlan(10, 0.1, Options{Kappa: 4}); err == nil {
		t.Fatal("even kappa accepted")
	}
	if _, err := BuildPlan(10, 0.1, Options{Rho: 1}); err == nil {
		t.Fatal("rho 1 accepted")
	}
}

func TestBuildPlanCoversLength(t *testing.T) {
	for _, l := range []int{1, 2, 7, 8, 9, 64, 100} {
		plan, err := BuildPlan(l, 0.2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plan.G.Length < l {
			t.Fatalf("L=%d: plan covers only %d", l, plan.G.Length)
		}
		if plan.G.Err > 0.01 {
			t.Fatalf("L=%d: plan error %v too large", l, plan.G.Err)
		}
	}
}

// TestTimeLinearInL verifies the O(L) time shape of Lemma 3.2: the
// time/length ratio stays bounded as L grows.
func TestTimeLinearInL(t *testing.T) {
	var ratios []float64
	for _, l := range []int{8, 64, 512} {
		plan, err := BuildPlan(l, 0.2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(plan.G.Time)/float64(plan.G.Length))
	}
	// With ρ=8, κ=3 the per-level time factor approaches ρ·(1 + o(1)), so
	// the ratio should converge; allow it to at most double from first to
	// last measurement.
	if ratios[2] > 2*ratios[0] {
		t.Fatalf("time not linear in L: ratios %v", ratios)
	}
}

// TestErrShrinksWithL: the composed error decreases in L (doubly
// exponentially in the number of levels), giving e^(-Ω(L^c)).
func TestErrShrinksWithL(t *testing.T) {
	prev := 1.0
	for _, l := range []int{8, 64, 512} {
		plan, err := BuildPlan(l, 0.25, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plan.G.Err >= prev {
			t.Fatalf("error did not shrink at L=%d: %v >= %v", l, plan.G.Err, prev)
		}
		prev = plan.G.Err
	}
}

func TestBootKappa(t *testing.T) {
	k, err := bootKappa(0.25, 1/400.0)
	if err != nil {
		t.Fatal(err)
	}
	if k%2 != 1 {
		t.Fatalf("bootstrap κ=%d not odd", k)
	}
	if e := stat.MajorityErr(k, 0.25); e > 1/400.0 {
		t.Fatalf("κ=%d error %v > target", k, e)
	}
	if k > 2 {
		if e := stat.MajorityErr(k-2, 0.25); e <= 1/400.0 {
			t.Fatalf("κ=%d not minimal", k)
		}
	}
	if k0, _ := bootKappa(0, 0.5); k0 != 1 {
		t.Fatalf("p=0 bootstrap κ=%d, want 1", k0)
	}
}

func TestPlanString(t *testing.T) {
	plan, err := BuildPlan(8, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if len(s) == 0 || s[0] != 'R' {
		t.Fatalf("plan string %q should start with the outer repetition", s)
	}
}

func TestCompileInvariants(t *testing.T) {
	plan, err := BuildPlan(16, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Positions) != plan.G.Length+1 {
		t.Fatalf("positions = %d, want %d", len(prog.Positions), plan.G.Length+1)
	}
	if prog.Rounds != plan.G.Time {
		t.Fatalf("compiled horizon %d != guarantee time %d", prog.Rounds, plan.G.Time)
	}
	// Position 0 sends but never receives; the last position receives but
	// never sends.
	if len(prog.Positions[0].Recvs) != 0 {
		t.Fatal("source has receive instructions")
	}
	if len(prog.Positions[0].Sends) == 0 {
		t.Fatal("source never sends")
	}
	last := prog.Positions[len(prog.Positions)-1]
	if len(last.Sends) != 0 {
		t.Fatal("last position has sends")
	}
	if len(last.Recvs) == 0 || len(last.Combines) == 0 {
		t.Fatal("last position missing receives or combines")
	}
}

// TestCompilePropertyNoCollisions: for random lengths and failure rates,
// compilation succeeds (unique (position, round) send slots are validated
// inside Compile).
func TestCompilePropertyNoCollisions(t *testing.T) {
	check := func(lRaw uint8, pRaw uint8) bool {
		l := 1 + int(lRaw%40)
		p := float64(pRaw%30) / 100 // 0 .. 0.29
		plan, err := BuildPlan(l, p, Options{})
		if err != nil {
			return false
		}
		_, err = Compile(plan)
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func runLine(t *testing.T, n int, p float64, seed uint64) bool {
	t.Helper()
	g := graph.Line(n)
	plan, err := BuildPlan(n-1, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(g, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.LimitedMalicious, P: p,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
		Adversary: adversary.Flip{Wrong: []byte("0")},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success
}

func TestFaultFreeLine(t *testing.T) {
	for _, n := range []int{2, 3, 9, 20} {
		g := graph.Line(n)
		plan, err := BuildPlan(n-1, 0.2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		proto, err := New(g, 0, plan)
		if err != nil {
			t.Fatal(err)
		}
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.NoFaults,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 1,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("n=%d: fault-free run failed at node %d (outputs %q)", n, res.FirstFailed, res.Outputs)
		}
	}
}

// TestLemma32Line: limited malicious failures at p = 0.25 on a line, with
// a worst-case flipping adversary — success rate must beat 1 - 1/n.
func TestLemma32Line(t *testing.T) {
	n := 17
	est := stat.Estimate(150, 400, func(seed uint64) bool {
		return runLine(t, n, 0.25, seed)
	})
	lo, _ := est.Wilson(1.96)
	if lo < 1-1.0/float64(n) {
		t.Errorf("line(%d) p=0.25: success %v, want >= %.4f", n, est, 1-1.0/float64(n))
	}
}

// TestTheorem32Tree: the tree extension on a branching graph.
func TestTheorem32Tree(t *testing.T) {
	g := graph.KaryTree(15, 2)
	plan, err := PlanForGraph(g, 0, 0.2, 1.5, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(g, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	est := stat.Estimate(150, 800, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.LimitedMalicious, P: 0.2,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Flip{Wrong: []byte("0")},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
	n := float64(g.N())
	lo, _ := est.Wilson(1.96)
	if lo < 1-1/n {
		t.Errorf("tree: success %v, want >= %.4f", est, 1-1/n)
	}
}

// TestDropAdversary: the crash (drop) adversary is also covered by the
// limited malicious model; dropped transmissions read as the default at
// receivers and the majority machinery must still win.
func TestDropAdversary(t *testing.T) {
	g := graph.Line(9)
	plan, err := BuildPlan(8, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(g, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	est := stat.Estimate(150, 1200, func(seed uint64) bool {
		cfg := &sim.Config{
			Graph: g, Model: sim.MessagePassing, Fault: sim.LimitedMalicious, P: 0.25,
			Source: 0, SourceMsg: []byte("1"),
			NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed,
			Adversary: adversary.Crash{},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		return res.Success
	})
	if est.Rate() < 1-1.0/9 {
		t.Errorf("drop adversary: success %v", est)
	}
}

func TestNewRejectsShortPlan(t *testing.T) {
	g := graph.Line(10)
	plan, err := BuildPlan(2, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.G.Length >= 9 {
		t.Skip("plan overshoot covers the tree; cannot test rejection")
	}
	if _, err := New(g, 0, plan); err == nil {
		t.Fatal("short plan accepted")
	}
}

func TestPlanForGraphRejectsAlpha(t *testing.T) {
	if _, err := PlanForGraph(graph.Line(4), 0, 0.2, 1.0, 1, Options{}); err == nil {
		t.Fatal("alpha=1 accepted")
	}
}

package kucera

import (
	"fmt"
	"sort"
)

// The compiler lowers a Plan into static per-position instruction tables.
// Positions index nodes along the line (0 = source, i = i-th node); on a
// tree, position = depth, a send goes to all children and a receive
// listens to the parent (the Theorem 3.2 extension: "whenever a node has
// more than one child, it transmits to all its children the message that
// it is instructed to transmit along the line").
//
// Registers are single-assignment value cells owned by one position each;
// the runtime materializes only the registers of its own position. The
// timing discipline is: a register written by a receive in round t, or by
// a combine executing at round t, is readable by sends/combines in rounds
// > t and >= t respectively (the runtime resolves receives of round t-1
// and combines of round t before sends of round t).

type sendInstr struct {
	Round int
	Reg   int // register to transmit (at this position)
}

type recvInstr struct {
	Round int
	Reg   int // register receiving the payload (Default on silence)
}

type combineInstr struct {
	Round int
	Dst   int
	Srcs  []int // majority over these registers
}

// posProgram is the instruction table of one position.
type posProgram struct {
	Sends    []sendInstr
	Recvs    []recvInstr
	Combines []combineInstr
	// FinalReg is the register holding this position's final committed
	// value (the output register of the longest block ending here), or -1
	// for position 0 (the source, which knows the message a priori).
	FinalReg int
	// finalLen tracks the block length backing FinalReg during compile.
	finalLen int
}

// Program is a compiled plan.
type Program struct {
	Positions []posProgram // index 0..Length
	Rounds    int          // horizon: all instructions finish before this
	Guar      Guarantee
}

type compiler struct {
	prog    *Program
	nextReg int
}

// Compile lowers the plan to a Program over positions 0..plan.G.Length.
func Compile(plan *Plan) (*Program, error) {
	c := &compiler{prog: &Program{
		Positions: make([]posProgram, plan.G.Length+1),
		Guar:      plan.G,
	}}
	for i := range c.prog.Positions {
		c.prog.Positions[i].FinalReg = -1
	}
	inReg := c.alloc() // position 0's input register, loaded at Init
	c.setFinal(0, inReg, plan.G.Length+1)
	outReg := c.alloc()
	end := c.emit(plan, 0, 0, inReg, outReg)
	c.setFinal(plan.G.Length, outReg, plan.G.Length+1)
	c.prog.Rounds = end
	for pos := range c.prog.Positions {
		p := &c.prog.Positions[pos]
		sort.Slice(p.Sends, func(i, j int) bool { return p.Sends[i].Round < p.Sends[j].Round })
		sort.Slice(p.Recvs, func(i, j int) bool { return p.Recvs[i].Round < p.Recvs[j].Round })
		// Stable: an inner block's combine can share a round with the
		// enclosing combine that reads its output, and emission order
		// (inner first) must be preserved.
		sort.SliceStable(p.Combines, func(i, j int) bool { return p.Combines[i].Round < p.Combines[j].Round })
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c.prog, nil
}

func (c *compiler) alloc() int {
	r := c.nextReg
	c.nextReg++
	return r
}

// setFinal records reg as pos's final value if it closes a longer block
// than any previously recorded one.
func (c *compiler) setFinal(pos, reg, blockLen int) {
	p := &c.prog.Positions[pos]
	if blockLen > p.finalLen {
		p.finalLen = blockLen
		p.FinalReg = reg
	}
}

// emit compiles plan starting at (startPos, startRound), reading its input
// from inReg (a register at startPos) and writing its output to outReg (a
// register at startPos+plan.G.Length). It returns the round at which
// outReg becomes usable: startRound + plan.G.Time.
func (c *compiler) emit(plan *Plan, startPos, startRound, inReg, outReg int) int {
	switch plan.Kind {
	case KindBase:
		c.prog.Positions[startPos].Sends = append(c.prog.Positions[startPos].Sends,
			sendInstr{Round: startRound, Reg: inReg})
		c.prog.Positions[startPos+1].Recvs = append(c.prog.Positions[startPos+1].Recvs,
			recvInstr{Round: startRound, Reg: outReg})
		return startRound + 1

	case KindSerial:
		// Segment j spans positions [startPos+j·L, startPos+(j+1)·L] and
		// starts at startRound+j·τ; its input is the previous boundary
		// register, which [CO1]'s timing makes usable exactly on time.
		subLen, subTime := plan.Sub.G.Length, plan.Sub.G.Time
		cur := inReg
		end := startRound
		for j := 0; j < plan.Count; j++ {
			segOut := outReg
			if j < plan.Count-1 {
				segOut = c.alloc()
				c.setFinal(startPos+(j+1)*subLen, segOut, subLen)
			}
			end = c.emit(plan.Sub, startPos+j*subLen, startRound+j*subTime, cur, segOut)
			cur = segOut
		}
		return end

	case KindRepeat:
		// Execution k starts at startRound+k·δ; all executions read inReg
		// (single-assignment, already usable) and write private slots at
		// the end position; the majority combine fires once the last
		// execution delivers.
		endPos := startPos + plan.G.Length
		delta := plan.Sub.G.Delay
		srcs := make([]int, plan.Count)
		end := startRound
		for k := 0; k < plan.Count; k++ {
			slot := c.alloc()
			srcs[k] = slot
			e := c.emit(plan.Sub, startPos, startRound+k*delta, inReg, slot)
			if e > end {
				end = e
			}
		}
		c.prog.Positions[endPos].Combines = append(c.prog.Positions[endPos].Combines,
			combineInstr{Round: end, Dst: outReg, Srcs: srcs})
		return end

	default:
		panic(fmt.Sprintf("kucera: unknown plan kind %d", plan.Kind))
	}
}

// validate checks the compile-time invariants the runtime relies on:
// no two sends (or receives) share a (position, round) slot, rounds fit
// the horizon, and every non-source position has a final register.
func (c *compiler) validate() error {
	for pos := range c.prog.Positions {
		p := &c.prog.Positions[pos]
		for i := 1; i < len(p.Sends); i++ {
			if p.Sends[i].Round == p.Sends[i-1].Round {
				return fmt.Errorf("kucera: position %d has two sends in round %d", pos, p.Sends[i].Round)
			}
		}
		for i := 1; i < len(p.Recvs); i++ {
			if p.Recvs[i].Round == p.Recvs[i-1].Round {
				return fmt.Errorf("kucera: position %d has two receives in round %d", pos, p.Recvs[i].Round)
			}
		}
		for _, s := range p.Sends {
			if s.Round < 0 || s.Round >= c.prog.Rounds {
				return fmt.Errorf("kucera: position %d send at round %d outside horizon %d", pos, s.Round, c.prog.Rounds)
			}
		}
		if p.FinalReg == -1 {
			return fmt.Errorf("kucera: position %d has no final register", pos)
		}
	}
	return nil
}

// Package lowerbound implements the counting machinery of Lemma 3.4 — the
// paper's proof that on the layered graph G_m (graph.Layered) almost-safe
// radio broadcasting needs ω(opt + log n) steps even with node-omission
// failures.
//
// The setting: layer-2 nodes b_1..b_m must inform the 2^m − 1 layer-3
// nodes, whose labels v ⊆ {1..m} are their neighborhood bitmasks. A
// schedule is a sequence A_1..A_τ of transmitter subsets of {1..m}. A
// layer-3 node v is HIT in step t iff |A_t ∩ P_v| = 1 (exactly one
// transmitting neighbor — the only way v can hear anything). If v is hit
// h_v times in the whole schedule, it stays uninformed with probability at
// least p^(h_v); almost-safety therefore requires h_v ≥ c·log n for every
// v, and the lemma's counting argument shows a schedule achieving that
// must be long.
package lowerbound

import (
	"math"
	"math/bits"

	"faultcast/internal/stat"
)

// Schedule is a layer-2 transmission schedule: Steps[t] is the bitmask of
// transmitting b_i's in step t (bit i−1 ⇔ b_i transmits).
type Schedule struct {
	M     int      // number of layer-2 nodes
	Steps []uint32 // transmitter masks
}

// Hit reports whether the layer-3 node with label mask v is hit by the
// transmitter set mask a: H(v,t) = 1 iff |A_t ∩ P_v| = 1.
func Hit(a, v uint32) bool {
	return bits.OnesCount32(a&v) == 1
}

// HitCounts returns h_v for every layer-3 label v in 1..2^m−1
// (index v, entry 0 unused).
func (s *Schedule) HitCounts() []int {
	n := 1 << s.M
	h := make([]int, n)
	for _, a := range s.Steps {
		for v := 1; v < n; v++ {
			if Hit(a, uint32(v)) {
				h[v]++
			}
		}
	}
	return h
}

// MinHits returns min over layer-3 labels of h_v and one label attaining
// it.
func (s *Schedule) MinHits() (minHits, argmin int) {
	h := s.HitCounts()
	minHits, argmin = math.MaxInt, 0
	for v := 1; v < len(h); v++ {
		if h[v] < minHits {
			minHits, argmin = h[v], v
		}
	}
	return minHits, argmin
}

// FailureProbability returns, per Claim 3.1, the probability that the
// worst layer-3 node receives nothing: p^min_v(h_v). (Assuming, as the
// lemma does, that the source and layer 2 are already informed.)
func (s *Schedule) FailureProbability(p float64) float64 {
	minHits, _ := s.MinHits()
	return math.Pow(p, float64(minHits))
}

// ExpectedUninformed returns Σ_v p^(h_v), the expected number of layer-3
// nodes left uninformed under omission failures.
func (s *Schedule) ExpectedUninformed(p float64) float64 {
	total := 0.0
	for v, hv := range s.HitCounts() {
		if v == 0 {
			continue
		}
		total += math.Pow(p, float64(hv))
	}
	return total
}

// HitsOnLevel returns h(t, j) of Claim 3.3: the number of weight-j labels
// hit by the transmitter mask a, which equals ℓ·C(m−ℓ, j−1) for
// ℓ = |a| — verified exhaustively in tests.
func HitsOnLevel(m int, a uint32, j int) int {
	count := 0
	for v := 1; v < 1<<m; v++ {
		if bits.OnesCount32(uint32(v)) == j && Hit(a, uint32(v)) {
			count++
		}
	}
	return count
}

// HitsOnLevelFormula is the closed form of Claim 3.3.
func HitsOnLevelFormula(m, ell, j int) float64 {
	return float64(ell) * stat.Choose(m-ell, j-1)
}

// FractionOnLevel returns f(t, j) = h(t, j)/C(m, j), the fraction of
// weight-j labels hit by a set of size ell (closed form).
func FractionOnLevel(m, ell, j int) float64 {
	if j < 1 || j > m {
		return 0
	}
	return HitsOnLevelFormula(m, ell, j) / stat.Choose(m, j)
}

// FractionBound is the upper bound of Claim 3.4:
// f(t,j) ≤ (ℓj/m)·(1 − (ℓ−1)/(m−1))^(j−1).
func FractionBound(m, ell, j int) float64 {
	if m <= 1 {
		return 1
	}
	base := 1 - float64(ell-1)/float64(m-1)
	if base < 0 {
		base = 0
	}
	return float64(ell) * float64(j) / float64(m) * math.Pow(base, float64(j-1))
}

// RequiredLength returns the paper's lower-bound target for the schedule
// length needed for almost-safety at failure probability p on G_m:
// every label must accumulate h_v ≥ need := ceil(log(n²)/log(1/p)) hits so
// that n·p^(h_v) ≤ 1/n. Combined with Claim 3.7 — each step contributes a
// sizable hit fraction to at most one of the K/4 chosen levels — the bound
// is Ω(K·log n) with K = log m / log log m.
func RequiredLength(m int, p float64) (needPerNode int, lowerBound int) {
	n := float64(int(1)<<m + m)
	needPerNode = int(math.Ceil(2 * math.Log(n) / math.Log(1/p)))
	k := kOf(m)
	lowerBound = int(math.Ceil(float64(k) * float64(needPerNode) / 8))
	return needPerNode, lowerBound
}

// kOf returns K = log m / log log m (the paper's K), at least 1.
func kOf(m int) int {
	if m < 4 {
		return 1
	}
	lm := math.Log(float64(m))
	k := lm / math.Log(lm)
	if k < 1 {
		return 1
	}
	return int(k)
}

// Levels returns the paper's level sequence j_i = ceil(m / (K(Z+1))^(i-1))
// for i = 1..K/4 (with Z = log K + log log K), the pairwise "far apart"
// weights used in Claim 3.7.
func Levels(m int) []int {
	k := kOf(m)
	z := zOf(k)
	var out []int
	denom := 1.0
	count := k / 4
	if count < 1 {
		count = 1
	}
	for i := 0; i < count; i++ {
		j := int(math.Ceil(float64(m) / denom))
		if j < 1 {
			j = 1
		}
		out = append(out, j)
		denom *= float64(k) * (z + 1)
	}
	return out
}

func zOf(k int) float64 {
	if k < 2 {
		return 1
	}
	lk := math.Log(float64(k))
	z := math.Log2(float64(k))
	if lk > 1 {
		z += math.Log2(lk)
	}
	if z < 1 {
		z = 1
	}
	return z
}

package lowerbound

import "faultcast/internal/rng"

// Candidate schedule families for auditing: the experiment (E10) extends
// each family until every layer-3 label accumulates the required hit
// count, and reports how far beyond opt + O(log n) each must run.

// RoundRobinSingles transmits b_1, b_2, ..., b_m cyclically, one per step
// (the generalization of the optimal fault-free schedule). Each step hits
// exactly the labels containing that single transmitter: every label of
// weight w is hit w times per full cycle.
func RoundRobinSingles(m, steps int) *Schedule {
	s := &Schedule{M: m}
	for t := 0; t < steps; t++ {
		s.Steps = append(s.Steps, 1<<(t%m))
	}
	return s
}

// RandomSets transmits a uniformly random subset of a fixed size each
// step.
func RandomSets(m, steps, size int, r *rng.Source) *Schedule {
	s := &Schedule{M: m}
	for t := 0; t < steps; t++ {
		var mask uint32
		for bits := 0; bits < size; {
			b := uint32(1) << r.Intn(m)
			if mask&b == 0 {
				mask |= b
				bits++
			}
		}
		s.Steps = append(s.Steps, mask)
	}
	return s
}

// GeometricSweep cycles through set sizes 1, 2, 4, ..., m (random sets of
// each size), covering all weight scales — the natural strategy suggested
// by Claim 3.5's window ℓ ≈ m/j.
func GeometricSweep(m, steps int, r *rng.Source) *Schedule {
	s := &Schedule{M: m}
	var sizes []int
	for sz := 1; sz <= m; sz *= 2 {
		sizes = append(sizes, sz)
	}
	for t := 0; t < steps; t++ {
		size := sizes[t%len(sizes)]
		var mask uint32
		for bits := 0; bits < size; {
			b := uint32(1) << r.Intn(m)
			if mask&b == 0 {
				mask |= b
				bits++
			}
		}
		s.Steps = append(s.Steps, mask)
	}
	return s
}

// StepsToCover grows the schedule produced by gen(steps) until min_v h_v
// reaches need, doubling then binary-searching; it returns the smallest
// length found, or maxSteps if not reached. Generators must be monotone:
// gen(k) is a prefix of gen(k') for k <= k' (true for all families here
// when driven by a fixed-seed rng factory).
func StepsToCover(need, maxSteps int, gen func(steps int) *Schedule) int {
	lo, hi := 1, 1
	for hi <= maxSteps {
		if minh, _ := gen(hi).MinHits(); minh >= need {
			break
		}
		lo = hi + 1
		hi *= 2
	}
	if hi > maxSteps {
		if minh, _ := gen(maxSteps).MinHits(); minh < need {
			return maxSteps
		}
		hi = maxSteps
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if minh, _ := gen(mid).MinHits(); minh >= need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

package lowerbound

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"faultcast/internal/rng"
	"faultcast/internal/stat"
)

func TestHit(t *testing.T) {
	cases := []struct {
		a, v uint32
		want bool
	}{
		{0b001, 0b001, true},
		{0b011, 0b001, true},  // A∩P = {1}
		{0b011, 0b011, false}, // two transmitting neighbors: collision
		{0b100, 0b011, false}, // no transmitting neighbor
		{0b111, 0b100, true},
	}
	for _, tc := range cases {
		if got := Hit(tc.a, tc.v); got != tc.want {
			t.Errorf("Hit(%b, %b) = %v, want %v", tc.a, tc.v, got, tc.want)
		}
	}
}

// TestClaim33Exhaustive verifies h(t,j) = ℓ·C(m−ℓ, j−1) by enumerating all
// transmitter sets for small m.
func TestClaim33Exhaustive(t *testing.T) {
	for m := 2; m <= 8; m++ {
		for a := uint32(1); a < 1<<m; a++ {
			ell := bits.OnesCount32(a)
			for j := 1; j <= m; j++ {
				got := HitsOnLevel(m, a, j)
				want := HitsOnLevelFormula(m, ell, j)
				if float64(got) != want {
					t.Fatalf("m=%d a=%b j=%d: h=%d, formula=%v", m, a, j, got, want)
				}
			}
		}
	}
}

// TestClaim34Bound verifies f(t,j) ≤ (ℓj/m)(1−(ℓ−1)/(m−1))^(j−1).
func TestClaim34Bound(t *testing.T) {
	for m := 2; m <= 16; m++ {
		for ell := 1; ell <= m; ell++ {
			for j := 1; j <= m; j++ {
				f := FractionOnLevel(m, ell, j)
				b := FractionBound(m, ell, j)
				if f > b+1e-9 {
					t.Fatalf("m=%d ℓ=%d j=%d: f=%v > bound %v", m, ell, j, f, b)
				}
			}
		}
	}
}

func TestHitCountsRoundRobin(t *testing.T) {
	// One full cycle of singles hits each label v exactly weight(v) times.
	m := 5
	s := RoundRobinSingles(m, m)
	h := s.HitCounts()
	for v := 1; v < 1<<m; v++ {
		if h[v] != bits.OnesCount32(uint32(v)) {
			t.Fatalf("label %b: h=%d, want %d", v, h[v], bits.OnesCount32(uint32(v)))
		}
	}
}

func TestMinHits(t *testing.T) {
	m := 4
	s := RoundRobinSingles(m, m) // weight-1 labels hit once
	minh, arg := s.MinHits()
	if minh != 1 {
		t.Fatalf("min hits = %d, want 1", minh)
	}
	if bits.OnesCount32(uint32(arg)) != 1 {
		t.Fatalf("argmin %b should be a weight-1 label", arg)
	}
}

func TestFailureProbability(t *testing.T) {
	s := RoundRobinSingles(3, 3)
	got := s.FailureProbability(0.5)
	if math.Abs(got-0.5) > 1e-12 { // min hits 1 → p^1
		t.Fatalf("failure probability %v, want 0.5", got)
	}
}

func TestExpectedUninformed(t *testing.T) {
	m := 3
	s := RoundRobinSingles(m, m)
	// h_v = weight(v): Σ_v p^weight = Σ_w C(3,w) p^w over w=1..3.
	p := 0.5
	want := 3*p + 3*p*p + p*p*p
	if got := s.ExpectedUninformed(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("expected uninformed %v, want %v", got, want)
	}
}

// TestSinglesNeedManyCycles: with singles, a weight-1 label gains one hit
// per m steps, so reaching c·log n hits takes c·m·log n steps — far beyond
// opt + log n. This is the qualitative content of Lemma 3.4 for the
// natural schedule family.
func TestSinglesNeedManyCycles(t *testing.T) {
	m := 6
	need, _ := RequiredLength(m, 0.5)
	steps := StepsToCover(need, 100000, func(k int) *Schedule { return RoundRobinSingles(m, k) })
	if steps != need*m {
		t.Fatalf("singles cover in %d steps, want exactly need·m = %d", steps, need*m)
	}
	optPlusLog := (m + 1) + need // opt + c·log n
	if steps <= 2*optPlusLog {
		t.Fatalf("lower-bound violated by singles: %d <= 2(opt+log n) = %d", steps, 2*optPlusLog)
	}
}

// TestRandomSetsOfOneSizeCannotCoverAllWeights: fixed-size random sets hit
// extreme-weight labels rarely (Claim 3.5's window), so they need far more
// steps than opt + log n too.
func TestRandomSetsStillSlow(t *testing.T) {
	m := 8
	need, _ := RequiredLength(m, 0.5)
	gen := func(k int) *Schedule {
		return RandomSets(m, k, m/2, rng.New(42))
	}
	steps := StepsToCover(need, 1<<17, gen)
	optPlusLog := (m + 1) + need
	if steps <= 2*optPlusLog {
		t.Fatalf("half-size random sets covered too fast: %d <= %d", steps, 2*optPlusLog)
	}
}

// TestGeometricSweepBeatsFixedSize but still exceeds the lower bound.
func TestGeometricSweep(t *testing.T) {
	m := 8
	need, _ := RequiredLength(m, 0.5)
	gen := func(k int) *Schedule { return GeometricSweep(m, k, rng.New(7)) }
	steps := StepsToCover(need, 1<<17, gen)
	fixedGen := func(k int) *Schedule { return RandomSets(m, k, m/2, rng.New(42)) }
	fixedSteps := StepsToCover(need, 1<<17, fixedGen)
	if steps >= fixedSteps {
		t.Logf("note: geometric sweep (%d) not faster than fixed-size (%d) at m=%d", steps, fixedSteps, m)
	}
	if minh, _ := gen(steps).MinHits(); minh < need {
		t.Fatalf("StepsToCover returned %d but coverage not met", steps)
	}
}

func TestStepsToCoverMonotoneProperty(t *testing.T) {
	check := func(mRaw, needRaw uint8) bool {
		m := 2 + int(mRaw%5)
		need := 1 + int(needRaw%6)
		gen := func(k int) *Schedule { return RoundRobinSingles(m, k) }
		steps := StepsToCover(need, 10000, gen)
		if steps > 10000 {
			return false
		}
		minAt, _ := gen(steps).MinHits()
		if minAt < need {
			return false
		}
		if steps > 1 {
			prev, _ := gen(steps - 1).MinHits()
			if prev >= need {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRequiredLength(t *testing.T) {
	need, lower := RequiredLength(10, 0.5)
	n := float64(1<<10 + 10)
	wantNeed := int(math.Ceil(2 * math.Log(n) / math.Log(2)))
	if need != wantNeed {
		t.Fatalf("need = %d, want %d", need, wantNeed)
	}
	if lower < need/8 {
		t.Fatalf("lower bound %d implausibly small", lower)
	}
}

func TestLevelsDecreasing(t *testing.T) {
	for _, m := range []int{8, 16, 24} {
		ls := Levels(m)
		if len(ls) == 0 || ls[0] != m {
			t.Fatalf("m=%d: levels %v should start at m", m, ls)
		}
		for i := 1; i < len(ls); i++ {
			if ls[i] >= ls[i-1] {
				t.Fatalf("m=%d: levels %v not strictly decreasing", m, ls)
			}
		}
	}
}

func TestFractionBoundSanity(t *testing.T) {
	// Claim 3.5 shape: tiny sets and huge sets both hit a small fraction
	// of mid-weight labels.
	m := 16
	j := 8
	if f := FractionOnLevel(m, 1, j); f > 0.51 {
		t.Fatalf("singleton hits %v of weight-%d labels", f, j)
	}
	if f := FractionOnLevel(m, m, j); f != 0 {
		t.Fatalf("full set hits %v of weight-%d labels (all collide)", f, j)
	}
	_ = stat.Choose(m, j)
}

// Package hist provides a fixed-bucket, log-spaced latency histogram with
// lock-free atomic recording, shared by the server's per-endpoint latency
// tracking (internal/service, surfaced in /v1/stats) and the load
// harness's per-class client-side measurements (internal/load, written to
// BENCH_service.json) — so the two sides of a benchmark report quantiles
// computed by the same estimator over the same bucket boundaries, and
// client-observed p95s can be cross-checked against server-observed ones
// without unit or method skew.
//
// Buckets are spaced geometrically: 4 per octave (each boundary ~19%
// above the previous) from 1µs up to ~4.6 minutes, with a final overflow
// bucket. Observe is wait-free (one atomic add plus a max CAS loop) and
// safe for any number of concurrent writers; Snapshot may run concurrently
// with writers and sees some consistent-enough interleaving (counts may
// trail the max by in-flight observations, never the reverse in aggregate).
package hist

import (
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

const (
	// bucketsPerOctave fixes the resolution: 4 boundaries per doubling
	// puts any quantile within ~19% of its true value, tight enough to
	// compare client- and server-side percentiles of the same run.
	bucketsPerOctave = 4
	// octaves spans 1µs .. 2^28µs ≈ 4.6min; slower outcomes land in the
	// overflow bucket and report as the recorded maximum.
	octaves    = 28
	numBounds  = bucketsPerOctave * octaves
	numBuckets = numBounds + 1 // + overflow
	minValue   = time.Microsecond
)

// bounds[i] is the inclusive upper edge of bucket i, in nanoseconds.
var bounds = func() [numBounds]int64 {
	var b [numBounds]int64
	for i := range b {
		b[i] = int64(math.Round(float64(minValue) * math.Pow(2, float64(i+1)/bucketsPerOctave)))
	}
	return b
}()

// Histogram accumulates durations into fixed log-spaced buckets. The zero
// value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// bucketOf returns the index of the bucket holding duration d: the first
// whose upper edge is >= d (binary search over the precomputed edges).
func bucketOf(d time.Duration) int {
	ns := int64(d)
	lo, hi := 0, numBounds // hi = overflow bucket
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] >= ns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one duration. Negative durations clamp to zero (they
// can only come from clock weirdness; losing them would skew counts).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Snapshot copies the histogram's current state for quantile queries.
type Snapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	buckets [numBuckets]uint64
}

// Snapshot captures the counters. Concurrent Observe calls may or may not
// be included; the snapshot itself is immutable.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.Count += s.buckets[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// Merge folds a snapshot's counts into the histogram — the restore half
// of snapshot persistence: a histogram that merges a saved snapshot
// continues exactly where the saved process left off (same counts, same
// sum, same max, so identical quantiles before any new observation).
// Safe for concurrent use with Observe, like every Histogram method.
func (h *Histogram) Merge(s Snapshot) {
	for i, c := range s.buckets {
		if c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(int64(s.Sum))
	for {
		old := h.max.Load()
		if int64(s.Max) <= old || h.max.CompareAndSwap(old, int64(s.Max)) {
			return
		}
	}
}

// wireSnapshot is the JSON form of a Snapshot. It names the bucket
// layout explicitly so a snapshot saved by one build can never be
// silently mis-binned by another with different resolution — a layout
// mismatch is an unmarshal error, and the caller starts fresh.
type wireSnapshot struct {
	BucketsPerOctave int      `json:"buckets_per_octave"`
	Octaves          int      `json:"octaves"`
	Count            uint64   `json:"count"`
	SumNs            int64    `json:"sum_ns"`
	MaxNs            int64    `json:"max_ns"`
	Buckets          []uint64 `json:"buckets"` // trailing zeros trimmed
}

// MarshalJSON serializes the snapshot, layout-tagged, with trailing
// empty buckets trimmed (latency histograms are sparse at the top).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	last := -1
	for i, c := range s.buckets {
		if c != 0 {
			last = i
		}
	}
	return json.Marshal(wireSnapshot{
		BucketsPerOctave: bucketsPerOctave,
		Octaves:          octaves,
		Count:            s.Count,
		SumNs:            int64(s.Sum),
		MaxNs:            int64(s.Max),
		Buckets:          s.buckets[:last+1],
	})
}

// UnmarshalJSON restores a snapshot, validating the layout tag, the
// bucket count, and that the header count matches the bucket sum — a
// corrupted or foreign snapshot errors instead of skewing quantiles.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var w wireSnapshot
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.BucketsPerOctave != bucketsPerOctave || w.Octaves != octaves {
		return fmt.Errorf("hist: snapshot layout %d/%d, this build uses %d/%d",
			w.BucketsPerOctave, w.Octaves, bucketsPerOctave, octaves)
	}
	if len(w.Buckets) > numBuckets {
		return fmt.Errorf("hist: snapshot has %d buckets, max %d", len(w.Buckets), numBuckets)
	}
	*s = Snapshot{Sum: time.Duration(w.SumNs), Max: time.Duration(w.MaxNs)}
	for i, c := range w.Buckets {
		s.buckets[i] = c
		s.Count += c
	}
	if s.Count != w.Count {
		return fmt.Errorf("hist: snapshot count %d does not match bucket sum %d", w.Count, s.Count)
	}
	return nil
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation inside the bucket where the target rank falls. The
// overflow bucket reports the recorded maximum; an empty histogram
// reports zero for every quantile, and a single-sample histogram
// reports that sample (interpolating inside the sample's bucket would
// fabricate a value below it — a p99 of a one-observation window must
// be the observation). Estimates are bounded by the bucket resolution
// (~19%); a NaN q reports zero rather than poisoning downstream math.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if s.Count == 1 {
		// The only recorded value is, exactly, the running max.
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == numBounds { // overflow: no upper edge, report the max
				return s.Max
			}
			lower := int64(0)
			if i > 0 {
				lower = bounds[i-1]
			}
			upper := bounds[i]
			if upper > int64(s.Max) && int64(s.Max) > lower {
				// The true values in the top bucket can't exceed the max.
				upper = int64(s.Max)
			}
			frac := (rank - cum) / float64(c)
			return time.Duration(float64(lower) + frac*float64(upper-lower))
		}
		cum = next
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded durations (exact, from
// the running sum — not a bucket estimate).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Summary is the JSON rendering of a histogram shared by /v1/stats and
// BENCH_service.json: count plus quantiles in milliseconds. Quantiles are
// bucket-interpolated (see Quantile); Mean and Max are exact.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// OctaveBounds returns the one-per-octave upper bucket edges in seconds
// (2µs, 4µs, ..., 2^28µs ≈ 268s) used by the Prometheus rendering of a
// histogram: coarse enough to keep a many-series scrape compact while
// the full 4-per-octave resolution stays behind Quantile/Summarize.
// Aligned index-for-index with Snapshot.CumulativeOctaves.
func OctaveBounds() []float64 {
	out := make([]float64, octaves)
	for k := range out {
		out[k] = float64(bounds[(k+1)*bucketsPerOctave-1]) / 1e9
	}
	return out
}

// CumulativeOctaves returns Prometheus-style cumulative bucket counts at
// the OctaveBounds edges: element k counts observations at or below
// 2^(k+1) µs. The overflow bucket is excluded — it is visible only in
// the +Inf bucket, whose value is Count.
func (s Snapshot) CumulativeOctaves() []uint64 {
	out := make([]uint64, octaves)
	var cum uint64
	for k := range out {
		for i := k * bucketsPerOctave; i < (k+1)*bucketsPerOctave; i++ {
			cum += s.buckets[i]
		}
		out[k] = cum
	}
	return out
}

// Summarize renders the snapshot for JSON reports.
func (s Snapshot) Summarize() Summary {
	ms := func(d time.Duration) float64 {
		return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
	}
	return Summary{
		Count:  s.Count,
		MeanMs: ms(s.Mean()),
		P50Ms:  ms(s.Quantile(0.50)),
		P90Ms:  ms(s.Quantile(0.90)),
		P95Ms:  ms(s.Quantile(0.95)),
		P99Ms:  ms(s.Quantile(0.99)),
		MaxMs:  ms(s.Max),
	}
}

package hist

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: edges are inclusive upper
// bounds, values at an edge land in that bucket, values just above move to
// the next, sub-minimum values land in bucket 0, and anything beyond the
// last edge lands in the overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	if bounds[0] != int64(time.Duration(1189)) { // 1µs * 2^(1/4) ≈ 1189ns
		t.Fatalf("first edge %d ns, want 1189", bounds[0])
	}
	for i := 1; i < numBounds; i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("edges not strictly increasing at %d: %d <= %d", i, bounds[i], bounds[i-1])
		}
	}
	// One doubling every bucketsPerOctave edges (rounding-exact because
	// the edges are derived from the same power ladder).
	for i := bucketsPerOctave; i < numBounds; i++ {
		ratio := float64(bounds[i]) / float64(bounds[i-bucketsPerOctave])
		if ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("edge %d is %.4fx edge %d, want 2x", i, ratio, i-bucketsPerOctave)
		}
	}
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Duration(bounds[0]), 0},     // exactly on the first edge
		{time.Duration(bounds[0] + 1), 1}, // just past it
		{time.Duration(bounds[7]), 7},
		{time.Duration(bounds[7] + 1), 8},
		{time.Duration(bounds[numBounds-1]), numBounds - 1}, // last finite edge
		{time.Hour, numBounds},                              // overflow
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestQuantiles: a known population must report quantiles within one
// bucket's resolution, exact count/mean/max, and monotone quantiles.
func TestQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms, 2ms, ..., 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max %v, want 100ms", s.Max)
	}
	if mean := s.Mean(); mean != 50500*time.Microsecond {
		t.Fatalf("mean %v, want 50.5ms", mean)
	}
	// Each quantile must land within the ~19% bucket resolution of truth.
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.5, 50 * time.Millisecond}, {0.9, 90 * time.Millisecond}, {0.99, 99 * time.Millisecond}} {
		got := s.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.80)
		hi := time.Duration(float64(tc.want) * 1.20)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
	if s.Quantile(0) > s.Quantile(0.5) || s.Quantile(0.5) > s.Quantile(1) {
		t.Error("quantiles not monotone")
	}
	if s.Quantile(1) > s.Max {
		t.Errorf("q1 %v exceeds max %v", s.Quantile(1), s.Max)
	}
}

func TestEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram not zero: %+v", s)
	}
	h.Observe(2 * time.Hour) // far past the last edge
	h.Observe(-time.Second)  // clamps to zero, still counted
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count %d, want 2", s.Count)
	}
	if got := s.Quantile(1); got != 2*time.Hour {
		t.Fatalf("overflow quantile %v, want the recorded max", got)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines (run
// under -race in CI) and checks nothing is lost: count, sum, and max must
// all be exact, and the buckets must sum to the count.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	var want time.Duration
	for i := 0; i < workers*per; i++ {
		want += time.Duration(i) * time.Microsecond
	}
	if s.Sum != want {
		t.Fatalf("sum %v, want %v", s.Sum, want)
	}
	if s.Max != time.Duration(workers*per-1)*time.Microsecond {
		t.Fatalf("max %v, want %v", s.Max, time.Duration(workers*per-1)*time.Microsecond)
	}
	var bucketSum uint64
	for _, c := range s.buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("buckets sum to %d, count is %d", bucketSum, s.Count)
	}
}

// TestQuantileEdgeCases is the table over the degenerate inputs that used
// to misbehave: an empty histogram must report zero for every q, a
// single-sample histogram must report the sample itself (interpolating
// inside its bucket fabricates a value below the only observation), and a
// NaN q must report zero instead of poisoning downstream math.
func TestQuantileEdgeCases(t *testing.T) {
	var eh Histogram
	empty := eh.Snapshot()
	single := func(d time.Duration) Snapshot {
		var h Histogram
		h.Observe(d)
		return h.Snapshot()
	}
	cases := []struct {
		name string
		s    Snapshot
		q    float64
		want time.Duration
	}{
		{"empty q0", empty, 0, 0},
		{"empty q0.5", empty, 0.5, 0},
		{"empty q1", empty, 1, 0},
		{"empty NaN", empty, math.NaN(), 0},
		{"single q0", single(3 * time.Millisecond), 0, 3 * time.Millisecond},
		{"single q0.5", single(3 * time.Millisecond), 0.5, 3 * time.Millisecond},
		{"single q0.95", single(3 * time.Millisecond), 0.95, 3 * time.Millisecond},
		{"single q1", single(3 * time.Millisecond), 1, 3 * time.Millisecond},
		{"single sub-minimum", single(time.Nanosecond), 0.99, time.Nanosecond},
		{"single overflow", single(2 * time.Hour), 0.5, 2 * time.Hour},
		{"single NaN", single(3 * time.Millisecond), math.NaN(), 0},
		{"single q<0 clamps", single(3 * time.Millisecond), -1, 3 * time.Millisecond},
		{"single q>1 clamps", single(3 * time.Millisecond), 2, 3 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.s.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Two-sample histograms leave the single-sample special case: the
	// estimate is interpolated, but stays within the recorded range.
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	if got := h.Snapshot().Quantile(0.99); got > time.Millisecond {
		t.Errorf("two equal samples: q99 %v exceeds the samples", got)
	}
}

// TestOctaveRendering pins the coarse one-per-octave view behind the
// Prometheus histogram rendering: edges align index-for-index with
// CumulativeOctaves, counts are cumulative, and the overflow bucket is
// visible only via Count (the +Inf bucket).
func TestOctaveRendering(t *testing.T) {
	edges := OctaveBounds()
	if len(edges) != octaves {
		t.Fatalf("%d octave edges, want %d", len(edges), octaves)
	}
	if edges[0] != 2e-6 {
		t.Fatalf("first octave edge %v s, want 2µs", edges[0])
	}
	for k := 1; k < len(edges); k++ {
		ratio := edges[k] / edges[k-1]
		if ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("octave edge %d is %.4fx edge %d, want 2x", k, ratio, k-1)
		}
	}
	// Each edge is the last 4-per-octave bound of its octave.
	for k, e := range edges {
		if want := float64(bounds[(k+1)*bucketsPerOctave-1]) / 1e9; e != want {
			t.Fatalf("octave edge %d = %v, want bound %v", k, e, want)
		}
	}

	var h Histogram
	h.Observe(1500 * time.Nanosecond) // octave 0 (≤2µs)
	h.Observe(3 * time.Microsecond)   // octave 1 (≤4µs)
	h.Observe(3500 * time.Nanosecond) // octave 1
	h.Observe(100 * time.Microsecond) // a middle octave
	h.Observe(2 * time.Hour)          // overflow: beyond every edge
	s := h.Snapshot()
	cum := s.CumulativeOctaves()
	if len(cum) != octaves {
		t.Fatalf("%d cumulative octaves, want %d", len(cum), octaves)
	}
	if cum[0] != 1 || cum[1] != 3 {
		t.Fatalf("low octaves: %v", cum[:2])
	}
	for k := 1; k < len(cum); k++ {
		if cum[k] < cum[k-1] {
			t.Fatalf("cumulative counts decrease at octave %d: %v", k, cum[:k+1])
		}
	}
	// The last finite edge excludes the overflow observation; Count (the
	// +Inf bucket) includes it.
	if cum[octaves-1] != 4 {
		t.Fatalf("last octave holds %d, want 4 (overflow excluded)", cum[octaves-1])
	}
	if s.Count != 5 {
		t.Fatalf("count %d, want 5", s.Count)
	}
	// Empty snapshot: all-zero octaves.
	for k, c := range (Snapshot{}).CumulativeOctaves() {
		if c != 0 {
			t.Fatalf("empty octave %d = %d", k, c)
		}
	}
}

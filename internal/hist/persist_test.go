package hist

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSnapshotJSONRoundTrip: a marshaled snapshot must unmarshal to the
// identical value — same counts, same quantiles — and merging it into a
// fresh histogram must reproduce the original summary exactly. This is
// the contract faultcastd's stats persistence rides on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		500 * time.Nanosecond, // below the first edge
		time.Microsecond,
		37 * time.Microsecond,
		time.Millisecond,
		time.Millisecond, // repeated value
		250 * time.Millisecond,
		3 * time.Second,
		10 * time.Minute, // overflow bucket
	}
	for _, d := range durations {
		h.Observe(d)
	}
	snap := h.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", back, snap)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if back.Quantile(q) != snap.Quantile(q) {
			t.Fatalf("q%.2f differs after round trip: %v vs %v", q, back.Quantile(q), snap.Quantile(q))
		}
	}

	// Merge into a fresh histogram: identical summary before any new
	// observation, and observations keep counting afterwards.
	var h2 Histogram
	h2.Merge(back)
	if got := h2.Snapshot(); got != snap || got.Summarize() != snap.Summarize() {
		t.Fatalf("merged snapshot differs:\n got %+v\nwant %+v", got, snap)
	}
	h2.Observe(time.Hour)
	after := h2.Snapshot()
	if after.Count != snap.Count+1 || after.Max != time.Hour {
		t.Fatalf("merge froze the histogram: %+v", after)
	}

	// Merging into a non-empty histogram sums counts and keeps the
	// larger max.
	var h3 Histogram
	h3.Observe(2 * time.Hour)
	h3.Merge(snap)
	if got := h3.Snapshot(); got.Count != snap.Count+1 || got.Max != 2*time.Hour {
		t.Fatalf("merge into non-empty: %+v", got)
	}
}

func TestSnapshotJSONRejectsBadInput(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	good, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"layout mismatch": strings.Replace(string(good), `"buckets_per_octave":4`, `"buckets_per_octave":8`, 1),
		"count mismatch":  strings.Replace(string(good), `"count":1`, `"count":7`, 1),
		"not json":        `{"buckets_per_octave":`,
	}
	for name, body := range cases {
		if body == string(good) {
			t.Fatalf("%s: mutation did not apply to %s", name, good)
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(body), &s); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}

	// Too many buckets: build a wire form with one extra.
	var w struct {
		BucketsPerOctave int      `json:"buckets_per_octave"`
		Octaves          int      `json:"octaves"`
		Count            uint64   `json:"count"`
		Buckets          []uint64 `json:"buckets"`
	}
	w.BucketsPerOctave, w.Octaves = bucketsPerOctave, octaves
	w.Buckets = make([]uint64, numBuckets+1)
	w.Buckets[numBuckets] = 1
	w.Count = 1
	body, _ := json.Marshal(w)
	var s Snapshot
	if err := json.Unmarshal(body, &s); err == nil {
		t.Errorf("accepted %d buckets", len(w.Buckets))
	}
}

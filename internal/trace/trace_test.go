package trace

import (
	"strings"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/sim"
)

func runTraced(t *testing.T, observer func(*sim.RoundRecord)) {
	t.Helper()
	g := graph.Line(4)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 2)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("M"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 5,
		Observer: observer,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoggerWritesRounds(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb}
	runTraced(t, l.Observe)
	out := sb.String()
	if !strings.Contains(out, "round    0:") {
		t.Fatalf("missing round 0 line:\n%s", out)
	}
	if strings.Count(out, "round") < 8 {
		t.Fatalf("too few round lines:\n%s", out)
	}
}

func TestLoggerVerboseShowsPayloads(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb, Verbose: true}
	runTraced(t, l.Observe)
	if !strings.Contains(sb.String(), `"M"`) {
		t.Fatalf("verbose log missing payloads:\n%s", sb.String())
	}
}

func TestCountersAggregate(t *testing.T) {
	c := NewCounters()
	runTraced(t, c.Observe)
	if c.Rounds != 8 { // 4 nodes x m=2·log2(4)=4... rounds = n*m = 4*4 = 16
		// WindowLen(2, 4) = ceil(2*2) = 4; rounds = 16.
		if c.Rounds != 16 {
			t.Fatalf("rounds = %d, want 16", c.Rounds)
		}
	}
	if c.Deliveries == 0 || c.Transmissions == 0 {
		t.Fatalf("counters empty: %+v", c)
	}
	total := 0
	for _, cnt := range c.FaultsPerRound {
		total += cnt
	}
	if total != c.Rounds {
		t.Fatalf("fault histogram covers %d of %d rounds", total, c.Rounds)
	}
	if c.String() == "" {
		t.Fatal("empty counter string")
	}
}

package trace

import (
	"strings"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/sim"
)

func runTraced(t *testing.T, observer func(*sim.RoundRecord)) {
	t.Helper()
	g := graph.Line(4)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 2)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("M"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 5,
		Observer: observer,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLoggerWritesRounds(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb}
	runTraced(t, l.Observe)
	out := sb.String()
	if !strings.Contains(out, "round    0:") {
		t.Fatalf("missing round 0 line:\n%s", out)
	}
	if strings.Count(out, "round") < 8 {
		t.Fatalf("too few round lines:\n%s", out)
	}
}

func TestLoggerVerboseShowsPayloads(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb, Verbose: true}
	runTraced(t, l.Observe)
	if !strings.Contains(sb.String(), `"M"`) {
		t.Fatalf("verbose log missing payloads:\n%s", sb.String())
	}
}

func TestCountersAggregate(t *testing.T) {
	c := NewCounters()
	runTraced(t, c.Observe)
	if c.Rounds != 8 { // 4 nodes x m=2·log2(4)=4... rounds = n*m = 4*4 = 16
		// WindowLen(2, 4) = ceil(2*2) = 4; rounds = 16.
		if c.Rounds != 16 {
			t.Fatalf("rounds = %d, want 16", c.Rounds)
		}
	}
	if c.Deliveries == 0 || c.Transmissions == 0 {
		t.Fatalf("counters empty: %+v", c)
	}
	total := 0
	for _, cnt := range c.FaultsPerRound {
		total += cnt
	}
	if total != c.Rounds {
		t.Fatalf("fault histogram covers %d of %d rounds", total, c.Rounds)
	}
	if c.String() == "" {
		t.Fatal("empty counter string")
	}
}

// lane-eligible scenario: simpleomission over MessagePassing is one of
// the configurations the root package lowers to the lane core for
// estimation. Per-round observation still goes through the round
// engines, and both round cores must feed observers identically.
func laneEligibleConfig(scalar bool, observer func(*sim.RoundRecord)) *sim.Config {
	g := graph.Line(7)
	proto := simpleomission.New(g, 0, sim.MessagePassing, 1)
	return &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.45,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: 12,
		ScalarCore: scalar,
		Observer:   observer,
	}
}

// TestCountersIdenticalAcrossRoundCores pins the observer contract for
// the two round cores on a lane-eligible scenario: the scalar reference
// engine and the word-parallel bitset engine must deliver the same
// per-round stream, so Counters aggregates to the same totals. (The lane
// core is absent by design — it has no per-round records to observe; see
// the package comment.)
func TestCountersIdenticalAcrossRoundCores(t *testing.T) {
	run := func(scalar bool) *Counters {
		c := NewCounters()
		if _, err := sim.Run(laneEligibleConfig(scalar, c.Observe)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	scalar, bitset := run(true), run(false)
	if scalar.Rounds == 0 || scalar.Transmissions == 0 {
		t.Fatalf("scalar counters empty: %+v", scalar)
	}
	if scalar.Rounds != bitset.Rounds || scalar.Faults != bitset.Faults ||
		scalar.Transmissions != bitset.Transmissions ||
		scalar.Deliveries != bitset.Deliveries || scalar.Collisions != bitset.Collisions {
		t.Fatalf("round cores observe differently:\nscalar %+v\nbitset %+v", scalar, bitset)
	}
	for k, v := range scalar.FaultsPerRound {
		if bitset.FaultsPerRound[k] != v {
			t.Fatalf("fault histograms differ at %d: scalar %d, bitset %d", k, v, bitset.FaultsPerRound[k])
		}
	}
}

// TestLoggerIdenticalAcrossRoundCores: the rendered per-round log — the
// user-visible face of observation — is byte-identical across the round
// cores.
func TestLoggerIdenticalAcrossRoundCores(t *testing.T) {
	render := func(scalar bool) string {
		var sb strings.Builder
		l := &Logger{W: &sb, Verbose: true}
		if _, err := sim.Run(laneEligibleConfig(scalar, l.Observe)); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if s, b := render(true), render(false); s != b {
		t.Fatalf("logs differ between round cores:\nscalar:\n%s\nbitset:\n%s", s, b)
	}
}

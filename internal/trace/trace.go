// Package trace provides execution observers: human-readable per-round
// logs for the CLI and counter aggregation for experiments.
//
// Per-round observation is a round-engine feature. The word-parallel
// bitset engine, the scalar reference engine (sim.Run with
// Config.ScalarCore), and the goroutine-per-node concurrent engine
// (sim.RunConcurrent) all invoke Config.Observer after every round with
// an identical RoundRecord — observers see the same stream whichever
// round core runs the trial. The lane-transposed trial-parallel core
// (sim.LaneRunner) packs 64 trials into each machine word and never
// materializes per-round records, so estimation on Core=lanes does not
// invoke observers; observation there is per-batch
// (faultcast.WithBatchProbe) or per-request (telemetry spans). Plan.Run
// always executes on a round engine, so per-round logs remain available
// for any scenario — including ones whose estimation path is
// lane-lowered.
package trace

import (
	"fmt"
	"io"

	"faultcast/internal/sim"
)

// Logger writes one line per round describing faults, transmissions, and
// deliveries. Attach its Observe method to sim.Config.Observer.
type Logger struct {
	W io.Writer
	// Verbose additionally prints every delivered message.
	Verbose bool
}

// Observe implements the sim.Config.Observer contract.
func (l *Logger) Observe(r *sim.RoundRecord) {
	nTrans, nDeliv := 0, 0
	for _, ts := range r.Actual {
		nTrans += len(ts)
	}
	for _, ds := range r.Delivered {
		nDeliv += len(ds)
	}
	fmt.Fprintf(l.W, "round %4d: faults=%v transmissions=%d deliveries=%d collisions=%d\n",
		r.Round, r.Faulty, nTrans, nDeliv, r.Collisions)
	if l.Verbose {
		for v, ds := range r.Delivered {
			for _, d := range ds {
				fmt.Fprintf(l.W, "           %d <- %d: %q\n", v, d.From, d.Payload)
			}
		}
	}
}

// Counters aggregates per-round statistics across an execution.
type Counters struct {
	Rounds        int
	Faults        int
	Transmissions int
	Deliveries    int
	Collisions    int
	// FaultsPerRound histograms the number of simultaneous faults.
	FaultsPerRound map[int]int
}

// NewCounters returns an empty aggregate.
func NewCounters() *Counters {
	return &Counters{FaultsPerRound: make(map[int]int)}
}

// Observe implements the sim.Config.Observer contract.
func (c *Counters) Observe(r *sim.RoundRecord) {
	c.Rounds++
	c.Faults += len(r.Faulty)
	c.FaultsPerRound[len(r.Faulty)]++
	for _, ts := range r.Actual {
		c.Transmissions += len(ts)
	}
	for _, ds := range r.Delivered {
		c.Deliveries += len(ds)
	}
	c.Collisions += r.Collisions
}

// String summarizes the counters.
func (c *Counters) String() string {
	return fmt.Sprintf("rounds=%d faults=%d transmissions=%d deliveries=%d collisions=%d",
		c.Rounds, c.Faults, c.Transmissions, c.Deliveries, c.Collisions)
}

package sim

import (
	"bytes"
	"fmt"
	"sort"

	"faultcast/internal/rng"
)

// Run executes the configuration on the sequential engine and returns the
// result. It is the engine used by the Monte-Carlo harness; RunConcurrent
// provides identical semantics with one goroutine per node.
func Run(cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := newRunState(cfg)
	if err != nil {
		return nil, err
	}
	for round := 0; round < cfg.Rounds; round++ {
		if err := st.transmitPhase(round); err != nil {
			return nil, err
		}
		if err := st.faultAndDeliver(round); err != nil {
			return nil, err
		}
		st.deliverPhase(round)
		st.finishRound(round)
	}
	return st.result(), nil
}

// runState holds all mutable execution state shared by the two engines.
type runState struct {
	cfg      *Config
	n        int
	nodes    []Node
	faultRnd *rng.Source
	advRnd   *rng.Source
	history  *History

	intents   [][]Transmission
	actual    [][]Transmission
	delivered [][]Received
	faulty    []int

	stats          Stats
	lastCollisions int
	completedRound int
	informedRound  []int
	trackDone      bool
	doneAt         bool // completion already observed
}

func newRunState(cfg *Config) (*runState, error) {
	n := cfg.Graph.N()
	master := rng.New(cfg.Seed)
	st := &runState{
		cfg:            cfg,
		n:              n,
		nodes:          make([]Node, n),
		faultRnd:       master.Split(),
		advRnd:         master.Split(),
		intents:        make([][]Transmission, n),
		actual:         make([][]Transmission, n),
		delivered:      make([][]Received, n),
		completedRound: -1,
		trackDone:      cfg.TrackCompletion,
	}
	if cfg.RecordHistory {
		st.history = &History{}
	}
	if cfg.TrackCompletion {
		st.informedRound = make([]int, n)
		for i := range st.informedRound {
			st.informedRound[i] = -1
		}
	}
	nodeSeeds := master.Split()
	for id := 0; id < n; id++ {
		node := cfg.NewNode(id)
		if node == nil {
			return nil, fmt.Errorf("sim: NewNode(%d) returned nil", id)
		}
		env := &Env{
			ID: id, N: n, G: cfg.Graph, Source: cfg.Source, P: cfg.P,
			Rand: nodeSeeds.Split(),
		}
		if id == cfg.Source {
			env.SourceMsg = cfg.SourceMsg
		}
		node.Init(env)
		st.nodes[id] = node
	}
	return st, nil
}

// transmitPhase collects and validates every node's intent (sequentially).
func (st *runState) transmitPhase(round int) error {
	for id := 0; id < st.n; id++ {
		ts := st.nodes[id].Transmit(round)
		if err := st.validateTransmissions(id, ts); err != nil {
			return fmt.Errorf("sim: round %d: %w", round, err)
		}
		st.intents[id] = ts
	}
	return nil
}

func (st *runState) validateTransmissions(id int, ts []Transmission) error {
	if st.cfg.Model == Radio {
		if len(ts) > 1 {
			return fmt.Errorf("node %d returned %d transmissions in the radio model (max 1)", id, len(ts))
		}
		if len(ts) == 1 && ts[0].To != Broadcast {
			return fmt.Errorf("node %d used a directed transmission in the radio model", id)
		}
	}
	for _, t := range ts {
		if t.Payload == nil {
			return fmt.Errorf("node %d transmitted a nil payload (return no Transmission for silence)", id)
		}
		if t.To != Broadcast && !st.cfg.Graph.HasEdge(id, t.To) {
			return fmt.Errorf("node %d addressed non-neighbor %d", id, t.To)
		}
	}
	return nil
}

// faultAndDeliver samples faults, applies fault semantics, and computes
// this round's deliveries into st.delivered.
func (st *runState) faultAndDeliver(round int) error {
	// Phase 2: sample faults. Draw per node in id order so the pattern is
	// identical across engines.
	st.faulty = st.faulty[:0]
	if st.cfg.Fault != NoFaults {
		for id := 0; id < st.n; id++ {
			if st.faultRnd.Bernoulli(st.cfg.P) {
				st.faulty = append(st.faulty, id)
			}
		}
	}
	st.stats.Faults += len(st.faulty)

	// Phase 3: map intents to actual transmissions.
	copy(st.actual, st.intents)
	switch st.cfg.Fault {
	case NoFaults:
	case Omission:
		for _, id := range st.faulty {
			st.actual[id] = nil
		}
	case Malicious, LimitedMalicious:
		if len(st.faulty) > 0 {
			exec := &Exec{
				G:         st.cfg.Graph,
				Model:     st.cfg.Model,
				Fault:     st.cfg.Fault,
				Source:    st.cfg.Source,
				SourceMsg: st.cfg.SourceMsg,
				P:         st.cfg.P,
				Round:     round,
				Intents:   st.intents,
				History:   st.history,
				Rand:      st.advRnd,
			}
			repl := st.cfg.Adversary.Corrupt(exec, append([]int(nil), st.faulty...))
			if err := st.applyCorruption(repl); err != nil {
				return fmt.Errorf("sim: round %d: %w", round, err)
			}
		}
	}

	// Phase 4: delivery rule.
	for i := range st.delivered {
		st.delivered[i] = nil
	}
	if st.cfg.Model == MessagePassing {
		st.deliverMessagePassing()
	} else {
		st.deliverRadio(round)
	}
	return nil
}

func (st *runState) applyCorruption(repl map[int][]Transmission) error {
	if len(repl) == 0 {
		return nil
	}
	isFaulty := make(map[int]bool, len(st.faulty))
	for _, id := range st.faulty {
		isFaulty[id] = true
	}
	// Apply in increasing id order for determinism of error reporting.
	ids := make([]int, 0, len(repl))
	for id := range repl {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !isFaulty[id] {
			return fmt.Errorf("adversary corrupted non-faulty node %d", id)
		}
		ts := repl[id]
		if err := st.validateTransmissions(id, ts); err != nil {
			return fmt.Errorf("adversary: %w", err)
		}
		if st.cfg.Fault == LimitedMalicious {
			if err := checkLimited(st.intents[id], ts); err != nil {
				return fmt.Errorf("adversary violated limited-malicious constraint at node %d: %w", id, err)
			}
		}
		st.actual[id] = ts
	}
	return nil
}

// checkLimited verifies that actual is obtainable from intent by altering
// payloads and dropping transmissions: for every destination, the adversary
// may emit at most as many transmissions as were intended to it.
func checkLimited(intent, actual []Transmission) error {
	slots := make(map[int]int, len(intent))
	for _, t := range intent {
		slots[t.To]++
	}
	for _, t := range actual {
		if slots[t.To] == 0 {
			return fmt.Errorf("transmission to %d was not intended (limited-malicious cannot speak out of turn)", t.To)
		}
		slots[t.To]--
	}
	return nil
}

func (st *runState) deliverMessagePassing() {
	// Iterate senders in increasing id so each receiver's list arrives in
	// increasing sender order (deterministic across engines).
	for from := 0; from < st.n; from++ {
		for _, t := range st.actual[from] {
			st.stats.Transmissions++
			if t.To == Broadcast {
				st.cfg.Graph.ForNeighbors(from, func(w int) {
					st.delivered[w] = append(st.delivered[w], Received{From: from, Payload: t.Payload})
					st.stats.Deliveries++
				})
			} else {
				st.delivered[t.To] = append(st.delivered[t.To], Received{From: from, Payload: t.Payload})
				st.stats.Deliveries++
			}
		}
	}
}

func (st *runState) deliverRadio(round int) {
	collisions := 0
	for v := 0; v < st.n; v++ {
		if len(st.actual[v]) > 0 {
			continue // a transmitting node hears nothing
		}
		talkers := 0
		talker := -1
		st.cfg.Graph.ForNeighbors(v, func(w int) {
			if len(st.actual[w]) > 0 {
				talkers++
				talker = w
			}
		})
		switch {
		case talkers == 1:
			st.delivered[v] = append(st.delivered[v], Received{From: talker, Payload: st.actual[talker][0].Payload})
			st.stats.Deliveries++
		case talkers > 1:
			collisions++
		}
	}
	for v := 0; v < st.n; v++ {
		if len(st.actual[v]) > 0 {
			st.stats.Transmissions++
		}
	}
	st.stats.Collisions += collisions
	st.lastCollisions = collisions
}

// deliverPhase hands this round's receptions to the nodes (sequentially).
func (st *runState) deliverPhase(round int) {
	for v := 0; v < st.n; v++ {
		for _, r := range st.delivered[v] {
			st.nodes[v].Deliver(round, r.From, r.Payload)
		}
	}
}

// finishRound records history/observer state and completion tracking.
func (st *runState) finishRound(round int) {
	st.stats.Rounds = round + 1
	var rec *RoundRecord
	if st.history != nil || st.cfg.Observer != nil {
		rec = &RoundRecord{
			Round:      round,
			Faulty:     append([]int(nil), st.faulty...),
			Actual:     cloneTransmissions(st.actual),
			Delivered:  cloneReceived(st.delivered),
			Collisions: st.lastCollisions,
		}
	}
	if st.history != nil {
		st.history.Rounds = append(st.history.Rounds, *rec)
	}
	if st.cfg.Observer != nil {
		st.cfg.Observer(rec)
	}
	st.lastCollisions = 0
	if st.trackDone && !st.doneAt {
		all := true
		for id, node := range st.nodes {
			correct := bytes.Equal(node.Output(), st.cfg.SourceMsg)
			if correct && st.informedRound[id] == -1 {
				st.informedRound[id] = round
			}
			if !correct {
				all = false
				// A node can in principle revert (e.g. a vote flips);
				// first-informed semantics keep the earlier round.
			}
		}
		if all {
			st.completedRound = round
			st.doneAt = true
		}
	}
}

func (st *runState) result() *Result {
	res := &Result{
		Success:        true,
		FirstFailed:    -1,
		CompletedRound: st.completedRound,
		InformedRound:  st.informedRound,
		Outputs:        make([][]byte, st.n),
		Stats:          st.stats,
		History:        st.history,
	}
	for id, node := range st.nodes {
		out := node.Output()
		res.Outputs[id] = out
		if res.Success && !bytes.Equal(out, st.cfg.SourceMsg) {
			res.Success = false
			res.FirstFailed = id
		}
	}
	if res.Success && !st.trackDone {
		res.CompletedRound = st.stats.Rounds - 1
	}
	if !res.Success {
		res.CompletedRound = -1
	}
	return res
}

func cloneTransmissions(src [][]Transmission) [][]Transmission {
	out := make([][]Transmission, len(src))
	for i, ts := range src {
		if len(ts) == 0 {
			continue
		}
		cp := make([]Transmission, len(ts))
		for j, t := range ts {
			cp[j] = Transmission{To: t.To, Payload: append([]byte(nil), t.Payload...)}
		}
		out[i] = cp
	}
	return out
}

func cloneReceived(src [][]Received) [][]Received {
	out := make([][]Received, len(src))
	for i, rs := range src {
		if len(rs) == 0 {
			continue
		}
		cp := make([]Received, len(rs))
		for j, r := range rs {
			cp[j] = Received{From: r.From, Payload: append([]byte(nil), r.Payload...)}
		}
		out[i] = cp
	}
	return out
}

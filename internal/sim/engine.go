package sim

import (
	"bytes"
	"fmt"
	"math/bits"

	"faultcast/internal/bitset"
	"faultcast/internal/rng"
)

// Run executes the configuration on the sequential engine and returns the
// result. It is the engine used by the Monte-Carlo harness; RunConcurrent
// provides identical semantics with one goroutine per node. Trial streams
// over a fixed configuration should use a Runner, which reuses the run
// state instead of reallocating it per trial.
func Run(cfg *Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(cfg.Seed)
}

// Runner executes many independent trials of one configuration on the
// sequential engine, reusing the execution state (transmission, delivery,
// and fault buffers) across trials instead of allocating it per run. A
// trial with a given seed is bit-identical to Run with that seed.
//
// A Runner is NOT safe for concurrent use: give each worker goroutine its
// own Runner (they may share the *Config, which the Runner never mutates).
type Runner struct {
	cfg *Config
	st  *runState
}

// NewRunner validates the configuration once and returns a reusable runner.
// Config.Seed is ignored; each trial's seed is passed to Run.
func NewRunner(cfg *Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, st: allocRunState(cfg)}, nil
}

// Run executes one trial with the given seed. The returned Result does not
// alias mutable runner state and stays valid across subsequent trials.
func (r *Runner) Run(seed uint64) (*Result, error) {
	st := r.st
	if err := st.Reset(seed); err != nil {
		return nil, err
	}
	for round := 0; round < r.cfg.Rounds; round++ {
		if err := st.transmitPhase(round); err != nil {
			return nil, err
		}
		if err := st.faultAndDeliver(round); err != nil {
			return nil, err
		}
		st.deliverPhase(round)
		st.finishRound(round)
	}
	return st.result(), nil
}

// runState holds all mutable execution state shared by the two engines. It
// is allocated once (allocRunState) and rewound to a fresh execution by
// Reset, so a Runner can stream trials without reallocating its buffers.
type runState struct {
	cfg      *Config
	n        int
	nodes    []Node
	faultRnd *rng.Source
	advRnd   *rng.Source
	history  *History

	intents   [][]Transmission
	actual    [][]Transmission
	delivered [][]Received
	faulty    []int

	// Word-parallel round core scratch (see faultAndDeliver). All sets
	// live over the vertex universe [0, n) and are reused across rounds
	// and trials; none are observable outside a round.
	faultMask    bitset.Set // this round's faulty transmitters
	intentMask   bitset.Set // nodes with >= 1 intended transmission
	transmitMask bitset.Set // nodes with >= 1 actual transmission
	seenOnce     bitset.Set // radio: covered by >= 1 transmitter
	seenTwice    bitset.Set // radio: covered by >= 2 transmitters
	talkers      []int      // transmitMask as ids, reused
	limSlots     []int      // checkLimited scratch, len n+1, all zero between calls
	exec         Exec       // adversary view, static fields set per trial

	stats          Stats
	lastCollisions int
	completedRound int
	informedRound  []int
	trackDone      bool
	doneAt         bool // completion already observed
}

// allocRunState allocates the per-execution buffers without initializing an
// execution; Reset must be called before the first round.
func allocRunState(cfg *Config) *runState {
	n := cfg.Graph.N()
	st := &runState{
		cfg:          cfg,
		n:            n,
		nodes:        make([]Node, n),
		intents:      make([][]Transmission, n),
		actual:       make([][]Transmission, n),
		delivered:    make([][]Received, n),
		faultMask:    bitset.New(n),
		intentMask:   bitset.New(n),
		transmitMask: bitset.New(n),
		seenOnce:     bitset.New(n),
		seenTwice:    bitset.New(n),
		limSlots:     make([]int, n+1),
		trackDone:    cfg.TrackCompletion,
	}
	if cfg.TrackCompletion {
		st.informedRound = make([]int, n)
	}
	return st
}

// Reset rewinds the state to the start of a fresh execution with the given
// seed. The RNG stream derivation (fault stream, adversary stream, one
// stream per node, in that order) matches a from-scratch run exactly, so a
// reused state is bit-identical to a freshly allocated one.
func (st *runState) Reset(seed uint64) error {
	cfg := st.cfg
	master := rng.New(seed)
	st.faultRnd = master.Split()
	st.advRnd = master.Split()
	st.history = nil
	if cfg.RecordHistory {
		st.history = &History{}
	}
	st.stats = Stats{}
	st.lastCollisions = 0
	st.completedRound = -1
	st.doneAt = false
	st.faulty = st.faulty[:0]
	st.exec = Exec{
		G:         cfg.Graph,
		Model:     cfg.Model,
		Fault:     cfg.Fault,
		Source:    cfg.Source,
		SourceMsg: cfg.SourceMsg,
		P:         cfg.P,
		Intents:   st.intents,
		History:   st.history,
		Rand:      st.advRnd,
	}
	for i := 0; i < st.n; i++ {
		st.intents[i] = nil
		st.actual[i] = nil
		st.delivered[i] = st.delivered[i][:0]
	}
	for i := range st.informedRound {
		st.informedRound[i] = -1
	}
	nodeSeeds := master.Split()
	for id := 0; id < st.n; id++ {
		node := cfg.NewNode(id)
		if node == nil {
			return fmt.Errorf("sim: NewNode(%d) returned nil", id)
		}
		env := &Env{
			ID: id, N: st.n, G: cfg.Graph, Source: cfg.Source, P: cfg.P,
			Rand: nodeSeeds.Split(),
		}
		if id == cfg.Source {
			env.SourceMsg = cfg.SourceMsg
		}
		node.Init(env)
		st.nodes[id] = node
	}
	return nil
}

func newRunState(cfg *Config) (*runState, error) {
	st := allocRunState(cfg)
	if err := st.Reset(cfg.Seed); err != nil {
		return nil, err
	}
	return st, nil
}

// transmitPhase collects and validates every node's intent (sequentially).
func (st *runState) transmitPhase(round int) error {
	for id := 0; id < st.n; id++ {
		ts := st.nodes[id].Transmit(round)
		if err := st.validateTransmissions(id, ts); err != nil {
			return fmt.Errorf("sim: round %d: %w", round, err)
		}
		st.intents[id] = ts
	}
	return nil
}

func (st *runState) validateTransmissions(id int, ts []Transmission) error {
	if st.cfg.Model == Radio {
		if len(ts) > 1 {
			return fmt.Errorf("node %d returned %d transmissions in the radio model (max 1)", id, len(ts))
		}
		if len(ts) == 1 && ts[0].To != Broadcast {
			return fmt.Errorf("node %d used a directed transmission in the radio model", id)
		}
	}
	for _, t := range ts {
		if t.Payload == nil {
			return fmt.Errorf("node %d transmitted a nil payload (return no Transmission for silence)", id)
		}
		if t.To != Broadcast && !st.cfg.Graph.HasEdge(id, t.To) {
			return fmt.Errorf("node %d addressed non-neighbor %d", id, t.To)
		}
	}
	return nil
}

// faultAndDeliver samples faults, applies fault semantics, and computes
// this round's deliveries into st.delivered. It is the per-round core
// shared by both engines: the word-parallel bitset implementation by
// default, the scalar reference when Config.ScalarCore is set, with
// bit-identical executions either way.
func (st *runState) faultAndDeliver(round int) error {
	// Phase 2: sample faults. The scalar core draws per node in id order;
	// the bitset core fills the fault mask with the same draws in the same
	// RNG order (rng.BernoulliMask), so the fault pattern is identical
	// across cores and engines. Both maintain the id list (adversary,
	// stats, and history want ids) and the mask (silencing and the
	// corruption guard want set algebra).
	st.faulty = st.faulty[:0]
	if st.cfg.Fault != NoFaults {
		if st.cfg.ScalarCore {
			st.faultMask.Clear()
			for id := 0; id < st.n; id++ {
				if st.faultRnd.Bernoulli(st.cfg.P) {
					st.faulty = append(st.faulty, id)
					st.faultMask.Add(id)
				}
			}
		} else {
			st.faultRnd.BernoulliMask(st.cfg.P, st.n, st.faultMask)
			st.faulty = st.faultMask.AppendIDs(st.faulty)
		}
	}
	st.stats.Faults += len(st.faulty)

	// Phase 3: map intents to actual transmissions, maintaining
	// transmitMask = { id : len(actual[id]) > 0 }. The intent mask is
	// rebuilt centrally (not in transmitPhase) because the concurrent
	// engine's workers write st.intents in parallel and must not share
	// mask words.
	st.intentMask.Clear()
	for id := 0; id < st.n; id++ {
		if len(st.intents[id]) > 0 {
			st.intentMask.Add(id)
		}
	}
	copy(st.actual, st.intents)
	st.transmitMask.Copy(st.intentMask)
	switch st.cfg.Fault {
	case NoFaults:
	case Omission:
		// Omission silencing is a mask intersection: transmitters are the
		// intenders minus this round's faulty set.
		st.transmitMask.AndNot(st.faultMask)
		for _, id := range st.faulty {
			st.actual[id] = nil
		}
	case Malicious, LimitedMalicious:
		if len(st.faulty) > 0 {
			st.exec.Round = round
			repl := st.cfg.Adversary.Corrupt(&st.exec, append([]int(nil), st.faulty...))
			if err := st.applyCorruption(repl); err != nil {
				return fmt.Errorf("sim: round %d: %w", round, err)
			}
		}
	}

	// Phase 4: delivery rule. Truncate (not nil) so a reused state keeps
	// its per-receiver backing arrays across rounds and trials; receivers
	// must not retain the slices (the Node contract), and history records
	// are deep-cloned.
	for i := range st.delivered {
		st.delivered[i] = st.delivered[i][:0]
	}
	if st.cfg.Model == MessagePassing {
		if st.cfg.ScalarCore {
			st.deliverMessagePassing()
		} else {
			st.deliverMessagePassingBitset()
		}
	} else {
		if st.cfg.ScalarCore {
			st.deliverRadio(round)
		} else {
			st.deliverRadioBitset(round)
		}
	}
	return nil
}

// applyCorruption installs the adversary's replacement transmissions,
// walking st.faulty (already in increasing id order) instead of sorting the
// replacement map's keys, and checking membership against the fault mask
// instead of building a per-round map — the corruption path allocates
// nothing beyond what the adversary itself returned.
func (st *runState) applyCorruption(repl map[int][]Transmission) error {
	if len(repl) == 0 {
		return nil
	}
	// Errors are reported for the smallest problematic id, exactly as the
	// old sorted walk did: find the smallest healthy target up front, then
	// merge it into the increasing walk over the faulty ids.
	offender := -1
	for id := range repl {
		if (id < 0 || id >= st.n || !st.faultMask.Contains(id)) && (offender == -1 || id < offender) {
			offender = id
		}
	}
	for _, id := range st.faulty {
		if offender != -1 && offender < id {
			return fmt.Errorf("adversary corrupted non-faulty node %d", offender)
		}
		ts, ok := repl[id]
		if !ok {
			continue
		}
		if err := st.validateTransmissions(id, ts); err != nil {
			return fmt.Errorf("adversary: %w", err)
		}
		if st.cfg.Fault == LimitedMalicious {
			if err := checkLimitedInto(st.limSlots, st.intents[id], ts); err != nil {
				return fmt.Errorf("adversary violated limited-malicious constraint at node %d: %w", id, err)
			}
		}
		st.actual[id] = ts
		if len(ts) > 0 {
			st.transmitMask.Add(id)
		} else {
			st.transmitMask.Remove(id)
		}
	}
	if offender != -1 {
		return fmt.Errorf("adversary corrupted non-faulty node %d", offender)
	}
	return nil
}

// checkLimited verifies that actual is obtainable from intent by altering
// payloads and dropping transmissions: for every destination, the adversary
// may emit at most as many transmissions as were intended to it.
func checkLimited(intent, actual []Transmission) error {
	maxTo := 0
	for _, t := range intent {
		if t.To > maxTo {
			maxTo = t.To
		}
	}
	for _, t := range actual {
		if t.To > maxTo {
			maxTo = t.To
		}
	}
	return checkLimitedInto(make([]int, maxTo+2), intent, actual)
}

// checkLimitedInto is checkLimited over caller-provided scratch: slots must
// hold maxTo+2 counters (index To+1; Broadcast is -1) and be all-zero; it
// is restored to all-zero before returning, so a runState can reuse one
// buffer for every corrupted node without clearing it in between.
func checkLimitedInto(slots []int, intent, actual []Transmission) error {
	for _, t := range intent {
		slots[t.To+1]++
	}
	var err error
	for _, t := range actual {
		if slots[t.To+1] == 0 {
			err = fmt.Errorf("transmission to %d was not intended (limited-malicious cannot speak out of turn)", t.To)
			break
		}
		slots[t.To+1]--
	}
	// Every touched counter is indexed by an intent destination (actual
	// destinations either hit one of those or were left at zero), so
	// re-walking the intent restores the all-zero invariant.
	for _, t := range intent {
		slots[t.To+1] = 0
	}
	return err
}

// deliverMessagePassingBitset is the word-parallel message-passing rule:
// senders are iterated straight off the transmit mask (skipping silent
// nodes 64 at a time), and each broadcast walks the sender's cached
// adjacency bitset row instead of invoking a per-neighbor callback.
// Receiver lists are identical to the scalar rule's: senders come off the
// mask in increasing id order, rows iterate in increasing receiver order.
func (st *runState) deliverMessagePassingBitset() {
	g := st.cfg.Graph
	st.talkers = st.transmitMask.AppendIDs(st.talkers[:0])
	for _, from := range st.talkers {
		for i := range st.actual[from] {
			t := &st.actual[from][i]
			st.stats.Transmissions++
			if t.To == Broadcast {
				for wi, word := range g.AdjacencyRow(from) {
					base := wi << 6
					for word != 0 {
						w := base + bits.TrailingZeros64(word)
						word &= word - 1
						st.delivered[w] = append(st.delivered[w], Received{From: from, Payload: t.Payload})
						st.stats.Deliveries++
					}
				}
			} else {
				st.delivered[t.To] = append(st.delivered[t.To], Received{From: from, Payload: t.Payload})
				st.stats.Deliveries++
			}
		}
	}
}

// deliverRadioBitset is the word-parallel radio collision rule. Folding
// each transmitter's adjacency row into seen-once/seen-twice accumulators
// gives, in O(|transmitters| * n/64) word operations,
//
//	heard     = (seenOnce \ seenTwice) \ transmitters
//	collision = seenTwice \ transmitters
//
// exactly the scalar rule's "a node hears iff it is silent and exactly one
// neighbor transmits", with collisions counted per silent receiver.
func (st *runState) deliverRadioBitset(round int) {
	g := st.cfg.Graph
	st.talkers = st.transmitMask.AppendIDs(st.talkers[:0])
	st.seenOnce.Clear()
	st.seenTwice.Clear()
	for _, w := range st.talkers {
		row := g.AdjacencyRow(w)
		st.seenTwice.OrAnd(st.seenOnce, row)
		st.seenOnce.Or(row)
	}
	collisions := st.seenTwice.CountAndNot(st.transmitMask)
	// Reduce seenOnce to the heard set in place (it is rebuilt next round).
	st.seenOnce.AndNot(st.seenTwice)
	st.seenOnce.AndNot(st.transmitMask)
	for wi, word := range st.seenOnce {
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			// v's unique transmitting neighbor is the sole element of
			// adj(v) ∩ transmitters.
			talker := bitset.FirstCommon(g.AdjacencyRow(v), st.transmitMask)
			st.delivered[v] = append(st.delivered[v], Received{From: talker, Payload: st.actual[talker][0].Payload})
			st.stats.Deliveries++
		}
	}
	st.stats.Transmissions += len(st.talkers)
	st.stats.Collisions += collisions
	st.lastCollisions = collisions
}

func (st *runState) deliverMessagePassing() {
	// Iterate senders in increasing id so each receiver's list arrives in
	// increasing sender order (deterministic across engines).
	for from := 0; from < st.n; from++ {
		for _, t := range st.actual[from] {
			st.stats.Transmissions++
			if t.To == Broadcast {
				st.cfg.Graph.ForNeighbors(from, func(w int) {
					st.delivered[w] = append(st.delivered[w], Received{From: from, Payload: t.Payload})
					st.stats.Deliveries++
				})
			} else {
				st.delivered[t.To] = append(st.delivered[t.To], Received{From: from, Payload: t.Payload})
				st.stats.Deliveries++
			}
		}
	}
}

func (st *runState) deliverRadio(round int) {
	collisions := 0
	for v := 0; v < st.n; v++ {
		if len(st.actual[v]) > 0 {
			continue // a transmitting node hears nothing
		}
		talkers := 0
		talker := -1
		st.cfg.Graph.ForNeighbors(v, func(w int) {
			if len(st.actual[w]) > 0 {
				talkers++
				talker = w
			}
		})
		switch {
		case talkers == 1:
			st.delivered[v] = append(st.delivered[v], Received{From: talker, Payload: st.actual[talker][0].Payload})
			st.stats.Deliveries++
		case talkers > 1:
			collisions++
		}
	}
	for v := 0; v < st.n; v++ {
		if len(st.actual[v]) > 0 {
			st.stats.Transmissions++
		}
	}
	st.stats.Collisions += collisions
	st.lastCollisions = collisions
}

// deliverPhase hands this round's receptions to the nodes (sequentially).
func (st *runState) deliverPhase(round int) {
	for v := 0; v < st.n; v++ {
		for _, r := range st.delivered[v] {
			st.nodes[v].Deliver(round, r.From, r.Payload)
		}
	}
}

// finishRound records history/observer state and completion tracking.
func (st *runState) finishRound(round int) {
	st.stats.Rounds = round + 1
	var rec *RoundRecord
	if st.history != nil || st.cfg.Observer != nil {
		rec = &RoundRecord{
			Round:      round,
			Faulty:     append([]int(nil), st.faulty...),
			Actual:     cloneTransmissions(st.actual),
			Delivered:  cloneReceived(st.delivered),
			Collisions: st.lastCollisions,
		}
	}
	if st.history != nil {
		st.history.Rounds = append(st.history.Rounds, *rec)
	}
	if st.cfg.Observer != nil {
		st.cfg.Observer(rec)
	}
	st.lastCollisions = 0
	if st.trackDone && !st.doneAt {
		all := true
		for id, node := range st.nodes {
			correct := bytes.Equal(node.Output(), st.cfg.SourceMsg)
			if correct && st.informedRound[id] == -1 {
				st.informedRound[id] = round
			}
			if !correct {
				all = false
				// A node can in principle revert (e.g. a vote flips);
				// first-informed semantics keep the earlier round.
			}
		}
		if all {
			st.completedRound = round
			st.doneAt = true
		}
	}
}

func (st *runState) result() *Result {
	res := &Result{
		Success:        true,
		FirstFailed:    -1,
		CompletedRound: st.completedRound,
		Outputs:        make([][]byte, st.n),
		Stats:          st.stats,
		History:        st.history,
	}
	if st.informedRound != nil {
		// Copy: the state (and this slice) is rewound on the next Reset,
		// and the Result must stay valid across a Runner's trial stream.
		res.InformedRound = append([]int(nil), st.informedRound...)
	}
	for id, node := range st.nodes {
		out := node.Output()
		res.Outputs[id] = out
		if res.Success && !bytes.Equal(out, st.cfg.SourceMsg) {
			res.Success = false
			res.FirstFailed = id
		}
	}
	if res.Success && !st.trackDone {
		res.CompletedRound = st.stats.Rounds - 1
	}
	if !res.Success {
		res.CompletedRound = -1
	}
	return res
}

func cloneTransmissions(src [][]Transmission) [][]Transmission {
	out := make([][]Transmission, len(src))
	for i, ts := range src {
		if len(ts) == 0 {
			continue
		}
		cp := make([]Transmission, len(ts))
		for j, t := range ts {
			cp[j] = Transmission{To: t.To, Payload: append([]byte(nil), t.Payload...)}
		}
		out[i] = cp
	}
	return out
}

func cloneReceived(src [][]Received) [][]Received {
	out := make([][]Received, len(src))
	for i, rs := range src {
		if len(rs) == 0 {
			continue
		}
		cp := make([]Received, len(rs))
		for j, r := range rs {
			cp[j] = Received{From: r.From, Payload: append([]byte(nil), r.Payload...)}
		}
		out[i] = cp
	}
	return out
}

package sim

import (
	"bytes"
	"fmt"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// This file is the differential-equivalence harness of the bitset core: a
// randomized configuration generator (model × fault type × adversary ×
// graph family × p × seed) drives bit-identity checks of
//
//   - the word-parallel bitset core against the scalar reference core, and
//   - the sequential engine against the goroutine-per-node engine,
//
// on every generated configuration, comparing full results AND full
// histories (fault sets, post-fault transmissions, deliveries, collision
// counts, per-node informing rounds) byte for byte. Roughly 200 cases run
// even under -short; the generator is deterministic, so a failure report's
// case index reproduces exactly.

// diffCase is one generated configuration plus its provenance for error
// reporting.
type diffCase struct {
	desc string
	cfg  *Config
}

// genCase derives configuration i deterministically. Graphs stay small
// (n <= 26) so the whole matrix runs in well under a second per engine.
func genCase(i int) diffCase {
	r := rng.New(uint64(i)*0x9e3779b9 + 17)
	model := []Model{MessagePassing, Radio}[r.Intn(2)]
	fault := []FaultType{NoFaults, Omission, Malicious, LimitedMalicious}[r.Intn(4)]
	p := []float64{0, 0.05, 0.2, 0.4, 0.6, 0.8}[r.Intn(6)]

	var g *graph.Graph
	family := r.Intn(9)
	switch family {
	case 0:
		g = graph.Line(2 + r.Intn(24))
	case 1:
		g = graph.Ring(3 + r.Intn(23))
	case 2:
		g = graph.Star(2 + r.Intn(24))
	case 3:
		g = graph.Grid(2+r.Intn(4), 2+r.Intn(5))
	case 4:
		g = graph.KaryTree(2+r.Intn(24), 1+r.Intn(3))
	case 5:
		g = graph.Complete(2 + r.Intn(10))
	case 6:
		g = graph.Hypercube(1 + r.Intn(4))
	case 7:
		g = graph.Layered(1 + r.Intn(3))
	default:
		g = graph.GNP(2+r.Intn(24), 0.1+0.3*r.Float64(), r)
	}
	n := g.N()

	cfg := &Config{
		Graph:           g,
		Model:           model,
		Fault:           fault,
		P:               p,
		Source:          r.Intn(n),
		SourceMsg:       []byte("diff"),
		Rounds:          1 + r.Intn(2*n+4),
		Seed:            uint64(i)*2654435761 + 99,
		RecordHistory:   true,
		TrackCompletion: true,
	}
	if model == MessagePassing {
		cfg.NewNode = func(id int) Node { return &floodNode{} }
	} else {
		cfg.NewNode = func(id int) Node { return &relayNode{} }
	}
	advName := "none"
	if fault == Malicious || fault == LimitedMalicious {
		// outOfTurnAdversary is illegal under LimitedMalicious (it speaks
		// out of turn), so the limited variant draws from the legal pair.
		switch r.Intn(3) {
		case 0:
			cfg.Adversary, advName = silencerAdversary{}, "silencer"
		case 1:
			cfg.Adversary, advName = flipAdversary{}, "flip"
		default:
			if fault == Malicious {
				cfg.Adversary, advName = outOfTurnAdversary{}, "out-of-turn"
			} else {
				cfg.Adversary, advName = flipAdversary{}, "flip"
			}
		}
	}
	return diffCase{
		desc: fmt.Sprintf("case %d: %v/%v/%s p=%v g=%v src=%d rounds=%d seed=%d",
			i, model, fault, advName, p, g, cfg.Source, cfg.Rounds, cfg.Seed),
		cfg: cfg,
	}
}

// diffResults compares two executions bit for bit, including histories.
func diffResults(a, b *Result) error {
	if a.Success != b.Success || a.FirstFailed != b.FirstFailed ||
		a.CompletedRound != b.CompletedRound || a.Stats != b.Stats {
		return fmt.Errorf("result headers diverge: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Outputs) != len(b.Outputs) || len(a.InformedRound) != len(b.InformedRound) {
		return fmt.Errorf("result shapes diverge")
	}
	for id := range a.Outputs {
		if !bytes.Equal(a.Outputs[id], b.Outputs[id]) {
			return fmt.Errorf("output of node %d diverges: %q vs %q", id, a.Outputs[id], b.Outputs[id])
		}
	}
	for id := range a.InformedRound {
		if a.InformedRound[id] != b.InformedRound[id] {
			return fmt.Errorf("informed round of node %d diverges: %d vs %d", id, a.InformedRound[id], b.InformedRound[id])
		}
	}
	if (a.History == nil) != (b.History == nil) {
		return fmt.Errorf("one execution lacks a history")
	}
	if a.History == nil {
		return nil
	}
	if len(a.History.Rounds) != len(b.History.Rounds) {
		return fmt.Errorf("history lengths diverge: %d vs %d", len(a.History.Rounds), len(b.History.Rounds))
	}
	for r := range a.History.Rounds {
		ra, rb := &a.History.Rounds[r], &b.History.Rounds[r]
		if ra.Collisions != rb.Collisions {
			return fmt.Errorf("round %d collisions diverge: %d vs %d", r, ra.Collisions, rb.Collisions)
		}
		if fmt.Sprint(ra.Faulty) != fmt.Sprint(rb.Faulty) {
			return fmt.Errorf("round %d fault sets diverge: %v vs %v", r, ra.Faulty, rb.Faulty)
		}
		if fmt.Sprint(ra.Actual) != fmt.Sprint(rb.Actual) {
			return fmt.Errorf("round %d transmissions diverge", r)
		}
		if fmt.Sprint(ra.Delivered) != fmt.Sprint(rb.Delivered) {
			return fmt.Errorf("round %d deliveries diverge", r)
		}
	}
	return nil
}

const diffCases = 200

// TestDifferentialBitsetVsScalar: for every generated configuration the
// bitset core and the scalar reference core produce bit-identical
// executions on the sequential engine.
func TestDifferentialBitsetVsScalar(t *testing.T) {
	for i := 0; i < diffCases; i++ {
		c := genCase(i)

		bitCfg := *c.cfg
		bitCfg.ScalarCore = false
		got, err := Run(&bitCfg)
		if err != nil {
			t.Fatalf("%s: bitset core: %v", c.desc, err)
		}

		refCfg := *c.cfg
		refCfg.ScalarCore = true
		want, err := Run(&refCfg)
		if err != nil {
			t.Fatalf("%s: scalar core: %v", c.desc, err)
		}

		if err := diffResults(got, want); err != nil {
			t.Fatalf("%s: bitset vs scalar: %v", c.desc, err)
		}
	}
}

// TestDifferentialSequentialVsConcurrent: for every generated configuration
// the sequential and goroutine-per-node engines produce bit-identical
// executions (both riding the bitset core).
func TestDifferentialSequentialVsConcurrent(t *testing.T) {
	for i := 0; i < diffCases; i++ {
		c := genCase(i)

		seq, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", c.desc, err)
		}
		conc, err := RunConcurrent(c.cfg)
		if err != nil {
			t.Fatalf("%s: concurrent: %v", c.desc, err)
		}
		if err := diffResults(seq, conc); err != nil {
			t.Fatalf("%s: sequential vs concurrent: %v", c.desc, err)
		}
	}
}

// TestDifferentialRunnerReuse: streaming the generated configurations
// through one reused Runner per configuration stays bit-identical to fresh
// runs — the bitset scratch (masks, talker ids, limited-malicious slots)
// must not leak state between trials.
func TestDifferentialRunnerReuse(t *testing.T) {
	for i := 0; i < diffCases; i += 4 { // every 4th case, 3 seeds each
		c := genCase(i)
		runner, err := NewRunner(c.cfg)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", c.desc, err)
		}
		for s := uint64(0); s < 3; s++ {
			seed := c.cfg.Seed + 1000*s
			got, err := runner.Run(seed)
			if err != nil {
				t.Fatalf("%s: runner seed %d: %v", c.desc, seed, err)
			}
			fresh := *c.cfg
			fresh.Seed = seed
			want, err := Run(&fresh)
			if err != nil {
				t.Fatalf("%s: fresh seed %d: %v", c.desc, seed, err)
			}
			if err := diffResults(got, want); err != nil {
				t.Fatalf("%s: runner vs fresh at seed %d: %v", c.desc, seed, err)
			}
		}
	}
}

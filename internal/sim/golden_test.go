package sim_test

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/protocols/decay"
	"faultcast/internal/protocols/flooding"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/twonode"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
)

// Golden-trace regression tests: one fixed-seed run per experiment family,
// digested round by round (fault-set hash, delivery count, informed-set
// hash) and compared against committed files under testdata/golden/. Any
// change to the engine's RNG stream layout, fault semantics, delivery
// rules, or completion tracking shows up as a digest mismatch on the exact
// round where behaviour first diverged.
//
// Regenerate after an intentional semantic change with
//
//	go test ./internal/sim -run TestGoldenTraces -update

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// roundDigest is the committed per-round summary.
type roundDigest struct {
	Faulty     string `json:"faulty"`     // FNV-64a of the faulty id set
	Deliveries int    `json:"deliveries"` // messages handed to Deliver this round
	Informed   string `json:"informed"`   // FNV-64a of { v : InformedRound[v] <= round }
}

type goldenTrace struct {
	Family string        `json:"family"`
	Graph  string        `json:"graph"`
	Seed   uint64        `json:"seed"`
	Rounds []roundDigest `json:"rounds"`
}

func hashIDs(ids []int) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint32(buf[:], uint32(id))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// digestRun executes the configuration (RecordHistory and TrackCompletion
// forced on) and compresses the execution to per-round digests.
func digestRun(t *testing.T, family string, cfg *sim.Config) goldenTrace {
	t.Helper()
	c := *cfg
	c.RecordHistory = true
	c.TrackCompletion = true
	res, err := sim.Run(&c)
	if err != nil {
		t.Fatalf("%s: %v", family, err)
	}
	trace := goldenTrace{Family: family, Graph: cfg.Graph.String(), Seed: cfg.Seed}
	informed := make([]int, 0, cfg.Graph.N())
	for r := range res.History.Rounds {
		rec := &res.History.Rounds[r]
		deliveries := 0
		for _, d := range rec.Delivered {
			deliveries += len(d)
		}
		informed = informed[:0]
		for v, ir := range res.InformedRound {
			if ir != -1 && ir <= r {
				informed = append(informed, v)
			}
		}
		trace.Rounds = append(trace.Rounds, roundDigest{
			Faulty:     hashIDs(rec.Faulty),
			Deliveries: deliveries,
			Informed:   hashIDs(informed),
		})
	}
	return trace
}

// goldenCase is one fixed-seed experiment family: the scalar/bitset
// configuration plus, when the protocol has a lane lowering, the
// equivalent LaneSpec for the trial-parallel core.
type goldenCase struct {
	cfg   *sim.Config
	lanes *sim.LaneSpec
}

// goldenCases builds one representative fixed-seed configuration per
// experiment family (message passing and radio, each fault type, plus the
// randomized Decay baseline so the per-node RNG streams are covered).
func goldenCases(t *testing.T) map[string]goldenCase {
	t.Helper()
	cases := map[string]goldenCase{}
	laneSpec := func(cfg *sim.Config, corr sim.LaneCorruption, targets [][]int, newKernel func(symbols int) sim.LaneKernel) *sim.LaneSpec {
		return &sim.LaneSpec{
			Graph: cfg.Graph, Model: cfg.Model, Fault: cfg.Fault, P: cfg.P,
			Rounds: cfg.Rounds, Corruption: corr, Targets: targets, NewKernel: newKernel,
		}
	}

	g := graph.Grid(5, 5)
	fl := flooding.New(g, 0)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: fl.NewNode, Rounds: fl.Rounds(6), Seed: 1,
	}
	cases["mp-omission-flooding"] = goldenCase{cfg, laneSpec(cfg, sim.LaneSilence, fl.LaneTargets(), fl.NewLaneKernel)}

	gt := graph.KaryTree(15, 2)
	sm := simplemalicious.New(gt, 0, sim.MessagePassing, 8)
	cfg = &sim.Config{
		Graph: gt, Model: sim.MessagePassing, Fault: sim.Malicious, P: 0.3,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: sm.NewNode, Rounds: sm.Rounds(), Seed: 1,
		Adversary: adversary.Flip{Wrong: []byte("0")},
	}
	cases["mp-malicious-voting"] = goldenCase{cfg, laneSpec(cfg, sim.LaneFlip, sm.LaneTargets(), sm.NewLaneKernel)}

	k2 := graph.TwoNode()
	tn := twonode.New(32)
	cases["mp-limited-timing"] = goldenCase{cfg: &sim.Config{
		Graph: k2, Model: sim.MessagePassing, Fault: sim.LimitedMalicious, P: 0.5,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: tn.NewNode, Rounds: tn.Rounds(), Seed: 1,
		Adversary: adversary.Crash{},
	}}

	gl := graph.Layered(3)
	rr, err := radiorepeat.New(gl, 0, radio.LayeredSchedule(3), radiorepeat.OmissionVariant, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg = &sim.Config{
		Graph: gl, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: rr.NewNode, Rounds: rr.Rounds(), Seed: 1,
	}
	cases["radio-omission-repeat"] = goldenCase{cfg, laneSpec(cfg, sim.LaneSilence, nil, rr.NewLaneKernel)}

	gr := graph.Line(8)
	rm := simplemalicious.New(gr, 0, sim.Radio, 6)
	cfg = &sim.Config{
		Graph: gr, Model: sim.Radio, Fault: sim.Malicious, P: 0.1,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: rm.NewNode, Rounds: rm.Rounds(), Seed: 1,
		Adversary: adversary.Flip{Wrong: []byte("0")},
	}
	cases["radio-malicious-voting"] = goldenCase{cfg, laneSpec(cfg, sim.LaneFlip, nil, rm.NewLaneKernel)}

	gd := graph.Grid(4, 4)
	dc := decay.New(gd)
	cases["radio-omission-decay"] = goldenCase{cfg: &sim.Config{
		Graph: gd, Model: sim.Radio, Fault: sim.Omission, P: 0.3,
		Source: 0, SourceMsg: []byte("1"),
		NewNode: dc.NewNode, Rounds: dc.Rounds(25), Seed: 1,
	}}

	return cases
}

func TestGoldenTraces(t *testing.T) {
	for family, gc := range goldenCases(t) {
		cfg := gc.cfg
		t.Run(family, func(t *testing.T) {
			got := digestRun(t, family, cfg)
			path := filepath.Join("testdata", "golden", family+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d rounds)", path, len(got.Rounds))
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var want goldenTrace
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if got.Graph != want.Graph || got.Seed != want.Seed {
				t.Fatalf("scenario drifted: got %s/%d, golden %s/%d", got.Graph, got.Seed, want.Graph, want.Seed)
			}
			if len(got.Rounds) != len(want.Rounds) {
				t.Fatalf("round count %d, golden %d", len(got.Rounds), len(want.Rounds))
			}
			for r := range got.Rounds {
				if got.Rounds[r] != want.Rounds[r] {
					t.Fatalf("round %d digest diverged:\n  got    %+v\n  golden %+v", r, got.Rounds[r], want.Rounds[r])
				}
			}
		})
	}
}

// TestGoldenTracesCoreInvariant: the golden digests must be identical on
// the scalar reference core — a second, protocol-level witness of the
// differential guarantee on real experiment workloads.
func TestGoldenTracesCoreInvariant(t *testing.T) {
	for family, gc := range goldenCases(t) {
		cfg := gc.cfg
		bit := digestRun(t, family, cfg)
		scalar := *cfg
		scalar.ScalarCore = true
		ref := digestRun(t, family, &scalar)
		if len(bit.Rounds) != len(ref.Rounds) {
			t.Fatalf("%s: round counts diverge across cores", family)
		}
		for r := range bit.Rounds {
			if bit.Rounds[r] != ref.Rounds[r] {
				t.Fatalf("%s: round %d diverges across cores:\n  bitset %+v\n  scalar %+v",
					family, r, bit.Rounds[r], ref.Rounds[r])
			}
		}
	}
}

// TestGoldenTracesLaneCore extends the core-invariance witness to the
// lane-transposed engine on the golden experiment families that have a
// lane lowering (the real protocol kernels, not the synthetic test ones):
// a 64-trial lane block over the golden seed must reproduce, bit for bit,
// the scalar reference engine's per-trial success verdicts.
func TestGoldenTracesLaneCore(t *testing.T) {
	covered := 0
	for family, gc := range goldenCases(t) {
		if gc.lanes == nil {
			continue
		}
		covered++
		lr, err := sim.NewLaneRunner(gc.lanes)
		if err != nil {
			t.Fatalf("%s: NewLaneRunner: %v", family, err)
		}
		scalar := *gc.cfg
		scalar.ScalarCore = true
		runner, err := sim.NewRunner(&scalar)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", family, err)
		}
		got := lr.Run(gc.cfg.Seed, sim.LaneWidth)
		var want uint64
		for lane := 0; lane < sim.LaneWidth; lane++ {
			res, err := runner.Run(gc.cfg.Seed + uint64(lane))
			if err != nil {
				t.Fatalf("%s: scalar trial %d: %v", family, lane, err)
			}
			if res.Success {
				want |= 1 << uint(lane)
			}
		}
		if got != want {
			t.Fatalf("%s: lane verdicts %016x != scalar %016x (xor %016x)", family, got, want, got^want)
		}
	}
	if covered < 4 {
		t.Fatalf("only %d golden families carry a lane spec; expected 4", covered)
	}
}

package sim

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// floodNode is a minimal message-passing protocol used by engine tests:
// the source knows the message from the start; every node that knows it
// broadcasts it to all neighbors every round.
type floodNode struct {
	env *Env
	msg []byte
}

func (f *floodNode) Init(env *Env) {
	f.env = env
	if env.IsSource() {
		f.msg = env.SourceMsg
	}
}

func (f *floodNode) Transmit(round int) []Transmission {
	if f.msg == nil {
		return nil
	}
	return []Transmission{{To: Broadcast, Payload: f.msg}}
}

func (f *floodNode) Deliver(round, from int, payload []byte) {
	if f.msg == nil {
		f.msg = append([]byte(nil), payload...)
	}
}

func (f *floodNode) Output() []byte { return f.msg }

// scheduleNode transmits its payload exactly in the rounds listed in its
// schedule — a deterministic radio test fixture.
type scheduleNode struct {
	env     *Env
	rounds  map[int][]byte
	heard   []Received
	output  []byte
	adopted bool
}

func (s *scheduleNode) Init(env *Env) {
	s.env = env
	if env.IsSource() {
		s.output = env.SourceMsg
	}
}

func (s *scheduleNode) Transmit(round int) []Transmission {
	if p, ok := s.rounds[round]; ok {
		return []Transmission{{To: Broadcast, Payload: p}}
	}
	return nil
}

func (s *scheduleNode) Deliver(round, from int, payload []byte) {
	s.heard = append(s.heard, Received{From: from, Payload: append([]byte(nil), payload...)})
	if !s.adopted {
		s.output = append([]byte(nil), payload...)
		s.adopted = true
	}
}

func (s *scheduleNode) Output() []byte { return s.output }

func floodConfig(g *graph.Graph, rounds int) *Config {
	return &Config{
		Graph:     g,
		Model:     MessagePassing,
		Fault:     NoFaults,
		Source:    0,
		SourceMsg: []byte("M"),
		NewNode:   func(id int) Node { return &floodNode{} },
		Rounds:    rounds,
		Seed:      1,
	}
}

func TestValidateErrors(t *testing.T) {
	g := graph.Line(3)
	base := func() *Config { return floodConfig(g, 5) }
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"bad source", func(c *Config) { c.Source = 9 }},
		{"negative source", func(c *Config) { c.Source = -1 }},
		{"empty message", func(c *Config) { c.SourceMsg = nil }},
		{"nil factory", func(c *Config) { c.NewNode = nil }},
		{"negative rounds", func(c *Config) { c.Rounds = -1 }},
		{"bad model", func(c *Config) { c.Model = Model(9) }},
		{"bad fault", func(c *Config) { c.Fault = FaultType(9) }},
		{"p too big", func(c *Config) { c.Fault = Omission; c.P = 1.0 }},
		{"p negative", func(c *Config) { c.Fault = Omission; c.P = -0.1 }},
		{"malicious without adversary", func(c *Config) { c.Fault = Malicious; c.P = 0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("expected validation error")
			}
		})
	}
}

func TestFaultFreeFloodSucceeds(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Line(10), graph.Star(8), graph.Grid(4, 5), graph.Hypercube(4)} {
		cfg := floodConfig(g, g.Radius(0)+1)
		cfg.TrackCompletion = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("%v: fault-free flood failed at node %d", g, res.FirstFailed)
		}
		if res.CompletedRound != g.Radius(0)-1 {
			// Flood informs distance-d nodes at the end of round d-1
			// (0-indexed): the source's round-0 broadcast reaches distance 1.
			t.Fatalf("%v: completed at round %d, want %d", g, res.CompletedRound, g.Radius(0)-1)
		}
	}
}

func TestFloodTooFewRoundsFails(t *testing.T) {
	g := graph.Line(10)
	res, err := Run(floodConfig(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("flood on line(10) cannot finish in 3 rounds")
	}
	if res.FirstFailed == -1 {
		t.Fatal("FirstFailed not set on failure")
	}
	if res.CompletedRound != -1 {
		t.Fatalf("CompletedRound = %d on failure, want -1", res.CompletedRound)
	}
}

func TestDirectedMessagePassing(t *testing.T) {
	// Node 0 sends distinct payloads to each neighbor in one round;
	// verify each neighbor receives exactly its own.
	g := graph.Star(4)
	type record struct{ got [][]byte }
	recs := make([]record, 4)
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: NoFaults,
		Source: 0, SourceMsg: []byte("M"), Rounds: 1, Seed: 1,
		NewNode: func(id int) Node {
			return &funcNode{
				transmit: func(round int) []Transmission {
					if id != 0 {
						return nil
					}
					return []Transmission{
						{To: 1, Payload: []byte("a")},
						{To: 2, Payload: []byte("b")},
						{To: 3, Payload: []byte("c")},
					}
				},
				deliver: func(round, from int, payload []byte) {
					recs[id].got = append(recs[id].got, append([]byte(nil), payload...))
				},
				output: func() []byte { return []byte("M") },
			}
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	want := map[int]string{1: "a", 2: "b", 3: "c"}
	for id, w := range want {
		if len(recs[id].got) != 1 || string(recs[id].got[0]) != w {
			t.Fatalf("node %d received %q, want [%q]", id, recs[id].got, w)
		}
	}
	if len(recs[0].got) != 0 {
		t.Fatalf("sender received %q", recs[0].got)
	}
}

// funcNode adapts closures to the Node interface for tests.
type funcNode struct {
	transmit func(round int) []Transmission
	deliver  func(round, from int, payload []byte)
	output   func() []byte
}

func (f *funcNode) Init(*Env) {}
func (f *funcNode) Transmit(round int) []Transmission {
	if f.transmit == nil {
		return nil
	}
	return f.transmit(round)
}
func (f *funcNode) Deliver(round, from int, payload []byte) {
	if f.deliver != nil {
		f.deliver(round, from, payload)
	}
}
func (f *funcNode) Output() []byte {
	if f.output == nil {
		return nil
	}
	return f.output()
}

func TestRadioCollisionRule(t *testing.T) {
	// Path 1-0-2 plus 3 attached to 0: when 1 and 2 transmit in the same
	// round, 0 hears nothing (collision); 3 hears nothing (its only
	// neighbor 0 is silent). When only 1 transmits, 0 hears it.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build("claw")

	schedules := map[int]map[int][]byte{
		1: {0: []byte("x"), 1: []byte("x")},
		2: {0: []byte("y")},
	}
	nodes := make([]*scheduleNode, 4)
	cfg := &Config{
		Graph: g, Model: Radio, Fault: NoFaults,
		Source: 1, SourceMsg: []byte("x"), Rounds: 2, Seed: 1,
		NewNode: func(id int) Node {
			n := &scheduleNode{rounds: schedules[id]}
			nodes[id] = n
			return n
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes[0].heard) != 1 || string(nodes[0].heard[0].Payload) != "x" || nodes[0].heard[0].From != 1 {
		t.Fatalf("hub heard %v; want exactly round-1 x from node 1", nodes[0].heard)
	}
	if res.Stats.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", res.Stats.Collisions)
	}
	if len(nodes[3].heard) != 0 {
		t.Fatalf("leaf 3 heard %v, want nothing", nodes[3].heard)
	}
}

func TestRadioTransmitterHearsNothing(t *testing.T) {
	// On K2, if both transmit simultaneously neither hears; if only node 0
	// transmits, node 1 hears.
	g := graph.TwoNode()
	nodes := make([]*scheduleNode, 2)
	schedules := map[int]map[int][]byte{
		0: {0: []byte("a"), 1: []byte("a")},
		1: {0: []byte("b")},
	}
	cfg := &Config{
		Graph: g, Model: Radio, Fault: NoFaults,
		Source: 0, SourceMsg: []byte("a"), Rounds: 2, Seed: 1,
		NewNode: func(id int) Node {
			n := &scheduleNode{rounds: schedules[id]}
			nodes[id] = n
			return n
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Round 0: both transmit -> nobody hears. Round 1: only 0 transmits ->
	// 1 hears "a".
	if len(nodes[0].heard) != 0 {
		t.Fatalf("node 0 heard %v, want nothing", nodes[0].heard)
	}
	if len(nodes[1].heard) != 1 || string(nodes[1].heard[0].Payload) != "a" {
		t.Fatalf("node 1 heard %v, want one 'a'", nodes[1].heard)
	}
}

func TestRadioRejectsDirectedAndMultiple(t *testing.T) {
	g := graph.TwoNode()
	mk := func(ts []Transmission) *Config {
		return &Config{
			Graph: g, Model: Radio, Fault: NoFaults,
			Source: 0, SourceMsg: []byte("m"), Rounds: 1, Seed: 1,
			NewNode: func(id int) Node {
				return &funcNode{transmit: func(int) []Transmission {
					if id == 0 {
						return ts
					}
					return nil
				}}
			},
		}
	}
	if _, err := Run(mk([]Transmission{{To: 1, Payload: []byte("x")}})); err == nil {
		t.Fatal("directed radio transmission accepted")
	}
	if _, err := Run(mk([]Transmission{
		{To: Broadcast, Payload: []byte("x")},
		{To: Broadcast, Payload: []byte("y")},
	})); err == nil {
		t.Fatal("double radio transmission accepted")
	}
}

func TestRejectsNilPayloadAndNonNeighbor(t *testing.T) {
	g := graph.Line(3)
	mk := func(ts []Transmission) *Config {
		return &Config{
			Graph: g, Model: MessagePassing, Fault: NoFaults,
			Source: 0, SourceMsg: []byte("m"), Rounds: 1, Seed: 1,
			NewNode: func(id int) Node {
				return &funcNode{transmit: func(int) []Transmission {
					if id == 0 {
						return ts
					}
					return nil
				}}
			},
		}
	}
	if _, err := Run(mk([]Transmission{{To: 1, Payload: nil}})); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := Run(mk([]Transmission{{To: 2, Payload: []byte("x")}})); err == nil {
		t.Fatal("non-neighbor target accepted")
	}
}

func TestOmissionFaultsSilence(t *testing.T) {
	// With p close to 1 on a 2-node graph, the source is usually silenced:
	// count deliveries over many rounds and compare to expectation.
	g := graph.TwoNode()
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: Omission, P: 0.75,
		Source: 0, SourceMsg: []byte("m"), Rounds: 4000, Seed: 42,
		NewNode: func(id int) Node { return &floodNode{} },
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("with 4000 rounds at p=0.75 the flood should still succeed")
	}
	// Node 0 transmits every round; it is silenced with probability 0.75.
	// Node 1 starts transmitting after it first hears. Faults ~ Bin(2*4000-k, .75).
	if res.Stats.Faults < 4000 || res.Stats.Faults > 8000 {
		t.Fatalf("fault count %d implausible for p=0.75", res.Stats.Faults)
	}
	if res.Stats.Deliveries >= 2*4000 {
		t.Fatal("omission faults did not suppress any deliveries")
	}
}

func TestZeroProbabilityOmissionIsFaultFree(t *testing.T) {
	g := graph.Line(6)
	cfg := floodConfig(g, 6)
	cfg.Fault = Omission
	cfg.P = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Stats.Faults != 0 {
		t.Fatalf("p=0 run: success=%v faults=%d", res.Success, res.Stats.Faults)
	}
}

// silencerAdversary silences every faulty node (equivalent to omission) —
// used to exercise the malicious plumbing deterministically.
type silencerAdversary struct{}

func (silencerAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		out[id] = nil
	}
	return out
}

// outOfTurnAdversary makes every faulty node shout "EVIL" to all neighbors.
type outOfTurnAdversary struct{}

func (outOfTurnAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		out[id] = []Transmission{{To: Broadcast, Payload: []byte("EVIL")}}
	}
	return out
}

// overreachAdversary tries to corrupt node 0 even when healthy.
type overreachAdversary struct{}

func (overreachAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	return map[int][]Transmission{0: nil}
}

func TestMaliciousAdversaryDrivesFaultyNodes(t *testing.T) {
	g := graph.TwoNode()
	heard := 0
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: Malicious, P: 0.5,
		Source: 0, SourceMsg: []byte("m"), Rounds: 2000, Seed: 7,
		Adversary: outOfTurnAdversary{},
		NewNode: func(id int) Node {
			return &funcNode{
				deliver: func(round, from int, payload []byte) {
					if id == 1 && string(payload) == "EVIL" {
						heard++
					}
				},
			}
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if heard == 0 {
		t.Fatal("adversary transmissions never delivered")
	}
	// Node 1 hears EVIL whenever node 0 is faulty (p=0.5 of 2000 rounds).
	if heard < 800 || heard > 1200 {
		t.Fatalf("EVIL count %d implausible for p=0.5", heard)
	}
	_ = res
}

func TestAdversaryCannotTouchHealthyNodes(t *testing.T) {
	g := graph.TwoNode()
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: Malicious, P: 0.9,
		Source: 0, SourceMsg: []byte("m"), Rounds: 200, Seed: 7,
		Adversary: overreachAdversary{},
		NewNode:   func(id int) Node { return &floodNode{} },
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("corrupting a healthy node should be rejected")
	}
}

func TestLimitedMaliciousCannotSpeakOutOfTurn(t *testing.T) {
	g := graph.TwoNode()
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: LimitedMalicious, P: 0.9,
		Source: 0, SourceMsg: []byte("m"), Rounds: 500, Seed: 7,
		Adversary: outOfTurnAdversary{},
		NewNode: func(id int) Node {
			return &funcNode{} // everyone silent: adversary must stay silent too
		},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("limited-malicious adversary spoke out of turn without rejection")
	}
}

func TestLimitedMaliciousCanAlterAndDrop(t *testing.T) {
	// Node 0 intends one broadcast per round; a payload-flipping adversary
	// is legal under LimitedMalicious.
	g := graph.TwoNode()
	flips := 0
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: LimitedMalicious, P: 0.5,
		Source: 0, SourceMsg: []byte("m"), Rounds: 1000, Seed: 11,
		Adversary: flipAdversary{},
		NewNode: func(id int) Node {
			return &funcNode{
				transmit: func(round int) []Transmission {
					if id == 0 {
						return []Transmission{{To: Broadcast, Payload: []byte("good")}}
					}
					return nil
				},
				deliver: func(round, from int, payload []byte) {
					if string(payload) == "bad" {
						flips++
					}
				},
			}
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if flips == 0 {
		t.Fatal("payload alteration never observed")
	}
}

// flipAdversary rewrites every intended payload to "bad".
type flipAdversary struct{}

func (flipAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		var ts []Transmission
		for _, intent := range e.Intents[id] {
			ts = append(ts, Transmission{To: intent.To, Payload: []byte("bad")})
		}
		out[id] = ts
	}
	return out
}

func TestCheckLimited(t *testing.T) {
	intent := []Transmission{{To: 1, Payload: []byte("a")}, {To: 2, Payload: []byte("b")}}
	if err := checkLimited(intent, nil); err != nil {
		t.Fatalf("dropping everything should be legal: %v", err)
	}
	if err := checkLimited(intent, []Transmission{{To: 1, Payload: []byte("z")}}); err != nil {
		t.Fatalf("altering one should be legal: %v", err)
	}
	if err := checkLimited(intent, []Transmission{{To: 3, Payload: []byte("z")}}); err == nil {
		t.Fatal("new destination should be illegal")
	}
	if err := checkLimited(intent, []Transmission{
		{To: 1, Payload: []byte("z")}, {To: 1, Payload: []byte("w")},
	}); err == nil {
		t.Fatal("duplicating a slot should be illegal")
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func() *Result {
		cfg := floodConfig(g, 30)
		cfg.Fault = Omission
		cfg.P = 0.4
		cfg.Seed = 99
		cfg.RecordHistory = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Success != b.Success || a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	for r := range a.History.Rounds {
		fa, fb := a.History.Rounds[r].Faulty, b.History.Rounds[r].Faulty
		if len(fa) != len(fb) {
			t.Fatalf("round %d fault sets differ", r)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("round %d fault sets differ", r)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := graph.Grid(4, 4)
	mk := func(seed uint64) *Result {
		cfg := floodConfig(g, 30)
		cfg.Fault = Omission
		cfg.P = 0.4
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(1), mk(2)
	if a.Stats.Faults == b.Stats.Faults && a.Stats.Deliveries == b.Stats.Deliveries {
		t.Log("warning: two seeds coincided on fault and delivery counts (possible but unlikely)")
	}
}

func TestObserverInvokedEveryRound(t *testing.T) {
	g := graph.Line(4)
	var rounds []int
	cfg := floodConfig(g, 7)
	cfg.Observer = func(r *RoundRecord) { rounds = append(rounds, r.Round) }
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 7 {
		t.Fatalf("observer saw %d rounds, want 7", len(rounds))
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("observer rounds out of order: %v", rounds)
		}
	}
}

func TestHistoryRecordsDeliveries(t *testing.T) {
	g := graph.Line(3)
	cfg := floodConfig(g, 3)
	cfg.RecordHistory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History == nil || len(res.History.Rounds) != 3 {
		t.Fatal("history missing")
	}
	// In round 0 node 1 hears M from 0.
	d := res.History.Rounds[0].Delivered[1]
	if len(d) != 1 || d[0].From != 0 || !bytes.Equal(d[0].Payload, []byte("M")) {
		t.Fatalf("round 0 deliveries to node 1: %v", d)
	}
	got := res.History.DeliveredTo(2)
	if len(got) == 0 || got[0].From != 1 {
		t.Fatalf("DeliveredTo(2) = %v", got)
	}
}

// TestEnginesEquivalent is the cross-engine determinism property: for
// random graphs, fault rates, and seeds, the sequential and concurrent
// engines produce identical results and histories.
func TestEnginesEquivalent(t *testing.T) {
	check := func(seed uint32, pRaw uint8, faultRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(30)
		g := graph.GNP(n, 0.15, r)
		fault := []FaultType{NoFaults, Omission, Malicious, LimitedMalicious}[int(faultRaw)%4]
		cfg := &Config{
			Graph: g, Model: MessagePassing, Fault: fault,
			P:      float64(pRaw%90) / 100,
			Source: r.Intn(n), SourceMsg: []byte("msg"),
			NewNode: func(id int) Node { return &floodNode{} },
			Rounds:  20, Seed: uint64(seed) * 31,
			RecordHistory: true, TrackCompletion: true,
		}
		if fault == Malicious || fault == LimitedMalicious {
			cfg.Adversary = silencerAdversary{}
		}
		a, err := Run(cfg)
		if err != nil {
			t.Logf("seq error: %v", err)
			return false
		}
		b, err := RunConcurrent(cfg)
		if err != nil {
			t.Logf("conc error: %v", err)
			return false
		}
		if a.Success != b.Success || a.Stats != b.Stats || a.CompletedRound != b.CompletedRound {
			t.Logf("results diverge: %+v vs %+v", a, b)
			return false
		}
		for id := range a.Outputs {
			if !bytes.Equal(a.Outputs[id], b.Outputs[id]) {
				t.Logf("output %d diverges", id)
				return false
			}
		}
		for r := range a.History.Rounds {
			ra, rb := &a.History.Rounds[r], &b.History.Rounds[r]
			if fmt.Sprint(ra.Faulty) != fmt.Sprint(rb.Faulty) {
				t.Logf("round %d faulty diverges", r)
				return false
			}
			if fmt.Sprint(ra.Delivered) != fmt.Sprint(rb.Delivered) {
				t.Logf("round %d deliveries diverge", r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRadio(t *testing.T) {
	// Radio semantics on the concurrent engine: simple one-at-a-time relay
	// along a line succeeds.
	g := graph.Line(5)
	schedules := make(map[int]map[int][]byte)
	for i := 0; i < 4; i++ {
		schedules[i] = map[int][]byte{i: []byte("m")}
	}
	cfg := &Config{
		Graph: g, Model: Radio, Fault: NoFaults,
		Source: 0, SourceMsg: []byte("m"), Rounds: 5, Seed: 3,
		NewNode: func(id int) Node { return &scheduleNode{rounds: schedules[id]} },
	}
	res, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("concurrent radio relay failed at node %d", res.FirstFailed)
	}
}

func TestConcurrentPropagatesNodeErrors(t *testing.T) {
	g := graph.TwoNode()
	cfg := &Config{
		Graph: g, Model: Radio, Fault: NoFaults,
		Source: 0, SourceMsg: []byte("m"), Rounds: 1, Seed: 1,
		NewNode: func(id int) Node {
			return &funcNode{transmit: func(int) []Transmission {
				return []Transmission{{To: 1, Payload: []byte("x")}} // illegal in radio
			}}
		},
	}
	if _, err := RunConcurrent(cfg); err == nil {
		t.Fatal("concurrent engine swallowed a validation error")
	}
}

func TestTrackCompletionOffByDefault(t *testing.T) {
	g := graph.Line(4)
	res, err := Run(floodConfig(g, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("flood failed")
	}
	// Without tracking, CompletedRound reports the horizon end.
	if res.CompletedRound != 9 {
		t.Fatalf("CompletedRound = %d, want 9 (horizon)", res.CompletedRound)
	}
}

func BenchmarkSequentialFlood(b *testing.B) {
	g := graph.Grid(16, 16)
	cfg := floodConfig(g, 40)
	cfg.Fault = Omission
	cfg.P = 0.3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentFlood(b *testing.B) {
	g := graph.Grid(16, 16)
	cfg := floodConfig(g, 40)
	cfg.Fault = Omission
	cfg.P = 0.3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := RunConcurrent(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

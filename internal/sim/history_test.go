package sim

import (
	"bytes"
	"testing"

	"faultcast/internal/graph"
)

// echoAdversary is an adaptive, history-driven adversary: whenever a node
// is faulty, it replays the last message that was DELIVERED to the
// receiver (an adversary of the "knows the whole execution" kind the
// model permits). It exists to pin the Exec.History contract: the history
// visible during round t contains exactly rounds 0..t-1.
type echoAdversary struct {
	t          *testing.T
	seenRounds []int
}

func (a *echoAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	if e.History == nil {
		a.t.Error("adversary ran without history despite RecordHistory")
		return nil
	}
	if got := len(e.History.Rounds); got != e.Round {
		a.t.Errorf("round %d: history holds %d rounds, want %d", e.Round, got, e.Round)
	}
	a.seenRounds = append(a.seenRounds, e.Round)
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		past := e.History.DeliveredTo(1)
		if len(past) == 0 || len(e.Intents[id]) == 0 {
			out[id] = nil
			continue
		}
		replay := past[len(past)-1].Payload
		ts := make([]Transmission, 0, len(e.Intents[id]))
		for _, intent := range e.Intents[id] {
			ts = append(ts, Transmission{To: intent.To, Payload: replay})
		}
		out[id] = ts
	}
	return out
}

func TestAdaptiveAdversarySeesHistory(t *testing.T) {
	g := graph.TwoNode()
	adv := &echoAdversary{t: t}
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: Malicious, P: 0.5,
		Source: 0, SourceMsg: []byte("m"),
		NewNode: func(id int) Node { return &floodNode{} },
		Rounds:  50, Seed: 13,
		Adversary:     adv,
		RecordHistory: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.seenRounds) == 0 {
		t.Fatal("adversary never invoked at p=0.5 over 50 rounds")
	}
	// History in the result covers the whole run.
	if len(res.History.Rounds) != 50 {
		t.Fatalf("final history has %d rounds", len(res.History.Rounds))
	}
}

func TestHistoryRequiresOptIn(t *testing.T) {
	// Without RecordHistory the adversary's Exec.History must be nil, and
	// the result carries no history.
	g := graph.TwoNode()
	sawNil := false
	cfg := &Config{
		Graph: g, Model: MessagePassing, Fault: Malicious, P: 0.5,
		Source: 0, SourceMsg: []byte("m"),
		NewNode: func(id int) Node { return &floodNode{} },
		Rounds:  30, Seed: 3,
		Adversary: adversaryFunc(func(e *Exec, faulty []int) map[int][]Transmission {
			if e.History == nil {
				sawNil = true
			}
			return nil
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sawNil {
		t.Fatal("adversary never ran or saw non-nil history")
	}
	if res.History != nil {
		t.Fatal("result carries history without RecordHistory")
	}
}

// adversaryFunc adapts a closure to the Adversary interface.
type adversaryFunc func(e *Exec, faulty []int) map[int][]Transmission

func (f adversaryFunc) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	return f(e, faulty)
}

func TestInformedRoundTracking(t *testing.T) {
	g := graph.Line(5)
	cfg := floodConfig(g, 10)
	cfg.TrackCompletion = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InformedRound) != 5 {
		t.Fatalf("InformedRound has %d entries", len(res.InformedRound))
	}
	// Fault-free flood on a line: node i informed at the end of round i-1;
	// the source counts as informed at round 0 (the first tracked scan).
	for v := 1; v < 5; v++ {
		if res.InformedRound[v] != v-1 {
			t.Fatalf("node %d informed at round %d, want %d", v, res.InformedRound[v], v-1)
		}
	}
	if res.InformedRound[0] != 0 {
		t.Fatalf("source informed-round = %d, want 0", res.InformedRound[0])
	}
}

func TestInformedRoundNilWithoutTracking(t *testing.T) {
	g := graph.Line(3)
	res, err := Run(floodConfig(g, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedRound != nil {
		t.Fatal("InformedRound populated without TrackCompletion")
	}
}

func TestHistoryFaultCount(t *testing.T) {
	g := graph.TwoNode()
	cfg := floodConfig(g, 100)
	cfg.Fault = Omission
	cfg.P = 0.5
	cfg.RecordHistory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.History.FaultCount(); got != res.Stats.Faults {
		t.Fatalf("history fault count %d != stats %d", got, res.Stats.Faults)
	}
	if res.Stats.Faults < 60 || res.Stats.Faults > 140 {
		t.Fatalf("fault count %d implausible for 2 nodes x 100 rounds at p=0.5", res.Stats.Faults)
	}
}

func TestOutputsMatchSuccess(t *testing.T) {
	g := graph.Line(4)
	res, err := Run(floodConfig(g, 6))
	if err != nil {
		t.Fatal(err)
	}
	for id, out := range res.Outputs {
		if !bytes.Equal(out, []byte("M")) {
			t.Fatalf("node %d output %q", id, out)
		}
	}
}

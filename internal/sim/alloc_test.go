package sim

import (
	"testing"

	"faultcast/internal/graph"
)

// steadyNode transmits a preallocated broadcast every round and ignores
// deliveries — the allocation-free protocol used to isolate the engine's
// own per-round cost.
type steadyNode struct {
	ts  []Transmission
	out []byte
}

func (s *steadyNode) Init(env *Env) {
	s.out = env.SourceMsg
	if s.out == nil {
		s.out = []byte("x")
	}
	s.ts = []Transmission{{To: Broadcast, Payload: s.out}}
}
func (s *steadyNode) Transmit(round int) []Transmission { return s.ts }
func (s *steadyNode) Deliver(round, from int, p []byte) {}
func (s *steadyNode) Output() []byte                    { return s.out }

// TestOmissionFastPathZeroAlloc: after warm-up, a full engine round on the
// omission fast path (fault mask sampling, mask-intersection silencing,
// bitset delivery, node callbacks) must perform zero allocations, in both
// models. This pins the tentpole's allocation win: per-round cost is pure
// computation once the reused buffers reach steady state.
func TestOmissionFastPathZeroAlloc(t *testing.T) {
	for _, model := range []Model{MessagePassing, Radio} {
		cfg := &Config{
			Graph: graph.Grid(8, 8), Model: model, Fault: Omission, P: 0.4,
			Source: 0, SourceMsg: []byte("m"),
			NewNode: func(int) Node { return &steadyNode{} },
			Rounds:  1, Seed: 1,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		st := allocRunState(cfg)
		if err := st.Reset(7); err != nil {
			t.Fatal(err)
		}
		round := 0
		var roundErr error
		oneRound := func() {
			if err := st.transmitPhase(round); err != nil {
				roundErr = err
				return
			}
			if err := st.faultAndDeliver(round); err != nil {
				roundErr = err
				return
			}
			st.deliverPhase(round)
			st.finishRound(round)
			round++
		}
		// Warm up: grow the delivery and talker buffers (and the graph's
		// lazily built adjacency rows) to steady state.
		for i := 0; i < 50; i++ {
			oneRound()
		}
		if roundErr != nil {
			t.Fatal(roundErr)
		}
		if allocs := testing.AllocsPerRun(200, oneRound); allocs != 0 {
			t.Fatalf("%v: omission fast path allocates %.1f/round at steady state, want 0", model, allocs)
		}
		if roundErr != nil {
			t.Fatal(roundErr)
		}
	}
}

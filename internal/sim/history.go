package sim

// Received is one delivered message as seen by a receiver.
type Received struct {
	From    int
	Payload []byte
}

// RoundRecord captures everything that happened in one round. The engine
// appends one per round when Config.RecordHistory is set and also passes it
// to Config.Observer.
type RoundRecord struct {
	Round  int
	Faulty []int // ids whose transmitter failed this round, increasing
	// Actual holds the post-fault transmissions per node id. For
	// non-faulty nodes it aliases the intent; treat as read-only.
	Actual [][]Transmission
	// Delivered holds the messages each node received this round, in the
	// order they were delivered (increasing sender id).
	Delivered [][]Received
	// Collisions counts radio receivers that had two or more transmitting
	// neighbors this round (always 0 for message passing).
	Collisions int
}

// History is the sequence of per-round records of an execution.
type History struct {
	Rounds []RoundRecord
}

// DeliveredTo returns, flattened across all recorded rounds, the messages
// delivered to node v in order. The equivocating adversary uses this as
// the σ of the Theorem 2.3/2.4 proofs (the sequence of messages actually
// delivered to the receiver).
func (h *History) DeliveredTo(v int) []Received {
	var out []Received
	for i := range h.Rounds {
		out = append(out, h.Rounds[i].Delivered[v]...)
	}
	return out
}

// FaultCount returns the total number of (node, round) transmitter faults.
func (h *History) FaultCount() int {
	n := 0
	for i := range h.Rounds {
		n += len(h.Rounds[i].Faulty)
	}
	return n
}

// Stats aggregates an execution for reporting.
type Stats struct {
	Rounds        int
	Faults        int // (node, round) transmitter failures
	Transmissions int // actual post-fault transmissions (Broadcast counts once)
	Deliveries    int // messages handed to Deliver
	Collisions    int // radio collision events (receiver-rounds)
}

// Result summarizes a run.
type Result struct {
	// Success is true iff every node's Output equals the source message at
	// the horizon.
	Success bool
	// FirstFailed is the smallest node id whose output was wrong, or -1 on
	// success.
	FirstFailed int
	// CompletedRound is the first round index after which every node's
	// output was already correct, or -1 if that never happened. It is the
	// measured broadcast time of the execution.
	CompletedRound int
	// InformedRound, populated only when Config.TrackCompletion is set,
	// gives per node the first round index after which its output equaled
	// the source message (-1 = never). It is the raw data behind
	// informing-curve figures.
	InformedRound []int
	Outputs       [][]byte
	Stats         Stats
	// History is non-nil iff Config.RecordHistory.
	History *History
}

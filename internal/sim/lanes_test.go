package sim

import (
	"testing"
)

// This file extends the differential matrix to the lane-transposed core:
// for every generated configuration (the same genCase matrix the
// bitset-vs-scalar and sequential-vs-concurrent tests run on), the lane
// runner's per-trial success verdicts must be bit-identical to the scalar
// reference engine's Result.Success across a full 64-trial block. The test
// protocols (floodNode for message passing, relayNode for radio) are
// re-expressed as lane kernels below, and the generated adversaries map
// onto the three lane corruption modes (silencer → LaneSilence,
// flip → LaneFlip, out-of-turn → LaneShout).

// floodLaneKernel is floodNode in the transposed layout: every informed
// vertex broadcasts its belief each round; an uninformed vertex adopts the
// first payload delivered (whatever it is). has marks informed lanes, isM
// the lanes whose belief equals the source message.
type floodLaneKernel struct {
	source   int
	has, isM []uint64
}

func (k *floodLaneKernel) Reset() {
	for v := range k.has {
		k.has[v], k.isM[v] = 0, 0
	}
	k.has[k.source] = ^uint64(0)
	k.isM[k.source] = ^uint64(0)
}

func (k *floodLaneKernel) Transmit(round int, intent, payM []uint64) {
	for v := range k.has {
		intent[v] = k.has[v]
		payM[v] = k.isM[v]
	}
}

func (k *floodLaneKernel) Absorb(round int, heard, heardM []uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		k.isM[v] |= adopt & heardM[v]
		k.has[v] |= adopt
	}
}

func (k *floodLaneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.isM {
		and &= w
	}
	return and
}

// relayLaneKernel is relayNode in the transposed layout: the TDMA radio
// relay where an informed vertex v transmits its belief in the slots
// round ≡ v (mod n).
type relayLaneKernel struct {
	source   int
	has, isM []uint64
}

func (k *relayLaneKernel) Reset() {
	for v := range k.has {
		k.has[v], k.isM[v] = 0, 0
	}
	k.has[k.source] = ^uint64(0)
	k.isM[k.source] = ^uint64(0)
}

func (k *relayLaneKernel) Transmit(round int, intent, payM []uint64) {
	v := round % len(k.has)
	intent[v] = k.has[v]
	payM[v] = k.isM[v]
}

func (k *relayLaneKernel) Absorb(round int, heard, heardM []uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		k.isM[v] |= adopt & heardM[v]
		k.has[v] |= adopt
	}
}

func (k *relayLaneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.isM {
		and &= w
	}
	return and
}

// laneSpecFor lowers a generated diffCase configuration to a LaneSpec, or
// reports that the case has no lane form (it always does in this matrix).
func laneSpecFor(cfg *Config, advName string) *LaneSpec {
	n := cfg.Graph.N()
	spec := &LaneSpec{
		Graph:  cfg.Graph,
		Model:  cfg.Model,
		Fault:  cfg.Fault,
		P:      cfg.P,
		Rounds: cfg.Rounds,
	}
	switch advName {
	case "silencer":
		spec.Corruption = LaneSilence
	case "flip":
		spec.Corruption = LaneFlip
	case "out-of-turn":
		spec.Corruption = LaneShout
	}
	if cfg.Model == MessagePassing {
		spec.NewKernel = func() LaneKernel {
			return &floodLaneKernel{source: cfg.Source, has: make([]uint64, n), isM: make([]uint64, n)}
		}
	} else {
		spec.NewKernel = func() LaneKernel {
			return &relayLaneKernel{source: cfg.Source, has: make([]uint64, n), isM: make([]uint64, n)}
		}
	}
	return spec
}

// advNameOf recovers the adversary label genCase picked (genCase reports
// it only inside desc, so re-derive it from the concrete type).
func advNameOf(cfg *Config) string {
	switch cfg.Adversary.(type) {
	case silencerAdversary:
		return "silencer"
	case flipAdversary:
		return "flip"
	case outOfTurnAdversary:
		return "out-of-turn"
	default:
		return "none"
	}
}

// TestDifferentialLanesVsScalar: for every generated configuration, a full
// 64-lane trial block agrees, trial for trial, with the scalar reference
// core — including partial-block masking.
func TestDifferentialLanesVsScalar(t *testing.T) {
	for i := 0; i < diffCases; i++ {
		c := genCase(i)
		spec := laneSpecFor(c.cfg, advNameOf(c.cfg))
		lr, err := NewLaneRunner(spec)
		if err != nil {
			t.Fatalf("%s: NewLaneRunner: %v", c.desc, err)
		}

		refCfg := *c.cfg
		refCfg.ScalarCore = true
		refCfg.RecordHistory = false
		refCfg.TrackCompletion = false
		runner, err := NewRunner(&refCfg)
		if err != nil {
			t.Fatalf("%s: NewRunner: %v", c.desc, err)
		}

		base := c.cfg.Seed
		got := lr.Run(base, LaneWidth)
		var want uint64
		for lane := 0; lane < LaneWidth; lane++ {
			res, err := runner.Run(base + uint64(lane))
			if err != nil {
				t.Fatalf("%s: scalar trial %d: %v", c.desc, lane, err)
			}
			if res.Success {
				want |= 1 << uint(lane)
			}
		}
		if got != want {
			t.Fatalf("%s: lane verdicts %016x != scalar %016x (xor %016x)", c.desc, got, want, got^want)
		}

		// Partial blocks mask the tail but never change the low lanes, and
		// a reused runner must reproduce the block bit-identically.
		if partial := lr.Run(base, 7); partial != want&(1<<7-1) {
			t.Fatalf("%s: partial block %016x != masked %016x", c.desc, partial, want&(1<<7-1))
		}
		if again := lr.Run(base, LaneWidth); again != want {
			t.Fatalf("%s: reused lane runner diverged: %016x != %016x", c.desc, again, want)
		}
	}
}

// TestLaneSpecValidate pins the gates that keep unsupported shapes out of
// the lane engine.
func TestLaneSpecValidate(t *testing.T) {
	c := genCase(0)
	ok := laneSpecFor(c.cfg, "silencer")
	mk := func(mutate func(*LaneSpec)) *LaneSpec {
		s := *ok
		mutate(&s)
		return &s
	}
	cases := []struct {
		name string
		spec *LaneSpec
	}{
		{"nil graph", mk(func(s *LaneSpec) { s.Graph = nil })},
		{"nil kernel", mk(func(s *LaneSpec) { s.NewKernel = nil })},
		{"negative rounds", mk(func(s *LaneSpec) { s.Rounds = -1 })},
		{"bad model", mk(func(s *LaneSpec) { s.Model = Model(9) })},
		{"bad fault", mk(func(s *LaneSpec) { s.Fault = FaultType(9) })},
		{"p out of range", mk(func(s *LaneSpec) { s.Fault = Omission; s.P = 1 })},
		{"radio with targets", mk(func(s *LaneSpec) { s.Model = Radio; s.Targets = make([][]int, s.Graph.N()) })},
		{"limited shout", mk(func(s *LaneSpec) { s.Fault = LimitedMalicious; s.Corruption = LaneShout })},
		{"targeted shout", mk(func(s *LaneSpec) {
			s.Model = MessagePassing
			s.Fault = Malicious
			s.Corruption = LaneShout
			s.Targets = make([][]int, s.Graph.N())
		})},
	}
	for _, tc := range cases {
		if _, err := NewLaneRunner(tc.spec); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if _, err := NewLaneRunner(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

package sim

import (
	"fmt"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// This file extends the differential matrix to the lane-transposed core:
// for every generated configuration (the same genCase matrix the
// bitset-vs-scalar and sequential-vs-concurrent tests run on, plus a
// second matrix of drawing adversaries), the lane runner's per-trial
// success verdicts must be bit-identical to the scalar reference engine's
// Result.Success across a full 64-trial block. The test protocols
// (floodNode for message passing, relayNode for radio) are re-expressed
// as lane kernels below, and the adversaries map onto the lane corruption
// modes (silencer → LaneSilence, flip → LaneFlip, out-of-turn →
// LaneShout, noise → LaneNoise, equivocator → LaneEquivocate).

// floodLaneKernel is floodNode in the transposed layout: every informed
// vertex broadcasts its belief each round; an uninformed vertex adopts the
// first payload delivered (whatever it is). has marks informed lanes, the
// bel columns the adopted payload's symbol (bel[0] = "belief is M").
type floodLaneKernel struct {
	source int
	has    []uint64
	bel    [][]uint64
}

func newFloodLaneKernel(source, n, symbols int) *floodLaneKernel {
	k := &floodLaneKernel{source: source, has: make([]uint64, n), bel: make([][]uint64, symbols-1)}
	for c := range k.bel {
		k.bel[c] = make([]uint64, n)
	}
	return k
}

func (k *floodLaneKernel) Reset() {
	for v := range k.has {
		k.has[v] = 0
		for c := range k.bel {
			k.bel[c][v] = 0
		}
	}
	k.has[k.source] = ^uint64(0)
	k.bel[0][k.source] = ^uint64(0)
}

func (k *floodLaneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	for v := range k.has {
		intent[v] = k.has[v]
		for c := range k.bel {
			pay[c][v] = k.bel[c][v]
		}
	}
}

func (k *floodLaneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		for c := range k.bel {
			k.bel[c][v] |= adopt & sym[c][v]
		}
		k.has[v] |= adopt
	}
}

func (k *floodLaneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.bel[0] {
		and &= w
	}
	return and
}

// relayLaneKernel is relayNode in the transposed layout: the TDMA radio
// relay where an informed vertex v transmits its belief in the slots
// round ≡ v (mod n).
type relayLaneKernel struct {
	source int
	has    []uint64
	bel    [][]uint64
}

func newRelayLaneKernel(source, n, symbols int) *relayLaneKernel {
	k := &relayLaneKernel{source: source, has: make([]uint64, n), bel: make([][]uint64, symbols-1)}
	for c := range k.bel {
		k.bel[c] = make([]uint64, n)
	}
	return k
}

func (k *relayLaneKernel) Reset() {
	for v := range k.has {
		k.has[v] = 0
		for c := range k.bel {
			k.bel[c][v] = 0
		}
	}
	k.has[k.source] = ^uint64(0)
	k.bel[0][k.source] = ^uint64(0)
}

func (k *relayLaneKernel) Transmit(round int, intent []uint64, pay [][]uint64) {
	v := round % len(k.has)
	intent[v] = k.has[v]
	for c := range k.bel {
		pay[c][v] = k.bel[c][v]
	}
}

func (k *relayLaneKernel) Absorb(round int, heard []uint64, sym [][]uint64) {
	for v := range k.has {
		adopt := heard[v] &^ k.has[v]
		for c := range k.bel {
			k.bel[c][v] |= adopt & sym[c][v]
		}
		k.has[v] |= adopt
	}
}

func (k *relayLaneKernel) Verdict() uint64 {
	and := ^uint64(0)
	for _, w := range k.bel[0] {
		and &= w
	}
	return and
}

// noiseAdversary mirrors adversary.RandomNoise with the default {"0","1"}
// alphabet: one uniform draw per intended transmission of each faulty
// node, targets kept. (The test redeclares it so the sim package's
// differential harness stays free of the adversary package.)
type noiseAdversary struct{}

func (noiseAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	ab := [][]byte{{'0'}, {'1'}}
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		ts := make([]Transmission, 0, len(e.Intents[id]))
		for _, intent := range e.Intents[id] {
			ts = append(ts, Transmission{To: intent.To, Payload: ab[e.Rand.Intn(len(ab))]})
		}
		out[id] = ts
	}
	return out
}

// equivocatorAdversary mirrors adversary.Equivocator{M0:"0", M1:"1",
// SourceOnly:true}: whenever the source is faulty, its payloads toggle
// between "0" and "1" (others unchanged), except that for P > 1/2 the
// slowing draw skips the swap with probability (P−1/2)/P.
type equivocatorAdversary struct{}

func (equivocatorAdversary) Corrupt(e *Exec, faulty []int) map[int][]Transmission {
	out := make(map[int][]Transmission, len(faulty))
	for _, id := range faulty {
		if id != e.Source {
			continue
		}
		if e.P > 0.5 && e.Rand.Float64() < (e.P-0.5)/e.P {
			continue
		}
		intents := e.Intents[id]
		ts := make([]Transmission, 0, len(intents))
		for _, intent := range intents {
			p := intent.Payload
			switch string(p) {
			case "0":
				p = []byte("1")
			case "1":
				p = []byte("0")
			}
			ts = append(ts, Transmission{To: intent.To, Payload: p})
		}
		out[id] = ts
	}
	return out
}

// laneSpecFor lowers a differential configuration to a LaneSpec. The
// symbol alphabet follows the public layer's rule: two symbols unless the
// noise adversary's "1" falls outside {default, M}.
func laneSpecFor(cfg *Config, advName string) *LaneSpec {
	n := cfg.Graph.N()
	spec := &LaneSpec{
		Graph:  cfg.Graph,
		Model:  cfg.Model,
		Fault:  cfg.Fault,
		P:      cfg.P,
		Rounds: cfg.Rounds,
		Source: cfg.Source,
	}
	symbols := 2
	switch advName {
	case "silencer":
		spec.Corruption = LaneSilence
	case "flip":
		spec.Corruption = LaneFlip
	case "out-of-turn":
		spec.Corruption = LaneShout
	case "noise":
		spec.Corruption = LaneNoise
		if string(cfg.SourceMsg) == "1" {
			spec.NoiseSym = 1
		} else {
			symbols = 3
			spec.NoiseSym = 2
		}
	case "equivocator":
		spec.Corruption = LaneEquivocate
	}
	spec.Symbols = symbols
	if cfg.Model == MessagePassing {
		spec.NewKernel = func(symbols int) LaneKernel {
			return newFloodLaneKernel(cfg.Source, n, symbols)
		}
	} else {
		spec.NewKernel = func(symbols int) LaneKernel {
			return newRelayLaneKernel(cfg.Source, n, symbols)
		}
	}
	return spec
}

// advNameOf recovers the adversary label genCase picked (genCase reports
// it only inside desc, so re-derive it from the concrete type).
func advNameOf(cfg *Config) string {
	switch cfg.Adversary.(type) {
	case silencerAdversary:
		return "silencer"
	case flipAdversary:
		return "flip"
	case outOfTurnAdversary:
		return "out-of-turn"
	case noiseAdversary:
		return "noise"
	case equivocatorAdversary:
		return "equivocator"
	default:
		return "none"
	}
}

// genDrawCase derives configuration i of the drawing-adversary matrix:
// the noise adversary over both the three-symbol (message "diff") and
// two-symbol (message "1") alphabets, and the source-only equivocator on
// bit messages — including p > 1/2, which exercises the slowing draw.
func genDrawCase(i int) diffCase {
	r := rng.New(uint64(i)*0x51ed2701 + 5)
	model := []Model{MessagePassing, Radio}[r.Intn(2)]
	fault := []FaultType{Malicious, LimitedMalicious}[r.Intn(2)]
	p := []float64{0.05, 0.2, 0.4, 0.6, 0.8}[r.Intn(5)]

	var g *graph.Graph
	switch r.Intn(5) {
	case 0:
		g = graph.Line(2 + r.Intn(14))
	case 1:
		g = graph.Star(2 + r.Intn(14))
	case 2:
		g = graph.KaryTree(2+r.Intn(14), 1+r.Intn(3))
	case 3:
		g = graph.Complete(2 + r.Intn(8))
	default:
		g = graph.GNP(2+r.Intn(14), 0.2+0.4*r.Float64(), r)
	}
	n := g.N()

	cfg := &Config{
		Graph:  g,
		Model:  model,
		Fault:  fault,
		P:      p,
		Source: r.Intn(n),
		Rounds: 1 + r.Intn(2*n+4),
		Seed:   uint64(i)*40503 + 7,
	}
	var advName string
	switch r.Intn(3) {
	case 0:
		cfg.Adversary, advName = noiseAdversary{}, "noise"
		cfg.SourceMsg = []byte("diff") // 3 symbols: noise's "1" is a third value
	case 1:
		cfg.Adversary, advName = noiseAdversary{}, "noise"
		cfg.SourceMsg = []byte("1") // 2 symbols: the alphabet is {default, M}
	default:
		cfg.Adversary, advName = equivocatorAdversary{}, "equivocator"
		cfg.SourceMsg = []byte("1")
	}
	if model == MessagePassing {
		cfg.NewNode = func(id int) Node { return &floodNode{} }
	} else {
		cfg.NewNode = func(id int) Node { return &relayNode{} }
	}
	return diffCase{
		desc: fmt.Sprintf("draw case %d: %v/%v/%s msg=%s p=%v g=%v src=%d rounds=%d seed=%d",
			i, model, fault, advName, cfg.SourceMsg, p, g, cfg.Source, cfg.Rounds, cfg.Seed),
		cfg: cfg,
	}
}

const drawCases = 100

// checkLanesVsScalar runs one differential comparison: a full 64-lane
// block against 64 scalar reference trials, plus partial-block masking
// and runner reuse.
func checkLanesVsScalar(t *testing.T, c diffCase) {
	t.Helper()
	spec := laneSpecFor(c.cfg, advNameOf(c.cfg))
	lr, err := NewLaneRunner(spec)
	if err != nil {
		t.Fatalf("%s: NewLaneRunner: %v", c.desc, err)
	}

	refCfg := *c.cfg
	refCfg.ScalarCore = true
	refCfg.RecordHistory = false
	refCfg.TrackCompletion = false
	runner, err := NewRunner(&refCfg)
	if err != nil {
		t.Fatalf("%s: NewRunner: %v", c.desc, err)
	}

	base := c.cfg.Seed
	got := lr.Run(base, LaneWidth)
	var want uint64
	for lane := 0; lane < LaneWidth; lane++ {
		res, err := runner.Run(base + uint64(lane))
		if err != nil {
			t.Fatalf("%s: scalar trial %d: %v", c.desc, lane, err)
		}
		if res.Success {
			want |= 1 << uint(lane)
		}
	}
	if got != want {
		t.Fatalf("%s: lane verdicts %016x != scalar %016x (xor %016x)", c.desc, got, want, got^want)
	}

	// Partial blocks mask the tail but never change the low lanes, and
	// a reused runner must reproduce the block bit-identically.
	if partial := lr.Run(base, 7); partial != want&(1<<7-1) {
		t.Fatalf("%s: partial block %016x != masked %016x", c.desc, partial, want&(1<<7-1))
	}
	if again := lr.Run(base, LaneWidth); again != want {
		t.Fatalf("%s: reused lane runner diverged: %016x != %016x", c.desc, again, want)
	}
}

// TestDifferentialLanesVsScalar: for every generated configuration, a full
// 64-lane trial block agrees, trial for trial, with the scalar reference
// core — including partial-block masking.
func TestDifferentialLanesVsScalar(t *testing.T) {
	for i := 0; i < diffCases; i++ {
		checkLanesVsScalar(t, genCase(i))
	}
}

// TestDifferentialLanesVsScalarDrawingAdversaries runs the same check over
// the matrix of adversaries that consume randomness (noise over both
// alphabet widths, the slowing equivocator), pinning the lane adversary
// bank's per-lane draw order against the scalar adversary stream.
func TestDifferentialLanesVsScalarDrawingAdversaries(t *testing.T) {
	for i := 0; i < drawCases; i++ {
		checkLanesVsScalar(t, genDrawCase(i))
	}
}

// TestLaneSpecValidate pins the gates that keep unsupported shapes out of
// the lane engine.
func TestLaneSpecValidate(t *testing.T) {
	c := genCase(0)
	ok := laneSpecFor(c.cfg, "silencer")
	mk := func(mutate func(*LaneSpec)) *LaneSpec {
		s := *ok
		mutate(&s)
		return &s
	}
	cases := []struct {
		name string
		spec *LaneSpec
	}{
		{"nil graph", mk(func(s *LaneSpec) { s.Graph = nil })},
		{"nil kernel", mk(func(s *LaneSpec) { s.NewKernel = nil })},
		{"negative rounds", mk(func(s *LaneSpec) { s.Rounds = -1 })},
		{"bad model", mk(func(s *LaneSpec) { s.Model = Model(9) })},
		{"bad fault", mk(func(s *LaneSpec) { s.Fault = FaultType(9) })},
		{"p out of range", mk(func(s *LaneSpec) { s.Fault = Omission; s.P = 1 })},
		{"radio with targets", mk(func(s *LaneSpec) { s.Model = Radio; s.Targets = make([][]int, s.Graph.N()) })},
		{"limited shout", mk(func(s *LaneSpec) { s.Fault = LimitedMalicious; s.Corruption = LaneShout })},
		{"targeted shout", mk(func(s *LaneSpec) {
			s.Model = MessagePassing
			s.Fault = Malicious
			s.Corruption = LaneShout
			s.Targets = make([][]int, s.Graph.N())
		})},
		{"three-symbol shout", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneShout
			s.Symbols = 3
		})},
		{"bad symbol count", mk(func(s *LaneSpec) { s.Symbols = 4 })},
		{"one symbol", mk(func(s *LaneSpec) { s.Symbols = 1 })},
		{"omission noise", mk(func(s *LaneSpec) {
			s.Fault = Omission
			s.Corruption = LaneNoise
			s.NoiseSym = 1
		})},
		{"noise symbol inconsistent (2-sym)", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneNoise
			s.Symbols = 2
			s.NoiseSym = 2
		})},
		{"noise symbol inconsistent (3-sym)", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneNoise
			s.Symbols = 3
			s.NoiseSym = 1
		})},
		{"noise symbol unset", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneNoise
		})},
		{"omission equivocate", mk(func(s *LaneSpec) {
			s.Fault = Omission
			s.Corruption = LaneEquivocate
		})},
		{"equivocate source out of range", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneEquivocate
			s.Source = s.Graph.N()
		})},
		{"three-symbol equivocate", mk(func(s *LaneSpec) {
			s.Fault = Malicious
			s.Corruption = LaneEquivocate
			s.Symbols = 3
		})},
	}
	for _, tc := range cases {
		if _, err := NewLaneRunner(tc.spec); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if _, err := NewLaneRunner(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

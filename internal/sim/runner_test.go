package sim

import (
	"bytes"
	"testing"

	"faultcast/internal/graph"
)

// runnerNode is a minimal flooding-style protocol for runner tests: it
// rebroadcasts the first payload it holds every round.
type runnerNode struct {
	env *Env
	msg []byte
}

func (n *runnerNode) Init(env *Env) {
	n.env = env
	n.msg = nil
	if env.IsSource() {
		n.msg = env.SourceMsg
	}
}

func (n *runnerNode) Transmit(round int) []Transmission {
	if n.msg == nil {
		return nil
	}
	return []Transmission{{To: Broadcast, Payload: n.msg}}
}

func (n *runnerNode) Deliver(round, from int, payload []byte) {
	if n.msg == nil {
		n.msg = append([]byte(nil), payload...)
	}
}

func (n *runnerNode) Output() []byte { return n.msg }

func runnerConfig(model Model) *Config {
	return &Config{
		Graph: graph.Grid(4, 4), Model: model, Fault: Omission, P: 0.4,
		Source: 0, SourceMsg: []byte("m"),
		NewNode:         func(int) Node { return &runnerNode{} },
		Rounds:          40,
		TrackCompletion: true,
	}
}

func resultsEqual(a, b *Result) bool {
	if a.Success != b.Success || a.FirstFailed != b.FirstFailed ||
		a.CompletedRound != b.CompletedRound || a.Stats != b.Stats {
		return false
	}
	if len(a.InformedRound) != len(b.InformedRound) {
		return false
	}
	for i := range a.InformedRound {
		if a.InformedRound[i] != b.InformedRound[i] {
			return false
		}
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if !bytes.Equal(a.Outputs[i], b.Outputs[i]) {
			return false
		}
	}
	return true
}

// TestRunnerMatchesRun: a reused runner must be bit-identical to a fresh
// Run for every seed, in both models, including stats, outputs, and
// per-node informing rounds.
func TestRunnerMatchesRun(t *testing.T) {
	for _, model := range []Model{MessagePassing, Radio} {
		cfg := runnerConfig(model)
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 20; seed++ {
			got, err := r.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			c := *cfg
			c.Seed = seed
			want, err := Run(&c)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("%v seed %d: runner %+v != fresh %+v", model, seed, got, want)
			}
		}
	}
}

// TestRunnerResultsDoNotAlias: a Result returned by one trial must stay
// intact after later trials mutate the reused state.
func TestRunnerResultsDoNotAlias(t *testing.T) {
	cfg := runnerConfig(MessagePassing)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]int(nil), first.InformedRound...)
	outputs := make([][]byte, len(first.Outputs))
	for i, o := range first.Outputs {
		outputs[i] = append([]byte(nil), o...)
	}
	for seed := uint64(2); seed < 12; seed++ {
		if _, err := r.Run(seed); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snapshot {
		if first.InformedRound[i] != snapshot[i] {
			t.Fatalf("InformedRound[%d] mutated by later trials", i)
		}
	}
	for i := range outputs {
		if !bytes.Equal(first.Outputs[i], outputs[i]) {
			t.Fatalf("Outputs[%d] mutated by later trials", i)
		}
	}
}

// TestRunnerHistoryFresh: with RecordHistory, each trial must get its own
// history, not an append onto the previous trial's.
func TestRunnerHistoryFresh(t *testing.T) {
	cfg := runnerConfig(MessagePassing)
	cfg.RecordHistory = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.History == b.History {
		t.Fatal("trials share a History")
	}
	if len(a.History.Rounds) != cfg.Rounds || len(b.History.Rounds) != cfg.Rounds {
		t.Fatalf("history lengths %d/%d, want %d", len(a.History.Rounds), len(b.History.Rounds), cfg.Rounds)
	}
}

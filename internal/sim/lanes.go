package sim

import (
	"errors"
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// This file implements the trial-parallel ("lane-transposed") execution
// core. The bitset core in engine.go is word-parallel across vertices
// within one trial; this core transposes the layout so that bit lane L of
// every word is Monte-Carlo trial baseSeed+L of the same compiled
// scenario, and each word operation advances all 64 trials at once.
//
// The trade that makes the transposition possible: the engine stops
// simulating payload bytes and histories, and tracks only, per (vertex,
// lane), whether the vertex transmits and whether its payload equals the
// source message. That is lossless exactly when the protocol's payload
// universe is two-valued {M, Default} — true for the paper's algorithms
// under the supported fault lowerings (omission silencing; malicious
// adversaries that crash or rewrite payloads to the default) — and the
// public layer only routes a plan here when it has proven that gate
// (see run.go). Everything that needs per-round histories, stats, or
// arbitrary payloads stays on the scalar/bitset reference paths, which
// remain selectable and differentially tested.
//
// Bit-identity contract: lane L of Run(baseSeed, count) equals the scalar
// engine's Result.Success for seed baseSeed+L. It holds because
//   - the per-lane fault stream is seeded exactly like the scalar trial's
//     (rng.New(seed).Uint64() is the fault Split of the trial master) and
//     rng.Lanes draws per lane in the scalar order (n draws per round);
//   - the supported adversaries and protocols never draw from the
//     adversary or node streams, so skipping those Splits is unobservable;
//   - delivery reproduces the scalar rules exactly (first-sender payload
//     for message passing, the seen-once/seen-twice collision rule for
//     radio).
// The differential matrix in lanes_test.go and the public equivalence
// tests pin all of this per trial.

// LaneWidth is the number of trials a lane runner advances per word
// operation: one per bit lane of a uint64.
const LaneWidth = 64

// LaneCorruption selects how the lane engine models what this scenario's
// fault semantics do to a faulty vertex's transmissions — the lane
// counterpart of (FaultType, Adversary) after the public layer has lowered
// the adversary to a payload-free form.
type LaneCorruption int

const (
	// LaneSilence drops the faulty vertex's transmissions (omission
	// failures, and malicious runs under a crashing adversary).
	LaneSilence LaneCorruption = iota
	// LaneFlip keeps the transmissions but rewrites their payloads to a
	// non-source value (adversary.Flip with a wrong value that is not the
	// source message).
	LaneFlip
	// LaneShout makes the faulty vertex broadcast a non-source value
	// regardless of intent (adversary.OutOfTurn). Full-malicious only, and
	// only with broadcast targeting (Targets == nil), since the shout goes
	// to all neighbors.
	LaneShout
)

// LaneKernel is a protocol compiled to the transposed layout. The runner
// drives it once per round: Transmit fills the per-vertex intent and
// payload-is-M words (both pre-zeroed by the runner), the runner applies
// faults and the model's delivery rule, and Absorb consumes the resulting
// per-vertex heard and heard-is-M words. Verdict returns the lanes whose
// trial succeeded (every vertex would output exactly M).
//
// Kernels are stateful per trial block and reset by Reset; they are not
// safe for concurrent use (one kernel per runner, one runner per worker).
type LaneKernel interface {
	Reset()
	Transmit(round int, intent, payloadM []uint64)
	Absorb(round int, heard, heardM []uint64)
	Verdict() uint64
}

// LaneSpec describes a scenario compiled for the lane engine. It mirrors
// the corresponding Config exactly except that the protocol and adversary
// are already lowered: NewKernel builds the transposed protocol, and
// Corruption is the adversary's payload-free form.
type LaneSpec struct {
	Graph *graph.Graph
	Model Model
	Fault FaultType
	// P is the per-step transmitter failure probability in [0, 1).
	P float64
	// Rounds is the horizon, after any Config.Rounds override.
	Rounds int
	// Corruption is the lowered fault semantics (ignored for NoFaults and
	// Omission, which always silence).
	Corruption LaneCorruption
	// Targets, when non-nil, restricts vertex v's transmissions to the
	// listed neighbors (message passing only; the tree-directed sends of
	// the paper's protocols). nil means every transmission is a broadcast
	// to all neighbors.
	Targets [][]int
	// NewKernel builds the transposed protocol instance.
	NewKernel func() LaneKernel
}

// Validate reports specification errors before a runner is built.
func (s *LaneSpec) Validate() error {
	switch {
	case s.Graph == nil:
		return errors.New("sim: LaneSpec.Graph is nil")
	case s.Graph.N() == 0:
		return errors.New("sim: empty graph")
	case s.NewKernel == nil:
		return errors.New("sim: LaneSpec.NewKernel is nil")
	case s.Rounds < 0:
		return fmt.Errorf("sim: negative rounds %d", s.Rounds)
	case s.Model != MessagePassing && s.Model != Radio:
		return fmt.Errorf("sim: unknown model %d", int(s.Model))
	}
	switch s.Fault {
	case NoFaults:
		// p ignored
	case Omission, Malicious, LimitedMalicious:
		if s.P < 0 || s.P >= 1 {
			return fmt.Errorf("sim: failure probability %v outside [0,1)", s.P)
		}
	default:
		return fmt.Errorf("sim: unknown fault type %d", int(s.Fault))
	}
	if s.Model == Radio && s.Targets != nil {
		return errors.New("sim: radio transmissions are broadcasts; LaneSpec.Targets must be nil")
	}
	if s.Corruption == LaneShout {
		if s.Fault == LimitedMalicious {
			return errors.New("sim: limited-malicious cannot speak out of turn (LaneShout)")
		}
		if s.Targets != nil {
			return errors.New("sim: LaneShout broadcasts to all neighbors; LaneSpec.Targets must be nil")
		}
	}
	return nil
}

// LaneRunner executes blocks of up to 64 trials of one LaneSpec, reusing
// all state across blocks (the lane analogue of Runner). Not safe for
// concurrent use: one runner per worker goroutine.
type LaneRunner struct {
	spec   *LaneSpec
	kernel LaneKernel
	nbrs   [][]int // neighbor lists, used for broadcasts and radio

	seeds [rng.LaneCount]uint64
	rnd   rng.Lanes

	// Per-vertex lane words, reused across rounds and blocks.
	intent []uint64 // kernel's intended transmitters
	payM   []uint64 // payload == M, meaningful where transmitting
	act    []uint64 // actual transmitters after fault semantics
	fault  []uint64 // this round's faulty vertices
	heard  []uint64 // lanes where the vertex receives this round
	heardM []uint64 // ... and the received payload is M
	once   []uint64 // radio: covered by >= 1 transmitter
	twice  []uint64 // radio: covered by >= 2 transmitters
	seenM  []uint64 // radio: OR of transmitting neighbors' payload-is-M
}

// NewLaneRunner validates the spec and builds a reusable runner.
func NewLaneRunner(spec *LaneSpec) (*LaneRunner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Graph.N()
	r := &LaneRunner{
		spec:   spec,
		kernel: spec.NewKernel(),
		intent: make([]uint64, n),
		payM:   make([]uint64, n),
		act:    make([]uint64, n),
		fault:  make([]uint64, n),
		heard:  make([]uint64, n),
		heardM: make([]uint64, n),
	}
	if spec.Model == Radio {
		r.once = make([]uint64, n)
		r.twice = make([]uint64, n)
		r.seenM = make([]uint64, n)
	}
	if spec.Model == Radio || spec.Targets == nil {
		r.nbrs = make([][]int, n)
		for v := 0; v < n; v++ {
			r.nbrs[v] = spec.Graph.Neighbors(v, nil)
		}
	}
	return r, nil
}

// Run executes trials baseSeed+0 .. baseSeed+count-1 (count clamped to
// [0, 64]) and returns their success verdicts: bit L of the result is
// trial baseSeed+L's success, bit-identical to the scalar engine's
// Result.Success for that seed. Bits at or above count are zero.
//
// The runner always advances all 64 lanes — a partial block costs the same
// as a full one — and masks the verdict, so callers should claim trials in
// full lane-width chunks whenever the stream allows it.
func (r *LaneRunner) Run(baseSeed uint64, count int) uint64 {
	if count <= 0 {
		return 0
	}
	spec := r.spec
	n := spec.Graph.N()
	for lane := 0; lane < LaneWidth; lane++ {
		// The scalar trial derives its fault stream as master.Split() —
		// rng.New of the master's first output — so lane L's stream seed is
		// that first output for seed baseSeed+L.
		r.seeds[lane] = rng.New(baseSeed + uint64(lane)).Uint64()
	}
	r.rnd.Seed(&r.seeds)
	r.kernel.Reset()
	for round := 0; round < spec.Rounds; round++ {
		for v := 0; v < n; v++ {
			r.intent[v] = 0
			r.payM[v] = 0
		}
		r.kernel.Transmit(round, r.intent, r.payM)

		// Fault semantics. NoFaults draws nothing (matching the scalar
		// engine, which skips sampling entirely); otherwise each vertex
		// draws one Bernoulli per lane per round, in scalar order.
		if spec.Fault == NoFaults {
			copy(r.act, r.intent)
		} else {
			r.rnd.BernoulliWords(spec.P, n, r.fault)
			switch {
			case spec.Fault == Omission || spec.Corruption == LaneSilence:
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v] &^ r.fault[v]
				}
			case spec.Corruption == LaneFlip:
				// Targets unchanged; faulty payloads become non-M. A faulty
				// vertex with no intent stays silent (Flip never adds
				// transmissions), which intent&^... preserves via act=intent.
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v]
					r.payM[v] &^= r.fault[v]
				}
			default: // LaneShout
				// Faulty vertices broadcast a non-M payload regardless of
				// intent (intended payloads are replaced wholesale).
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v] | r.fault[v]
					r.payM[v] &^= r.fault[v]
				}
			}
		}

		if spec.Model == MessagePassing {
			r.deliverMP(n)
		} else {
			r.deliverRadio(n)
		}
		r.kernel.Absorb(round, r.heard, r.heardM)
	}
	v := r.kernel.Verdict()
	if count >= LaneWidth {
		return v
	}
	return v & (1<<uint(count) - 1)
}

// deliverMP is the transposed message-passing rule. heard[u] collects the
// lanes in which u receives at least one message; heardM[u] reports, per
// lane, the payload-is-M bit of the LOWEST-ID transmitting sender — the
// first delivery of the scalar engine's increasing-sender order. The
// paper's protocols either receive from a single sender per round
// (tree-directed traffic) or adopt the first delivery, so the first-sender
// payload is exactly what their kernels need.
func (r *LaneRunner) deliverMP(n int) {
	for u := 0; u < n; u++ {
		r.heard[u] = 0
		r.heardM[u] = 0
	}
	targets := r.spec.Targets
	for w := 0; w < n; w++ {
		a := r.act[w]
		if a == 0 {
			continue
		}
		pm := r.payM[w] & a
		var tos []int
		if targets != nil {
			tos = targets[w]
		} else {
			tos = r.nbrs[w]
		}
		for _, u := range tos {
			r.heardM[u] |= pm &^ r.heard[u]
			r.heard[u] |= a
		}
	}
}

// deliverRadio is the transposed radio collision rule: per lane, a vertex
// hears iff it is silent and exactly one neighbor transmits, in which case
// seenM carries that unique neighbor's payload bit.
func (r *LaneRunner) deliverRadio(n int) {
	for v := 0; v < n; v++ {
		r.once[v] = 0
		r.twice[v] = 0
		r.seenM[v] = 0
	}
	for w := 0; w < n; w++ {
		a := r.act[w]
		if a == 0 {
			continue
		}
		pm := r.payM[w] & a
		for _, u := range r.nbrs[w] {
			r.twice[u] |= r.once[u] & a
			r.once[u] |= a
			r.seenM[u] |= pm
		}
	}
	for v := 0; v < n; v++ {
		h := r.once[v] &^ r.twice[v] &^ r.act[v]
		r.heard[v] = h
		r.heardM[v] = h & r.seenM[v]
	}
}

package sim

import (
	"errors"
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// This file implements the trial-parallel ("lane-transposed") execution
// core. The bitset core in engine.go is word-parallel across vertices
// within one trial; this core transposes the layout so that bit lane L of
// every word is Monte-Carlo trial baseSeed+L of the same compiled
// scenario, and each word operation advances all 64 trials at once.
//
// The trade that makes the transposition possible: the engine stops
// simulating payload bytes and histories, and tracks payloads as k bit
// columns per (vertex, lane) — a lane-sliced encoding of a small, fixed
// symbol alphabet. Symbol 0 is the protocol default ("0"), encoded as all
// columns clear; symbol 1 is the source message M (column 0 set); symbol 2
// is the third payload value some adversaries inject (column 1 set). A
// two-symbol scenario — every payload is M or the default — needs one
// column (k = 1, the original layout); the noise adversary's {"0","1"}
// draws alongside a non-bit message need two (k = 2). The public layer
// computes the alphabet and only routes a plan here when the encoding is
// faithful (see run.go buildLaneSpec); everything needing per-round
// histories, stats, or arbitrary payloads stays on the scalar/bitset
// reference paths, which remain selectable and differentially tested.
//
// Bit-identity contract: lane L of Run(baseSeed, count) equals the scalar
// engine's Result.Success for seed baseSeed+L. It holds because
//   - the per-lane fault stream is seeded exactly like the scalar trial's
//     (rng.New(seed).Uint64() is the fault Split of the trial master) and
//     rng.Lanes draws per lane in the scalar order (n draws per round);
//   - adversaries that draw (RandomNoise's per-transmission alphabet
//     draws, the equivocator's slowing draw) are reproduced on a second
//     per-lane bank seeded like the scalar trial's adversary Split, with
//     per-lane draw order matching the scalar Corrupt order (faulty ids
//     ascending, intents in emission order); adversaries that never draw
//     skip the bank entirely, which is unobservable because the adversary
//     stream is private to the adversary;
//   - delivery reproduces the scalar rules exactly (first-sender payload
//     for message passing, the seen-once/seen-twice collision rule for
//     radio).
// The differential matrix in lanes_test.go and the public equivalence
// tests pin all of this per trial.

// LaneWidth is the number of trials a lane runner advances per word
// operation: one per bit lane of a uint64.
const LaneWidth = 64

// LaneCorruption selects how the lane engine models what this scenario's
// fault semantics do to a faulty vertex's transmissions — the lane
// counterpart of (FaultType, Adversary) after the public layer has lowered
// the adversary to a symbol-alphabet form.
type LaneCorruption int

const (
	// LaneSilence drops the faulty vertex's transmissions (omission
	// failures, and malicious runs under a crashing adversary).
	LaneSilence LaneCorruption = iota
	// LaneFlip keeps the transmissions but rewrites their payloads to the
	// default symbol (adversary.Flip — flipOf rewrites every non-default
	// message to "0", and content-free protocols ignore payloads entirely).
	LaneFlip
	// LaneShout makes the faulty vertex broadcast a non-source value
	// regardless of intent (adversary.OutOfTurn). Full-malicious only, and
	// only with broadcast targeting (Targets == nil), since the shout goes
	// to all neighbors.
	LaneShout
	// LaneNoise keeps the transmissions and targets but redraws each faulty
	// transmission's payload uniformly from {"0","1"}
	// (adversary.RandomNoise with the default alphabet): per faulty
	// transmission one Intn(2) draw on the lane's adversary stream, "1"
	// mapping to the symbol LaneSpec.NoiseSym. With directed targets the
	// scalar adversary draws once per (sender, target) intent; with
	// broadcasts once per transmitting faulty vertex — the delivery loops
	// fuse the draws in exactly that order.
	LaneNoise
	// LaneEquivocate is adversary.Equivocator{M0:"0", M1:"1", SourceOnly}
	// on a bit message: whenever the source is faulty the payloads of its
	// intended transmissions toggle between "0" and "1" (one column flip),
	// except that for P > 1/2 the proof's slowing reduction first draws
	// Float64() < (P-1/2)/P on the lane's adversary stream — once per round
	// in which the source is faulty, transmitting or not — and skips the
	// swap on success. Two-symbol scenarios only (the message must be "1").
	LaneEquivocate
)

// LaneKernel is a protocol compiled to the transposed layout. The runner
// drives it once per round: Transmit fills the per-vertex intent word and
// the k payload symbol columns (all pre-zeroed by the runner; leaving a
// transmitting vertex's columns clear transmits the default symbol), the
// runner applies faults and the model's delivery rule, and Absorb consumes
// the per-vertex heard word plus the k received-symbol columns (sym[c][v]
// is set only where heard[v] is). Verdict returns the lanes whose trial
// succeeded (every vertex would output exactly M).
//
// Kernels are stateful per trial block and reset by Reset; they are not
// safe for concurrent use (one kernel per runner, one runner per worker).
type LaneKernel interface {
	Reset()
	Transmit(round int, intent []uint64, pay [][]uint64)
	Absorb(round int, heard []uint64, sym [][]uint64)
	Verdict() uint64
}

// LaneSpec describes a scenario compiled for the lane engine. It mirrors
// the corresponding Config exactly except that the protocol and adversary
// are already lowered: NewKernel builds the transposed protocol for the
// scenario's symbol count, and Corruption is the adversary's lane form.
type LaneSpec struct {
	Graph *graph.Graph
	Model Model
	Fault FaultType
	// P is the per-step transmitter failure probability in [0, 1).
	P float64
	// Rounds is the horizon, after any Config.Rounds override.
	Rounds int
	// Corruption is the lowered fault semantics (ignored for NoFaults and
	// Omission, which always silence).
	Corruption LaneCorruption
	// Symbols is the payload alphabet size: 0 or 2 for the two-symbol
	// universe {default, M} (one payload column), 3 when a third symbol is
	// in play (two columns; only LaneNoise injects one).
	Symbols int
	// NoiseSym is the symbol index ("1" of the noise alphabet) a LaneNoise
	// draw of 1 produces: 1 when the source message itself is "1", else 2.
	NoiseSym int
	// Source is the source vertex (used by LaneEquivocate, whose slowing
	// and swapping are keyed to the source's fault bit).
	Source int
	// Targets, when non-nil, restricts vertex v's transmissions to the
	// listed neighbors (message passing only; the tree-directed sends of
	// the paper's protocols). nil means every transmission is a broadcast
	// to all neighbors — and counts as ONE intent for LaneNoise draws, so a
	// scalar twin must emit a single Broadcast transmission, not one per
	// neighbor.
	Targets [][]int
	// NewKernel builds the transposed protocol instance for the given
	// effective symbol count (2 or 3; kernels track symbols-1 columns).
	NewKernel func(symbols int) LaneKernel
}

// symbols returns the effective alphabet size (Symbols defaulted to 2).
func (s *LaneSpec) symbols() int {
	if s.Symbols == 0 {
		return 2
	}
	return s.Symbols
}

// Validate reports specification errors before a runner is built.
func (s *LaneSpec) Validate() error {
	switch {
	case s.Graph == nil:
		return errors.New("sim: LaneSpec.Graph is nil")
	case s.Graph.N() == 0:
		return errors.New("sim: empty graph")
	case s.NewKernel == nil:
		return errors.New("sim: LaneSpec.NewKernel is nil")
	case s.Rounds < 0:
		return fmt.Errorf("sim: negative rounds %d", s.Rounds)
	case s.Model != MessagePassing && s.Model != Radio:
		return fmt.Errorf("sim: unknown model %d", int(s.Model))
	}
	switch s.Fault {
	case NoFaults:
		// p ignored
	case Omission, Malicious, LimitedMalicious:
		if s.P < 0 || s.P >= 1 {
			return fmt.Errorf("sim: failure probability %v outside [0,1)", s.P)
		}
	default:
		return fmt.Errorf("sim: unknown fault type %d", int(s.Fault))
	}
	if s.Symbols != 0 && s.Symbols != 2 && s.Symbols != 3 {
		return fmt.Errorf("sim: %d payload symbols unsupported (want 2 or 3)", s.Symbols)
	}
	if s.Model == Radio && s.Targets != nil {
		return errors.New("sim: radio transmissions are broadcasts; LaneSpec.Targets must be nil")
	}
	switch s.Corruption {
	case LaneShout:
		if s.Fault == LimitedMalicious {
			return errors.New("sim: limited-malicious cannot speak out of turn (LaneShout)")
		}
		if s.Targets != nil {
			return errors.New("sim: LaneShout broadcasts to all neighbors; LaneSpec.Targets must be nil")
		}
		if s.symbols() != 2 {
			return errors.New("sim: LaneShout is a two-symbol corruption")
		}
	case LaneNoise:
		if s.Fault != Malicious && s.Fault != LimitedMalicious {
			return errors.New("sim: LaneNoise requires a malicious fault type")
		}
		switch {
		case s.NoiseSym == 1 && s.symbols() == 2:
		case s.NoiseSym == 2 && s.symbols() == 3:
		default:
			return fmt.Errorf("sim: LaneNoise symbol %d inconsistent with %d-symbol alphabet", s.NoiseSym, s.symbols())
		}
	case LaneEquivocate:
		if s.Fault != Malicious && s.Fault != LimitedMalicious {
			return errors.New("sim: LaneEquivocate requires a malicious fault type")
		}
		if s.Source < 0 || s.Source >= s.Graph.N() {
			return fmt.Errorf("sim: LaneEquivocate source %d out of range", s.Source)
		}
		if s.symbols() != 2 {
			return errors.New("sim: LaneEquivocate is a two-symbol corruption (bit messages)")
		}
	}
	return nil
}

// LaneRunner executes blocks of up to 64 trials of one LaneSpec, reusing
// all state across blocks (the lane analogue of Runner). Not safe for
// concurrent use: one runner per worker goroutine.
type LaneRunner struct {
	spec   *LaneSpec
	kernel LaneKernel
	nbrs   [][]int // neighbor lists, used for broadcasts and radio
	k      int     // payload columns: symbols-1
	noise  bool    // LaneNoise active (fault type draws corruption)

	seeds [rng.LaneCount]uint64
	rnd   rng.Lanes

	// Adversary draw bank, seeded per block only when the corruption draws
	// (LaneNoise always; LaneEquivocate's slowing for P > 1/2).
	needAdv  bool
	advSeeds [rng.LaneCount]uint64
	adv      rng.LaneSources

	// Per-vertex lane words, reused across rounds and blocks.
	intent []uint64   // kernel's intended transmitters
	pay    [][]uint64 // k payload symbol columns, meaningful where transmitting
	act    []uint64   // actual transmitters after fault semantics
	fault  []uint64   // this round's faulty vertices
	heard  []uint64   // lanes where the vertex receives this round
	sym    [][]uint64 // ... and the received payload's k symbol columns
	once   []uint64   // radio: covered by >= 1 transmitter
	twice  []uint64   // radio: covered by >= 2 transmitters
	seen   [][]uint64 // radio: OR of transmitting neighbors' payload columns
	pc     []uint64   // per-sender masked payload columns (delivery scratch)
}

// NewLaneRunner validates the spec and builds a reusable runner.
func NewLaneRunner(spec *LaneSpec) (*LaneRunner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Graph.N()
	k := spec.symbols() - 1
	maliciousFault := spec.Fault == Malicious || spec.Fault == LimitedMalicious
	r := &LaneRunner{
		spec:    spec,
		kernel:  spec.NewKernel(spec.symbols()),
		k:       k,
		noise:   maliciousFault && spec.Corruption == LaneNoise,
		needAdv: maliciousFault && (spec.Corruption == LaneNoise || (spec.Corruption == LaneEquivocate && spec.P > 0.5)),
		intent:  make([]uint64, n),
		act:     make([]uint64, n),
		fault:   make([]uint64, n),
		heard:   make([]uint64, n),
		pc:      make([]uint64, k),
	}
	r.pay = make([][]uint64, k)
	r.sym = make([][]uint64, k)
	for c := 0; c < k; c++ {
		r.pay[c] = make([]uint64, n)
		r.sym[c] = make([]uint64, n)
	}
	if spec.Model == Radio {
		r.once = make([]uint64, n)
		r.twice = make([]uint64, n)
		r.seen = make([][]uint64, k)
		for c := 0; c < k; c++ {
			r.seen[c] = make([]uint64, n)
		}
	}
	if spec.Model == Radio || spec.Targets == nil {
		r.nbrs = make([][]int, n)
		for v := 0; v < n; v++ {
			r.nbrs[v] = spec.Graph.Neighbors(v, nil)
		}
	}
	return r, nil
}

// Run executes trials baseSeed+0 .. baseSeed+count-1 (count clamped to
// [0, 64]) and returns their success verdicts: bit L of the result is
// trial baseSeed+L's success, bit-identical to the scalar engine's
// Result.Success for that seed. Bits at or above count are zero.
//
// The runner always advances all 64 lanes — a partial block costs the same
// as a full one — and masks the verdict, so callers should claim trials in
// full lane-width chunks whenever the stream allows it.
func (r *LaneRunner) Run(baseSeed uint64, count int) uint64 {
	if count <= 0 {
		return 0
	}
	spec := r.spec
	n := spec.Graph.N()
	for lane := 0; lane < LaneWidth; lane++ {
		// The scalar trial derives its streams from the trial master
		// rng.New(seed): the fault stream is the first Split (rng.New of the
		// master's first output), the adversary stream the second.
		src := rng.New(baseSeed + uint64(lane))
		r.seeds[lane] = src.Uint64()
		if r.needAdv {
			r.advSeeds[lane] = src.Uint64()
		}
	}
	r.rnd.Seed(&r.seeds)
	if r.needAdv {
		r.adv.Seed(&r.advSeeds)
	}
	r.kernel.Reset()
	for round := 0; round < spec.Rounds; round++ {
		for v := 0; v < n; v++ {
			r.intent[v] = 0
		}
		for c := 0; c < r.k; c++ {
			payc := r.pay[c]
			for v := 0; v < n; v++ {
				payc[v] = 0
			}
		}
		r.kernel.Transmit(round, r.intent, r.pay)

		// Fault semantics. NoFaults draws nothing (matching the scalar
		// engine, which skips sampling entirely); otherwise each vertex
		// draws one Bernoulli per lane per round, in scalar order.
		if spec.Fault == NoFaults {
			copy(r.act, r.intent)
		} else {
			r.rnd.BernoulliWords(spec.P, n, r.fault)
			switch {
			case spec.Fault == Omission || spec.Corruption == LaneSilence:
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v] &^ r.fault[v]
				}
			case spec.Corruption == LaneFlip:
				// Targets unchanged; faulty payloads become the default. A
				// faulty vertex with no intent stays silent (Flip never adds
				// transmissions), which act=intent preserves.
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v]
				}
				for c := 0; c < r.k; c++ {
					payc := r.pay[c]
					for v := 0; v < n; v++ {
						payc[v] &^= r.fault[v]
					}
				}
			case spec.Corruption == LaneShout:
				// Faulty vertices broadcast a non-M payload regardless of
				// intent (intended payloads are replaced wholesale).
				for v := 0; v < n; v++ {
					r.act[v] = r.intent[v] | r.fault[v]
					r.pay[0][v] &^= r.fault[v]
				}
			case spec.Corruption == LaneEquivocate:
				// Targets and non-source payloads unchanged (SourceOnly).
				// The slowing draw fires on every lane whose source is
				// faulty this round, transmitting or not, exactly like the
				// scalar adversary (it is invoked on the faulty set, not the
				// transmitting set); the surviving lanes toggle the source's
				// intended payloads between "0" and "1" (one column flip).
				copy(r.act, r.intent)
				src := spec.Source
				swap := r.fault[src]
				if spec.P > 0.5 && swap != 0 {
					swap &^= r.adv.LessMasked((spec.P-0.5)/spec.P, swap)
				}
				r.pay[0][src] ^= swap & r.intent[src]
			default: // LaneNoise
				// Targets unchanged; payload draws are fused into delivery,
				// which visits faulty transmissions in the scalar Corrupt
				// order (senders ascending, intents in emission order).
				copy(r.act, r.intent)
			}
		}

		if spec.Model == MessagePassing {
			r.deliverMP(n)
		} else {
			r.deliverRadio(n)
		}
		r.kernel.Absorb(round, r.heard, r.sym)
	}
	v := r.kernel.Verdict()
	if count >= LaneWidth {
		return v
	}
	return v & (1<<uint(count) - 1)
}

// deliverMP is the transposed message-passing rule. heard[u] collects the
// lanes in which u receives at least one message; sym[c][u] reports, per
// lane, symbol column c of the LOWEST-ID transmitting sender — the first
// delivery of the scalar engine's increasing-sender order. The paper's
// protocols either receive from a single sender per round (tree-directed
// traffic) or adopt the first delivery, so the first-sender payload is
// exactly what their kernels need. LaneNoise redraws a faulty sender's
// payload per directed target (or once per broadcast), matching the scalar
// adversary's one-draw-per-intent rule.
func (r *LaneRunner) deliverMP(n int) {
	for u := 0; u < n; u++ {
		r.heard[u] = 0
	}
	for c := 0; c < r.k; c++ {
		symc := r.sym[c]
		for u := 0; u < n; u++ {
			symc[u] = 0
		}
	}
	targets := r.spec.Targets
	if r.k == 1 && !r.noise {
		// Two-symbol fast path: the original one-column delivery loop.
		pay0, sym0 := r.pay[0], r.sym[0]
		for w := 0; w < n; w++ {
			a := r.act[w]
			if a == 0 {
				continue
			}
			pm := pay0[w] & a
			var tos []int
			if targets != nil {
				tos = targets[w]
			} else {
				tos = r.nbrs[w]
			}
			for _, u := range tos {
				sym0[u] |= pm &^ r.heard[u]
				r.heard[u] |= a
			}
		}
		return
	}
	noiseCol := r.spec.NoiseSym - 1
	for w := 0; w < n; w++ {
		a := r.act[w]
		if a == 0 {
			continue
		}
		for c := 0; c < r.k; c++ {
			r.pc[c] = r.pay[c][w] & a
		}
		var draw uint64
		if r.noise {
			draw = r.fault[w] & a
		}
		if targets != nil {
			for _, u := range targets[w] {
				fresh := ^r.heard[u]
				if draw != 0 {
					// One draw per (sender, target) intent, in target-list
					// order — the emission order of the scalar protocols.
					high := r.adv.Intn2Masked(draw)
					for c := 0; c < r.k; c++ {
						pc := r.pc[c] &^ draw
						if c == noiseCol {
							pc |= high
						}
						r.sym[c][u] |= pc & fresh
					}
				} else {
					for c := 0; c < r.k; c++ {
						r.sym[c][u] |= r.pc[c] & fresh
					}
				}
				r.heard[u] |= a
			}
			continue
		}
		if draw != 0 {
			// A broadcast is one intent: one draw per transmitting faulty
			// vertex, shared by every neighbor.
			high := r.adv.Intn2Masked(draw)
			for c := 0; c < r.k; c++ {
				r.pc[c] &^= draw
				if c == noiseCol {
					r.pc[c] |= high
				}
			}
		}
		for _, u := range r.nbrs[w] {
			fresh := ^r.heard[u]
			for c := 0; c < r.k; c++ {
				r.sym[c][u] |= r.pc[c] & fresh
			}
			r.heard[u] |= a
		}
	}
}

// deliverRadio is the transposed radio collision rule: per lane, a vertex
// hears iff it is silent and exactly one neighbor transmits, in which case
// the seen columns carry that unique neighbor's payload symbol. LaneNoise
// redraws a faulty transmitter's payload once per vertex (a radio
// transmission is a single broadcast intent).
func (r *LaneRunner) deliverRadio(n int) {
	for v := 0; v < n; v++ {
		r.once[v] = 0
		r.twice[v] = 0
	}
	for c := 0; c < r.k; c++ {
		seenc := r.seen[c]
		for v := 0; v < n; v++ {
			seenc[v] = 0
		}
	}
	if r.k == 1 && !r.noise {
		// Two-symbol fast path: the original one-column collision loop.
		pay0, seen0, sym0 := r.pay[0], r.seen[0], r.sym[0]
		for w := 0; w < n; w++ {
			a := r.act[w]
			if a == 0 {
				continue
			}
			pm := pay0[w] & a
			for _, u := range r.nbrs[w] {
				r.twice[u] |= r.once[u] & a
				r.once[u] |= a
				seen0[u] |= pm
			}
		}
		for v := 0; v < n; v++ {
			h := r.once[v] &^ r.twice[v] &^ r.act[v]
			r.heard[v] = h
			sym0[v] = h & seen0[v]
		}
		return
	}
	noiseCol := r.spec.NoiseSym - 1
	for w := 0; w < n; w++ {
		a := r.act[w]
		if a == 0 {
			continue
		}
		for c := 0; c < r.k; c++ {
			r.pc[c] = r.pay[c][w] & a
		}
		if r.noise {
			if draw := r.fault[w] & a; draw != 0 {
				high := r.adv.Intn2Masked(draw)
				for c := 0; c < r.k; c++ {
					r.pc[c] &^= draw
					if c == noiseCol {
						r.pc[c] |= high
					}
				}
			}
		}
		for _, u := range r.nbrs[w] {
			r.twice[u] |= r.once[u] & a
			r.once[u] |= a
			for c := 0; c < r.k; c++ {
				r.seen[c][u] |= r.pc[c]
			}
		}
	}
	for v := 0; v < n; v++ {
		h := r.once[v] &^ r.twice[v] &^ r.act[v]
		r.heard[v] = h
		for c := 0; c < r.k; c++ {
			r.sym[c][v] = h & r.seen[c][v]
		}
	}
}

package sim

import (
	"errors"
	"fmt"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// Model selects the communication semantics.
type Model int

const (
	// MessagePassing lets a node send arbitrary, possibly different,
	// messages to all of its neighbors in each step, all delivered.
	MessagePassing Model = iota
	// Radio lets a node transmit at most one message per step, delivered to
	// all neighbors; a node hears a message iff it is itself silent and
	// exactly one neighbor transmits. Collisions are indistinguishable from
	// silence (no collision detection).
	Radio
)

func (m Model) String() string {
	switch m {
	case MessagePassing:
		return "message-passing"
	case Radio:
		return "radio"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// FaultType selects what a transmitter failure does.
type FaultType int

const (
	// NoFaults disables failures (p is ignored); used for fault-free
	// baselines such as computing opt.
	NoFaults FaultType = iota
	// Omission silences all transmissions of a faulty node for the step.
	Omission
	// Malicious hands the faulty node's transmitter to the adversary for
	// the step: it may alter messages, stay silent, or transmit when the
	// algorithm says to be silent (speak out of turn).
	Malicious
	// LimitedMalicious is the weaker variant used by Theorem 3.2 and the
	// two-node "hello" protocol: the adversary may alter or drop each
	// intended transmission but cannot create new ones, so a silent node
	// stays silent.
	LimitedMalicious
)

func (f FaultType) String() string {
	switch f {
	case NoFaults:
		return "none"
	case Omission:
		return "omission"
	case Malicious:
		return "malicious"
	case LimitedMalicious:
		return "limited-malicious"
	default:
		return fmt.Sprintf("FaultType(%d)", int(f))
	}
}

// Broadcast as a Transmission target means "all neighbors". It is the only
// permitted target in the Radio model.
const Broadcast = -1

// Transmission is one intended or actual message emission.
type Transmission struct {
	// To is a neighbor id, or Broadcast for all neighbors.
	To int
	// Payload is the message content; it must be non-nil (silence is
	// expressed by returning no Transmission at all).
	Payload []byte
}

// Env is the static per-node environment handed to Init. Nodes know n and
// p (the paper assumes both), their own id, the topology, and — only at the
// source — the source message.
type Env struct {
	ID        int
	N         int
	G         *graph.Graph
	Source    int
	SourceMsg []byte // nil unless ID == Source
	P         float64
	// Rand is this node's private deterministic random stream (derived
	// from the run seed and the node id, identical across engines). The
	// paper's algorithms are deterministic and ignore it; randomized
	// baselines (e.g. the Decay protocol) draw from it. Each node may use
	// its own stream only — sharing streams across nodes would break the
	// concurrent engine's determinism.
	Rand *rng.Source
}

// IsSource reports whether this node is the broadcast source.
func (e *Env) IsSource() bool { return e.ID == e.Source }

// Node is a deterministic per-node protocol instance. The engine drives it
// through rounds: Transmit is called once per round on every node, then
// Deliver zero or more times (message passing) or at most once (radio) with
// that round's receptions, in increasing sender order.
//
// Implementations must be deterministic — the paper's algorithms are — and
// must not retain or mutate slices passed to Deliver beyond the call
// (copy if needed).
type Node interface {
	Init(env *Env)
	Transmit(round int) []Transmission
	Deliver(round int, from int, payload []byte)
	// Output returns the node's current belief of the source message, or
	// nil if it has none. The run succeeds iff at the horizon every node's
	// Output equals the source message.
	Output() []byte
}

// Exec is the read-only view of the current execution handed to an
// Adversary each round. The paper's adversary is adaptive: it sees the
// whole history, the algorithm's intended behaviour, and the source
// message.
//
// An Exec is valid only for the duration of the Corrupt call: the engine
// reuses one value across rounds and trials, so adversaries must not
// retain the pointer (copy any fields they need beyond the call).
type Exec struct {
	G         *graph.Graph
	Model     Model
	Fault     FaultType
	Source    int
	SourceMsg []byte
	P         float64 // the run's per-step failure probability
	Round     int
	// Intents holds every node's intended transmissions this round,
	// indexed by node id. Adversaries must not mutate it.
	Intents [][]Transmission
	// History is non-nil iff Config.RecordHistory; adaptive adversaries
	// that need past deliveries (e.g. the equivocator) require it.
	History *History
	// Rand is the adversary's private random stream (deterministic per
	// seed). Randomized adversary policies draw from it.
	Rand *rng.Source
}

// Adversary chooses the actual transmissions of faulty nodes in Malicious
// and LimitedMalicious runs.
type Adversary interface {
	// Corrupt returns replacement transmissions for (a subset of) the
	// faulty nodes; nodes absent from the returned map transmit their
	// intent unchanged. Under LimitedMalicious the engine clamps the
	// result so a faulty node cannot gain transmissions it did not intend
	// (it may lose some, and payloads may differ).
	Corrupt(e *Exec, faulty []int) map[int][]Transmission
}

// The engine's per-round phases, in order:
//
//  1. intents[i] = node[i].Transmit(round), validated against the model;
//  2. each node is declared faulty independently with probability p;
//  3. fault semantics map intents to actual transmissions (silence for
//     omission; adversary's choice, suitably clamped, for malicious);
//  4. the model's delivery rule fires: per-edge delivery for message
//     passing, the exactly-one-transmitting-neighbor rule for radio;
//  5. deliveries are handed to nodes in increasing sender order.
//
// This file defines the shared types; engine.go implements the sequential
// engine and concurrent.go the goroutine-per-node engine.

// Config fully describes a run. The zero value is not runnable; all fields
// below without a "(optional)" note are required.
type Config struct {
	Graph     *graph.Graph
	Model     Model
	Fault     FaultType
	P         float64 // per-step transmitter failure probability in [0,1)
	Source    int
	SourceMsg []byte
	// NewNode constructs the protocol instance for a node id. Factories
	// typically close over centrally precomputed structures (e.g. a BFS
	// tree), which the paper explicitly allows as preprocessing.
	NewNode func(id int) Node
	// Rounds is the horizon; the run stops after exactly this many rounds.
	Rounds int
	// Seed determines the fault pattern and the adversary stream.
	Seed uint64
	// Adversary is required for Malicious/LimitedMalicious runs.
	Adversary Adversary
	// RecordHistory retains per-round actual transmissions and deliveries
	// (memory-proportional to the execution); required by history-driven
	// adversaries and by the trace CLI. (optional)
	RecordHistory bool
	// TrackCompletion makes the engine check after every round whether all
	// outputs are already correct, so Result.CompletedRound reports the
	// measured broadcast time. It costs an O(n) scan per round, so the
	// Monte-Carlo harness enables it only for timing experiments. (optional)
	TrackCompletion bool
	// Observer, if non-nil, is invoked after each round with that round's
	// record (regardless of RecordHistory). (optional)
	Observer func(r *RoundRecord)
	// ScalarCore selects the scalar reference implementation of fault
	// sampling and the delivery rules instead of the word-parallel bitset
	// core. Executions are bit-identical either way — the differential test
	// harness enforces it — so the switch exists only to keep the reference
	// semantics runnable and testable, not as a tuning knob. (optional)
	ScalarCore bool
}

// Validate reports configuration errors before a run starts.
func (c *Config) Validate() error {
	switch {
	case c.Graph == nil:
		return errors.New("sim: Config.Graph is nil")
	case c.Graph.N() == 0:
		return errors.New("sim: empty graph")
	case c.Source < 0 || c.Source >= c.Graph.N():
		return fmt.Errorf("sim: source %d out of range [0,%d)", c.Source, c.Graph.N())
	case len(c.SourceMsg) == 0:
		return errors.New("sim: empty source message")
	case c.NewNode == nil:
		return errors.New("sim: Config.NewNode is nil")
	case c.Rounds < 0:
		return fmt.Errorf("sim: negative rounds %d", c.Rounds)
	case c.Model != MessagePassing && c.Model != Radio:
		return fmt.Errorf("sim: unknown model %d", int(c.Model))
	}
	switch c.Fault {
	case NoFaults:
		// p ignored
	case Omission, Malicious, LimitedMalicious:
		if c.P < 0 || c.P >= 1 {
			return fmt.Errorf("sim: failure probability %v outside [0,1)", c.P)
		}
	default:
		return fmt.Errorf("sim: unknown fault type %d", int(c.Fault))
	}
	if (c.Fault == Malicious || c.Fault == LimitedMalicious) && c.Adversary == nil {
		return errors.New("sim: malicious fault type requires an Adversary")
	}
	return nil
}

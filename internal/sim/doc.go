// Package sim is the synchronous network simulator underlying every
// experiment: a round-based engine over an undirected graph supporting the
// paper's two communication models (message passing and radio, including
// the radio collision rule) and its fault scenarios (node-omission,
// malicious, and limited-malicious transmission failures, each hitting a
// node's transmitter independently with probability p per step).
//
// Two engines share identical semantics: a fast sequential engine used by
// the Monte-Carlo harness, and a goroutine-per-node engine with barrier
// synchronization that mirrors the paper's "one process per node" model.
// Both execute one word-parallel round core (internal/bitset): fault
// sampling fills a per-round fault mask with batched Bernoulli draws,
// omission silencing is a mask intersection, broadcast delivery walks
// cached adjacency bitset rows, and the radio collision rule ("heard iff
// silent and exactly one neighbor transmits") is computed with
// seen-once/seen-twice accumulator sets. The pre-bitset scalar
// implementation is retained behind Config.ScalarCore as the reference
// semantics — not a tuning knob, a falsifier.
//
// Trial streams (many seeds, one configuration) should use a Runner,
// which validates the configuration once and rewinds a single execution
// state per trial instead of reallocating it.
//
// # Invariants
//
//   - Bitset core ≡ scalar core ≡ concurrent engine, bit for bit over
//     full execution histories, across a randomized matrix of ~200
//     configurations (model × fault × adversary × graph family × p ×
//     seed): TestDifferentialBitsetVsScalar,
//     TestDifferentialSequentialVsConcurrent, TestEnginesEquivalent in
//     differential_test.go and engine_test.go.
//   - A reused Runner is bit-identical to a fresh Run with the same seed,
//     and results never alias reused state: TestRunnerMatchesRun,
//     TestRunnerResultsDoNotAlias, TestDifferentialRunnerReuse.
//   - One fixed-seed run per experiment family is pinned round by round
//     (fault-set hash, delivery count, informed-set hash) against golden
//     digests under testdata/golden: TestGoldenTraces (regenerate
//     intentional behavior changes with -update).
//   - The omission fast path allocates nothing per round at steady state:
//     TestOmissionFastPathZeroAlloc in alloc_test.go.
package sim

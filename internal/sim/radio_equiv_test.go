package sim

import (
	"bytes"
	"testing"
	"testing/quick"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

// relayNode is a radio test protocol: once informed, transmit in the slots
// t ≡ id (mod n) — a TDMA relay that exercises the collision rule under
// every fault type without ever being trivially silent.
type relayNode struct {
	env *Env
	msg []byte
}

func (r *relayNode) Init(env *Env) {
	r.env = env
	if env.IsSource() {
		r.msg = env.SourceMsg
	}
}

func (r *relayNode) Transmit(round int) []Transmission {
	if r.msg == nil || round%r.env.N != r.env.ID {
		return nil
	}
	return []Transmission{{To: Broadcast, Payload: r.msg}}
}

func (r *relayNode) Deliver(round, from int, payload []byte) {
	if r.msg == nil {
		r.msg = append([]byte(nil), payload...)
	}
}

func (r *relayNode) Output() []byte { return r.msg }

// TestEnginesEquivalentRadio is the radio-model counterpart of
// TestEnginesEquivalent: identical executions from both engines across
// random topologies, fault types, and rates — including collision
// accounting.
func TestEnginesEquivalentRadio(t *testing.T) {
	check := func(seed uint32, pRaw uint8, faultRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 2 + r.Intn(20)
		g := graph.GNP(n, 0.2, r)
		fault := []FaultType{NoFaults, Omission, Malicious, LimitedMalicious}[int(faultRaw)%4]
		cfg := &Config{
			Graph: g, Model: Radio, Fault: fault,
			P:      float64(pRaw%90) / 100,
			Source: r.Intn(n), SourceMsg: []byte("radio"),
			NewNode: func(id int) Node { return &relayNode{} },
			Rounds:  3 * n, Seed: uint64(seed)*17 + 3,
			RecordHistory: true,
		}
		if fault == Malicious {
			cfg.Adversary = outOfTurnAdversary{}
		}
		if fault == LimitedMalicious {
			cfg.Adversary = flipAdversary{}
		}
		a, err := Run(cfg)
		if err != nil {
			t.Logf("seq: %v", err)
			return false
		}
		b, err := RunConcurrent(cfg)
		if err != nil {
			t.Logf("conc: %v", err)
			return false
		}
		if a.Success != b.Success || a.Stats != b.Stats {
			t.Logf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
			return false
		}
		for id := range a.Outputs {
			if !bytes.Equal(a.Outputs[id], b.Outputs[id]) {
				return false
			}
		}
		for r := range a.History.Rounds {
			if a.History.Rounds[r].Collisions != b.History.Rounds[r].Collisions {
				t.Logf("round %d collisions diverge", r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRadioOutOfTurnCausesCollisions: a malicious adversary that makes
// every faulty node shout must produce collisions on dense graphs —
// the "speak out of turn" capability in action.
func TestRadioOutOfTurnCausesCollisions(t *testing.T) {
	g := graph.Complete(8)
	cfg := &Config{
		Graph: g, Model: Radio, Fault: Malicious, P: 0.5,
		Source: 0, SourceMsg: []byte("x"),
		NewNode: func(id int) Node { return &relayNode{} },
		Rounds:  200, Seed: 9,
		Adversary: outOfTurnAdversary{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Collisions == 0 {
		t.Fatal("out-of-turn shouting on K8 produced no collisions")
	}
}

package sim

import (
	"fmt"
	"sync"
)

// RunConcurrent executes the configuration with one goroutine per node,
// synchronized round-by-round with barriers — the paper's synchronous
// model realized literally. Fault sampling, adversary calls, and the
// delivery rule stay centralized (they are global per-round computations),
// while each node's Transmit and Deliver calls run on that node's own
// goroutine. Given the same Config, the outcome is bit-identical to Run;
// TestEnginesEquivalent enforces this.
func RunConcurrent(cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := newRunState(cfg)
	if err != nil {
		return nil, err
	}

	type roundCmd struct {
		round int
		phase int // 0 = transmit, 1 = deliver
	}
	n := st.n
	cmds := make([]chan roundCmd, n)
	errs := make([]error, n)
	var wg sync.WaitGroup // per-phase barrier
	var workers sync.WaitGroup

	for id := 0; id < n; id++ {
		cmds[id] = make(chan roundCmd)
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			node := st.nodes[id]
			for cmd := range cmds[id] {
				switch cmd.phase {
				case 0:
					ts := node.Transmit(cmd.round)
					if err := st.validateTransmissions(id, ts); err != nil {
						errs[id] = fmt.Errorf("sim: round %d: %w", cmd.round, err)
					}
					st.intents[id] = ts
				case 1:
					for _, r := range st.delivered[id] {
						node.Deliver(cmd.round, r.From, r.Payload)
					}
				}
				wg.Done()
			}
		}(id)
	}

	shutdown := func() {
		for _, c := range cmds {
			close(c)
		}
		workers.Wait()
	}

	runPhase := func(round, phase int) error {
		wg.Add(n)
		for id := 0; id < n; id++ {
			cmds[id] <- roundCmd{round: round, phase: phase}
		}
		wg.Wait()
		for id := 0; id < n; id++ {
			if errs[id] != nil {
				return errs[id]
			}
		}
		return nil
	}

	for round := 0; round < cfg.Rounds; round++ {
		if err := runPhase(round, 0); err != nil {
			shutdown()
			return nil, err
		}
		// Central phases: fault sampling, adversary, delivery computation.
		// These touch shared state and the single RNG streams, so they run
		// on the coordinating goroutine, exactly as in the sequential
		// engine (and with the same draw order, preserving determinism).
		if err := st.faultAndDeliver(round); err != nil {
			shutdown()
			return nil, err
		}
		if err := runPhase(round, 1); err != nil {
			shutdown()
			return nil, err
		}
		st.finishRound(round)
	}
	shutdown()
	return st.result(), nil
}

package bitset

import "testing"

// laneValue reads lane L's value out of a bit-sliced counter — the scalar
// reference the word-parallel helpers are checked against.
func laneValue(counter []uint64, lane int) uint64 {
	var v uint64
	for j, w := range counter {
		v |= (w >> uint(lane) & 1) << uint(j)
	}
	return v
}

// lcg is a tiny deterministic generator for test patterns (the package
// must not depend on internal/rng, which depends on nothing; keep it so).
func lcg(x *uint64) uint64 {
	*x = *x*6364136223846793005 + 1442695040888963407
	return *x
}

func TestLaneAddMatchesScalarCounting(t *testing.T) {
	const width = 5
	counter := make([]uint64, width)
	want := [64]uint64{}
	state := uint64(42)
	for step := 0; step < 31; step++ { // 31 < 2^5: no overflow
		bit := lcg(&state)
		LaneAdd(counter, bit)
		for lane := 0; lane < 64; lane++ {
			want[lane] += bit >> uint(lane) & 1
		}
	}
	for lane := 0; lane < 64; lane++ {
		if got := laneValue(counter, lane); got != want[lane] {
			t.Fatalf("lane %d: counter=%d want %d", lane, got, want[lane])
		}
	}
}

func TestLaneGEConst(t *testing.T) {
	const width = 4
	counter := make([]uint64, width)
	state := uint64(7)
	for step := 0; step < 15; step++ {
		LaneAdd(counter, lcg(&state))
	}
	for k := uint64(0); k <= 20; k++ {
		got := LaneGEConst(counter, k)
		for lane := 0; lane < 64; lane++ {
			want := laneValue(counter, lane) >= k
			if got>>uint(lane)&1 == 1 != want {
				t.Fatalf("k=%d lane=%d (value %d): got %v want %v",
					k, lane, laneValue(counter, lane), !want, want)
			}
		}
	}
}

func TestLanePlurality(t *testing.T) {
	const width = 4
	c0 := make([]uint64, width)
	c1 := make([]uint64, width)
	c2 := make([]uint64, width)
	state := uint64(1234)
	for step := 0; step < 10; step++ { // up to 10 votes per counter, < 2^4
		LaneAdd(c0, lcg(&state))
		LaneAdd(c1, lcg(&state))
		LaneAdd(c2, lcg(&state))
	}
	win1, win2 := LanePlurality(c0, c1, c2)
	for lane := 0; lane < 64; lane++ {
		v0, v1, v2 := laneValue(c0, lane), laneValue(c1, lane), laneValue(c2, lane)
		want1 := v1 > v0 && v1 > v2
		want2 := v2 > v0 && v2 > v1
		if got1 := win1>>uint(lane)&1 == 1; got1 != want1 {
			t.Fatalf("lane %d (%d,%d,%d): win1=%v want %v", lane, v0, v1, v2, got1, want1)
		}
		if got2 := win2>>uint(lane)&1 == 1; got2 != want2 {
			t.Fatalf("lane %d (%d,%d,%d): win2=%v want %v", lane, v0, v1, v2, got2, want2)
		}
	}
	if win1&win2 != 0 {
		t.Fatalf("a lane claims two winners: %#x & %#x", win1, win2)
	}
}

func TestLaneGT(t *testing.T) {
	const width = 4
	a := make([]uint64, width)
	b := make([]uint64, width)
	state := uint64(99)
	for step := 0; step < 15; step++ {
		LaneAdd(a, lcg(&state))
		LaneAdd(b, lcg(&state))
	}
	got := LaneGT(a, b)
	for lane := 0; lane < 64; lane++ {
		want := laneValue(a, lane) > laneValue(b, lane)
		if got>>uint(lane)&1 == 1 != want {
			t.Fatalf("lane %d: a=%d b=%d got %v want %v",
				lane, laneValue(a, lane), laneValue(b, lane), !want, want)
		}
	}
}

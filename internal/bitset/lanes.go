// Lane-counter helpers for the trial-parallel simulation core: a
// bit-sliced counter holds 64 independent small counters, one per bit
// lane, with bit j of counter[j] being bit j of lane L's value. The lane
// kernels use them to run 64 trials' majority votes per word operation.
package bitset

// LaneAdd increments, per lane, the bit-sliced counter by the lanes set in
// bit: a ripple-carry add of a one-bit addend across counter's words
// (counter[0] is the least significant bit plane). Lanes whose count would
// exceed the counter's width wrap; callers size the width to the maximum
// possible count, so overflow never occurs in practice.
func LaneAdd(counter []uint64, bit uint64) {
	carry := bit
	for j := 0; j < len(counter) && carry != 0; j++ {
		next := counter[j] & carry
		counter[j] ^= carry
		carry = next
	}
}

// LaneGEConst returns the lanes whose bit-sliced counter value is >= k.
func LaneGEConst(counter []uint64, k uint64) uint64 {
	if k == 0 {
		return ^uint64(0)
	}
	w := len(counter)
	if w < 64 && k >= 1<<uint(w) {
		return 0 // k needs more bits than the counter holds
	}
	// MSB-down comparison: eq tracks lanes equal on the bits seen so far,
	// gt the lanes already decided greater.
	var gt uint64
	eq := ^uint64(0)
	for j := w - 1; j >= 0; j-- {
		c := counter[j]
		if k>>uint(j)&1 == 1 {
			eq &= c
		} else {
			gt |= eq & c
			eq &^= c
		}
	}
	return gt | eq
}

// LaneGT returns the lanes where bit-sliced counter a is strictly greater
// than b. The counters must have equal widths.
func LaneGT(a, b []uint64) uint64 {
	var gt uint64
	eq := ^uint64(0)
	for j := len(a) - 1; j >= 0; j-- {
		gt |= eq & a[j] &^ b[j]
		eq &^= a[j] ^ b[j]
	}
	return gt
}

// LanePlurality decides, per lane, a three-way plurality vote over the
// bit-sliced counters c0 (votes for the default symbol), c1, and c2: win1
// is the lanes where c1 is the strict maximum, win2 where c2 is. Lanes in
// neither (ties included) resolve to the default symbol, matching
// protocol.Tally.Winner's "strictly the most votes, else default". The
// counters must have equal widths.
func LanePlurality(c0, c1, c2 []uint64) (win1, win2 uint64) {
	g10 := LaneGT(c1, c0)
	g12 := LaneGT(c1, c2)
	g20 := LaneGT(c2, c0)
	g21 := LaneGT(c2, c1)
	return g10 & g12, g20 & g21
}

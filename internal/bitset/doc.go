// Package bitset provides fixed-capacity sets of small non-negative
// integers backed by []uint64 words. It is the word-parallel substrate of
// the simulator's hot path: fault masks, transmitter sets, and the radio
// collision rule's seen-once/seen-twice accumulators are all Sets, so the
// per-round set algebra runs 64 elements per instruction instead of one
// element per callback.
//
// Sets are plain slices: allocate once with New and reuse via Clear. All
// binary operations require equal lengths (same universe) and run in place
// on the receiver; none allocate.
//
// # Invariants
//
//   - Every operation agrees with the obvious map[int]bool model
//     (bitset_test.go's randomized model test), including the word-skipping
//     iteration order (ascending).
//   - The engine round core built on these sets is bit-identical to the
//     scalar reference core end to end — enforced one level up by
//     internal/sim's differential matrix (TestDifferentialBitsetVsScalar),
//     which is the reason the scalar core is kept alive.
package bitset

package bitset

import "math/bits"

// Set is a fixed-capacity bitset over the universe [0, 64*len(s)). The
// zero value is an empty universe; use New.
type Set []uint64

// Words returns the number of 64-bit words needed for a universe of n
// elements.
func Words(n int) int { return (n + 63) >> 6 }

// New returns an empty Set over the universe [0, n).
func New(n int) Set { return make(Set, Words(n)) }

// Contains reports whether i is in the set. i must be within the universe.
func (s Set) Contains(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add inserts i. i must be within the universe.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i. i must be within the universe.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Clear empties the set.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Copy overwrites s with x. The sets must have equal length.
func (s Set) Copy(x Set) { copy(s, x) }

// Or sets s = s ∪ x. The sets must have equal length.
func (s Set) Or(x Set) {
	for i, w := range x {
		s[i] |= w
	}
}

// And sets s = s ∩ x. The sets must have equal length.
func (s Set) And(x Set) {
	for i, w := range x {
		s[i] &= w
	}
}

// AndNot sets s = s \ x. The sets must have equal length.
func (s Set) AndNot(x Set) {
	for i, w := range x {
		s[i] &^= w
	}
}

// Xor sets s = s △ x (symmetric difference). The sets must have equal
// length.
func (s Set) Xor(x Set) {
	for i, w := range x {
		s[i] ^= w
	}
}

// OrAnd sets s = s ∪ (a ∩ b) — the "seen twice" accumulator update of the
// radio collision rule. All three sets must have equal length.
func (s Set) OrAnd(a, b Set) {
	for i := range s {
		s[i] |= a[i] & b[i]
	}
}

// Count returns the number of elements (population count).
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountAndNot returns |s \ x| without materializing the difference. The
// sets must have equal length.
func (s Set) CountAndNot(x Set) int {
	c := 0
	for i, w := range s {
		c += bits.OnesCount64(w &^ x[i])
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and x contain the same elements. The sets must
// have equal length.
func (s Set) Equal(x Set) bool {
	for i, w := range s {
		if w != x[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in increasing order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendIDs appends the elements in increasing order to dst and returns
// the extended slice. Passing a reused dst[:0] makes it allocation-free at
// steady state.
func (s Set) AppendIDs(dst []int) []int {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// FirstCommon returns the smallest element of a ∩ b, or -1 if the
// intersection is empty. The sets must have equal length.
func FirstCommon(a, b Set) int {
	for i, w := range a {
		if m := w & b[i]; m != 0 {
			return i<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

package bitset

import (
	"testing"

	"faultcast/internal/rng"
)

// refSet is a map-based reference implementation the bit tricks are
// checked against.
type refSet map[int]bool

func randomPair(t *testing.T, seed uint64, n int) (Set, refSet) {
	t.Helper()
	r := rng.New(seed)
	s := New(n)
	ref := refSet{}
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.4) {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

func assertMatches(t *testing.T, s Set, ref refSet, n int, what string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if s.Contains(i) != ref[i] {
			t.Fatalf("%s: element %d: set=%v ref=%v", what, i, s.Contains(i), ref[i])
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("%s: Count=%d ref=%d", what, s.Count(), len(ref))
	}
}

func TestAddRemoveContains(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 200} {
		s := New(n)
		if len(s) != Words(n) {
			t.Fatalf("New(%d) has %d words, want %d", n, len(s), Words(n))
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) {
				t.Fatalf("fresh set contains %d", i)
			}
			s.Add(i)
			if !s.Contains(i) {
				t.Fatalf("Add(%d) lost", i)
			}
		}
		if s.Count() != n {
			t.Fatalf("full set Count=%d, want %d", s.Count(), n)
		}
		for i := 0; i < n; i += 2 {
			s.Remove(i)
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != (i%2 == 1) {
				t.Fatalf("after Remove evens: Contains(%d)=%v", i, s.Contains(i))
			}
		}
		s.Clear()
		if !s.Empty() || s.Count() != 0 {
			t.Fatal("Clear left elements behind")
		}
	}
}

func TestSetAlgebraMatchesReference(t *testing.T) {
	const n = 150
	for seed := uint64(0); seed < 20; seed++ {
		a, ra := randomPair(t, seed*2+1, n)
		b, rb := randomPair(t, seed*2+2, n)

		union := New(n)
		union.Copy(a)
		union.Or(b)
		refU := refSet{}
		for i := range ra {
			refU[i] = true
		}
		for i := range rb {
			refU[i] = true
		}
		assertMatches(t, union, refU, n, "Or")

		inter := New(n)
		inter.Copy(a)
		inter.And(b)
		refI := refSet{}
		for i := range ra {
			if rb[i] {
				refI[i] = true
			}
		}
		assertMatches(t, inter, refI, n, "And")

		diff := New(n)
		diff.Copy(a)
		diff.AndNot(b)
		refD := refSet{}
		for i := range ra {
			if !rb[i] {
				refD[i] = true
			}
		}
		assertMatches(t, diff, refD, n, "AndNot")
		if got := a.CountAndNot(b); got != len(refD) {
			t.Fatalf("CountAndNot=%d, want %d", got, len(refD))
		}

		sym := New(n)
		sym.Copy(a)
		sym.Xor(b)
		refX := refSet{}
		for i := 0; i < n; i++ {
			if ra[i] != rb[i] {
				refX[i] = true
			}
		}
		assertMatches(t, sym, refX, n, "Xor")

		acc, rc := randomPair(t, seed*2+3, n)
		refAcc := refSet{}
		for i := range rc {
			refAcc[i] = true
		}
		for i := range refI {
			refAcc[i] = true
		}
		acc.OrAnd(a, b)
		assertMatches(t, acc, refAcc, n, "OrAnd")
	}
}

func TestIterationOrderAndFirstCommon(t *testing.T) {
	const n = 130
	a, ra := randomPair(t, 7, n)
	var got []int
	a.ForEach(func(i int) { got = append(got, i) })
	got2 := a.AppendIDs(nil)
	if len(got) != len(ra) || len(got2) != len(ra) {
		t.Fatalf("iteration lengths %d/%d, want %d", len(got), len(got2), len(ra))
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("ForEach and AppendIDs disagree at %d", i)
		}
		if i > 0 && got[i-1] >= got[i] {
			t.Fatalf("iteration not strictly increasing: %v", got)
		}
		if !ra[got[i]] {
			t.Fatalf("iterated non-member %d", got[i])
		}
	}

	b, rb := randomPair(t, 8, n)
	want := -1
	for i := 0; i < n; i++ {
		if ra[i] && rb[i] {
			want = i
			break
		}
	}
	if got := FirstCommon(a, b); got != want {
		t.Fatalf("FirstCommon=%d, want %d", got, want)
	}
	empty := New(n)
	if got := FirstCommon(a, empty); got != -1 {
		t.Fatalf("FirstCommon with empty set = %d, want -1", got)
	}

	// Equal / Copy round-trip.
	c := New(n)
	c.Copy(a)
	if !c.Equal(a) {
		t.Fatal("Copy is not Equal")
	}
	c.Xor(b)
	if c.Equal(a) && !b.Empty() {
		t.Fatal("Xor changed nothing")
	}
}

func TestWordBoundaries(t *testing.T) {
	s := New(128)
	for _, i := range []int{0, 63, 64, 127} {
		s.Add(i)
	}
	ids := s.AppendIDs(nil)
	want := []int{0, 63, 64, 127}
	if len(ids) != len(want) {
		t.Fatalf("ids=%v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids=%v, want %v", ids, want)
		}
	}
}

package adversary

import "faultcast/internal/sim"

// Equivocator implements the adversary of the Theorem 2.3 impossibility
// proof (message passing, malicious failures, p ≥ 1/2). The source s
// broadcasts one of two possible messages, M0 or M1. Whenever a
// transmission of s fails, the adversary delivers instead the message the
// algorithm would have sent for the OPPOSITE source message: "if Ms = 0
// and a failure occurs, then the adversary delivers A1(σ) at v, and vice
// versa".
//
// For the algorithms in this repository whose source transmissions depend
// only on the source message (Simple-Malicious: the source transmits Ms in
// every step of its window), the counterfactual A_{1-b}(σ) is simply the
// opposite message, so the adversary realizes the proof exactly: at
// p = 1/2 the receiver observes M0 and M1 with identical distributions
// regardless of the truth, pinning its error probability at 1/2.
//
// For p > 1/2 the adversary applies the proof's "slowing" reduction: when
// a transmission is faulty, it delivers the correct message with
// probability q = (p − 1/2)/p and equivocates otherwise, which makes the
// effective equivocation rate exactly 1/2 because (1−p) + p·q = 1/2.
//
// For p < 1/2 (below the threshold) no slowing can help, and the adversary
// simply equivocates on every fault — its strongest move — which is how
// experiment E2 exercises Simple-Malicious against a worst-case opponent.
type Equivocator struct {
	// M0, M1 are the two candidate source messages.
	M0, M1 []byte
	// SourceOnly restricts equivocation to the source's transmissions,
	// with other faulty nodes behaving fault-free (the proof's setting,
	// where only the s→v channel is failure-prone). When false, every
	// faulty node's payloads are swapped.
	SourceOnly bool
}

// Corrupt implements sim.Adversary.
func (a Equivocator) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	out := make(map[int][]sim.Transmission, len(faulty))
	for _, id := range faulty {
		if a.SourceOnly && id != e.Source {
			continue // behave exactly as the algorithm intends
		}
		if e.P > 0.5 && e.Rand.Float64() < (e.P-0.5)/e.P {
			continue // slowing: deliver the correct message this time
		}
		intents := e.Intents[id]
		ts := make([]sim.Transmission, 0, len(intents))
		for _, intent := range intents {
			ts = append(ts, sim.Transmission{
				To:      intent.To,
				Payload: swapPayload(intent.Payload, a.M0, a.M1),
			})
		}
		out[id] = ts
	}
	return out
}

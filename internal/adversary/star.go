package adversary

import (
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

// Star implements the adversary of the Theorem 2.4 impossibility proof
// (radio model, malicious failures, p ≥ (1−p)^(Δ+1)) on a star graph whose
// root is the receiver v and whose source s is one of the leaves.
//
// Let S be the set of steps in which the algorithm instructs s to transmit
// and every other node to keep silent. The proof's policy is:
//
//   - outside S, every faulty node behaves exactly as if it were
//     fault-free;
//   - in an S-step, if s is faulty, s switches its transmission to the one
//     corresponding to the opposite source message and all other faulty
//     nodes keep silent;
//   - in an S-step, if s is fault-free, every faulty node transmits a
//     non-empty message, so the receiver v observes a collision
//     (indistinguishable from silence).
//
// At the balance point p = q := (1−p)^(Δ+1) this makes v's posterior on
// the source message exactly 1/2 after every observation. For p strictly
// above the threshold, the adversary applies the proof's "slowing"
// reduction: each faulty node is treated as effectively faulty only with
// probability p*/p, where p* is the fixed point of x = (1−x)^(Δ+1), so
// the effective failure rate sits exactly at the balance point.
type Star struct {
	// M0, M1 are the two candidate source messages.
	M0, M1 []byte
	// Noise is the non-empty message faulty nodes shout to jam v
	// (content is irrelevant — it only needs to collide); defaults to "#".
	Noise []byte
}

func (a Star) noise() []byte {
	if len(a.Noise) == 0 {
		return []byte{'#'}
	}
	return a.Noise
}

// Corrupt implements sim.Adversary.
func (a Star) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	// Slowing: reduce the effective per-node failure probability to the
	// threshold fixed point p* when the actual p exceeds it.
	pStar := stat.RadioThreshold(e.G.MaxDegree())
	eff := faulty
	if e.P > pStar {
		keep := pStar / e.P
		eff = eff[:0:0]
		for _, id := range faulty {
			if e.Rand.Float64() < keep {
				eff = append(eff, id)
			}
		}
	}
	if len(eff) == 0 {
		return nil
	}

	// Detect an S-step: s intends to transmit, everyone else is silent.
	sStep := len(e.Intents[e.Source]) > 0
	if sStep {
		for id, intents := range e.Intents {
			if id != e.Source && len(intents) > 0 {
				sStep = false
				break
			}
		}
	}
	if !sStep {
		return nil // faulty nodes behave as fault-free
	}

	out := make(map[int][]sim.Transmission, len(eff))
	sFaulty := false
	for _, id := range eff {
		if id == e.Source {
			sFaulty = true
			break
		}
	}
	if sFaulty {
		// Source equivocates; other faulty nodes keep silent.
		for _, id := range eff {
			if id == e.Source {
				swapped := swapPayload(e.Intents[id][0].Payload, a.M0, a.M1)
				out[id] = []sim.Transmission{{To: sim.Broadcast, Payload: swapped}}
			} else {
				out[id] = nil
			}
		}
		return out
	}
	// Source healthy: every faulty node jams.
	for _, id := range eff {
		out[id] = []sim.Transmission{{To: sim.Broadcast, Payload: a.noise()}}
	}
	return out
}

// Package adversary implements the adaptive adversaries used in the
// paper's malicious-failure scenarios: generic corruption strategies
// (crash, payload flipping, out-of-turn noise) plus the two proof-strategy
// adversaries — the equivocator of Theorem 2.3 (message passing, p ≥ 1/2)
// and the star adversary of Theorem 2.4 (radio, p ≥ (1−p)^(Δ+1)) — each of
// which makes the receiver's posterior on the source message exactly
// uninformative at its threshold.
//
// Every adversary satisfies sim.Adversary. They draw randomness only from
// the Exec's private stream, so runs stay reproducible.
package adversary

import (
	"bytes"

	"faultcast/internal/sim"
)

// Crash silences every faulty node — malicious machinery exercising the
// same behaviour as omission failures. Useful as an ablation baseline.
type Crash struct{}

// Corrupt implements sim.Adversary.
func (Crash) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	out := make(map[int][]sim.Transmission, len(faulty))
	for _, id := range faulty {
		out[id] = nil
	}
	return out
}

// Flip rewrites the payload of every intended transmission of a faulty
// node to a fixed wrong value. It never adds transmissions, so it is legal
// under both Malicious and LimitedMalicious semantics.
type Flip struct {
	// Wrong is the substituted payload; defaults to "X" when empty.
	Wrong []byte
}

func (f Flip) wrong() []byte {
	if len(f.Wrong) == 0 {
		return []byte("X")
	}
	return f.Wrong
}

// Corrupt implements sim.Adversary.
func (f Flip) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	out := make(map[int][]sim.Transmission, len(faulty))
	for _, id := range faulty {
		ts := make([]sim.Transmission, 0, len(e.Intents[id]))
		for _, intent := range e.Intents[id] {
			ts = append(ts, sim.Transmission{To: intent.To, Payload: f.wrong()})
		}
		out[id] = ts
	}
	return out
}

// RandomNoise corrupts each intended transmission of a faulty node with an
// independently random payload drawn from Alphabet (default {"0","1"}).
// A weaker, non-adaptive baseline against which the proof-strategy
// adversaries are compared in ablation A2.
type RandomNoise struct {
	Alphabet [][]byte
}

func (r RandomNoise) alphabet() [][]byte {
	if len(r.Alphabet) == 0 {
		return [][]byte{{'0'}, {'1'}}
	}
	return r.Alphabet
}

// Corrupt implements sim.Adversary.
func (r RandomNoise) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	ab := r.alphabet()
	out := make(map[int][]sim.Transmission, len(faulty))
	for _, id := range faulty {
		ts := make([]sim.Transmission, 0, len(e.Intents[id]))
		for _, intent := range e.Intents[id] {
			ts = append(ts, sim.Transmission{To: intent.To, Payload: ab[e.Rand.Intn(len(ab))]})
		}
		out[id] = ts
	}
	return out
}

// OutOfTurn makes every faulty node broadcast noise regardless of its
// intent — the "transmit in steps in which the algorithm requires it to
// remain silent" capability of full malicious failures. Only legal under
// sim.Malicious.
type OutOfTurn struct {
	Noise []byte
}

func (o OutOfTurn) noise() []byte {
	if len(o.Noise) == 0 {
		return []byte("noise")
	}
	return o.Noise
}

// Corrupt implements sim.Adversary.
func (o OutOfTurn) Corrupt(e *sim.Exec, faulty []int) map[int][]sim.Transmission {
	out := make(map[int][]sim.Transmission, len(faulty))
	for _, id := range faulty {
		out[id] = []sim.Transmission{{To: sim.Broadcast, Payload: o.noise()}}
	}
	return out
}

// swapPayload returns the counterfactual payload: m1 if payload equals m0,
// m0 if it equals m1, and payload itself otherwise.
func swapPayload(payload, m0, m1 []byte) []byte {
	switch {
	case bytes.Equal(payload, m0):
		return m1
	case bytes.Equal(payload, m1):
		return m0
	default:
		return payload
	}
}

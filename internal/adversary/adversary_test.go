package adversary

import (
	"bytes"
	"math"
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
)

var (
	m0 = []byte("0")
	m1 = []byte("1")
)

func TestSwapPayload(t *testing.T) {
	if got := swapPayload(m0, m0, m1); !bytes.Equal(got, m1) {
		t.Fatalf("swap(0) = %q", got)
	}
	if got := swapPayload(m1, m0, m1); !bytes.Equal(got, m0) {
		t.Fatalf("swap(1) = %q", got)
	}
	if got := swapPayload([]byte("x"), m0, m1); string(got) != "x" {
		t.Fatalf("swap(other) = %q", got)
	}
}

// receiverOutput runs Simple-Malicious on K2 under the given adversary and
// failure rate, with the source message chosen by the trial seed's low bit
// (emulating the proofs' uniform source distribution), and reports whether
// the receiver decoded correctly.
func receiverCorrect(t *testing.T, adv sim.Adversary, p float64, c float64, seed uint64) bool {
	t.Helper()
	msg := m0
	if seed&1 == 1 {
		msg = m1
	}
	g := graph.TwoNode()
	proto := simplemalicious.New(g, 0, sim.MessagePassing, c)
	cfg := &sim.Config{
		Graph: g, Model: sim.MessagePassing, Fault: sim.Malicious, P: p,
		Source: 0, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed * 2654435761,
		Adversary: adv,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Success
}

// TestTheorem23AtHalf: with the equivocator at p = 1/2, the receiver's
// error is pinned at 1/2 — the sequence of delivered messages carries no
// information about the source message, no matter how long the run is.
func TestTheorem23AtHalf(t *testing.T) {
	for _, c := range []float64{2, 8, 24} { // longer runs do NOT help
		est := stat.Estimate(2000, 11, func(seed uint64) bool {
			return receiverCorrect(t, Equivocator{M0: m0, M1: m1, SourceOnly: true}, 0.5, c, seed)
		})
		if math.Abs(est.Rate()-0.5) > 0.05 {
			t.Errorf("c=%v: success %v, want ~0.5 (posterior must stay uninformative)", c, est)
		}
	}
}

// TestTheorem23AboveHalf: the slowing reduction keeps the error at 1/2 for
// p > 1/2 as well.
func TestTheorem23AboveHalf(t *testing.T) {
	for _, p := range []float64{0.6, 0.75, 0.9} {
		est := stat.Estimate(2000, 23, func(seed uint64) bool {
			return receiverCorrect(t, Equivocator{M0: m0, M1: m1, SourceOnly: true}, p, 6, seed)
		})
		if math.Abs(est.Rate()-0.5) > 0.05 {
			t.Errorf("p=%v: success %v, want ~0.5", p, est)
		}
	}
}

// TestEquivocatorHarmlessBelowHalf: below the threshold the same adversary
// loses — majority voting recovers the message almost surely (Theorem 2.2
// side of the dichotomy).
func TestEquivocatorHarmlessBelowHalf(t *testing.T) {
	// On K2, log2(n) = 1, so m = c; c = 48 gives 48 votes and a
	// P(Bin(48, 0.3) >= 24) ~ 2e-3 error per trial.
	est := stat.Estimate(1000, 37, func(seed uint64) bool {
		return receiverCorrect(t, Equivocator{M0: m0, M1: m1, SourceOnly: true}, 0.3, 48, seed)
	})
	if est.Rate() < 0.99 {
		t.Errorf("p=0.3: success %v, want ~1", est)
	}
}

// starReceiverCorrect runs Simple-Malicious on the (Δ+1)-node star of the
// Theorem 2.4 proof — source at a leaf, receiver at the root — and
// reports whether the ROOT (the node the proof argues about) decoded the
// source message.
func starReceiverCorrect(t *testing.T, delta int, p float64, c float64, seed uint64) bool {
	t.Helper()
	msg := m0
	if seed&1 == 1 {
		msg = m1
	}
	g := graph.Star(delta + 1) // root 0 has degree Δ
	source := 1                // a leaf
	proto := simplemalicious.New(g, source, sim.Radio, c)
	cfg := &sim.Config{
		Graph: g, Model: sim.Radio, Fault: sim.Malicious, P: p,
		Source: source, SourceMsg: msg,
		NewNode: proto.NewNode, Rounds: proto.Rounds(), Seed: seed*2654435761 + 17,
		Adversary: Star{M0: m0, M1: m1},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(res.Outputs[0], msg)
}

// TestTheorem24AtThreshold: at p = p* (the fixed point of p = (1−p)^(Δ+1))
// the star adversary pins the root's error at 1/2.
func TestTheorem24AtThreshold(t *testing.T) {
	for _, delta := range []int{2, 4} {
		pStar := stat.RadioThreshold(delta)
		est := stat.Estimate(2000, 51, func(seed uint64) bool {
			return starReceiverCorrect(t, delta, pStar, 6, seed)
		})
		if math.Abs(est.Rate()-0.5) > 0.05 {
			t.Errorf("Δ=%d, p*=%.4f: success %v, want ~0.5", delta, pStar, est)
		}
	}
}

// TestTheorem24AboveThreshold: slowing keeps the error at 1/2 above p*.
func TestTheorem24AboveThreshold(t *testing.T) {
	delta := 3
	pStar := stat.RadioThreshold(delta)
	for _, p := range []float64{pStar * 1.5, 0.6} {
		est := stat.Estimate(2000, 87, func(seed uint64) bool {
			return starReceiverCorrect(t, delta, p, 6, seed)
		})
		if math.Abs(est.Rate()-0.5) > 0.05 {
			t.Errorf("Δ=%d p=%.3f: success %v, want ~0.5", delta, p, est)
		}
	}
}

// TestTheorem24BelowThreshold: the same adversary is harmless below p*.
func TestTheorem24BelowThreshold(t *testing.T) {
	delta := 2
	p := stat.RadioThreshold(delta) * 0.4
	est := stat.Estimate(1000, 99, func(seed uint64) bool {
		return starReceiverCorrect(t, delta, p, 14, seed)
	})
	if est.Rate() < 0.98 {
		t.Errorf("below threshold: success %v, want ~1", est)
	}
}

func TestCrashSilences(t *testing.T) {
	e := &sim.Exec{Intents: [][]sim.Transmission{
		{{To: sim.Broadcast, Payload: []byte("x")}},
	}}
	out := Crash{}.Corrupt(e, []int{0})
	if ts, ok := out[0]; !ok || len(ts) != 0 {
		t.Fatalf("crash output = %v", out)
	}
}

func TestFlipRewritesAllIntents(t *testing.T) {
	e := &sim.Exec{Intents: [][]sim.Transmission{
		{{To: 1, Payload: []byte("a")}, {To: 2, Payload: []byte("b")}},
	}}
	out := Flip{}.Corrupt(e, []int{0})
	ts := out[0]
	if len(ts) != 2 || string(ts[0].Payload) != "X" || string(ts[1].Payload) != "X" {
		t.Fatalf("flip output = %v", ts)
	}
	if ts[0].To != 1 || ts[1].To != 2 {
		t.Fatalf("flip changed destinations: %v", ts)
	}
}

func TestOutOfTurnBroadcasts(t *testing.T) {
	e := &sim.Exec{Intents: [][]sim.Transmission{nil, nil}}
	out := OutOfTurn{}.Corrupt(e, []int{1})
	ts := out[1]
	if len(ts) != 1 || ts[0].To != sim.Broadcast {
		t.Fatalf("out-of-turn output = %v", ts)
	}
}

// A2 ablation in miniature: the equivocator strictly beats random noise at
// p = 1/2 on K2 — random corruption still lets majority voting win often,
// while equivocation pins the receiver at a coin flip.
func TestEquivocatorBeatsRandomNoise(t *testing.T) {
	noise := stat.Estimate(1500, 3, func(seed uint64) bool {
		return receiverCorrect(t, RandomNoise{Alphabet: [][]byte{m0, m1}}, 0.5, 8, seed)
	})
	equiv := stat.Estimate(1500, 3, func(seed uint64) bool {
		return receiverCorrect(t, Equivocator{M0: m0, M1: m1, SourceOnly: true}, 0.5, 8, seed)
	})
	if noise.Rate() <= equiv.Rate()+0.1 {
		t.Errorf("random noise (%v) should be much weaker than equivocation (%v)", noise, equiv)
	}
}

package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"faultcast/internal/rng"
	"faultcast/internal/stat"
)

// fakeTrial is a deterministic seed-driven trial with success rate p and a
// tunable amount of busywork, shared by every test below.
func fakeTrial(p float64) stat.Trial {
	return func(seed uint64) bool {
		return rng.New(seed).Float64() < p
	}
}

// TestRunMatchesEstimateStream: for a mix of rules, budgets, and resume
// points, every cell scheduled on the shared pool must produce exactly the
// Proportion stat.EstimateStreamFrom computes for the same parameters.
func TestRunMatchesEstimateStream(t *testing.T) {
	type cse struct {
		max   int
		seed  uint64
		start stat.Proportion
		rule  stat.StopRule
		p     float64
	}
	cases := []cse{
		{max: 500, seed: 1, p: 0.5}, // no rule: full sample
		{max: 2000, seed: 2, p: 0.95, rule: stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6}}, // early stop, decided above
		{max: 2000, seed: 3, p: 0.05, rule: stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6}}, // early stop, decided below
		{max: 4000, seed: 4, p: 0.3, rule: stat.StopRule{HalfWidth: 0.05}},                       // precision stop
		{max: 300, seed: 5, p: 0.7, start: stat.Proportion{Successes: 60, Trials: 100}},          // resumed
		{max: 100, seed: 6, p: 0.7, start: stat.Proportion{Successes: 100, Trials: 100}},         // already exhausted
		{max: 1000, seed: 7, p: 1.0, start: stat.Proportion{Successes: 64, Trials: 64},
			rule: stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6}}, // start already satisfies rule
		{max: 50, seed: 8, p: 0.5, rule: stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6, Batch: 7}}, // odd batch
	}
	want := make([]stat.Proportion, len(cases))
	cells := make([]Cell, len(cases))
	for i, c := range cases {
		c := c
		want[i] = stat.EstimateStreamFrom(c.start, c.max, c.seed, 3, c.rule,
			func() stat.Trial { return fakeTrial(c.p) })
		cells[i] = Cell{
			MaxTrials: c.max, BaseSeed: c.seed, Start: c.start, Rule: c.rule,
			NewTrial: func() stat.Trial { return fakeTrial(c.p) },
		}
	}
	for _, workers := range []int{1, 2, 7} {
		got := make([]stat.Proportion, len(cases))
		calls := make([]int, len(cases))
		if err := Run(context.Background(), workers, cells, func(i int, p stat.Proportion) {
			got[i] = p
			calls[i]++
		}); err != nil {
			t.Fatal(err)
		}
		for i := range cases {
			if calls[i] != 1 {
				t.Fatalf("workers=%d cell %d: onDone called %d times", workers, i, calls[i])
			}
			if got[i] != want[i] {
				t.Fatalf("workers=%d cell %d: shared pool %+v != stream %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSharedKeyReusesTrials: cells with one SharedKey must instantiate at
// most one Trial per worker, not one per (worker, cell).
func TestSharedKeyReusesTrials(t *testing.T) {
	var made atomic.Int64
	const workers = 3
	cells := make([]Cell, 12)
	for i := range cells {
		cells[i] = Cell{
			MaxTrials: 64, BaseSeed: uint64(i) * 1000, SharedKey: "same-plan",
			NewTrial: func() stat.Trial {
				made.Add(1)
				return fakeTrial(0.5)
			},
		}
	}
	if err := Run(context.Background(), workers, cells, nil); err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n > workers {
		t.Fatalf("NewTrial called %d times for %d workers sharing one key", n, workers)
	}
}

// TestEarlyStoppedCellYieldsWorkers: schedule one cell that stops after
// its first batch next to one that runs a long full sample; both must
// finish, and the early cell must report its decided batch count.
func TestEarlyStoppedCellYieldsWorkers(t *testing.T) {
	cells := []Cell{
		{MaxTrials: 100000, BaseSeed: 1, NewTrial: func() stat.Trial { return fakeTrial(1.0) },
			Rule: stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6}},
		{MaxTrials: 3000, BaseSeed: 2, NewTrial: func() stat.Trial { return fakeTrial(0.5) }},
	}
	got := make([]stat.Proportion, 2)
	if err := Run(context.Background(), 4, cells, func(i int, p stat.Proportion) { got[i] = p }); err != nil {
		t.Fatal(err)
	}
	if got[0].Trials >= 1000 {
		t.Fatalf("always-succeeding cell never stopped early: %+v", got[0])
	}
	if got[1].Trials != 3000 {
		t.Fatalf("full-sample cell ran %d/3000 trials", got[1].Trials)
	}
}

// TestRunCancellation: cancelling the context must stop the schedule and
// report ctx.Err without running the remaining budget.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	cells := []Cell{{
		MaxTrials: 1 << 30, BaseSeed: 1,
		Rule: stat.StopRule{HalfWidth: 1e-9}, // unreachable precision: runs "forever"
		NewTrial: func() stat.Trial {
			return func(seed uint64) bool {
				if ran.Add(1) == 100 {
					cancel()
				}
				return fakeTrial(0.5)(seed)
			}
		},
	}}
	err := Run(ctx, 4, cells, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The bound is loose: trials here are nanosecond-fast, so workers can
	// claim thousands more during the microseconds cancellation takes to
	// propagate — what matters is that the 2^30 budget was abandoned.
	if n := ran.Load(); n > 1<<20 {
		t.Fatalf("ran %d trials after cancellation", n)
	}
}

// TestCancelAtBatchBoundaryNotEmitted: when cancellation lands while a
// cell's final in-flight batch trial completes, the batch boundary is
// reached during wind-down — the truncated cell must NOT be emitted as
// decided, and Run must still report ctx.Err().
func TestCancelAtBatchBoundaryNotEmitted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := []Cell{{
		MaxTrials: 1 << 20, BaseSeed: 0,
		Rule: stat.StopRule{HalfWidth: 1e-9, Batch: 4}, // never satisfied; tiny batches
		NewTrial: func() stat.Trial {
			return func(seed uint64) bool {
				if seed == 3 { // last trial of the first batch
					cancel()
				}
				return fakeTrial(0.5)(seed)
			}
		},
	}}
	emitted := 0
	err := Run(ctx, 1, cells, func(int, stat.Proportion) { emitted++ })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted != 0 {
		t.Fatalf("truncated cell was emitted as decided (%d emits)", emitted)
	}
}

// TestManyCellsManyWorkers is a stress shape: more cells than workers,
// mixed rules, run under the race detector in CI.
func TestManyCellsManyWorkers(t *testing.T) {
	const n = 40
	cells := make([]Cell, n)
	var mu sync.Mutex
	seen := map[int]stat.Proportion{}
	for i := range cells {
		i := i
		rule := stat.StopRule{}
		if i%2 == 0 {
			rule = stat.StopRule{UseTarget: true, Target: 0.5, Z: 2.6}
		}
		cells[i] = Cell{
			MaxTrials: 200 + i, BaseSeed: uint64(i) * 7919, Rule: rule,
			NewTrial: func() stat.Trial { return fakeTrial(float64(i) / n) },
		}
	}
	if err := Run(context.Background(), 5, cells, func(i int, p stat.Proportion) {
		mu.Lock()
		seen[i] = p
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d cells reported", len(seen), n)
	}
	// Re-run: every cell must reproduce exactly (determinism under load).
	if err := Run(context.Background(), 11, cells, func(i int, p stat.Proportion) {
		mu.Lock()
		if seen[i] != p {
			t.Errorf("cell %d nondeterministic: %+v vs %+v", i, seen[i], p)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateCell(t *testing.T) {
	p := EstimateCell(3, Cell{MaxTrials: 400, BaseSeed: 9, NewTrial: func() stat.Trial { return fakeTrial(0.25) }})
	if p.Trials != 400 {
		t.Fatalf("ran %d/400 trials", p.Trials)
	}
	want := stat.EstimateStream(400, 9, 2, stat.StopRule{}, func() stat.Trial { return fakeTrial(0.25) })
	if p != want {
		t.Fatalf("EstimateCell %+v != stream %+v", p, want)
	}
}

// TestProbeObservation pins the Probe contract: per-batch stats fire at
// every batch boundary, their trial/success sums reconcile exactly with
// the cell's final tally, timing fields are populated, and — the
// determinism half — attaching a probe changes nothing about the result.
func TestProbeObservation(t *testing.T) {
	mkCells := func(probe func(BatchStat)) []Cell {
		return []Cell{
			{
				MaxTrials: 500, BaseSeed: 1,
				// An enabled rule that cannot trigger in 500 trials, so the
				// stream runs in 64-trial batches to budget exhaustion.
				Rule:     stat.StopRule{HalfWidth: 0.0001, Batch: 64},
				NewTrial: func() stat.Trial { return fakeTrial(0.5) },
				Probe:    probe,
			},
			{
				MaxTrials: 300, BaseSeed: 9,
				Start:    stat.Proportion{Successes: 60, Trials: 100},
				Rule:     stat.StopRule{Batch: 50},
				NewTrial: func() stat.Trial { return fakeTrial(0.7) },
				Probe:    probe,
			},
		}
	}
	run := func(cells []Cell) []stat.Proportion {
		got := make([]stat.Proportion, len(cells))
		if err := Run(context.Background(), 4, cells, func(i int, p stat.Proportion) { got[i] = p }); err != nil {
			t.Fatal(err)
		}
		return got
	}

	var mu sync.Mutex
	var stats []BatchStat
	probed := run(mkCells(func(bs BatchStat) {
		mu.Lock()
		stats = append(stats, bs)
		mu.Unlock()
	}))
	bare := run(mkCells(nil))
	for i := range bare {
		if probed[i] != bare[i] {
			t.Fatalf("cell %d: probed tally %+v != unprobed %+v", i, probed[i], bare[i])
		}
	}

	// Reconcile the probe stream against the final tallies. The resume
	// prefix (cell 1's Start) is prior work, never reported.
	trials := map[int]int{}
	succ := map[int]int{}
	for _, bs := range stats {
		if bs.Cell != 0 && bs.Cell != 1 {
			t.Fatalf("probe reported unknown cell %d", bs.Cell)
		}
		if bs.Trials <= 0 {
			t.Fatalf("empty batch reported: %+v", bs)
		}
		if bs.Engine < 0 || bs.Wall <= 0 {
			t.Fatalf("unpopulated timing: %+v", bs)
		}
		trials[bs.Cell] += bs.Trials
		succ[bs.Cell] += bs.Successes
	}
	if trials[0] != probed[0].Trials || succ[0] != probed[0].Successes {
		t.Fatalf("cell 0: probe saw %d/%d, tally %+v", succ[0], trials[0], probed[0])
	}
	wantTrials := probed[1].Trials - 100 // minus the resumed prefix
	wantSucc := probed[1].Successes - 60
	if trials[1] != wantTrials || succ[1] != wantSucc {
		t.Fatalf("cell 1: probe saw %d/%d, want %d/%d", succ[1], trials[1], wantSucc, wantTrials)
	}
	// Batch sizing is probe-independent: cell 0 runs to budget with
	// batch 64, partitioned the same way as without a probe
	// (500 = 7×64 + 52).
	var c0 int
	for _, bs := range stats {
		if bs.Cell == 0 {
			c0++
		}
	}
	if c0 != 8 {
		t.Fatalf("cell 0 reported %d batches, want 8", c0)
	}
}

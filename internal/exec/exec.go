// Package exec schedules Monte-Carlo trial streams onto one bounded
// worker pool shared across many concurrent estimation cells.
//
// The previous design gave every estimate its own pool: each call to
// stat.EstimateStream spun up worker goroutines, ran one cell to its
// stopping point, and tore the pool down — so a parameter sweep over k
// cells paid k pool lifecycles, and every cell's stragglers (the tail of
// a batch, the wind-down after an early stop) left all other cells'
// work waiting. This package inverts that: callers submit all cells at
// once, a single pool of workers multiplexes across them, and the
// moment one cell's interval is decided its workers flow to the cells
// still undecided. Intra-cell work is still batched (stopping decisions
// happen only at batch boundaries), but batches from different cells
// interleave freely.
//
// Determinism contract — identical to stat.EstimateStreamFrom's: the
// trials a cell executes are always a prefix of its seed sequence
// BaseSeed+Start.Trials, BaseSeed+Start.Trials+1, ... whose length is
// decided only at fixed batch boundaries, so each cell's resulting
// Proportion is a pure function of (cell spec), never of the worker
// count, the co-scheduled cells, or scheduling order. Success counting
// is order-independent, so cross-cell interleaving cannot change any
// result bit.
package exec

import (
	"context"
	"math/bits"
	"runtime"
	"strconv"
	"sync"
	"time"

	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
)

// BatchStat is the per-batch timing attribution delivered to Cell.Probe:
// where one folded batch's wall-clock went. Engine is the time spent
// inside trial/block calls, summed over every worker that contributed to
// the batch — with several workers on one batch it can exceed Wall, the
// open-to-fold span of the batch; the difference between Wall and
// Engine/workers is scheduler overhead plus cross-cell interference.
type BatchStat struct {
	Cell      int // index of the cell in the schedule
	Trials    int
	Successes int
	Engine    time.Duration
	Wall      time.Duration
}

// Cell is one schedulable estimation stream: up to MaxTrials trials with
// seeds BaseSeed+i, resumed from Start, stopped early once Rule is
// satisfied at a batch boundary.
type Cell struct {
	// MaxTrials is the total trial budget, including Start.Trials.
	MaxTrials int
	// BaseSeed is the seed of trial 0; trial i runs with BaseSeed+i.
	BaseSeed uint64
	// Start is the resume point: it is taken to be the outcome of trials
	// 0..Start.Trials-1, and new trials continue the seed sequence there.
	// A Start that already satisfies Rule (or exhausts MaxTrials) completes
	// the cell with zero new trials — the cache-hit fast path.
	Start stat.Proportion
	// Rule is the early-stopping rule; the zero value runs all trials.
	Rule stat.StopRule
	// Bucket, when positive and Rule is disabled, folds trials in
	// Bucket-sized batches instead of one whole-budget batch. Batch
	// decomposition never changes an un-ruled result (there are no stop
	// decisions, and success counting is order-free); it only sets the
	// granularity OnBatch observes — a tally store persists un-ruled
	// streams at the same bucket size ruled ones replay at. Ignored when
	// Rule is enabled: the rule's own batch governs there.
	Bucket int
	// OnBatch, when non-nil, observes every batch the cell folds in, in
	// trial order: the batch's own trial and success counts, called once
	// per batch boundary before the stop decision, serialized per cell
	// (under the scheduler lock — keep it cheap; buffer, don't block).
	// Batches of a cell later abandoned by cancellation are still
	// reported; consumers that persist must gate on cell completion.
	// The resume prefix in Start is prior work, not a fold — it is never
	// reported.
	OnBatch func(trials, successes int)
	// Probe, when non-nil, observes per-batch timing attribution (see
	// BatchStat), called at the same boundary as OnBatch, after it, under
	// the scheduler lock — keep it cheap. Timing is gathered only when a
	// probe is attached, and it is purely observational: batch sizes,
	// seeds, stop decisions, and tallies are identical with and without
	// it.
	Probe func(BatchStat)
	// Trace, when non-nil, is the parent span for dispatcher-level
	// telemetry. The in-process pool ignores it (Probe already attributes
	// its batches); remote dispatchers hang one child span per shard off
	// it, carrying worker identity, retries, and the worker-side subtree.
	Trace *telemetry.Span
	// NewTrial builds a worker-private trial function. It is called at
	// most once per (worker, SharedKey) pair, so per-trial state — a
	// reusable engine runner — persists across every batch a worker
	// executes for this cell.
	NewTrial stat.TrialMaker
	// NewBlock, when non-nil, builds a worker-private block-trial function
	// whose verdicts are bit-identical to NewTrial's over the same seeds
	// (the lane-transposed engine core). Workers then claim trials in
	// stat.BlockWidth-sized chunks, clipped to batch boundaries — so batch
	// totals, stop decisions, and the final Proportion are unchanged; only
	// the per-trial cost drops. NewTrial must still be set: dispatchers
	// without block support (and failover paths) fall back to it.
	NewBlock stat.TrialBlockMaker
	// SharedKey, when non-empty, lets a worker reuse one Trial across all
	// cells carrying the same key. Cells may share a key only when their
	// NewTrial functions are interchangeable — e.g. cells compiled from
	// the same plan, whose trials differ only in the seed argument.
	SharedKey string
	// Scenario is an opaque wire description of the cell's computation,
	// consumed by remote Dispatchers (the cluster coordinator ships it to
	// workers, which recompile the plan there). The in-process Dispatcher
	// ignores it; NewTrial remains authoritative locally — including for a
	// remote dispatcher's failover path.
	Scenario any
}

// Run executes the cells on one pool of `workers` goroutines (<= 0 means
// GOMAXPROCS) and calls onDone exactly once per completed cell with its
// final Proportion. onDone calls are serialized (no two run at once) and
// arrive in completion order, from worker goroutines, while other cells
// are still running — a streaming consumer can forward them immediately.
//
// Run blocks until every cell completes or ctx is cancelled. On
// cancellation it stops claiming new trials, waits for in-flight trials
// to finish, and returns ctx.Err(); cells not already decided at that
// point are abandoned unreported — a truncated estimate is never
// emitted as a decided one.
func Run(ctx context.Context, workers int, cells []Cell, onDone func(i int, p stat.Proportion)) error {
	if len(cells) == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &sched{cells: make([]cellState, len(cells)), onDone: onDone}
	s.cond = sync.NewCond(&s.mu)
	var immediate []int
	for i := range cells {
		c := &cells[i]
		cs := &s.cells[i]
		cs.spec = c
		cs.trials = c.Start.Trials
		cs.successes = c.Start.Successes
		cs.next = c.Start.Trials
		if cs.trials >= c.MaxTrials || (c.Rule.Enabled() && c.Rule.Done(stat.Proportion{Successes: cs.successes, Trials: cs.trials})) {
			cs.done = true
			immediate = append(immediate, i)
			continue
		}
		cs.batchEnd = cs.next + batchSize(c, cs.trials)
		if c.Probe != nil {
			cs.opened = time.Now()
		}
		s.active++
	}
	for _, i := range immediate {
		s.emit(i, stat.Proportion{Successes: s.cells[i].successes, Trials: s.cells[i].trials})
	}
	if s.active == 0 {
		return ctx.Err()
	}

	var stopWatch chan struct{}
	if ctx.Done() != nil {
		stopWatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cancelled = true
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stopWatch:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w)
		}(w)
	}
	wg.Wait()
	if stopWatch != nil {
		close(stopWatch)
	}
	s.mu.Lock()
	abandoned := s.active
	s.mu.Unlock()
	if abandoned > 0 {
		return ctx.Err()
	}
	return nil
}

// EstimateCell runs a single cell to completion — the Plan.Estimate path,
// now just a one-cell schedule on the shared machinery.
func EstimateCell(workers int, c Cell) stat.Proportion {
	var out stat.Proportion
	// Background context: a lone estimate has no cancellation surface.
	_ = Run(context.Background(), workers, []Cell{c}, func(_ int, p stat.Proportion) { out = p })
	return out
}

// batchSize mirrors stat.StopRule's batching: with a stopping rule,
// trials run in fixed batches (Rule.Batch, default 32) so the executed
// count is machine-independent; without one, the whole remaining budget
// is a single batch unless Cell.Bucket asks for observation granularity.
func batchSize(c *Cell, trials int) int {
	rest := c.MaxTrials - trials
	b := c.Rule.Batch
	if !c.Rule.Enabled() {
		if c.Bucket <= 0 {
			return rest
		}
		b = c.Bucket
	}
	if b <= 0 {
		b = 32
	}
	if b > rest {
		b = rest
	}
	return b
}

// cellState is the scheduler-private progress of one cell. trials and
// successes are decided totals (through the last completed batch,
// including the cell's Start); the open batch accumulates separately and
// is folded in only when its last trial lands.
type cellState struct {
	spec      *Cell
	done      bool
	trials    int
	successes int
	batchEnd  int // open batch: trial indices [next-inflight..batchEnd)
	next      int // next unclaimed trial index
	inflight  int // claimed, not yet reported
	batchSucc int
	// Probe-only timing state: engineNs accumulates in-engine time of the
	// open batch, opened is when it opened. Untouched without a Probe.
	engineNs int64
	opened   time.Time
}

type sched struct {
	mu        sync.Mutex
	cond      *sync.Cond
	cells     []cellState
	active    int // cells not done
	cancelled bool

	emitMu sync.Mutex
	onDone func(i int, p stat.Proportion)
}

func (s *sched) emit(i int, p stat.Proportion) {
	if s.onDone == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	s.onDone(i, p)
}

// worker claims work from any cell with unclaimed trials, preferring the
// cell at its cursor (workers start spread across cells and stay with a
// cell while it has work — the work-stealing shape: a worker scans
// forward and takes from the next busy cell only when its own runs dry or
// stops early). Cells with a NewBlock are claimed in stat.BlockWidth-sized
// chunks (clipped to the open batch), others one trial at a time; either
// way the claimed range folds into the same batch totals, so results are
// identical.
func (s *sched) worker(w int) {
	trials := map[string]stat.Trial{}
	blocks := map[string]stat.TrialBlock{}
	cursor := w % len(s.cells)
	for {
		s.mu.Lock()
		var cs *cellState
		ci := -1
		for !s.cancelled && s.active > 0 {
			n := len(s.cells)
			for k := 0; k < n; k++ {
				i := (cursor + k) % n
				c := &s.cells[i]
				if !c.done && c.next < c.batchEnd {
					cs, ci = c, i
					cursor = i
					break
				}
			}
			if cs != nil {
				break
			}
			// No claimable trial anywhere: either every open batch is
			// fully in flight (its completion will open the next one and
			// broadcast) or all cells are done. Sleep until then.
			s.cond.Wait()
		}
		if cs == nil {
			s.mu.Unlock()
			return
		}
		spec := cs.spec
		claim := 1
		if spec.NewBlock != nil {
			claim = cs.batchEnd - cs.next
			if claim > stat.BlockWidth {
				claim = stat.BlockWidth
			}
		}
		seedIdx := cs.next
		cs.next += claim
		cs.inflight += claim
		s.mu.Unlock()

		key := spec.SharedKey
		if key == "" {
			key = "#" + strconv.Itoa(ci)
		}
		var engStart time.Time
		if spec.Probe != nil {
			engStart = time.Now()
		}
		var succ int
		if spec.NewBlock != nil {
			block := blocks[key]
			if block == nil {
				block = spec.NewBlock()
				blocks[key] = block
			}
			succ = bits.OnesCount64(block(spec.BaseSeed+uint64(seedIdx), claim))
		} else {
			trial := trials[key]
			if trial == nil {
				trial = spec.NewTrial()
				trials[key] = trial
			}
			if trial(spec.BaseSeed + uint64(seedIdx)) {
				succ = 1
			}
		}

		var engNs int64
		if spec.Probe != nil {
			engNs = time.Since(engStart).Nanoseconds()
		}

		s.mu.Lock()
		cs.inflight -= claim
		cs.batchSucc += succ
		cs.engineNs += engNs
		var finished *stat.Proportion
		if cs.next == cs.batchEnd && cs.inflight == 0 {
			// Batch boundary: fold it in and decide.
			if spec.OnBatch != nil {
				spec.OnBatch(cs.batchEnd-cs.trials, cs.batchSucc)
			}
			if spec.Probe != nil {
				spec.Probe(BatchStat{
					Cell:      ci,
					Trials:    cs.batchEnd - cs.trials,
					Successes: cs.batchSucc,
					Engine:    time.Duration(cs.engineNs),
					Wall:      time.Since(cs.opened),
				})
				cs.engineNs = 0
				cs.opened = time.Now()
			}
			cs.trials = cs.batchEnd
			cs.successes += cs.batchSucc
			cs.batchSucc = 0
			p := stat.Proportion{Successes: cs.successes, Trials: cs.trials}
			switch {
			case cs.trials >= spec.MaxTrials || (spec.Rule.Enabled() && spec.Rule.Done(p)):
				cs.done = true
				s.active--
				finished = &p
			case s.cancelled:
				// Wind-down: the cell is mid-stream, neither budget nor
				// rule satisfied. Close it WITHOUT emitting — it stays in
				// the active count, so Run reports ctx.Err() instead of
				// passing a truncated estimate off as a decided one.
				cs.done = true
			default:
				cs.batchEnd = cs.next + batchSize(spec, cs.trials)
			}
			// Either way there is news: fresh trials to claim, or one
			// fewer active cell (possibly zero, releasing all waiters).
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		if finished != nil {
			s.emit(ci, *finished)
		}
	}
}

package exec

import (
	"context"
	"testing"

	"faultcast/internal/stat"
)

// synthTrial mirrors the deterministic hash trial of the stat tests.
func synthTrial(threshold uint64) stat.Trial {
	return func(seed uint64) bool {
		z := seed + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z^(z>>31) < threshold
	}
}

// TestRunShardWorkerCountIndependent pins the shard primitive's
// determinism: identical tallies for 1, 3, and 16 workers, including a
// ragged final bucket.
func TestRunShardWorkerCountIndependent(t *testing.T) {
	maker := func() stat.Trial { return synthTrial(1 << 63) }
	want := RunShard(1, 1000, 100, 32, maker)
	if err := want.Check(); err != nil {
		t.Fatalf("reference tally invalid: %v", err)
	}
	if len(want.Successes) != 4 {
		t.Fatalf("100 trials / batch 32: %d buckets", len(want.Successes))
	}
	for _, workers := range []int{3, 16, 0} {
		got := RunShard(workers, 1000, 100, 32, maker)
		if got.Trials != want.Trials || got.Batch != want.Batch {
			t.Fatalf("workers=%d: shape %+v, want %+v", workers, got, want)
		}
		for i := range want.Successes {
			if got.Successes[i] != want.Successes[i] {
				t.Fatalf("workers=%d: bucket %d = %d, want %d", workers, i, got.Successes[i], want.Successes[i])
			}
		}
	}
}

// TestRunShardMatchesSequentialLoop: buckets must count exactly the
// trials a plain loop over the seed range counts.
func TestRunShardMatchesSequentialLoop(t *testing.T) {
	trial := synthTrial(1 << 62)
	const base, trials, batch = 77, 90, 25
	want := make([]int, 4)
	for i := 0; i < trials; i++ {
		if trial(base + uint64(i)) {
			want[i/batch]++
		}
	}
	got := RunShard(4, base, trials, batch, func() stat.Trial { return trial })
	for i := range want {
		if got.Successes[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (tally %+v)", i, got.Successes[i], want[i], got)
		}
	}
}

func TestRunShardDegenerate(t *testing.T) {
	maker := func() stat.Trial { return synthTrial(1 << 63) }
	if got := RunShard(4, 0, 0, 32, maker); got.Trials != 0 || len(got.Successes) != 0 {
		t.Fatalf("zero-trial shard: %+v", got)
	}
	// batch <= 0 buckets the whole shard as one.
	got := RunShard(4, 5, 40, 0, maker)
	if got.Batch != 40 || len(got.Successes) != 1 {
		t.Fatalf("unbatched shard: %+v", got)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestLocalDispatcherIsRun: the Local dispatcher is Run verbatim.
func TestLocalDispatcherIsRun(t *testing.T) {
	cells := []Cell{{
		MaxTrials: 256,
		BaseSeed:  42,
		Rule:      stat.StopRule{HalfWidth: 0.02},
		NewTrial:  func() stat.Trial { return synthTrial(1 << 61) },
	}}
	var direct, viaLocal stat.Proportion
	if err := Run(context.Background(), 4, cells, func(_ int, p stat.Proportion) { direct = p }); err != nil {
		t.Fatal(err)
	}
	if err := (Local{}).Run(context.Background(), 4, cells, func(_ int, p stat.Proportion) { viaLocal = p }); err != nil {
		t.Fatal(err)
	}
	if direct != viaLocal {
		t.Fatalf("Local %+v != Run %+v", viaLocal, direct)
	}
}

// synthBlock is the block-trial twin of synthTrial: same per-seed verdict,
// packed 64 lanes to the word.
func synthBlock(threshold uint64) stat.TrialBlock {
	trial := synthTrial(threshold)
	return func(baseSeed uint64, count int) uint64 {
		var word uint64
		for i := 0; i < count; i++ {
			if trial(baseSeed + uint64(i)) {
				word |= 1 << uint(i)
			}
		}
		return word
	}
}

// TestRunShardBlocksMatchesRunShard pins the block shard primitive to the
// per-trial one bucket for bucket, including batch sizes that are not
// multiples of the block width (so verdict words straddle buckets) and
// ragged final blocks.
func TestRunShardBlocksMatchesRunShard(t *testing.T) {
	newTrial := func() stat.Trial { return synthTrial(1 << 62) }
	newBlock := func() stat.TrialBlock { return synthBlock(1 << 62) }
	cases := []struct{ trials, batch int }{
		{1, 0}, {70, 1}, {70, 7}, {150, 48}, {128, 64}, {333, 100}, {64, 0},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 3, 8} {
			want := RunShard(workers, 99, c.trials, c.batch, newTrial)
			got := RunShardBlocks(workers, 99, c.trials, c.batch, newBlock)
			if got.Trials != want.Trials || got.Batch != want.Batch {
				t.Fatalf("trials=%d batch=%d workers=%d: shape %+v vs %+v", c.trials, c.batch, workers, got, want)
			}
			for i := range want.Successes {
				if got.Successes[i] != want.Successes[i] {
					t.Fatalf("trials=%d batch=%d workers=%d bucket %d: blocks=%d per-trial=%d",
						c.trials, c.batch, workers, i, got.Successes[i], want.Successes[i])
				}
			}
		}
	}
}

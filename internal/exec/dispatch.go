package exec

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"faultcast/internal/stat"
)

// Dispatcher abstracts where a schedule of estimation cells executes: the
// in-process worker pool (Local) or a fleet of remote workers behind a
// cluster coordinator. Plan.Estimate and SweepPlan.Run are written
// against this interface, so the two are interchangeable — and because
// every implementation must honor the batch-boundary determinism
// contract, switching dispatchers can never change a result bit, only
// where the trials burn CPU.
//
// Implementations must mirror Run's semantics exactly: onDone called
// once per completed cell, serialized, in completion order, from
// whatever goroutine finished the cell; on ctx cancellation undecided
// cells are abandoned unreported and ctx.Err() is returned.
type Dispatcher interface {
	Run(ctx context.Context, workers int, cells []Cell, onDone func(i int, p stat.Proportion)) error
}

// Local is the in-process Dispatcher: the bounded work-stealing pool of
// Run, unchanged. It is the zero-configuration default everywhere a
// dispatcher is accepted.
type Local struct{}

// Run implements Dispatcher on the in-process pool.
func (Local) Run(ctx context.Context, workers int, cells []Cell, onDone func(i int, p stat.Proportion)) error {
	return Run(ctx, workers, cells, onDone)
}

// RunShard executes trials [0, trials) with seeds baseSeed+0 ..
// baseSeed+trials-1 on a private pool of `workers` goroutines (<= 0 means
// GOMAXPROCS) and tallies successes per batch-sized bucket — the
// worker-side primitive of the cluster shard protocol, also used by the
// coordinator's local-failover path. batch <= 0 buckets the whole shard
// as one.
//
// The tally is a pure function of (newTrial, baseSeed, trials, batch):
// bucket membership is fixed by trial index and addition commutes, so
// neither the worker count nor scheduling order can change a bucket.
// There is deliberately no stopping rule here — a shard cannot know the
// merged prefix it will land in, so stop decisions belong exclusively to
// the coordinator's replay (stat.Replay).
func RunShard(workers int, baseSeed uint64, trials, batch int, newTrial stat.TrialMaker) stat.Tally {
	if trials <= 0 {
		return stat.Tally{}
	}
	if batch <= 0 || batch > trials {
		batch = trials
	}
	t := stat.Tally{Trials: trials, Batch: batch}
	buckets := make([]atomic.Int64, (trials+batch-1)/batch)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trial := newTrial()
			for {
				i := int(next.Add(1) - 1)
				if i >= trials {
					return
				}
				if trial(baseSeed + uint64(i)) {
					buckets[i/batch].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	t.Successes = make([]int, len(buckets))
	for i := range buckets {
		t.Successes[i] = int(buckets[i].Load())
	}
	return t
}

// RunShardBlocks is RunShard for block trials: the same shard tally —
// bucket membership fixed by trial index — computed with trials claimed
// in stat.BlockWidth-sized chunks and each block's verdict word split
// across the bucket boundaries it straddles. Because a TrialBlock's
// verdicts are bit-identical to the per-trial ones over the same seeds,
// the returned Tally equals RunShard's exactly.
func RunShardBlocks(workers int, baseSeed uint64, trials, batch int, newBlock stat.TrialBlockMaker) stat.Tally {
	if trials <= 0 {
		return stat.Tally{}
	}
	if batch <= 0 || batch > trials {
		batch = trials
	}
	t := stat.Tally{Trials: trials, Batch: batch}
	buckets := make([]atomic.Int64, (trials+batch-1)/batch)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (trials + stat.BlockWidth - 1) / stat.BlockWidth; workers > max {
		workers = max
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			block := newBlock()
			for {
				i := int(next.Add(stat.BlockWidth) - stat.BlockWidth)
				if i >= trials {
					return
				}
				k := trials - i
				if k > stat.BlockWidth {
					k = stat.BlockWidth
				}
				word := block(baseSeed+uint64(i), k)
				// Split the verdict word across the buckets it spans.
				for off := 0; off < k; {
					b := (i + off) / batch
					lim := (b+1)*batch - i
					if lim > k {
						lim = k
					}
					mask := ^uint64(0)
					if lim < 64 {
						mask = 1<<uint(lim) - 1
					}
					mask &^= 1<<uint(off) - 1
					buckets[b].Add(int64(bits.OnesCount64(word & mask)))
					off = lim
				}
			}
		}()
	}
	wg.Wait()
	t.Successes = make([]int, len(buckets))
	for i := range buckets {
		t.Successes[i] = int(buckets[i].Load())
	}
	return t
}

// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a core requirement of the experiment harness: a run is
// identified by (configuration, seed), and re-running it must produce
// bit-identical fault patterns regardless of engine (sequential or
// concurrent) and regardless of how many trials execute in parallel. To get
// that, every consumer of randomness (the fault sampler, each adversary,
// each Monte-Carlo trial) owns a private stream derived from a master seed
// via Split, and no stream is ever shared across goroutines.
//
// The generator is xoshiro256** with splitmix64 seeding — both are public
// domain algorithms with well-studied statistical behaviour, implemented
// here from the reference descriptions so the module stays dependency-free.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; use Split to derive independent streams per goroutine.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand seeds into full generator state, as recommended by the
// xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent-looking streams; the all-zero internal state is impossible by
// construction.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway so the invariant is local.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives a new Source whose stream is independent of the parent's
// future output. It consumes one value from the parent, so repeated splits
// yield distinct children deterministically.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values p <= 0 always return
// false and p >= 1 always return true.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliMask fills mask — a bitset over ids 0..n-1, 64 ids per word —
// with n independent Bernoulli(p) draws: bit i is set iff draw i
// succeeded. The draws are identical, in number and order, to n successive
// Bernoulli(p) calls on the same Source, so the simulator's word-parallel
// fault sampler produces bit-identical fault patterns to the scalar
// per-node loop it replaces (the differential tests rely on this).
//
// mask must have at least (n+63)/64 words; it is zeroed first.
func (r *Source) BernoulliMask(p float64, n int, mask []uint64) {
	words := (n + 63) >> 6
	for i := 0; i < words; i++ {
		mask[i] = 0
	}
	if n <= 0 || p <= 0 {
		return // Bernoulli(p<=0) consumes no randomness and is always false
	}
	if p >= 1 {
		// Bernoulli(p>=1) consumes no randomness and is always true.
		for i := 0; i < n; i++ {
			mask[i>>6] |= 1 << (uint(i) & 63)
		}
		return
	}
	for i := 0; i < n; i++ {
		// Inlined Float64() < p with the p-range branches hoisted.
		if float64(r.Uint64()>>11)/(1<<53) < p {
			mask[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Derive maps a (master seed, key) pair to a base seed via a splitmix64
// chain over the master and an FNV-1a fold of the key. The sweep layer
// derives every cell's trial-stream seed this way — Derive(sweepSeed,
// cellKey) — so that cell seeds are decorrelated from each other and from
// the master, yet fully determined by (master, key): re-running a sweep
// reproduces every cell bit-identically, and reordering, adding, or
// removing cells never changes the seeds of the others (the property the
// harness's old o.Seed^cellSeed XOR scheme lacked: XOR let distinct cells
// collide and correlated their streams with the master's).
func Derive(master uint64, key string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	state := master
	splitmix64(&state) // decorrelate from the raw master value
	state ^= h
	return splitmix64(&state)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Binomial samples the number of successes among n Bernoulli(p) trials.
// It is O(n); the simulator only uses it for modest n (per-round fault
// counts in tests), so a fancier sampler is not warranted.
func (r *Source) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Shuffle randomizes the order of the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("stream diverged at %d: %d != %d", i, x, y)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded stream repeated values: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other and from the parent's stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children collided at step %d", i)
		}
	}
	// Splitting must be deterministic given the parent seed.
	p2 := New(7)
	d1 := p2.Split()
	p2.Split()
	e1 := New(7).Split()
	if d1.Uint64() != e1.Uint64() {
		t.Fatal("split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(6)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) rate %v off by more than 1%%", p, rate)
		}
	}
}

// TestBernoulliMaskMatchesScalar is the batch sampler's core contract: the
// mask must encode exactly the draws that n successive Bernoulli calls
// would make, leaving the stream in the identical state afterwards.
func TestBernoulliMaskMatchesScalar(t *testing.T) {
	for _, p := range []float64{-0.5, 0, 1e-9, 0.25, 0.5, 0.999, 1, 1.5} {
		for _, n := range []int{0, 1, 63, 64, 65, 200} {
			a, b := New(uint64(n)*31+1), New(uint64(n)*31+1)
			mask := make([]uint64, (n+63)/64)
			a.BernoulliMask(p, n, mask)
			for i := 0; i < n; i++ {
				want := b.Bernoulli(p)
				got := mask[i/64]&(1<<(uint(i)%64)) != 0
				if got != want {
					t.Fatalf("p=%v n=%d: draw %d: mask=%v scalar=%v", p, n, i, got, want)
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("p=%v n=%d: streams diverged after sampling", p, n)
			}
		}
	}
}

// TestBernoulliMaskReusesWords: a dirty mask must be fully zeroed before
// sampling, including high words beyond the last id.
func TestBernoulliMaskReusesWords(t *testing.T) {
	r := New(3)
	mask := []uint64{^uint64(0), ^uint64(0)}
	r.BernoulliMask(0, 100, mask)
	if mask[0] != 0 || mask[1] != 0 {
		t.Fatalf("p=0 mask not zeroed: %x %x", mask[0], mask[1])
	}
	for i := range mask {
		mask[i] = ^uint64(0)
	}
	r.BernoulliMask(1, 70, mask)
	if mask[0] != ^uint64(0) || mask[1] != (1<<6)-1 {
		t.Fatalf("p=1 mask wrong: %x %x", mask[0], mask[1])
	}
}

func TestIntnRange(t *testing.T) {
	r := New(8)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(9).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(10)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v deviates from 0.1", i, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(12)
	const n, p, trials = 40, 0.3, 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 0.2 {
		t.Fatalf("Binomial(%d,%v) mean %v far from %v", n, p, mean, n*p)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	n := 0
	for i := 0; i < b.N; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	_ = n
}

func TestDeriveDeterministic(t *testing.T) {
	if rngDerive := Derive(7, "cell-a"); rngDerive != Derive(7, "cell-a") {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(7, "cell-a") == Derive(7, "cell-b") {
		t.Fatal("distinct keys collided")
	}
	if Derive(7, "cell-a") == Derive(8, "cell-a") {
		t.Fatal("distinct masters collided")
	}
}

// TestDeriveDecorrelated: seeds derived for a batch of related keys must
// yield pairwise-distinct values and streams that do not track the master
// (the failure mode of the old master^cellConst XOR scheme, where
// master+1 shifted every cell's stream in lockstep).
func TestDeriveDecorrelated(t *testing.T) {
	seen := map[uint64]string{}
	for master := uint64(0); master < 4; master++ {
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("graph:line:8|p:%d", i)
			s := Derive(master, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%q) and %q", master, key, prev)
			}
			seen[s] = fmt.Sprintf("(%d,%q)", master, key)
		}
	}
}

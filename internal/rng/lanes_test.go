package rng

import (
	"testing"
)

// TestBernoulliWordsMatchesScalarStreams is the RNG contract the lane-
// transposed simulation core's bit-identity rests on: for every lane L,
// the draw stream produced by BernoulliWords is identical — in value,
// number, and order — to Bernoulli(p) calls on an independent scalar
// Source seeded like that lane. The test drives both sides through many
// rounds of varying width, across the full p range including the
// no-consume edge cases, and cross-checks the residual streams afterwards
// so a hidden extra draw on either side would be caught.
func TestBernoulliWordsMatchesScalarStreams(t *testing.T) {
	ps := []float64{0, -0.5, 1e-12, 0.05, 0.25, 0.5, 0.75, 0.97, 1 - 1e-12, 1, 1.5}
	// Round widths exercise n=0, sub-word, and multi-step accumulation.
	widths := []int{17, 0, 1, 64, 5, 33}
	for _, p := range ps {
		var seeds [LaneCount]uint64
		scalars := make([]*Source, LaneCount)
		for lane := range seeds {
			seeds[lane] = 0x1234_5678_9abc_def0 + uint64(lane)*0x9e3779b97f4a7c15
			scalars[lane] = New(seeds[lane])
		}
		lanes := NewLanes(&seeds)
		out := make([]uint64, 64)
		for step, n := range widths {
			lanes.BernoulliWords(p, n, out)
			// The transposed sampler draws lane-major; the scalar reference
			// draws n values per lane. Compare draw i of lane L.
			for lane := 0; lane < LaneCount; lane++ {
				for i := 0; i < n; i++ {
					want := scalars[lane].Bernoulli(p)
					got := out[i]>>uint(lane)&1 == 1
					if got != want {
						t.Fatalf("p=%v step=%d lane=%d draw=%d: lanes=%v scalar=%v", p, step, lane, i, got, want)
					}
				}
			}
		}
		// Residual-stream check: if either side consumed a different number
		// of draws (e.g. a spurious draw at p<=0 or p>=1), the next raw
		// outputs diverge.
		lanes.BernoulliWords(0.5, 4, out)
		for lane := 0; lane < LaneCount; lane++ {
			for i := 0; i < 4; i++ {
				want := scalars[lane].Bernoulli(0.5)
				got := out[i]>>uint(lane)&1 == 1
				if got != want {
					t.Fatalf("p=%v residual lane=%d draw=%d: lanes=%v scalar=%v (draw counts diverged)", p, lane, i, got, want)
				}
			}
		}
	}
}

// TestLanesSeedReuse pins that reseeding a bank in place is bit-identical
// to a fresh bank — the lane runner reuses one bank across trial blocks.
func TestLanesSeedReuse(t *testing.T) {
	var a, b [LaneCount]uint64
	for lane := range a {
		a[lane] = uint64(lane) * 77
		b[lane] = uint64(lane)*131 + 5
	}
	reused := NewLanes(&a)
	scratch := make([]uint64, 8)
	reused.BernoulliWords(0.3, 8, scratch)
	reused.Seed(&b)
	fresh := NewLanes(&b)
	got := make([]uint64, 16)
	want := make([]uint64, 16)
	reused.BernoulliWords(0.42, 16, got)
	fresh.BernoulliWords(0.42, 16, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d: reused bank %#x != fresh bank %#x", i, got[i], want[i])
		}
	}
}

// TestLaneSourcesMatchScalarStreams pins the adversary-bank contract: per
// lane, LessMasked and Intn2Masked draw exactly when the lane is masked,
// and each draw is value-identical to the scalar Source's Float64()<p /
// Intn(2). The mask pattern varies per step so lanes advance by different
// amounts, and a residual-stream check catches any hidden extra draw.
func TestLaneSourcesMatchScalarStreams(t *testing.T) {
	var seeds [LaneCount]uint64
	scalars := make([]*Source, LaneCount)
	for lane := range seeds {
		seeds[lane] = 0xfeed_beef_0000_0001 + uint64(lane)*0x9e3779b97f4a7c15
		scalars[lane] = New(seeds[lane])
	}
	var bank LaneSources
	bank.Seed(&seeds)
	masks := []uint64{
		^uint64(0), 0, 0xaaaa_aaaa_aaaa_aaaa, 1, 1 << 63,
		0x00ff_ff00_0f0f_0f0f, 0x5555_5555_5555_5555,
	}
	ps := []float64{0.1, 0.3, 0.499, 0.9}
	step := 0
	for _, p := range ps {
		for _, mask := range masks {
			step++
			var got uint64
			if step%2 == 0 {
				got = bank.LessMasked(p, mask)
				for lane := 0; lane < LaneCount; lane++ {
					if mask>>uint(lane)&1 == 0 {
						continue
					}
					want := scalars[lane].Float64() < p
					if got>>uint(lane)&1 == 1 != want {
						t.Fatalf("step %d LessMasked(%v) lane %d: got %v want %v", step, p, lane, !want, want)
					}
				}
			} else {
				got = bank.Intn2Masked(mask)
				for lane := 0; lane < LaneCount; lane++ {
					if mask>>uint(lane)&1 == 0 {
						continue
					}
					want := scalars[lane].Intn(2)
					if int(got>>uint(lane)&1) != want {
						t.Fatalf("step %d Intn2Masked lane %d: got %d want %d", step, lane, got>>uint(lane)&1, want)
					}
				}
			}
			if got&^mask != 0 {
				t.Fatalf("step %d: result bits outside mask: %#x &^ %#x", step, got, mask)
			}
		}
	}
	// Residual streams: non-masked lanes must not have advanced anywhere
	// above, so the next full-mask draw agrees lane by lane.
	out := bank.Intn2Masked(^uint64(0))
	for lane := 0; lane < LaneCount; lane++ {
		if want := scalars[lane].Intn(2); int(out>>uint(lane)&1) != want {
			t.Fatalf("residual lane %d: got %d want %d (draw counts diverged)", lane, out>>uint(lane)&1, want)
		}
	}
}

// TestLaneSourcesSeedReuse pins that reseeding a bank in place matches a
// fresh bank (the lane runner reseeds one adversary bank per trial block).
func TestLaneSourcesSeedReuse(t *testing.T) {
	var a, b [LaneCount]uint64
	for lane := range a {
		a[lane] = uint64(lane)*313 + 7
		b[lane] = uint64(lane)*911 + 3
	}
	var reused, fresh LaneSources
	reused.Seed(&a)
	reused.LessMasked(0.5, ^uint64(0))
	reused.Seed(&b)
	fresh.Seed(&b)
	for i := 0; i < 5; i++ {
		if g, w := reused.Intn2Masked(^uint64(0)), fresh.Intn2Masked(^uint64(0)); g != w {
			t.Fatalf("draw %d: reused %#x != fresh %#x", i, g, w)
		}
	}
}

// TestBernoulliThresholdEdges spot-checks the integer threshold at values
// where float rounding could plausibly bite.
func TestBernoulliThresholdEdges(t *testing.T) {
	cases := []struct {
		p    float64
		want uint64
	}{
		{0.5, 1 << 52},
		{0.25, 1 << 51},
		{1.0 / (1 << 53), 1},
	}
	for _, c := range cases {
		if got := bernoulliThreshold(c.p); got != c.want {
			t.Fatalf("threshold(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// For arbitrary p the decision must match the scalar comparison for
	// every possible 53-bit draw near the threshold.
	for _, p := range []float64{0.1, 0.3, 0.7, 0.999, 1e-9} {
		thr := bernoulliThreshold(p)
		for _, y := range []uint64{thr - 2, thr - 1, thr, thr + 1} {
			if y >= 1<<53 {
				continue
			}
			scalar := float64(y)/(1<<53) < p
			integer := y < thr
			if scalar != integer {
				t.Fatalf("p=%v y=%d: scalar=%v integer=%v", p, y, scalar, integer)
			}
		}
	}
}

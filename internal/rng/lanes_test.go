package rng

import (
	"testing"
)

// TestBernoulliWordsMatchesScalarStreams is the RNG contract the lane-
// transposed simulation core's bit-identity rests on: for every lane L,
// the draw stream produced by BernoulliWords is identical — in value,
// number, and order — to Bernoulli(p) calls on an independent scalar
// Source seeded like that lane. The test drives both sides through many
// rounds of varying width, across the full p range including the
// no-consume edge cases, and cross-checks the residual streams afterwards
// so a hidden extra draw on either side would be caught.
func TestBernoulliWordsMatchesScalarStreams(t *testing.T) {
	ps := []float64{0, -0.5, 1e-12, 0.05, 0.25, 0.5, 0.75, 0.97, 1 - 1e-12, 1, 1.5}
	// Round widths exercise n=0, sub-word, and multi-step accumulation.
	widths := []int{17, 0, 1, 64, 5, 33}
	for _, p := range ps {
		var seeds [LaneCount]uint64
		scalars := make([]*Source, LaneCount)
		for lane := range seeds {
			seeds[lane] = 0x1234_5678_9abc_def0 + uint64(lane)*0x9e3779b97f4a7c15
			scalars[lane] = New(seeds[lane])
		}
		lanes := NewLanes(&seeds)
		out := make([]uint64, 64)
		for step, n := range widths {
			lanes.BernoulliWords(p, n, out)
			// The transposed sampler draws lane-major; the scalar reference
			// draws n values per lane. Compare draw i of lane L.
			for lane := 0; lane < LaneCount; lane++ {
				for i := 0; i < n; i++ {
					want := scalars[lane].Bernoulli(p)
					got := out[i]>>uint(lane)&1 == 1
					if got != want {
						t.Fatalf("p=%v step=%d lane=%d draw=%d: lanes=%v scalar=%v", p, step, lane, i, got, want)
					}
				}
			}
		}
		// Residual-stream check: if either side consumed a different number
		// of draws (e.g. a spurious draw at p<=0 or p>=1), the next raw
		// outputs diverge.
		lanes.BernoulliWords(0.5, 4, out)
		for lane := 0; lane < LaneCount; lane++ {
			for i := 0; i < 4; i++ {
				want := scalars[lane].Bernoulli(0.5)
				got := out[i]>>uint(lane)&1 == 1
				if got != want {
					t.Fatalf("p=%v residual lane=%d draw=%d: lanes=%v scalar=%v (draw counts diverged)", p, lane, i, got, want)
				}
			}
		}
	}
}

// TestLanesSeedReuse pins that reseeding a bank in place is bit-identical
// to a fresh bank — the lane runner reuses one bank across trial blocks.
func TestLanesSeedReuse(t *testing.T) {
	var a, b [LaneCount]uint64
	for lane := range a {
		a[lane] = uint64(lane) * 77
		b[lane] = uint64(lane)*131 + 5
	}
	reused := NewLanes(&a)
	scratch := make([]uint64, 8)
	reused.BernoulliWords(0.3, 8, scratch)
	reused.Seed(&b)
	fresh := NewLanes(&b)
	got := make([]uint64, 16)
	want := make([]uint64, 16)
	reused.BernoulliWords(0.42, 16, got)
	fresh.BernoulliWords(0.42, 16, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d: reused bank %#x != fresh bank %#x", i, got[i], want[i])
		}
	}
}

// TestBernoulliThresholdEdges spot-checks the integer threshold at values
// where float rounding could plausibly bite.
func TestBernoulliThresholdEdges(t *testing.T) {
	cases := []struct {
		p    float64
		want uint64
	}{
		{0.5, 1 << 52},
		{0.25, 1 << 51},
		{1.0 / (1 << 53), 1},
	}
	for _, c := range cases {
		if got := bernoulliThreshold(c.p); got != c.want {
			t.Fatalf("threshold(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// For arbitrary p the decision must match the scalar comparison for
	// every possible 53-bit draw near the threshold.
	for _, p := range []float64{0.1, 0.3, 0.7, 0.999, 1e-9} {
		thr := bernoulliThreshold(p)
		for _, y := range []uint64{thr - 2, thr - 1, thr, thr + 1} {
			if y >= 1<<53 {
				continue
			}
			scalar := float64(y)/(1<<53) < p
			integer := y < thr
			if scalar != integer {
				t.Fatalf("p=%v y=%d: scalar=%v integer=%v", p, y, scalar, integer)
			}
		}
	}
}

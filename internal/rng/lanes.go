package rng

import (
	"math"
	"math/bits"
)

// LaneCount is the number of generators in a Lanes bank: one per bit lane
// of a uint64, so a bank advances 64 independent streams per operation.
const LaneCount = 64

// Lanes is a bank of 64 independent xoshiro256** generators advanced in
// lockstep, one per bit lane of a uint64. It backs the trial-parallel
// simulation core: lane L carries the fault stream of Monte-Carlo trial
// baseSeed+L, and BernoulliWords transposes the 64 per-lane draws of each
// step into one word per vertex.
//
// The state is laid out structure-of-arrays (four word banks indexed by
// lane) so the per-lane advance loop is a straight-line pass over dense
// arrays. Like Source, a Lanes is NOT safe for concurrent use.
type Lanes struct {
	s0, s1, s2, s3 [LaneCount]uint64
}

// NewLanes returns a bank whose lane L is seeded exactly like New(seeds[L]).
func NewLanes(seeds *[LaneCount]uint64) *Lanes {
	var l Lanes
	l.Seed(seeds)
	return &l
}

// Seed re-initializes the bank in place: lane L's stream becomes identical
// to a fresh New(seeds[L]) — the same splitmix64 expansion, including the
// nonzero-state guard — so a reused bank is bit-identical to a freshly
// allocated one (the lane runner reseeds one bank per trial block).
func (l *Lanes) Seed(seeds *[LaneCount]uint64) {
	for lane, seed := range seeds {
		sm := seed
		a := splitmix64(&sm)
		b := splitmix64(&sm)
		c := splitmix64(&sm)
		d := splitmix64(&sm)
		if a|b|c|d == 0 {
			a = 0x9e3779b97f4a7c15
		}
		l.s0[lane] = a
		l.s1[lane] = b
		l.s2[lane] = c
		l.s3[lane] = d
	}
}

// bernoulliThreshold returns the integer threshold t such that, for
// 0 < p < 1, Float64() < p holds iff the 53-bit draw (Uint64() >> 11) is
// below t. Float64 returns (x>>11)·2⁻⁵³ exactly (a 53-bit integer scaled
// by a power of two incurs no rounding), so the comparison y·2⁻⁵³ < p over
// integers y is y < p·2⁵³, i.e. y < ceil(p·2⁵³); and p·2⁵³ itself is exact
// in float64 for the same power-of-two reason. The scalar Bernoulli path
// and this integer form therefore decide every draw identically — the
// equivalence the lane sampler's bit-identity rests on, pinned by
// TestBernoulliWordsMatchesScalarStreams.
func bernoulliThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// LaneSources is a bank of 64 independent xoshiro256** generators, one per
// bit lane, advanced selectively: every operation takes a lane mask and
// draws only on the masked lanes, leaving the others untouched. It backs
// the trial-parallel core's adversary streams, where lane L's generator
// must reproduce the scalar trial's adversary Source exactly — including
// rounds in which only some trials' adversaries draw at all.
//
// Unlike Lanes (whose Bernoulli transposition always advances every lane
// in lockstep), a LaneSources advance is data-dependent per lane, so the
// state lives in the same structure-of-arrays layout but is walked mask-
// bit by mask-bit. Not safe for concurrent use.
type LaneSources struct {
	s0, s1, s2, s3 [LaneCount]uint64
}

// Seed re-initializes the bank in place: lane L's stream becomes identical
// to a fresh New(seeds[L]), with the same splitmix64 expansion and
// nonzero-state guard as Lanes.Seed.
func (l *LaneSources) Seed(seeds *[LaneCount]uint64) {
	for lane, seed := range seeds {
		sm := seed
		a := splitmix64(&sm)
		b := splitmix64(&sm)
		c := splitmix64(&sm)
		d := splitmix64(&sm)
		if a|b|c|d == 0 {
			a = 0x9e3779b97f4a7c15
		}
		l.s0[lane] = a
		l.s1[lane] = b
		l.s2[lane] = c
		l.s3[lane] = d
	}
}

// next advances one lane and returns its raw xoshiro256** output — the
// same recurrence Source.Uint64 applies.
func (l *LaneSources) next(lane int) uint64 {
	s0, s1, s2, s3 := l.s0[lane], l.s1[lane], l.s2[lane], l.s3[lane]
	x := bits.RotateLeft64(s1*5, 7) * 9
	tt := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= tt
	s3 = bits.RotateLeft64(s3, 45)
	l.s0[lane], l.s1[lane], l.s2[lane], l.s3[lane] = s0, s1, s2, s3
	return x
}

// LessMasked draws Float64() < p on every lane in mask (exactly one Uint64
// per masked lane, like the scalar Float64 — the draw happens regardless
// of p) and returns the lanes whose draw was below p. Non-masked lanes do
// not advance. The comparison uses the integer threshold form, which
// bernoulliThreshold proves decision-identical to the scalar float
// comparison for every draw.
func (l *LaneSources) LessMasked(p float64, mask uint64) uint64 {
	var out uint64
	t := bernoulliThreshold(p)
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		if l.next(lane)>>11 < t {
			out |= 1 << uint(lane)
		}
	}
	return out
}

// Intn2Masked draws Intn(2) on every lane in mask and returns the lanes
// that drew 1. Non-masked lanes do not advance. It reproduces the scalar
// Lemire path for bound 2 exactly: hi of x·2 is x>>63, lo is x<<1 (always
// even, so the `lo < bound` rejection branch compares against threshold
// (-2 mod 2) = 0 and never redraws) — exactly one Uint64 per draw, with
// the result being the top bit.
func (l *LaneSources) Intn2Masked(mask uint64) uint64 {
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		out |= l.next(lane) >> 63 << uint(lane)
	}
	return out
}

// BernoulliWords fills out[0..n-1] with transposed Bernoulli(p) draws: bit
// L of out[i] is the i-th draw of lane L. Per lane the draws are identical,
// in number and order, to n successive Bernoulli(p) calls on a Source
// seeded like that lane — including the p-range rules (p <= 0 consumes no
// randomness and is always false; p >= 1 consumes none and is always
// true) — so lane L of a word stream reproduces the scalar fault stream of
// trial L exactly.
//
// out must have at least n words; the first n are overwritten.
func (l *Lanes) BernoulliWords(p float64, n int, out []uint64) {
	for i := 0; i < n; i++ {
		out[i] = 0
	}
	if n <= 0 || p <= 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			out[i] = ^uint64(0)
		}
		return
	}
	t := bernoulliThreshold(p)
	for lane := 0; lane < LaneCount; lane++ {
		s0, s1, s2, s3 := l.s0[lane], l.s1[lane], l.s2[lane], l.s3[lane]
		bit := uint64(1) << uint(lane)
		for i := 0; i < n; i++ {
			x := bits.RotateLeft64(s1*5, 7) * 9
			tt := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= tt
			s3 = bits.RotateLeft64(s3, 45)
			if x>>11 < t {
				out[i] |= bit
			}
		}
		l.s0[lane], l.s1[lane], l.s2[lane], l.s3[lane] = s0, s1, s2, s3
	}
}

// Package radio computes and analyzes fault-free broadcast schedules for
// the radio model — the benchmark `opt` of Section 3. A schedule lists,
// for each step, the set of nodes that transmit; a node is informed when,
// in some step, it is silent and exactly one informed neighbor transmits.
//
// The package provides exact optimal schedules for the graph families used
// in the experiments (line, star, the layered lower-bound graph of Lemma
// 3.3), an exhaustive-search optimum for tiny graphs, and a greedy
// scheduler whose achieved length serves as the `opt` stand-in on general
// graphs (computing true optima is NP-hard; see DESIGN.md §5).
package radio

import (
	"fmt"

	"faultcast/internal/graph"
)

// Schedule is a fault-free radio broadcast schedule: Steps[t] is the
// sorted set of nodes transmitting in step t.
type Schedule struct {
	Steps [][]int
}

// Len returns the number of steps.
func (s *Schedule) Len() int { return len(s.Steps) }

// Outcome describes the execution of a schedule on a fault-free network.
type Outcome struct {
	// Informed[v] reports whether v ever received the message (the source
	// counts as informed from the start).
	Informed []bool
	// RecvStep[v] is the step at which v was informed (-1 for the source
	// and for uninformed nodes).
	RecvStep []int
	// RecvFrom[v] is the paper's p(v): the node from which v received the
	// message (-1 for the source and uninformed nodes).
	RecvFrom []int
}

// Simulate runs the schedule fault-free from the given source and reports
// the outcome. It returns an error if the schedule ever instructs an
// uninformed node to transmit, since such a schedule is not a valid
// broadcast algorithm (an uninformed node has nothing to send).
func Simulate(g *graph.Graph, source int, s *Schedule) (*Outcome, error) {
	n := g.N()
	out := &Outcome{
		Informed: make([]bool, n),
		RecvStep: make([]int, n),
		RecvFrom: make([]int, n),
	}
	for v := range out.RecvStep {
		out.RecvStep[v] = -1
		out.RecvFrom[v] = -1
	}
	out.Informed[source] = true
	transmitting := make([]bool, n)
	for t, set := range s.Steps {
		for i := range transmitting {
			transmitting[i] = false
		}
		for _, v := range set {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("radio: step %d: node %d out of range", t, v)
			}
			if !out.Informed[v] {
				return nil, fmt.Errorf("radio: step %d: uninformed node %d scheduled to transmit", t, v)
			}
			if transmitting[v] {
				return nil, fmt.Errorf("radio: step %d: node %d scheduled twice", t, v)
			}
			transmitting[v] = true
		}
		// Collect receptions before updating informedness so all of this
		// step's receivers see the pre-step state.
		type hit struct{ v, from int }
		var hits []hit
		for v := 0; v < n; v++ {
			if transmitting[v] || out.Informed[v] {
				continue
			}
			talkers, talker := 0, -1
			g.ForNeighbors(v, func(w int) {
				if transmitting[w] {
					talkers++
					talker = w
				}
			})
			if talkers == 1 {
				hits = append(hits, hit{v, talker})
			}
		}
		for _, h := range hits {
			out.Informed[h.v] = true
			out.RecvStep[h.v] = t
			out.RecvFrom[h.v] = h.from
		}
	}
	return out, nil
}

// Complete reports whether the schedule informs every node of g from
// source.
func Complete(g *graph.Graph, source int, s *Schedule) (bool, error) {
	out, err := Simulate(g, source, s)
	if err != nil {
		return false, err
	}
	for _, inf := range out.Informed {
		if !inf {
			return false, nil
		}
	}
	return true, nil
}

// LineSchedule returns the optimal fault-free schedule for Line(n) with
// the source at endpoint 0: node i transmits at step i, informing i+1.
// Its length n−1 equals the radius D, which is optimal.
func LineSchedule(n int) *Schedule {
	s := &Schedule{}
	for i := 0; i+1 < n; i++ {
		s.Steps = append(s.Steps, []int{i})
	}
	return s
}

// StarSchedule returns the optimal schedule for Star(n) with the given
// source: 1 step from the center, 2 steps (leaf then center) from a leaf.
func StarSchedule(n, source int) *Schedule {
	if source == 0 {
		return &Schedule{Steps: [][]int{{0}}}
	}
	return &Schedule{Steps: [][]int{{source}, {0}}}
}

// LayeredSchedule returns the (m+1)-step schedule of Lemma 3.3 for
// Layered(m): the source transmits in step 0, then layer-2 node b_i
// transmits in step i. Lemma 3.3 shows m+1 steps are also necessary, so
// this is opt.
func LayeredSchedule(m int) *Schedule {
	s := &Schedule{Steps: [][]int{{0}}}
	for i := 1; i <= m; i++ {
		s.Steps = append(s.Steps, []int{i})
	}
	return s
}

// Greedy computes a valid broadcast schedule by maximal marginal coverage:
// each step it grows a transmitter set, starting empty and repeatedly
// adding the informed node that newly informs the most uninformed
// receivers (under the collision rule), until no addition helps. Progress
// is guaranteed (a single informed node adjacent to the uninformed region
// always informs at least one receiver), so the schedule terminates in at
// most n−1 steps.
func Greedy(g *graph.Graph, source int) *Schedule {
	n := g.N()
	informed := make([]bool, n)
	informed[source] = true
	remaining := n - 1
	s := &Schedule{}
	for remaining > 0 {
		set := greedyStep(g, informed)
		if len(set) == 0 {
			panic("radio: greedy made no progress on a connected graph")
		}
		s.Steps = append(s.Steps, set)
		// Apply the step.
		inSet := make(map[int]bool, len(set))
		for _, v := range set {
			inSet[v] = true
		}
		for v := 0; v < n; v++ {
			if informed[v] || inSet[v] {
				continue
			}
			talkers := 0
			g.ForNeighbors(v, func(w int) {
				if inSet[w] {
					talkers++
				}
			})
			if talkers == 1 {
				informed[v] = true
				remaining--
			}
		}
	}
	return s
}

// greedyStep picks a transmitter set greedily for the current informed
// frontier.
func greedyStep(g *graph.Graph, informed []bool) []int {
	n := g.N()
	chosen := make([]bool, n)
	// talkersAt[v] = number of chosen transmitting neighbors of v.
	talkersAt := make([]int, n)
	var set []int
	for {
		bestGain, best := 0, -1
		for c := 0; c < n; c++ {
			if !informed[c] || chosen[c] {
				continue
			}
			gain := 0
			g.ForNeighbors(c, func(v int) {
				if informed[v] || chosen[v] {
					return
				}
				switch talkersAt[v] {
				case 0:
					gain++ // v becomes newly hearable
				case 1:
					gain-- // v now collides
				}
			})
			if gain > bestGain {
				bestGain, best = gain, c
			}
		}
		if best == -1 {
			break
		}
		chosen[best] = true
		set = append(set, best)
		g.ForNeighbors(best, func(v int) { talkersAt[v]++ })
	}
	// Keep deterministic order.
	sortInts(set)
	return set
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

package radio

import (
	"testing"

	"faultcast/internal/graph"
	"faultcast/internal/rng"
)

func mustComplete(t *testing.T, g *graph.Graph, source int, s *Schedule) *Outcome {
	t.Helper()
	out, err := Simulate(g, source, s)
	if err != nil {
		t.Fatal(err)
	}
	for v, inf := range out.Informed {
		if !inf {
			t.Fatalf("%v: schedule leaves node %d uninformed", g, v)
		}
	}
	return out
}

func TestLineSchedule(t *testing.T) {
	g := graph.Line(8)
	s := LineSchedule(8)
	if s.Len() != 7 {
		t.Fatalf("line schedule length %d, want 7", s.Len())
	}
	out := mustComplete(t, g, 0, s)
	for v := 1; v < 8; v++ {
		if out.RecvFrom[v] != v-1 || out.RecvStep[v] != v-1 {
			t.Fatalf("node %d informed by %d at %d", v, out.RecvFrom[v], out.RecvStep[v])
		}
	}
}

func TestStarSchedules(t *testing.T) {
	g := graph.Star(6)
	if s := StarSchedule(6, 0); s.Len() != 1 {
		t.Fatalf("center schedule length %d, want 1", s.Len())
	} else {
		mustComplete(t, g, 0, s)
	}
	if s := StarSchedule(6, 3); s.Len() != 2 {
		t.Fatalf("leaf schedule length %d, want 2", s.Len())
	} else {
		mustComplete(t, g, 3, s)
	}
}

// TestLayeredSchedule verifies the Lemma 3.3 upper bound: the (m+1)-step
// schedule informs everyone on Layered(m).
func TestLayeredSchedule(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8} {
		g := graph.Layered(m)
		s := LayeredSchedule(m)
		if s.Len() != m+1 {
			t.Fatalf("m=%d: schedule length %d, want %d", m, s.Len(), m+1)
		}
		mustComplete(t, g, 0, s)
	}
}

// TestLayeredOptimalLength verifies the Lemma 3.3 lower bound exactly for
// small m by exhaustive search: fault-free broadcast on Layered(m) needs
// exactly m+1 steps.
func TestLayeredOptimalLength(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		g := graph.Layered(m)
		opt, err := OptimalLength(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt != m+1 {
			t.Fatalf("m=%d: opt = %d, want %d", m, opt, m+1)
		}
	}
}

func TestOptimalLengthKnownGraphs(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		src  int
		want int
	}{
		{graph.Line(5), 0, 4},
		{graph.Star(6), 0, 1},
		{graph.Star(6), 2, 2},
		{graph.Complete(5), 0, 1}, // one transmission reaches every other node
		{graph.TwoNode(), 0, 1},
		{graph.Ring(6), 0, 3},
	}
	for _, tc := range cases {
		got, err := OptimalLength(tc.g, tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%v from %d: opt = %d, want %d", tc.g, tc.src, got, tc.want)
		}
	}
}

func TestOptimalLengthRejectsBigGraphs(t *testing.T) {
	if _, err := OptimalLength(graph.Line(30), 0); err == nil {
		t.Fatal("exhaustive search accepted n=30")
	}
}

func TestGreedyCompletesEverywhere(t *testing.T) {
	r := rng.New(3)
	graphs := []*graph.Graph{
		graph.Line(40), graph.Star(20), graph.Grid(6, 6), graph.Hypercube(5),
		graph.Layered(4), graph.GNP(50, 0.1, r), graph.Caterpillar(10, 3),
	}
	for _, g := range graphs {
		s := Greedy(g, 0)
		mustComplete(t, g, 0, s)
		if s.Len() > g.N() {
			t.Errorf("%v: greedy used %d steps > n", g, s.Len())
		}
	}
}

func TestGreedyMatchesOptOnEasyGraphs(t *testing.T) {
	// On a star from the center greedy should take 1 step; on a line it
	// should not be worse than ~2x optimal.
	if s := Greedy(graph.Star(12), 0); s.Len() != 1 {
		t.Errorf("greedy on star from center: %d steps, want 1", s.Len())
	}
	if s := Greedy(graph.Line(20), 0); s.Len() > 2*19 {
		t.Errorf("greedy on line(20): %d steps", s.Len())
	}
}

func TestSimulateRejectsInvalidSchedules(t *testing.T) {
	g := graph.Line(4)
	// Uninformed node transmits.
	if _, err := Simulate(g, 0, &Schedule{Steps: [][]int{{2}}}); err == nil {
		t.Fatal("uninformed transmitter accepted")
	}
	// Out-of-range node.
	if _, err := Simulate(g, 0, &Schedule{Steps: [][]int{{7}}}); err == nil {
		t.Fatal("out-of-range transmitter accepted")
	}
	// Duplicate node in one step.
	if _, err := Simulate(g, 0, &Schedule{Steps: [][]int{{0, 0}}}); err == nil {
		t.Fatal("duplicate transmitter accepted")
	}
}

func TestSimulateCollision(t *testing.T) {
	// Ring(4) from source 0: step 0 informs 1 and 3; in step 1 both
	// transmit, so node 2 (adjacent to both) hears a collision and stays
	// uninformed until node 1 transmits alone in step 2.
	g := graph.Ring(4)
	s := &Schedule{Steps: [][]int{{0}, {1, 3}, {1}}}
	out, err := Simulate(g, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.RecvStep[1] != 0 || out.RecvStep[3] != 0 {
		t.Fatalf("step 0 should inform 1 and 3: %v", out.RecvStep)
	}
	if out.RecvStep[2] != 2 {
		t.Fatalf("collision not honored: node 2 informed at %d, want 2", out.RecvStep[2])
	}
	if out.RecvFrom[2] != 1 {
		t.Fatalf("node 2 informed by %d, want 1", out.RecvFrom[2])
	}
}

func TestCompleteHelper(t *testing.T) {
	g := graph.Line(4)
	ok, err := Complete(g, 0, LineSchedule(4))
	if err != nil || !ok {
		t.Fatalf("complete line schedule: ok=%v err=%v", ok, err)
	}
	ok, err = Complete(g, 0, &Schedule{Steps: [][]int{{0}}})
	if err != nil || ok {
		t.Fatalf("truncated schedule reported complete: ok=%v err=%v", ok, err)
	}
}

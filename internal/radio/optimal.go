package radio

import (
	"fmt"

	"faultcast/internal/graph"
)

// MaxExhaustiveN bounds the graph size accepted by OptimalLength; the
// state space is 2^n informed-sets with up to 2^n actions each.
const MaxExhaustiveN = 16

// OptimalLength computes the exact fault-free radio broadcast time (opt)
// of a small graph by breadth-first search over informed-set states, where
// an action is any subset of the informed set transmitting simultaneously.
// It is exponential in n and rejects graphs larger than MaxExhaustiveN;
// Lemma 3.3's exact-optimum claims are verified with it for small m.
func OptimalLength(g *graph.Graph, source int) (int, error) {
	n := g.N()
	if n > MaxExhaustiveN {
		return 0, fmt.Errorf("radio: exhaustive search limited to n <= %d (got %d)", MaxExhaustiveN, n)
	}
	full := uint32(1)<<n - 1
	start := uint32(1) << source
	if start == full {
		return 0, nil
	}
	// Precompute neighbor masks.
	nbr := make([]uint32, n)
	for v := 0; v < n; v++ {
		g.ForNeighbors(v, func(w int) { nbr[v] |= 1 << w })
	}
	// step applies transmitter set T to informed set I.
	step := func(informed, t uint32) uint32 {
		newInf := informed
		for v := 0; v < n; v++ {
			bit := uint32(1) << v
			if informed&bit != 0 || t&bit != 0 {
				continue
			}
			talkers := popcount(nbr[v] & t)
			if talkers == 1 {
				newInf |= bit
			}
		}
		return newInf
	}
	dist := map[uint32]int{start: 0}
	queue := []uint32{start}
	for len(queue) > 0 {
		informed := queue[0]
		queue = queue[1:]
		d := dist[informed]
		// Enumerate all non-empty subsets of the informed set.
		for t := informed; t > 0; t = (t - 1) & informed {
			next := step(informed, t)
			if next == informed {
				continue
			}
			if _, seen := dist[next]; !seen {
				dist[next] = d + 1
				if next == full {
					return d + 1, nil
				}
				queue = append(queue, next)
			}
		}
	}
	return 0, fmt.Errorf("radio: graph not broadcastable from %d (disconnected?)", source)
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

package faultcast

import (
	"testing"
)

// The satellite property: on small graphs, the empirical bracket returned
// by ThresholdSearch must contain the theoretical feasibility threshold
// for each of the paper's three dichotomies. Every search is
// deterministic in (template, options), so these are fixed regression
// points, not flaky statistical tests.

func searchScenario(t *testing.T, name string, cfg Config, opts ...ThresholdOption) *ThresholdResult {
	t.Helper()
	res, err := ThresholdSearch(cfg, opts...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Contains(res.Theory) {
		t.Fatalf("%s: bracket [%v, %v] misses theoretical threshold %v\nprobes: %+v",
			name, res.Low, res.High, res.Theory, res.Probes)
	}
	if len(res.Probes) == 0 {
		t.Fatalf("%s: no probes executed", name)
	}
	return res
}

// TestThresholdSearchOmission: omission failures are feasible for every
// p < 1 (Theorem 2.1), so every probe must classify safe and the bracket
// must close on 1.
func TestThresholdSearchOmission(t *testing.T) {
	res := searchScenario(t, "omission-mp", Config{
		Graph: Line(8), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Omission,
		Algorithm: SimpleOmission, Seed: 0x5eed,
	}, WithThresholdTrials(400))
	if res.Theory != 1 {
		t.Fatalf("omission theory threshold = %v, want 1", res.Theory)
	}
	if res.High != 1 || res.Low < 0.9 {
		t.Fatalf("omission bracket [%v, %v] should close on 1", res.Low, res.High)
	}
	for _, p := range res.Probes {
		if p.Verdict != ProbeSafe {
			t.Fatalf("omission probe at p=%v classified %v", p.P, p.Verdict)
		}
	}
}

// TestThresholdSearchMaliciousMP: the message-passing malicious threshold
// is 1/2 (Theorems 2.2/2.3); the bracket on line(8) with the derived
// window and the worst-case (equivocating) adversary must contain it.
func TestThresholdSearchMaliciousMP(t *testing.T) {
	res := searchScenario(t, "malicious-mp", Config{
		Graph: Line(8), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious,
		Algorithm: SimpleMalicious, Adversary: WorstCase, Seed: 0x5eed,
	}, WithThresholdTrials(400))
	if res.Theory != 0.5 {
		t.Fatalf("malicious MP theory threshold = %v, want 1/2", res.Theory)
	}
}

// TestThresholdSearchMaliciousRadio: the radio malicious threshold is the
// fixed point of p = (1−p)^(Δ+1) (Theorem 2.4); the bracket on star(8)
// (Δ = 7, source at a leaf, star adversary) must contain it. Two budget
// choices keep the probes cheap without weakening the property. The
// resolution stays at 1/8 because probes nearer the fixed point drive the
// derived window constant toward infinity (the conditional error rate
// approaches 1/2). And the window constant is pinned to an explicit
// "suitable constant" c = 60 — ample for the probed feasible region —
// because the auto-derived WindowCRadioMalicious likewise explodes when
// asked to defend an infeasible p (at p = 0.5 it yields a ~200k-round
// horizon for a probe whose only job is to fail). A fixed window is sound
// on both sides: above p* NO window length achieves almost-safety (the
// impossibility direction), and below it c = 60 gives per-window error
// ~1e-4.
func TestThresholdSearchMaliciousRadio(t *testing.T) {
	res := searchScenario(t, "malicious-radio", Config{
		Graph: Star(8), Source: 1, Message: []byte("1"),
		Model: Radio, Fault: Malicious,
		Algorithm: SimpleMalicious, Adversary: WorstCase, WindowC: 60, Seed: 0x5eed,
	}, WithThresholdTrials(400), WithThresholdResolution(1.0/8))
	want := RadioThreshold(7)
	if res.Theory != want {
		t.Fatalf("radio theory threshold = %v, want RadioThreshold(7) = %v", res.Theory, want)
	}
}

// TestThresholdSearchDeterministic: the full probe history must reproduce
// exactly across runs.
func TestThresholdSearchDeterministic(t *testing.T) {
	cfg := Config{
		Graph: Line(8), Source: 0, Message: []byte("1"),
		Model: MessagePassing, Fault: Malicious,
		Algorithm: SimpleMalicious, Adversary: WorstCase, Seed: 9,
	}
	a, err := ThresholdSearch(cfg, WithThresholdTrials(200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ThresholdSearch(cfg, WithThresholdTrials(200), WithThresholdWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Low != b.Low || a.High != b.High || len(a.Probes) != len(b.Probes) {
		t.Fatalf("search nondeterministic: %v vs %v", a, b)
	}
	for i := range a.Probes {
		if a.Probes[i] != b.Probes[i] {
			t.Fatalf("probe %d diverged: %+v vs %+v", i, a.Probes[i], b.Probes[i])
		}
	}
}

// TestThresholdSearchRejects: structural errors surface before any probe.
func TestThresholdSearchRejects(t *testing.T) {
	if _, err := ThresholdSearch(Config{}); err == nil {
		t.Fatal("accepted a nil graph")
	}
	if _, err := ThresholdSearch(Config{Graph: Line(4), Message: []byte("1")},
		WithThresholdTrials(-1)); err == nil {
		t.Fatal("accepted a negative trial budget")
	}
}

package faultcast

import (
	"fmt"
	"testing"
)

// TestLaneCoverageGate is the CI lane-coverage gate: every scenario shape
// the ported experiment tables (internal/harness E1–E8, A1/A2, B1) sweep
// over must compile to the lane-transposed core under the default
// Core=auto. Shapes the lowering intentionally cannot express are listed
// in the explicit allowlist below with their gating reason — anything
// else falling back to the round engine is a silent coverage regression
// and fails here.
func TestLaneCoverageGate(t *testing.T) {
	type shape struct {
		name string
		cfg  Config
	}
	var shapes []shape
	add := func(name string, cfg Config) {
		if len(cfg.Message) == 0 {
			cfg.Message = []byte("1")
		}
		shapes = append(shapes, shape{name, cfg})
	}

	// E1/A1 — Simple-Omission feasibility over both models.
	for _, model := range []Model{MessagePassing, Radio} {
		add(fmt.Sprintf("E1/simple-omission/%v", model), Config{
			Graph: Star(6), Source: 0, Model: model, Fault: Omission, P: 0.5,
			Algorithm: SimpleOmission, WindowC: 1,
		})
	}

	// E2 — Simple-Malicious, message passing, flip adversary.
	add("E2/simple-malicious/mp/flip", Config{
		Graph: KaryTree(2, 7), Source: 0, Model: MessagePassing, Fault: Malicious, P: 0.3,
		Algorithm: SimpleMalicious, Adversary: FlipAdv, WindowC: 2,
	})

	// E3 — Simple-Malicious under the radio model.
	add("E3/simple-malicious/radio/flip", Config{
		Graph: Layered(3), Source: 0, Model: Radio, Fault: Malicious, P: 0.2,
		Algorithm: SimpleMalicious, Adversary: FlipAdv, WindowC: 2,
	})

	// E4/E5 — the timing-bit protocol, both source bits.
	for _, bit := range []string{"0", "1"} {
		add("E4/timing-bit/"+bit, Config{
			Graph: Complete(2), Source: 0, Message: []byte(bit),
			Model: MessagePassing, Fault: LimitedMalicious, P: 0.4,
			Algorithm: TimingBit, Adversary: CrashAdv, WindowC: 8,
		})
	}

	// E8 — the composed algorithm under limited-malicious faults.
	add("E8/composed/limited/flip", Config{
		Graph: KaryTree(2, 7), Source: 0, Model: MessagePassing, Fault: LimitedMalicious, P: 0.2,
		Algorithm: Composed, Adversary: FlipAdv,
	})

	// A2 — the adversary ablation: every adversary kind on the same
	// bit-message malicious scenario (worst-case on a bit message over
	// message passing is the source-only equivocator).
	for _, adv := range []AdversaryKind{WorstCase, CrashAdv, FlipAdv, NoiseAdv} {
		add(fmt.Sprintf("A2/simple-malicious/%v", adv), Config{
			Graph: Line(8), Source: 0, Model: MessagePassing, Fault: Malicious, P: 0.3,
			Algorithm: SimpleMalicious, Adversary: adv, WindowC: 2,
		})
		// The same ablation under the radio model.
		add(fmt.Sprintf("A2/simple-malicious/radio/%v", adv), Config{
			Graph: Star(6), Source: 1, Model: Radio, Fault: Malicious, P: 0.25,
			Algorithm: SimpleMalicious, Adversary: adv, WindowC: 2,
		})
	}

	// B1 — the omission-radio repeat protocol.
	add("B1/radio-repeat/omission", Config{
		Graph: Layered(4), Source: 0, Model: Radio, Fault: Omission, P: 0.5,
		Algorithm: RadioRepeat, WindowC: 1,
	})

	// Flooding rides along in several tables as the omission baseline.
	add("baseline/flooding/omission", Config{
		Graph: Grid(3, 4), Source: 0, Model: MessagePassing, Fault: Omission, P: 0.3,
		Algorithm: Flooding,
	})

	// Shapes the lane lowering intentionally cannot express. Entries must
	// stay gated: if a future lowering supports one, this gate fails so
	// the allowlist shrinks in the same change.
	allow := map[string]string{
		"A2/simple-malicious/radio/worst": "the radio worst-case star adversary transmits out of turn",
	}

	for _, s := range shapes {
		plan, err := Compile(s.cfg)
		if err != nil {
			t.Fatalf("%s: Core=auto compile: %v", s.name, err)
		}
		core := plan.EstimationCore()
		if reason, gated := allow[s.name]; gated {
			if core == "lanes" {
				t.Errorf("%s: allowlisted (%s) but now compiles to the lane core — remove it from the allowlist", s.name, reason)
			}
			continue
		}
		if core != "lanes" {
			t.Errorf("%s: Core=auto selected %q, want the lane core", s.name, core)
		}
	}
}

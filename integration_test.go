package faultcast

import (
	"fmt"
	"testing"
)

// TestScenarioMatrix drives every algorithm through the public API in
// every communication/fault scenario it supports, fault-free and at a
// modest failure rate below the scenario's threshold. Every run must
// succeed (fault-free) or at least be error-free (faulty); feasible-side
// faulty runs on these small graphs are also checked for success at
// lenient thresholds via EstimateSuccess.
func TestScenarioMatrix(t *testing.T) {
	type scenario struct {
		algo  Algorithm
		model Model
		fault Fault
		graph *Graph
		src   int
		msg   string
		p     float64
	}
	line := Line(8)
	scenarios := []scenario{
		{SimpleOmission, MessagePassing, Omission, line, 0, "m", 0.4},
		{SimpleOmission, Radio, Omission, line, 0, "m", 0.4},
		{SimpleMalicious, MessagePassing, Malicious, line, 0, "1", 0.25},
		{SimpleMalicious, Radio, Malicious, line, 0, "1", 0.08},
		{SimpleMalicious, MessagePassing, LimitedMalicious, line, 0, "1", 0.25},
		{Flooding, MessagePassing, Omission, Grid(3, 4), 0, "m", 0.4},
		{Composed, MessagePassing, LimitedMalicious, Line(6), 0, "1", 0.2},
		{RadioRepeat, Radio, Omission, Star(8), 1, "m", 0.4},
		{RadioRepeat, Radio, Malicious, line, 0, "1", 0.08},
		{TimingBit, MessagePassing, LimitedMalicious, TwoNode(), 0, "0", 0.5},
		{TimingBit, MessagePassing, LimitedMalicious, TwoNode(), 0, "1", 0.5},
	}
	for _, sc := range scenarios {
		name := fmt.Sprintf("%v/%v/%v", sc.algo, sc.model, sc.fault)
		t.Run(name, func(t *testing.T) {
			base := Config{
				Graph: sc.graph, Source: sc.src, Message: []byte(sc.msg),
				Model: sc.model, Fault: sc.fault,
				Algorithm: sc.algo, Adversary: CrashAdv, Seed: 7,
			}
			// Fault-free: must succeed outright.
			ff := base
			ff.P = 0
			res, err := Run(ff)
			if err != nil {
				t.Fatalf("fault-free: %v", err)
			}
			if !res.Success {
				t.Fatalf("fault-free run failed: %+v", res)
			}
			// Below threshold: high success over a small sample.
			faulty := base
			faulty.P = sc.p
			est, err := EstimateSuccess(faulty, 60)
			if err != nil {
				t.Fatal(err)
			}
			if est.Rate < 0.8 {
				t.Fatalf("faulty runs at p=%v: %v", sc.p, est)
			}
		})
	}
}

// TestAutoSelectionMatrix checks that Auto picks a runnable algorithm in
// every scenario combination.
func TestAutoSelectionMatrix(t *testing.T) {
	for _, model := range []Model{MessagePassing, Radio} {
		for _, fault := range []Fault{Omission, Malicious, LimitedMalicious} {
			g := Line(6)
			res, err := Run(Config{
				Graph: g, Source: 0, Message: []byte("1"),
				Model: model, Fault: fault, P: 0,
				Adversary: CrashAdv, Seed: 5,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", model, fault, err)
			}
			if !res.Success {
				t.Fatalf("%v/%v: auto fault-free run failed", model, fault)
			}
		}
	}
}

package faultcast

import (
	"context"
	"errors"
	"fmt"

	"faultcast/internal/exec"
	"faultcast/internal/sim"
	"faultcast/internal/stat"
	"faultcast/internal/telemetry"
	"faultcast/internal/trace"
)

// Plan is a compiled scenario: all graph- and protocol-dependent work of a
// Config — protocol construction (including the Kučera composition plan,
// the BFS spanning tree, and the greedy radio schedule), the adversary,
// and the round horizon — performed once, so that many Monte-Carlo trials
// can run without repeating any of it. Trials execute on the engine's
// word-parallel bitset core (Config.ScalarCore selects the scalar
// reference core, Config.Concurrent the goroutine-per-node engine; both
// are bit-identical to the default, and the differential tests prove it).
//
// Compile once per scenario, then call Run per trial or Estimate per
// sweep point. A Plan is immutable after Compile and safe for concurrent
// use by multiple goroutines — except that when Config.Trace is set,
// concurrent Run calls would interleave unsynchronized writes to the one
// trace writer, so traced plans must run one trial at a time (Estimate
// ignores Trace).
type Plan struct {
	cfg   Config        // the scenario, as passed to Compile (Trace/Seed included)
	sim   *sim.Config   // compiled engine configuration template
	lanes *sim.LaneSpec // lane-transposed trial-parallel lowering (nil if unsupported)
}

// Compile lowers the configuration to a reusable execution plan. It
// performs every per-scenario computation exactly once; the returned
// Plan's Run and Estimate only pay per-trial simulation cost.
//
// Config.Seed is kept as the default base seed for Estimate; Config.Trace
// is honored by Plan.Run (each run appends to the writer), and ignored by
// Estimate.
func Compile(cfg Config) (*Plan, error) {
	simCfg, lanes, laneGate, err := build(cfg)
	if err != nil {
		return nil, err
	}
	switch cfg.Core {
	case CoreAuto, CoreLanes:
		if cfg.Core == CoreLanes {
			if lanes == nil {
				return nil, fmt.Errorf("faultcast: Core=lanes unsupported here: %s (algorithm %s, adversary %s, message %q)",
					laneGate, cfg.Algorithm, cfg.Adversary, cfg.Message)
			}
			if cfg.Concurrent {
				return nil, errors.New("faultcast: Core=lanes is incompatible with Concurrent (the goroutine-per-node engine has no trial-parallel form)")
			}
		}
		if lanes != nil {
			if err := lanes.Validate(); err != nil {
				return nil, fmt.Errorf("faultcast: lane lowering: %w", err)
			}
		}
	case CoreBitset, CoreScalar:
		lanes = nil // estimation stays on the round engine
	default:
		return nil, fmt.Errorf("faultcast: unknown core %d", int(cfg.Core))
	}
	if cfg.Core == CoreScalar {
		simCfg.ScalarCore = true
	}
	return &Plan{cfg: cfg, sim: simCfg, lanes: lanes}, nil
}

// Config returns the scenario this plan was compiled from.
func (p *Plan) Config() Config { return p.cfg }

// Key returns the plan's canonical cache key, Config.Fingerprint of the
// compiled configuration: two plans with equal keys run bit-identical
// trial streams, so a serving layer may share one of them.
func (p *Plan) Key() string { return p.cfg.Fingerprint() }

// Rounds returns the compiled round horizon (the algorithm's own horizon
// unless Config.Rounds overrode it).
func (p *Plan) Rounds() int { return p.sim.Rounds }

// AlmostSafeTarget returns the paper's almost-safety bound 1 − 1/n for the
// plan's graph — the natural early-stopping target for Estimate.
func (p *Plan) AlmostSafeTarget() float64 {
	return 1 - 1/float64(p.sim.Graph.N())
}

// Run executes one trial of the compiled scenario with the given seed. It
// is bit-identical to the one-shot Run with the same Config and seed, and
// repeated calls with the same seed return identical results (no state
// leaks between trials). Config.Concurrent selects the goroutine-per-node
// engine; Config.Trace, if set, receives this run's per-round log.
func (p *Plan) Run(seed uint64) (Result, error) {
	simCfg := *p.sim
	simCfg.Seed = seed
	if p.cfg.Trace != nil {
		logger := &trace.Logger{W: p.cfg.Trace}
		simCfg.Observer = logger.Observe
	}
	engine := sim.Run
	if p.cfg.Concurrent {
		engine = sim.RunConcurrent
	}
	res, err := engine(&simCfg)
	if err != nil {
		return Result{}, err
	}
	return publicResult(res), nil
}

// estimateOptions collects Estimate tuning; see the EstimateOption
// constructors for semantics.
type estimateOptions struct {
	baseSeed     *uint64
	workers      int
	rule         stat.StopRule
	almostSafe   bool
	dispatcher   exec.Dispatcher
	store        TallyStore
	resumeReport func(resumedTrials int)
	span         *telemetry.Span
	probe        func(exec.BatchStat)
}

// EstimateOption tunes Plan.Estimate.
type EstimateOption func(*estimateOptions)

// WithBaseSeed overrides the base seed (default Config.Seed). Trial i uses
// seed base+i.
func WithBaseSeed(seed uint64) EstimateOption {
	return func(o *estimateOptions) { o.baseSeed = &seed }
}

// WithWorkers sets the number of worker goroutines (default GOMAXPROCS).
// The estimate does not depend on the worker count.
func WithWorkers(n int) EstimateOption {
	return func(o *estimateOptions) { o.workers = n }
}

// WithTarget enables early stopping: the estimate stops as soon as a 99%
// Wilson interval is decided against target (entirely above or entirely
// below), or when the requested trial count is exhausted. The stopping
// band is strictly wider than the reported 95% interval, so whenever the
// stream stops early the reported interval is decided the same way. The
// executed trial count is deterministic in (plan, trials, base seed) —
// the interval is checked at fixed batch boundaries, independent of
// machine or worker count. Note the stop is a sequential test: the band
// is consulted after every batch, so near the target the chance of
// stopping on a momentarily-decided interval exceeds the band's nominal
// 1%.
func WithTarget(target float64) EstimateOption {
	return func(o *estimateOptions) {
		o.rule.Target = target
		o.rule.UseTarget = true
		o.almostSafe = false
	}
}

// WithAlmostSafeTarget is WithTarget at the paper's almost-safety bound
// 1 − 1/n for the plan's graph — the stopping rule for feasibility sweeps.
func WithAlmostSafeTarget() EstimateOption {
	return func(o *estimateOptions) {
		o.rule.UseTarget = true
		o.almostSafe = true
	}
}

// WithHalfWidth enables early stopping once the 95% Wilson interval
// half-width shrinks to w ("estimate until this precise").
func WithHalfWidth(w float64) EstimateOption {
	return func(o *estimateOptions) { o.rule.HalfWidth = w }
}

// WithDispatcher routes the estimate's trial stream through d — e.g. a
// cluster coordinator fanning shards out to remote faultcastd workers —
// instead of the in-process pool. Every dispatcher honors the same
// batch-boundary determinism contract, so the estimate is bit-identical
// whichever one runs it (the cluster tests pin this).
func WithDispatcher(d exec.Dispatcher) EstimateOption {
	return func(o *estimateOptions) { o.dispatcher = d }
}

// WithTallyStore resumes the estimate from ts's persisted prefix of this
// (plan, base seed) trial stream and appends the marginal batches back
// after the run — the durable analogue of EstimateFrom's in-memory prev.
// The stored prefix is replayed through the stopping rule at cold batch
// boundaries, so the result is bit-identical to a cold run with the same
// budget: a fully-covering prefix answers with zero trials, a partial
// one simulates only the remainder. Store reads and writes are
// best-effort — a load or append failure costs re-simulation or
// persistence, never correctness. Ignored when prev is non-zero (the two
// resume sources would race for the same seed positions); use
// WithResumeReport to see how many trials the store supplied.
func WithTallyStore(ts TallyStore) EstimateOption {
	return func(o *estimateOptions) { o.store = ts }
}

// WithResumeReport reports, after the estimate completes, how many of
// its trials came from a resume source — the prev argument or a
// WithTallyStore replay — rather than fresh simulation. Estimate.Trials
// minus the reported count is the simulation this call actually paid
// for; the Estimate itself deliberately carries no such field, since
// resuming never changes the result bits, only who computed them.
func WithResumeReport(f func(resumedTrials int)) EstimateOption {
	return func(o *estimateOptions) { o.resumeReport = f }
}

// WithSpan hangs the estimate's execution telemetry off s: the store
// replay (if any) becomes a "store-replay" child span, and the cell
// carries s for dispatcher-level spans — a cluster dispatcher attaches
// one "shard" child per dispatched shard, with worker identity and the
// worker-side subtree grafted in. Tracing is strictly observational (the
// bit-identity matrices run with it forced on); a nil s is a no-op, so
// callers thread a possibly-nil span unconditionally.
func WithSpan(s *telemetry.Span) EstimateOption {
	return func(o *estimateOptions) { o.span = s }
}

// WithBatchProbe observes per-batch timing attribution from the
// in-process pool (see exec.BatchStat): engine time versus batch wall
// span, the raw material for the engine-vs-scheduler-overhead numbers on
// trace spans. The probe runs under the scheduler lock — accumulate,
// don't block. Purely observational, like WithSpan.
func WithBatchProbe(f func(exec.BatchStat)) EstimateOption {
	return func(o *estimateOptions) { o.probe = f }
}

// Estimate runs up to `trials` independent simulations (seeds Seed+i)
// across worker goroutines and estimates the success probability with a
// 95% Wilson interval. Each sequential worker reuses one engine state for
// its whole trial stream, so per-trial cost is simulation only — no plan
// rebuilding, no state reallocation.
//
// Config.Concurrent is honored: when set, every trial runs on the
// goroutine-per-node reference engine. Results are bit-identical to the
// sequential engine's, but slower — use it to cross-check, not to sweep.
//
// With a stopping option (WithTarget, WithAlmostSafeTarget,
// WithHalfWidth), the estimate stops early once decided; Estimate.Trials
// reports the trials actually executed.
func (p *Plan) Estimate(trials int, opts ...EstimateOption) (Estimate, error) {
	return p.EstimateFrom(Estimate{}, trials, opts...)
}

// EstimateFrom resumes a previous estimate of this plan instead of
// restarting it: prev's trials and successes are kept, new trials continue
// the seed sequence at base+prev.Trials, and the stream stops once the
// combined estimate satisfies the stopping options or the total trial
// count reaches `trials` (if prev already satisfies them, no trials run).
// This is the serving layer's refinement path: a cached estimate that is
// close to a requested precision is topped up to it for the marginal
// trials only, never recomputed from scratch.
//
// prev must come from this plan (or one with an equal Key) with the same
// base seed, so that the combined stream is a prefix of the same seed
// sequence; Estimate(trials) is exactly EstimateFrom(Estimate{}, trials).
func (p *Plan) EstimateFrom(prev Estimate, trials int, opts ...EstimateOption) (Estimate, error) {
	var o estimateOptions
	for _, f := range opts {
		f(&o)
	}
	if o.almostSafe {
		o.rule.Target = p.AlmostSafeTarget()
	}
	if o.rule.UseTarget && o.rule.Z == 0 {
		// Stop on a 99% band so the reported 95% interval is always
		// decided the same way whenever the stream stops early.
		o.rule.Z = 2.576
	}
	baseSeed := p.cfg.Seed
	if o.baseSeed != nil {
		baseSeed = *o.baseSeed
	}
	// One cell on the shared scheduler (internal/exec): the estimate is a
	// single-cell schedule, so standalone estimates and sweep cells run on
	// the same machinery with the same determinism contract. A configured
	// dispatcher (WithDispatcher) replaces the in-process pool; the cell
	// carries its Config so a remote dispatcher can ship the scenario.
	start := stat.Proportion{Successes: prev.Succeeds, Trials: prev.Trials}
	var rec *tallyRecorder
	if o.store != nil && prev.Trials == 0 {
		// Durable resume: replay the stored prefix through the rule at
		// cold batch boundaries and start simulation where it runs out.
		// A load error just means a cold run; the append then restocks.
		batch := storeBatch(o.rule)
		planKey := p.StoreKey()
		replaySpan := o.span.StartChild("store-replay")
		if stored, err := o.store.LoadTally(planKey, baseSeed, batch); err == nil {
			start, _ = replayStored(stored, trials, o.rule)
		}
		replaySpan.SetAttr("resumed_trials", start.Trials)
		replaySpan.End()
		rec = &tallyRecorder{store: o.store, planKey: planKey, baseSeed: baseSeed, batch: batch, start: start.Trials}
	}
	cell := exec.Cell{
		MaxTrials: trials,
		BaseSeed:  baseSeed,
		Start:     start,
		Rule:      o.rule,
		NewTrial:  p.newTrialMaker(),
		NewBlock:  p.newBlockMaker(),
		Scenario:  p.cfg,
		Trace:     o.span,
		Probe:     o.probe,
	}
	if rec != nil {
		// Store granularity even without a rule: un-ruled streams fold in
		// store-batch buckets (no stop decisions depend on it) so the
		// persisted decomposition is shared with ruled requests.
		cell.Bucket = rec.batch
		cell.OnBatch = rec.observe
	}
	var prop stat.Proportion
	d := o.dispatcher
	if d == nil {
		d = exec.Local{}
	}
	// Background context: a lone estimate has no cancellation surface.
	if err := d.Run(context.Background(), o.workers, []exec.Cell{cell}, func(_ int, got stat.Proportion) { prop = got }); err != nil {
		return Estimate{}, err
	}
	rec.flush()
	if o.resumeReport != nil {
		o.resumeReport(start.Trials)
	}
	lo, hi := prop.Wilson(1.96)
	return Estimate{
		Rate: prop.Rate(), Low: lo, Hi: hi,
		Trials: prop.Trials, Succeeds: prop.Successes,
	}, nil
}

// ShardTally is the raw, mergeable outcome of one shard of a plan's trial
// stream: success counts bucketed per batch, in trial order. It is the
// unit of work the cluster layer moves between machines; a coordinator
// concatenates tallies in shard order and replays the stopping rule over
// the merged prefixes, reproducing the single-process stop decisions
// exactly (see internal/cluster).
type ShardTally struct {
	// Trials is the number of trials the shard executed.
	Trials int
	// Batch is the bucket granularity: Successes[i] counts successes among
	// shard trials [i*Batch, min((i+1)*Batch, Trials)).
	Batch int
	// Successes has ceil(Trials/Batch) entries.
	Successes []int
}

// TallyShard runs trials with seeds baseSeed+0 .. baseSeed+trials-1 on
// `workers` goroutines (<= 0 means GOMAXPROCS) and returns their per-batch
// success tally — the worker side of the cluster shard protocol. There is
// deliberately no stopping rule: a shard cannot know the merged prefix it
// will land in, so stop decisions belong to the coordinator's replay.
//
// The tally is a pure function of (plan, baseSeed, trials, batch) — bucket
// membership is fixed by trial index, so worker count and scheduling order
// cannot change any bucket. Shards are therefore idempotent: a coordinator
// may re-run a dropped shard anywhere, even concurrently with a straggling
// first attempt, and fold in whichever copy returns.
func (p *Plan) TallyShard(baseSeed uint64, trials, batch, workers int) ShardTally {
	var t stat.Tally
	if newBlock := p.newBlockMaker(); newBlock != nil {
		t = exec.RunShardBlocks(workers, baseSeed, trials, batch, newBlock)
	} else {
		t = exec.RunShard(workers, baseSeed, trials, batch, p.newTrialMaker())
	}
	return ShardTally{Trials: t.Trials, Batch: t.Batch, Successes: t.Successes}
}

// EstimationCore reports which execution core this plan's estimation
// paths (Estimate, EstimateFrom, TallyShard) run trials on: "lanes" (the
// trial-parallel lane-transposed core), "bitset" (the word-parallel round
// core), "scalar" (the scalar reference round core), or "concurrent" (the
// goroutine-per-node reference engine). The choice is a pure function of
// the compiled plan — results are bit-identical across cores; this is the
// observability hook the serving layer reports per response.
func (p *Plan) EstimationCore() string {
	switch {
	case p.newBlockMaker() != nil:
		return "lanes"
	case p.cfg.Concurrent:
		return "concurrent"
	case p.sim.ScalarCore:
		return "scalar"
	default:
		return "bitset"
	}
}

// newTrialMaker returns the per-worker trial constructor for this plan:
// a reusable engine Runner per worker (the fast path), or the
// goroutine-per-node reference engine when Config.Concurrent is set.
func (p *Plan) newTrialMaker() stat.TrialMaker {
	if p.cfg.Concurrent {
		return func() stat.Trial {
			return func(seed uint64) bool {
				simCfg := *p.sim
				simCfg.Seed = seed
				res, err := sim.RunConcurrent(&simCfg)
				if err != nil {
					panic(fmt.Sprintf("faultcast: estimate trial: %v", err))
				}
				return res.Success
			}
		}
	}
	return func() stat.Trial {
		runner, err := sim.NewRunner(p.sim)
		if err != nil {
			panic(fmt.Sprintf("faultcast: estimate trial: %v", err)) // unreachable: compiled
		}
		return func(seed uint64) bool {
			res, err := runner.Run(seed)
			if err != nil {
				panic(fmt.Sprintf("faultcast: estimate trial: %v", err))
			}
			return res.Success
		}
	}
}

// newBlockMaker returns the per-worker block-trial constructor for this
// plan — a reusable lane-transposed runner per worker, computing 64
// trials per call with verdicts bit-identical to newTrialMaker's — or nil
// when the plan has no lane lowering or an explicit engine selection
// (Concurrent, ScalarCore) asks for the round engines.
func (p *Plan) newBlockMaker() stat.TrialBlockMaker {
	if p.lanes == nil || p.cfg.Concurrent || p.cfg.ScalarCore {
		return nil
	}
	spec := p.lanes
	return func() stat.TrialBlock {
		lr, err := sim.NewLaneRunner(spec)
		if err != nil {
			panic(fmt.Sprintf("faultcast: estimate block: %v", err)) // unreachable: validated at Compile
		}
		return lr.Run
	}
}

// publicResult converts an engine result to the public Result.
func publicResult(res *sim.Result) Result {
	return Result{
		Success:     res.Success,
		Rounds:      res.Stats.Rounds,
		FirstFailed: res.FirstFailed,
		Faults:      res.Stats.Faults,
		Deliveries:  res.Stats.Deliveries,
		Collisions:  res.Stats.Collisions,
	}
}

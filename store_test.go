package faultcast_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"faultcast"
	"faultcast/internal/store"
)

// storeMatrix is the bit-identity property matrix: scenarios spanning
// graphs × models × faults, each crossed with every stopping-rule shape
// (fixed budget, half-width, almost-safe target) — ≥ 20 (scenario, rule)
// cells in all. For each cell the contract under test is the store's
// whole reason to exist: cold run ≡ first store-backed run ≡ warm repeat
// ≡ reopened-store repeat ≡ partial-budget-then-refine, bit for bit.
func storeMatrix() map[string]faultcast.Config {
	return map[string]faultcast.Config{
		"mp/omission/line": {
			Graph: faultcast.Line(12), Source: 0, Message: []byte("1"),
			Model: faultcast.MessagePassing, Fault: faultcast.Omission, P: 0.4,
			Algorithm: faultcast.SimpleOmission,
		},
		"mp/omission/grid-flooding": {
			Graph: faultcast.Grid(4, 4), Source: 0, Message: []byte("1"),
			Model: faultcast.MessagePassing, Fault: faultcast.Omission, P: 0.5,
			Algorithm: faultcast.Flooding,
		},
		"mp/malicious/tree": {
			Graph: faultcast.KaryTree(15, 2), Source: 0, Message: []byte("1"),
			Model: faultcast.MessagePassing, Fault: faultcast.Malicious, P: 0.3,
			Algorithm: faultcast.SimpleMalicious, Adversary: faultcast.FlipAdv,
		},
		"mp/limited/composed": {
			Graph: faultcast.Line(9), Source: 0, Message: []byte("1"),
			Model: faultcast.MessagePassing, Fault: faultcast.LimitedMalicious, P: 0.2,
			Algorithm: faultcast.Composed, Adversary: faultcast.FlipAdv,
		},
		"radio/omission/star": {
			Graph: faultcast.Star(6), Source: 1, Message: []byte("1"),
			Model: faultcast.Radio, Fault: faultcast.Omission, P: 0.3,
			Algorithm: faultcast.SimpleOmission,
		},
		"radio/omission/layered": {
			Graph: faultcast.Layered(3), Source: 0, Message: []byte("1"),
			Model: faultcast.Radio, Fault: faultcast.Omission, P: 0.4,
			Algorithm: faultcast.RadioRepeat,
		},
		"radio/malicious/line": {
			Graph: faultcast.Line(10), Source: 0, Message: []byte("1"),
			Model: faultcast.Radio, Fault: faultcast.Malicious, P: 0.05,
			Algorithm: faultcast.RadioRepeat, Adversary: faultcast.FlipAdv,
		},
	}
}

// storeRules crosses the matrix with every stopping-rule shape. The
// trial budget is deliberately not a multiple of the 32-trial batch, so
// every fixed-budget stream ends in a short tail bucket — the hardest
// alignment case for ruled replay.
func storeRules() map[string][]faultcast.EstimateOption {
	return map[string][]faultcast.EstimateOption{
		"budget":     nil,
		"halfwidth":  {faultcast.WithHalfWidth(0.06)},
		"almostsafe": {faultcast.WithAlmostSafeTarget()},
	}
}

const storeMatrixTrials = 300

func TestStoreBackedEstimateBitIdentity(t *testing.T) {
	cells := 0
	for name, cfg := range storeMatrix() {
		for rname, ropts := range storeRules() {
			cells++
			t.Run(name+"/"+rname, func(t *testing.T) {
				plan, err := faultcast.Compile(cfg)
				if err != nil {
					t.Fatal(err)
				}
				opts := append([]faultcast.EstimateOption{faultcast.WithBaseSeed(41)}, ropts...)

				cold, err := plan.Estimate(storeMatrixTrials, opts...)
				if err != nil {
					t.Fatal(err)
				}

				dir := t.TempDir()
				st, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				var resumed int
				withStore := append(append([]faultcast.EstimateOption{}, opts...),
					faultcast.WithTallyStore(st),
					faultcast.WithResumeReport(func(n int) { resumed = n }))

				// First store-backed run: nothing stored, everything fresh.
				got, err := plan.Estimate(storeMatrixTrials, withStore...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("first store-backed run: %+v != cold %+v", got, cold)
				}
				if resumed != 0 {
					t.Fatalf("first run resumed %d trials from an empty store", resumed)
				}

				// Warm repeat: the whole stream must come back from the
				// store — zero simulation — and still match cold exactly.
				got, err = plan.Estimate(storeMatrixTrials, withStore...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("warm repeat: %+v != cold %+v", got, cold)
				}
				if resumed != cold.Trials {
					t.Fatalf("warm repeat simulated %d trials, want 0", cold.Trials-resumed)
				}

				// Reopened store (a new process over the same directory).
				st2, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				withStore2 := append(append([]faultcast.EstimateOption{}, opts...),
					faultcast.WithTallyStore(st2),
					faultcast.WithResumeReport(func(n int) { resumed = n }))
				got, err = plan.Estimate(storeMatrixTrials, withStore2...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("reopened store: %+v != cold %+v", got, cold)
				}
				if resumed != cold.Trials {
					t.Fatalf("reopened store simulated %d trials, want 0", cold.Trials-resumed)
				}

				// Partial budget first, then the full budget against a
				// fresh directory: the refinement resumes the stored
				// prefix (the first full batch is always aligned) and must
				// land on the cold bits exactly.
				st3, err := store.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				withStore3 := append(append([]faultcast.EstimateOption{}, opts...),
					faultcast.WithTallyStore(st3),
					faultcast.WithResumeReport(func(n int) { resumed = n }))
				if _, err := plan.Estimate(storeMatrixTrials/2, withStore3...); err != nil {
					t.Fatal(err)
				}
				got, err = plan.Estimate(storeMatrixTrials, withStore3...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("partial-then-refine: %+v != cold %+v", got, cold)
				}
				if resumed < 32 {
					t.Fatalf("refine resumed only %d trials of the stored half", resumed)
				}
			})
		}
	}
	if cells < 20 {
		t.Fatalf("property matrix has %d cells, want >= 20", cells)
	}
}

// TestStoreBackedEstimateSurvivesCorruption: a store whose segment was
// truncated or bit-flipped must still produce cold-identical estimates —
// the intact prefix resumes, the rest re-simulates, and the appended
// batches heal the file.
func TestStoreBackedEstimateSurvivesCorruption(t *testing.T) {
	cfg := storeMatrix()["mp/omission/grid-flooding"]
	plan, err := faultcast.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := plan.Estimate(storeMatrixTrials, faultcast.WithBaseSeed(41))
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"truncate", "bitflip"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := plan.Estimate(storeMatrixTrials,
				faultcast.WithBaseSeed(41), faultcast.WithTallyStore(st)); err != nil {
				t.Fatal(err)
			}
			infos, err := store.Scan(dir)
			if err != nil || len(infos) != 1 {
				t.Fatalf("Scan: %v, %v", infos, err)
			}
			data, err := os.ReadFile(infos[0].Path)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "truncate":
				data = data[:len(data)*2/3]
			case "bitflip":
				data[len(data)/2] ^= 0x10
			}
			if err := os.WriteFile(infos[0].Path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			st2, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			var resumed int
			got, err := plan.Estimate(storeMatrixTrials,
				faultcast.WithBaseSeed(41), faultcast.WithTallyStore(st2),
				faultcast.WithResumeReport(func(n int) { resumed = n }))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, cold) {
				t.Fatalf("%s: %+v != cold %+v", mode, got, cold)
			}
			if resumed >= cold.Trials {
				t.Fatalf("%s: resumed %d of %d trials from a damaged store", mode, resumed, cold.Trials)
			}
			if s := st2.Stats(); s.CorruptRecordsSkipped == 0 {
				t.Fatalf("%s: corruption not counted: %+v", mode, s)
			}

			// The refinement healed the file: one more pass is fully warm.
			st3, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, err = plan.Estimate(storeMatrixTrials,
				faultcast.WithBaseSeed(41), faultcast.WithTallyStore(st3),
				faultcast.WithResumeReport(func(n int) { resumed = n }))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, cold) || resumed != cold.Trials {
				t.Fatalf("%s: healed pass resumed %d, got %+v", mode, resumed, got)
			}
		})
	}
}

// TestSweepWithTallyStore: a store-backed sweep must emit cell results
// bit-identical to a storeless run, and a second pass over the same
// store must simulate nothing.
func TestSweepWithTallyStore(t *testing.T) {
	spec := faultcast.SweepSpec{
		Graphs: []faultcast.SweepGraph{
			{Spec: "line:10"},
			{Spec: "grid:4x4"},
		},
		Models: []faultcast.Model{faultcast.MessagePassing, faultcast.Radio},
		Ps:     []float64{0.2, 0.5},
		Seed:   7,
		Budget: faultcast.CellBudget{Trials: 200, AlmostSafe: true},
	}
	sp, err := faultcast.CompileSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sp.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sp.Collect(context.Background(), faultcast.WithSweepTallyStore(st))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sp.Collect(context.Background(), faultcast.WithSweepTallyStore(st2))
	if err != nil {
		t.Fatal(err)
	}

	if len(first) != len(cold) || len(warm) != len(cold) {
		t.Fatalf("cell counts: cold %d, first %d, warm %d", len(cold), len(first), len(warm))
	}
	for i := range cold {
		if !reflect.DeepEqual(first[i].Estimate, cold[i].Estimate) {
			t.Fatalf("cell %d first pass: %+v != cold %+v", i, first[i].Estimate, cold[i].Estimate)
		}
		if first[i].Resumed != 0 {
			t.Fatalf("cell %d first pass resumed %d from an empty store", i, first[i].Resumed)
		}
		if !reflect.DeepEqual(warm[i].Estimate, cold[i].Estimate) {
			t.Fatalf("cell %d warm pass: %+v != cold %+v", i, warm[i].Estimate, cold[i].Estimate)
		}
		if warm[i].Resumed != warm[i].Estimate.Trials {
			t.Fatalf("cell %d warm pass simulated %d trials, want 0",
				i, warm[i].Estimate.Trials-warm[i].Resumed)
		}
	}

	// Cells sharing a compiled plan but differing in p get distinct
	// segments: one per (plan fingerprint, derived seed, batch) triple.
	infos, err := store.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(cold) {
		t.Fatalf("Scan found %d segments for %d cells", len(infos), len(cold))
	}
	for _, si := range infos {
		if filepath.Ext(si.Path) != ".tally" || !si.Clean() {
			t.Fatalf("segment %+v", si)
		}
	}
}

package faultcast

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"faultcast/internal/adversary"
	"faultcast/internal/graph"
	"faultcast/internal/kucera"
	"faultcast/internal/protocol"
	"faultcast/internal/protocols/flooding"
	"faultcast/internal/protocols/radiorepeat"
	"faultcast/internal/protocols/simplemalicious"
	"faultcast/internal/protocols/simpleomission"
	"faultcast/internal/protocols/twonode"
	"faultcast/internal/radio"
	"faultcast/internal/sim"
)

// Algorithm selects one of the paper's broadcasting algorithms.
type Algorithm int

const (
	// Auto picks the paper's algorithm for the configured scenario:
	// flooding for omission message passing (Theorem 3.1), the composed
	// algorithm for limited-malicious message passing (Theorem 3.2),
	// Simple-Malicious for malicious message passing, and the repeated-
	// schedule algorithms for radio (Theorem 3.4).
	Auto Algorithm = iota
	// SimpleOmission is Algorithm Simple-Omission (§2.1): node v_i
	// transmits for a window of m steps in phase i; works in both models
	// for any p < 1 under omission failures.
	SimpleOmission
	// SimpleMalicious is Algorithm Simple-Malicious (§2.2.1): phases plus
	// a majority vote over the parent's window.
	SimpleMalicious
	// Flooding is the Θ(D + log n) BFS-tree flood of Theorem 3.1
	// (message passing + omission only).
	Flooding
	// Composed is the Kučera-style CO1/CO2 composition of Theorem 3.2
	// (message passing + limited malicious, p < 1/2).
	Composed
	// RadioRepeat is Omission-Radio/Malicious-Radio of Theorem 3.4: each
	// step of a fault-free schedule repeated m times (radio only).
	RadioRepeat
	// TimingBit is the two-node "hello" protocol (§2.2.2): one bit over
	// K2 under limited malicious failures, any p < 1. The message must be
	// "0" or "1" and the graph K2.
	TimingBit
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case SimpleOmission:
		return "simple-omission"
	case SimpleMalicious:
		return "simple-malicious"
	case Flooding:
		return "flooding"
	case Composed:
		return "composed"
	case RadioRepeat:
		return "radio-repeat"
	case TimingBit:
		return "timing-bit"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm parses the string forms printed by Algorithm.String
// ("auto", "simple-omission", "simple-malicious", "flooding", "composed",
// "radio-repeat", "timing-bit") — the vocabulary of the CLI -algo flag and
// the service's "algorithm" request field.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "simple-omission":
		return SimpleOmission, nil
	case "simple-malicious":
		return SimpleMalicious, nil
	case "flooding":
		return Flooding, nil
	case "composed":
		return Composed, nil
	case "radio-repeat":
		return RadioRepeat, nil
	case "timing-bit":
		return TimingBit, nil
	default:
		return Auto, fmt.Errorf("faultcast: unknown algorithm %q", s)
	}
}

// ParseModel parses "mp" / "message-passing" or "radio".
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mp", "message-passing":
		return MessagePassing, nil
	case "radio":
		return Radio, nil
	default:
		return MessagePassing, fmt.Errorf("faultcast: unknown model %q", s)
	}
}

// ParseFault parses "omission", "malicious", or "limited" /
// "limited-malicious".
func ParseFault(s string) (Fault, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "omission":
		return Omission, nil
	case "malicious":
		return Malicious, nil
	case "limited", "limited-malicious":
		return LimitedMalicious, nil
	default:
		return Omission, fmt.Errorf("faultcast: unknown fault type %q", s)
	}
}

// ParseAdversary parses "worst", "crash", "flip", or "noise".
func ParseAdversary(s string) (AdversaryKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "worst", "worst-case":
		return WorstCase, nil
	case "crash":
		return CrashAdv, nil
	case "flip":
		return FlipAdv, nil
	case "noise":
		return NoiseAdv, nil
	default:
		return WorstCase, fmt.Errorf("faultcast: unknown adversary %q", s)
	}
}

// AdversaryKind selects the malicious strategy for Run.
type AdversaryKind int

// String returns the ParseAdversary vocabulary form ("worst", "crash",
// "flip", "noise"), so the value round-trips through the CLI flags and
// service request fields.
func (a AdversaryKind) String() string {
	switch a {
	case WorstCase:
		return "worst"
	case CrashAdv:
		return "crash"
	case FlipAdv:
		return "flip"
	case NoiseAdv:
		return "noise"
	default:
		return fmt.Sprintf("AdversaryKind(%d)", int(a))
	}
}

const (
	// WorstCase picks the paper's proof-strategy adversary for the
	// scenario: the equivocator (Theorem 2.3) in the message passing
	// model, the star adversary (Theorem 2.4) in the radio model. Both
	// need to know the two candidate messages; Run uses the configured
	// message and its byte-flipped sibling "0"/"1" when applicable, else
	// falls back to Flip.
	WorstCase AdversaryKind = iota
	// CrashAdv silences faulty nodes.
	CrashAdv
	// FlipAdv rewrites faulty payloads to a fixed wrong value.
	FlipAdv
	// NoiseAdv randomizes faulty payloads.
	NoiseAdv
)

// Config describes one broadcast simulation.
type Config struct {
	Graph   *Graph
	Source  int
	Message []byte
	Model   Model
	Fault   Fault
	// P is the per-step transmitter failure probability in [0, 1).
	P float64
	// Algorithm selects the protocol (Auto = the paper's choice for the
	// scenario).
	Algorithm Algorithm
	// WindowC overrides the window constant c of m = ceil(c·log n)
	// (0 = derive from P as the analyses prescribe).
	WindowC float64
	// Alpha is the Theorem 3.2 exponent for Composed (default 1.5).
	Alpha float64
	// Adversary selects the malicious strategy (ignored for omission).
	Adversary AdversaryKind
	// Seed makes the run reproducible.
	Seed uint64
	// Rounds overrides the running time (0 = the algorithm's own horizon).
	Rounds int
	// Trace, if non-nil, receives a per-round execution log (faults,
	// transmissions, deliveries, collisions). Single runs only; ignored
	// by EstimateSuccess.
	Trace io.Writer
	// Concurrent runs the goroutine-per-node engine instead of the
	// sequential one (identical results, slower; the model-faithful
	// reference implementation).
	Concurrent bool
	// ScalarCore runs the engine's scalar reference round core instead of
	// the word-parallel bitset core (identical results, slower; kept so
	// the bitset core stays differentially testable end to end).
	ScalarCore bool
	// Core selects the engine core for Monte-Carlo estimation (Estimate,
	// EstimateFrom, TallyShard). The default CoreAuto uses the
	// lane-transposed trial-parallel core — 64 trials per machine word —
	// whenever the scenario supports it, falling back to the bitset core
	// otherwise; all cores are proven bit-identical by the differential
	// test matrix. Single runs (Plan.Run) always use the scalar/bitset
	// engine, which is the only one that produces full per-run statistics.
	Core Core
}

// Core selects the execution core for estimation trial streams.
type Core int

const (
	// CoreAuto picks the fastest supported core: the lane-transposed
	// trial-parallel core when the scenario has a lane lowering, the
	// word-parallel bitset core otherwise.
	CoreAuto Core = iota
	// CoreBitset forces the word-parallel bitset round core.
	CoreBitset
	// CoreScalar forces the scalar reference round core.
	CoreScalar
	// CoreLanes forces the lane-transposed trial-parallel core; Compile
	// fails if the scenario has no lane lowering (or Concurrent is set).
	CoreLanes
)

// String returns the ParseCore vocabulary form.
func (c Core) String() string {
	switch c {
	case CoreAuto:
		return "auto"
	case CoreBitset:
		return "bitset"
	case CoreScalar:
		return "scalar"
	case CoreLanes:
		return "lanes"
	default:
		return fmt.Sprintf("Core(%d)", int(c))
	}
}

// ParseCore parses "auto", "bitset", "scalar", or "lanes".
func ParseCore(s string) (Core, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return CoreAuto, nil
	case "bitset":
		return CoreBitset, nil
	case "scalar":
		return CoreScalar, nil
	case "lanes":
		return CoreLanes, nil
	default:
		return CoreAuto, fmt.Errorf("faultcast: unknown core %q", s)
	}
}

// CanonicalString returns a deterministic serialization of the
// configuration's simulation semantics: every field that can change what a
// trial computes, in a fixed order, with floats rendered by their exact
// IEEE-754 bits and the graph reduced to its structural fingerprint
// (graph.Fingerprint — vertex count plus canonical edge list). Two configs
// produce the same string iff every trial stream they describe is
// bit-identical.
//
// Excluded on purpose: Trace (observation, not semantics) and the engine
// selectors Concurrent, ScalarCore, and Core — the goroutine-per-node
// engine, the scalar round core, and the lane-transposed trial-parallel
// core are proven bit-identical to the default by the differential test
// matrix, so they cannot change a result, only how fast it arrives. Seed
// IS included: results are deterministic in (config, seed), so different
// seeds are different computations.
func (cfg Config) CanonicalString() string {
	var b strings.Builder
	b.WriteString("faultcast/v1|graph:")
	if cfg.Graph == nil {
		b.WriteString("nil")
	} else {
		fp := cfg.Graph.Fingerprint()
		b.WriteString(hex.EncodeToString(fp[:]))
	}
	fmt.Fprintf(&b, "|src:%d|msg:%s|model:%d|fault:%d|p:%016x|algo:%d|wc:%016x|alpha:%016x|adv:%d|seed:%d|rounds:%d",
		cfg.Source, hex.EncodeToString(cfg.Message), int(cfg.Model), int(cfg.Fault),
		math.Float64bits(cfg.P), int(cfg.Algorithm), math.Float64bits(cfg.WindowC),
		math.Float64bits(cfg.Alpha), int(cfg.Adversary), cfg.Seed, cfg.Rounds)
	return b.String()
}

// Fingerprint returns a 64-hex-digit SHA-256 key over CanonicalString —
// the cache key of the serving layer: semantically identical requests
// (same topology, scenario, and seed, regardless of graph name, engine
// selection, or tracing) hash equal, so their plans and estimates are
// shareable.
func (cfg Config) Fingerprint() string {
	sum := sha256.Sum256([]byte(cfg.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// Result summarizes a run.
type Result struct {
	// Success is true iff every node ended with exactly the source
	// message.
	Success bool
	// Rounds is the executed horizon.
	Rounds int
	// FirstFailed is the smallest node id with a wrong output (-1 on
	// success).
	FirstFailed int
	// Faults is the total number of (node, step) transmitter failures.
	Faults int
	// Deliveries is the number of delivered messages.
	Deliveries int
	// Collisions is the number of radio collision events.
	Collisions int
}

// Run executes one simulation. It is a thin wrapper over Compile +
// Plan.Run; callers running many trials of the same scenario should
// Compile once and reuse the Plan.
func Run(cfg Config) (Result, error) {
	plan, err := Compile(cfg)
	if err != nil {
		return Result{}, err
	}
	return plan.Run(cfg.Seed)
}

// Estimate is a Monte-Carlo success estimate with a 95% Wilson interval.
type Estimate struct {
	Rate     float64
	Low, Hi  float64
	Trials   int
	Succeeds int
}

// AlmostSafe reports whether the estimate is compatible with the paper's
// almost-safety target 1 − 1/n (i.e. the interval reaches it).
func (e Estimate) AlmostSafe(n int) bool {
	return e.Hi >= 1-1/float64(n)
}

func (e Estimate) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", e.Rate, e.Low, e.Hi, e.Succeeds, e.Trials)
}

// EstimateSuccess runs `trials` independent simulations (seeds Seed+i) in
// parallel and estimates the success probability. It is a thin wrapper
// over Compile + Plan.Estimate, so the scenario is compiled once for the
// whole trial stream. Config.Concurrent is honored (it used to be
// silently ignored here): when set, every trial runs on the slower
// goroutine-per-node reference engine with bit-identical results.
func EstimateSuccess(cfg Config, trials int) (Estimate, error) {
	plan, err := Compile(cfg)
	if err != nil {
		return Estimate{}, err
	}
	return plan.Estimate(trials)
}

// build lowers the public Config to an engine configuration, plus the
// lane-transposed trial-parallel lowering when the scenario has one (nil
// otherwise — callers fall back to the scalar/bitset engine, and laneGate
// says which scenario feature blocked the lowering).
func build(cfg Config) (simCfg *sim.Config, lanes *sim.LaneSpec, laneGate string, err error) {
	if cfg.Graph == nil {
		return nil, nil, "", errors.New("faultcast: Config.Graph is nil")
	}
	if len(cfg.Message) == 0 {
		return nil, nil, "", errors.New("faultcast: empty message")
	}
	if cfg.Source < 0 || cfg.Source >= cfg.Graph.N() {
		return nil, nil, "", fmt.Errorf("faultcast: source %d out of range", cfg.Source)
	}
	if cfg.P < 0 || cfg.P >= 1 {
		return nil, nil, "", fmt.Errorf("faultcast: P=%v outside [0,1)", cfg.P)
	}
	model := sim.MessagePassing
	if cfg.Model == Radio {
		model = sim.Radio
	}
	var fault sim.FaultType
	switch cfg.Fault {
	case Omission:
		fault = sim.Omission
	case Malicious:
		fault = sim.Malicious
	case LimitedMalicious:
		fault = sim.LimitedMalicious
	default:
		return nil, nil, "", fmt.Errorf("faultcast: unknown fault %d", int(cfg.Fault))
	}

	algo := cfg.Algorithm
	if algo == Auto {
		algo = pickAlgorithm(cfg)
	}
	newNode, rounds, lp, err := buildProtocol(cfg, algo, model)
	if err != nil {
		return nil, nil, "", err
	}
	if cfg.Rounds > 0 {
		rounds = cfg.Rounds
	}
	simCfg = &sim.Config{
		Graph:      cfg.Graph,
		Model:      model,
		Fault:      fault,
		P:          cfg.P,
		Source:     cfg.Source,
		SourceMsg:  cfg.Message,
		NewNode:    newNode,
		Rounds:     rounds,
		Seed:       cfg.Seed,
		ScalarCore: cfg.ScalarCore,
	}
	if fault == sim.Malicious || fault == sim.LimitedMalicious {
		simCfg.Adversary = buildAdversary(cfg)
	}
	lanes, laneGate = buildLaneSpec(cfg, simCfg, lp)
	return simCfg, lanes, laneGate, nil
}

// laneParts is a protocol's contribution to its lane lowering: the
// transposed kernel constructor (parameterized by the payload symbol
// count), the per-vertex send-target lists (nil for radio broadcast), and
// whether the protocol is content-free (its outputs never depend on
// payload bytes — the timing protocol — so payload-only adversary effects
// are unobservable and the default-message gate does not apply).
type laneParts struct {
	newKernel   func(symbols int) sim.LaneKernel
	targets     [][]int
	contentFree bool
}

// buildLaneSpec assembles the lane-transposed lowering of a built
// scenario, or nil plus the gating reason when it has none. The lane core
// tracks payloads as k = symbols−1 bit columns per (vertex, trial) over a
// small fixed symbol alphabet — {default, M} for the crash, flip, and
// equivocating adversaries (flipOf rewrites every non-default message to
// the default, and the equivocator toggles a bit message), plus the noise
// adversary's third value when its {"0","1"} draws fall outside
// {default, M}. The lowering is faithful exactly when that alphabet
// covers every payload any execution can carry, which leaves two gated
// shapes: a content protocol broadcasting the default message itself (the
// encoding cannot tell M from an adopted default), and the radio
// worst-case star adversary (it adds out-of-turn transmissions, which no
// keep-or-silence corruption models).
func buildLaneSpec(cfg Config, simCfg *sim.Config, lp *laneParts) (*sim.LaneSpec, string) {
	if lp == nil {
		return nil, "the algorithm has no lane kernel"
	}
	if !lp.contentFree && protocol.IsDefault(cfg.Message) {
		return nil, `message "0" is the default symbol, which the lane payload encoding cannot distinguish from an uninformed node's default`
	}
	corruption := sim.LaneSilence
	symbols := 2
	noiseSym := 0
	if simCfg.Fault != sim.Omission {
		switch cfg.Adversary {
		case CrashAdv:
			corruption = sim.LaneSilence
		case FlipAdv:
			corruption = sim.LaneFlip
		case NoiseAdv:
			if lp.contentFree {
				// Payload rewrites are unobservable to a content-free
				// protocol, and the adversary's draws live on its private
				// stream, so keep-the-targets is an exact model.
				corruption = sim.LaneFlip
			} else {
				corruption = sim.LaneNoise
				if string(cfg.Message) == "1" {
					noiseSym = 1 // the noise alphabet {"0","1"} is {default, M}
				} else {
					symbols = 3 // noise's "1" is a third symbol
					noiseSym = 2
				}
			}
		default: // WorstCase and out-of-range kinds fall back to Flip
			if isBit(cfg.Message) {
				if simCfg.Model == sim.Radio {
					return nil, "the radio worst-case star adversary transmits out of turn, which the lane corruptions cannot model"
				}
				if lp.contentFree {
					corruption = sim.LaneFlip // the equivocator swaps bits the receiver never reads
				} else {
					corruption = sim.LaneEquivocate
				}
			} else {
				corruption = sim.LaneFlip
			}
		}
	}
	return &sim.LaneSpec{
		Graph:      simCfg.Graph,
		Model:      simCfg.Model,
		Fault:      simCfg.Fault,
		P:          simCfg.P,
		Rounds:     simCfg.Rounds,
		Corruption: corruption,
		Symbols:    symbols,
		NoiseSym:   noiseSym,
		Source:     cfg.Source,
		Targets:    lp.targets,
		NewKernel:  lp.newKernel,
	}, ""
}

func pickAlgorithm(cfg Config) Algorithm {
	if cfg.Model == Radio {
		return RadioRepeat
	}
	switch cfg.Fault {
	case Omission:
		return Flooding
	case LimitedMalicious:
		if cfg.Graph.N() == 2 && isBit(cfg.Message) {
			return TimingBit
		}
		return Composed
	default:
		return SimpleMalicious
	}
}

func isBit(msg []byte) bool {
	return len(msg) == 1 && (msg[0] == '0' || msg[0] == '1')
}

func buildProtocol(cfg Config, algo Algorithm, model sim.Model) (func(int) sim.Node, int, *laneParts, error) {
	n := cfg.Graph.N()
	switch algo {
	case SimpleOmission:
		c := cfg.WindowC
		if c == 0 {
			c = protocol.WindowCOmission(cfg.P)
		}
		p := simpleomission.New(cfg.Graph, cfg.Source, model, c)
		return p.NewNode, p.Rounds(), &laneParts{newKernel: p.NewLaneKernel, targets: p.LaneTargets()}, nil

	case SimpleMalicious:
		c := cfg.WindowC
		if c == 0 {
			if model == sim.Radio {
				c = protocol.WindowCRadioMalicious(cfg.P, cfg.Graph.MaxDegree())
			} else {
				c = protocol.WindowCMalicious(cfg.P)
			}
		}
		p := simplemalicious.New(cfg.Graph, cfg.Source, model, c)
		return p.NewNode, p.Rounds(), &laneParts{newKernel: p.NewLaneKernel, targets: p.LaneTargets()}, nil

	case Flooding:
		if model != sim.MessagePassing {
			return nil, 0, nil, errors.New("faultcast: flooding requires the message passing model")
		}
		a := cfg.WindowC
		if a == 0 {
			a = 6
		}
		p := flooding.New(cfg.Graph, cfg.Source)
		return p.NewNode, p.Rounds(a), &laneParts{newKernel: p.NewLaneKernel, targets: p.LaneTargets()}, nil

	case Composed:
		if model != sim.MessagePassing {
			return nil, 0, nil, errors.New("faultcast: the composed algorithm requires the message passing model")
		}
		alpha := cfg.Alpha
		if alpha == 0 {
			alpha = 1.5
		}
		plan, err := kucera.PlanForGraph(cfg.Graph, cfg.Source, cfg.P, alpha, 1, kucera.Options{})
		if err != nil {
			return nil, 0, nil, err
		}
		p, err := kucera.New(cfg.Graph, cfg.Source, plan)
		if err != nil {
			return nil, 0, nil, err
		}
		return p.NewNode, p.Rounds(), &laneParts{newKernel: p.NewLaneKernel, targets: p.LaneTargets()}, nil

	case RadioRepeat:
		if model != sim.Radio {
			return nil, 0, nil, errors.New("faultcast: radio-repeat requires the radio model")
		}
		variant := radiorepeat.OmissionVariant
		c := cfg.WindowC
		if cfg.Fault == Omission {
			if c == 0 {
				c = protocol.WindowCOmission(cfg.P)
			}
		} else {
			variant = radiorepeat.MaliciousVariant
			if c == 0 {
				c = protocol.WindowCRadioMalicious(cfg.P, cfg.Graph.MaxDegree())
			}
		}
		sched := radio.Greedy(cfg.Graph, cfg.Source)
		p, err := radiorepeat.New(cfg.Graph, cfg.Source, sched, variant, c)
		if err != nil {
			return nil, 0, nil, err
		}
		return p.NewNode, p.Rounds(), &laneParts{newKernel: p.NewLaneKernel}, nil

	case TimingBit:
		if n != 2 {
			return nil, 0, nil, errors.New("faultcast: the timing protocol runs on K2 only")
		}
		if !isBit(cfg.Message) {
			return nil, 0, nil, errors.New("faultcast: the timing protocol broadcasts a single bit (\"0\" or \"1\")")
		}
		m := 64
		if cfg.WindowC > 0 {
			m = int(cfg.WindowC)
		}
		p := twonode.New(m)
		lp := &laneParts{
			newKernel:   p.NewLaneKernel(cfg.Source, cfg.Message[0] == '1'),
			contentFree: true,
		}
		return p.NewNode, p.Rounds(), lp, nil

	default:
		return nil, 0, nil, fmt.Errorf("faultcast: unknown algorithm %d", int(algo))
	}
}

func buildAdversary(cfg Config) sim.Adversary {
	switch cfg.Adversary {
	case CrashAdv:
		return adversary.Crash{}
	case FlipAdv:
		return adversary.Flip{Wrong: flipOf(cfg.Message)}
	case NoiseAdv:
		return adversary.RandomNoise{}
	case WorstCase:
		m0, m1 := []byte("0"), []byte("1")
		if isBit(cfg.Message) {
			if cfg.Model == Radio {
				return adversary.Star{M0: m0, M1: m1}
			}
			return adversary.Equivocator{M0: m0, M1: m1, SourceOnly: true}
		}
		return adversary.Flip{Wrong: flipOf(cfg.Message)}
	default:
		return adversary.Flip{Wrong: flipOf(cfg.Message)}
	}
}

// flipOf returns a payload guaranteed to differ from msg ("0" unless msg
// is "0").
func flipOf(msg []byte) []byte {
	if len(msg) == 1 && msg[0] == '0' {
		return []byte("1")
	}
	return []byte("0")
}

// BFSTree re-exports breadth-first spanning tree construction for callers
// building custom schedules or visualizations.
func BFSTree(g *Graph, source int) *graph.Tree { return graph.BFSTree(g, source) }

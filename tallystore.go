package faultcast

import (
	"faultcast/internal/stat"
)

// TallyBucket is one batch of a plan's trial stream in a durable tally
// store: the batch's trial count and how many of those trials succeeded.
// A contiguous bucket sequence starting at trial 0 is a complete record
// of a stream prefix — enough to resume the stream (success counting is
// order-free and seeds are positional) and, bucketed at the stopping
// rule's batch size, enough to replay every stop decision bit-identically.
type TallyBucket struct {
	Trials    int
	Successes int
}

// TallyStore is the persistence seam of WithTallyStore: a durable map
// from (seed-less plan key, base seed, batch granularity) to an
// append-only bucket sequence. internal/store implements it on disk;
// tests implement it in memory. Implementations must be safe for
// concurrent use and must return buckets in trial order, contiguous from
// trial 0.
//
// AppendTally's start names the absolute trial index the record begins
// at. Implementations must keep the stream contiguous: accept a record
// at the current end, let a record starting at an earlier stored bucket
// boundary supersede everything from that boundary on (the writer
// re-simulated the suffix at a different batch decomposition), and
// reject anything else. Append errors are reported but deliberately
// non-fatal to estimation — persistence is best-effort, correctness
// never depends on it.
type TallyStore interface {
	LoadTally(planKey string, baseSeed uint64, batch int) ([]TallyBucket, error)
	AppendTally(planKey string, baseSeed uint64, batch int, start int, buckets []TallyBucket) error
}

// StoreKey returns the plan's seed-less fingerprint — the identity under
// which a TallyStore files this plan's trial streams, equal to
// SweepCell.PlanKey for cells compiled from the same scenario. Two plans
// with equal StoreKeys run bit-identical trial streams from any given
// base seed, which is exactly what makes a stored prefix reusable across
// processes, daemons, and cluster workers.
func (p *Plan) StoreKey() string {
	seedless := p.cfg
	seedless.Seed = 0
	seedless.Trace = nil
	return seedless.Fingerprint()
}

// storeBatch returns the bucket granularity a store keys this stream
// under: the stopping rule's batch when one is active (stop decisions
// happen at its boundaries, so buckets must match them), else the
// default batch — un-ruled streams have no decisions to replay, but
// bucketing them identically lets ruled and un-ruled requests share one
// stored stream.
func storeBatch(rule stat.StopRule) int {
	if rule.Enabled() && rule.Batch > 0 {
		return rule.Batch
	}
	return 32
}

// replayStored folds a stored bucket sequence into the estimate a cold
// (maxTrials, rule) run would have accumulated, stopping exactly where
// the cold run would stop. It returns the resume point for simulation:
// trials [0, p.Trials) are covered by the store, simulation continues at
// p.Trials (done means the stream is already decided — zero trials to
// run).
//
// The bit-identity contract is enforced bucket by bucket. With a rule, a
// stored bucket is consumed only if its size equals the cold run's next
// batch, min(batch, maxTrials−covered) — the rule is then consulted at
// the same boundary with the same totals, reproducing the cold decision
// exactly. The first differently-sized bucket (a short tail persisted by
// a smaller budget, say) stops the replay there: that position is a cold
// batch boundary by construction, so simulation resumes on exactly the
// trials the cold run would batch next, and the freshly-appended aligned
// buckets supersede the mismatched tail. Without a rule there are no
// decisions to reproduce — any contiguous prefix that fits the budget is
// consumed whole.
func replayStored(buckets []TallyBucket, maxTrials int, rule stat.StopRule) (p stat.Proportion, done bool) {
	if maxTrials <= 0 {
		return p, true
	}
	batch := storeBatch(rule)
	ruled := rule.Enabled()
	for _, b := range buckets {
		if ruled {
			want := batch
			if rest := maxTrials - p.Trials; want > rest {
				want = rest
			}
			if b.Trials != want {
				return p, false
			}
		} else if p.Trials+b.Trials > maxTrials {
			return p, false
		}
		p.Trials += b.Trials
		p.Successes += b.Successes
		if p.Trials >= maxTrials || (ruled && rule.Done(p)) {
			return p, true
		}
	}
	return p, false
}

// tallyRecorder accumulates the batches a cell folds beyond its stored
// prefix, for one append after the cell completes. exec serializes
// OnBatch per cell (under the scheduler lock, or on the coordinator's
// replay goroutine) and onDone observes all of them, so no further
// locking is needed; a cell abandoned mid-stream simply never flushes.
type tallyRecorder struct {
	store    TallyStore
	planKey  string
	baseSeed uint64
	batch    int
	start    int
	buckets  []TallyBucket
}

// observe is the exec.Cell OnBatch hook.
func (r *tallyRecorder) observe(trials, successes int) {
	r.buckets = append(r.buckets, TallyBucket{Trials: trials, Successes: successes})
}

// flush appends the recorded batches; persistence errors are the store's
// to count, never the estimate's to fail on.
func (r *tallyRecorder) flush() {
	if r == nil || len(r.buckets) == 0 {
		return
	}
	_ = r.store.AppendTally(r.planKey, r.baseSeed, r.batch, r.start, r.buckets)
}
